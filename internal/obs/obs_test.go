package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/stats"
)

// snapAt builds a snapshot with instr retired, a fixed 2-cycles-per-instr
// pace, and cache counters scaled off instr so deltas are predictable.
func snapAt(instr uint64) obs.Snapshot {
	s := obs.Snapshot{
		Cycle:        100 + 2*instr, // measurement began at cycle 100
		Instructions: instr,
	}
	s.L1D = stats.CacheStats{
		DemandMisses: instr / 100,
		PrefIssued:   instr / 50,
		PrefFills:    instr / 50,
		PrefUseful:   instr / 100,
	}
	s.DRAM = stats.DRAMStats{
		Reads:   instr / 100,
		RowHits: instr / 200,
	}
	return s
}

func TestSamplerExactMultiples(t *testing.T) {
	s := obs.NewSampler(1000)
	s.Begin(snapAt(0))
	for _, i := range []uint64{1000, 2000, 3000} {
		s.Record(snapAt(i))
	}
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if r.Interval != i {
			t.Fatalf("row %d: interval index = %d", i, r.Interval)
		}
		if r.EndInstr != uint64(i+1)*1000 {
			t.Fatalf("row %d: end_instr = %d", i, r.EndInstr)
		}
		if r.Instructions != 1000 || r.Cycles != 2000 {
			t.Fatalf("row %d: delta %d instr / %d cycles, want 1000/2000",
				i, r.Instructions, r.Cycles)
		}
		if r.IPC != 0.5 {
			t.Fatalf("row %d: ipc = %f, want 0.5", i, r.IPC)
		}
	}
}

func TestSamplerTrailingPartial(t *testing.T) {
	s := obs.NewSampler(1000)
	s.Begin(snapAt(0))
	s.Record(snapAt(1000))
	s.Record(snapAt(2000))
	// Run ends mid-interval: the trailing Record closes a short row.
	s.Record(snapAt(2500))
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	last := rows[2]
	if last.Instructions != 500 || last.EndInstr != 2500 {
		t.Fatalf("trailing partial: %d instr ending at %d, want 500 at 2500",
			last.Instructions, last.EndInstr)
	}
}

func TestSamplerTrailingExactBoundary(t *testing.T) {
	s := obs.NewSampler(1000)
	s.Begin(snapAt(0))
	s.Record(snapAt(1000))
	s.Record(snapAt(2000))
	// Run ended exactly on a boundary: the engine's final Record sees zero
	// new instructions and must not emit an empty row.
	s.Record(snapAt(2000))
	if n := len(s.Rows()); n != 2 {
		t.Fatalf("rows = %d, want 2 (zero-advance Record must be a no-op)", n)
	}
}

func TestSamplerRecordBeforeBeginIgnored(t *testing.T) {
	s := obs.NewSampler(1000)
	s.Record(snapAt(1000))
	if n := len(s.Rows()); n != 0 {
		t.Fatalf("rows = %d, want 0 before Begin", n)
	}
}

func TestSamplerDerivedRates(t *testing.T) {
	s := obs.NewSampler(1000)
	s.Begin(snapAt(0))
	prev := snapAt(0)
	snap := prev
	snap.Instructions = 1000
	snap.Cycle = prev.Cycle + 4000
	snap.L1D = stats.CacheStats{
		DemandMisses: 20, // includes the 5 late ones below
		PrefFills:    40,
		PrefUseful:   10,
		PrefLate:     5,
	}
	snap.L2.DemandMisses = 8
	snap.DRAM = stats.DRAMStats{RowHits: 30, RowMisses: 5, RowConflicts: 5}
	s.Record(snap)
	r := s.Rows()[0]
	if r.IPC != 0.25 {
		t.Fatalf("ipc = %f", r.IPC)
	}
	if r.L1DMPKI != 20 || r.L2MPKI != 8 {
		t.Fatalf("mpki = %f / %f", r.L1DMPKI, r.L2MPKI)
	}
	if want := 15.0 / 40.0; r.PfAccuracy != want {
		t.Fatalf("accuracy = %f, want %f", r.PfAccuracy, want)
	}
	// Coverage: (useful+late)/(misses+useful) = 15/30.
	if want := 0.5; r.PfCoverage != want {
		t.Fatalf("coverage = %f, want %f", r.PfCoverage, want)
	}
	if want := 10.0 / 15.0; r.PfTimelyFrac != want {
		t.Fatalf("timely = %f, want %f", r.PfTimelyFrac, want)
	}
	if want := 0.75; r.DRAMRowHitRate != want {
		t.Fatalf("row hit rate = %f, want %f", r.DRAMRowHitRate, want)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := obs.NewTracer(4)
	for i := 0; i < 10; i++ {
		kind := obs.EvDemandMiss
		if i%2 == 1 {
			kind = obs.EvPrefetchIssue
		}
		tr.Emit(obs.Event{Cycle: uint64(i), Kind: kind, Source: obs.SrcL1D})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Oldest overwritten first: the tail (cycles 6..9) survives, in order.
	for i, ev := range evs {
		if ev.Cycle != uint64(6+i) {
			t.Fatalf("event %d: cycle = %d, want %d", i, ev.Cycle, 6+i)
		}
	}
	// Per-kind counts see every emission, not just the retained window.
	if tr.Count(obs.EvDemandMiss) != 5 || tr.Count(obs.EvPrefetchIssue) != 5 {
		t.Fatalf("counts = %d / %d, want 5 / 5",
			tr.Count(obs.EvDemandMiss), tr.Count(obs.EvPrefetchIssue))
	}
}

func TestTracerUnderCapacity(t *testing.T) {
	tr := obs.NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Emit(obs.Event{Cycle: uint64(i), Kind: obs.EvTLBWalk, Source: obs.SrcMMU})
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Fatalf("events wrong: %+v", evs)
	}
}

func TestChromeTraceJSONRoundTrip(t *testing.T) {
	tr := obs.NewTracer(64)
	tr.Emit(obs.Event{Cycle: 10, Kind: obs.EvDemandMiss, Source: obs.SrcL1D, Addr: 0x1000, IP: 0x400040})
	tr.Emit(obs.Event{Cycle: 20, Kind: obs.EvPrefetchIssue, Source: obs.SrcL1D, Addr: 0x1040, IP: 0x400040})
	tr.Emit(obs.Event{Cycle: 30, Kind: obs.EvTLBWalk, Source: obs.SrcMMU, Addr: 0x7f})
	tr.Emit(obs.Event{Cycle: 40, Kind: obs.EvPrefetchFill, Source: obs.SrcL2, Addr: 0x1040})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be a single valid trace_event JSON object.
	var got struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   uint64            `json:"ts"`
			TID  int               `json:"tid"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if got.OtherData["schema_version"] != "2" {
		t.Fatalf("schema_version = %q", got.OtherData["schema_version"])
	}
	var meta, inst int
	names := map[string]bool{}
	for _, ev := range got.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event named %q", ev.Name)
			}
		case "i":
			inst++
			if ev.S != "t" {
				t.Fatalf("instant event scope = %q, want t", ev.S)
			}
			names[ev.Name] = true
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// One thread_name per distinct source (L1D, MMU, L2) + 4 instants.
	if meta != 3 || inst != 4 {
		t.Fatalf("meta/instant = %d/%d, want 3/4", meta, inst)
	}
	for _, want := range []string{"demand_miss", "prefetch_issue", "tlb_walk", "prefetch_fill"} {
		if !names[want] {
			t.Fatalf("missing event name %q (got %v)", want, names)
		}
	}
}

// feedSampler drives one sampler through a fixed synthetic run. Gauge maps
// are built in the given key order to check that CSV output does not depend
// on map insertion order.
func feedSampler(keyOrder []string) *obs.Sampler {
	s := obs.NewSampler(500)
	s.Begin(snapAt(0))
	for _, i := range []uint64{500, 1000, 1500, 1750} {
		snap := snapAt(i)
		snap.Gauges = map[string]float64{}
		for _, k := range keyOrder {
			snap.Gauges[k] = float64(i) + float64(len(k))/8
		}
		s.Record(snap)
	}
	return s
}

func TestCSVDeterministicAndGaugeOrderStable(t *testing.T) {
	a := feedSampler([]string{"alpha", "mid", "zeta"})
	b := feedSampler([]string{"zeta", "alpha", "mid"})
	var bufA, bufB bytes.Buffer
	if err := a.Series().WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Series().WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("identical runs produced different CSV bytes")
	}
	lines := strings.Split(bufA.String(), "\n")
	if !strings.HasPrefix(lines[0], "# berti.timeseries v2 interval=500") {
		t.Fatalf("schema comment line wrong: %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",pf.alpha,pf.mid,pf.zeta") {
		t.Fatalf("gauge columns not sorted: %q", lines[1])
	}
	// Header + 4 data rows + trailing newline.
	if len(lines) != 7 {
		t.Fatalf("line count = %d, want 7", len(lines))
	}
}

func TestTimeSeriesJSONSchema(t *testing.T) {
	s := feedSampler([]string{"occ"})
	data, err := json.Marshal(s.Series())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["schema_version"] != float64(obs.SchemaVersion) {
		t.Fatalf("schema_version = %v", got["schema_version"])
	}
	if got["interval_instructions"] != float64(500) {
		t.Fatalf("interval_instructions = %v", got["interval_instructions"])
	}
	rows := got["rows"].([]any)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	first := rows[0].(map[string]any)
	for _, key := range []string{"interval", "end_instr", "ipc", "l1d_mpki", "l1d_pf_accuracy", "gauges"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("row missing %q: %v", key, first)
		}
	}
}
