package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventKind is the type tag of a traced event.
type EventKind uint8

// Event kinds recorded by the simulator.
const (
	EvDemandMiss EventKind = iota
	EvPrefetchIssue
	EvPrefetchFill
	EvPrefetchUse
	EvPrefetchEvict
	EvMSHRStall
	EvTLBWalk
	evKindCount
)

// String implements fmt.Stringer (these become trace_event names).
func (k EventKind) String() string {
	switch k {
	case EvDemandMiss:
		return "demand_miss"
	case EvPrefetchIssue:
		return "prefetch_issue"
	case EvPrefetchFill:
		return "prefetch_fill"
	case EvPrefetchUse:
		return "prefetch_use"
	case EvPrefetchEvict:
		return "prefetch_evict"
	case EvMSHRStall:
		return "mshr_stall"
	case EvTLBWalk:
		return "tlb_walk"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one structured trace record. The struct is fixed-size and the
// ring buffer preallocated, so emission never allocates.
type Event struct {
	Cycle  uint64
	Kind   EventKind
	Source Source
	// Addr is the (line) address involved, 0 when not applicable.
	Addr uint64
	// IP is the triggering instruction pointer, 0 when unknown.
	IP uint64
}

// Tracer is a bounded ring buffer of Events. When full, the oldest events
// are overwritten — the tail of a run is always retained.
type Tracer struct {
	buf   []Event
	next  int    // next write position
	total uint64 // events ever emitted
	// counts tallies emissions per kind (not subject to ring eviction).
	counts [evKindCount]uint64
}

// NewTracer builds a tracer retaining up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("obs: tracer capacity must be > 0")
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records one event, overwriting the oldest when the buffer is full.
func (t *Tracer) Emit(ev Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % len(t.buf)
	}
	t.total++
	if ev.Kind < evKindCount {
		t.counts[ev.Kind]++
	}
}

// Total returns the number of events ever emitted (including overwritten).
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 { return t.total - uint64(len(t.buf)) }

// Count returns the emission tally for one kind (immune to wraparound).
func (t *Tracer) Count(k EventKind) uint64 {
	if k >= evKindCount {
		return 0
	}
	return t.counts[k]
}

// Events returns the retained events in chronological order. The returned
// slice is freshly allocated.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// chromeEvent is one trace_event record (instant event, thread scope).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   uint64            `json:"ts"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the trace_event JSON object form, loadable by
// chrome://tracing and Perfetto.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the retained events as Chrome trace_event JSON.
// Cycles map to microsecond timestamps (1 cycle = 1 us in the viewer);
// each Source gets its own track (tid) so levels render as separate lanes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	ct := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(evs)+len(evs)/8),
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"schema_version": fmt.Sprint(SchemaVersion),
			"emitted_total":  fmt.Sprint(t.total),
			"dropped":        fmt.Sprint(t.Dropped()),
		},
	}
	named := map[Source]bool{}
	for _, ev := range evs {
		if !named[ev.Source] {
			named[ev.Source] = true
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 0, TID: int(ev.Source),
				Args: map[string]string{"name": ev.Source.String()},
			})
		}
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  ev.Source.String(),
			Ph:   "i",
			TS:   ev.Cycle,
			PID:  0,
			TID:  int(ev.Source),
			S:    "t",
		}
		if ev.Addr != 0 || ev.IP != 0 {
			ce.Args = map[string]string{
				"line": fmt.Sprintf("0x%x", ev.Addr),
				"ip":   fmt.Sprintf("0x%x", ev.IP),
			}
		}
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&ct); err != nil {
		return err
	}
	return bw.Flush()
}
