package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Row is one closed sampling interval: counter deltas between two
// snapshots plus derived rates. JSON field names are part of the versioned
// schema (see SchemaVersion).
type Row struct {
	// Interval is the 0-based interval index.
	Interval int `json:"interval"`
	// EndInstr / EndCycle locate the interval's right edge (cumulative
	// measured instructions / absolute machine cycle).
	EndInstr uint64 `json:"end_instr"`
	EndCycle uint64 `json:"end_cycle"`
	// Instructions / Cycles are the deltas covered by this interval.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`

	IPC     float64 `json:"ipc"`
	L1DMPKI float64 `json:"l1d_mpki"`
	L2MPKI  float64 `json:"l2_mpki"`
	LLCMPKI float64 `json:"llc_mpki"`

	// Prefetch activity at L1D within the interval.
	PfIssued  uint64 `json:"l1d_pf_issued"`
	PfFills   uint64 `json:"l1d_pf_fills"`
	PfUseful  uint64 `json:"l1d_pf_useful"`
	PfLate    uint64 `json:"l1d_pf_late"`
	PfUseless uint64 `json:"l1d_pf_useless"`
	// PfAccuracy is (useful+late)/fills for the interval (the artifact
	// formula applied to the window).
	PfAccuracy float64 `json:"l1d_pf_accuracy"`
	// PfCoverage is (useful+late)/(misses+useful): the fraction of
	// would-have-missed accesses the prefetcher covered this interval.
	PfCoverage float64 `json:"l1d_pf_coverage"`
	// PfTimelyFrac is useful/(useful+late): how many covered accesses were
	// covered timely rather than merged into an in-flight prefetch.
	PfTimelyFrac float64 `json:"l1d_pf_timely_frac"`

	// MSHROccupancy is the instantaneous L1D MSHR occupancy at the sample.
	MSHROccupancy int `json:"l1d_mshr_occ"`

	DRAMReads      uint64  `json:"dram_reads"`
	DRAMWrites     uint64  `json:"dram_writes"`
	DRAMRowHitRate float64 `json:"dram_row_hit_rate"`

	PageWalks uint64 `json:"page_walks"`

	// Gauges carries prefetcher introspection values sampled at the right
	// edge of the interval (omitted when no introspector is attached).
	Gauges map[string]float64 `json:"gauges,omitempty"`
}

// TimeSeries is the versioned container for a run's sampled intervals.
type TimeSeries struct {
	SchemaVersion int    `json:"schema_version"`
	IntervalInstr uint64 `json:"interval_instructions"`
	// ClampedRows counts intervals whose accuracy ratio exceeded 1 and was
	// clamped (an interval-boundary miscount: a fill landing in one window
	// with its use counted in another). Nonzero values flag windows whose
	// per-interval accuracy is an approximation.
	ClampedRows uint64 `json:"clamped_rows"`
	Rows        []Row  `json:"rows"`
}

// Sampler converts snapshots taken at interval boundaries into Rows. The
// simulator calls Begin once at measurement start and Record at every
// boundary (plus once for a trailing partial interval).
type Sampler struct {
	interval uint64
	prev     Snapshot
	began    bool
	rows     []Row
	clamped  uint64
	// OnRow, when set, is invoked with every freshly-closed interval (the
	// live metrics endpoint's subscription point). Set it before the run.
	OnRow func(Row)
}

// NewSampler builds a sampler with the given interval (instructions per
// sample). interval must be > 0.
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		panic("obs: sampler interval must be > 0")
	}
	return &Sampler{interval: interval}
}

// Interval returns the configured instructions-per-sample.
func (s *Sampler) Interval() uint64 { return s.interval }

// Begin sets the baseline snapshot (measurement start). Counters in base
// are typically zero with only the cycle nonzero (taken right after the
// post-warmup stats reset).
func (s *Sampler) Begin(base Snapshot) {
	s.prev = base
	s.began = true
}

// Record closes one interval ending at snap. Calls before Begin, and calls
// that advance zero instructions (e.g. a trailing Record exactly at the
// last boundary), are ignored.
func (s *Sampler) Record(snap Snapshot) {
	if !s.began || snap.Instructions <= s.prev.Instructions {
		return
	}
	p := &s.prev
	instr := snap.Instructions - p.Instructions
	cycles := snap.Cycle - p.Cycle
	row := Row{
		Interval:     len(s.rows),
		EndInstr:     snap.Instructions,
		EndCycle:     snap.Cycle,
		Instructions: instr,
		Cycles:       cycles,

		PfIssued:  snap.L1D.PrefIssued - p.L1D.PrefIssued,
		PfFills:   snap.L1D.PrefFills - p.L1D.PrefFills,
		PfUseful:  snap.L1D.PrefUseful - p.L1D.PrefUseful,
		PfLate:    snap.L1D.PrefLate - p.L1D.PrefLate,
		PfUseless: snap.L1D.PrefUseless - p.L1D.PrefUseless,

		MSHROccupancy: snap.L1DMSHROccupancy,

		DRAMReads:  snap.DRAM.Reads - p.DRAM.Reads,
		DRAMWrites: snap.DRAM.Writes - p.DRAM.Writes,

		PageWalks: snap.TLB.PageWalks - p.TLB.PageWalks,
		Gauges:    snap.Gauges,
	}
	if cycles > 0 {
		row.IPC = float64(instr) / float64(cycles)
	}
	kilo := float64(instr) / 1000
	row.L1DMPKI = float64(snap.L1D.DemandMisses-p.L1D.DemandMisses) / kilo
	row.L2MPKI = float64(snap.L2.DemandMisses-p.L2.DemandMisses) / kilo
	row.LLCMPKI = float64(snap.LLC.DemandMisses-p.LLC.DemandMisses) / kilo
	if row.PfFills > 0 {
		row.PfAccuracy = float64(row.PfUseful+row.PfLate) / float64(row.PfFills)
		if row.PfAccuracy > 1 {
			// An interval boundary split a prefetch's fill from its use:
			// clamp the ratio but count the clamp so the miscount is
			// visible in the series summary instead of silently hidden.
			row.PfAccuracy = 1
			s.clamped++
		}
	}
	// DemandMisses already counts late prefetches (the demand would have
	// missed); timely-useful hits are misses the prefetcher removed.
	misses := snap.L1D.DemandMisses - p.L1D.DemandMisses
	if base := misses + row.PfUseful; base > 0 {
		row.PfCoverage = float64(row.PfUseful+row.PfLate) / float64(base)
	}
	if covered := row.PfUseful + row.PfLate; covered > 0 {
		row.PfTimelyFrac = float64(row.PfUseful) / float64(covered)
	}
	rh := snap.DRAM.RowHits - p.DRAM.RowHits
	rm := snap.DRAM.RowMisses - p.DRAM.RowMisses
	rc := snap.DRAM.RowConflicts - p.DRAM.RowConflicts
	if tot := rh + rm + rc; tot > 0 {
		row.DRAMRowHitRate = float64(rh) / float64(tot)
	}
	s.rows = append(s.rows, row)
	s.prev = snap
	if s.OnRow != nil {
		s.OnRow(row)
	}
}

// Rows returns the recorded intervals.
func (s *Sampler) Rows() []Row { return s.rows }

// ClampedRows returns how many intervals had their accuracy clamped to 1.
func (s *Sampler) ClampedRows() uint64 { return s.clamped }

// Series packages the recorded rows with schema metadata.
func (s *Sampler) Series() *TimeSeries {
	return &TimeSeries{
		SchemaVersion: SchemaVersion,
		IntervalInstr: s.interval,
		ClampedRows:   s.clamped,
		Rows:          s.rows,
	}
}

// gaugeKeys returns the sorted union of gauge names across rows, so CSV
// columns are stable and deterministic.
func gaugeKeys(rows []Row) []string {
	seen := map[string]bool{}
	for i := range rows {
		for k := range rows[i].Gauges {
			seen[k] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// csvColumns is the fixed column set of schema v1, in order. Gauge columns
// (prefixed "pf.") follow, sorted by name.
var csvColumns = []string{
	"interval", "end_instr", "end_cycle", "instructions", "cycles",
	"ipc", "l1d_mpki", "l2_mpki", "llc_mpki",
	"l1d_pf_issued", "l1d_pf_fills", "l1d_pf_useful", "l1d_pf_late",
	"l1d_pf_useless", "l1d_pf_accuracy", "l1d_pf_coverage",
	"l1d_pf_timely_frac", "l1d_mshr_occ",
	"dram_reads", "dram_writes", "dram_row_hit_rate", "page_walks",
}

// WriteCSV renders the series as CSV: one comment line identifying the
// schema, a header row, then one row per interval. Output is byte-for-byte
// deterministic for identical runs.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# berti.timeseries v%d interval=%d\n", ts.SchemaVersion, ts.IntervalInstr)
	gauges := gaugeKeys(ts.Rows)
	for i, c := range csvColumns {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(c)
	}
	for _, g := range gauges {
		bw.WriteString(",pf.")
		bw.WriteString(g)
	}
	bw.WriteByte('\n')
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for i := range ts.Rows {
		r := &ts.Rows[i]
		cells := []string{
			strconv.Itoa(r.Interval), u(r.EndInstr), u(r.EndCycle),
			u(r.Instructions), u(r.Cycles),
			f(r.IPC), f(r.L1DMPKI), f(r.L2MPKI), f(r.LLCMPKI),
			u(r.PfIssued), u(r.PfFills), u(r.PfUseful), u(r.PfLate),
			u(r.PfUseless), f(r.PfAccuracy), f(r.PfCoverage),
			f(r.PfTimelyFrac), strconv.Itoa(r.MSHROccupancy),
			u(r.DRAMReads), u(r.DRAMWrites), f(r.DRAMRowHitRate), u(r.PageWalks),
		}
		for _, g := range gauges {
			cells = append(cells, f(r.Gauges[g]))
		}
		for j, c := range cells {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(c)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
