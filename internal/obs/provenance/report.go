package provenance

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/bertisim/berti/internal/obs"
)

// OtherKey labels the overflow row that absorbs PCs/deltas beyond the
// attribution-table caps.
const OtherKey = "other"

// HistOut is the report form of a log2 histogram. Buckets is trimmed of
// trailing zeros; bucket 0 counts zero values, bucket i >= 1 counts values
// in [2^(i-1), 2^i).
type HistOut struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Mean returns the average observed value.
func (h *HistOut) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// merge folds o into h.
func (h *HistOut) merge(o *HistOut) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	if len(o.Buckets) > len(h.Buckets) {
		h.Buckets = append(h.Buckets, make([]uint64, len(o.Buckets)-len(h.Buckets))...)
	}
	for i, v := range o.Buckets {
		h.Buckets[i] += v
	}
}

// LevelStats is one cache level's lifecycle accounting. The reconciliation
// invariant against the cache counters is exact per level:
//
//	Timely  + UntrackedTimely  == stats.PrefUseful
//	Late    + UntrackedLate    == stats.PrefLate
//	Useless + UntrackedUseless == stats.PrefUseless
//
// Untracked counters only grow when the record pool overflowed (see
// Report.Overflow), so on a healthy run they are zero.
type LevelStats struct {
	Level string `json:"level"`
	// Issued counts prefetches accepted into this level's PQ (primary
	// records); Spawned counts the additional installs this level performed
	// for prefetches issued above it (child records).
	Issued  uint64 `json:"issued"`
	Spawned uint64 `json:"spawned"`
	// Fills counts tracked installs that set the prefetch bit here.
	Fills   uint64 `json:"fills"`
	Timely  uint64 `json:"timely"`
	Late    uint64 `json:"late"`
	Useless uint64 `json:"useless"`
	Dropped uint64 `json:"dropped"`

	UntrackedTimely  uint64 `json:"untracked_timely"`
	UntrackedLate    uint64 `json:"untracked_late"`
	UntrackedUseless uint64 `json:"untracked_useless"`
	UntrackedDropped uint64 `json:"untracked_dropped"`
	// Stale counts resolutions whose ID no longer named a live record
	// (only reachable through deliberate state corruption in fault plans).
	Stale uint64 `json:"stale"`
	// LiveAtEnd counts records still unresolved when the report was taken:
	// prefetches in flight or resident-but-untouched prefetched lines.
	LiveAtEnd uint64 `json:"live_at_end"`

	FillLatency     HistOut `json:"fill_latency"`
	Slack           HistOut `json:"slack"`
	LateWait        HistOut `json:"late_wait"`
	UselessLifetime HistOut `json:"useless_lifetime"`
}

// Row is one attribution row: all outcomes attributed to a single trigger
// PC (Key "0x...") or delta (Key "+3"/"-5"), across every level the
// prefetch installed at. The overflow row uses Key "other".
type Row struct {
	Key string `json:"key"`
	// Issued counts primary prefetch requests; ConfSum accumulates the
	// prefetcher's confidence (percent) over them.
	Issued  uint64 `json:"issued"`
	ConfSum uint64 `json:"conf_sum"`
	Timely  uint64 `json:"timely"`
	Late    uint64 `json:"late"`
	Useless uint64 `json:"useless"`
	Dropped uint64 `json:"dropped"`
	// SlackSum/SlackCount accumulate timely-use slack cycles.
	SlackSum   uint64 `json:"slack_sum"`
	SlackCount uint64 `json:"slack_count"`

	// Derived (recomputed on merge): mean confidence at issue, the
	// ground-truth timely rate over resolved outcomes, and mean slack.
	AvgConf    float64 `json:"avg_conf"`
	TimelyRate float64 `json:"timely_rate"`
	AvgSlack   float64 `json:"avg_slack"`
}

// Resolved returns the number of terminally-resolved outcomes in the row.
func (r *Row) Resolved() uint64 { return r.Timely + r.Late + r.Useless + r.Dropped }

// finalize recomputes the derived fields from the raw sums.
func (r *Row) finalize() {
	r.AvgConf, r.TimelyRate, r.AvgSlack = 0, 0, 0
	if r.Issued > 0 {
		r.AvgConf = float64(r.ConfSum) / float64(r.Issued)
	}
	if n := r.Resolved(); n > 0 {
		r.TimelyRate = float64(r.Timely) / float64(n)
	}
	if r.SlackCount > 0 {
		r.AvgSlack = float64(r.SlackSum) / float64(r.SlackCount)
	}
}

// merge folds o into r (same key).
func (r *Row) merge(o *Row) {
	r.Issued += o.Issued
	r.ConfSum += o.ConfSum
	r.Timely += o.Timely
	r.Late += o.Late
	r.Useless += o.Useless
	r.Dropped += o.Dropped
	r.SlackSum += o.SlackSum
	r.SlackCount += o.SlackCount
}

// CalBand is one confidence-calibration band: prefetches the prefetcher
// issued claiming confidence in [ConfLo, ConfHi], against their measured
// outcomes. Only primary records count — one entry per requested prefetch —
// so "claimed 90, delivered 61% timely" reads directly off TimelyRate.
type CalBand struct {
	ConfLo     int     `json:"conf_lo"`
	ConfHi     int     `json:"conf_hi"`
	Issued     uint64  `json:"issued"`
	Timely     uint64  `json:"timely"`
	Late       uint64  `json:"late"`
	Useless    uint64  `json:"useless"`
	Dropped    uint64  `json:"dropped"`
	TimelyRate float64 `json:"timely_rate"`
}

// finalize recomputes the derived timely rate.
func (b *CalBand) finalize() {
	b.TimelyRate = 0
	if n := b.Timely + b.Late + b.Useless + b.Dropped; n > 0 {
		b.TimelyRate = float64(b.Timely) / float64(n)
	}
}

// Report is a tracker's aggregated output, JSON-serializable under the obs
// schema version and mergeable across runs (see Merge).
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Capacity/Overflow describe the record pool: Overflow > 0 means some
	// prefetches ran untracked and the untracked counters are nonzero.
	Capacity  int    `json:"capacity"`
	Overflow  uint64 `json:"overflow"`
	LiveAtEnd uint64 `json:"live_at_end"`
	// PCsLost/DeltasLost count distinct keys folded into the "other" rows
	// after the attribution-table caps filled.
	PCsLost    uint64 `json:"pcs_lost"`
	DeltasLost uint64 `json:"deltas_lost"`

	Levels []LevelStats `json:"levels"`
	// PCs/Deltas are sorted by issued desc, then resolved desc, then key.
	PCs         []Row     `json:"pcs"`
	Deltas      []Row     `json:"deltas"`
	Calibration []CalBand `json:"calibration"`
}

// pcKeyString formats a trigger-PC row key.
func pcKeyString(pc uint64) string { return "0x" + strconv.FormatUint(pc, 16) }

// deltaKeyString formats a delta row key with an explicit sign.
func deltaKeyString(d int64) string {
	if d >= 0 {
		return "+" + strconv.FormatInt(d, 10)
	}
	return strconv.FormatInt(d, 10)
}

// buildRow converts a raw aggregate to its report row.
func buildRow(key string, a *rowAgg) Row {
	r := Row{
		Key:        key,
		Issued:     a.issued,
		ConfSum:    a.confSum,
		Timely:     a.out[OutTimely],
		Late:       a.out[OutLate],
		Useless:    a.out[OutUseless],
		Dropped:    a.out[OutDropped],
		SlackSum:   a.slackSum,
		SlackCount: a.slackCnt,
	}
	r.finalize()
	return r
}

// sortRows applies the report's deterministic row order.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Issued != rows[j].Issued {
			return rows[i].Issued > rows[j].Issued
		}
		if ri, rj := rows[i].Resolved(), rows[j].Resolved(); ri != rj {
			return ri > rj
		}
		return rows[i].Key < rows[j].Key
	})
}

// Report aggregates the tracker's state into its serializable form. The
// tracker remains usable afterwards (live records keep resolving).
func (t *Tracker) Report() *Report {
	rep := &Report{
		SchemaVersion: obs.SchemaVersion,
		Capacity:      len(t.pool),
		Overflow:      t.overflow,
		LiveAtEnd:     uint64(t.live),
		PCsLost:       t.pcLost,
		DeltasLost:    t.dLost,
	}
	var liveByLevel [NumLevels]uint64
	for i := range t.pool {
		if t.pool[i].live {
			liveByLevel[clampLevel(int(t.pool[i].level))]++
		}
	}
	for l := range t.levels {
		a := &t.levels[l]
		rep.Levels = append(rep.Levels, LevelStats{
			Level:            levelName(l),
			Issued:           a.issued,
			Spawned:          a.spawned,
			Fills:            a.fills,
			Timely:           a.out[OutTimely],
			Late:             a.out[OutLate],
			Useless:          a.out[OutUseless],
			Dropped:          a.out[OutDropped],
			UntrackedTimely:  a.untracked[OutTimely],
			UntrackedLate:    a.untracked[OutLate],
			UntrackedUseless: a.untracked[OutUseless],
			UntrackedDropped: a.untracked[OutDropped],
			Stale:            a.stale,
			LiveAtEnd:        liveByLevel[l],
			FillLatency:      a.fillLat.out(),
			Slack:            a.slack.out(),
			LateWait:         a.lateWait.out(),
			UselessLifetime:  a.uselessLife.out(),
		})
	}
	for i := range t.pcRows {
		rep.PCs = append(rep.PCs, buildRow(pcKeyString(t.pcKeys[i]), &t.pcRows[i]))
	}
	if t.pcOver != (rowAgg{}) {
		rep.PCs = append(rep.PCs, buildRow(OtherKey, &t.pcOver))
	}
	for i := range t.dRows {
		rep.Deltas = append(rep.Deltas, buildRow(deltaKeyString(t.dKeys[i]), &t.dRows[i]))
	}
	if t.dOver != (rowAgg{}) {
		rep.Deltas = append(rep.Deltas, buildRow(OtherKey, &t.dOver))
	}
	sortRows(rep.PCs)
	sortRows(rep.Deltas)
	for b := 0; b < calBands; b++ {
		band := CalBand{
			ConfLo:  b * 10,
			ConfHi:  b*10 + 9,
			Issued:  t.cal[b].issued,
			Timely:  t.cal[b].out[OutTimely],
			Late:    t.cal[b].out[OutLate],
			Useless: t.cal[b].out[OutUseless],
			Dropped: t.cal[b].out[OutDropped],
		}
		if b == calBands-1 {
			band.ConfHi = 100
		}
		band.finalize()
		rep.Calibration = append(rep.Calibration, band)
	}
	return rep
}

// Level returns the named level's stats, or nil.
func (r *Report) Level(name string) *LevelStats {
	for i := range r.Levels {
		if r.Levels[i].Level == name {
			return &r.Levels[i]
		}
	}
	return nil
}

// TopPCs returns the first n PC rows (the rows are already sorted most
// significant first).
func (r *Report) TopPCs(n int) []Row {
	if n > len(r.PCs) {
		n = len(r.PCs)
	}
	return r.PCs[:n]
}

// TopDeltas returns the first n delta rows.
func (r *Report) TopDeltas(n int) []Row {
	if n > len(r.Deltas) {
		n = len(r.Deltas)
	}
	return r.Deltas[:n]
}

// Merge folds src into dst: counters and histograms add, attribution rows
// merge by key (re-capped at the table bounds, spilling into "other"), and
// derived fields are recomputed. Use it to build cross-workload roll-ups
// from per-run reports.
func Merge(dst, src *Report) {
	if src == nil {
		return
	}
	if dst.SchemaVersion == 0 {
		dst.SchemaVersion = src.SchemaVersion
	}
	if src.Capacity > dst.Capacity {
		dst.Capacity = src.Capacity
	}
	dst.Overflow += src.Overflow
	dst.LiveAtEnd += src.LiveAtEnd
	dst.PCsLost += src.PCsLost
	dst.DeltasLost += src.DeltasLost
	for i := range src.Levels {
		s := &src.Levels[i]
		var d *LevelStats
		for j := range dst.Levels {
			if dst.Levels[j].Level == s.Level {
				d = &dst.Levels[j]
				break
			}
		}
		if d == nil {
			dst.Levels = append(dst.Levels, *s)
			continue
		}
		d.Issued += s.Issued
		d.Spawned += s.Spawned
		d.Fills += s.Fills
		d.Timely += s.Timely
		d.Late += s.Late
		d.Useless += s.Useless
		d.Dropped += s.Dropped
		d.UntrackedTimely += s.UntrackedTimely
		d.UntrackedLate += s.UntrackedLate
		d.UntrackedUseless += s.UntrackedUseless
		d.UntrackedDropped += s.UntrackedDropped
		d.Stale += s.Stale
		d.LiveAtEnd += s.LiveAtEnd
		d.FillLatency.merge(&s.FillLatency)
		d.Slack.merge(&s.Slack)
		d.LateWait.merge(&s.LateWait)
		d.UselessLifetime.merge(&s.UselessLifetime)
	}
	dst.PCs = mergeRows(dst.PCs, src.PCs, PCTableCap, &dst.PCsLost)
	dst.Deltas = mergeRows(dst.Deltas, src.Deltas, DeltaTableCap, &dst.DeltasLost)
	if len(dst.Calibration) == 0 {
		dst.Calibration = append(dst.Calibration, src.Calibration...)
	} else {
		for i := range src.Calibration {
			if i >= len(dst.Calibration) {
				dst.Calibration = append(dst.Calibration, src.Calibration[i])
				continue
			}
			d := &dst.Calibration[i]
			s := &src.Calibration[i]
			d.Issued += s.Issued
			d.Timely += s.Timely
			d.Late += s.Late
			d.Useless += s.Useless
			d.Dropped += s.Dropped
			d.finalize()
		}
	}
}

// mergeRows merges two sorted row sets by key, keeping at most maxRows
// keyed rows (the rest fold into "other", bumping lost).
func mergeRows(dst, src []Row, maxRows int, lost *uint64) []Row {
	byKey := make(map[string]int, len(dst)+len(src))
	out := make([]Row, 0, len(dst)+len(src))
	fold := func(rows []Row) {
		for i := range rows {
			r := rows[i]
			if j, ok := byKey[r.Key]; ok {
				out[j].merge(&r)
				continue
			}
			byKey[r.Key] = len(out)
			out = append(out, r)
		}
	}
	fold(dst)
	fold(src)
	// Enforce the cap: keep the most significant keyed rows, fold the rest
	// into "other".
	var other *Row
	if j, ok := byKey[OtherKey]; ok {
		o := out[j]
		out = append(out[:j], out[j+1:]...)
		other = &o
	}
	sortRows(out)
	if len(out) > maxRows {
		if other == nil {
			other = &Row{Key: OtherKey}
		}
		for i := maxRows; i < len(out); i++ {
			other.merge(&out[i])
			*lost++
		}
		out = out[:maxRows]
	}
	if other != nil {
		out = append(out, *other)
	}
	for i := range out {
		out[i].finalize()
	}
	sortRows(out)
	return out
}

// csvColumns is the fixed attribution CSV column set of the schema.
var csvColumns = []string{
	"kind", "key", "issued", "conf_sum", "avg_conf",
	"timely", "late", "useless", "dropped", "timely_rate",
	"slack_sum", "slack_count", "avg_slack",
}

// WriteCSV renders the attribution tables as CSV: one comment line naming
// the schema, a header, then one row per PC (kind=pc) and per delta
// (kind=delta). Output is byte-for-byte deterministic for equal reports.
func (r *Report) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# berti.provenance v%d\n", r.SchemaVersion)
	for i, c := range csvColumns {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	writeRows := func(kind string, rows []Row) {
		for i := range rows {
			row := &rows[i]
			cells := []string{
				kind, row.Key, u(row.Issued), u(row.ConfSum), f(row.AvgConf),
				u(row.Timely), u(row.Late), u(row.Useless), u(row.Dropped),
				f(row.TimelyRate), u(row.SlackSum), u(row.SlackCount), f(row.AvgSlack),
			}
			for j, c := range cells {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(c)
			}
			bw.WriteByte('\n')
		}
	}
	writeRows("pc", r.PCs)
	writeRows("delta", r.Deltas)
	return bw.Flush()
}
