// Package provenance follows every prefetch from the cycle it is accepted
// into a prefetch queue to its terminal outcome: a timely first demand use,
// a late-covered demand (the demand merged into the in-flight prefetch), an
// eviction without any use, or a drop/merge that never installed a line.
// Along the way it records fill latency and slack (cycles between fill and
// first demand use — the paper's timeliness margin) into bounded log2
// histograms, and aggregates outcomes into per-PC and per-delta attribution
// tables that cross the prefetcher's own confidence at issue time against
// ground-truth timeliness.
//
// The tracker is a pure observer: it never mutates simulation state, so a
// run with tracking enabled produces byte-identical core statistics to one
// without. It is also allocation-bounded: records live in a fixed-capacity
// pool handed out through a free list, attribution tables are capped with
// explicit overflow rows, and every emission from the cache is guarded by a
// nil check so disabled runs pay nothing.
package provenance

import "math/bits"

// DefaultCapacity is the record-pool size when NewTracker is given 0. A
// record is live from PQ acceptance until its terminal outcome; 64K records
// comfortably covers every in-flight prefetch plus every prefetched line
// resident across a three-level hierarchy at the simulated sizes.
const DefaultCapacity = 1 << 16

// maxCapacity bounds the pool so record indices fit the 24-bit index field
// of an ID (the top 8 bits carry the reuse generation).
const maxCapacity = 1<<24 - 1

// Table caps: distinct trigger PCs and distinct deltas tracked with their
// own attribution row. Beyond the cap, outcomes fold into an "other" row
// and the overflow is visible rather than silently dropped.
const (
	PCTableCap    = 4096
	DeltaTableCap = 1024
)

// calBands is the number of confidence-calibration bands (deciles).
const calBands = 10

// Outcome is a prefetch's terminal state.
type Outcome uint8

// Terminal outcomes. OutTimely/OutLate/OutUseless mirror the cache's
// PrefUseful/PrefLate/PrefUseless counters exactly; OutDropped covers
// prefetches that never installed a tracked line (duplicate at PQ pop, or
// data arriving for an already-resident line).
const (
	OutTimely Outcome = iota
	OutLate
	OutUseless
	OutDropped
	numOutcomes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutTimely:
		return "timely"
	case OutLate:
		return "late"
	case OutUseless:
		return "useless"
	case OutDropped:
		return "dropped"
	default:
		return "?"
	}
}

// NumLevels is the number of cache levels tracked (L1D, L2, LLC).
const NumLevels = 3

// levelName maps a level index to its report name.
func levelName(l int) string {
	switch l {
	case 0:
		return "L1D"
	case 1:
		return "L2"
	case 2:
		return "LLC"
	default:
		return "?"
	}
}

// record is one tracked prefetch (or one level's materialization of it).
type record struct {
	trigIP     uint64
	delta      int64
	issueCycle uint64
	fillCycle  uint64
	conf       uint8
	level      uint8
	gen        uint8
	live       bool
	filled     bool
	// primary: created by Issue (the prefetcher's own request). Child
	// records describe the extra installs a single prefetch performs at
	// lower levels on the response path.
	primary bool
}

// rowAgg is one attribution row's raw counters (per trigger PC or delta).
type rowAgg struct {
	issued   uint64
	confSum  uint64
	out      [numOutcomes]uint64
	slackSum uint64
	slackCnt uint64
}

// levelAgg is one cache level's raw counters and histograms.
type levelAgg struct {
	issued    uint64
	spawned   uint64
	fills     uint64
	out       [numOutcomes]uint64
	untracked [numOutcomes]uint64
	stale     uint64

	fillLat     Hist
	slack       Hist
	lateWait    Hist
	uselessLife Hist
}

// calAgg is one confidence-decile band's raw counters (primary records
// only: one entry per prefetch the prefetcher actually requested).
type calAgg struct {
	issued uint64
	out    [numOutcomes]uint64
}

// Tracker is the per-prefetch lifecycle tracker. It is not safe for
// concurrent use; the simulation engine is single-threaded and each Machine
// owns at most one tracker.
type Tracker struct {
	pool []record
	free []uint32 // free record indexes (LIFO)
	live int

	overflow uint64 // Issue/Child calls refused because the pool was full

	levels [NumLevels]levelAgg

	pcIdx  map[uint64]int32
	pcRows []rowAgg
	pcKeys []uint64
	pcOver rowAgg // "other": PCs beyond PCTableCap
	pcLost uint64 // distinct PCs folded into the other row

	dIdx  map[int64]int32
	dRows []rowAgg
	dKeys []int64
	dOver rowAgg
	dLost uint64

	cal [calBands]calAgg
}

// NewTracker builds a tracker with the given record-pool capacity
// (DefaultCapacity when <= 0, clamped to the 24-bit index space).
func NewTracker(capacity int) *Tracker {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity > maxCapacity {
		capacity = maxCapacity
	}
	t := &Tracker{
		pool:  make([]record, capacity),
		free:  make([]uint32, capacity),
		pcIdx: make(map[uint64]int32, PCTableCap),
		dIdx:  make(map[int64]int32, DeltaTableCap),
	}
	for i := range t.free {
		// LIFO: hand out low indexes first.
		t.free[i] = uint32(capacity - 1 - i)
	}
	return t
}

// Capacity returns the record-pool capacity.
func (t *Tracker) Capacity() int { return len(t.pool) }

// Live returns the number of records currently in flight (issued or
// resident as an unused prefetched line).
func (t *Tracker) Live() int { return t.live }

// Overflow returns the number of Issue/Child calls refused because the
// record pool was exhausted. Their outcomes surface as untracked counters.
func (t *Tracker) Overflow() uint64 { return t.overflow }

// id encodes a pool index and the record's reuse generation. 0 is the
// untracked ID.
func id(idx uint32, gen uint8) uint32 { return (idx + 1) | uint32(gen)<<24 }

// lookup decodes an ID and returns the record if it is live and of the
// same generation (a stale ID — freed and possibly reused — returns nil).
func (t *Tracker) lookup(pid uint32) *record {
	idx := pid&0xFFFFFF - 1
	if int(idx) >= len(t.pool) {
		return nil
	}
	r := &t.pool[idx]
	if !r.live || r.gen != uint8(pid>>24) {
		return nil
	}
	return r
}

// alloc pops a free record, returning nil when the pool is exhausted.
func (t *Tracker) alloc() (*record, uint32) {
	if len(t.free) == 0 {
		t.overflow++
		return nil, 0
	}
	idx := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	r := &t.pool[idx]
	gen := r.gen
	*r = record{gen: gen, live: true}
	t.live++
	return r, id(idx, gen)
}

// release returns a record to the pool, bumping its generation so stale
// IDs (e.g. held by deliberately-corrupted cache state) cannot alias the
// next tenant.
func (t *Tracker) release(r *record, pid uint32) {
	r.live = false
	r.gen++
	t.live--
	t.free = append(t.free, pid&0xFFFFFF-1)
}

// clampLevel keeps out-of-range levels (MEM, or a corrupted value) on the
// last tracked level instead of indexing out of bounds.
func clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= NumLevels {
		return NumLevels - 1
	}
	return level
}

// Issue registers a prefetch accepted into the issuing level's PQ and
// returns its provenance ID (0 when the pool is full: the prefetch proceeds
// untracked and its outcome lands in the untracked counters).
func (t *Tracker) Issue(level int, trigIP uint64, delta int64, conf uint8, cycle uint64) uint32 {
	r, pid := t.alloc()
	if r == nil {
		return 0
	}
	level = clampLevel(level)
	if conf > 100 {
		conf = 100
	}
	r.trigIP = trigIP
	r.delta = delta
	r.conf = conf
	r.level = uint8(level)
	r.issueCycle = cycle
	r.primary = true
	t.levels[level].issued++
	pcRow := t.pcRow(trigIP)
	pcRow.issued++
	pcRow.confSum += uint64(conf)
	dRow := t.dRow(delta)
	dRow.issued++
	dRow.confSum += uint64(conf)
	t.cal[calBand(conf)].issued++
	return pid
}

// Child registers the materialization of an already-tracked prefetch at a
// lower level: non-inclusive fills install the line at every level >= the
// fill level, and each install has its own independent outcome. The child
// inherits the parent's trigger attribution. A 0 parent yields a 0 child.
func (t *Tracker) Child(parent uint32, level int, cycle uint64) uint32 {
	p := t.lookup(parent)
	if p == nil {
		if parent != 0 {
			t.levels[clampLevel(level)].stale++
		}
		return 0
	}
	r, pid := t.alloc()
	if r == nil {
		return 0
	}
	level = clampLevel(level)
	r.trigIP = p.trigIP
	r.delta = p.delta
	r.conf = p.conf
	r.level = uint8(level)
	r.issueCycle = cycle
	t.levels[level].spawned++
	return pid
}

// Relevel moves a record to a new level: a prefetch whose fill level is
// below the issuing cache is handed straight down and only ever installs
// (and resolves) at the lower level.
func (t *Tracker) Relevel(pid uint32, level int) {
	if r := t.lookup(pid); r != nil {
		r.level = uint8(clampLevel(level))
	}
}

// Fill records the cycle a tracked prefetch installed its line (prefetch
// bit set), feeding the fill-latency histogram. The record stays live until
// the line's first use or eviction.
func (t *Tracker) Fill(pid uint32, cycle uint64) {
	r := t.lookup(pid)
	if r == nil {
		return
	}
	r.filled = true
	r.fillCycle = cycle
	lv := &t.levels[r.level]
	lv.fills++
	lv.fillLat.Observe(cycle - r.issueCycle)
}

// Resolve records a terminal outcome. level is used only for the untracked
// counters when pid is 0 (pool overflow) or stale; live records resolve at
// their own level. Timely feeds the slack histogram (cycles the line sat
// ready before its first demand use), Late the in-flight-wait histogram,
// Useless the resident-lifetime histogram.
func (t *Tracker) Resolve(pid uint32, level int, out Outcome, cycle uint64) {
	if out >= numOutcomes {
		return
	}
	r := t.lookup(pid)
	if r == nil {
		level = clampLevel(level)
		if pid == 0 {
			t.levels[level].untracked[out]++
		} else {
			t.levels[level].stale++
		}
		return
	}
	lv := &t.levels[r.level]
	lv.out[out]++
	base := r.issueCycle
	if r.filled {
		base = r.fillCycle
	}
	switch out {
	case OutTimely:
		lv.slack.Observe(cycle - base)
	case OutLate:
		lv.lateWait.Observe(cycle - r.issueCycle)
	case OutUseless:
		lv.uselessLife.Observe(cycle - base)
	}
	pcRow := t.pcRow(r.trigIP)
	pcRow.out[out]++
	dRow := t.dRow(r.delta)
	dRow.out[out]++
	if out == OutTimely {
		slack := cycle - base
		pcRow.slackSum += slack
		pcRow.slackCnt++
		dRow.slackSum += slack
		dRow.slackCnt++
	}
	if r.primary {
		t.cal[calBand(r.conf)].out[out]++
	}
	t.release(r, pid)
}

// pcRow returns the attribution row for a trigger PC, folding new PCs into
// the overflow row once the table cap is reached.
func (t *Tracker) pcRow(pc uint64) *rowAgg {
	if i, ok := t.pcIdx[pc]; ok {
		return &t.pcRows[i]
	}
	if len(t.pcRows) >= PCTableCap {
		t.pcLost++
		return &t.pcOver
	}
	t.pcIdx[pc] = int32(len(t.pcRows))
	t.pcRows = append(t.pcRows, rowAgg{})
	t.pcKeys = append(t.pcKeys, pc)
	return &t.pcRows[len(t.pcRows)-1]
}

// dRow returns the attribution row for a delta, folding new deltas into the
// overflow row once the table cap is reached.
func (t *Tracker) dRow(d int64) *rowAgg {
	if i, ok := t.dIdx[d]; ok {
		return &t.dRows[i]
	}
	if len(t.dRows) >= DeltaTableCap {
		t.dLost++
		return &t.dOver
	}
	t.dIdx[d] = int32(len(t.dRows))
	t.dRows = append(t.dRows, rowAgg{})
	t.dKeys = append(t.dKeys, d)
	return &t.dRows[len(t.dRows)-1]
}

// calBand maps a confidence percentage to its decile band (90-100 shares
// the top band).
func calBand(conf uint8) int {
	b := int(conf) / 10
	if b >= calBands {
		b = calBands - 1
	}
	return b
}

// ResetCounters zeroes every aggregate — per-level counters, histograms,
// attribution tables, calibration bands, and the overflow counter — while
// keeping live records in flight. The engine calls it at measurement start
// (where cache statistics are reset) so a prefetch issued during warmup
// that resolves during measurement lands in the measured aggregates exactly
// like its PrefUseful/PrefLate/PrefUseless counterpart.
func (t *Tracker) ResetCounters() {
	t.overflow = 0
	for i := range t.levels {
		t.levels[i] = levelAgg{}
	}
	t.pcRows = t.pcRows[:0]
	t.pcKeys = t.pcKeys[:0]
	t.pcOver = rowAgg{}
	t.pcLost = 0
	for k := range t.pcIdx {
		delete(t.pcIdx, k)
	}
	t.dRows = t.dRows[:0]
	t.dKeys = t.dKeys[:0]
	t.dOver = rowAgg{}
	t.dLost = 0
	for k := range t.dIdx {
		delete(t.dIdx, k)
	}
	for i := range t.cal {
		t.cal[i] = calAgg{}
	}
}

// HistBuckets is the number of log2 buckets: bucket 0 counts zero values,
// bucket i >= 1 counts values in [2^(i-1), 2^i).
const HistBuckets = 33

// Hist is a bounded log2 histogram of cycle counts.
type Hist struct {
	count   uint64
	sum     uint64
	max     uint64
	buckets [HistBuckets]uint64
}

// Observe folds one value into the histogram.
func (h *Hist) Observe(v uint64) {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// out converts the histogram to its report form, trimming trailing empty
// buckets for compact deterministic JSON.
func (h *Hist) out() HistOut {
	n := HistBuckets
	for n > 0 && h.buckets[n-1] == 0 {
		n--
	}
	o := HistOut{Count: h.count, Sum: h.sum, Max: h.max}
	if n > 0 {
		o.Buckets = append([]uint64(nil), h.buckets[:n]...)
	}
	return o
}
