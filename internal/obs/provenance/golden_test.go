package provenance

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenTracker replays a fixed synthetic lifecycle so the rendered report
// is fully deterministic: two PCs, two deltas, every outcome class, a
// spawned child, one overflow-free pool.
func goldenTracker() *Tracker {
	tr := NewTracker(16)
	// PC 0x401000, delta +1: timely with slack 30.
	a := tr.Issue(0, 0x401000, 1, 90, 100)
	tr.Fill(a, 160)
	tr.Resolve(a, 0, OutTimely, 190)
	// PC 0x401000, delta +1 again: late after waiting 80 cycles.
	b := tr.Issue(0, 0x401000, 1, 90, 200)
	tr.Resolve(b, 0, OutLate, 280)
	// PC 0x402000, delta -2: fills, spawns an L2 child, both die useless.
	c := tr.Issue(0, 0x402000, -2, 40, 300)
	child := tr.Child(c, 1, 310)
	tr.Fill(c, 350)
	tr.Fill(child, 360)
	tr.Resolve(c, 0, OutUseless, 500)
	tr.Resolve(child, 1, OutUseless, 600)
	// PC 0x402000, delta -2: dropped as a duplicate.
	d := tr.Issue(0, 0x402000, -2, 40, 700)
	tr.Resolve(d, 0, OutDropped, 701)
	return tr
}

// TestGoldenSchema pins the provenance JSON and CSV output byte-for-byte.
// A diff here is a schema change: bump obs.SchemaVersion, regenerate with
// UPDATE_GOLDEN=1 go test ./internal/obs/provenance/, and note the change
// in DESIGN.md §13.
func TestGoldenSchema(t *testing.T) {
	rep := goldenTracker().Report()

	var jsonBuf bytes.Buffer
	enc := json.NewEncoder(&jsonBuf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}

	compare(t, filepath.Join("testdata", "report.golden.json"), jsonBuf.Bytes())
	compare(t, filepath.Join("testdata", "attribution.golden.csv"), csvBuf.Bytes())
}

func compare(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the pinned schema.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional: bump obs.SchemaVersion and regenerate with UPDATE_GOLDEN=1.",
			path, got, want)
	}
}
