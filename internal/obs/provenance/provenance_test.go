package provenance

import (
	"testing"
)

func TestLifecycleTimelyAndSlack(t *testing.T) {
	tr := NewTracker(8)
	pid := tr.Issue(0, 0x40, 3, 90, 100)
	if pid == 0 {
		t.Fatal("Issue returned the untracked ID with a free pool")
	}
	tr.Fill(pid, 150)
	tr.Resolve(pid, 0, OutTimely, 175)
	rep := tr.Report()
	l := rep.Level("L1D")
	if l == nil || l.Issued != 1 || l.Fills != 1 || l.Timely != 1 {
		t.Fatalf("level stats = %+v", l)
	}
	if l.FillLatency.Sum != 50 || l.Slack.Sum != 25 {
		t.Fatalf("fill latency sum = %d (want 50), slack sum = %d (want 25)",
			l.FillLatency.Sum, l.Slack.Sum)
	}
	if tr.Live() != 0 {
		t.Fatalf("live = %d after terminal resolve", tr.Live())
	}
	if len(rep.PCs) != 1 || rep.PCs[0].Key != "0x40" || rep.PCs[0].AvgConf != 90 {
		t.Fatalf("pc rows = %+v", rep.PCs)
	}
	if len(rep.Deltas) != 1 || rep.Deltas[0].Key != "+3" {
		t.Fatalf("delta rows = %+v", rep.Deltas)
	}
}

func TestPoolOverflowGoesUntracked(t *testing.T) {
	tr := NewTracker(2)
	a := tr.Issue(0, 1, 1, 50, 0)
	b := tr.Issue(0, 2, 2, 50, 0)
	c := tr.Issue(0, 3, 3, 50, 0)
	if a == 0 || b == 0 {
		t.Fatal("pool should have capacity for two records")
	}
	if c != 0 {
		t.Fatalf("third Issue = %d, want 0 (pool exhausted)", c)
	}
	if tr.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", tr.Overflow())
	}
	// Resolving the untracked ID lands in the untracked counters, keeping
	// the reconciliation sums exact.
	tr.Resolve(0, 0, OutTimely, 10)
	rep := tr.Report()
	l := rep.Level("L1D")
	if l.Timely != 0 || l.UntrackedTimely != 1 {
		t.Fatalf("untracked timely = %d (timely %d), want 1 (0)", l.UntrackedTimely, l.Timely)
	}
	// Releasing a record makes room again.
	tr.Resolve(a, 0, OutUseless, 20)
	if d := tr.Issue(0, 4, 4, 50, 30); d == 0 {
		t.Fatal("pool should have a free slot after a terminal resolve")
	}
}

func TestStaleAndGenerationSafety(t *testing.T) {
	tr := NewTracker(4)
	pid := tr.Issue(0, 1, 1, 50, 0)
	tr.Resolve(pid, 0, OutDropped, 5)
	// Same ID again: the record is gone, the resolution is stale.
	tr.Resolve(pid, 0, OutTimely, 6)
	// Reuse the slot: the generation bump means the old ID stays stale.
	pid2 := tr.Issue(0, 2, 2, 50, 7)
	tr.Resolve(pid, 0, OutTimely, 8)
	rep := tr.Report()
	l := rep.Level("L1D")
	if l.Stale != 2 {
		t.Fatalf("stale = %d, want 2", l.Stale)
	}
	if l.Timely != 0 || l.Dropped != 1 {
		t.Fatalf("outcomes polluted by stale resolves: %+v", l)
	}
	tr.Resolve(pid2, 0, OutTimely, 9)
	if tr.Report().Level("L1D").Timely != 1 {
		t.Fatal("fresh-generation resolve should count")
	}
}

func TestChildAndRelevel(t *testing.T) {
	tr := NewTracker(8)
	pid := tr.Issue(0, 0x10, 2, 80, 0)
	child := tr.Child(pid, 1, 5)
	if child == 0 || child == pid {
		t.Fatalf("child = %d (parent %d)", child, pid)
	}
	tr.Fill(child, 40)
	tr.Resolve(child, 1, OutTimely, 60)
	tr.Fill(pid, 45)
	tr.Resolve(pid, 0, OutTimely, 50)
	rep := tr.Report()
	if l2 := rep.Level("L2"); l2 == nil || l2.Spawned != 1 || l2.Timely != 1 {
		t.Fatalf("L2 stats = %+v, want spawned=1 timely=1", l2)
	}
	// Child outcomes attribute back to the parent's PC/delta rows.
	if len(rep.PCs) != 1 || rep.PCs[0].Timely != 2 {
		t.Fatalf("pc rows = %+v, want one row with timely=2", rep.PCs)
	}
	// Relevel moves a record's outcome accounting.
	p2 := tr.Issue(0, 0x20, 4, 70, 100)
	tr.Relevel(p2, 2)
	tr.Resolve(p2, 2, OutUseless, 200)
	if llc := tr.Report().Level("LLC"); llc == nil || llc.Useless != 1 {
		t.Fatalf("LLC stats = %+v, want useless=1", llc)
	}
}

func TestResetCountersKeepsLiveRecords(t *testing.T) {
	tr := NewTracker(8)
	warm := tr.Issue(0, 1, 1, 50, 0) // in flight across the reset
	done := tr.Issue(0, 2, 2, 50, 0)
	tr.Resolve(done, 0, OutDropped, 5)
	tr.ResetCounters()
	rep := tr.Report()
	if l := rep.Level("L1D"); l != nil && (l.Issued != 0 || l.Dropped != 0) {
		t.Fatalf("aggregates survived reset: %+v", l)
	}
	if tr.Live() != 1 {
		t.Fatalf("live = %d, want 1 (warmup record kept)", tr.Live())
	}
	// The surviving record resolves into the post-reset counters.
	tr.Fill(warm, 10)
	tr.Resolve(warm, 0, OutTimely, 20)
	if l := tr.Report().Level("L1D"); l == nil || l.Timely != 1 {
		t.Fatalf("post-reset resolve lost: %+v", l)
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 1 << 40} {
		h.Observe(v)
	}
	out := h.out()
	if out.Count != 6 || out.Max != 1<<40 {
		t.Fatalf("hist out = %+v", out)
	}
	var sum uint64
	for _, b := range out.Buckets {
		sum += b
	}
	if sum != 6 {
		t.Fatalf("bucket sum = %d, want 6", sum)
	}
	// bits.Len64 bucketing: 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3.
	if out.Buckets[0] != 1 || out.Buckets[1] != 1 || out.Buckets[2] != 2 || out.Buckets[3] != 1 {
		t.Fatalf("bucket layout = %v", out.Buckets)
	}
}

func TestCalibrationBands(t *testing.T) {
	tr := NewTracker(16)
	// Claimed 90%+ confidence, delivered 1 timely of 3 resolved.
	for i, out := range []Outcome{OutTimely, OutUseless, OutUseless} {
		pid := tr.Issue(0, uint64(i), 1, 95, 0)
		if out == OutTimely {
			tr.Fill(pid, 10)
		}
		tr.Resolve(pid, 0, out, 20)
	}
	rep := tr.Report()
	var band *CalBand
	for i := range rep.Calibration {
		if rep.Calibration[i].ConfLo == 90 {
			band = &rep.Calibration[i]
		}
	}
	if band == nil || band.Issued != 3 {
		t.Fatalf("90+ band = %+v", band)
	}
	if got := band.TimelyRate; got < 0.33 || got > 0.34 {
		t.Fatalf("claimed 95%% confidence delivered timely rate %v, want 1/3", got)
	}
}

func TestMergeReports(t *testing.T) {
	build := func(pc uint64, out Outcome) *Report {
		tr := NewTracker(8)
		pid := tr.Issue(0, pc, 5, 60, 0)
		tr.Fill(pid, 10)
		tr.Resolve(pid, 0, out, 30)
		return tr.Report()
	}
	dst := build(0x100, OutTimely)
	Merge(dst, build(0x100, OutUseless))
	Merge(dst, build(0x200, OutTimely))
	if len(dst.PCs) != 2 {
		t.Fatalf("merged pc rows = %+v", dst.PCs)
	}
	var shared *Row
	for i := range dst.PCs {
		if dst.PCs[i].Key == "0x100" {
			shared = &dst.PCs[i]
		}
	}
	if shared == nil || shared.Issued != 2 || shared.Timely != 1 || shared.Useless != 1 {
		t.Fatalf("shared row = %+v", shared)
	}
	if shared.TimelyRate != 0.5 {
		t.Fatalf("merged timely rate = %v, want 0.5 (recomputed)", shared.TimelyRate)
	}
	l := dst.Level("L1D")
	if l == nil || l.Issued != 3 || l.Timely != 2 || l.Useless != 1 {
		t.Fatalf("merged level stats = %+v", l)
	}
	if l.Slack.Count != 2 {
		t.Fatalf("merged slack count = %d, want 2", l.Slack.Count)
	}
}
