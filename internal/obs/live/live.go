// Package live exposes campaign observability over HTTP while simulations
// run: a JSON snapshot endpoint with run counters and the most recent
// sampler intervals, a provenance endpoint rendering the current
// cross-workload attribution, and the process's expvar page. The server is
// a pure observer — it only reads snapshots the simulation side pushes, so
// attaching it cannot perturb results.
package live

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/bertisim/berti/internal/obs"
)

// RecentRows bounds the sampler intervals kept for the snapshot endpoint.
const RecentRows = 64

// expvar's registry is process-global and Publish panics on duplicate
// names, so the berti map is published exactly once regardless of how many
// servers a process (or test binary) starts.
var (
	pubOnce sync.Once
	pubMap  *expvar.Map
)

func bertiVars() *expvar.Map {
	pubOnce.Do(func() { pubMap = expvar.NewMap("berti") })
	return pubMap
}

// Server serves live campaign metrics. It either owns its own HTTP
// listener (New) or is mounted onto an existing mux (NewServer + Mount —
// the campaign server embeds the same endpoints without duplicating the
// handler wiring).
//
//	GET /metrics             — JSON snapshot: schema version, run counters,
//	                           sampler-row counters, the last RecentRows
//	                           sampler intervals.
//	GET /metrics/provenance  — the attribution document from the installed
//	                           provider (404 until one is set).
//	GET /debug/vars          — the process expvar page (includes the
//	                           "berti" map mirroring the run counters).
type Server struct {
	ln  net.Listener
	srv *http.Server

	completed atomic.Uint64
	failed    atomic.Uint64
	rowsSeen  atomic.Uint64

	mu     sync.Mutex
	recent []obs.Row
	next   int
	wrap   bool
	attrib func() any
}

// NewServer builds a listener-less metrics server for embedding: call
// Mount to register its endpoints on an existing mux. Counters and the
// sampler ring work identically to a listening server.
func NewServer() *Server {
	return &Server{recent: make([]obs.Row, RecentRows)}
}

// Mount registers the metrics endpoints on mux. The same wiring backs both
// the standalone -metrics-addr listener and the campaign server's API mux.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/provenance", s.handleProvenance)
	mux.Handle("/debug/vars", expvar.Handler())
}

// New binds addr (e.g. "localhost:0", ":8090") and starts serving. Close
// the returned server to release the port.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s := NewServer()
	mux := http.NewServeMux()
	s.Mount(mux)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listener address (resolves ":0" binds for tests);
// empty for an embedded (Mount-only) server.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down (a no-op for an embedded server, whose
// lifecycle belongs to the mux owner).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// SetAttribution installs the provider for /metrics/provenance. The
// provider is invoked per request and its result JSON-encoded — pass e.g. a
// closure over a harness ProvenanceRollup's Report method.
func (s *Server) SetAttribution(f func() any) {
	s.mu.Lock()
	s.attrib = f
	s.mu.Unlock()
}

// RunCompleted records one successfully-finished simulation.
func (s *Server) RunCompleted() {
	s.completed.Add(1)
	bertiVars().Add("runs_completed", 1)
}

// RunFailed records one failed simulation.
func (s *Server) RunFailed() {
	s.failed.Add(1)
	bertiVars().Add("runs_failed", 1)
}

// RecordRow ingests one freshly-closed sampler interval (wire it to
// obs.Sampler.OnRow). Only the last RecentRows rows are retained.
func (s *Server) RecordRow(r obs.Row) {
	s.rowsSeen.Add(1)
	bertiVars().Add("sampler_rows", 1)
	s.mu.Lock()
	s.recent[s.next] = r
	s.next++
	if s.next == len(s.recent) {
		s.next, s.wrap = 0, true
	}
	s.mu.Unlock()
}

// Snapshot is the /metrics response document.
type Snapshot struct {
	SchemaVersion int       `json:"schema_version"`
	RunsCompleted uint64    `json:"runs_completed"`
	RunsFailed    uint64    `json:"runs_failed"`
	SamplerRows   uint64    `json:"sampler_rows"`
	Recent        []obs.Row `json:"recent_rows"`
}

// snapshot assembles the current snapshot (recent rows oldest-first).
func (s *Server) snapshot() *Snapshot {
	s.mu.Lock()
	var rows []obs.Row
	if s.wrap {
		rows = append(rows, s.recent[s.next:]...)
		rows = append(rows, s.recent[:s.next]...)
	} else {
		rows = append(rows, s.recent[:s.next]...)
	}
	s.mu.Unlock()
	return &Snapshot{
		SchemaVersion: obs.SchemaVersion,
		RunsCompleted: s.completed.Load(),
		RunsFailed:    s.failed.Load(),
		SamplerRows:   s.rowsSeen.Load(),
		Recent:        rows,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.snapshot())
}

func (s *Server) handleProvenance(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	f := s.attrib
	s.mu.Unlock()
	if f == nil {
		http.Error(w, "no attribution provider installed", http.StatusNotFound)
		return
	}
	writeJSON(w, f())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
