// Package live exposes campaign observability over HTTP while simulations
// run: a JSON snapshot endpoint with run counters and the most recent
// sampler intervals, a provenance endpoint rendering the current
// cross-workload attribution, and the process's expvar page. The server is
// a pure observer — it only reads snapshots the simulation side pushes, so
// attaching it cannot perturb results.
package live

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/bertisim/berti/internal/obs"
)

// RecentRows bounds the sampler intervals kept for the snapshot endpoint.
const RecentRows = 64

// expvar's registry is process-global and Publish panics on duplicate
// names, so the berti map is published exactly once regardless of how many
// servers a process (or test binary) starts.
var (
	pubOnce sync.Once
	pubMap  *expvar.Map
)

func bertiVars() *expvar.Map {
	pubOnce.Do(func() { pubMap = expvar.NewMap("berti") })
	return pubMap
}

// Server serves live campaign metrics. It either owns its own HTTP
// listener (New) or is mounted onto an existing mux (NewServer + Mount —
// the campaign server embeds the same endpoints without duplicating the
// handler wiring).
//
//	GET /metrics             — JSON snapshot: schema version, run counters,
//	                           sampler-row counters, the last RecentRows
//	                           sampler intervals.
//	GET /metrics/provenance  — the attribution document from the installed
//	                           provider (404 until one is set).
//	GET /debug/vars          — the process expvar page (includes the
//	                           "berti" map mirroring the run counters).
type Server struct {
	ln  net.Listener
	srv *http.Server

	completed atomic.Uint64
	failed    atomic.Uint64
	rowsSeen  atomic.Uint64

	// Fleet counters (distributed worker protocol).
	remoteResults  atomic.Uint64
	leasesGranted  atomic.Uint64
	leasesExpired  atomic.Uint64
	reassigned     atomic.Uint64
	dupResults     atomic.Uint64
	unknownResults atomic.Uint64

	mu     sync.Mutex
	recent []obs.Row
	next   int
	wrap   bool
	attrib func() any
	fleet  func() FleetGauges
}

// NewServer builds a listener-less metrics server for embedding: call
// Mount to register its endpoints on an existing mux. Counters and the
// sampler ring work identically to a listening server.
func NewServer() *Server {
	return &Server{recent: make([]obs.Row, RecentRows)}
}

// Mount registers the metrics endpoints on mux. The same wiring backs both
// the standalone -metrics-addr listener and the campaign server's API mux.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/provenance", s.handleProvenance)
	mux.Handle("/debug/vars", expvar.Handler())
}

// New binds addr (e.g. "localhost:0", ":8090") and starts serving. Close
// the returned server to release the port.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s := NewServer()
	mux := http.NewServeMux()
	s.Mount(mux)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listener address (resolves ":0" binds for tests);
// empty for an embedded (Mount-only) server.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down (a no-op for an embedded server, whose
// lifecycle belongs to the mux owner).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// SetAttribution installs the provider for /metrics/provenance. The
// provider is invoked per request and its result JSON-encoded — pass e.g. a
// closure over a harness ProvenanceRollup's Report method.
func (s *Server) SetAttribution(f func() any) {
	s.mu.Lock()
	s.attrib = f
	s.mu.Unlock()
}

// RunCompleted records one successfully-finished simulation.
func (s *Server) RunCompleted() {
	s.completed.Add(1)
	bertiVars().Add("runs_completed", 1)
}

// RunFailed records one failed simulation.
func (s *Server) RunFailed() {
	s.failed.Add(1)
	bertiVars().Add("runs_failed", 1)
}

// RemoteResult records one result pushed by a distributed worker (as
// opposed to executed by the local pool).
func (s *Server) RemoteResult() {
	s.remoteResults.Add(1)
	bertiVars().Add("remote_results", 1)
}

// LeaseGranted records one lease handed to a worker.
func (s *Server) LeaseGranted() {
	s.leasesGranted.Add(1)
	bertiVars().Add("leases_granted", 1)
}

// LeaseExpired records one lease whose deadline passed without completion
// (worker crashed, partitioned, or too slow).
func (s *Server) LeaseExpired() {
	s.leasesExpired.Add(1)
	bertiVars().Add("leases_expired", 1)
}

// SpecsReassigned records n specs returned to the pending queue by lease
// expiry — each will be leased again to a live worker.
func (s *Server) SpecsReassigned(n int) {
	s.reassigned.Add(uint64(n))
	bertiVars().Add("specs_reassigned", int64(n))
}

// DuplicateResult records one result for a spec that had already
// completed (late push from a reassigned lease, or a duplicated request):
// accepted on the wire, deduped in accounting.
func (s *Server) DuplicateResult() {
	s.dupResults.Add(1)
	bertiVars().Add("duplicate_results_deduped", 1)
}

// UnknownResult records one result for a key the coordinator never leased
// (a stale or misdirected worker).
func (s *Server) UnknownResult() {
	s.unknownResults.Add(1)
	bertiVars().Add("unknown_results", 1)
}

// SetFleetGauges installs the provider for point-in-time fleet state
// (worker liveness, leases outstanding, specs pending). The provider is
// invoked per /metrics request; pass a closure over the coordinator's
// lease pool.
func (s *Server) SetFleetGauges(f func() FleetGauges) {
	s.mu.Lock()
	s.fleet = f
	s.mu.Unlock()
}

// RecordRow ingests one freshly-closed sampler interval (wire it to
// obs.Sampler.OnRow). Only the last RecentRows rows are retained.
func (s *Server) RecordRow(r obs.Row) {
	s.rowsSeen.Add(1)
	bertiVars().Add("sampler_rows", 1)
	s.mu.Lock()
	s.recent[s.next] = r
	s.next++
	if s.next == len(s.recent) {
		s.next, s.wrap = 0, true
	}
	s.mu.Unlock()
}

// FleetGauges is the point-in-time worker-fleet state supplied by the
// coordinator's lease pool via SetFleetGauges.
type FleetGauges struct {
	// WorkersSeen counts every distinct worker ID that ever acquired a
	// lease or heartbeat; WorkersLive counts those seen within the
	// liveness window (lease TTL).
	WorkersSeen int `json:"workers_seen"`
	WorkersLive int `json:"workers_live"`
	// LeasesOutstanding counts currently-held leases; SpecsPending counts
	// specs waiting to be leased.
	LeasesOutstanding int `json:"leases_outstanding"`
	SpecsPending      int `json:"specs_pending"`
}

// FleetSnapshot is the fleet section of the /metrics response: the gauges
// plus the cumulative lease-lifecycle counters.
type FleetSnapshot struct {
	FleetGauges
	RemoteResults    uint64 `json:"remote_results"`
	LeasesGranted    uint64 `json:"leases_granted"`
	LeasesExpired    uint64 `json:"leases_expired"`
	SpecsReassigned  uint64 `json:"specs_reassigned"`
	DuplicateResults uint64 `json:"duplicate_results_deduped"`
	UnknownResults   uint64 `json:"unknown_results"`
}

// Snapshot is the /metrics response document.
type Snapshot struct {
	SchemaVersion int           `json:"schema_version"`
	RunsCompleted uint64        `json:"runs_completed"`
	RunsFailed    uint64        `json:"runs_failed"`
	SamplerRows   uint64        `json:"sampler_rows"`
	Fleet         FleetSnapshot `json:"fleet"`
	Recent        []obs.Row     `json:"recent_rows"`
}

// snapshot assembles the current snapshot (recent rows oldest-first).
func (s *Server) snapshot() *Snapshot {
	s.mu.Lock()
	var rows []obs.Row
	if s.wrap {
		rows = append(rows, s.recent[s.next:]...)
		rows = append(rows, s.recent[:s.next]...)
	} else {
		rows = append(rows, s.recent[:s.next]...)
	}
	fleet := s.fleet
	s.mu.Unlock()
	snap := &Snapshot{
		SchemaVersion: obs.SchemaVersion,
		RunsCompleted: s.completed.Load(),
		RunsFailed:    s.failed.Load(),
		SamplerRows:   s.rowsSeen.Load(),
		Fleet: FleetSnapshot{
			RemoteResults:    s.remoteResults.Load(),
			LeasesGranted:    s.leasesGranted.Load(),
			LeasesExpired:    s.leasesExpired.Load(),
			SpecsReassigned:  s.reassigned.Load(),
			DuplicateResults: s.dupResults.Load(),
			UnknownResults:   s.unknownResults.Load(),
		},
		Recent: rows,
	}
	if fleet != nil {
		snap.Fleet.FleetGauges = fleet()
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.snapshot())
}

func (s *Server) handleProvenance(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	f := s.attrib
	s.mu.Unlock()
	if f == nil {
		http.Error(w, "no attribution provider installed", http.StatusNotFound)
		return
	}
	writeJSON(w, f())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
