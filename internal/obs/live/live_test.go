package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/bertisim/berti/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestMetricsSnapshotAndCounters(t *testing.T) {
	s, err := New("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.RunCompleted()
	s.RunCompleted()
	s.RunFailed()
	for i := 0; i < RecentRows+10; i++ {
		s.RecordRow(obs.Row{Interval: i, IPC: float64(i)})
	}

	code, body := get(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad snapshot JSON: %v\n%s", err, body)
	}
	if snap.SchemaVersion != obs.SchemaVersion {
		t.Fatalf("schema version = %d, want %d", snap.SchemaVersion, obs.SchemaVersion)
	}
	if snap.RunsCompleted != 2 || snap.RunsFailed != 1 {
		t.Fatalf("run counters = %d/%d, want 2/1", snap.RunsCompleted, snap.RunsFailed)
	}
	if snap.SamplerRows != RecentRows+10 {
		t.Fatalf("sampler rows = %d, want %d", snap.SamplerRows, RecentRows+10)
	}
	// The ring keeps the newest RecentRows rows, oldest first.
	if len(snap.Recent) != RecentRows {
		t.Fatalf("recent rows = %d, want %d", len(snap.Recent), RecentRows)
	}
	if snap.Recent[0].Interval != 10 || snap.Recent[RecentRows-1].Interval != RecentRows+9 {
		t.Fatalf("ring order wrong: first=%d last=%d",
			snap.Recent[0].Interval, snap.Recent[RecentRows-1].Interval)
	}
}

func TestProvenanceEndpointAndExpvar(t *testing.T) {
	s, err := New("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, _ := get(t, fmt.Sprintf("http://%s/metrics/provenance", s.Addr()))
	if code != http.StatusNotFound {
		t.Fatalf("provenance endpoint without provider = %d, want 404", code)
	}
	s.SetAttribution(func() any { return map[string]int{"timely": 7} })
	code, body := get(t, fmt.Sprintf("http://%s/metrics/provenance", s.Addr()))
	if code != http.StatusOK {
		t.Fatalf("provenance endpoint = %d", code)
	}
	var doc map[string]int
	if err := json.Unmarshal(body, &doc); err != nil || doc["timely"] != 7 {
		t.Fatalf("provenance body = %s (err %v)", body, err)
	}

	code, body = get(t, fmt.Sprintf("http://%s/debug/vars", s.Addr()))
	if code != http.StatusOK {
		t.Fatalf("expvar page = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar page is not JSON: %v", err)
	}
	if _, ok := vars["berti"]; !ok {
		t.Fatalf("expvar page missing the berti map: %s", body)
	}

	// A second server in the same process must not panic on the expvar
	// re-publish (sync.Once guard).
	s2, err := New("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

// TestFleetMetrics: the distributed-worker counters and the installed
// gauge provider surface in the /metrics fleet section and on the expvar
// page — the observability contract the chaos tests assert against.
func TestFleetMetrics(t *testing.T) {
	s, err := New("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body := get(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var before Snapshot
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatalf("bad snapshot JSON: %v\n%s", err, body)
	}
	if before.Fleet != (FleetSnapshot{}) {
		t.Fatalf("fresh server fleet section = %+v, want zero", before.Fleet)
	}

	s.RemoteResult()
	s.RemoteResult()
	s.RemoteResult()
	s.LeaseGranted()
	s.LeaseGranted()
	s.LeaseExpired()
	s.SpecsReassigned(4)
	s.DuplicateResult()
	s.UnknownResult()
	s.SetFleetGauges(func() FleetGauges {
		return FleetGauges{WorkersSeen: 3, WorkersLive: 2, LeasesOutstanding: 1, SpecsPending: 5}
	})

	code, body = get(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad snapshot JSON: %v\n%s", err, body)
	}
	want := FleetSnapshot{
		FleetGauges:      FleetGauges{WorkersSeen: 3, WorkersLive: 2, LeasesOutstanding: 1, SpecsPending: 5},
		RemoteResults:    3,
		LeasesGranted:    2,
		LeasesExpired:    1,
		SpecsReassigned:  4,
		DuplicateResults: 1,
		UnknownResults:   1,
	}
	if snap.Fleet != want {
		t.Fatalf("fleet snapshot = %+v, want %+v", snap.Fleet, want)
	}

	// The cumulative counters mirror into the process expvar map. Counters
	// are process-global across tests, so assert presence and floor, not
	// exact values.
	code, body = get(t, fmt.Sprintf("http://%s/debug/vars", s.Addr()))
	if code != http.StatusOK {
		t.Fatalf("expvar page = %d", code)
	}
	var vars struct {
		Berti map[string]int64 `json:"berti"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar page is not JSON: %v", err)
	}
	for key, floor := range map[string]int64{
		"remote_results":            3,
		"leases_granted":            2,
		"leases_expired":            1,
		"specs_reassigned":          4,
		"duplicate_results_deduped": 1,
		"unknown_results":           1,
	} {
		got, ok := vars.Berti[key]
		if !ok {
			t.Fatalf("expvar berti map missing %q: %v", key, vars.Berti)
		}
		if got < floor {
			t.Fatalf("expvar %s = %d, want >= %d", key, got, floor)
		}
	}
}

// TestMountOnExistingMux: an embedded server (NewServer + Mount) serves the
// same endpoints through a caller-owned mux — the campaign-server wiring —
// and its lifecycle helpers are safe without a listener.
func TestMountOnExistingMux(t *testing.T) {
	s := NewServer()
	if s.Addr() != "" {
		t.Fatalf("embedded server must have no address, got %q", s.Addr())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("embedded Close must be a no-op, got %v", err)
	}

	mux := http.NewServeMux()
	s.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	s.RunCompleted()
	s.RunFailed()
	s.RecordRow(obs.Row{Interval: 3, IPC: 1.5})

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics via mounted mux = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad snapshot JSON: %v\n%s", err, body)
	}
	if snap.RunsCompleted != 1 || snap.RunsFailed != 1 || len(snap.Recent) != 1 {
		t.Fatalf("mounted snapshot = %+v, want 1 completed / 1 failed / 1 row", snap)
	}
	if code, _ := get(t, ts.URL+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("expvar page via mounted mux = %d", code)
	}
	if code, _ := get(t, ts.URL+"/metrics/provenance"); code != http.StatusNotFound {
		t.Fatalf("provenance without provider via mounted mux = %d, want 404", code)
	}
}
