// Package obs is the simulator's observability layer: an interval sampler
// that turns cumulative counters into per-interval time series (IPC, MPKI,
// prefetch accuracy/coverage/lateness, MSHR occupancy, DRAM row-hit rate),
// a bounded structured event tracer exportable as Chrome trace_event JSON,
// and an optional introspection interface prefetchers may implement to
// expose internal gauges (Berti reports delta-table state).
//
// Everything here is zero-cost when disabled: the simulator holds nil
// pointers to the sampler/tracer and guards every emission with a single
// nil check, so runs without observability pay no measurable overhead.
package obs

import (
	"github.com/bertisim/berti/internal/stats"
)

// SchemaVersion identifies the observability output shape: the time-series
// row set (CSV columns and JSON fields), the series summary, and the
// provenance report/attribution schema. Bump it on any breaking change so
// downstream tooling can detect incompatibility.
//
// v2: time-series summaries gained clamped_rows (interval accuracy clamps
// are counted, not silent) and the prefetch-provenance report/CSV joined
// the schema.
const SchemaVersion = 2

// Source identifies where an event or counter came from. Values 0..3
// deliberately match internal/cache.Level (L1D, L2, LLC, MEM) so cache
// levels can pass their level number through without a conversion table.
type Source uint8

// Event/gauge sources.
const (
	SrcL1D Source = iota
	SrcL2
	SrcLLC
	SrcMEM
	SrcMMU
	SrcCore
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SrcL1D:
		return "L1D"
	case SrcL2:
		return "L2"
	case SrcLLC:
		return "LLC"
	case SrcMEM:
		return "MEM"
	case SrcMMU:
		return "MMU"
	case SrcCore:
		return "Core"
	default:
		return "?"
	}
}

// Introspector is optionally implemented by prefetchers that expose
// internal gauges. Introspect fills out with named values; the sampler
// calls it once per interval. Keys must be stable across calls (they become
// CSV columns). Values may be instantaneous gauges (occupancies) or
// cumulative counters; the sampler records them as-is.
type Introspector interface {
	Introspect(out map[string]float64)
}

// Snapshot is a capture of the simulator's cumulative counters at one
// instant. The sampler differences consecutive snapshots to produce
// per-interval rows.
type Snapshot struct {
	Cycle        uint64
	Instructions uint64

	Core stats.CoreStats
	TLB  stats.TLBStats
	L1D  stats.CacheStats
	L2   stats.CacheStats
	LLC  stats.CacheStats
	DRAM stats.DRAMStats

	// L1DMSHROccupancy is the instantaneous MSHR occupancy at sample time.
	L1DMSHROccupancy int
	// Gauges holds prefetcher introspection values (nil when the attached
	// prefetcher does not implement Introspector).
	Gauges map[string]float64
}

// Observer bundles the enabled observability sinks. Nil fields disable the
// corresponding subsystem.
type Observer struct {
	Sampler *Sampler
	Tracer  *Tracer
}
