// Package core implements Berti, the paper's primary contribution: a
// first-level data-cache prefetcher that selects, per instruction pointer,
// the local deltas that yield timely prefetches, estimates each delta's
// coverage, and issues prefetch requests only for high-coverage deltas,
// orchestrating the fill level (L1D vs. L2) with coverage and MSHR-occupancy
// watermarks (Section III and Figures 4-6 of the paper).
package core

import (
	"fmt"

	"github.com/bertisim/berti/internal/cache"
)

// Delta status values (the 2-bit status field of the table of deltas).
const (
	statusNoPref uint8 = iota
	statusL2Repl       // L2 prefetch, replaceable (coverage < 50% last phase)
	statusL2           // fill till L2
	statusL1D          // fill till L1D
)

// Config holds every Berti parameter. The zero value is not valid; use
// DefaultConfig and mutate for the sensitivity studies (Figs. 21-22, §IV.J).
type Config struct {
	// HistorySets and HistoryWays give the history-table geometry
	// (8 sets x 16 ways = 128 entries in the paper).
	HistorySets int
	HistoryWays int
	// DeltaTableEntries is the number of table-of-deltas entries (16).
	DeltaTableEntries int
	// DeltasPerEntry is the per-IP delta array length (16).
	DeltasPerEntry int
	// MaxTimelyPerSearch bounds deltas collected per history search (8).
	MaxTimelyPerSearch int
	// MaxSelectedDeltas bounds deltas given L1D/L2 status per phase (12).
	MaxSelectedDeltas int
	// HighWatermarkPct is the L1D-fill coverage watermark (65).
	HighWatermarkPct int
	// MediumWatermarkPct is the L2-fill coverage watermark (35).
	MediumWatermarkPct int
	// ReplWatermarkPct marks L2 deltas replaceable below it (50).
	ReplWatermarkPct int
	// WarmupHighPct is the raised high watermark used before the first
	// learning phase completes (80).
	WarmupHighPct int
	// WarmupMinSearches is the minimum search count before warm-up
	// prefetching starts (8).
	WarmupMinSearches int
	// MSHROccupancyPct: prefetch fills to L1D only when MSHR occupancy
	// is below this fraction (70).
	MSHROccupancyPct int
	// TimelinessMarginPct inflates the measured fetch latency when
	// deciding which history entries are timely, compensating for
	// prefetch requests being slower than demand requests (PQ queueing
	// and demand-priority scheduling; Section III-A notes prefetch
	// latency exceeds demand latency). 25 = require 1.25x latency.
	TimelinessMarginPct int
	// MediumBandOnTriggerOnly restricts medium-coverage (L2-fill) deltas
	// to trigger events that would have missed in the baseline (demand
	// misses and first hits on prefetched lines), keeping the
	// medium-confidence traffic small; high-coverage deltas still issue
	// on every access.
	MediumBandOnTriggerOnly bool
	// LatencyBits is the width of the per-line latency counter (12);
	// latencies that overflow are set to zero and not learned (§IV.J).
	LatencyBits int
	// TimestampBits is the width of history timestamps (16).
	TimestampBits int
	// DeltaBits is the signed width of a stored delta (13).
	DeltaBits int
	// LineAddrBits is the width of stored line addresses (24).
	LineAddrBits int
	// CrossPage enables issuing prefetches that cross a 4 KB page
	// (training is unaffected; §IV.J cross-page ablation).
	CrossPage bool
	// KeyByPage switches the learning context from the instruction
	// pointer to the 4 KB page, turning the prefetcher into the DPC-3
	// per-page Berti this paper's design evolved from (reference [46]).
	// The MICRO 2022 contribution is exactly the per-IP (local) keying.
	KeyByPage bool
	// L1DLines is the number of L1D lines carrying latency metadata
	// (768 for the 48 KB L1D), used only for the storage report.
	L1DLines int
	// PQEntries and MSHREntries carry timestamp fields (16 each), used
	// only for the storage report.
	PQEntries, MSHREntries int
}

// DPC3Config returns the per-page ancestor of Berti (Ros, DPC-3 2019):
// identical machinery keyed by page instead of IP.
func DPC3Config() Config {
	cfg := DefaultConfig()
	cfg.KeyByPage = true
	return cfg
}

// DefaultConfig returns the paper's configuration (Table I, Section III-C).
func DefaultConfig() Config {
	return Config{
		HistorySets:             8,
		HistoryWays:             16,
		DeltaTableEntries:       16,
		DeltasPerEntry:          16,
		MaxTimelyPerSearch:      8,
		MaxSelectedDeltas:       12,
		HighWatermarkPct:        65,
		MediumWatermarkPct:      35,
		ReplWatermarkPct:        50,
		WarmupHighPct:           80,
		WarmupMinSearches:       8,
		MSHROccupancyPct:        70,
		TimelinessMarginPct:     25,
		MediumBandOnTriggerOnly: false,
		LatencyBits:             12,
		TimestampBits:           16,
		DeltaBits:               13,
		LineAddrBits:            24,
		CrossPage:               true,
		L1DLines:                768,
		PQEntries:               16,
		MSHREntries:             16,
	}
}

// histEntry is one history-table entry: IP tag, line address, timestamp.
type histEntry struct {
	valid   bool
	ipTag   uint64
	line    uint64 // masked to LineAddrBits
	ts      uint64 // masked to TimestampBits
	fifoSeq uint64 // insertion order within the set (FIFO replacement)
}

// deltaSlot is one element of a table-of-deltas entry's delta array.
type deltaSlot struct {
	delta    int64 // non-zero when occupied
	coverage uint8 // 4-bit occurrence counter within the phase
	status   uint8 // 2-bit fill-level status from the previous phase
	// lastCov is the measured coverage (percent) that earned the status in
	// the previous phase close-out — Berti's internal confidence for
	// prefetches issued on this delta, reported to the provenance layer
	// so claimed confidence can be crossed against ground-truth outcomes.
	// Observability only: not part of the paper's hardware budget.
	lastCov uint8
}

// deltaEntry is one table-of-deltas entry.
type deltaEntry struct {
	valid   bool
	tag     uint64 // 10-bit hash of the IP
	counter uint8  // 4-bit search counter
	deltas  []deltaSlot
	warmed  bool // at least one learning phase completed
	fifoSeq uint64
}

// Berti implements cache.Prefetcher.
type Berti struct {
	cfg     Config
	history []histEntry // HistorySets * HistoryWays
	table   []deltaEntry
	fifoSeq uint64

	tsMask   uint64
	lineMask uint64
	deltaMax int64

	// Stats observable by the harness.
	Searches      uint64
	TimelyDeltas  uint64
	PhaseResets   uint64
	IssuedL1D     uint64
	IssuedL2      uint64
	DroppedXPage  uint64
	DiscardDeltas uint64

	// scratch buffers avoid per-access allocation.
	scratch    []cache.PrefetchReq
	cands      []deltaCand
	deltaOut   []int64
	idxScratch []int
}

// deltaCand is a timely-delta search candidate.
type deltaCand struct {
	delta int64
	seq   uint64
}

// ConfigError reports an invalid Berti configuration.
type ConfigError struct {
	// Field names the offending parameter.
	Field string
	// Reason describes the constraint that failed.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid Berti config %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration's internal consistency. It returns a
// *ConfigError describing the first violated constraint, or nil. Callers
// constructing Berti from user-supplied parameters must validate before
// calling New (which panics on geometry it cannot build).
func (c Config) Validate() error {
	bad := func(field string, got int) error {
		return &ConfigError{Field: field, Reason: fmt.Sprintf("must be >= 1, got %d", got)}
	}
	if c.HistorySets <= 0 {
		return bad("HistorySets", c.HistorySets)
	}
	if c.HistoryWays <= 0 {
		return bad("HistoryWays", c.HistoryWays)
	}
	if c.DeltaTableEntries <= 0 {
		return bad("DeltaTableEntries", c.DeltaTableEntries)
	}
	if c.DeltasPerEntry <= 0 {
		return bad("DeltasPerEntry", c.DeltasPerEntry)
	}
	if c.DeltaBits < 2 || c.DeltaBits > 32 {
		return &ConfigError{Field: "DeltaBits", Reason: fmt.Sprintf("must be in [2,32], got %d", c.DeltaBits)}
	}
	if c.TimestampBits < 1 || c.TimestampBits > 63 {
		return &ConfigError{Field: "TimestampBits", Reason: fmt.Sprintf("must be in [1,63], got %d", c.TimestampBits)}
	}
	if c.LineAddrBits < 1 || c.LineAddrBits > 63 {
		return &ConfigError{Field: "LineAddrBits", Reason: fmt.Sprintf("must be in [1,63], got %d", c.LineAddrBits)}
	}
	return nil
}

// New builds a Berti prefetcher with cfg. It panics on an invalid
// configuration; user-supplied configurations must be checked with
// Config.Validate first (the factory call sites are no-error closures).
func New(cfg Config) *Berti {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := &Berti{
		cfg:      cfg,
		history:  make([]histEntry, cfg.HistorySets*cfg.HistoryWays),
		table:    make([]deltaEntry, cfg.DeltaTableEntries),
		tsMask:   (1 << cfg.TimestampBits) - 1,
		lineMask: (1 << cfg.LineAddrBits) - 1,
		deltaMax: (1 << (cfg.DeltaBits - 1)) - 1,
	}
	for i := range b.table {
		b.table[i].deltas = make([]deltaSlot, cfg.DeltasPerEntry)
	}
	// closePhase ranks at most DeltasPerEntry candidates; pre-sizing the
	// index scratch keeps the access path allocation-free.
	b.idxScratch = make([]int, 0, cfg.DeltasPerEntry)
	return b
}

// Name implements cache.Prefetcher.
func (b *Berti) Name() string {
	if b.cfg.KeyByPage {
		return "berti-dpc3"
	}
	return "berti"
}

// key selects the learning context: the IP (the paper's local deltas) or
// the 4 KB page (the DPC-3 ancestor).
func (b *Berti) key(ip, vline uint64) uint64 {
	if b.cfg.KeyByPage {
		return vline >> (12 - cache.LineShift)
	}
	return ip
}

// StorageBits implements cache.Prefetcher: the Table I budget.
func (b *Berti) StorageBits() int {
	histEntryBits := 7 + b.cfg.LineAddrBits + b.cfg.TimestampBits
	histBits := b.cfg.HistorySets*b.cfg.HistoryWays*histEntryBits + b.cfg.HistorySets*4
	deltaBits := b.cfg.DeltaTableEntries*(10+4+b.cfg.DeltasPerEntry*(b.cfg.DeltaBits+4+2)) + 4
	queueBits := (b.cfg.PQEntries + b.cfg.MSHREntries) * b.cfg.TimestampBits
	l1dBits := b.cfg.L1DLines * b.cfg.LatencyBits
	return histBits + deltaBits + queueBits + l1dBits
}

// hashIP folds the IP so set indexing works for any instruction alignment
// (hardware would drop the fixed low bits; traces here have arbitrary IP
// spacing).
func hashIP(ip uint64) uint64 {
	return ip ^ ip>>7 ^ ip>>15
}

// historySet returns the set slice for ip.
func (b *Berti) historySet(ip uint64) []histEntry {
	s := int(hashIP(ip) % uint64(b.cfg.HistorySets))
	return b.history[s*b.cfg.HistoryWays : (s+1)*b.cfg.HistoryWays]
}

// ipTag is the 7-bit history tag (after removing index bits).
func (b *Berti) ipTag(ip uint64) uint64 {
	return (hashIP(ip) / uint64(b.cfg.HistorySets)) & 0x7F
}

// tableTag is the 10-bit table-of-deltas tag.
func (b *Berti) tableTag(ip uint64) uint64 {
	return (ip ^ ip>>10 ^ ip>>20) & 0x3FF
}

// insertHistory records an access (demand miss or first demand hit on a
// prefetched line) in the IP's history set with FIFO replacement.
func (b *Berti) insertHistory(ip, vline, cycle uint64) {
	set := b.historySet(ip)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].fifoSeq < set[victim].fifoSeq {
			victim = i
		}
	}
	b.fifoSeq++
	set[victim] = histEntry{
		valid:   true,
		ipTag:   b.ipTag(ip),
		line:    vline & b.lineMask,
		ts:      cycle & b.tsMask,
		fifoSeq: b.fifoSeq,
	}
}

// maskLatency applies the LatencyBits overflow-to-zero rule.
func (b *Berti) maskLatency(lat uint64) uint64 {
	if lat >= 1<<b.cfg.LatencyBits {
		return 0
	}
	return lat
}

// timelyDeltas searches the IP's history for accesses old enough that a
// prefetch issued at their time would have completed by demandCycle, and
// returns the deltas of the youngest MaxTimelyPerSearch such entries.
func (b *Berti) timelyDeltas(ip, curLine, demandCycle, latency uint64) []int64 {
	if latency == 0 {
		return nil
	}
	latency += latency * uint64(b.cfg.TimelinessMarginPct) / 100
	if latency > b.tsMask {
		latency = b.tsMask
	}
	set := b.historySet(ip)
	tag := b.ipTag(ip)
	cur := curLine & b.lineMask
	demand16 := demandCycle & b.tsMask

	b.cands = b.cands[:0]
	for i := range set {
		e := &set[i]
		if !e.valid || e.ipTag != tag {
			continue
		}
		// Age of the entry at the demand, in 16-bit wraparound space.
		age := (demand16 - e.ts) & b.tsMask
		if age < latency {
			continue // a prefetch issued then would have been late
		}
		d := signExtend(cur-e.line, b.cfg.LineAddrBits)
		if d == 0 || d > b.deltaMax || d < -b.deltaMax-1 {
			continue
		}
		b.cands = append(b.cands, deltaCand{delta: d, seq: e.fifoSeq})
	}
	// Youngest entries first (a history set holds at most 16 entries, so
	// insertion sort beats sort.Slice's allocation).
	cands := b.cands
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].seq > cands[j-1].seq; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > b.cfg.MaxTimelyPerSearch {
		cands = cands[:b.cfg.MaxTimelyPerSearch]
	}
	b.deltaOut = b.deltaOut[:0]
	for _, c := range cands {
		dup := false
		for _, d := range b.deltaOut {
			if d == c.delta {
				dup = true
				break
			}
		}
		if !dup {
			b.deltaOut = append(b.deltaOut, c.delta)
		}
	}
	return b.deltaOut
}

// signExtend interprets the low `bits` bits of v as a signed value.
func signExtend(v uint64, bits int) int64 {
	v &= (1 << bits) - 1
	if v&(1<<(bits-1)) != 0 {
		return int64(v) - (1 << bits)
	}
	return int64(v)
}

// findTableEntry returns the table-of-deltas entry for ip, or nil.
func (b *Berti) findTableEntry(ip uint64) *deltaEntry {
	tag := b.tableTag(ip)
	for i := range b.table {
		if b.table[i].valid && b.table[i].tag == tag {
			return &b.table[i]
		}
	}
	return nil
}

// allocTableEntry allocates (FIFO) an entry for ip, resetting it.
func (b *Berti) allocTableEntry(ip uint64) *deltaEntry {
	victim := 0
	for i := range b.table {
		if !b.table[i].valid {
			victim = i
			break
		}
		if b.table[i].fifoSeq < b.table[victim].fifoSeq {
			victim = i
		}
	}
	b.fifoSeq++
	e := &b.table[victim]
	e.valid = true
	e.tag = b.tableTag(ip)
	e.counter = 0
	e.warmed = false
	e.fifoSeq = b.fifoSeq
	for i := range e.deltas {
		e.deltas[i] = deltaSlot{}
	}
	return e
}

// recordSearch accumulates one history search's timely deltas into the
// table of deltas, running a learning-phase close-out when the 4-bit
// counter overflows.
func (b *Berti) recordSearch(ip uint64, deltas []int64) {
	e := b.findTableEntry(ip)
	if e == nil {
		e = b.allocTableEntry(ip)
	}
	e.counter++
	for _, d := range deltas {
		b.bumpDelta(e, d)
	}
	if e.counter >= 16 {
		b.closePhase(e)
	}
}

// bumpDelta increments the coverage of d, inserting it if absent.
func (b *Berti) bumpDelta(e *deltaEntry, d int64) {
	var free *deltaSlot
	for i := range e.deltas {
		s := &e.deltas[i]
		if s.delta == d {
			if s.coverage < 15 {
				s.coverage++
			}
			return
		}
		if free == nil && s.delta == 0 {
			free = s
		}
	}
	if free != nil {
		*free = deltaSlot{delta: d, coverage: 1, status: statusNoPref}
		return
	}
	// Evict: lowest-coverage slot whose status is replaceable.
	var victim *deltaSlot
	for i := range e.deltas {
		s := &e.deltas[i]
		if s.status != statusL2Repl && s.status != statusNoPref {
			continue
		}
		if victim == nil || s.coverage < victim.coverage {
			victim = s
		}
	}
	if victim == nil {
		b.DiscardDeltas++
		return
	}
	*victim = deltaSlot{delta: d, coverage: 1, status: statusNoPref}
}

// closePhase computes coverages against the 16-search window and assigns
// statuses, then begins a new learning phase.
func (b *Berti) closePhase(e *deltaEntry) {
	b.PhaseResets++
	// Rank candidate deltas by coverage so the MaxSelectedDeltas bound
	// keeps the best ones.
	idx := b.idxScratch[:0]
	for i := range e.deltas {
		if e.deltas[i].delta != 0 {
			idx = append(idx, i)
		}
	}
	// Insertion sort by descending coverage (at most 16 elements).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && e.deltas[idx[j]].coverage > e.deltas[idx[j-1]].coverage; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	selected := 0
	highCov := uint8(16 * b.cfg.HighWatermarkPct / 100)  // cov > this => L1D
	medCov := uint8(16 * b.cfg.MediumWatermarkPct / 100) // cov > this => L2
	replCov := uint8(16 * b.cfg.ReplWatermarkPct / 100)  // cov < this => replaceable
	for _, i := range idx {
		s := &e.deltas[i]
		switch {
		case selected < b.cfg.MaxSelectedDeltas && s.coverage > highCov:
			s.status = statusL1D
			selected++
		case selected < b.cfg.MaxSelectedDeltas && s.coverage > medCov:
			if s.coverage < replCov {
				s.status = statusL2Repl
			} else {
				s.status = statusL2
			}
			selected++
		default:
			s.status = statusNoPref
		}
		s.lastCov = covPercent(s.coverage, 16)
		s.coverage = 0
	}
	e.counter = 0
	e.warmed = true
}

// covPercent converts an occurrence count over n searches into a clamped
// percentage (the confidence reported with each issued prefetch).
func covPercent(cov uint8, n int) uint8 {
	if n <= 0 {
		return 0
	}
	p := int(cov) * 100 / n
	if p > 100 {
		p = 100
	}
	return uint8(p)
}

// OnAccess implements cache.Prefetcher. It trains on demand misses and on
// the first demand hit to a prefetched line, and predicts (issues
// prefetches) on every L1D access.
func (b *Berti) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	key := b.key(ev.IP, ev.LineAddr)
	if ev.PrefetchHit {
		// A prefetched line was demanded: this would have been a miss
		// in the baseline. Learn timely deltas using the stored
		// prefetch latency, then record the access in the history.
		lat := b.maskLatency(uint64(ev.PfLatency))
		if lat != 0 {
			b.Searches++
			deltas := b.timelyDeltas(key, ev.LineAddr, ev.Cycle, lat)
			b.TimelyDeltas += uint64(len(deltas))
			b.recordSearch(key, deltas)
		}
		b.insertHistory(key, ev.LineAddr, ev.Cycle)
	} else if !ev.Hit {
		// Demand miss: record in the history now; the timely-delta
		// search happens at fill time (OnFill) when the latency is
		// known.
		b.insertHistory(key, ev.LineAddr, ev.Cycle)
	}
	return b.predict(ev, !ev.Hit || ev.PrefetchHit)
}

// predict looks up the table of deltas and emits prefetch requests.
// isTrigger marks accesses that would have missed in the baseline (demand
// misses and first hits to prefetched lines).
func (b *Berti) predict(ev cache.AccessEvent, isTrigger bool) []cache.PrefetchReq {
	e := b.findTableEntry(b.key(ev.IP, ev.LineAddr))
	if e == nil {
		return nil
	}
	b.scratch = b.scratch[:0]
	mshrBelow := ev.MSHRCap == 0 ||
		ev.MSHROccupancy*100 < b.cfg.MSHROccupancyPct*ev.MSHRCap
	page := ev.LineAddr >> (12 - cache.LineShift)
	warmHigh := b.cfg.WarmupHighPct
	for i := range e.deltas {
		s := &e.deltas[i]
		if s.delta == 0 {
			continue
		}
		var level cache.Level
		conf := s.lastCov
		switch {
		case e.warmed && s.status == statusL1D:
			if mshrBelow {
				level = cache.L1D
			} else {
				level = cache.L2
			}
		case e.warmed && (s.status == statusL2 || s.status == statusL2Repl):
			if b.cfg.MediumBandOnTriggerOnly && !isTrigger {
				continue
			}
			level = cache.L2
		case !e.warmed && int(e.counter) >= b.cfg.WarmupMinSearches &&
			int(s.coverage)*100 >= warmHigh*int(e.counter):
			// Warm-up: issue early for very-high-coverage deltas. The
			// confidence is the live coverage ratio over the searches so
			// far (no closed phase to report yet).
			conf = covPercent(s.coverage, int(e.counter))
			if mshrBelow {
				level = cache.L1D
			} else {
				level = cache.L2
			}
		default:
			continue
		}
		target := uint64(int64(ev.LineAddr) + s.delta)
		if !b.cfg.CrossPage && target>>(12-cache.LineShift) != page {
			b.DroppedXPage++
			continue
		}
		if level == cache.L1D {
			b.IssuedL1D++
		} else {
			b.IssuedL2++
		}
		b.scratch = append(b.scratch, cache.PrefetchReq{
			LineAddr:   target,
			FillLevel:  level,
			Confidence: conf,
		})
	}
	return b.scratch
}

// OnFill implements cache.Prefetcher. Demand-caused fills trigger the
// timely-delta search with the measured fetch latency; prefetch-caused
// fills are ignored (their demand time is unknown).
func (b *Berti) OnFill(ev cache.FillEvent) {
	if ev.ByPrefetch {
		return
	}
	lat := b.maskLatency(ev.Latency)
	if lat == 0 {
		return
	}
	// The demand occurred latency cycles before the fill; a timely
	// prefetch must have been issued another latency before that.
	key := b.key(ev.IP, ev.LineAddr)
	demandCycle := ev.Cycle - lat
	b.Searches++
	deltas := b.timelyDeltas(key, ev.LineAddr, demandCycle, lat)
	b.TimelyDeltas += uint64(len(deltas))
	b.recordSearch(key, deltas)
}

// DeltaStatus describes one learned delta for introspection (Fig. 3).
type DeltaStatus struct {
	Delta    int64
	Coverage uint8
	Status   string
}

// SnapshotDeltas returns the current learned deltas for ip (empty when the
// IP has no table entry). Used by the Fig. 3 harness and tests.
func (b *Berti) SnapshotDeltas(ip uint64) []DeltaStatus {
	e := b.findTableEntry(ip)
	if e == nil {
		return nil
	}
	var out []DeltaStatus
	names := map[uint8]string{
		statusNoPref: "no_pref",
		statusL2Repl: "l2_pref_repl",
		statusL2:     "l2_pref",
		statusL1D:    "l1d_pref",
	}
	for i := range e.deltas {
		s := e.deltas[i]
		if s.delta == 0 {
			continue
		}
		out = append(out, DeltaStatus{Delta: s.delta, Coverage: s.coverage, Status: names[s.status]})
	}
	return out
}

// Introspect implements obs.Introspector: it exposes the delta-table
// occupancy, the per-delta coverage histogram, and the per-status delta
// counts (plus the cumulative training counters), sampled by the interval
// sampler to show when and how Berti's tables converge.
func (b *Berti) Introspect(out map[string]float64) {
	entries := 0
	var slots, l1dSlots, l2Slots, l2ReplSlots, noPrefSlots int
	var covHist [4]int // coverage buckets 0-3, 4-7, 8-11, 12-15
	for i := range b.table {
		e := &b.table[i]
		if !e.valid {
			continue
		}
		entries++
		for j := range e.deltas {
			s := &e.deltas[j]
			if s.delta == 0 {
				continue
			}
			slots++
			switch s.status {
			case statusL1D:
				l1dSlots++
			case statusL2:
				l2Slots++
			case statusL2Repl:
				l2ReplSlots++
			default:
				noPrefSlots++
			}
			covHist[s.coverage/4]++
		}
	}
	out["table_occupancy"] = float64(entries) / float64(len(b.table))
	out["delta_slot_occupancy"] = float64(slots) / float64(len(b.table)*b.cfg.DeltasPerEntry)
	out["deltas_l1d"] = float64(l1dSlots)
	out["deltas_l2"] = float64(l2Slots)
	out["deltas_l2_repl"] = float64(l2ReplSlots)
	out["deltas_no_pref"] = float64(noPrefSlots)
	out["cov_hist_0_3"] = float64(covHist[0])
	out["cov_hist_4_7"] = float64(covHist[1])
	out["cov_hist_8_11"] = float64(covHist[2])
	out["cov_hist_12_15"] = float64(covHist[3])
	out["searches"] = float64(b.Searches)
	out["timely_deltas"] = float64(b.TimelyDeltas)
	if b.Searches > 0 {
		out["timely_per_search"] = float64(b.TimelyDeltas) / float64(b.Searches)
	} else {
		out["timely_per_search"] = 0
	}
	out["phase_resets"] = float64(b.PhaseResets)
	out["issued_l1d"] = float64(b.IssuedL1D)
	out["issued_l2"] = float64(b.IssuedL2)
}

// String summarizes internal statistics.
func (b *Berti) String() string {
	return fmt.Sprintf("berti{searches=%d timely=%d phases=%d l1d=%d l2=%d}",
		b.Searches, b.TimelyDeltas, b.PhaseResets, b.IssuedL1D, b.IssuedL2)
}
