package core

import (
	"testing"
	"testing/quick"

	"github.com/bertisim/berti/internal/cache"
)

// feed simulates the cache-side protocol for a single-IP access sequence:
// each element is (line, cycle); every access is a demand miss whose fill
// arrives after latency cycles (triggering the timely-delta search).
func feed(b *Berti, ip uint64, accesses [][2]uint64, latency uint64) {
	for _, a := range accesses {
		line, cyc := a[0], a[1]
		b.OnAccess(cache.AccessEvent{IP: ip, LineAddr: line, Cycle: cyc, Hit: false})
		b.OnFill(cache.FillEvent{IP: ip, LineAddr: line, Cycle: cyc + latency, Latency: latency})
	}
}

func cfgNoMargin() Config {
	cfg := DefaultConfig()
	cfg.TimelinessMarginPct = 0
	return cfg
}

// TestFigure4Scenario reproduces the paper's Figure 4: with a fetch latency
// such that only sufficiently-old history entries are timely, the learned
// deltas are exactly the timely ones.
func TestFigure4Scenario(t *testing.T) {
	b := New(cfgNoMargin())
	const ip = 0x400aa1
	// Accesses at addresses 2, 5, 7, 10, 12, 15 (paper's Figure 2/4),
	// spaced 100 cycles apart with a fetch latency of 250 cycles: for
	// address 15 the timely origins are addresses 2 (+13) and 5 (+10).
	seq := [][2]uint64{{2, 100}, {5, 200}, {7, 300}, {10, 400}, {12, 500}, {15, 600}}
	feed(b, ip, seq, 250)

	ds := b.SnapshotDeltas(ip)
	found := map[int64]bool{}
	for _, d := range ds {
		found[d.Delta] = true
	}
	if !found[10] || !found[13] {
		t.Fatalf("expected timely deltas +10 and +13 learned, got %v", ds)
	}
	// Deltas +3 and +5 (from addresses 12 and 10) are NOT timely at
	// latency 250 with 100-cycle spacing (age 100, 200 < 250).
	if found[3] || found[5] {
		t.Fatalf("late deltas must not be learned: %v", ds)
	}
}

// TestConstantStrideLearnsMultiples: a stride-3 IP with latency covering k
// accesses learns multiples of 3 that are at least k accesses deep.
func TestConstantStrideLearnsMultiples(t *testing.T) {
	b := New(cfgNoMargin())
	const ip = 0x400bb2
	var seq [][2]uint64
	for i := uint64(0); i < 64; i++ {
		seq = append(seq, [2]uint64{1000 + 3*i, 100 * i})
	}
	feed(b, ip, seq, 350) // timely: entries >= 4 accesses old -> deltas >= +12
	ds := b.SnapshotDeltas(ip)
	if len(ds) == 0 {
		t.Fatal("nothing learned")
	}
	for _, d := range ds {
		if d.Delta%3 != 0 || d.Delta < 12 {
			t.Fatalf("unexpected delta %+d (want timely multiples of 3)", d.Delta)
		}
	}
	// After enough searches the high-coverage deltas must reach L1D
	// status and predict on accesses.
	reqs := b.OnAccess(cache.AccessEvent{
		IP: ip, LineAddr: 5000, Cycle: 10000, Hit: true,
		MSHRCap: 16, MSHROccupancy: 0,
	})
	if len(reqs) == 0 {
		t.Fatal("no prefetches issued for a learned constant-stride IP")
	}
	for _, r := range reqs {
		if (r.LineAddr-5000)%3 != 0 {
			t.Fatalf("prefetch target %d is not stride-aligned", r.LineAddr)
		}
	}
}

func TestMSHRWatermarkDemotesToL2(t *testing.T) {
	b := New(cfgNoMargin())
	const ip = 0x400cc3
	var seq [][2]uint64
	for i := uint64(0); i < 64; i++ {
		seq = append(seq, [2]uint64{2000 + 4*i, 100 * i})
	}
	feed(b, ip, seq, 350)
	hasL1D := func(reqs []cache.PrefetchReq) bool {
		for _, r := range reqs {
			if r.FillLevel == cache.L1D {
				return true
			}
		}
		return false
	}
	// NOTE: OnAccess results alias a scratch buffer, valid only until the
	// next call — evaluate each before issuing the next access.
	low := b.OnAccess(cache.AccessEvent{IP: ip, LineAddr: 9000, Cycle: 20000,
		Hit: true, MSHRCap: 16, MSHROccupancy: 0})
	if !hasL1D(low) {
		t.Fatal("low MSHR occupancy should allow L1D fills")
	}
	high := b.OnAccess(cache.AccessEvent{IP: ip, LineAddr: 9500, Cycle: 20001,
		Hit: true, MSHRCap: 16, MSHROccupancy: 15})
	if hasL1D(high) {
		t.Fatal("high MSHR occupancy must demote prefetches to L2")
	}
}

func TestLatencyOverflowNotLearned(t *testing.T) {
	cfg := cfgNoMargin()
	cfg.LatencyBits = 4 // overflow at 16 cycles
	b := New(cfg)
	const ip = 0x400dd4
	var seq [][2]uint64
	for i := uint64(0); i < 40; i++ {
		seq = append(seq, [2]uint64{3000 + 2*i, 100 * i})
	}
	feed(b, ip, seq, 200) // 200 >= 2^4: masked to zero, never learned
	if b.Searches != 0 {
		t.Fatalf("overflowed latencies must not trigger searches, got %d", b.Searches)
	}
	if ds := b.SnapshotDeltas(ip); len(ds) != 0 {
		t.Fatalf("learned deltas despite latency overflow: %v", ds)
	}
}

func TestCrossPageFiltering(t *testing.T) {
	cfg := cfgNoMargin()
	cfg.CrossPage = false
	b := New(cfg)
	const ip = 0x400ee5
	var seq [][2]uint64
	// Stride of 68 lines: every delta crosses a 4 KB page (64 lines).
	for i := uint64(0); i < 64; i++ {
		seq = append(seq, [2]uint64{10000 + 68*i, 100 * i})
	}
	feed(b, ip, seq, 350)
	reqs := b.OnAccess(cache.AccessEvent{IP: ip, LineAddr: 50000, Cycle: 30000,
		Hit: true, MSHRCap: 16})
	if len(reqs) != 0 {
		t.Fatalf("cross-page prefetches must be dropped, got %d", len(reqs))
	}
	if b.DroppedXPage == 0 {
		t.Fatal("expected cross-page drops to be counted")
	}
	// Training is unaffected: deltas were still learned.
	if ds := b.SnapshotDeltas(ip); len(ds) == 0 {
		t.Fatal("training should continue with cross-page prefetching disabled")
	}
}

func TestPrefetchHitTrainsWithStoredLatency(t *testing.T) {
	b := New(cfgNoMargin())
	const ip = 0x400ff6
	// Build history via misses first.
	var seq [][2]uint64
	for i := uint64(0); i < 16; i++ {
		seq = append(seq, [2]uint64{4000 + 5*i, 100 * i})
	}
	feed(b, ip, seq, 300)
	before := b.Searches
	// A demand hit on a prefetched line triggers a search with the
	// stored 12-bit latency.
	b.OnAccess(cache.AccessEvent{
		IP: ip, LineAddr: 4100, Cycle: 2000, Hit: true,
		PrefetchHit: true, PfLatency: 200,
	})
	if b.Searches != before+1 {
		t.Fatal("prefetch hit must trigger a timely-delta search")
	}
}

func TestStorageBitsMatchTableI(t *testing.T) {
	b := New(DefaultConfig())
	kb := float64(b.StorageBits()) / 8 / 1024
	if kb < 2.5 || kb > 2.6 {
		t.Fatalf("storage = %.3f KB, paper says 2.55 KB", kb)
	}
}

func TestSignExtendProperty(t *testing.T) {
	f := func(v int32) bool {
		// Any value fitting in 24 bits must roundtrip through the
		// masked representation.
		x := int64(v % (1 << 23))
		return signExtend(uint64(x)&((1<<24)-1), 24) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaTableEviction(t *testing.T) {
	b := New(cfgNoMargin())
	// Touch more IPs than the 16-entry table of deltas holds; the table
	// must keep working (FIFO) without panics and track at most 16.
	for ipIdx := 0; ipIdx < 40; ipIdx++ {
		ip := uint64(0x500000 + ipIdx*21)
		var seq [][2]uint64
		for i := uint64(0); i < 20; i++ {
			seq = append(seq, [2]uint64{uint64(ipIdx*100000) + 7*i, 100 * i})
		}
		feed(b, ip, seq, 350)
	}
	live := 0
	for ipIdx := 0; ipIdx < 40; ipIdx++ {
		if len(b.SnapshotDeltas(uint64(0x500000+ipIdx*21))) > 0 {
			live++
		}
	}
	if live == 0 || live > 16 {
		t.Fatalf("live delta entries = %d, want 1..16", live)
	}
}

func TestTimestampWraparound(t *testing.T) {
	b := New(cfgNoMargin())
	const ip = 0x400aa7
	// Accesses straddling the 16-bit timestamp wrap.
	base := uint64(1<<16) - 300
	var seq [][2]uint64
	for i := uint64(0); i < 8; i++ {
		seq = append(seq, [2]uint64{7000 + 6*i, base + 100*i})
	}
	feed(b, ip, seq, 250)
	if len(b.SnapshotDeltas(ip)) == 0 {
		t.Fatal("wraparound broke delta learning")
	}
}

func TestWarmupIssuesEarly(t *testing.T) {
	b := New(cfgNoMargin())
	const ip = 0x400bb8
	// Fewer than 16 searches (one phase) but at least WarmupMinSearches
	// with a perfectly stable delta: warm-up issuing should kick in.
	var seq [][2]uint64
	for i := uint64(0); i < 10; i++ {
		seq = append(seq, [2]uint64{8000 + 2*i, 200 * i})
	}
	feed(b, ip, seq, 350)
	reqs := b.OnAccess(cache.AccessEvent{IP: ip, LineAddr: 8100, Cycle: 5000,
		Hit: true, MSHRCap: 16})
	if len(reqs) == 0 {
		t.Fatal("warm-up path issued nothing despite stable high-coverage deltas")
	}
}

func TestNoPrefetchFromPrefetchFills(t *testing.T) {
	b := New(cfgNoMargin())
	before := b.Searches
	b.OnFill(cache.FillEvent{IP: 1, LineAddr: 100, Cycle: 1000, Latency: 200, ByPrefetch: true})
	if b.Searches != before {
		t.Fatal("prefetch-caused fills must not trigger searches (demand time unknown)")
	}
}

// TestPerPageKeying: the DPC-3 variant learns per page, so two IPs
// interleaving in one page share a context while the per-IP variant
// separates them.
func TestPerPageKeying(t *testing.T) {
	cfg := DPC3Config()
	cfg.TimelinessMarginPct = 0
	b := New(cfg)
	if b.Name() != "berti-dpc3" {
		t.Fatal("wrong name for per-page variant")
	}
	// One page (line>>6 == 1): stride-2 accesses from ALTERNATING IPs.
	// Per-page keying sees a single +2 stream; per-IP would see +4 per IP.
	var seq [][2]uint64
	for i := uint64(0); i < 30; i++ {
		seq = append(seq, [2]uint64{64 + 2*i, 150 * i})
	}
	for i, a := range seq {
		ip := uint64(0x400040 + (i%2)*21)
		b.OnAccess(cache.AccessEvent{IP: ip, LineAddr: a[0], Cycle: a[1], Hit: false})
		b.OnFill(cache.FillEvent{IP: ip, LineAddr: a[0], Cycle: a[1] + 400, Latency: 400})
	}
	// The table entry is keyed by page (=1), regardless of IP.
	ds := b.SnapshotDeltas(1)
	if len(ds) == 0 {
		t.Fatal("per-page entry missing")
	}
	for _, d := range ds {
		if d.Delta%2 != 0 {
			t.Fatalf("page-level stream is +2; got delta %+d", d.Delta)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"history sets", func(c *Config) { c.HistorySets = 0 }, "HistorySets"},
		{"history ways", func(c *Config) { c.HistoryWays = -2 }, "HistoryWays"},
		{"table entries", func(c *Config) { c.DeltaTableEntries = 0 }, "DeltaTableEntries"},
		{"deltas per entry", func(c *Config) { c.DeltasPerEntry = 0 }, "DeltasPerEntry"},
		{"delta bits low", func(c *Config) { c.DeltaBits = 1 }, "DeltaBits"},
		{"delta bits high", func(c *Config) { c.DeltaBits = 33 }, "DeltaBits"},
		{"timestamp bits", func(c *Config) { c.TimestampBits = 64 }, "TimestampBits"},
		{"line addr bits", func(c *Config) { c.LineAddrBits = 0 }, "LineAddrBits"},
	} {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		ce, ok := err.(*ConfigError)
		if !ok || ce.Field != tc.field {
			t.Fatalf("%s: got %v, want *ConfigError on %s", tc.name, err, tc.field)
		}
	}
}
