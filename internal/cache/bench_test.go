package cache

import "testing"

// benchLower is an allocation-free backing store for benchmarks: completions
// are tracked in a fixed ring and fired through the DoneSink path, the same
// way a real lower level answers forwarded misses.
type benchLower struct {
	delay uint64
	pend  [256]struct {
		at    uint64
		sink  DoneSink
		token uint64
	}
	n int
}

func (f *benchLower) AcceptRead(r *Req, cycle uint64) bool {
	if f.n >= len(f.pend) {
		return false
	}
	if r.Sink != nil {
		f.pend[f.n].at = cycle + f.delay
		f.pend[f.n].sink = r.Sink
		f.pend[f.n].token = r.Token
		f.n++
	}
	return true
}

func (f *benchLower) AcceptWrite(r *Req, cycle uint64) bool { return true }

func (f *benchLower) Promote(line uint64) {}

func (f *benchLower) tick(cycle uint64) {
	for i := 0; i < f.n; {
		if f.pend[i].at <= cycle {
			sink, tok := f.pend[i].sink, f.pend[i].token
			f.n--
			f.pend[i] = f.pend[f.n]
			sink.ReqDone(tok, cycle)
		} else {
			i++
		}
	}
}

// benchSink discards demand completions (the benchmark measures the cache,
// not a core model).
type benchSink struct{}

func (benchSink) ReqDone(token, cycle uint64) {}

// BenchmarkCacheTick measures the steady-state per-cycle cost of the full
// cache pipeline — fills, writes, reads, prefetches, sendQ drain — under a
// mixed demand/prefetch load over a bounded footprint (make bench-cache).
func BenchmarkCacheTick(b *testing.B) {
	f := &benchLower{delay: 40}
	cfg := Config{
		Name: "B", Level: L1D,
		SizeBytes: 32 * 1024, Ways: 8, LatencyCyc: 4,
		MSHRs: 16, RQSize: 16, WQSize: 16, PQSize: 16,
		ReadPorts: 2, WritePorts: 1, Repl: LRU,
	}
	c := MustNew(cfg, f)
	var sink benchSink

	s := uint64(0x9e3779b97f4a7c15)
	cycle := uint64(0)
	step := func() {
		s = s*6364136223846793005 + 1442695040888963407
		line := 0x4000 + (s>>33)%2048 // 2048-line footprint vs 512-line cache
		if s&3 != 3 {
			c.AcceptDemand(&Req{
				LineAddr: line, VLineAddr: line,
				Store: s&15 == 5, Sink: sink, Token: s,
			}, cycle)
		}
		if s&7 == 1 {
			c.EnqueuePrefetches([]PrefetchReq{{LineAddr: line + 1, FillLevel: L1D}}, cycle, 0)
		}
		f.tick(cycle)
		c.Tick(cycle)
		cycle++
	}
	for i := 0; i < 50_000; i++ { // warm: tables, rings, waiter pool
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestCacheTickZeroAllocSteadyState pins the benchmark's property as a
// regular test: the warmed cache pipeline allocates nothing per cycle.
func TestCacheTickZeroAllocSteadyState(t *testing.T) {
	f := &benchLower{delay: 40}
	cfg := Config{
		Name: "B", Level: L1D,
		SizeBytes: 32 * 1024, Ways: 8, LatencyCyc: 4,
		MSHRs: 16, RQSize: 16, WQSize: 16, PQSize: 16,
		ReadPorts: 2, WritePorts: 1, Repl: LRU,
	}
	c := MustNew(cfg, f)
	var sink benchSink
	s := uint64(0x9e3779b97f4a7c15)
	cycle := uint64(0)
	step := func() {
		s = s*6364136223846793005 + 1442695040888963407
		line := 0x4000 + (s>>33)%2048
		if s&3 != 3 {
			c.AcceptDemand(&Req{
				LineAddr: line, VLineAddr: line,
				Store: s&15 == 5, Sink: sink, Token: s,
			}, cycle)
		}
		if s&7 == 1 {
			c.EnqueuePrefetches([]PrefetchReq{{LineAddr: line + 1, FillLevel: L1D}}, cycle, 0)
		}
		f.tick(cycle)
		c.Tick(cycle)
		cycle++
	}
	for i := 0; i < 50_000; i++ {
		step()
	}
	avg := testing.AllocsPerRun(2000, step)
	if avg != 0 {
		t.Fatalf("%.3f allocs per cycle in steady state, want 0", avg)
	}
}
