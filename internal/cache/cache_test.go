package cache

import (
	"testing"

	"github.com/bertisim/berti/internal/check"
)

// fakeLower is a scriptable backing store: it responds to reads after a
// fixed delay and records what it saw.
type fakeLower struct {
	delay      uint64
	reads      []*Req
	writes     []*Req
	promoted   []uint64
	refuseNext int
	// pending responses fire when tick() reaches their cycle.
	pending []pendingResp
}

type pendingResp struct {
	at uint64
	cb func(uint64)
}

func (f *fakeLower) AcceptRead(r *Req, cycle uint64) bool {
	if f.refuseNext > 0 {
		f.refuseNext--
		return false
	}
	cp := *r // r points into the sender's ring; copy before retaining
	f.reads = append(f.reads, &cp)
	if r.OnDone != nil {
		f.pending = append(f.pending, pendingResp{at: cycle + f.delay, cb: r.OnDone})
	} else if r.Sink != nil {
		sink, tok := r.Sink, r.Token
		f.pending = append(f.pending, pendingResp{at: cycle + f.delay, cb: func(cyc uint64) { sink.ReqDone(tok, cyc) }})
	}
	return true
}

func (f *fakeLower) AcceptWrite(r *Req, cycle uint64) bool {
	if f.refuseNext > 0 {
		f.refuseNext--
		return false
	}
	cp := *r
	f.writes = append(f.writes, &cp)
	return true
}

func (f *fakeLower) Promote(line uint64) { f.promoted = append(f.promoted, line) }

func (f *fakeLower) tick(cycle uint64) {
	for i := 0; i < len(f.pending); {
		if f.pending[i].at <= cycle {
			f.pending[i].cb(cycle)
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
		} else {
			i++
		}
	}
}

func testConfig() Config {
	return Config{
		Name: "T", Level: L1D,
		SizeBytes: 8 * 1024, Ways: 4, LatencyCyc: 3,
		MSHRs: 4, RQSize: 8, WQSize: 4, PQSize: 4,
		ReadPorts: 2, WritePorts: 1, Repl: LRU,
	}
}

// runCache ticks cache+lower together for n cycles starting at cycle.
func runCache(c *Cache, f *fakeLower, from, n uint64) uint64 {
	for cyc := from; cyc < from+n; cyc++ {
		f.tick(cyc)
		c.Tick(cyc)
	}
	return from + n
}

func TestMissThenHit(t *testing.T) {
	f := &fakeLower{delay: 10}
	c := MustNew(testConfig(), f)
	var done uint64
	c.AcceptDemand(&Req{LineAddr: 100, OnDone: func(cyc uint64) { done = cyc }}, 0)
	runCache(c, f, 0, 30)
	if done == 0 {
		t.Fatal("miss never completed")
	}
	if !c.Contains(100) {
		t.Fatal("line not installed after fill")
	}
	if c.Stats.DemandMisses != 1 {
		t.Fatalf("misses = %d", c.Stats.DemandMisses)
	}
	// Second access: hit at the cache latency.
	var hitDone uint64
	start := uint64(40)
	c.AcceptDemand(&Req{LineAddr: 100, OnDone: func(cyc uint64) { hitDone = cyc }}, start)
	runCache(c, f, 40, 10)
	if hitDone == 0 || hitDone-start > 5 {
		t.Fatalf("hit latency wrong: done=%d", hitDone)
	}
	if c.Stats.DemandHits != 1 {
		t.Fatalf("hits = %d", c.Stats.DemandHits)
	}
}

func TestRQLoadCombining(t *testing.T) {
	f := &fakeLower{delay: 20}
	c := MustNew(testConfig(), f)
	calls := 0
	for i := 0; i < 4; i++ {
		c.AcceptDemand(&Req{LineAddr: 7, OnDone: func(uint64) { calls++ }}, 0)
	}
	runCache(c, f, 0, 40)
	if calls != 4 {
		t.Fatalf("only %d of 4 combined loads completed", calls)
	}
	if c.Stats.DemandAccesses != 1 || c.Stats.DemandMisses != 1 {
		t.Fatalf("combined group should count once: acc=%d miss=%d",
			c.Stats.DemandAccesses, c.Stats.DemandMisses)
	}
	if len(f.reads) != 1 {
		t.Fatalf("lower saw %d reads, want 1", len(f.reads))
	}
}

func TestMSHRMergeCountsOnce(t *testing.T) {
	f := &fakeLower{delay: 30}
	c := MustNew(testConfig(), f)
	c.AcceptDemand(&Req{LineAddr: 9, OnDone: func(uint64) {}}, 0)
	runCache(c, f, 0, 3) // primary miss issued, in MSHR now
	c.AcceptDemand(&Req{LineAddr: 9, OnDone: func(uint64) {}}, 3)
	runCache(c, f, 3, 50)
	if c.Stats.DemandMisses != 1 {
		t.Fatalf("merged miss counted twice: %d", c.Stats.DemandMisses)
	}
	if c.Stats.MSHRMerges != 1 {
		t.Fatalf("merges = %d", c.Stats.MSHRMerges)
	}
}

func TestMSHRFullStalls(t *testing.T) {
	f := &fakeLower{delay: 1000}
	cfg := testConfig()
	cfg.MSHRs = 2
	c := MustNew(cfg, f)
	for i := uint64(0); i < 4; i++ {
		c.AcceptDemand(&Req{LineAddr: 100 + i, OnDone: func(uint64) {}}, 0)
	}
	runCache(c, f, 0, 20)
	if c.MSHROccupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", c.MSHROccupancy())
	}
	if c.Stats.MSHRFullStalls == 0 {
		t.Fatal("expected MSHR-full stalls")
	}
}

func TestStoreDirtiesAndWritesBack(t *testing.T) {
	f := &fakeLower{delay: 5}
	cfg := testConfig()
	cfg.SizeBytes = 4 * LineSize // tiny: 1 set x 4 ways
	cfg.Ways = 4
	c := MustNew(cfg, f)
	c.AcceptDemand(&Req{LineAddr: 1, Store: true, OnDone: func(uint64) {}}, 0)
	runCache(c, f, 0, 20)
	if !c.Contains(1) {
		t.Fatal("store-allocate failed")
	}
	// Evict line 1 by filling the set with 4 more lines.
	for i := uint64(2); i <= 5; i++ {
		c.AcceptDemand(&Req{LineAddr: i, OnDone: func(uint64) {}}, 20)
	}
	runCache(c, f, 20, 60)
	if c.Contains(1) {
		t.Fatal("line 1 should have been evicted")
	}
	if len(f.writes) != 1 || f.writes[0].LineAddr != 1 {
		t.Fatalf("expected writeback of line 1, got %v", f.writes)
	}
	if c.Stats.WritebacksOut != 1 {
		t.Fatalf("WritebacksOut = %d", c.Stats.WritebacksOut)
	}
}

func TestWritebackInstallsNonInclusive(t *testing.T) {
	f := &fakeLower{delay: 5}
	cfg := testConfig()
	cfg.Level = L2
	c := MustNew(cfg, f)
	if !c.AcceptWrite(&Req{LineAddr: 55, Store: true}, 0) {
		t.Fatal("writeback refused")
	}
	runCache(c, f, 0, 5)
	if !c.Contains(55) {
		t.Fatal("writeback should back-fill a non-inclusive level")
	}
}

// prefetch test helper: a trivial prefetcher that requests a fixed target.
type fixedPf struct {
	target uint64
	level  Level
	fills  []FillEvent
	events []AccessEvent
}

func (p *fixedPf) Name() string     { return "fixed" }
func (p *fixedPf) StorageBits() int { return 0 }
func (p *fixedPf) OnAccess(ev AccessEvent) []PrefetchReq {
	p.events = append(p.events, ev)
	if p.target == 0 {
		return nil
	}
	return []PrefetchReq{{LineAddr: p.target, FillLevel: p.level}}
}
func (p *fixedPf) OnFill(ev FillEvent) { p.fills = append(p.fills, ev) }

func TestPrefetchFillAndUsefulHit(t *testing.T) {
	f := &fakeLower{delay: 10}
	c := MustNew(testConfig(), f)
	pf := &fixedPf{target: 200, level: L1D}
	c.SetPrefetcher(pf)
	// A demand miss triggers the prefetch of line 200.
	c.AcceptDemand(&Req{LineAddr: 100, OnDone: func(uint64) {}}, 0)
	runCache(c, f, 0, 50)
	if !c.Contains(200) {
		t.Fatal("prefetched line not installed")
	}
	if c.Stats.PrefFills != 1 {
		t.Fatalf("PrefFills = %d", c.Stats.PrefFills)
	}
	// Demand hit on the prefetched line: useful + PrefetchHit event.
	pf.target = 0
	c.AcceptDemand(&Req{LineAddr: 200, OnDone: func(uint64) {}}, 60)
	runCache(c, f, 60, 10)
	if c.Stats.PrefUseful != 1 {
		t.Fatalf("PrefUseful = %d", c.Stats.PrefUseful)
	}
	last := pf.events[len(pf.events)-1]
	if !last.PrefetchHit || last.PfLatency == 0 {
		t.Fatalf("prefetch-hit event missing latency: %+v", last)
	}
}

func TestLatePrefetchMergesAndPromotes(t *testing.T) {
	f := &fakeLower{delay: 50}
	c := MustNew(testConfig(), f)
	pf := &fixedPf{target: 300, level: L1D}
	c.SetPrefetcher(pf)
	c.AcceptDemand(&Req{LineAddr: 100, OnDone: func(uint64) {}}, 0)
	runCache(c, f, 0, 10) // prefetch of 300 in flight
	pf.target = 0
	var done uint64
	c.AcceptDemand(&Req{LineAddr: 300, OnDone: func(cyc uint64) { done = cyc }}, 10)
	runCache(c, f, 10, 100)
	if done == 0 {
		t.Fatal("merged demand never completed")
	}
	if c.Stats.PrefLate != 1 {
		t.Fatalf("PrefLate = %d", c.Stats.PrefLate)
	}
	found := false
	for _, l := range f.promoted {
		if l == 300 {
			found = true
		}
	}
	if !found {
		t.Fatal("in-flight prefetch not promoted on demand merge")
	}
}

func TestPrefetchFillBelowDoesNotInstall(t *testing.T) {
	f := &fakeLower{delay: 5}
	c := MustNew(testConfig(), f) // level L1D
	pf := &fixedPf{target: 400, level: L2}
	c.SetPrefetcher(pf)
	c.AcceptDemand(&Req{LineAddr: 100, OnDone: func(uint64) {}}, 0)
	runCache(c, f, 0, 40)
	if c.Contains(400) {
		t.Fatal("fill-L2 prefetch must not install at L1D")
	}
	// The request must have been handed to the lower level as a prefetch.
	sawPf := false
	for _, r := range f.reads {
		if r.LineAddr == 400 && r.IsPrefetch {
			sawPf = true
		}
	}
	if !sawPf {
		t.Fatal("fill-L2 prefetch not forwarded to the lower level")
	}
}

func TestPrefetchDedup(t *testing.T) {
	f := &fakeLower{delay: 5}
	c := MustNew(testConfig(), f)
	c.EnqueuePrefetches([]PrefetchReq{{LineAddr: 500, FillLevel: L1D}}, 0, 0)
	c.EnqueuePrefetches([]PrefetchReq{{LineAddr: 500, FillLevel: L1D}}, 0, 0)
	if c.Stats.PrefIssued != 1 || c.Stats.PrefDropped != 1 {
		t.Fatalf("dedup failed: issued=%d dropped=%d", c.Stats.PrefIssued, c.Stats.PrefDropped)
	}
	runCache(c, f, 0, 30)
	if !c.Contains(500) {
		t.Fatal("prefetch not filled")
	}
	c.EnqueuePrefetches([]PrefetchReq{{LineAddr: 500, FillLevel: L1D}}, 40, 0)
	if c.Stats.PrefDropped != 2 {
		t.Fatal("prefetch to cached line should drop")
	}
}

func TestPQCapacityDrops(t *testing.T) {
	f := &fakeLower{delay: 1000}
	cfg := testConfig()
	cfg.PQSize = 2
	c := MustNew(cfg, f)
	var reqs []PrefetchReq
	for i := uint64(0); i < 5; i++ {
		reqs = append(reqs, PrefetchReq{LineAddr: 600 + i, FillLevel: L1D})
	}
	c.EnqueuePrefetches(reqs, 0, 0)
	if c.Stats.PrefIssued != 2 || c.Stats.PrefDropped != 3 {
		t.Fatalf("PQ bounding failed: issued=%d dropped=%d",
			c.Stats.PrefIssued, c.Stats.PrefDropped)
	}
}

func TestDemandPriorityInRQ(t *testing.T) {
	f := &fakeLower{delay: 5}
	cfg := testConfig()
	cfg.Level = L2
	cfg.ReadPorts = 1
	c := MustNew(cfg, f)
	var pfDone, demDone uint64
	// Prefetch read (with response) enqueued first, demand second.
	c.AcceptRead(&Req{LineAddr: 1, IsPrefetch: true, FillLevel: L1D,
		OnDone: func(cyc uint64) { pfDone = cyc }}, 0)
	c.AcceptRead(&Req{LineAddr: 2, OnDone: func(cyc uint64) { demDone = cyc }}, 0)
	runCache(c, f, 1, 40)
	if demDone == 0 || pfDone == 0 {
		t.Fatal("requests incomplete")
	}
	if demDone > pfDone {
		t.Fatalf("demand (%d) served after prefetch (%d)", demDone, pfDone)
	}
}

func TestSRRIPVictimSelection(t *testing.T) {
	cfg := testConfig()
	cfg.Repl = SRRIP
	cfg.SizeBytes = 4 * LineSize
	cfg.Ways = 4
	f := &fakeLower{delay: 1}
	c := MustNew(cfg, f)
	for i := uint64(1); i <= 4; i++ {
		c.AcceptDemand(&Req{LineAddr: i, OnDone: func(uint64) {}}, 0)
	}
	runCache(c, f, 0, 30)
	// Re-touch lines 1 and 2 (rrpv -> 0).
	c.AcceptDemand(&Req{LineAddr: 1, OnDone: func(uint64) {}}, 30)
	c.AcceptDemand(&Req{LineAddr: 2, OnDone: func(uint64) {}}, 30)
	runCache(c, f, 30, 10)
	// A new line should evict 3 or 4, not the recently-touched ones.
	c.AcceptDemand(&Req{LineAddr: 9, OnDone: func(uint64) {}}, 45)
	runCache(c, f, 45, 30)
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("SRRIP evicted a recently re-referenced line")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	f := &fakeLower{delay: 5}
	c := MustNew(testConfig(), f)
	c.AcceptDemand(&Req{LineAddr: 77, OnDone: func(uint64) {}}, 0)
	runCache(c, f, 0, 20)
	c.ResetStats()
	if c.Stats.DemandMisses != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Contains(77) {
		t.Fatal("contents must survive a stats reset")
	}
}

func TestDrained(t *testing.T) {
	f := &fakeLower{delay: 5}
	c := MustNew(testConfig(), f)
	if !c.Drained() {
		t.Fatal("fresh cache should be drained")
	}
	c.AcceptDemand(&Req{LineAddr: 1, OnDone: func(uint64) {}}, 0)
	if c.Drained() {
		t.Fatal("pending request should block Drained")
	}
	runCache(c, f, 0, 30)
	if !c.Drained() {
		t.Fatal("cache should drain after fill")
	}
}

func TestConfigSets(t *testing.T) {
	cfg := testConfig()
	if cfg.Sets() != 8*1024/LineSize/4 {
		t.Fatalf("sets = %d", cfg.Sets())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("test config must validate: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"ways", func(c *Config) { c.Ways = 0 }, "Ways"},
		{"size", func(c *Config) { c.SizeBytes = 0 }, "SizeBytes"},
		{"geometry", func(c *Config) { c.SizeBytes = 1000 }, "SizeBytes"},
		{"mshrs", func(c *Config) { c.MSHRs = 0 }, "MSHRs"},
		{"rq", func(c *Config) { c.RQSize = 0 }, "RQSize"},
		{"wq", func(c *Config) { c.WQSize = -1 }, "WQSize"},
		{"pq", func(c *Config) { c.PQSize = -1 }, "PQSize"},
		{"read ports", func(c *Config) { c.ReadPorts = 0 }, "ReadPorts"},
		{"write ports", func(c *Config) { c.WritePorts = 0 }, "WritePorts"},
	} {
		cfg := testConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		ce, ok := err.(*ConfigError)
		if !ok || ce.Field != tc.field {
			t.Fatalf("%s: got %v, want *ConfigError on %s", tc.name, err, tc.field)
		}
		if ce.Name != "T" {
			t.Fatalf("%s: error must carry the cache name, got %q", tc.name, ce.Name)
		}
		if _, err := New(cfg, &fakeLower{}); err == nil {
			t.Fatalf("%s: New must reject what Validate rejects", tc.name)
		}
	}
}

// TestCheckInvariantsCleanAndCorrupt: a healthy cache reports nothing; the
// deliberate corruption helpers must each trip their matching rule.
func TestCheckInvariantsCleanAndCorrupt(t *testing.T) {
	f := &fakeLower{delay: 2}
	c := MustNew(testConfig(), f)
	cyc := uint64(0)
	for i := uint64(0); i < 32; i++ {
		c.AcceptDemand(&Req{LineAddr: i * 3, VLineAddr: i * 3, IP: 0x40}, cyc)
		cyc = runCache(c, f, cyc, 6)
	}
	rules := func() map[string]int {
		got := map[string]int{}
		c.CheckInvariants(cyc, 1_000, func(v check.Violation) { got[v.Rule]++ })
		return got
	}
	if got := rules(); len(got) != 0 {
		t.Fatalf("healthy cache reported violations: %v", got)
	}
	if !c.CorruptDuplicateTag() {
		t.Fatal("corruption helper found no line to duplicate")
	}
	if got := rules(); got[check.RuleDupTag] == 0 {
		t.Fatalf("duplicated tag not flagged: %v", got)
	}
	c.CorruptPQOrphans(2)
	if got := rules(); got[check.RuleQueueBound] == 0 {
		t.Fatalf("overfull PQ not flagged: %v", got)
	}
}

// TestFillDoesNotDuplicateResidentLine pins a bug the invariant checker
// found: a writeback from the level above could install a line while a
// miss for the same line was still in flight, and the later fill would
// install a second copy in another way (dup-tag). The fill must update
// the resident copy in place.
func TestFillDoesNotDuplicateResidentLine(t *testing.T) {
	f := &fakeLower{delay: 30}
	c := MustNew(testConfig(), f)
	c.AcceptDemand(&Req{LineAddr: 500, OnDone: func(uint64) {}}, 0)
	runCache(c, f, 0, 5) // miss issued; the MSHR is in flight
	if !c.AcceptWrite(&Req{LineAddr: 500, Store: true}, 5) {
		t.Fatal("writeback refused")
	}
	runCache(c, f, 5, 60) // writeback installs, then the fill arrives

	ck := check.New()
	c.CheckInvariants(70, 0, ck.Report)
	if ck.Total() != 0 {
		for _, v := range ck.Violations() {
			t.Errorf("violation: %s", v.String())
		}
		t.Fatalf("fill over a resident line broke %d invariant(s)", ck.Total())
	}
	if !c.Contains(500) {
		t.Fatal("line must stay resident")
	}
}
