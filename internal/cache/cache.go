// Package cache models the on-chip memory hierarchy: set-associative,
// non-inclusive caches with MSHRs, read/write/prefetch queues, multiple
// replacement policies, and the prefetcher hook points Berti and the
// baseline prefetchers need (per-access events with virtual addresses at
// L1D, fill events with measured fetch latency, per-line prefetch bits and
// 12-bit latency metadata).
//
// The per-access path is allocation-free in steady state: queues are
// fixed-capacity value rings (internal/ringbuf), completion callbacks are
// sink+token pairs or pooled waiter nodes instead of per-request closures,
// and the PQ duplicate check is an open-addressed presence index rather
// than a queue walk (see hotpath.go and DESIGN.md §15).
package cache

import (
	"fmt"

	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/obs/provenance"
	"github.com/bertisim/berti/internal/ringbuf"
	"github.com/bertisim/berti/internal/stats"
)

// Level identifies a position in the hierarchy. Smaller is closer to the
// core. FillLevel semantics: a request with FillLevel L fills every cache
// whose level index is >= L on the response path.
type Level int

// Hierarchy levels.
const (
	L1D Level = iota
	L2
	LLC
	MEM
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case L1D:
		return "L1D"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case MEM:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// debugSlowFills enables diagnostic prints for pathological fill latencies.
var debugSlowFills = false

// SetDebugSlowFills toggles slow-fill diagnostics.
func SetDebugSlowFills(v bool) { debugSlowFills = v }

// DebugDRAMTimeline is patched by the harness to expose per-line DRAM event
// times in slow-fill diagnostics; nil-safe default.
var DebugDRAMTimeline = func(line uint64) []uint64 { return nil }

// LineShift is log2 of the cache line size (64-byte lines).
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// Req is a request travelling between hierarchy levels. Addresses are
// line-granular (byte address >> LineShift) and physical below L1D.
// Queues store Req by value; the structs callers pass to Accept* are
// copied in, so a caller-owned Req never outlives the call.
type Req struct {
	// LineAddr is the physical line address.
	LineAddr uint64
	// VLineAddr is the virtual line address (propagated from L1D so
	// prefetchers training on virtual addresses can observe fills).
	VLineAddr uint64
	// IP is the instruction pointer that triggered the request.
	IP uint64
	// IsPrefetch marks prefetch requests.
	IsPrefetch bool
	// FillLevel is the closest-to-core level this request fills.
	FillLevel Level
	// OnDone is invoked once with the cycle at which data is available
	// to the requester. Nil for writes and fire-and-forget prefetches.
	OnDone func(cycle uint64)
	// Sink is the allocation-free alternative to OnDone: when OnDone is
	// nil and Sink is set, completion is delivered as
	// Sink.ReqDone(Token, cycle). The engine's hot path uses sinks
	// exclusively — a closure per request is exactly the allocation this
	// avoids.
	Sink DoneSink
	// Token identifies the request to its Sink (opaque to the cache).
	Token uint64
	// Store marks demand stores (write-allocate; the line is dirtied on
	// fill). Writebacks are Store requests with no completion callback.
	Store bool
	// notBefore delays processing (translation latency etc.).
	notBefore uint64
	// enqueued records when the request entered the current queue.
	enqueued uint64
	// provID carries the prefetch's provenance record across levels
	// (0 = untracked; only prefetch requests built inside the cache layer
	// ever set it).
	provID uint32
	// whead/wtail root the pooled waiter chain of requests combined into
	// this one while it sits in the read queue (index+1 into the owning
	// cache's pool; 0 = none). Only meaningful inside that cache.
	whead, wtail int32
}

// hasDone reports whether the request carries any completion callback.
func (r *Req) hasDone() bool { return r.OnDone != nil || r.Sink != nil }

// Lower is the downstream interface of a cache: the next cache level or
// the DRAM adaptor.
type Lower interface {
	// AcceptRead attempts to enqueue a read/prefetch; false means the
	// target queue is full and the caller must retry. The request is
	// copied; the pointer is not retained.
	AcceptRead(r *Req, cycle uint64) bool
	// AcceptWrite attempts to enqueue a writeback.
	AcceptWrite(r *Req, cycle uint64) bool
	// Promote upgrades any in-flight prefetch for the line to demand
	// priority (a demand merged into the prefetch upstream).
	Promote(lineAddr uint64)
}

// ReplPolicy selects a replacement policy.
type ReplPolicy int

// Replacement policies used by Table II (LRU at L1D, SRRIP at L2, DRRIP at
// the LLC) plus FIFO for completeness.
const (
	LRU ReplPolicy = iota
	FIFO
	SRRIP
	DRRIP
)

// String implements fmt.Stringer.
func (p ReplPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case SRRIP:
		return "SRRIP"
	case DRRIP:
		return "DRRIP"
	default:
		return fmt.Sprintf("ReplPolicy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name       string
	Level      Level
	SizeBytes  int
	Ways       int
	LatencyCyc uint64
	MSHRs      int
	RQSize     int
	WQSize     int
	PQSize     int
	ReadPorts  int // demand reads processed per cycle
	WritePorts int // writes processed per cycle
	Repl       ReplPolicy
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	if c.Ways <= 0 {
		return 0
	}
	return c.SizeBytes / LineSize / c.Ways
}

// ConfigError reports an invalid cache configuration.
type ConfigError struct {
	// Name is the cache level's configured name ("L1D", "L2.0", ...).
	Name string
	// Field names the offending parameter.
	Field string
	// Reason describes the constraint that failed.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("cache %s: invalid %s: %s", e.Name, e.Field, e.Reason)
}

// Validate checks the configuration's internal consistency. It returns a
// *ConfigError describing the first violated constraint, or nil.
func (c Config) Validate() error {
	bad := func(field, format string, args ...interface{}) error {
		return &ConfigError{Name: c.Name, Field: field, Reason: fmt.Sprintf(format, args...)}
	}
	if c.Ways <= 0 {
		return bad("Ways", "must be >= 1, got %d", c.Ways)
	}
	if c.SizeBytes <= 0 {
		return bad("SizeBytes", "must be >= 1, got %d", c.SizeBytes)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*LineSize != c.SizeBytes {
		return bad("SizeBytes", "geometry size=%d ways=%d does not divide into whole sets of %d-byte lines",
			c.SizeBytes, c.Ways, LineSize)
	}
	if c.MSHRs <= 0 {
		return bad("MSHRs", "must be >= 1, got %d", c.MSHRs)
	}
	if c.RQSize <= 0 {
		return bad("RQSize", "must be >= 1, got %d", c.RQSize)
	}
	if c.WQSize <= 0 {
		return bad("WQSize", "must be >= 1, got %d", c.WQSize)
	}
	if c.PQSize < 0 {
		return bad("PQSize", "must be >= 0, got %d", c.PQSize)
	}
	if c.ReadPorts <= 0 {
		return bad("ReadPorts", "must be >= 1, got %d", c.ReadPorts)
	}
	if c.WritePorts <= 0 {
		return bad("WritePorts", "must be >= 1, got %d", c.WritePorts)
	}
	return nil
}

// line is one cache line's metadata.
type line struct {
	addr  uint64 // full physical line address (tag+index)
	vaddr uint64 // virtual line address (maintained at L1D)
	valid bool
	dirty bool
	// prefetched is the prefetch bit: set when the line was brought by a
	// prefetch and not yet demanded.
	prefetched bool
	// pfLatency is the stored 12-bit fetch latency of the prefetch that
	// brought this line (Berti's L1D shadow metadata); 0 = invalid.
	pfLatency uint16
	// pfIP is the IP that triggered the prefetch (for training on hit).
	pfIP uint64
	lru  uint64
	rrpv uint8
	// provID names the provenance record of the prefetch that brought this
	// line while its prefetch bit is set (0 = untracked).
	provID uint32
}

// mshr is one miss-status holding register entry.
type mshr struct {
	valid    bool
	lineAddr uint64
	vline    uint64
	ip       uint64
	// isPrefetch: no demand has merged yet.
	isPrefetch bool
	fillLevel  Level
	isStore    bool
	// issueCycle is the Berti timestamp: MSHR allocation for demands,
	// PQ insertion for prefetches (transferred on PQ->MSHR move).
	issueCycle uint64
	// demandMerged records that a demand arrived while a prefetch was in
	// flight (a "late" prefetch).
	demandMerged bool
	sentDown     bool
	dataReady    bool
	readyCycle   uint64
	// whead/wtail root the pooled waiter chain (index+1; 0 = none) of
	// requests waiting on this fill, replacing a []func slice per entry.
	whead, wtail int32
	// provID names the in-flight prefetch's provenance record (0 when the
	// entry is a demand miss, tracking is off, or the record resolved).
	provID uint32
}

// AccessEvent is passed to the prefetcher for every demand access.
type AccessEvent struct {
	Cycle     uint64
	IP        uint64
	LineAddr  uint64 // virtual at L1D, physical at L2/LLC
	PLineAddr uint64 // physical line address
	IsStore   bool
	Hit       bool
	// PrefetchHit: the access hit a line whose prefetch bit was set
	// (i.e. a miss in the no-prefetcher baseline).
	PrefetchHit bool
	// PfLatency is the stored prefetch fetch latency when PrefetchHit.
	PfLatency uint16
	// MSHROccupancy / MSHRCap let the prefetcher apply occupancy
	// watermarks.
	MSHROccupancy int
	MSHRCap       int
}

// FillEvent is passed to the prefetcher when a line fills this level.
type FillEvent struct {
	Cycle     uint64
	IP        uint64
	LineAddr  uint64 // virtual at L1D (when known), physical otherwise
	PLineAddr uint64
	// Latency is the measured fetch latency (fill cycle - issue cycle).
	Latency uint64
	// ByPrefetch: the fill was triggered by a prefetch with no demand
	// merged (its demand time is unknown).
	ByPrefetch bool
	// EvictedAddr is the line that was evicted to make room (0 if none);
	// EvictedPrefetched tells whether it was an unused prefetch.
	EvictedAddr       uint64
	EvictedPrefetched bool
}

// PrefetchReq is a prefetch the prefetcher wants issued. LineAddr is in the
// same address space the prefetcher trains on (virtual at L1D).
type PrefetchReq struct {
	LineAddr  uint64
	FillLevel Level
	// Confidence is the prefetcher's own estimate (percent, 0-100) that
	// this prefetch will be used, at issue time. Berti reports its measured
	// per-delta coverage; prefetchers without an internal estimate leave 0.
	// Observability only — the cache never acts on it.
	Confidence uint8
}

// Prefetcher is the hook interface implemented by Berti and the baselines.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// OnAccess observes one demand access and returns prefetches to
	// enqueue. The returned slice is only valid until the next OnAccess
	// call (implementations reuse a scratch buffer); the cache consumes
	// it immediately.
	OnAccess(ev AccessEvent) []PrefetchReq
	// OnFill observes a fill into this cache level.
	OnFill(ev FillEvent)
	// StorageBits returns the hardware budget in bits for Fig. 7.
	StorageBits() int
}

// Translator converts the prefetcher's (virtual) line address into a
// physical line address. L1D uses the STLB path; lower levels are identity.
// ok=false drops the prefetch (STLB miss).
type Translator interface {
	TranslatePrefetchLine(vline uint64) (pline uint64, extraLat uint64, ok bool)
}

// identityXlat passes physical addresses through (L2/LLC prefetchers).
type identityXlat struct{}

func (identityXlat) TranslatePrefetchLine(v uint64) (uint64, uint64, bool) { return v, 0, true }

// pqEntry is one prefetch-queue entry.
type pqEntry struct {
	vline     uint64
	pline     uint64
	fillLevel Level
	issue     uint64 // timestamp at PQ insertion (Berti latency origin)
	notBefore uint64
	provID    uint32
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg   Config
	sets  int
	lines []line // sets*ways
	lru   uint64
	lower Lower
	// lowerC is lower when it is another *Cache: the common case, kept as
	// a concrete pointer so the per-cycle send path skips interface
	// dispatch (the DRAM adaptor below the LLC stays on the interface).
	lowerC *Cache
	pf     Prefetcher
	xlat   Translator
	mshrs  []mshr
	rq     ringbuf.Ring[Req]
	wq     ringbuf.Ring[Req]
	pq     ringbuf.Ring[pqEntry]
	// sendQ holds requests that must be pushed downstream (retried when
	// the lower level's queues are full).
	sendQ ringbuf.Ring[Req]
	// pqIdx indexes the plines currently in pq so the EnqueuePrefetches
	// duplicate check is a probe, not a queue walk.
	pqIdx lineSet
	// wpool holds the waiter nodes chained off RQ entries and MSHRs;
	// wfree heads its free list (index+1; 0 = empty).
	wpool []waiterNode
	wfree int32
	// fillsReady counts MSHR entries with dataReady set that have not yet
	// been consumed by processFills, so idle cycles skip the MSHR sweep.
	fillsReady int
	// trafficDown counts line requests sent to the lower level; wbDown
	// counts writebacks sent to the lower level.
	TrafficDown uint64
	WBDown      uint64
	// RQRejects counts AcceptRead refusals (queue full) — a backpressure
	// diagnostic.
	RQRejects uint64
	Stats     stats.CacheStats
	// drripPSEL and leader sets for DRRIP set dueling.
	drripPSEL int
	// tr is the structured event tracer (nil = tracing disabled; every
	// emission is guarded by a nil check so the disabled path is free).
	tr *obs.Tracer
	// fh is the fault-injection hook (nil = disabled; consulted once per
	// arriving fill response).
	fh FaultHook
	// trigIP is the IP of the access currently driving the prefetcher
	// (event attribution for prefetch issues; 0 outside firePrefetcher).
	trigIP uint64
	// trigLine is the line address of that access in the prefetcher's
	// training space (delta attribution; 0 outside firePrefetcher).
	trigLine uint64
	// prov is the per-prefetch lifecycle tracker (nil = disabled; every
	// emission is guarded by a nil check so the disabled path is free).
	prov *provenance.Tracker
}

// New builds a cache level, validating cfg first. lower may be nil only in
// unit tests.
func New(cfg Config, lower Lower) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:   cfg,
		sets:  cfg.Sets(),
		lines: make([]line, cfg.Sets()*cfg.Ways),
		lower: lower,
		xlat:  identityXlat{},
		mshrs: make([]mshr, cfg.MSHRs),
	}
	if lc, ok := lower.(*Cache); ok {
		c.lowerC = lc
	}
	c.rq.Init(cfg.RQSize)
	c.wq.Init(cfg.WQSize)
	c.pq.Init(cfg.PQSize)
	c.sendQ.Init(cfg.MSHRs + cfg.WQSize)
	c.pqIdx.init(cfg.PQSize)
	// Size the waiter pool for the worst steady-state chain population:
	// every MSHR and RQ entry can hold combined requests. Growth past
	// this is an append, not an error.
	c.wpool = make([]waiterNode, 0, 4*cfg.MSHRs+2*cfg.RQSize+16)
	c.Stats.Name = cfg.Name
	return c, nil
}

// MustNew builds a cache level from a configuration known to be valid
// (tests, compiled-in defaults). It panics on an invalid cfg; user-supplied
// configurations must go through New.
func MustNew(cfg Config, lower Lower) *Cache {
	c, err := New(cfg, lower)
	if err != nil {
		panic(err)
	}
	return c
}

// SetPrefetcher attaches a prefetcher to this level.
func (c *Cache) SetPrefetcher(p Prefetcher) { c.pf = p }

// Prefetcher returns the attached prefetcher (nil if none).
func (c *Cache) Prefetcher() Prefetcher { return c.pf }

// SetTranslator attaches the STLB translation path (L1D only).
func (c *Cache) SetTranslator(t Translator) { c.xlat = t }

// SetTracer attaches a structured event tracer (nil disables tracing).
func (c *Cache) SetTracer(t *obs.Tracer) { c.tr = t }

// SetProvenance attaches a per-prefetch lifecycle tracker (nil disables
// tracking). Every hierarchy level of a machine shares one tracker so
// provenance IDs remain meaningful as prefetches cross levels.
func (c *Cache) SetProvenance(t *provenance.Tracker) { c.prov = t }

// Provenance returns the attached tracker (nil if none).
func (c *Cache) Provenance() *provenance.Tracker { return c.prov }

// FaultHook is the fault-injection interface (implemented by
// fault.FillInjector). It is consulted once per fill response arriving
// from the lower level: drop swallows the completion (the MSHR entry
// leaks), delay postpones data-ready by the returned cycles.
type FaultHook interface {
	FillFault(lineAddr uint64, isPrefetch bool, cycle uint64) (drop bool, delay uint64)
}

// SetFaultHook attaches a fault injector (nil disables injection).
func (c *Cache) SetFaultHook(h FaultHook) { c.fh = h }

// emit records one trace event; lvl is derived from the cache's level.
func (c *Cache) emit(cycle uint64, kind obs.EventKind, addr, ip uint64) {
	c.tr.Emit(obs.Event{
		Cycle:  cycle,
		Kind:   kind,
		Source: obs.Source(c.cfg.Level),
		Addr:   addr,
		IP:     ip,
	})
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setFor(lineAddr uint64) []line {
	s := int(lineAddr % uint64(c.sets))
	return c.lines[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
}

// probe returns the way holding lineAddr, or nil.
func (c *Cache) probe(lineAddr uint64) *line {
	set := c.setFor(lineAddr)
	for i := range set {
		if set[i].valid && set[i].addr == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// Contains reports whether the physical line is present (tests/harness).
func (c *Cache) Contains(lineAddr uint64) bool { return c.probe(lineAddr) != nil }

// touch updates replacement state on a hit.
func (c *Cache) touch(l *line) {
	c.lru++
	l.lru = c.lru
	l.rrpv = 0
}

// isDRRIPLeaderSRRIP / isDRRIPLeaderBRRIP choose leader sets for set
// dueling (every 32nd set, offset 0 vs 16).
func (c *Cache) duelKind(setIdx int) int {
	if setIdx%32 == 0 {
		return 1 // SRRIP leader
	}
	if setIdx%32 == 16 {
		return 2 // BRRIP leader
	}
	return 0
}

// victim selects (and returns) the victim way in the set of lineAddr.
func (c *Cache) victim(lineAddr uint64) *line {
	set := c.setFor(lineAddr)
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
	}
	switch c.cfg.Repl {
	case LRU, FIFO:
		v := &set[0]
		for i := 1; i < len(set); i++ {
			if set[i].lru < v.lru {
				v = &set[i]
			}
		}
		return v
	case SRRIP, DRRIP:
		for {
			for i := range set {
				if set[i].rrpv >= 3 {
					return &set[i]
				}
			}
			for i := range set {
				if set[i].rrpv < 3 {
					set[i].rrpv++
				}
			}
		}
	default:
		return &set[0]
	}
}

// insertRepl initializes replacement state for a newly installed line.
func (c *Cache) insertRepl(l *line, lineAddr uint64) {
	c.lru++
	l.lru = c.lru // LRU and FIFO both stamp at insert; LRU also on hit
	switch c.cfg.Repl {
	case SRRIP:
		l.rrpv = 2
	case DRRIP:
		setIdx := int(lineAddr % uint64(c.sets))
		brrip := false
		switch c.duelKind(setIdx) {
		case 1:
			brrip = false
		case 2:
			brrip = true
		default:
			brrip = c.drripPSEL < 0
		}
		if brrip {
			// Bimodal: distant re-reference mostly.
			if c.lru%32 == 0 {
				l.rrpv = 2
			} else {
				l.rrpv = 3
			}
		} else {
			l.rrpv = 2
		}
	}
}

// drripMissUpdate updates PSEL on misses in leader sets.
func (c *Cache) drripMissUpdate(lineAddr uint64) {
	if c.cfg.Repl != DRRIP {
		return
	}
	setIdx := int(lineAddr % uint64(c.sets))
	switch c.duelKind(setIdx) {
	case 1: // SRRIP leader missed -> favor BRRIP
		if c.drripPSEL > -512 {
			c.drripPSEL--
		}
	case 2: // BRRIP leader missed -> favor SRRIP
		if c.drripPSEL < 511 {
			c.drripPSEL++
		}
	}
}

// findMSHR returns the MSHR entry tracking lineAddr, or nil.
func (c *Cache) findMSHR(lineAddr uint64) *mshr {
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].lineAddr == lineAddr {
			return &c.mshrs[i]
		}
	}
	return nil
}

// allocMSHR returns a free entry, or nil when the MSHR file is full.
func (c *Cache) allocMSHR() *mshr {
	for i := range c.mshrs {
		if !c.mshrs[i].valid {
			return &c.mshrs[i]
		}
	}
	return nil
}

// MSHROccupancy returns the number of valid MSHR entries.
func (c *Cache) MSHROccupancy() int {
	n := 0
	for i := range c.mshrs {
		if c.mshrs[i].valid {
			n++
		}
	}
	return n
}

// lowerAcceptRead forwards a read to the lower level through the concrete
// pointer when it is another cache, avoiding interface dispatch on the
// per-cycle drain path.
func (c *Cache) lowerAcceptRead(r *Req, cycle uint64) bool {
	if c.lowerC != nil {
		return c.lowerC.AcceptRead(r, cycle)
	}
	return c.lower.AcceptRead(r, cycle)
}

func (c *Cache) lowerAcceptWrite(r *Req, cycle uint64) bool {
	if c.lowerC != nil {
		return c.lowerC.AcceptWrite(r, cycle)
	}
	return c.lower.AcceptWrite(r, cycle)
}

// AcceptRead implements Lower for the level above. The request is copied
// into this level's queues; r is not retained.
func (c *Cache) AcceptRead(r *Req, cycle uint64) bool {
	if r.IsPrefetch && !r.hasDone() {
		// Fire-and-forget prefetch that fills at or below this level:
		// it enters this level's prefetch path (already physical).
		if c.pq.Len() >= c.cfg.PQSize {
			return false
		}
		if c.prov != nil && r.provID != 0 {
			// The issuing level handed the prefetch straight down without
			// installing: the record follows it to this level.
			c.prov.Relevel(r.provID, int(c.cfg.Level))
		}
		c.pq.Push(pqEntry{
			vline: r.VLineAddr, pline: r.LineAddr,
			fillLevel: r.FillLevel, issue: cycle, notBefore: cycle,
			provID: r.provID,
		})
		c.pqIdx.add(r.LineAddr)
		return true
	}
	// Demand reads and prefetches whose data must propagate upward use
	// the read queue so the response path is exercised.
	if c.rq.Len() >= c.cfg.RQSize {
		c.RQRejects++
		return false
	}
	nr := *r
	nr.enqueued = cycle
	nr.whead, nr.wtail = 0, 0
	c.rq.Push(nr)
	return true
}

// AcceptWrite implements Lower for writebacks from the level above.
func (c *Cache) AcceptWrite(r *Req, cycle uint64) bool {
	if c.wq.Len() >= c.cfg.WQSize {
		return false
	}
	nr := *r
	nr.enqueued = cycle
	nr.whead, nr.wtail = 0, 0
	c.wq.Push(nr)
	c.Stats.WritebacksIn++
	return true
}

// AcceptDemand is the core-facing entry point at L1D. notBefore delays
// processing by the translation latency. Same-line requests already waiting
// in the read queue are combined (load combining), so a burst of accesses
// to one line costs one cache lookup and counts as one demand access.
// Combined completions are chained as pooled waiter nodes on the queue
// entry — no closure wrapping, no allocation.
func (c *Cache) AcceptDemand(r *Req, notBefore uint64) bool {
	for i, n := 0, c.rq.Len(); i < n; i++ {
		q := c.rq.At(i)
		if q.LineAddr == r.LineAddr && !q.IsPrefetch {
			if r.hasDone() {
				if !q.hasDone() && q.whead == 0 {
					q.OnDone, q.Sink, q.Token = r.OnDone, r.Sink, r.Token
				} else {
					c.chainWaiter(&q.whead, &q.wtail, r.Sink, r.Token, r.OnDone)
				}
			}
			q.Store = q.Store || r.Store
			if notBefore < q.notBefore {
				q.notBefore = notBefore
			}
			return true
		}
	}
	if c.rq.Len() >= c.cfg.RQSize {
		return false
	}
	nr := *r
	nr.notBefore = notBefore
	nr.enqueued = notBefore
	nr.whead, nr.wtail = 0, 0
	c.rq.Push(nr)
	return true
}

// RQOccupancy returns the demand read-queue length (core stall decisions).
func (c *Cache) RQOccupancy() int { return c.rq.Len() }

// RQCap returns the read-queue capacity.
func (c *Cache) RQCap() int { return c.cfg.RQSize }

// completeReq fires the request's own callback and every waiter combined
// onto it, in arrival order, then releases the chain.
func (c *Cache) completeReq(r *Req, cycle uint64) {
	if r.OnDone != nil {
		r.OnDone(cycle)
	} else if r.Sink != nil {
		r.Sink.ReqDone(r.Token, cycle)
	}
	c.fireChain(r.whead, cycle)
	r.whead, r.wtail = 0, 0
}

// adoptWaiters moves the request's own callback plus its combined chain
// onto the MSHR's waiter chain (arrival order preserved).
func (c *Cache) adoptWaiters(m *mshr, r *Req) {
	if r.hasDone() {
		c.chainWaiter(&m.whead, &m.wtail, r.Sink, r.Token, r.OnDone)
	}
	c.spliceChain(&m.whead, &m.wtail, r.whead, r.wtail)
	r.whead, r.wtail = 0, 0
}

// EnqueuePrefetches inserts prefetcher-generated requests into the PQ,
// translating them and deduplicating against the cache, MSHRs, and PQ.
// The PQ duplicate check probes the presence index instead of walking the
// queue.
func (c *Cache) EnqueuePrefetches(reqs []PrefetchReq, cycle uint64, triggerVPage uint64) {
	for _, pr := range reqs {
		if c.pq.Len() >= c.cfg.PQSize {
			c.Stats.PrefDropped++
			continue
		}
		pline, extraLat, ok := c.xlat.TranslatePrefetchLine(pr.LineAddr)
		if !ok {
			c.Stats.PrefDropped++
			continue
		}
		if triggerVPage != 0 {
			prPage := pr.LineAddr >> (12 - LineShift)
			if prPage != triggerVPage {
				c.Stats.PrefCrossPg++
			}
		}
		c.Stats.PrefTagProbe++
		if c.probe(pline) != nil {
			c.Stats.PrefDropped++
			continue
		}
		if c.findMSHR(pline) != nil {
			c.Stats.PrefDropped++
			continue
		}
		if c.pqIdx.contains(pline) {
			c.Stats.PrefDropped++
			continue
		}
		var provID uint32
		if c.prov != nil {
			var delta int64
			if c.trigLine != 0 {
				delta = int64(pr.LineAddr) - int64(c.trigLine)
			}
			provID = c.prov.Issue(int(c.cfg.Level), c.trigIP, delta, pr.Confidence, cycle)
		}
		c.pq.Push(pqEntry{
			vline:     pr.LineAddr,
			pline:     pline,
			fillLevel: pr.FillLevel,
			issue:     cycle,
			notBefore: cycle + extraLat,
			provID:    provID,
		})
		c.pqIdx.add(pline)
		c.Stats.PrefIssued++
		if c.tr != nil {
			c.emit(cycle, obs.EvPrefetchIssue, pline, c.trigIP)
		}
	}
}

// Tick advances the cache one cycle: fills, writebacks, demand reads,
// prefetches, and downstream sends.
func (c *Cache) Tick(cycle uint64) {
	c.processFills(cycle)
	c.processWrites(cycle)
	c.processReads(cycle)
	c.processPrefetches(cycle)
	c.drainSendQ(cycle)
}

// processFills completes MSHR entries whose data has arrived. fillsReady
// gates the sweep: most cycles no fill is pending and the MSHR file is
// not touched at all.
func (c *Cache) processFills(cycle uint64) {
	if c.fillsReady == 0 {
		return
	}
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if !m.valid || !m.dataReady || m.readyCycle > cycle {
			continue
		}
		c.fill(m, cycle)
		c.fillsReady--
		*m = mshr{}
	}
}

// ReqDone implements DoneSink: completions for this level's own forwarded
// misses arrive here with the missing line address as the token. This
// replaces the per-request closure forwardDown used to allocate; the MSHR
// array is stable, so the entry is re-located by address.
func (c *Cache) ReqDone(lineAddr, done uint64) {
	m := c.findMSHR(lineAddr)
	if m == nil {
		return
	}
	if c.fh != nil {
		drop, delay := c.fh.FillFault(lineAddr, m.isPrefetch, done)
		if drop {
			return // swallowed: the MSHR entry leaks
		}
		done += delay
	}
	if !m.dataReady {
		c.fillsReady++
	}
	m.dataReady = true
	m.readyCycle = done
}

// fill installs the line (respecting fill level) and wakes waiters.
func (c *Cache) fill(m *mshr, cycle uint64) {
	install := c.cfg.Level >= m.fillLevel || !m.isPrefetch || m.demandMerged
	latency := cycle - m.issueCycle
	if install {
		// A writeback from above may have installed the line while this
		// miss was in flight (processWrites probes, but fills used not
		// to); installing again would leave the same tag valid in two
		// ways. Update the resident copy in place instead.
		if l := c.probe(m.lineAddr); l != nil {
			c.touch(l)
			if m.isStore && (!m.isPrefetch || m.demandMerged) {
				l.dirty = true
			}
			c.Stats.TotalFills++
			if m.isPrefetch {
				c.Stats.PrefFills++
				if c.tr != nil {
					c.emit(cycle, obs.EvPrefetchFill, m.lineAddr, m.ip)
				}
				if c.prov != nil && !m.demandMerged {
					// The line was installed by a writeback while this
					// prefetch was in flight: no prefetch bit is set, so
					// the prefetch terminates without a trackable install.
					c.prov.Resolve(m.provID, int(c.cfg.Level), provenance.OutDropped, cycle)
				}
			}
			if c.pf != nil {
				c.pf.OnFill(FillEvent{
					Cycle:      cycle,
					IP:         m.ip,
					LineAddr:   c.trainAddr(m.vline, m.lineAddr),
					PLineAddr:  m.lineAddr,
					Latency:    latency,
					ByPrefetch: m.isPrefetch && !m.demandMerged,
				})
			}
			if !m.isPrefetch || m.demandMerged {
				c.Stats.RecordFillLatency(latency)
			}
			c.fireChain(m.whead, cycle)
			m.whead, m.wtail = 0, 0
			return
		}
		v := c.victim(m.lineAddr)
		var evAddr uint64
		var evPf bool
		if v.valid {
			evAddr = v.addr
			evPf = v.prefetched
			if v.prefetched {
				c.Stats.PrefUseless++
				if c.tr != nil {
					c.emit(cycle, obs.EvPrefetchEvict, v.addr, v.pfIP)
				}
				if c.prov != nil {
					c.prov.Resolve(v.provID, int(c.cfg.Level), provenance.OutUseless, cycle)
				}
			}
			if v.dirty {
				c.writebackVictim(v, cycle)
			}
		}
		*v = line{
			addr:  m.lineAddr,
			vaddr: m.vline,
			valid: true,
		}
		c.insertRepl(v, m.lineAddr)
		c.Stats.TotalFills++
		if m.isPrefetch {
			// Every prefetch-initiated fill counts toward the artifact
			// accuracy denominator, including late (demand-merged) ones.
			c.Stats.PrefFills++
			if c.tr != nil {
				c.emit(cycle, obs.EvPrefetchFill, m.lineAddr, m.ip)
			}
		}
		if m.isPrefetch && !m.demandMerged {
			v.prefetched = true
			v.pfIP = m.ip
			v.provID = m.provID
			if c.prov != nil {
				c.prov.Fill(m.provID, cycle)
			}
			// Store the 12-bit latency; overflow -> 0 (not learned).
			if latency >= 1<<12 {
				v.pfLatency = 0
			} else {
				v.pfLatency = uint16(latency)
			}
		}
		if m.isStore && (!m.isPrefetch || m.demandMerged) {
			v.dirty = true
		}
		if c.pf != nil {
			c.pf.OnFill(FillEvent{
				Cycle:             cycle,
				IP:                m.ip,
				LineAddr:          c.trainAddr(m.vline, m.lineAddr),
				PLineAddr:         m.lineAddr,
				Latency:           latency,
				ByPrefetch:        m.isPrefetch && !m.demandMerged,
				EvictedAddr:       evAddr,
				EvictedPrefetched: evPf,
			})
		}
		if !m.isPrefetch || m.demandMerged {
			c.Stats.RecordFillLatency(latency)
			if debugSlowFills && latency > 1200 {
				fmt.Printf("SLOWFILL %s line=%x lat=%d wasPf=%v merged=%v fillLvl=%v cyc=%d issue=%d dramTL=%v\n",
					c.cfg.Name, m.lineAddr, latency, m.isPrefetch, m.demandMerged, m.fillLevel, cycle, m.issueCycle, DebugDRAMTimeline(m.lineAddr))
			}
		}
	}
	c.fireChain(m.whead, cycle)
	m.whead, m.wtail = 0, 0
}

// trainAddr picks the training address space: virtual when available (L1D),
// physical otherwise.
func (c *Cache) trainAddr(vline, pline uint64) uint64 {
	if c.cfg.Level == L1D && vline != 0 {
		return vline
	}
	return pline
}

// writebackVictim queues a dirty victim for the lower level. A writeback is
// a Store request with no completion callback (see drainSendQ).
func (c *Cache) writebackVictim(v *line, cycle uint64) {
	c.Stats.WritebacksOut++
	c.sendQ.Push(Req{
		LineAddr:  v.addr,
		VLineAddr: v.vaddr,
		Store:     true,
		notBefore: cycle,
		FillLevel: c.cfg.Level + 1,
	})
}

// processWrites handles writebacks arriving from above (and demand stores
// at L1D, which the core sends through AcceptDemand as stores).
func (c *Cache) processWrites(cycle uint64) {
	ports := c.cfg.WritePorts
	for ports > 0 && c.wq.Len() > 0 {
		r := c.wq.Front()
		if r.notBefore > cycle {
			break
		}
		// Writeback data: install (non-inclusive back-fill) or update.
		if l := c.probe(r.LineAddr); l != nil {
			l.dirty = true
			c.touch(l)
		} else {
			v := c.victim(r.LineAddr)
			if v.valid {
				if v.prefetched {
					c.Stats.PrefUseless++
					if c.tr != nil {
						c.emit(cycle, obs.EvPrefetchEvict, v.addr, v.pfIP)
					}
					if c.prov != nil {
						c.prov.Resolve(v.provID, int(c.cfg.Level), provenance.OutUseless, cycle)
					}
				}
				if v.dirty {
					c.writebackVictim(v, cycle)
				}
			}
			*v = line{addr: r.LineAddr, vaddr: r.VLineAddr, valid: true, dirty: true}
			c.insertRepl(v, r.LineAddr)
		}
		c.wq.PopFront()
		ports--
	}
}

// processReads services read-queue entries, demands strictly before
// prefetch-originated reads so prefetch bursts from the level above never
// delay demand misses.
func (c *Cache) processReads(cycle uint64) {
	ports := c.cfg.ReadPorts
	for _, wantPrefetch := range [2]bool{false, true} {
		idx := 0
		for ports > 0 && idx < c.rq.Len() {
			r := c.rq.At(idx)
			if r.notBefore > cycle || r.IsPrefetch != wantPrefetch {
				idx++
				continue
			}
			done, consumed := c.serviceRead(r, cycle)
			if !done {
				// MSHR full: stall this and subsequent requests.
				c.Stats.MSHRFullStalls++
				if c.tr != nil {
					c.emit(cycle, obs.EvMSHRStall, r.LineAddr, r.IP)
				}
				return
			}
			if consumed {
				c.rq.RemoveAt(idx)
			} else {
				idx++
			}
			ports--
		}
	}
}

// serviceRead handles one demand read. Returns done=false when the request
// must be retried (MSHR full). r points into the read-queue ring; it is
// only valid until the caller removes it.
func (c *Cache) serviceRead(r *Req, cycle uint64) (done, consumed bool) {
	if !r.IsPrefetch {
		c.Stats.DemandAccesses++
	}
	l := c.probe(r.LineAddr)
	if l != nil {
		// Hit.
		if !r.IsPrefetch {
			c.Stats.DemandHits++
		}
		pfHit := l.prefetched
		pfLat := l.pfLatency
		if pfHit && !r.IsPrefetch {
			c.Stats.PrefUseful++
			l.prefetched = false
			if c.tr != nil {
				c.emit(cycle, obs.EvPrefetchUse, r.LineAddr, r.IP)
			}
			if c.prov != nil {
				// Timely: the line sat ready; slack = cycle - fill cycle.
				c.prov.Resolve(l.provID, int(c.cfg.Level), provenance.OutTimely, cycle)
			}
			l.provID = 0
		}
		c.touch(l)
		if r.Store {
			l.dirty = true
		}
		if c.pf != nil && !r.IsPrefetch {
			c.firePrefetcher(AccessEvent{
				Cycle:       cycle,
				IP:          r.IP,
				LineAddr:    c.trainAddr(r.VLineAddr, r.LineAddr),
				PLineAddr:   r.LineAddr,
				IsStore:     r.Store,
				Hit:         true,
				PrefetchHit: pfHit,
				PfLatency:   pfLat,
			}, cycle)
			if pfHit {
				// Latency consumed by the training search; reset.
				l.pfLatency = 0
			}
		}
		if r.hasDone() || r.whead != 0 {
			c.completeReq(r, cycle+c.cfg.LatencyCyc)
		}
		return true, true
	}

	// Miss. Merge into an existing MSHR if the line is in flight. Only
	// the primary miss of a line counts toward DemandMisses and trains
	// the prefetcher; secondary (merged) misses are bookkeeping.
	if m := c.findMSHR(r.LineAddr); m != nil {
		if !r.IsPrefetch {
			c.Stats.MSHRMerges++
			if m.isPrefetch && !m.demandMerged {
				// Late prefetch: the first demand arrived while the
				// prefetch was in flight. This would have been a miss
				// without the prefetcher, so it counts and trains. The
				// in-flight request is promoted to demand priority all
				// the way down.
				c.Stats.DemandMisses++
				c.Stats.PrefLate++
				if c.tr != nil {
					c.emit(cycle, obs.EvDemandMiss, r.LineAddr, r.IP)
				}
				if c.prov != nil {
					// Late: the demand merged into the in-flight prefetch.
					// The MSHR continues life as a demand miss, so the
					// record resolves here and the ID is dropped.
					c.prov.Resolve(m.provID, int(c.cfg.Level), provenance.OutLate, cycle)
				}
				m.provID = 0
				c.Promote(r.LineAddr)
				m.demandMerged = true
				m.ip = r.IP
				m.vline = r.VLineAddr
				// Latency for training restarts at the demand.
				m.issueCycle = cycle
				c.fireMissEvent(r, cycle)
			}
			if r.Store {
				m.isStore = true
			}
			if m.fillLevel > r.FillLevel {
				m.fillLevel = r.FillLevel
			}
		}
		c.adoptWaiters(m, r)
		return true, true
	}

	m := c.allocMSHR()
	if m == nil {
		return false, false
	}
	if !r.IsPrefetch {
		c.Stats.DemandMisses++
		if c.tr != nil {
			c.emit(cycle, obs.EvDemandMiss, r.LineAddr, r.IP)
		}
		c.drripMissUpdate(r.LineAddr)
		c.fireMissEvent(r, cycle)
	}
	var provID uint32
	if c.prov != nil && r.IsPrefetch {
		// A prefetch forwarded from the level above installs its own copy
		// of the line here (non-inclusive fill): spawn a child record so
		// this level's install resolves independently under the same
		// trigger attribution.
		provID = c.prov.Child(r.provID, int(c.cfg.Level), cycle)
	}
	*m = mshr{
		valid:      true,
		lineAddr:   r.LineAddr,
		vline:      r.VLineAddr,
		ip:         r.IP,
		isPrefetch: r.IsPrefetch,
		fillLevel:  r.FillLevel,
		isStore:    r.Store,
		issueCycle: cycle,
		provID:     provID,
	}
	c.adoptWaiters(m, r)
	c.forwardDown(m, cycle)
	return true, true
}

// fireMissEvent notifies the prefetcher of a demand miss access.
func (c *Cache) fireMissEvent(r *Req, cycle uint64) {
	if c.pf == nil {
		return
	}
	c.firePrefetcher(AccessEvent{
		Cycle:     cycle,
		IP:        r.IP,
		LineAddr:  c.trainAddr(r.VLineAddr, r.LineAddr),
		PLineAddr: r.LineAddr,
		IsStore:   r.Store,
		Hit:       false,
	}, cycle)
}

// firePrefetcher invokes OnAccess and enqueues returned prefetches.
func (c *Cache) firePrefetcher(ev AccessEvent, cycle uint64) {
	ev.MSHROccupancy = c.MSHROccupancy()
	ev.MSHRCap = c.cfg.MSHRs
	reqs := c.pf.OnAccess(ev)
	if len(reqs) > 0 {
		c.trigIP = ev.IP
		c.trigLine = ev.LineAddr
		c.EnqueuePrefetches(reqs, cycle, ev.LineAddr>>(12-LineShift))
		c.trigIP = 0
		c.trigLine = 0
	}
}

// forwardDown queues the miss to the lower level. The completion path is
// this cache's own ReqDone sink keyed by line address — no closure, no
// allocation.
func (c *Cache) forwardDown(m *mshr, cycle uint64) {
	c.sendQ.Push(Req{
		LineAddr:   m.lineAddr,
		VLineAddr:  m.vline,
		IP:         m.ip,
		IsPrefetch: m.isPrefetch,
		FillLevel:  m.fillLevel,
		notBefore:  cycle,
		provID:     m.provID,
		Sink:       c,
		Token:      m.lineAddr,
	})
}

// processPrefetches services the PQ: tag-check and forward misses.
func (c *Cache) processPrefetches(cycle uint64) {
	// One prefetch processed per cycle (PQ is FIFO per the paper).
	for c.pq.Len() > 0 {
		e := *c.pq.Front()
		if e.notBefore > cycle {
			return
		}
		if c.probe(e.pline) != nil || c.findMSHR(e.pline) != nil {
			c.Stats.PrefDropped++
			if c.prov != nil {
				// The line became resident (or in flight) since the PQ
				// accepted this prefetch: it terminates without a line.
				c.prov.Resolve(e.provID, int(c.cfg.Level), provenance.OutDropped, cycle)
			}
			c.pq.PopFront()
			c.pqIdx.remove(e.pline)
			continue
		}
		if c.cfg.Level >= e.fillLevel {
			// This level will install the line: needs an MSHR.
			// Prefetches may not take the last quarter of the MSHRs —
			// that headroom is reserved for demand misses so a
			// prefetch burst can never starve the demand path.
			if c.MSHROccupancy() >= c.cfg.MSHRs-c.cfg.MSHRs/4 {
				return // retry next cycle
			}
			m := c.allocMSHR()
			if m == nil {
				return // retry next cycle
			}
			*m = mshr{
				valid:      true,
				lineAddr:   e.pline,
				vline:      e.vline,
				isPrefetch: true,
				fillLevel:  e.fillLevel,
				issueCycle: e.issue, // PQ timestamp transfers to the MSHR
				provID:     e.provID,
			}
			c.forwardDown(m, cycle)
		} else {
			// Fill is below this level: hand the request straight to
			// the lower level so it can never block demand misses
			// queued in sendQ. If the lower level is full, retry next
			// cycle (the PQ itself is the bounded buffer).
			req := Req{
				LineAddr:   e.pline,
				VLineAddr:  e.vline,
				IsPrefetch: true,
				FillLevel:  e.fillLevel,
				notBefore:  cycle,
				provID:     e.provID,
			}
			if !c.lowerAcceptRead(&req, cycle) {
				return
			}
			c.TrafficDown++
		}
		c.pq.PopFront()
		c.pqIdx.remove(e.pline)
		return // one per cycle
	}
}

// drainSendQ pushes queued downstream requests into the lower level.
// Prefetch requests that the lower level cannot accept are skipped rather
// than blocking the demand misses and writebacks queued behind them. The
// queue is compacted in a single pass (kept entries slide forward), so a
// drain is O(queue length) instead of O(n) per removal.
func (c *Cache) drainSendQ(cycle uint64) {
	n := c.sendQ.Len()
	if n == 0 {
		return
	}
	w := 0 // write cursor for kept entries
	i := 0
	for ; i < n; i++ {
		r := c.sendQ.At(i)
		if r.notBefore > cycle {
			break // entries are in notBefore order; keep the rest
		}
		var ok bool
		if r.Store && !r.hasDone() {
			ok = c.lowerAcceptWrite(r, cycle)
			if ok {
				c.WBDown++
			}
		} else {
			ok = c.lowerAcceptRead(r, cycle)
			if ok {
				c.TrafficDown++
			}
		}
		if ok {
			continue // sent: not kept
		}
		if r.IsPrefetch {
			// Skip: retry next cycle without blocking demands.
			if w != i {
				*c.sendQ.At(w) = *r
			}
			w++
			continue
		}
		break // blocked demand/writeback: keep it and everything behind
	}
	// Keep the unprocessed tail.
	for ; i < n; i++ {
		if w != i {
			*c.sendQ.At(w) = *c.sendQ.At(i)
		}
		w++
	}
	c.sendQ.Truncate(w)
}

// Promote implements Lower: upgrade in-flight prefetches for the line to
// demand priority here and below.
func (c *Cache) Promote(lineAddr uint64) {
	for i, n := 0, c.sendQ.Len(); i < n; i++ {
		if r := c.sendQ.At(i); r.LineAddr == lineAddr {
			r.IsPrefetch = false
		}
	}
	for i, n := 0, c.rq.Len(); i < n; i++ {
		if r := c.rq.At(i); r.LineAddr == lineAddr {
			r.IsPrefetch = false
		}
	}
	if c.lowerC != nil {
		c.lowerC.Promote(lineAddr)
	} else if c.lower != nil {
		c.lower.Promote(lineAddr)
	}
}

// never is the quiescent horizon (sim.Never).
const never = ^uint64(0)

// NextEventCycle reports the earliest future cycle at which this level can
// change state on its own: a fill whose data has a known arrival cycle, or a
// queued request coming out of its notBefore delay. Queue entries that are
// already past due force an immediate horizon (processing may be blocked by
// ports, MSHR pressure, or a full lower level — conditions the per-cycle
// retry loop owns, so no cycle may be skipped while they hold). MSHR entries
// still waiting on the lower level carry no horizon here: the response is
// the lower component's event, and the engine re-queries after every tick.
func (c *Cache) NextEventCycle(now uint64) uint64 {
	h := never
	for i, n := 0, c.rq.Len(); i < n; i++ {
		r := c.rq.At(i)
		if r.notBefore <= now {
			return now
		}
		if r.notBefore < h {
			h = r.notBefore
		}
	}
	if c.fillsReady > 0 {
		for i := range c.mshrs {
			m := &c.mshrs[i]
			if !m.valid || !m.dataReady {
				continue
			}
			if m.readyCycle <= now {
				return now
			}
			if m.readyCycle < h {
				h = m.readyCycle
			}
		}
	}
	// wq, pq, and sendQ are head-gated: entries behind the head cannot be
	// reached before the head itself is processed (an event).
	if c.wq.Len() > 0 {
		if nb := c.wq.Front().notBefore; nb <= now {
			return now
		} else if nb < h {
			h = nb
		}
	}
	if c.pq.Len() > 0 {
		if nb := c.pq.Front().notBefore; nb <= now {
			return now
		} else if nb < h {
			h = nb
		}
	}
	if c.sendQ.Len() > 0 {
		if nb := c.sendQ.Front().notBefore; nb <= now {
			return now
		} else if nb < h {
			h = nb
		}
	}
	return h
}

// Drained reports whether all queues and MSHRs are empty.
func (c *Cache) Drained() bool {
	if c.rq.Len() > 0 || c.wq.Len() > 0 || c.pq.Len() > 0 || c.sendQ.Len() > 0 {
		return false
	}
	for i := range c.mshrs {
		if c.mshrs[i].valid {
			return false
		}
	}
	return true
}

// FlushMetadata clears prefetch bits (between warmup and measurement the
// stats are reset but cache contents persist).
func (c *Cache) ResetStats() {
	name := c.Stats.Name
	c.Stats = stats.CacheStats{Name: name}
	c.TrafficDown = 0
	c.WBDown = 0
}

// QueueSnapshot captures one level's queue and MSHR occupancy (engine
// stall reports and invariant checking).
type QueueSnapshot struct {
	Name  string `json:"name"`
	MSHR  int    `json:"mshr"`
	RQ    int    `json:"rq"`
	WQ    int    `json:"wq"`
	PQ    int    `json:"pq"`
	SendQ int    `json:"sendq"`
}

// Queues returns the current occupancy snapshot.
func (c *Cache) Queues() QueueSnapshot {
	return QueueSnapshot{
		Name:  c.cfg.Name,
		MSHR:  c.MSHROccupancy(),
		RQ:    c.rq.Len(),
		WQ:    c.wq.Len(),
		PQ:    c.pq.Len(),
		SendQ: c.sendQ.Len(),
	}
}

// CheckInvariants walks the level's state and reports every breached
// invariant: queue occupancy beyond configured bounds, duplicate tags
// within a set, lines resident in the wrong set, duplicate MSHR entries,
// and MSHR entries in flight longer than mshrStuckAfter cycles (a leaked
// fill — nothing will ever complete them). It never mutates state.
func (c *Cache) CheckInvariants(cycle, mshrStuckAfter uint64, report func(check.Violation)) {
	name := c.cfg.Name
	if c.rq.Len() > c.cfg.RQSize {
		report(check.Violation{Rule: check.RuleQueueBound, Component: name, Cycle: cycle,
			Detail: fmt.Sprintf("RQ holds %d entries, capacity %d", c.rq.Len(), c.cfg.RQSize)})
	}
	if c.wq.Len() > c.cfg.WQSize {
		report(check.Violation{Rule: check.RuleQueueBound, Component: name, Cycle: cycle,
			Detail: fmt.Sprintf("WQ holds %d entries, capacity %d", c.wq.Len(), c.cfg.WQSize)})
	}
	if c.pq.Len() > c.cfg.PQSize {
		report(check.Violation{Rule: check.RuleQueueBound, Component: name, Cycle: cycle,
			Detail: fmt.Sprintf("PQ holds %d entries, capacity %d", c.pq.Len(), c.cfg.PQSize)})
	}
	for s := 0; s < c.sets; s++ {
		set := c.lines[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
		for i := range set {
			if !set[i].valid {
				continue
			}
			if home := int(set[i].addr % uint64(c.sets)); home != s {
				report(check.Violation{Rule: check.RuleSetMap, Component: name, Cycle: cycle,
					Detail: fmt.Sprintf("line %#x resident in set %d, maps to set %d", set[i].addr, s, home)})
			}
			for j := i + 1; j < len(set); j++ {
				if set[j].valid && set[j].addr == set[i].addr {
					report(check.Violation{Rule: check.RuleDupTag, Component: name, Cycle: cycle,
						Detail: fmt.Sprintf("line %#x present in ways %d and %d of set %d", set[i].addr, i, j, s)})
				}
			}
		}
	}
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if !m.valid {
			continue
		}
		// Stuck means still incomplete long past issue: either the fill
		// response never arrived (dataReady false — a dropped fill) or it
		// carries an implausibly distant ready cycle (a delayed fill).
		pending := !m.dataReady || m.readyCycle > cycle
		if mshrStuckAfter > 0 && pending && cycle > m.issueCycle && cycle-m.issueCycle > mshrStuckAfter {
			report(check.Violation{Rule: check.RuleMSHRStuck, Component: name, Cycle: cycle,
				Detail: fmt.Sprintf("MSHR %d line %#x in flight for %d cycles (prefetch=%v)",
					i, m.lineAddr, cycle-m.issueCycle, m.isPrefetch)})
		}
		for j := i + 1; j < len(c.mshrs); j++ {
			if c.mshrs[j].valid && c.mshrs[j].lineAddr == m.lineAddr {
				report(check.Violation{Rule: check.RuleMSHRDup, Component: name, Cycle: cycle,
					Detail: fmt.Sprintf("MSHRs %d and %d both track line %#x", i, j, m.lineAddr)})
			}
		}
	}
}

// CorruptDuplicateTag copies a valid line into another way of its own set,
// leaving two ways with the same tag — deliberate damage used by the
// dup-line fault plan to prove the checker catches real state corruption.
// Returns false when no set has both a valid line and a second way.
func (c *Cache) CorruptDuplicateTag() bool {
	if c.cfg.Ways < 2 {
		return false
	}
	for s := 0; s < c.sets; s++ {
		set := c.lines[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
		for i := range set {
			if set[i].valid {
				j := (i + 1) % len(set)
				set[j] = set[i]
				return true
			}
		}
	}
	return false
}

// CorruptPQOrphans appends n orphan entries to the prefetch queue beyond
// its configured bound — deliberate damage used by the pq-orphan fault
// plan. The entries target line 0 with notBefore in the far future so they
// are never serviced and the overflow persists for the checker to find.
// The ring and the presence index both tolerate the deliberate overfill.
func (c *Cache) CorruptPQOrphans(n int) {
	for c.pq.Len() < c.cfg.PQSize+n {
		c.pq.Push(pqEntry{notBefore: ^uint64(0)})
		c.pqIdx.add(0)
	}
}
