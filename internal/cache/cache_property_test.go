package cache

import (
	"math/rand"
	"testing"
)

// TestRandomTrafficInvariants drives a cache with random demand, prefetch,
// and writeback traffic and checks global invariants at every step: stats
// consistency, eventual completion of every demand, and drainability.
func TestRandomTrafficInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			f := &fakeLower{delay: uint64(5 + rng.Intn(60))}
			cfg := testConfig()
			cfg.Repl = []ReplPolicy{LRU, FIFO, SRRIP, DRRIP}[seed%4]
			c := MustNew(cfg, f)

			outstanding := 0
			issued := 0
			for cyc := uint64(0); cyc < 6000; cyc++ {
				f.tick(cyc)
				c.Tick(cyc)
				switch rng.Intn(6) {
				case 0, 1:
					line := uint64(rng.Intn(256))
					if c.AcceptDemand(&Req{
						LineAddr: line,
						Store:    rng.Intn(4) == 0,
						OnDone:   func(uint64) { outstanding-- },
					}, cyc) {
						outstanding++
						issued++
					}
				case 2:
					c.EnqueuePrefetches([]PrefetchReq{{
						LineAddr:  uint64(rng.Intn(512)),
						FillLevel: []Level{L1D, L2}[rng.Intn(2)],
					}}, cyc, 0)
				case 3:
					c.AcceptWrite(&Req{LineAddr: uint64(rng.Intn(256)), Store: true}, cyc)
				}
				st := &c.Stats
				if st.DemandHits+st.DemandMisses > st.DemandAccesses+st.MSHRMerges {
					t.Fatalf("cycle %d: hits+misses exceed accesses+merges: %+v", cyc, st)
				}
			}
			// Drain: no new traffic; everything must complete.
			for cyc := uint64(6000); cyc < 20000 && (outstanding > 0 || !c.Drained()); cyc++ {
				f.tick(cyc)
				c.Tick(cyc)
			}
			if outstanding != 0 {
				t.Fatalf("%d demands never completed (issued %d)", outstanding, issued)
			}
			if !c.Drained() {
				t.Fatal("cache failed to drain")
			}
		})
	}
}

// TestFillInstallsAtMostOneCopy checks the set never holds duplicate tags.
func TestFillInstallsAtMostOneCopy(t *testing.T) {
	f := &fakeLower{delay: 7}
	c := MustNew(testConfig(), f)
	rng := rand.New(rand.NewSource(42))
	for cyc := uint64(0); cyc < 4000; cyc++ {
		f.tick(cyc)
		c.Tick(cyc)
		if cyc%3 == 0 {
			c.AcceptDemand(&Req{LineAddr: uint64(rng.Intn(64)), OnDone: func(uint64) {}}, cyc)
		}
		if cyc%5 == 0 {
			c.EnqueuePrefetches([]PrefetchReq{{LineAddr: uint64(rng.Intn(64)), FillLevel: L1D}}, cyc, 0)
		}
	}
	counts := map[uint64]int{}
	for i := range c.lines {
		if c.lines[i].valid {
			counts[c.lines[i].addr]++
		}
	}
	for addr, n := range counts {
		if n > 1 {
			t.Fatalf("line %d installed %d times", addr, n)
		}
	}
}

// TestDRRIPLeaderSetsExist sanity-checks set dueling plumbing.
func TestDRRIPLeaderSetsExist(t *testing.T) {
	cfg := testConfig()
	cfg.Repl = DRRIP
	cfg.SizeBytes = 64 * 4 * LineSize // 64 sets x 4 ways
	c := MustNew(cfg, &fakeLower{delay: 1})
	srrip, brrip := 0, 0
	for s := 0; s < c.sets; s++ {
		switch c.duelKind(s) {
		case 1:
			srrip++
		case 2:
			brrip++
		}
	}
	if srrip == 0 || brrip == 0 {
		t.Fatalf("missing leader sets: srrip=%d brrip=%d", srrip, brrip)
	}
}

// TestTranslatorDropBlocksPrefetch: a failing translation must drop the
// prefetch and count it.
type denyXlat struct{}

func (denyXlat) TranslatePrefetchLine(uint64) (uint64, uint64, bool) { return 0, 0, false }

func TestTranslatorDropBlocksPrefetch(t *testing.T) {
	c := MustNew(testConfig(), &fakeLower{delay: 1})
	c.SetTranslator(denyXlat{})
	c.EnqueuePrefetches([]PrefetchReq{{LineAddr: 1, FillLevel: L1D}}, 0, 0)
	if c.Stats.PrefIssued != 0 || c.Stats.PrefDropped != 1 {
		t.Fatalf("prefetch should drop on translation miss: %+v", c.Stats)
	}
}

// TestCrossPageCounter verifies the cross-page statistic fires.
func TestCrossPageCounter(t *testing.T) {
	c := MustNew(testConfig(), &fakeLower{delay: 1})
	// Trigger page 2 (lines 128..191); target line 200 is page 3.
	c.EnqueuePrefetches([]PrefetchReq{{LineAddr: 200, FillLevel: L1D}}, 0, 2)
	if c.Stats.PrefCrossPg != 1 {
		t.Fatalf("cross-page prefetch not counted: %+v", c.Stats)
	}
}
