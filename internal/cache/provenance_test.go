package cache

import (
	"testing"

	"github.com/bertisim/berti/internal/obs/provenance"
	"github.com/bertisim/berti/internal/stats"
)

// tickChain ticks lower-first so responses propagate the same way the
// engine's scheduler orders them: fakeLower, then L2, then L1D.
func tickChain(c1, c2 *Cache, f *fakeLower, from, n uint64) uint64 {
	for cyc := from; cyc < from+n; cyc++ {
		f.tick(cyc)
		c2.Tick(cyc)
		c1.Tick(cyc)
	}
	return from + n
}

// reconcile asserts the provenance/counter agreement the tracker is built
// around: at every level, tracked + untracked outcomes equal the cache's
// own PrefUseful/PrefLate/PrefUseless counters exactly.
func reconcile(t *testing.T, rep *provenance.Report, name string, s *stats.CacheStats) {
	t.Helper()
	l := rep.Level(name)
	if l == nil {
		if s.PrefUseful != 0 || s.PrefLate != 0 || s.PrefUseless != 0 {
			t.Fatalf("%s: no provenance level stats but counters nonzero: %+v", name, s)
		}
		return
	}
	if got, want := l.Timely+l.UntrackedTimely, s.PrefUseful; got != want {
		t.Errorf("%s: timely %d != PrefUseful %d", name, got, want)
	}
	if got, want := l.Late+l.UntrackedLate, s.PrefLate; got != want {
		t.Errorf("%s: late %d != PrefLate %d", name, got, want)
	}
	if got, want := l.Useless+l.UntrackedUseless, s.PrefUseless; got != want {
		t.Errorf("%s: useless %d != PrefUseless %d", name, got, want)
	}
}

// A fill-at-L2 prefetch is handed down from L1D and races a demand miss
// for the same line at L2: the demand merges into the in-flight prefetch
// MSHR, so L2 counts PrefLate and the tracker resolves the same record
// Late at L2 — never at the issuing L1D.
func TestProvenanceLateFillRacesDemandAtL2(t *testing.T) {
	f := &fakeLower{delay: 80}
	cfg2 := testConfig()
	cfg2.Name, cfg2.Level = "L2", L2
	c2 := MustNew(cfg2, f)
	c1 := MustNew(testConfig(), c2)
	tr := provenance.NewTracker(64)
	c1.SetProvenance(tr)
	c2.SetProvenance(tr)

	pf := &fixedPf{target: 300, level: L2}
	c1.SetPrefetcher(pf)
	c1.AcceptDemand(&Req{LineAddr: 100, OnDone: func(uint64) {}}, 0)
	tickChain(c1, c2, f, 0, 10) // prefetch of 300 now in flight below L2
	pf.target = 0

	var done uint64
	c1.AcceptDemand(&Req{LineAddr: 300, OnDone: func(cyc uint64) { done = cyc }}, 10)
	tickChain(c1, c2, f, 10, 200)
	if done == 0 {
		t.Fatal("demand racing the prefetch never completed")
	}
	if c2.Stats.PrefLate != 1 {
		t.Fatalf("L2 PrefLate = %d, want 1", c2.Stats.PrefLate)
	}
	if c1.Stats.PrefLate != 0 {
		t.Fatalf("L1D PrefLate = %d, want 0 (the race is at L2)", c1.Stats.PrefLate)
	}

	rep := tr.Report()
	reconcile(t, rep, "L1D", &c1.Stats)
	reconcile(t, rep, "L2", &c2.Stats)
	l2 := rep.Level("L2")
	if l2 == nil || l2.Late != 1 {
		t.Fatalf("tracker L2 late = %+v, want 1", l2)
	}
	if l2.UntrackedLate != 0 {
		t.Fatalf("untracked late = %d with a %d-record pool", l2.UntrackedLate, tr.Capacity())
	}
	if l2.LateWait.Count != 1 || l2.LateWait.Sum == 0 {
		t.Fatalf("late-wait histogram = %+v, want one nonzero observation", l2.LateWait)
	}
	// The issuing level keeps the Issued attribution even though the
	// outcome landed at L2.
	if l1 := rep.Level("L1D"); l1 == nil || l1.Issued != 1 {
		t.Fatalf("L1D issued = %+v, want 1", l1)
	}
}

// A prefetched line at L2 is evicted untouched by writeback installs (the
// non-inclusive back-fill path): PrefUseless and the tracker's Useless
// resolution must agree, and the useless-lifetime histogram must see it.
func TestProvenanceUselessUnderWritebackPressure(t *testing.T) {
	f := &fakeLower{delay: 5}
	cfg := testConfig()
	cfg.Name, cfg.Level = "L2", L2
	cfg.SizeBytes = 4 * LineSize // one set x 4 ways
	cfg.WQSize = 8
	c := MustNew(cfg, f)
	tr := provenance.NewTracker(64)
	c.SetProvenance(tr)

	c.EnqueuePrefetches([]PrefetchReq{{LineAddr: 1, FillLevel: L2}}, 0, 0)
	runCache(c, f, 0, 30)
	if !c.Contains(1) {
		t.Fatal("prefetch not filled")
	}
	// Four dirty writebacks into the only set: three fill the free ways,
	// the fourth back-fill evicts the LRU victim — the untouched
	// prefetched line.
	for i := uint64(2); i <= 5; i++ {
		if !c.AcceptWrite(&Req{LineAddr: i, Store: true}, 30) {
			t.Fatalf("writeback of line %d refused", i)
		}
	}
	runCache(c, f, 30, 40)
	if c.Contains(1) {
		t.Fatal("prefetched line should have been evicted by writeback pressure")
	}
	if c.Stats.PrefUseless != 1 {
		t.Fatalf("PrefUseless = %d, want 1", c.Stats.PrefUseless)
	}

	rep := tr.Report()
	reconcile(t, rep, "L2", &c.Stats)
	l2 := rep.Level("L2")
	if l2 == nil || l2.Useless != 1 || l2.Timely != 0 {
		t.Fatalf("tracker L2 stats = %+v, want exactly one useless", l2)
	}
	if l2.UselessLifetime.Count != 1 || l2.UselessLifetime.Sum == 0 {
		t.Fatalf("useless-lifetime histogram = %+v, want one nonzero observation", l2.UselessLifetime)
	}
	if tr.Live() != 0 {
		t.Fatalf("live records = %d after terminal resolution, want 0", tr.Live())
	}
}

// A fill-at-L1D prefetch installs at both L1D and L2 (the L2 copy is a
// spawned child record). Demand pressure then evicts the untouched L1D
// copy: PrefUseless lands at L1D only, while the L2 child stays live.
func TestProvenanceUselessDemandEvictionMultiLevel(t *testing.T) {
	f := &fakeLower{delay: 5}
	cfg2 := testConfig()
	cfg2.Name, cfg2.Level = "L2", L2
	c2 := MustNew(cfg2, f)
	cfg1 := testConfig()
	cfg1.SizeBytes = 4 * LineSize // one set x 4 ways at L1D
	c1 := MustNew(cfg1, c2)
	tr := provenance.NewTracker(64)
	c1.SetProvenance(tr)
	c2.SetProvenance(tr)

	pf := &fixedPf{target: 300, level: L1D}
	c1.SetPrefetcher(pf)
	c1.AcceptDemand(&Req{LineAddr: 100, OnDone: func(uint64) {}}, 0)
	tickChain(c1, c2, f, 0, 40)
	pf.target = 0
	if !c1.Contains(300) || !c2.Contains(300) {
		t.Fatal("fill-L1D prefetch should install at both levels")
	}

	// Fill the single L1D set with younger demand lines until the
	// prefetched line is the LRU victim.
	for i := uint64(1); i <= 4; i++ {
		c1.AcceptDemand(&Req{LineAddr: 400 + i, OnDone: func(uint64) {}}, 40)
	}
	tickChain(c1, c2, f, 40, 80)
	if c1.Contains(300) {
		t.Fatal("prefetched line should have been evicted from L1D")
	}
	if c1.Stats.PrefUseless != 1 {
		t.Fatalf("L1D PrefUseless = %d, want 1", c1.Stats.PrefUseless)
	}
	if c2.Stats.PrefUseless != 0 {
		t.Fatalf("L2 PrefUseless = %d, want 0 (its copy is still resident)", c2.Stats.PrefUseless)
	}

	rep := tr.Report()
	reconcile(t, rep, "L1D", &c1.Stats)
	reconcile(t, rep, "L2", &c2.Stats)
	if l1 := rep.Level("L1D"); l1 == nil || l1.Useless != 1 || l1.Issued != 1 {
		t.Fatalf("tracker L1D stats = %+v, want issued=1 useless=1", l1)
	}
	l2 := rep.Level("L2")
	if l2 == nil || l2.Spawned != 1 {
		t.Fatalf("tracker L2 stats = %+v, want spawned=1 (child install)", l2)
	}
	if rep.LiveAtEnd != 1 {
		t.Fatalf("live at end = %d, want 1 (the resident L2 child)", rep.LiveAtEnd)
	}
}
