// Hot-path support structures: the closure-free completion interface, the
// pooled waiter chains that replace per-request callback slices, and the
// open-addressed presence index that replaces the PQ duplicate scan. All
// three exist so the steady-state per-access path allocates nothing.
package cache

// DoneSink receives request completions without a per-request closure: the
// requester registers itself once (an interface header, no allocation) and
// demultiplexes completions by token. Tokens are opaque to the cache — the
// core encodes ROB slots and store record indices, a cache level encodes
// the missing line address. Closure-style completion (Req.OnDone) remains
// supported for tests and ad-hoc callers; the simulation engine uses sinks
// exclusively so issuing a request allocates nothing.
type DoneSink interface {
	// ReqDone delivers the completion for the request identified by token;
	// cycle is when the data is available to the requester.
	ReqDone(token, cycle uint64)
}

// waiterNode is one completion subscriber in an intrusive singly-linked
// chain (load combining on an RQ entry, merged misses on an MSHR). Nodes
// live in the cache's pool and are addressed by index+1 (0 = nil), so a
// zeroed mshr{} or Req{} naturally means "no waiters".
type waiterNode struct {
	sink  DoneSink
	token uint64
	fn    func(cycle uint64)
	next  int32 // index+1 of the next node; 0 terminates
}

// allocWaiter takes a node off the free list (growing the pool outside
// steady state) and returns its index+1 handle.
func (c *Cache) allocWaiter() int32 {
	if c.wfree != 0 {
		id := c.wfree
		c.wfree = c.wpool[id-1].next
		return id
	}
	c.wpool = append(c.wpool, waiterNode{})
	return int32(len(c.wpool))
}

// freeWaiter returns one node to the free list.
func (c *Cache) freeWaiter(id int32) {
	w := &c.wpool[id-1]
	w.sink, w.fn = nil, nil
	w.next = c.wfree
	c.wfree = id
}

// notifyWaiter fires one node's completion.
func (c *Cache) notifyWaiter(id int32, cycle uint64) {
	w := &c.wpool[id-1]
	if w.fn != nil {
		w.fn(cycle)
	} else if w.sink != nil {
		w.sink.ReqDone(w.token, cycle)
	}
}

// chainWaiter appends a callback to the chain rooted at (*head, *tail).
func (c *Cache) chainWaiter(head, tail *int32, sink DoneSink, token uint64, fn func(uint64)) {
	id := c.allocWaiter()
	w := &c.wpool[id-1]
	w.sink, w.token, w.fn, w.next = sink, token, fn, 0
	if *tail != 0 {
		c.wpool[*tail-1].next = id
	} else {
		*head = id
	}
	*tail = id
}

// spliceChain moves the chain (srcHead, srcTail) to the end of the chain
// rooted at (*head, *tail), leaving the source empty.
func (c *Cache) spliceChain(head, tail *int32, srcHead, srcTail int32) {
	if srcHead == 0 {
		return
	}
	if *tail != 0 {
		c.wpool[*tail-1].next = srcHead
	} else {
		*head = srcHead
	}
	*tail = srcTail
}

// fireChain notifies every waiter in FIFO order and frees the nodes.
func (c *Cache) fireChain(head int32, cycle uint64) {
	for id := head; id != 0; {
		next := c.wpool[id-1].next
		c.notifyWaiter(id, cycle)
		c.freeWaiter(id)
		id = next
	}
}

// lineSet is an open-addressed counting set of line addresses — the PQ
// presence index. Linear probing over a power-of-two table sized at
// construction (4x the queue bound, so the load factor stays low);
// deletion uses backward-shift compaction so no tombstones accumulate.
// Duplicate keys are counted rather than stored twice, which keeps the
// orphan-corruption fault plan (many entries for line 0) from overflowing
// the table.
type lineSet struct {
	keys []uint64
	cnt  []uint16
	mask uint64
	used int
}

func (s *lineSet) init(bound int) {
	n := 8
	for n < 4*bound {
		n <<= 1
	}
	s.keys = make([]uint64, n)
	s.cnt = make([]uint16, n)
	s.mask = uint64(n - 1)
	s.used = 0
}

// slot mixes the key (line addresses are strided, not uniform) into a
// table index.
func (s *lineSet) slot(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15
	k ^= k >> 29
	return k & s.mask
}

func (s *lineSet) contains(k uint64) bool {
	for i := s.slot(k); ; i = (i + 1) & s.mask {
		if s.cnt[i] == 0 {
			return false
		}
		if s.keys[i] == k {
			return true
		}
	}
}

func (s *lineSet) add(k uint64) {
	for i := s.slot(k); ; i = (i + 1) & s.mask {
		if s.cnt[i] == 0 {
			s.keys[i] = k
			s.cnt[i] = 1
			s.used++
			if 2*s.used >= len(s.keys) {
				s.grow()
			}
			return
		}
		if s.keys[i] == k {
			s.cnt[i]++
			return
		}
	}
}

func (s *lineSet) remove(k uint64) {
	i := s.slot(k)
	for {
		if s.cnt[i] == 0 {
			return // not present (never happens when add/remove are paired)
		}
		if s.keys[i] == k {
			break
		}
		i = (i + 1) & s.mask
	}
	if s.cnt[i] > 1 {
		s.cnt[i]--
		return
	}
	// Backward-shift deletion: pull displaced entries over the hole so
	// probe chains stay contiguous.
	s.cnt[i] = 0
	s.used--
	j := i
	for {
		j = (j + 1) & s.mask
		if s.cnt[j] == 0 {
			return
		}
		home := s.slot(s.keys[j])
		if (j-home)&s.mask >= (j-i)&s.mask {
			s.keys[i], s.cnt[i] = s.keys[j], s.cnt[j]
			s.cnt[j] = 0
			i = j
		}
	}
}

// grow doubles the table (reached only by deliberate overfill, e.g. the
// pq-orphan fault plan pushing far past the configured bound).
func (s *lineSet) grow() {
	ok, oc := s.keys, s.cnt
	n := 2 * len(ok)
	s.keys = make([]uint64, n)
	s.cnt = make([]uint16, n)
	s.mask = uint64(n - 1)
	s.used = 0
	for i := range ok {
		for r := uint16(0); r < oc[i]; r++ {
			s.add(ok[i])
		}
	}
}
