package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestScanDirTornTailMix: a daemon data directory holding a healthy
// journal, a torn-tail journal, a header-damaged file, and assorted
// non-journal files must scan into per-entry outcomes — healthy campaigns
// load, the torn tail is repaired at the cost of one record, the damaged
// header is reported without failing the scan, and everything else is
// ignored.
func TestScanDirTornTailMix(t *testing.T) {
	dir := t.TempDir()

	// alpha: clean journal with two entries.
	alpha, err := Create(filepath.Join(dir, "alpha.journal"), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := alpha.Append("w=a|l1=berti", fakeResult(1.5)); err != nil {
		t.Fatal(err)
	}
	if err := alpha.Append("w=b|l1=ipcp", fakeResult(0.5)); err != nil {
		t.Fatal(err)
	}

	// beta: two entries, then the tail torn mid-record (a crash mid-append).
	betaPath := filepath.Join(dir, "beta.journal")
	beta, err := Create(betaPath, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := beta.Append("w=a|l1=berti", fakeResult(2)); err != nil {
		t.Fatal(err)
	}
	if err := beta.Append("w=c|l1=mlop", fakeResult(3)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(betaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(betaPath, data[:len(data)-15], 0o644); err != nil {
		t.Fatal(err)
	}

	// gamma: not a journal at all (damaged header is unrecoverable).
	if err := os.WriteFile(filepath.Join(dir, "gamma.journal"), []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Ignored: manifests, temp files, directories.
	if err := os.WriteFile(filepath.Join(dir, "alpha.manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "alpha.journal.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "delta.journal"), 0o755); err != nil {
		t.Fatal(err)
	}

	entries, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("scan found %d journals, want 3: %+v", len(entries), entries)
	}
	byID := map[string]ScanEntry{}
	for _, e := range entries {
		byID[e.ID] = e
	}
	if entries[0].ID != "alpha" || entries[1].ID != "beta" || entries[2].ID != "gamma" {
		t.Fatalf("scan order not sorted by ID: %v %v %v", entries[0].ID, entries[1].ID, entries[2].ID)
	}

	a := byID["alpha"]
	if a.Err != nil || a.Journal == nil {
		t.Fatalf("alpha must load cleanly, got err %v", a.Err)
	}
	if a.Journal.Len() != 2 || a.Journal.Dropped() != 0 {
		t.Fatalf("alpha = %d entries / %d dropped, want 2/0", a.Journal.Len(), a.Journal.Dropped())
	}

	b := byID["beta"]
	if b.Err != nil || b.Journal == nil {
		t.Fatalf("beta (torn tail) must load with repair, got err %v", b.Err)
	}
	if b.Journal.Len() != 1 || b.Journal.Dropped() != 1 {
		t.Fatalf("beta = %d entries / %d dropped, want 1/1 (torn record truncated)", b.Journal.Len(), b.Journal.Dropped())
	}
	// The repair must be durable: a direct reopen sees a clean journal.
	if re, err := Open(betaPath); err != nil || re.Dropped() != 0 || re.Len() != 1 {
		t.Fatalf("beta not repaired on disk: err=%v", err)
	}

	g := byID["gamma"]
	if g.Journal != nil {
		t.Fatal("gamma must not load")
	}
	var he *HeaderError
	if !errors.As(g.Err, &he) {
		t.Fatalf("gamma must fail with *HeaderError, got %v", g.Err)
	}
}

// TestScanDirMissingAndEmpty: a missing directory is an empty scan (a
// fresh daemon), as is a directory with no journals.
func TestScanDirMissingAndEmpty(t *testing.T) {
	if entries, err := ScanDir(filepath.Join(t.TempDir(), "never-created")); err != nil || len(entries) != 0 {
		t.Fatalf("missing dir: got (%v, %v), want empty scan", entries, err)
	}
	if entries, err := ScanDir(t.TempDir()); err != nil || len(entries) != 0 {
		t.Fatalf("empty dir: got (%v, %v), want empty scan", entries, err)
	}
}
