package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

// testScale keeps journal tests fast; real simulations are not needed to
// exercise the persistence layer.
var testScale = harness.Scale{Name: "journal-test", MemRecords: 1000, WarmupInstr: 100, SimInstr: 200, Mixes: 1}

// fakeResult builds a distinguishable result without running a simulation.
func fakeResult(ipc float64) *sim.Result {
	cfg := sim.DefaultConfig()
	return &sim.Result{
		Config: cfg,
		Cores:  []sim.CoreResult{{IPC: ipc}},
		Cycles: uint64(ipc * 1000),
	}
}

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.journal")
}

// TestJournalRoundTrip: entries appended to a journal must come back
// identical (keys, order, and full result payloads) after a reopen.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, testScale)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Key: "w=a|l1=berti", Result: fakeResult(1.25)},
		{Key: "w=b|l1=ipcp", Result: fakeResult(0.75)},
		{Key: "w=c|l1=", Result: fakeResult(2)},
	}
	for _, e := range want {
		if err := j.Append(e.Key, e.Result); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate keys are skipped, not re-journaled.
	if err := j.Append(want[0].Key, fakeResult(9)); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Scale() != testScale {
		t.Fatalf("scale round trip: got %+v want %+v", re.Scale(), testScale)
	}
	got := re.Entries()
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("entry %d key %q, want %q", i, got[i].Key, want[i].Key)
		}
		if !reflect.DeepEqual(got[i].Result.Cores, want[i].Result.Cores) {
			t.Fatalf("entry %d result changed across the round trip", i)
		}
	}
	if re.Dropped() != 0 {
		t.Fatalf("clean journal reported %d dropped records", re.Dropped())
	}
}

// TestJournalCorruptTailTruncated: damage to the last record must cost
// exactly that record — the prefix survives and the file is repaired.
func TestJournalCorruptTailTruncated(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := j.Append(k, fakeResult(1)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		// A torn write: the final record is half-missing.
		"torn-tail": func(b []byte) []byte { return b[:len(b)-20] },
		// A flipped bit inside the last record's payload.
		"bit-flip": func(b []byte) []byte {
			mut := append([]byte(nil), b...)
			mut[len(mut)-10] ^= 0x40
			return mut
		},
		// Garbage appended after the valid records.
		"trailing-garbage": func(b []byte) []byte { return append(append([]byte(nil), b...), "deadbeef not-json\n"...) },
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			re, err := Open(path)
			if err != nil {
				t.Fatalf("tail damage must not fail the load: %v", err)
			}
			if re.Dropped() == 0 {
				t.Fatal("damaged record must be counted as dropped")
			}
			got := re.Entries()
			if len(got) < 2 || got[0].Key != "k1" || got[1].Key != "k2" {
				t.Fatalf("valid prefix must survive, got %d entries", len(got))
			}
			// The load repairs the file: a second open is clean.
			re2, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if re2.Dropped() != 0 || len(re2.Entries()) != len(got) {
				t.Fatalf("repair must persist: dropped=%d entries=%d want 0/%d",
					re2.Dropped(), len(re2.Entries()), len(got))
			}
			// And the journal stays appendable after repair.
			if err := re2.Append("k-after-repair", fakeResult(3)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestJournalMidCorruptionDropsSuffix: damage in the middle invalidates
// everything after it (entries past the tear cannot be trusted to be a
// consistent append sequence).
func TestJournalMidCorruptionDropsSuffix(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := j.Append(k, fakeResult(1)); err != nil {
			t.Fatal(err)
		}
	}
	data, _ := os.ReadFile(path)
	lines := 0
	for i, b := range data {
		if b != '\n' {
			continue
		}
		lines++
		if lines == 2 { // flip a bit inside record k2 (line 3 = k2; line 2 = k1)
			data[i+12] ^= 1
			break
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := re.Entries()
	if len(got) != 1 || got[0].Key != "k1" {
		t.Fatalf("mid-journal damage must keep only the prefix, got %+v", got)
	}
}

// TestJournalHeaderErrors: a damaged or foreign first record is fatal (the
// entries cannot be validated against an untrusted header).
func TestJournalHeaderErrors(t *testing.T) {
	path := journalPath(t)
	for name, content := range map[string]string{
		"empty":       "",
		"not-journal": "some random file contents\n",
		"bad-magic":   string(mustLine(t, header{Magic: "other", Version: Version, Scale: testScale})),
		"bad-version": string(mustLine(t, header{Magic: Magic, Version: 99, Scale: testScale})),
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(path)
			var he *HeaderError
			if !errors.As(err, &he) {
				t.Fatalf("expected *HeaderError, got %v", err)
			}
		})
	}
}

// TestOpenOrCreate: missing file creates, matching scale resumes, and a
// scale mismatch is the typed error resume must refuse on.
func TestOpenOrCreate(t *testing.T) {
	path := journalPath(t)
	j, err := OpenOrCreate(path, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("k1", fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	re, err := OpenOrCreate(path, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("resume lost entries: %d", re.Len())
	}
	other := testScale
	other.MemRecords *= 2
	_, err = OpenOrCreate(path, other)
	var sm *ScaleMismatchError
	if !errors.As(err, &sm) {
		t.Fatalf("expected *ScaleMismatchError, got %v", err)
	}
}

// TestJournalSeedsHarness: seeded results must be memo hits — the harness
// returns them without executing, and OnResult must not re-fire for them.
func TestJournalSeedsHarness(t *testing.T) {
	path := journalPath(t)
	j, err := Create(path, testScale)
	if err != nil {
		t.Fatal(err)
	}
	spec := harness.RunSpec{Workload: "not-a-real-workload", L1DPf: "berti"}
	want := fakeResult(1.5)
	if err := j.Append(spec.Key(), want); err != nil {
		t.Fatal(err)
	}

	h := harness.New(testScale)
	j.Attach(h)
	if n := j.Seed(h); n != 1 {
		t.Fatalf("Seed reported %d, want 1", n)
	}
	// The workload name does not exist, so only a memo hit can succeed.
	got, err := h.Run(spec)
	if err != nil {
		t.Fatalf("seeded spec must be a memo hit: %v", err)
	}
	if got.IPC() != want.IPC() {
		t.Fatalf("seeded result IPC %v, want %v", got.IPC(), want.IPC())
	}
	if j.Len() != 1 {
		t.Fatalf("memo hits must not re-journal: %d entries", j.Len())
	}
}

// mustLine encodes a payload as a valid CRC-framed journal line.
func mustLine(t *testing.T, payload interface{}) []byte {
	t.Helper()
	line, err := encodeLine(payload)
	if err != nil {
		t.Fatal(err)
	}
	return line
}
