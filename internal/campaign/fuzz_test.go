package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/bertisim/berti/internal/harness"
)

// FuzzJournal throws arbitrary bytes at the journal loader: valid
// journals, truncated tails, bit-flipped CRCs, and raw garbage. The loader
// must never panic, and whatever it accepts must survive a
// repair-then-reload round trip unchanged (truncation recovery is
// idempotent).
func FuzzJournal(f *testing.F) {
	syncWrites = false // durability is irrelevant for throwaway fuzz journals
	f.Cleanup(func() { syncWrites = true })
	scale := harness.Scale{Name: "fuzz", MemRecords: 10, WarmupInstr: 1, SimInstr: 2}
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.journal")
	j, err := Create(seedPath, scale)
	if err != nil {
		f.Fatal(err)
	}
	for _, k := range []string{"w=a|l1=berti", "w=b|l1=ipcp"} {
		if err := j.Append(k, fakeResult(1.5)); err != nil {
			f.Fatal(err)
		}
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)                 // pristine journal
	f.Add(valid[:len(valid)-15]) // torn tail
	f.Add(valid[:len(valid)/2])  // torn mid-record
	bitFlip := append([]byte(nil), valid...)
	bitFlip[len(bitFlip)-20] ^= 0x10 // CRC mismatch in the last record
	f.Add(bitFlip)
	headFlip := append([]byte(nil), valid...)
	headFlip[2] ^= 0x10 // damaged header CRC
	f.Add(headFlip)
	f.Add([]byte{})
	f.Add([]byte("deadbeef {\"key\":\"x\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		j, err := Open(path)
		if err != nil {
			return // rejected cleanly (header damage, I/O) — fine
		}
		first := j.Entries()
		// Recovery must be idempotent: the repaired file reloads bit-clean.
		re, err := Open(path)
		if err != nil {
			t.Fatalf("repaired journal failed to reload: %v", err)
		}
		if re.Dropped() != 0 {
			t.Fatalf("repaired journal still drops %d records", re.Dropped())
		}
		second := re.Entries()
		if len(first) != len(second) {
			t.Fatalf("entries changed across repair: %d != %d", len(first), len(second))
		}
		for i := range first {
			if first[i].Key != second[i].Key {
				t.Fatalf("entry %d key changed: %q != %q", i, first[i].Key, second[i].Key)
			}
		}
		// And the survivor must accept further appends.
		if err := re.Append("fuzz-append", fakeResult(2)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
