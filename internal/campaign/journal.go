// Package campaign makes long multi-experiment evaluations crash-safe. A
// Journal is an append-only, CRC-protected JSONL file that persists each
// completed run's result (keyed by the harness memo key) the moment it
// finishes, written atomically so a crash, OOM-kill, or Ctrl-C never
// leaves a torn file. A re-invoked campaign loads the journal, pre-seeds
// the harness memo cache, and re-executes only the unfinished runs; a
// corrupt tail record is truncated and re-run rather than failing the
// resume.
//
// On-disk format (see DESIGN.md §12): one record per line, each line
//
//	<crc32c of payload, 8 lowercase hex> <payload JSON>\n
//
// where the first payload is a header naming the format and the campaign
// scale, and every following payload is {"key": ..., "result": ...}. The
// CRC (Castagnoli, matching the tracestore chunks) covers exactly the
// payload bytes, so any bit flip, torn write, or editor mangling is
// detected at load; validation stops at the first damaged record and the
// file is rewritten to the surviving prefix.
package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

// Magic identifies a journal header payload.
const Magic = "berti-campaign"

// Version is the journal format version this package writes.
const Version = 1

// crcTable is the Castagnoli polynomial, shared with the tracestore.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// syncWrites fsyncs every journal write before the rename. Always on in
// production; the fuzz harness disables it (thousands of throwaway
// journals per second do not need durability).
var syncWrites = true

// header is the first record of every journal.
type header struct {
	Magic   string        `json:"magic"`
	Version int           `json:"version"`
	Scale   harness.Scale `json:"scale"`
}

// Entry is one completed run: the harness memo key and its result.
type Entry struct {
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

// HeaderError reports a journal whose first record is missing, damaged, or
// not a journal header at all. Unlike tail damage this is not recoverable:
// without a trusted header the entries cannot be validated against the
// campaign's scale, and the file may simply not be a journal.
type HeaderError struct {
	// Path is the offending file.
	Path string
	// Reason describes the failure.
	Reason string
}

// Error implements error.
func (e *HeaderError) Error() string {
	return fmt.Sprintf("campaign: %s: invalid journal header: %s", e.Path, e.Reason)
}

// ScaleMismatchError reports a resume attempt against a journal written at
// a different scale. Seeding those results would silently mix
// methodologies (the memo key does not encode the scale), so the caller
// must either rerun at the journal's scale or start a fresh journal.
type ScaleMismatchError struct {
	// JournalScale is what the journal was recorded at.
	JournalScale harness.Scale
	// WantScale is the scale of the resuming campaign.
	WantScale harness.Scale
}

// Error implements error.
func (e *ScaleMismatchError) Error() string {
	return fmt.Sprintf("campaign: journal was recorded at scale %q (%d records, %d warmup, %d measured); resuming at %q (%d, %d, %d) would mix methodologies",
		e.JournalScale.Name, e.JournalScale.MemRecords, e.JournalScale.WarmupInstr, e.JournalScale.SimInstr,
		e.WantScale.Name, e.WantScale.MemRecords, e.WantScale.WarmupInstr, e.WantScale.SimInstr)
}

// Journal is the crash-safe campaign log. All methods are safe for
// concurrent use (harness workers append from multiple goroutines).
type Journal struct {
	mu      sync.Mutex
	path    string
	scale   harness.Scale
	buf     []byte // the full serialized journal (header + valid records)
	entries []Entry
	byKey   map[string]int // key -> index in entries
	dropped int            // records lost to tail truncation at load
	err     error          // first persistent write failure
}

// Create starts a fresh journal at path, truncating any existing file, and
// persists the header record immediately.
func Create(path string, scale harness.Scale) (*Journal, error) {
	j := &Journal{path: path, scale: scale, byKey: map[string]int{}}
	line, err := encodeLine(header{Magic: Magic, Version: Version, Scale: scale})
	if err != nil {
		return nil, err
	}
	j.buf = line
	if err := j.flushLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Open loads an existing journal, validating every record's CRC and shape.
// The first damaged record and everything after it are dropped and the
// file is rewritten to the valid prefix (atomically), so a torn tail from
// a crash costs at most the interrupted run. A missing file is an
// *os.PathError; a damaged first record is a *HeaderError.
func Open(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, byKey: map[string]int{}}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	first := true
	var valid []byte
	for sc.Scan() {
		line := sc.Bytes()
		payload, ok := checkLine(line)
		if first {
			var h header
			if !ok || json.Unmarshal(payload, &h) != nil {
				return nil, &HeaderError{Path: path, Reason: "first record is missing or damaged"}
			}
			if h.Magic != Magic {
				return nil, &HeaderError{Path: path, Reason: fmt.Sprintf("magic %q, want %q", h.Magic, Magic)}
			}
			if h.Version != Version {
				return nil, &HeaderError{Path: path, Reason: fmt.Sprintf("version %d, want %d", h.Version, Version)}
			}
			j.scale = h.Scale
			first = false
			valid = append(valid, line...)
			valid = append(valid, '\n')
			continue
		}
		var e Entry
		if !ok || json.Unmarshal(payload, &e) != nil || e.Key == "" || e.Result == nil {
			// Tail damage: stop here, drop this and everything after.
			j.dropped++
			break
		}
		j.addEntry(e)
		valid = append(valid, line...)
		valid = append(valid, '\n')
	}
	if first {
		return nil, &HeaderError{Path: path, Reason: "empty file"}
	}
	j.buf = valid
	if len(valid) != len(data) {
		// Truncate the damaged tail on disk so the next load is clean.
		if err := j.flushLocked(); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// OpenOrCreate resumes an existing journal or starts a fresh one when path
// does not exist. An existing journal recorded at a different scale yields
// a *ScaleMismatchError; resume and Seed would otherwise silently mix
// results from different methodologies.
func OpenOrCreate(path string, scale harness.Scale) (*Journal, error) {
	j, err := Open(path)
	if os.IsNotExist(err) {
		return Create(path, scale)
	}
	if err != nil {
		return nil, err
	}
	if j.scale != scale {
		return nil, &ScaleMismatchError{JournalScale: j.scale, WantScale: scale}
	}
	return j, nil
}

// addEntry records e in memory, last-writer-wins per key.
func (j *Journal) addEntry(e Entry) {
	if i, ok := j.byKey[e.Key]; ok {
		j.entries[i] = e
		return
	}
	j.byKey[e.Key] = len(j.entries)
	j.entries = append(j.entries, e)
}

// Append persists one completed run. Already-journaled keys are skipped
// (a resumed campaign may re-complete a memoized run). The journal is
// rewritten to a temp file and renamed over the old one, so the on-disk
// file is always a complete, valid journal — a crash mid-Append loses only
// the entry being written.
func (j *Journal) Append(key string, r *sim.Result) error {
	if r == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.byKey[key]; ok {
		return nil
	}
	line, err := encodeLine(Entry{Key: key, Result: r})
	if err != nil {
		j.setErr(err)
		return err
	}
	j.addEntry(Entry{Key: key, Result: r})
	j.buf = append(j.buf, line...)
	if err := j.flushLocked(); err != nil {
		j.setErr(err)
		return err
	}
	return nil
}

// flushLocked writes the serialized journal atomically: temp file in the
// same directory, fsync, rename. Callers hold j.mu (or own j exclusively).
func (j *Journal) flushLocked() error {
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(j.buf); err == nil && syncWrites {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, j.path)
}

// setErr keeps the first persistent write failure for Err.
func (j *Journal) setErr(err error) {
	if j.err == nil {
		j.err = err
	}
}

// Err returns the first write failure, if any — the campaign driver checks
// it once at the end instead of every Append having to abort the run.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Scale returns the scale the journal was recorded at.
func (j *Journal) Scale() harness.Scale { return j.scale }

// Len returns the number of journaled runs.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Dropped reports how many damaged tail records the load truncated.
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Entries returns a copy of the journaled runs in append order.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Entry(nil), j.entries...)
}

// Seed pre-loads h's memo cache with every journaled result and returns
// how many runs the resumed campaign will skip.
func (j *Journal) Seed(h *harness.Harness) int {
	j.mu.Lock()
	entries := append([]Entry(nil), j.entries...)
	j.mu.Unlock()
	for _, e := range entries {
		h.SeedResult(e.Key, e.Result)
	}
	return len(entries)
}

// Attach subscribes the journal to h's freshly-completed runs: every
// memoized success is appended (and flushed to disk) as it finishes, from
// whichever worker goroutine completed it.
func (j *Journal) Attach(h *harness.Harness) {
	h.OnResult = func(key string, _ harness.RunSpec, r *sim.Result) {
		// Append's error is retained in j.Err; one bad disk must not
		// abort the runs themselves.
		_ = j.Append(key, r)
	}
}

// encodeLine serializes one payload as a CRC-protected journal line.
func encodeLine(payload interface{}) ([]byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(body)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.Checksum(body, crcTable))...)
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// checkLine validates one journal line's shape and CRC, returning the
// payload bytes when intact.
func checkLine(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, false
	}
	return payload, true
}
