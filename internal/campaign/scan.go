package campaign

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// JournalExt is the file extension every per-campaign journal uses; ScanDir
// recognizes journals by it.
const JournalExt = ".journal"

// ScanEntry is one journal file found by ScanDir. Exactly one of Journal
// and Err is set: a loadable journal (tail damage already repaired) or the
// reason the file could not be trusted (*HeaderError for non-journals and
// damaged headers, an *os.PathError for I/O failures).
type ScanEntry struct {
	// ID is the campaign identifier: the file name without JournalExt.
	ID string
	// Path is the journal's full path.
	Path string
	// Journal is the loaded journal, nil when Err is set.
	Journal *Journal
	// Err is the load failure, nil when Journal is set.
	Err error
}

// ScanDir enumerates the per-campaign journals of a daemon data directory:
// every "*.journal" file, sorted by ID, each opened with the same
// validate-and-repair load a single-journal resume uses (a torn tail costs
// only the interrupted record, never the campaign). Files that fail to
// load are reported per entry rather than failing the scan — a restarting
// daemon resumes every healthy campaign and surfaces the damaged ones. A
// missing directory yields an empty scan, not an error (a fresh daemon has
// nothing to recover).
func ScanDir(dir string) ([]ScanEntry, error) {
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []ScanEntry
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), JournalExt) {
			continue
		}
		e := ScanEntry{
			ID:   strings.TrimSuffix(de.Name(), JournalExt),
			Path: filepath.Join(dir, de.Name()),
		}
		e.Journal, e.Err = Open(e.Path)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
