// Package stats collects the counters the evaluation reports: per-level
// demand/prefetch activity, MPKI, prefetch accuracy and timeliness, and
// inter-level traffic.
package stats

import "fmt"

// CacheStats holds the counters tracked for one cache level.
type CacheStats struct {
	Name string

	// Demand activity.
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64

	// Prefetch activity.
	PrefIssued   uint64 // prefetch requests accepted into the PQ
	PrefDropped  uint64 // dropped: PQ full, translation miss, or duplicate
	PrefFills    uint64 // lines installed into this level by prefetch
	PrefUseful   uint64 // prefetched lines demanded after arrival (timely)
	PrefLate     uint64 // demand merged into an in-flight prefetch MSHR
	PrefUseless  uint64 // prefetched lines evicted without a demand touch
	PrefCrossPg  uint64 // prefetches whose target crossed the triggering page
	PrefTagProbe uint64 // tag lookups performed on behalf of prefetches

	// Writebacks received from the level above / sent below.
	WritebacksIn  uint64
	WritebacksOut uint64

	// Fills of any kind (used by the artifact accuracy formula).
	TotalFills uint64

	// MSHR behaviour.
	MSHRMerges     uint64
	MSHRFullStalls uint64

	// Latency accounting (demand-miss fill latency in cycles).
	FillLatencySum   uint64
	FillLatencyCount uint64
	FillLatencyMin   uint64
	FillLatencyMax   uint64
	// latencySeen distinguishes "no samples yet" from a genuine minimum of
	// zero cycles (0 is a valid measured latency, not a sentinel).
	latencySeen bool
}

// RecordFillLatency folds one measured fill latency into the distribution.
func (s *CacheStats) RecordFillLatency(lat uint64) {
	s.FillLatencySum += lat
	s.FillLatencyCount++
	if !s.latencySeen || lat < s.FillLatencyMin {
		s.FillLatencyMin = lat
		s.latencySeen = true
	}
	if lat > s.FillLatencyMax {
		s.FillLatencyMax = lat
	}
}

// AvgFillLatency returns the mean demand fill latency in cycles.
func (s *CacheStats) AvgFillLatency() float64 {
	if s.FillLatencyCount == 0 {
		return 0
	}
	return float64(s.FillLatencySum) / float64(s.FillLatencyCount)
}

// MPKI returns demand misses per kilo-instruction.
func (s *CacheStats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.DemandMisses) / float64(instructions) * 1000
}

// Accuracy returns the artifact's L1D accuracy formula:
// (late + timely useful prefetches) / prefetch fills. It measures the
// fraction of prefetch-brought lines that were not useless traffic.
func (s *CacheStats) Accuracy() float64 {
	if s.PrefFills == 0 {
		return 0
	}
	acc := float64(s.PrefUseful+s.PrefLate) / float64(s.PrefFills)
	if acc > 1 {
		acc = 1
	}
	return acc
}

// TimelyFraction returns the fraction of useful prefetches that arrived
// before the demand access (the paper's gray vs. black bars in Fig. 10).
func (s *CacheStats) TimelyFraction() float64 {
	useful := s.PrefUseful + s.PrefLate
	if useful == 0 {
		return 0
	}
	return float64(s.PrefUseful) / float64(useful)
}

func (s *CacheStats) String() string {
	return fmt.Sprintf("%s: acc=%d hit=%d miss=%d pfIssued=%d pfFill=%d pfUseful=%d pfLate=%d",
		s.Name, s.DemandAccesses, s.DemandHits, s.DemandMisses,
		s.PrefIssued, s.PrefFills, s.PrefUseful, s.PrefLate)
}

// DRAMStats counts DRAM activity.
type DRAMStats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	RQFullStalls uint64
	WQFullStalls uint64
	BusyCycles   uint64
}

// TLBStats counts translation activity.
type TLBStats struct {
	DTLBAccesses uint64
	DTLBMisses   uint64
	STLBAccesses uint64
	STLBMisses   uint64
	PageWalks    uint64
	PrefDropTLB  uint64 // prefetches dropped on STLB miss
}

// CoreStats counts core-side progress.
type CoreStats struct {
	Instructions  uint64
	Cycles        uint64
	Loads         uint64
	Stores        uint64
	ROBFullStalls uint64
}

// IPC returns instructions per cycle.
func (c *CoreStats) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// Traffic counts line transfers between adjacent levels (demand + prefetch +
// writeback), the quantity Fig. 14 plots.
type Traffic struct {
	L1DToL2   uint64 // requests sent from L1D to L2 (misses + prefetches)
	L2ToLLC   uint64
	LLCToDRAM uint64
	// Writeback traffic travelling downward.
	WBToL2   uint64
	WBToLLC  uint64
	WBToDRAM uint64
}

// Total returns total transfers at each boundary including writebacks.
func (t *Traffic) Total() (l2, llc, dram uint64) {
	return t.L1DToL2 + t.WBToL2, t.L2ToLLC + t.WBToLLC, t.LLCToDRAM + t.WBToDRAM
}
