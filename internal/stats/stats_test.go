package stats

import "testing"

func TestAccuracyFormula(t *testing.T) {
	s := CacheStats{PrefFills: 100, PrefUseful: 70, PrefLate: 20}
	if got := s.Accuracy(); got != 0.9 {
		t.Fatalf("accuracy = %f, want 0.9", got)
	}
	empty := CacheStats{}
	if empty.Accuracy() != 0 {
		t.Fatal("accuracy of no fills must be 0")
	}
	capped := CacheStats{PrefFills: 10, PrefUseful: 20}
	if capped.Accuracy() != 1 {
		t.Fatal("accuracy must cap at 1")
	}
}

func TestTimelyFraction(t *testing.T) {
	s := CacheStats{PrefUseful: 30, PrefLate: 10}
	if got := s.TimelyFraction(); got != 0.75 {
		t.Fatalf("timely = %f", got)
	}
	if (&CacheStats{}).TimelyFraction() != 0 {
		t.Fatal("no useful prefetches -> 0")
	}
}

func TestMPKI(t *testing.T) {
	s := CacheStats{DemandMisses: 50}
	if got := s.MPKI(1000); got != 50 {
		t.Fatalf("mpki = %f", got)
	}
	if s.MPKI(0) != 0 {
		t.Fatal("zero instructions must not divide")
	}
}

func TestFillLatencyDistribution(t *testing.T) {
	var s CacheStats
	for _, l := range []uint64{100, 200, 300} {
		s.RecordFillLatency(l)
	}
	if s.FillLatencyMin != 100 || s.FillLatencyMax != 300 {
		t.Fatalf("min/max wrong: %d/%d", s.FillLatencyMin, s.FillLatencyMax)
	}
	if s.AvgFillLatency() != 200 {
		t.Fatalf("avg = %f", s.AvgFillLatency())
	}
}

func TestFillLatencyZeroMin(t *testing.T) {
	// A genuine 0-cycle latency must become the minimum, and a later,
	// larger sample must not displace it (0 is not a "no samples" marker).
	var s CacheStats
	s.RecordFillLatency(0)
	s.RecordFillLatency(50)
	if s.FillLatencyMin != 0 {
		t.Fatalf("min = %d, want 0", s.FillLatencyMin)
	}
	if s.FillLatencyMax != 50 {
		t.Fatalf("max = %d, want 50", s.FillLatencyMax)
	}
	// Order-independence: large first, then zero.
	var s2 CacheStats
	s2.RecordFillLatency(50)
	s2.RecordFillLatency(0)
	if s2.FillLatencyMin != 0 {
		t.Fatalf("min = %d, want 0", s2.FillLatencyMin)
	}
}

func TestTrafficTotal(t *testing.T) {
	tr := Traffic{L1DToL2: 10, WBToL2: 5, L2ToLLC: 8, WBToLLC: 2, LLCToDRAM: 6, WBToDRAM: 1}
	l2, llc, dram := tr.Total()
	if l2 != 15 || llc != 10 || dram != 7 {
		t.Fatalf("totals: %d %d %d", l2, llc, dram)
	}
}

func TestCoreIPC(t *testing.T) {
	c := CoreStats{Instructions: 400, Cycles: 200}
	if c.IPC() != 2 {
		t.Fatalf("ipc = %f", c.IPC())
	}
	if (&CoreStats{}).IPC() != 0 {
		t.Fatal("zero cycles must not divide")
	}
}
