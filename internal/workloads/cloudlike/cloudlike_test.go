package cloudlike

import (
	"testing"

	"github.com/bertisim/berti/internal/workloads"
)

func TestLowUniqueLineRatio(t *testing.T) {
	// Cloud traces are dominated by a hot working set: the ratio of
	// distinct lines to accesses must be far lower than in the MemInt
	// suites.
	for _, name := range []string{"cloud9_like", "nutch_like", "cassandra_like"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		tr := w.Gen(workloads.GenConfig{MemRecords: 30000, Seed: 9})
		lines := map[uint64]bool{}
		for _, r := range tr.Records {
			lines[r.Addr>>6] = true
		}
		ratio := float64(len(lines)) / float64(tr.Len())
		if ratio > 0.4 {
			t.Fatalf("%s touches too many distinct lines: %.2f", name, ratio)
		}
	}
}

func TestCassandraWalksRepeat(t *testing.T) {
	w, _ := workloads.ByName("cassandra_like")
	tr := w.Gen(workloads.GenConfig{MemRecords: 120000, Seed: 9})
	walkIP := workloads.IP(301)
	// Count repeated consecutive pairs among walk accesses: replayed
	// sequences produce recurring (a,b) transitions.
	type pair struct{ a, b uint64 }
	pairs := map[pair]int{}
	var prev uint64
	havePrev := false
	for _, r := range tr.Records {
		if r.IP != walkIP {
			havePrev = false
			continue
		}
		if havePrev {
			pairs[pair{prev, r.Addr}]++
		}
		prev = r.Addr
		havePrev = true
	}
	repeated := 0
	for _, n := range pairs {
		if n >= 2 {
			repeated++
		}
	}
	if repeated < 100 {
		t.Fatalf("cassandra walks should repeat (temporal correlation), repeated pairs = %d", repeated)
	}
}

func TestClassificationHasStridedScan(t *testing.T) {
	w, _ := workloads.ByName("classification_like")
	tr := w.Gen(workloads.GenConfig{MemRecords: 30000, Seed: 9})
	scanIP := workloads.IP(311)
	var prev uint64
	havePrev := false
	strided := 0
	total := 0
	for _, r := range tr.Records {
		if r.IP != scanIP {
			havePrev = false
			continue
		}
		if havePrev {
			total++
			if d := r.Addr - prev; d == 64 || d == 128 {
				strided++
			}
		}
		prev = r.Addr
		havePrev = true
	}
	if total == 0 || float64(strided)/float64(total) < 0.8 {
		t.Fatalf("classification scan should use +1/+1/+2 line deltas: %d/%d", strided, total)
	}
}
