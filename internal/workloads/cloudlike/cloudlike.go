// Package cloudlike generates CloudSuite-like traces. The paper's
// CloudSuite findings (Section IV-G/H) rest on two properties this package
// reproduces: (i) low data MPKI — most of the footprint fits on chip, so
// even an ideal L1D prefetcher has little headroom — and (ii) temporal
// correlation — repeated pointer sequences that only a temporal prefetcher
// (MISB) can cover, not delta/spatial ones.
package cloudlike

import (
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
)

func init() {
	regs := []workloads.Workload{
		{Name: "cassandra_like", Suite: "cloud", Gen: genCassandra},
		{Name: "classification_like", Suite: "cloud", Gen: genClassification},
		{Name: "cloud9_like", Suite: "cloud", Gen: genCloud9},
		{Name: "nutch_like", Suite: "cloud", Gen: genNutch},
	}
	for _, w := range regs {
		workloads.Register(w)
	}
}

const lineBytes = 64

// genCassandra models cassandra: a hot on-chip working set punctuated by
// *recurring* pointer-walk sequences through cold SSTable-like structures.
// The same walk sequences repeat, so address correlation (MISB) covers
// them while delta prefetchers see noise.
func genCassandra(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	hot := workloads.Base(1)
	cold := workloads.Base(2)
	// Build a fixed set of random walk sequences (temporal streams)
	// through a large cold SSTable region: spatially random, temporally
	// repeating — coverable only by address correlation (MISB).
	// 768 x 16 lines = 786 KB of walk footprint: larger than the L2 (so
	// repeats miss on chip) but well inside the LLC. Walk sequences
	// repeat about 3x within a full-scale measurement window; at the
	// quick scale there are not enough repeats for temporal prefetching
	// to show (see EXPERIMENTS.md on Fig. 19 scaling).
	const nSeqs = 768
	const seqLen = 16
	seqs := make([][]uint64, nSeqs)
	for i := range seqs {
		seqs[i] = make([]uint64, seqLen)
		for j := range seqs[i] {
			seqs[i][j] = cold + uint64(e.Rng.Intn(1<<21))*lineBytes
		}
	}
	for !e.Full() {
		// Mostly hot hits (low data MPKI; CloudSuite is front-end bound).
		for k := 0; k < 80 && !e.Full(); k++ {
			addr := hot + uint64(e.Rng.Intn(224))*lineBytes
			e.Load(workloads.IP(300), addr, 6+e.Rng.Intn(5), 0)
		}
		// ...then replay one of the recorded pointer walks (one in four
		// walks is fresh, uncorrelated work).
		if e.Rng.Intn(4) == 0 {
			for j := 0; j < seqLen && !e.Full(); j++ {
				addr := cold + uint64(e.Rng.Intn(1<<21))*lineBytes
				e.Load(workloads.IP(301), addr, 4+e.Rng.Intn(3), 1)
			}
			continue
		}
		seq := seqs[e.Rng.Intn(nSeqs)]
		for _, addr := range seq {
			if e.Full() {
				break
			}
			e.Load(workloads.IP(301), addr, 4+e.Rng.Intn(3), 1)
		}
	}
	return e.T
}

// genClassification models classification: bursts of short, accurate
// per-IP strided scans over large feature vectors — the one CloudSuite
// trace where an accurate delta prefetcher (Berti) wins while inaccurate
// ones pollute the small useful working set.
func genClassification(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	features := workloads.Base(1)
	model := workloads.Base(2)
	var cursor uint64
	deltas := []uint64{1, 1, 2} // dense enough to bait stream sprayers
	di := 0
	for !e.Full() {
		// Hot model state: hits; this small working set is what an
		// inaccurate prefetcher pollutes.
		for k := 0; k < 28 && !e.Full(); k++ {
			addr := model + uint64(e.Rng.Intn(224))*lineBytes
			e.Load(workloads.IP(310), addr, 5+e.Rng.Intn(4), 0)
		}
		// Feature-vector scan: repeating +1/+1/+2 line deltas. The
		// period sum (+4) is a perfect local delta for Berti; the
		// alternation defeats IP-stride, and the 75% region density
		// baits global-stream classifiers into spraying.
		for k := 0; k < 4 && !e.Full(); k++ {
			e.Load(workloads.IP(311), features+cursor, 4, 0)
			cursor = (cursor + deltas[di]*lineBytes) % (64 << 20)
			di = (di + 1) % len(deltas)
		}
	}
	return e.T
}

// genCloud9 models cloud9: dominated by instruction-side behaviour the
// simulator does not model; the data side is a hot working set with rare,
// unpredictable misses — no prefetcher helps much (ideal-L1D headroom is
// small, §IV-G).
func genCloud9(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	hot := workloads.Base(1)
	cold := workloads.Base(2)
	for !e.Full() {
		for k := 0; k < 40 && !e.Full(); k++ {
			addr := hot + uint64(e.Rng.Intn(256))*lineBytes
			e.Load(workloads.IP(320), addr, 6+e.Rng.Intn(5), 0)
		}
		// One unpredictable cold miss.
		addr := cold + uint64(e.Rng.Intn(1<<21))*lineBytes
		e.Load(workloads.IP(321), addr, 5, 1)
	}
	return e.T
}

// genNutch models nutch: like cloud9 with slightly more stores and a
// modest repeated-sequence component.
func genNutch(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	hot := workloads.Base(1)
	cold := workloads.Base(2)
	const nSeqs = 128
	const seqLen = 10
	seqs := make([][]uint64, nSeqs)
	for i := range seqs {
		seqs[i] = make([]uint64, seqLen)
		for j := range seqs[i] {
			seqs[i][j] = cold + uint64(e.Rng.Intn(1<<20))*lineBytes
		}
	}
	for !e.Full() {
		for k := 0; k < 36 && !e.Full(); k++ {
			addr := hot + uint64(e.Rng.Intn(240))*lineBytes
			if e.Rng.Intn(5) == 0 {
				e.Store(workloads.IP(330), addr, 5+e.Rng.Intn(4), 0)
			} else {
				e.Load(workloads.IP(331), addr, 5+e.Rng.Intn(4), 0)
			}
		}
		seq := seqs[e.Rng.Intn(nSeqs)]
		for _, addr := range seq {
			if e.Full() {
				break
			}
			e.Load(workloads.IP(332), addr, 3, 1)
		}
	}
	return e.T
}
