// Package speclike generates SPEC CPU2017-like memory traces. Each kernel
// reproduces an access-pattern archetype the paper's per-benchmark analysis
// names explicitly (Section II-B and IV-C):
//
//   - mcf: a handful of IPs, each with its own repeating local-delta
//     sequence (irregular strides, stable per-IP deltas) — Berti's home turf.
//   - lbm: IPs with alternating +1/+2 strides whose period sum (+3, +6) is
//     the timely local delta; IP-stride gains no confidence on it.
//   - cactuBSSN: hundreds of interleaved constant-stride IPs, overflowing
//     Berti's small per-IP tables while global-delta prefetchers thrive.
//   - streaming/stencil kernels (roms, bwaves, fotonik3d): long unit- and
//     multi-stride streams where every prefetcher does well and timeliness
//     separates them.
//   - pointer-heavy kernels (omnetpp, xalancbmk): dependent chains with
//     little spatial structure, punishing inaccurate prefetchers.
package speclike

import (
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
)

func init() {
	regs := []workloads.Workload{
		{Name: "mcf_like_1554", Suite: "spec", MemIntensive: true, Gen: genMCF1554},
		{Name: "mcf_like_782", Suite: "spec", MemIntensive: true, Gen: genMCF782},
		{Name: "mcf_like_1536", Suite: "spec", MemIntensive: true, Gen: genMCF1536},
		{Name: "lbm_like", Suite: "spec", MemIntensive: true, Gen: genLBM},
		{Name: "cactu_like", Suite: "spec", MemIntensive: true, Gen: genCactu},
		{Name: "roms_like", Suite: "spec", MemIntensive: true, Gen: genRoms},
		{Name: "bwaves_like", Suite: "spec", MemIntensive: true, Gen: genBwaves},
		{Name: "fotonik_like", Suite: "spec", MemIntensive: true, Gen: genFotonik},
		{Name: "gcc_like", Suite: "spec", MemIntensive: true, Gen: genGCC},
		{Name: "omnetpp_like", Suite: "spec", MemIntensive: true, Gen: genOmnetpp},
		{Name: "xalanc_like", Suite: "spec", MemIntensive: true, Gen: genXalanc},
		{Name: "wrf_like", Suite: "spec", MemIntensive: true, Gen: genWRF},
	}
	for _, w := range regs {
		workloads.Register(w)
	}
}

const lineBytes = 64

// deltaWalker walks an array with a repeating per-IP delta sequence.
type deltaWalker struct {
	ip     uint64
	base   uint64
	size   uint64 // bytes
	cursor uint64
	seq    []int64 // line deltas, cycled
	pos    int
	// chained makes each line-jump load data-dependent on the walker's
	// previous line-jump load (pointer chasing): the address is computed
	// from the loaded value, so the chain serializes without prefetching.
	chained  bool
	lastJump int
}

func (w *deltaWalker) next() uint64 {
	d := w.seq[w.pos]
	w.pos = (w.pos + 1) % len(w.seq)
	w.cursor = uint64(int64(w.cursor) + d*lineBytes)
	// Wrap within the array.
	if w.cursor < w.base || w.cursor >= w.base+w.size {
		span := int64(w.size)
		off := (int64(w.cursor) - int64(w.base)) % span
		if off < 0 {
			off += span
		}
		w.cursor = w.base + uint64(off)
	}
	return w.cursor
}

// step emits one node visit: a line-jump load plus `fields` further loads
// within the same line (structure-field or neighbouring-element reads).
// Real programs touch several words per line, which is what keeps L1D MPKI
// in the realistic range rather than one miss per access.
func (w *deltaWalker) step(e *workloads.Emitter, fields, nonMem int, dep uint8) {
	addr := w.next()
	if w.chained {
		if d := e.RecordIndex() - w.lastJump; w.lastJump > 0 && d > 0 && d < 256 {
			dep = uint8(d)
		}
		w.lastJump = e.RecordIndex()
	}
	e.Load(w.ip, addr, nonMem, dep)
	for f := 1; f <= fields && !e.Full(); f++ {
		// Field reads address off the just-loaded node pointer, so on a
		// chained walker they are data-dependent on the jump load (f
		// records back).
		var fdep uint8
		if w.chained {
			fdep = uint8(f)
		}
		e.Load(w.ip, addr+uint64(f)*8, 2, fdep)
	}
}

// genMCF1554 models mcf_s-1554B: several hot IPs, each with a distinct
// repeating delta sequence over its own large working set (Fig. 3's
// per-IP best deltas). BOP's single global delta covers almost nothing.
func genMCF1554(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	walkers := []*deltaWalker{
		{ip: workloads.IP(1), base: workloads.Base(1), size: 64 << 20, seq: []int64{3}, chained: true},
		{ip: workloads.IP(2), base: workloads.Base(2), size: 64 << 20, seq: []int64{-1, -5, -2, -1, -4, -1}, chained: true},
		{ip: workloads.IP(3), base: workloads.Base(3), size: 64 << 20, seq: []int64{7, 7, 2}, chained: true},
		{ip: workloads.IP(4), base: workloads.Base(4), size: 64 << 20, seq: []int64{-6}, chained: true},
		{ip: workloads.IP(5), base: workloads.Base(5), size: 32 << 20, seq: []int64{1, 2, 1, 4}, chained: true},
	}
	for i := range walkers {
		walkers[i].cursor = walkers[i].base + walkers[i].size/2
	}
	weights := []int{30, 25, 20, 15, 10}
	for !e.Full() {
		w := walkers[pick(e, weights)]
		w.step(e, 3, 2+e.Rng.Intn(3), 0)
	}
	return e.T
}

// genMCF782 models mcf_s-782B: three IPs cover 75% of L1D accesses with
// interleaved access streams that corrupt any global delta, driving MLOP
// and IPCP below IP-stride.
func genMCF782(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	hot := []*deltaWalker{
		{ip: workloads.IP(10), base: workloads.Base(1), size: 48 << 20, seq: []int64{5}, chained: true},
		{ip: workloads.IP(11), base: workloads.Base(2), size: 48 << 20, seq: []int64{-3}, chained: true},
		{ip: workloads.IP(12), base: workloads.Base(3), size: 48 << 20, seq: []int64{9, -2}, chained: true},
	}
	for i := range hot {
		hot[i].cursor = hot[i].base + hot[i].size/2
	}
	coldBase := workloads.Base(4)
	for !e.Full() {
		r := e.Rng.Intn(100)
		switch {
		case r < 75:
			w := hot[e.Rng.Intn(3)]
			w.step(e, 3, 1+e.Rng.Intn(3), 0)
		default:
			// Cold irregular accesses from many IPs.
			ip := workloads.IP(20 + e.Rng.Intn(12))
			addr := coldBase + uint64(e.Rng.Intn(1<<24))*lineBytes
			e.Load(ip, addr, 2+e.Rng.Intn(4), 0)
			e.Load(ip, addr+8, 2, 0)
		}
	}
	return e.T
}

// genMCF1536 models mcf_s-1536B: a harder mix with dependent pointer hops
// where even Berti shows a small degradation vs. IP-stride (§IV-C).
func genMCF1536(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	// One constant-stride IP (IP-stride covers it perfectly)...
	s := &deltaWalker{ip: workloads.IP(30), base: workloads.Base(1), size: 32 << 20, seq: []int64{1}}
	s.cursor = s.base
	// ...interleaved with dependent random hops that no one covers, and
	// a medium-coverage delta IP whose pattern occasionally mutates
	// (Berti keeps re-learning and issues some useless prefetches).
	m := &deltaWalker{ip: workloads.IP(31), base: workloads.Base(2), size: 32 << 20, seq: []int64{4, 4, 4, 4, -11}, chained: true}
	m.cursor = m.base + m.size/2
	heap := workloads.Base(3)
	for !e.Full() {
		r := e.Rng.Intn(100)
		switch {
		case r < 35:
			s.step(e, 3, 1+e.Rng.Intn(2), 0)
		case r < 60:
			if e.Rng.Intn(40) == 0 {
				// Phase change: mutate the delta sequence.
				m.seq[e.Rng.Intn(len(m.seq))] = int64(e.Rng.Intn(13) - 6)
			}
			m.step(e, 3, 1+e.Rng.Intn(3), 0)
		default:
			addr := heap + uint64(e.Rng.Intn(1<<23))*lineBytes
			e.Load(workloads.IP(32), addr, 2+e.Rng.Intn(3), 1)
			e.Load(workloads.IP(32), addr+16, 3, 0)
		}
	}
	return e.T
}

// genLBM models lbm: stencil sweeps where each IP alternates +1/+2 strides
// (the §II-B motivating example) over multiple distribution arrays, plus
// streaming stores.
func genLBM(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	var ws []*deltaWalker
	for k := 0; k < 6; k++ {
		w := &deltaWalker{
			ip:   workloads.IP(40 + k),
			base: workloads.Base(1 + k),
			size: 48 << 20,
			seq:  []int64{1, 2},
		}
		w.cursor = w.base
		ws = append(ws, w)
	}
	stIP := workloads.IP(50)
	stBase := workloads.Base(8)
	var stCur uint64
	for !e.Full() {
		// One sweep step: read all distributions (several 8 B values per
		// line, with collision-kernel FLOPs in between), write the result.
		for _, w := range ws {
			w.step(e, 5, 6, 0)
		}
		e.Store(stIP, stBase+stCur, 2, 0)
		e.Store(stIP, stBase+stCur+16, 1, 0)
		stCur = (stCur + 3*lineBytes) % (48 << 20)
	}
	return e.T
}

// genCactu models cactuBSSN: hundreds of interleaved unit-stride IPs. The
// per-IP tables of Berti (and the IP table of IPCP) thrash, while
// global-pattern prefetchers (MLOP, GS streams) cover the dense sweeps.
func genCactu(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	const nIPs = 320
	const grids = 4
	const gridLines = (48 << 20) / lineBytes
	// All IPs of a grid read around a common sweep position (a stencil
	// wavefront), each at its own small plane/point offset. The global
	// page-level pattern is densely sequential (MLOP's and GS-style
	// prefetchers' home turf), while the per-IP state is spread over 320
	// IPs — far beyond Berti's 16-entry table of deltas and the 24-entry
	// IP-stride table (Section IV-C's CactuBSSN analysis).
	pos := uint64(0)
	for !e.Full() {
		for k := 0; k < 24 && !e.Full(); k++ {
			i := e.Rng.Intn(nIPs)
			grid := i % grids
			off := int64((i/grids)%33 - 16)
			line := (int64(pos) + off + gridLines) % gridLines
			addr := workloads.Base(1+grid) + uint64(line)*lineBytes
			e.Load(workloads.IP(100+i), addr+uint64(e.Rng.Intn(8))*8, 2+e.Rng.Intn(2), 0)
		}
		pos = (pos + 1) % gridLines
	}
	return e.T
}

// genRoms models roms: several long unit-stride streams (loads + stores),
// the friendliest possible pattern.
func genRoms(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	var cur [4]uint64
	for !e.Full() {
		// 8-byte elements: eight accesses per line, one line miss each;
		// ~3 arithmetic ops per element keep the kernel FP-bound enough
		// for realistic miss density.
		for k := 0; k < 3; k++ {
			e.Load(workloads.IP(60+k), workloads.Base(1+k)+cur[k], 4, 0)
			cur[k] += 8
		}
		e.Store(workloads.IP(63), workloads.Base(4)+cur[3], 3, 0)
		cur[3] += 8
	}
	return e.T
}

// genBwaves models bwaves: nested loops with a small inner stride and a
// large outer jump (multi-delta per IP, cross-page regularity).
func genBwaves(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	const innerLen = 24
	w := &deltaWalker{ip: workloads.IP(70), base: workloads.Base(1), size: 96 << 20}
	w.seq = make([]int64, innerLen)
	for i := 0; i < innerLen-1; i++ {
		w.seq[i] = 2
	}
	w.seq[innerLen-1] = 120 // plane jump (crosses pages)
	w.cursor = w.base
	w2 := &deltaWalker{ip: workloads.IP(71), base: workloads.Base(2), size: 96 << 20, seq: []int64{5}}
	w2.cursor = w2.base
	for !e.Full() {
		w.step(e, 3, 4+e.Rng.Intn(2), 0)
		w2.step(e, 3, 4, 0)
	}
	return e.T
}

// genFotonik models fotonik3d: stencil planes accessed with large constant
// deltas that cross 4 KB pages — rewarding virtual-address, cross-page
// prefetching (§IV.J).
func genFotonik(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	// Three field arrays swept repeatedly (one sweep per simulated time
	// step) with a 20-line delta (1280 B): every few accesses the walker
	// crosses a 4 KB page. Because the sweep repeats and each array fits
	// the STLB reach, cross-page prefetch targets translate - the
	// situation the paper's cross-page mechanism exploits (S IV.J) -
	// while the arrays together still exceed the LLC.
	var ws []*deltaWalker
	for k := 0; k < 3; k++ {
		w := &deltaWalker{
			ip:   workloads.IP(80 + k),
			base: workloads.Base(1 + k),
			size: 5 << 20, // 2.5 MB x3 = pages fit the 2048-entry STLB
			seq:  []int64{20},
		}
		w.size = 5 << 19
		w.cursor = w.base + uint64(k)*7*lineBytes
		ws = append(ws, w)
	}
	for !e.Full() {
		for _, w := range ws {
			w.step(e, 4, 2, 0)
		}
	}
	return e.T
}

// genGCC models gcc: a moderate mix of short strided bursts, pointer
// dereferences, and stack-like reuse; medium MPKI.
func genGCC(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	hot := workloads.Base(1)
	heap := workloads.Base(2)
	var seqCur uint64
	for !e.Full() {
		switch e.Rng.Intn(10) {
		case 0, 1, 2, 3:
			// Hot small working set: mostly hits.
			addr := hot + uint64(e.Rng.Intn(512))*lineBytes
			e.Load(workloads.IP(90), addr, 2+e.Rng.Intn(3), 0)
		case 4, 5, 6, 7:
			// Strided burst.
			for k := 0; k < 8 && !e.Full(); k++ {
				e.Load(workloads.IP(91), heap+seqCur, 1, 0)
				seqCur = (seqCur + 2*lineBytes) % (24 << 20)
			}
		default:
			// Pointer dereferences; gcc's chases are short and mostly
			// independent across iterations (unlike mcf).
			addr := heap + uint64(e.Rng.Intn(1<<19))*lineBytes
			e.Load(workloads.IP(92), addr, 3+e.Rng.Intn(3), 0)
			e.Load(workloads.IP(92), addr+24, 2, 1)
		}
	}
	return e.T
}

// genOmnetpp models omnetpp: event-queue simulation dominated by dependent
// heap walks with low spatial structure.
func genOmnetpp(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	heap := workloads.Base(1)
	hot := workloads.Base(2)
	const heapLines = 1 << 20 // 64 MB heap
	cur := uint64(12345)
	for !e.Full() {
		// Hot scheduler state: mostly hits.
		for k := 0; k < 6 && !e.Full(); k++ {
			addr := hot + uint64(e.Rng.Intn(640))*lineBytes
			e.Load(workloads.IP(94), addr, 3+e.Rng.Intn(3), 0)
		}
		// Dependent pointer chase through a pseudo-random heap.
		cur = (cur*2654435761 + 12345) % heapLines
		node := heap + cur*lineBytes
		e.Load(workloads.IP(95), node, 4+e.Rng.Intn(4), 1)
		e.Load(workloads.IP(95), node+16, 1, 1)
		// Event payload: short sequential run at the chased node
		// (addresses derive from the chased pointer).
		for k := 1; k <= 2 && !e.Full(); k++ {
			e.Load(workloads.IP(96), heap+(cur+uint64(k))*lineBytes, 1, uint8(k+1))
		}
		if e.Rng.Intn(4) == 0 {
			e.Store(workloads.IP(97), node+32, 1, 1)
		}
	}
	return e.T
}

// genXalanc models xalancbmk: tree walks with modest temporal reuse and
// scattered strings; low prefetchability.
func genXalanc(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	tree := workloads.Base(1)
	strs := workloads.Base(2)
	hot := workloads.Base(3)
	const treeLines = 1 << 19
	node := uint64(7)
	for !e.Full() {
		// Hot symbol tables: mostly hits.
		for k := 0; k < 5 && !e.Full(); k++ {
			addr := hot + uint64(e.Rng.Intn(512))*lineBytes
			e.Load(workloads.IP(93), addr, 3+e.Rng.Intn(3), 0)
		}
		// Walk down a pseudo-tree (dependent).
		node = (node*6364136223846793005 + 1442695040888963407) % treeLines
		e.Load(workloads.IP(98), tree+node*lineBytes, 3+e.Rng.Intn(3), 1)
		// Read the node's string (8 B chunks, short sequential); the
		// string pointer came from the node, so these depend on it.
		sbase := strs + (node%treeLines)*lineBytes*4
		for k := 0; k < 6 && !e.Full(); k++ {
			e.Load(workloads.IP(99), sbase+uint64(k)*8, 1, uint8(k+1))
		}
	}
	return e.T
}

// genWRF models wrf: several medium-stride streams with periodic phase
// changes between sweeps.
func genWRF(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	w := &deltaWalker{ip: workloads.IP(110), base: workloads.Base(1), size: 64 << 20, seq: []int64{4}}
	w.cursor = w.base
	w2 := &deltaWalker{ip: workloads.IP(111), base: workloads.Base(2), size: 64 << 20, seq: []int64{-4}}
	w2.cursor = w2.base + w2.size - lineBytes
	phase := 0
	for !e.Full() {
		w.step(e, 5, 4+e.Rng.Intn(2), 0)
		w2.step(e, 5, 4, 0)
		phase++
		if phase%5000 == 0 {
			// Sweep direction flip.
			w.seq[0], w2.seq[0] = w2.seq[0], w.seq[0]
		}
	}
	return e.T
}

// pick selects an index from weights (which need not sum to 100).
func pick(e *workloads.Emitter, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := e.Rng.Intn(total)
	for i, w := range weights {
		if r < w {
			return i
		}
		r -= w
	}
	return len(weights) - 1
}
