package speclike

import (
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
)

// Additional SPEC CPU2017-like kernels covering the remaining archetypes of
// the memory-intensive subset: compression (xz), climate stencils
// (cam4/pop2), molecular dynamics gathers (nab), and transposition-table
// probing (deepsjeng).
func init() {
	regs := []workloads.Workload{
		{Name: "xz_like", Suite: "spec", MemIntensive: true, Gen: genXZ},
		{Name: "cam4_like", Suite: "spec", MemIntensive: true, Gen: genCam4},
		{Name: "pop2_like", Suite: "spec", MemIntensive: true, Gen: genPop2},
		{Name: "nab_like", Suite: "spec", MemIntensive: true, Gen: genNab},
		{Name: "deepsjeng_like", Suite: "spec", MemIntensive: true, Gen: genDeepsjeng},
	}
	for _, w := range regs {
		workloads.Register(w)
	}
}

// genXZ models xz: a sequential input scan, hash-chain probes into a large
// dictionary (dependent), and short match-copy bursts at the matched
// positions — sequential and dependent-random interleaved.
func genXZ(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	input := workloads.Base(1)
	dict := workloads.Base(2)
	var inCur uint64
	const dictLines = 1 << 20 // 64 MB window
	h := uint64(2166136261)
	for !e.Full() {
		// Scan 16 input bytes (sequential, mostly hits).
		for k := 0; k < 2 && !e.Full(); k++ {
			e.Load(workloads.IP(500), input+inCur, 2, 0)
			inCur += 8
		}
		// Hash-chain probe: two dependent hops into the dictionary.
		h = h*16777619 + inCur
		slot := h % dictLines
		e.Load(workloads.IP(501), dict+slot*lineBytes, 3, 0)
		next := (h >> 7) % dictLines
		e.Load(workloads.IP(502), dict+next*lineBytes, 2, 1)
		// Match copy: short sequential burst at the match position.
		if e.Rng.Intn(3) == 0 {
			mbase := dict + next*lineBytes
			for k := 1; k <= 3 && !e.Full(); k++ {
				e.Load(workloads.IP(503), mbase+uint64(k)*lineBytes, 1, uint8(k+1))
			}
		}
	}
	return e.T
}

// genCam4 models cam4: many concurrent column streams with a medium stride
// (physics columns), classic multi-stream stencil behaviour.
func genCam4(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	var ws []*deltaWalker
	for k := 0; k < 4; k++ {
		w := &deltaWalker{
			ip:   workloads.IP(510 + k),
			base: workloads.Base(1 + k),
			size: 64 << 20,
			seq:  []int64{2, 2, 2, 10}, // column sweep, then level jump
		}
		w.cursor = w.base
		ws = append(ws, w)
	}
	stCur := uint64(0)
	for !e.Full() {
		for _, w := range ws {
			w.step(e, 3, 4, 0)
		}
		e.Store(workloads.IP(519), workloads.Base(7)+stCur, 3, 0)
		stCur = (stCur + 2*lineBytes) % (64 << 20)
	}
	return e.T
}

// genPop2 models pop2: blocked ocean-grid sweeps — unit-stride runs with
// periodic large jumps between blocks (cross-page regular deltas).
func genPop2(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	w := &deltaWalker{ip: workloads.IP(520), base: workloads.Base(1), size: 96 << 20}
	for i := 0; i < 15; i++ {
		w.seq = append(w.seq, 1)
	}
	w.seq = append(w.seq, 113) // block jump crossing pages
	w.cursor = w.base
	w2 := &deltaWalker{ip: workloads.IP(521), base: workloads.Base(2), size: 96 << 20, seq: []int64{3}}
	w2.cursor = w2.base
	for !e.Full() {
		w.step(e, 3, 4, 0)
		w2.step(e, 3, 3, 0)
	}
	return e.T
}

// genNab models nab: molecular-dynamics force loops — a sequential atom
// stream plus neighbor-list gathers that are indexed (semi-random within a
// spatial region that drifts slowly).
func genNab(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	atoms := workloads.Base(1)
	neigh := workloads.Base(2)
	var atomCur uint64
	const regionLines = 1 << 14 // 1 MB neighborhood
	var regionBase uint64
	for !e.Full() {
		// Current atom (sequential, 3 coordinates).
		e.Load(workloads.IP(530), atoms+atomCur, 3, 0)
		e.Load(workloads.IP(530), atoms+atomCur+8, 2, 0)
		atomCur += 24
		// Gather 6 neighbors from the drifting region.
		for k := 0; k < 6 && !e.Full(); k++ {
			off := uint64(e.Rng.Intn(regionLines))
			e.Load(workloads.IP(531), neigh+(regionBase+off)*lineBytes, 3, 0)
		}
		if e.Rng.Intn(64) == 0 {
			regionBase += regionLines / 8 // spatial cell advance
		}
	}
	return e.T
}

// genDeepsjeng models deepsjeng: transposition-table probes — dependent
// random accesses into a table far larger than the LLC, with a hot
// evaluation working set in between. Prefetchers can do little; the paper
// counts on accurate prefetchers at least not hurting.
func genDeepsjeng(cfg workloads.GenConfig) *trace.Slice {
	e := workloads.NewEmitter(cfg)
	tt := workloads.Base(1)
	hot := workloads.Base(2)
	const ttLines = 1 << 21 // 128 MB table
	h := uint64(88172645463325252)
	for !e.Full() {
		// Evaluation: hot hits.
		for k := 0; k < 10 && !e.Full(); k++ {
			addr := hot + uint64(e.Rng.Intn(448))*lineBytes
			e.Load(workloads.IP(540), addr, 4+e.Rng.Intn(3), 0)
		}
		// Transposition probe: xorshift hash, dependent second line.
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		slot := h % ttLines
		e.Load(workloads.IP(541), tt+slot*lineBytes, 3, 0)
		e.Load(workloads.IP(541), tt+slot*lineBytes+16, 1, 1)
	}
	return e.T
}
