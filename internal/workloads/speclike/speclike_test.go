package speclike

import (
	"testing"

	"github.com/bertisim/berti/internal/workloads"
)

func gen(t *testing.T, name string, n int) []recStat {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	tr := w.Gen(workloads.GenConfig{MemRecords: n, Seed: 3})
	out := make([]recStat, len(tr.Records))
	for i, r := range tr.Records {
		out[i] = recStat{ip: r.IP, line: r.Addr >> 6, dep: r.DepDist}
	}
	return out
}

type recStat struct {
	ip   uint64
	line uint64
	dep  uint8
}

// perIPDeltas extracts consecutive line deltas per IP.
func perIPDeltas(recs []recStat) map[uint64][]int64 {
	last := map[uint64]uint64{}
	out := map[uint64][]int64{}
	for _, r := range recs {
		if prev, ok := last[r.ip]; ok {
			out[r.ip] = append(out[r.ip], int64(r.line)-int64(prev))
		}
		last[r.ip] = r.line
	}
	return out
}

func TestMCFHasPerIPDeltaStructure(t *testing.T) {
	recs := gen(t, "mcf_like_1554", 30000)
	deltas := perIPDeltas(recs)
	// Walker IP 1 (stride +3 lines per node, with same-line field reads):
	// nonzero deltas must be overwhelmingly +3.
	ds := deltas[workloads.IP(1)]
	if len(ds) == 0 {
		t.Fatal("walker IP missing")
	}
	nonzero, threes := 0, 0
	for _, d := range ds {
		if d != 0 {
			nonzero++
			if d == 3 {
				threes++
			}
		}
	}
	if nonzero == 0 || float64(threes)/float64(nonzero) < 0.9 {
		t.Fatalf("walker 1 deltas not +3 dominated: %d/%d", threes, nonzero)
	}
}

func TestMCFChainsAreDependent(t *testing.T) {
	recs := gen(t, "mcf_like_1554", 30000)
	deps := 0
	for _, r := range recs {
		if r.dep > 0 {
			deps++
		}
	}
	if float64(deps)/float64(len(recs)) < 0.5 {
		t.Fatalf("mcf should be chain-dominated, deps=%d/%d", deps, len(recs))
	}
}

func TestLBMAlternatesStrides(t *testing.T) {
	recs := gen(t, "lbm_like", 30000)
	deltas := perIPDeltas(recs)
	ds := deltas[workloads.IP(40)]
	ones, twos, other := 0, 0, 0
	for _, d := range ds {
		switch d {
		case 0:
		case 1:
			ones++
		case 2:
			twos++
		default:
			other++
		}
	}
	if ones == 0 || twos == 0 || other > (ones+twos)/10 {
		t.Fatalf("lbm IP should alternate +1/+2: ones=%d twos=%d other=%d", ones, twos, other)
	}
}

func TestCactuHasManyIPs(t *testing.T) {
	recs := gen(t, "cactu_like", 30000)
	ips := map[uint64]bool{}
	for _, r := range recs {
		ips[r.ip] = true
	}
	if len(ips) < 200 {
		t.Fatalf("cactu needs hundreds of IPs, got %d", len(ips))
	}
}

func TestCactuGlobalSweepIsDense(t *testing.T) {
	recs := gen(t, "cactu_like", 60000)
	// Page-level density: within touched 4 KB pages of the first grid,
	// most lines should eventually be touched.
	pages := map[uint64]map[uint64]bool{}
	for _, r := range recs {
		page := r.line >> 6
		if pages[page] == nil {
			pages[page] = map[uint64]bool{}
		}
		pages[page][r.line&63] = true
	}
	dense := 0
	for _, lines := range pages {
		if len(lines) > 48 {
			dense++
		}
	}
	if dense < 3 {
		t.Fatalf("cactu sweep should fill pages densely, dense pages = %d", dense)
	}
}

func TestRomsStreamsSequentially(t *testing.T) {
	recs := gen(t, "roms_like", 20000)
	deltas := perIPDeltas(recs)
	ds := deltas[workloads.IP(60)]
	bad := 0
	for _, d := range ds {
		if d != 0 && d != 1 {
			bad++
		}
	}
	if bad > len(ds)/20 {
		t.Fatalf("roms stream not sequential: %d bad of %d", bad, len(ds))
	}
}

func TestFotonikCrossesPages(t *testing.T) {
	recs := gen(t, "fotonik_like", 20000)
	// The +20-line stencil stride crosses a 4 KB page every few accesses,
	// and the sweep revisits its pages (so the STLB can translate
	// cross-page prefetch targets).
	var pages []uint64
	for _, r := range recs {
		if r.ip == workloads.IP(80) {
			pages = append(pages, r.line>>6)
		}
	}
	crossings := 0
	seen := map[uint64]int{}
	for i, p := range pages {
		if i > 0 && p != pages[i-1] {
			crossings++
		}
		seen[p]++
	}
	// Each node visit emits ~5 same-line records and the +20-line stride
	// crosses a page boundary on ~31% of jumps, so ~6% of records cross.
	if crossings < len(pages)/25 {
		t.Fatalf("stencil should cross pages frequently: %d of %d", crossings, len(pages))
	}
	revisited := 0
	for _, n := range seen {
		if n > 6 {
			revisited++
		}
	}
	if revisited < len(seen)/2 {
		t.Fatalf("sweep should revisit pages: %d of %d", revisited, len(seen))
	}
}
