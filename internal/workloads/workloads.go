// Package workloads defines the workload-generator framework and registry.
//
// The paper evaluates on SPEC CPU2017, GAP, and CloudSuite traces that are
// not redistributable; this package provides synthetic substitutes that
// reproduce the access-pattern archetypes the paper's analysis attributes
// its results to (see DESIGN.md §2). Suite subpackages register their
// workloads via Register in init functions; import them blank to populate
// the registry:
//
//	import (
//	    _ "github.com/bertisim/berti/internal/workloads/cloudlike"
//	    _ "github.com/bertisim/berti/internal/workloads/gap"
//	    _ "github.com/bertisim/berti/internal/workloads/speclike"
//	)
package workloads

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/bertisim/berti/internal/trace"
)

// GenConfig parameterizes trace generation.
type GenConfig struct {
	// MemRecords is the number of memory instructions to emit.
	MemRecords int
	// Seed makes generation deterministic.
	Seed int64
}

// Workload is a named trace generator.
type Workload struct {
	Name  string
	Suite string // "spec", "gap", "cloud"
	// MemIntensive marks traces in the paper's MemInt subset.
	MemIntensive bool
	Gen          func(cfg GenConfig) *trace.Slice
}

var (
	mu       sync.Mutex
	registry = map[string]Workload{}
)

// Register adds a workload to the global registry (called from suite
// subpackage init functions). Duplicate names panic.
func Register(w Workload) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// ByName returns a registered workload.
func ByName(name string) (Workload, bool) {
	mu.Lock()
	defer mu.Unlock()
	w, ok := registry[name]
	return w, ok
}

// All returns every registered workload sorted by suite then name.
func All() []Workload {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns registered workloads of one suite.
func Suite(name string) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == name {
			out = append(out, w)
		}
	}
	return out
}

// Emitter builds a trace record-by-record with convenient defaults.
type Emitter struct {
	T   *trace.Slice
	Rng *rand.Rand
	// limit stops emission once MemRecords is reached.
	limit int
}

// NewEmitter returns an emitter for cfg.
func NewEmitter(cfg GenConfig) *Emitter {
	return &Emitter{
		T:     &trace.Slice{Records: make([]trace.Record, 0, cfg.MemRecords)},
		Rng:   rand.New(rand.NewSource(cfg.Seed)),
		limit: cfg.MemRecords,
	}
}

// Full reports whether the record budget is exhausted.
func (e *Emitter) Full() bool { return len(e.T.Records) >= e.limit }

// RecordIndex returns the index the next record will occupy, for computing
// data-dependence distances.
func (e *Emitter) RecordIndex() int { return len(e.T.Records) }

// Load appends a load record.
func (e *Emitter) Load(ip, addr uint64, nonMemBefore int, depDist uint8) {
	if e.Full() {
		return
	}
	e.T.Append(trace.Record{
		IP: ip, Addr: addr, Kind: trace.Load,
		NonMemBefore: uint32(nonMemBefore), DepDist: depDist,
	})
}

// Store appends a store record.
func (e *Emitter) Store(ip, addr uint64, nonMemBefore int, depDist uint8) {
	if e.Full() {
		return
	}
	e.T.Append(trace.Record{
		IP: ip, Addr: addr, Kind: trace.Store,
		NonMemBefore: uint32(nonMemBefore), DepDist: depDist,
	})
}

// IP builds a fake instruction pointer from a code-location index. The
// spacing is deliberately not a power of two: x86 instructions have
// variable length, and power-of-two-aligned synthetic IPs would alias in
// any set-indexed predictor table.
func IP(loc int) uint64 { return 0x400000 + uint64(loc)*21 }

// Base builds a virtual array base address from a region index, spacing
// regions 1 GB apart so they never collide.
func Base(region int) uint64 { return 0x1_0000_0000 + uint64(region)<<30 }
