package workloads_test

import (
	"reflect"
	"testing"

	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
	_ "github.com/bertisim/berti/internal/workloads/cloudlike"
	_ "github.com/bertisim/berti/internal/workloads/gap"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

func TestRegistryHasAllSuites(t *testing.T) {
	counts := map[string]int{}
	for _, w := range workloads.All() {
		counts[w.Suite]++
	}
	if counts["spec"] < 10 {
		t.Fatalf("spec suite too small: %d", counts["spec"])
	}
	if counts["gap"] < 12 {
		t.Fatalf("gap suite too small: %d", counts["gap"])
	}
	if counts["cloud"] < 4 {
		t.Fatalf("cloud suite too small: %d", counts["cloud"])
	}
}

func TestEveryGeneratorHonorsBudgetAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every workload")
	}
	const n = 3000
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			a := w.Gen(workloads.GenConfig{MemRecords: n, Seed: 7})
			if a.Len() != n {
				t.Fatalf("generated %d records, want %d", a.Len(), n)
			}
			b := w.Gen(workloads.GenConfig{MemRecords: n, Seed: 7})
			if !reflect.DeepEqual(a.Records, b.Records) {
				t.Fatal("generation is not deterministic")
			}
			// Sanity: addresses nonzero, IPs nonzero.
			for i := 0; i < 100; i++ {
				r := a.Records[i]
				if r.Addr == 0 || r.IP == 0 {
					t.Fatalf("record %d has zero addr/ip: %+v", i, r)
				}
			}
		})
	}
}

func TestDependenceDistancesValid(t *testing.T) {
	for _, name := range []string{"mcf_like_1554", "bfs-kron", "omnetpp_like"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		tr := w.Gen(workloads.GenConfig{MemRecords: 5000, Seed: 1})
		deps := 0
		for i, r := range tr.Records {
			if int(r.DepDist) > i {
				t.Fatalf("%s record %d: DepDist %d points before trace start", name, i, r.DepDist)
			}
			if r.DepDist > 0 {
				deps++
			}
		}
		if deps == 0 {
			t.Fatalf("%s should contain dependent accesses", name)
		}
	}
}

func TestMemIntensiveFlags(t *testing.T) {
	for _, w := range workloads.All() {
		if w.Suite == "cloud" && w.MemIntensive {
			t.Fatalf("%s: cloud traces are not in the MemInt subset", w.Name)
		}
		if (w.Suite == "spec" || w.Suite == "gap") && !w.MemIntensive {
			t.Fatalf("%s: spec/gap traces are all memory-intensive per the paper", w.Name)
		}
	}
}

func TestEmitterBudget(t *testing.T) {
	e := workloads.NewEmitter(workloads.GenConfig{MemRecords: 3, Seed: 1})
	for i := 0; i < 10; i++ {
		e.Load(1, 64, 0, 0)
	}
	if e.T.Len() != 3 {
		t.Fatalf("emitter overfilled: %d", e.T.Len())
	}
	if !e.Full() {
		t.Fatal("emitter should report full")
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := workloads.ByName("no-such-workload"); ok {
		t.Fatal("ByName invented a workload")
	}
}

func TestTraceInstructionCounts(t *testing.T) {
	w, _ := workloads.ByName("roms_like")
	tr := w.Gen(workloads.GenConfig{MemRecords: 1000, Seed: 1})
	if tr.Instructions() <= uint64(tr.Len()) {
		t.Fatal("non-memory instructions missing")
	}
	var loads int
	for _, r := range tr.Records {
		if r.Kind == trace.Load {
			loads++
		}
	}
	if loads == 0 || loads == tr.Len() {
		t.Fatalf("roms should mix loads and stores: %d/%d", loads, tr.Len())
	}
}
