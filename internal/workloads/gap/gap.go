package gap

import (
	"fmt"
	"sync"

	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
)

func init() {
	algos := []struct {
		name string
		run  func(*mem, *Graph)
	}{
		{"bfs", runBFS},
		{"pr", runPR},
		{"sssp", runSSSP},
		{"cc", runCC},
		{"bc", runBC},
		{"tc", runTC},
	}
	graphs := []struct {
		name  string
		build func(seed int64) *Graph
	}{
		{"kron", func(seed int64) *Graph { return Kronecker(18, 16, seed) }},
		{"urand", func(seed int64) *Graph { return Urand(18, 16, seed) }},
	}
	for _, a := range algos {
		for _, g := range graphs {
			a, g := a, g
			workloads.Register(workloads.Workload{
				Name:         fmt.Sprintf("%s-%s", a.name, g.name),
				Suite:        "gap",
				MemIntensive: true,
				Gen: func(cfg workloads.GenConfig) *trace.Slice {
					return generate(cfg, a.run, g.name, g.build)
				},
			})
		}
	}
	// Road graphs for the traversal and component benchmarks (high
	// diameter, low degree).
	for _, a := range algos[:4] {
		a := a
		workloads.Register(workloads.Workload{
			Name:         fmt.Sprintf("%s-road", a.name),
			Suite:        "gap",
			MemIntensive: true,
			Gen: func(cfg workloads.GenConfig) *trace.Slice {
				return generate(cfg, a.run, "road", func(seed int64) *Graph { return Road(18, seed) })
			},
		})
	}
}

// graphCache memoizes built graphs (generation dominates trace cost).
var (
	graphMu    sync.Mutex
	graphCache = map[string]*Graph{}
)

func cachedGraph(kind string, seed int64, build func(int64) *Graph) *Graph {
	key := fmt.Sprintf("%s/%d", kind, seed)
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	g := build(seed)
	graphCache[key] = g
	return g
}

// mem models the benchmark's data layout and emits the address stream of
// every CSR walk. Element sizes follow the GAP reference implementation
// (4-byte vertex ids, 8-byte scores).
type mem struct {
	e *workloads.Emitter
	g *Graph

	offsetsBase uint64 // 4 B per vertex
	edgesBase   uint64 // 4 B per edge
	propBase    uint64 // 8 B per vertex (parent/dist/score)
	prop2Base   uint64 // second property array
	queueBase   uint64 // frontier/worklist
	queuePos    uint64
}

// IP numbering: one per static access site.
const (
	ipFrontier = 200 + iota
	ipOffsets
	ipEdges
	ipProp
	ipPropStore
	ipQueuePush
	ipProp2
	ipProp2Store
	ipEdges2
)

func newMem(e *workloads.Emitter, g *Graph) *mem {
	return &mem{
		e: e, g: g,
		offsetsBase: workloads.Base(1),
		edgesBase:   workloads.Base(2),
		propBase:    workloads.Base(3),
		prop2Base:   workloads.Base(4),
		queueBase:   workloads.Base(5),
	}
}

func (m *mem) full() bool { return m.e.Full() }

// loadOffsets models `lo, hi = offsets[u], offsets[u+1]` (one line touch
// unless u straddles a line boundary).
func (m *mem) loadOffsets(u int, nonMem int) {
	m.e.Load(workloads.IP(ipOffsets), m.offsetsBase+uint64(u)*4, nonMem, 0)
}

// loadEdge models `v = edges[i]` — the regular streaming IP.
func (m *mem) loadEdge(i uint32) {
	m.e.Load(workloads.IP(ipEdges), m.edgesBase+uint64(i)*4, 2, 0)
}

// loadEdge2 is a second edge-scan site (triangle counting's inner scan).
func (m *mem) loadEdge2(i uint32) {
	m.e.Load(workloads.IP(ipEdges2), m.edgesBase+uint64(i)*4, 1, 0)
}

// loadProp models `x = prop[v]` where v came from the previous edge load
// (data-dependent: DepDist 1).
func (m *mem) loadProp(v uint32) {
	m.e.Load(workloads.IP(ipProp), m.propBase+uint64(v)*8, 3, 1)
}

func (m *mem) storeProp(v uint32) {
	m.e.Store(workloads.IP(ipPropStore), m.propBase+uint64(v)*8, 0, 1)
}

func (m *mem) loadProp2(v uint32) {
	m.e.Load(workloads.IP(ipProp2), m.prop2Base+uint64(v)*8, 1, 1)
}

func (m *mem) storeProp2(v uint32) {
	m.e.Store(workloads.IP(ipProp2Store), m.prop2Base+uint64(v)*8, 0, 1)
}

// loadFrontier models popping the next vertex from the frontier queue.
func (m *mem) loadFrontier() {
	m.e.Load(workloads.IP(ipFrontier), m.queueBase+m.queuePos*4, 2, 0)
	m.queuePos++
}

// pushQueue models appending to the next frontier.
func (m *mem) pushQueue() {
	m.e.Store(workloads.IP(ipQueuePush), m.queueBase+m.queuePos*4+1<<24, 0, 0)
}

// generate runs algo over the named graph until the record budget is hit,
// restarting from fresh sources if the algorithm converges early.
func generate(cfg workloads.GenConfig, algo func(*mem, *Graph), gname string,
	build func(int64) *Graph) *trace.Slice {
	g := cachedGraph(gname, 1, build) // one canonical graph per topology
	e := workloads.NewEmitter(cfg)
	m := newMem(e, g)
	for !e.Full() {
		algo(m, g)
	}
	return e.T
}

// runBFS is top-down breadth-first search.
func runBFS(m *mem, g *Graph) {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	src := int(m.e.Rng.Intn(g.N))
	parent[src] = int32(src)
	frontier := []uint32{uint32(src)}
	for len(frontier) > 0 && !m.full() {
		var next []uint32
		for _, u := range frontier {
			if m.full() {
				return
			}
			m.loadFrontier()
			m.loadOffsets(int(u), 1)
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Edges[i]
				m.loadEdge(i)
				m.loadProp(v) // parent[v] check
				if parent[v] < 0 {
					parent[v] = int32(u)
					m.storeProp(v)
					m.pushQueue()
					next = append(next, v)
				}
				if m.full() {
					return
				}
			}
		}
		frontier = next
	}
}

// runPR is one-or-more pull-style PageRank iterations: the edge scan is
// perfectly sequential while the contribution gathers are random — the
// "one regular IP among chaotic ones" archetype of §IV-C (bc-5).
func runPR(m *mem, g *Graph) {
	for !m.full() {
		for u := 0; u < g.N && !m.full(); u++ {
			m.loadOffsets(u, 1)
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Edges[i]
				m.loadEdge(i)
				m.loadProp(v) // contrib[v]
				if m.full() {
					return
				}
			}
			m.storeProp2(uint32(u)) // rank[u] (sequential store)
		}
	}
}

// runSSSP is Bellman-Ford-style rounds over the full edge list.
func runSSSP(m *mem, g *Graph) {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = 1 << 30
	}
	src := int(m.e.Rng.Intn(g.N))
	dist[src] = 0
	for round := 0; round < 16 && !m.full(); round++ {
		changed := false
		for u := 0; u < g.N && !m.full(); u++ {
			m.loadOffsets(u, 1)
			du := dist[u]
			if du == 1<<30 {
				m.loadProp2(uint32(u))
				continue
			}
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Edges[i]
				m.loadEdge(i)
				m.loadProp(v) // dist[v]
				w := int32(1 + int(i%7))
				if du+w < dist[v] {
					dist[v] = du + w
					m.storeProp(v)
					changed = true
				}
				if m.full() {
					return
				}
			}
		}
		if !changed {
			return
		}
	}
}

// runCC is label-propagation connected components.
func runCC(m *mem, g *Graph) {
	label := make([]uint32, g.N)
	for i := range label {
		label[i] = uint32(i)
	}
	for iter := 0; iter < 8 && !m.full(); iter++ {
		changed := false
		for u := 0; u < g.N && !m.full(); u++ {
			m.loadOffsets(u, 1)
			lu := label[u]
			m.loadProp2(uint32(u))
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Edges[i]
				m.loadEdge(i)
				m.loadProp(v)
				if label[v] < lu {
					lu = label[v]
				}
				if m.full() {
					return
				}
			}
			if lu != label[u] {
				label[u] = lu
				m.storeProp2(uint32(u))
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// runBC approximates Brandes betweenness centrality: a BFS pass followed by
// a reverse dependency-accumulation pass over the visit order.
func runBC(m *mem, g *Graph) {
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	src := int(m.e.Rng.Intn(g.N))
	depth[src] = 0
	order := []uint32{uint32(src)}
	frontier := []uint32{uint32(src)}
	d := int32(0)
	for len(frontier) > 0 && !m.full() {
		d++
		var next []uint32
		for _, u := range frontier {
			m.loadFrontier()
			m.loadOffsets(int(u), 1)
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Edges[i]
				m.loadEdge(i)
				m.loadProp(v) // depth[v]
				if depth[v] < 0 {
					depth[v] = d
					m.storeProp(v)
					next = append(next, v)
					order = append(order, v)
				}
				if m.full() {
					return
				}
			}
		}
		frontier = next
	}
	// Reverse pass: accumulate dependencies walking the order backwards.
	for k := len(order) - 1; k >= 0 && !m.full(); k-- {
		u := order[k]
		m.loadFrontier() // visit-order array read (sequential backwards)
		m.loadOffsets(int(u), 1)
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			v := g.Edges[i]
			m.loadEdge(i)
			m.loadProp2(v) // sigma/delta gather
			if m.full() {
				return
			}
		}
		m.storeProp2(u)
	}
}

// runTC counts triangles by sorted adjacency-list intersection: two
// simultaneous sequential scans per vertex pair — very regular per-IP
// streams with data-dependent advance.
func runTC(m *mem, g *Graph) {
	for u := 0; u < g.N && !m.full(); u++ {
		m.loadOffsets(u, 1)
		nu := g.Neighbors(u)
		for idx, v := range nu {
			if v <= uint32(u) {
				continue
			}
			m.loadEdge(g.Offsets[u] + uint32(idx))
			m.loadOffsets(int(v), 0)
			nv := g.Neighbors(int(v))
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				m.loadEdge2(g.Offsets[u] + uint32(i))
				m.loadEdge2(g.Offsets[v] + uint32(j))
				switch {
				case nu[i] < nv[j]:
					i++
				case nu[i] > nv[j]:
					j++
				default:
					i++
					j++
				}
				if m.full() {
					return
				}
			}
		}
	}
}
