// Package gap generates GAP benchmark suite-like traces by running real
// graph algorithms (BFS, PageRank, SSSP, Connected Components, Betweenness
// Centrality, Triangle Counting) over synthetic Kronecker (RMAT) and
// uniform-random graphs, emitting the virtual-address stream of the CSR
// data-structure walks each algorithm performs. The resulting traces carry
// the same structure the paper's GAP analysis relies on: one or two very
// regular streaming IPs (edge arrays) buried in per-vertex irregular
// accesses (property arrays), with genuine data-dependent serialization.
package gap

import (
	"math/rand"
	"sort"
)

// Graph is an immutable CSR graph.
type Graph struct {
	N       int      // vertices
	Offsets []uint32 // len N+1
	Edges   []uint32 // len M
}

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns v's adjacency slice.
func (g *Graph) Neighbors(v int) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// BuildCSR constructs a CSR graph from an edge list, sorting adjacency
// lists and removing duplicate edges (as the GAP reference builder does;
// RMAT sampling produces many duplicates, especially on hub vertices).
func BuildCSR(n int, edges [][2]uint32) *Graph {
	deg := make([]uint32, n+1)
	for _, e := range edges {
		deg[e[0]+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	adj := make([]uint32, len(edges))
	fill := make([]uint32, n)
	for _, e := range edges {
		adj[deg[e[0]]+fill[e[0]]] = e[1]
		fill[e[0]]++
	}
	// Sort and dedup per vertex, then repack.
	outOff := make([]uint32, n+1)
	outAdj := make([]uint32, 0, len(adj))
	for v := 0; v < n; v++ {
		nb := adj[deg[v]:deg[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		prevSet := false
		var prev uint32
		for _, u := range nb {
			if prevSet && u == prev {
				continue
			}
			outAdj = append(outAdj, u)
			prev, prevSet = u, true
		}
		outOff[v+1] = uint32(len(outAdj))
	}
	return &Graph{N: n, Offsets: outOff, Edges: outAdj}
}

// Kronecker generates an RMAT graph with 2^scale vertices and
// degree*2^scale directed edges (both directions added so traversals reach
// most of the graph), using the GAP generator's a/b/c parameters.
func Kronecker(scale, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := n * degree / 2
	edges := make([][2]uint32, 0, 2*m)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: nothing to set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, [2]uint32{uint32(u), uint32(v)}, [2]uint32{uint32(v), uint32(u)})
	}
	return BuildCSR(n, edges)
}

// Urand generates a uniform-random graph with 2^scale vertices and
// degree*2^scale directed edges (symmetrized).
func Urand(scale, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := n * degree / 2
	edges := make([][2]uint32, 0, 2*m)
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, [2]uint32{u, v}, [2]uint32{v, u})
	}
	return BuildCSR(n, edges)
}

// Road generates a road-network-like graph: a 2D grid with mostly local
// connectivity plus sparse shortcuts (high diameter, degree ~4).
func Road(scale int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	side := 1
	for side*side < n {
		side *= 2
	}
	n = side * side
	edges := make([][2]uint32, 0, 5*n)
	add := func(u, v int) {
		if u != v && u >= 0 && v >= 0 && u < n && v < n {
			edges = append(edges, [2]uint32{uint32(u), uint32(v)}, [2]uint32{uint32(v), uint32(u)})
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			u := y*side + x
			if x+1 < side {
				add(u, u+1)
			}
			if y+1 < side {
				add(u, u+side)
			}
		}
	}
	// Sparse shortcuts (highways).
	for i := 0; i < n/64; i++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return BuildCSR(n, edges)
}
