package gap

import (
	"testing"
	"testing/quick"

	"github.com/bertisim/berti/internal/workloads"
)

func TestBuildCSRStructure(t *testing.T) {
	g := BuildCSR(4, [][2]uint32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
	if g.N != 4 {
		t.Fatalf("N=%d", g.N)
	}
	if g.Degree(0) != 2 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("adjacency not sorted: %v", nb)
	}
}

func TestKroneckerProperties(t *testing.T) {
	g := Kronecker(10, 8, 1)
	if g.N != 1024 {
		t.Fatalf("N=%d", g.N)
	}
	if len(g.Edges) == 0 {
		t.Fatal("no edges")
	}
	// Symmetrized: every edge has its reverse.
	for v := 0; v < 64; v++ {
		for _, u := range g.Neighbors(v) {
			found := false
			for _, w := range g.Neighbors(int(u)) {
				if int(w) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no reverse", v, u)
			}
		}
	}
}

func TestKroneckerIsSkewed(t *testing.T) {
	g := Kronecker(12, 16, 2)
	maxDeg, sum := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sum / g.N
	if maxDeg < avg*8 {
		t.Fatalf("RMAT should be heavily skewed: max=%d avg=%d", maxDeg, avg)
	}
}

func TestUrandIsNotSkewed(t *testing.T) {
	g := Urand(12, 16, 3)
	maxDeg, sum := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sum / g.N
	if avg == 0 || maxDeg > avg*6 {
		t.Fatalf("urand should be near-uniform: max=%d avg=%d", maxDeg, avg)
	}
}

func TestRoadHasLowDegree(t *testing.T) {
	g := Road(12, 4)
	sum := 0
	for v := 0; v < g.N; v++ {
		sum += g.Degree(v)
	}
	if avg := float64(sum) / float64(g.N); avg > 6 {
		t.Fatalf("road average degree too high: %.1f", avg)
	}
}

// Property: CSR offsets are monotone and bounded by the edge count.
func TestCSROffsetsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g := Urand(8, 4, seed)
		for i := 0; i < g.N; i++ {
			if g.Offsets[i] > g.Offsets[i+1] {
				return false
			}
		}
		return int(g.Offsets[g.N]) == len(g.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceHasRegularAndIrregularIPs(t *testing.T) {
	w, ok := workloads.ByName("pr-kron")
	if !ok {
		t.Fatal("pr-kron not registered")
	}
	tr := w.Gen(workloads.GenConfig{MemRecords: 200000, Seed: 5})
	// The edge-scan IP must be present and sequential; the property IP
	// must be present and scattered. Skip the first chunk: PageRank
	// starts at the RMAT mega-hub, whose deduplicated neighbor list is a
	// dense prefix (gathers look sequential there).
	edgeIP := workloads.IP(202) // ipEdges
	propIP := workloads.IP(203) // ipProp
	var edgeAddrs, propAddrs []uint64
	for _, r := range tr.Records[120000:] {
		switch r.IP {
		case edgeIP:
			edgeAddrs = append(edgeAddrs, r.Addr)
		case propIP:
			propAddrs = append(propAddrs, r.Addr)
		}
	}
	if len(edgeAddrs) < 1000 || len(propAddrs) < 1000 {
		t.Fatalf("expected both IPs prominent: edges=%d props=%d", len(edgeAddrs), len(propAddrs))
	}
	monotone := 0
	for i := 1; i < len(edgeAddrs); i++ {
		if edgeAddrs[i] >= edgeAddrs[i-1] {
			monotone++
		}
	}
	if float64(monotone)/float64(len(edgeAddrs)) < 0.95 {
		t.Fatal("edge-scan IP should be near-monotone")
	}
	// RMAT hubs concentrate on low vertex ids, so many gathers are near
	// each other; still, a solid fraction must jump across lines.
	jumps := 0
	for i := 1; i < len(propAddrs); i++ {
		d := int64(propAddrs[i]) - int64(propAddrs[i-1])
		if d > 256 || d < -256 {
			jumps++
		}
	}
	if float64(jumps)/float64(len(propAddrs)) < 0.2 {
		t.Fatal("property IP should be scattered")
	}
}
