package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/obs/live"
	"github.com/bertisim/berti/internal/sim"
)

// Spec states in the lease pool. The state machine is deliberately tiny:
//
//	pending --acquire--> leased --complete/fail--> done   (terminal)
//	   ^                    |
//	   +------expire--------+
//
// done is terminal: a late completion for a reassigned spec (the original
// worker finished after its lease expired) finds the state already done
// and is deduped, so no spec is ever double-counted; an expired lease
// returns its specs to pending, so no spec is ever lost.
const (
	specPending byte = iota
	specLeased
	specDone
)

// lease is one granted batch.
type lease struct {
	id       string
	worker   string
	deadline time.Time
	// outstanding holds the batch's not-yet-finished keys; the lease is
	// discarded once it empties (nothing left to reassign).
	outstanding map[string]bool
	total       int
	// progress is the worker's last heartbeat Completed figure.
	progress int
}

// workerInfo is one registry row.
type workerInfo struct {
	firstSeen time.Time
	lastSeen  time.Time
	leases    uint64
	specsDone uint64
}

// leasePool owns the distributed work queue: which specs are waiting,
// which are out on lease to which worker, and which are finished. All
// transitions happen under one mutex — the pool is the single authority
// on spec fate, which is what makes exactly-once accounting checkable.
type leasePool struct {
	ttl  time.Duration
	hb   time.Duration
	now  func() time.Time // injectable clock for deterministic tests
	live *live.Server

	mu       sync.Mutex
	seq      uint64
	pending  []string // FIFO of candidate keys; stale (non-pending) entries skipped lazily
	pendingN int      // exact count of state==specPending keys
	state    map[string]byte
	specs    map[string]harness.RunSpec
	holder   map[string]string // leased key -> lease ID
	leases   map[string]*lease
	workers  map[string]*workerInfo
}

func newLeasePool(ttl, hb time.Duration, lv *live.Server) *leasePool {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if hb <= 0 {
		hb = ttl / 4
	}
	return &leasePool{
		ttl:     ttl,
		hb:      hb,
		now:     time.Now,
		live:    lv,
		state:   map[string]byte{},
		specs:   map[string]harness.RunSpec{},
		holder:  map[string]string{},
		leases:  map[string]*lease{},
		workers: map[string]*workerInfo{},
	}
}

// add registers specs as pending work. Keys the pool already finished are
// returned (the caller counts them complete immediately); keys already
// pending or leased are silently shared — their eventual completion
// notifies every interested campaign.
func (p *leasePool) add(specs []harness.RunSpec) (alreadyDone []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, spec := range specs {
		key := spec.Key()
		st, ok := p.state[key]
		if ok {
			if st == specDone {
				alreadyDone = append(alreadyDone, key)
			}
			continue
		}
		p.state[key] = specPending
		p.specs[key] = spec
		p.pending = append(p.pending, key)
		p.pendingN++
	}
	return alreadyDone
}

// touchWorker updates the registry under the lock.
func (p *leasePool) touchWorkerLocked(worker string) *workerInfo {
	w := p.workers[worker]
	if w == nil {
		w = &workerInfo{firstSeen: p.now()}
		p.workers[worker] = w
	}
	w.lastSeen = p.now()
	return w
}

// acquire grants up to max pending specs to worker. Returns nil when no
// work is pending.
func (p *leasePool) acquire(worker string, max int) (*lease, []harness.RunSpec) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.touchWorkerLocked(worker)
	var granted []string
	for len(granted) < max && len(p.pending) > 0 {
		key := p.pending[0]
		p.pending = p.pending[1:]
		if p.state[key] != specPending {
			continue // stale entry (completed or re-leased since queued)
		}
		granted = append(granted, key)
	}
	if len(granted) == 0 {
		return nil, nil
	}
	p.seq++
	l := &lease{
		id:          fmt.Sprintf("l%06d", p.seq),
		worker:      worker,
		deadline:    p.now().Add(p.ttl),
		outstanding: make(map[string]bool, len(granted)),
		total:       len(granted),
	}
	specs := make([]harness.RunSpec, len(granted))
	for i, key := range granted {
		p.state[key] = specLeased
		p.holder[key] = l.id
		l.outstanding[key] = true
		specs[i] = p.specs[key]
	}
	p.pendingN -= len(granted)
	p.leases[l.id] = l
	w.leases++
	if p.live != nil {
		p.live.LeaseGranted()
	}
	return l, specs
}

// heartbeat extends a lease's deadline and records progress. Returns
// false when the lease is unknown (expired and reassigned, or never
// granted) — the worker must abandon the batch.
func (p *leasePool) heartbeat(id, worker string, completed int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.touchWorkerLocked(worker)
	l, ok := p.leases[id]
	if !ok {
		return false
	}
	l.deadline = p.now().Add(p.ttl)
	if completed > l.progress {
		l.progress = completed
	}
	return true
}

// touchLease extends a lease's deadline if it still exists (a results
// push proves the worker is alive even without heartbeats).
func (p *leasePool) touchLease(id string) {
	p.mu.Lock()
	if l, ok := p.leases[id]; ok {
		l.deadline = p.now().Add(p.ttl)
	}
	p.mu.Unlock()
}

// finish transitions key to done (from any non-terminal state), detaching
// it from its holding lease. fresh reports a first completion; known
// reports whether the pool tracks the key at all. Exactly one concurrent
// caller per key ever sees fresh==true.
func (p *leasePool) finish(worker, key string) (fresh, known bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if worker != "" {
		p.touchWorkerLocked(worker)
	}
	st, ok := p.state[key]
	if !ok {
		return false, false
	}
	if st == specDone {
		return false, true
	}
	if st == specLeased {
		lid := p.holder[key]
		delete(p.holder, key)
		if l := p.leases[lid]; l != nil {
			delete(l.outstanding, key)
			if len(l.outstanding) == 0 {
				delete(p.leases, lid)
			}
		}
	} else {
		p.pendingN-- // completing straight from pending (late result after expiry)
	}
	p.state[key] = specDone
	if w := p.workers[worker]; w != nil {
		w.specsDone++
	}
	return true, true
}

// expire scans for past-deadline leases and returns their outstanding
// specs to the pending queue. Returns the number of leases expired and
// specs reassigned.
func (p *leasePool) expire() (leases, specs int) {
	p.mu.Lock()
	now := p.now()
	for id, l := range p.leases {
		if !now.After(l.deadline) {
			continue
		}
		leases++
		for key := range l.outstanding {
			delete(p.holder, key)
			p.state[key] = specPending
			p.pending = append(p.pending, key)
			p.pendingN++
			specs++
		}
		delete(p.leases, id)
	}
	p.mu.Unlock()
	if p.live != nil {
		for i := 0; i < leases; i++ {
			p.live.LeaseExpired()
		}
		if specs > 0 {
			p.live.SpecsReassigned(specs)
		}
	}
	return leases, specs
}

// gauges assembles the point-in-time fleet state for /metrics.
func (p *leasePool) gauges() live.FleetGauges {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	liveN := 0
	for _, w := range p.workers {
		if now.Sub(w.lastSeen) <= p.ttl {
			liveN++
		}
	}
	return live.FleetGauges{
		WorkersSeen:       len(p.workers),
		WorkersLive:       liveN,
		LeasesOutstanding: len(p.leases),
		SpecsPending:      p.pendingN,
	}
}

// workerStatuses assembles the registry rows, sorted by worker ID.
func (p *leasePool) workerStatuses() []WorkerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	out := make([]WorkerStatus, 0, len(p.workers))
	for id, w := range p.workers {
		out = append(out, WorkerStatus{
			Worker:            id,
			Live:              now.Sub(w.lastSeen) <= p.ttl,
			LastSeenAgoMillis: now.Sub(w.lastSeen).Milliseconds(),
			LeasesAcquired:    w.leases,
			SpecsCompleted:    w.specsDone,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// ---- coordinator-side completion paths ----

// acceptEntry lands one pushed result: the pool decides its fate (the
// single authority on first-vs-duplicate), and only a first completion
// touches the store, the memo cache, the journals, and the campaign
// counters. Returns "accepted", "duplicate", or "unknown".
func (s *Server) acceptEntry(worker, key string, r *sim.Result) string {
	fresh, known := s.pool.finish(worker, key)
	if fresh {
		if err := s.store.Put(key, r); err != nil {
			s.logf("server: result store: %v", err)
		}
		s.h.SeedResult(key, r)
		s.live.RunCompleted()
		s.live.RemoteResult()
		s.mu.Lock()
		var interested []*campaignState
		for _, c := range s.campaigns {
			if c.keys[key] {
				interested = append(interested, c)
			}
		}
		delete(s.pending, key)
		s.mu.Unlock()
		for _, c := range interested {
			_ = c.journal.Append(key, r)
			c.noteKeyDone(key)
		}
		return "accepted"
	}
	if known {
		s.live.DuplicateResult()
		return "duplicate"
	}
	// The pool never tracked this key in this daemon life; if it is already
	// finished in the memo cache or the store (done before a restart, or
	// executed locally), the push is a late duplicate, otherwise it is
	// work the coordinator never issued.
	if _, ok := s.h.ResultFor(key); ok {
		s.live.DuplicateResult()
		return "duplicate"
	}
	if _, ok := s.store.Get(key); ok {
		s.live.DuplicateResult()
		return "duplicate"
	}
	s.live.UnknownResult()
	return "unknown"
}

// acceptFailure lands one pushed failure. Failures are terminal for this
// daemon life (like the harness's error memoization) but are not
// persisted, so they re-execute after a restart — same policy as local
// mode.
func (s *Server) acceptFailure(worker, key, msg string) string {
	fresh, known := s.pool.finish(worker, key)
	if !fresh {
		if known {
			s.live.DuplicateResult()
			return "duplicate"
		}
		return "unknown"
	}
	s.live.RunFailed()
	s.mu.Lock()
	var interested []*campaignState
	for _, c := range s.campaigns {
		if c.keys[key] {
			interested = append(interested, c)
		}
	}
	delete(s.pending, key)
	s.adhocErr[key] = msg
	s.mu.Unlock()
	for _, c := range interested {
		c.noteKeyFailed(key, msg)
	}
	return "failed"
}

// expiryLoop periodically reassigns expired leases until the server
// drains. The cadence follows the heartbeat interval: expiry is detected
// within one heartbeat period of the deadline.
func (s *Server) expiryLoop() {
	defer s.workerWG.Done()
	interval := s.pool.hb
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case <-t.C:
			if n, specs := s.pool.expire(); n > 0 {
				s.logf("server: expired %d lease(s), reassigned %d spec(s)", n, specs)
			}
		}
	}
}

// ---- lease HTTP handlers ----

func (s *Server) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, errors.New("lease request needs a worker identity"))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, errors.New("daemon is draining; not granting leases"))
		return
	}
	max := req.MaxSpecs
	if max <= 0 {
		max = DefaultLeaseSpecs
	}
	if max > maxLeaseSpecs {
		max = maxLeaseSpecs
	}
	grant := &LeaseGrant{
		SchemaVersion:   APISchemaVersion,
		Scale:           s.h.Scale.Name,
		TTLMillis:       s.pool.ttl.Milliseconds(),
		HeartbeatMillis: s.pool.hb.Milliseconds(),
	}
	if l, specs := s.pool.acquire(req.Worker, max); l != nil {
		grant.ID = l.id
		grant.Specs = specs
	}
	writeJSON(w, http.StatusOK, grant)
}

func (s *Server) handleLeaseHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusGone, errors.New("daemon is draining; abandon the lease"))
		return
	}
	if !s.pool.heartbeat(id, req.Worker, req.Completed) {
		writeErr(w, http.StatusGone, fmt.Errorf("lease %s expired or unknown; its specs were reassigned", id))
		return
	}
	writeJSON(w, http.StatusOK, &HeartbeatResponse{
		SchemaVersion:  APISchemaVersion,
		State:          "ok",
		DeadlineMillis: s.pool.ttl.Milliseconds(),
	})
}

// handleLeaseResults lands a worker's push. Deliberately lenient: results
// are accepted even for an expired or unknown lease (the computation is
// real regardless of the lease's fate) and during a drain (write-through
// journals make every landed result crash-safe) — the per-entry
// accounting in the response says what actually happened.
func (s *Server) handleLeaseResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req ResultsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp := &ResultsResponse{SchemaVersion: APISchemaVersion}
	for _, e := range req.Entries {
		if e.Key == "" || e.Result == nil {
			writeErr(w, http.StatusBadRequest, errors.New("every entry needs a key and a result"))
			return
		}
	}
	for _, f := range req.Failures {
		if f.Key == "" {
			writeErr(w, http.StatusBadRequest, errors.New("every failure needs a key"))
			return
		}
	}
	for _, e := range req.Entries {
		switch s.acceptEntry(req.Worker, e.Key, e.Result) {
		case "accepted":
			resp.Accepted++
		case "duplicate":
			resp.Duplicates++
		default:
			resp.Unknown++
		}
	}
	for _, f := range req.Failures {
		switch s.acceptFailure(req.Worker, f.Key, f.Error) {
		case "failed":
			resp.Failed++
		case "duplicate":
			resp.Duplicates++
		default:
			resp.Unknown++
		}
	}
	s.pool.touchLease(id)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.workerStatuses())
}
