package server

import (
	"testing"
	"time"
)

// FuzzLeasePool drives the lease state machine with an arbitrary
// byte-encoded op sequence and asserts the never-lose / never-double-count
// contract plus the structural invariants after every op. Each byte is one
// op: the high bits select the kind, the low bits its operand, so any
// input the fuzzer invents maps to a legal interleaving of acquire /
// heartbeat / expire / finish / add.
func FuzzLeasePool(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xc0, 0x13})
	f.Add([]byte{0x01, 0x02, 0x03, 0x80, 0x81, 0x82, 0x83, 0x84})
	f.Add([]byte{0x40, 0xc1, 0x40, 0xc1, 0x40, 0xc1})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x20, 0xa0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		p, clk := newFakePool(time.Second)
		specs := poolSpecs(12)
		p.add(specs)
		keys := make([]string, len(specs))
		for i, s := range specs {
			keys[i] = s.Key()
		}
		workers := []string{"fa", "fb"}
		var leaseIDs []string
		freshCount := map[string]int{}

		finish := func(worker, key string) {
			fresh, known := p.finish(worker, key)
			if !known {
				t.Fatalf("pool forgot key %q", key)
			}
			if fresh {
				if freshCount[key]++; freshCount[key] > 1 {
					t.Fatalf("key %q first-completed twice", key)
				}
			}
		}

		for _, op := range ops {
			kind, arg := op>>6, int(op&0x3f)
			switch kind {
			case 0: // acquire
				if l, _ := p.acquire(workers[arg%2], 1+arg%6); l != nil {
					leaseIDs = append(leaseIDs, l.id)
				}
			case 1: // heartbeat an arbitrary past lease (possibly dead)
				if len(leaseIDs) > 0 {
					p.heartbeat(leaseIDs[arg%len(leaseIDs)], workers[arg%2], arg)
				}
			case 2: // advance time and expire
				clk.advance(time.Duration(arg) * 50 * time.Millisecond)
				p.expire()
			case 3: // finish (duplicates and late results included)
				finish(workers[arg%2], keys[arg%len(keys)])
			}
			checkPoolInvariants(t, p)
		}
		// Re-adding the same specs must report exactly the finished ones as
		// already done and never resurrect them.
		already := p.add(specs)
		if len(already) != len(freshCount) {
			t.Fatalf("re-add reported %d done keys, %d were finished", len(already), len(freshCount))
		}
		// Drain to completion: every key ends done, first-completed once.
		for _, key := range keys {
			finish("fa", key)
		}
		for _, key := range keys {
			if freshCount[key] != 1 {
				t.Fatalf("key %q first-completed %d times, want exactly 1", key, freshCount[key])
			}
		}
		if g := p.gauges(); g.SpecsPending != 0 || g.LeasesOutstanding != 0 {
			t.Fatalf("after drain: %+v", g)
		}
	})
}
