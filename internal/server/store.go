// Package server turns the simulator's campaign machinery into a
// long-running multi-user service: an HTTP/JSON API to submit experiment
// specs, a sharded work queue fanning runs across the harness's bounded
// worker pool, per-campaign append-only journals for crash-safe resume,
// and content-addressed result storage keyed by the harness memo key so
// identical specs dedupe across campaigns, across clients, and across
// daemon restarts. See DESIGN.md §14.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/sim"
)

// Store is the content-addressed result store: one JSON file per completed
// run, named by the SHA-256 of the harness memo key (keys contain
// filesystem-hostile characters; the hash is the address, the stored key
// is the proof). Writes are atomic (temp file + rename) and idempotent —
// concurrent Puts of the same key write identical bytes, so whichever
// rename lands last changes nothing. All methods are safe for concurrent
// use from harness workers.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a result store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: result store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a memo key to its content address.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Put persists one completed run. Existing entries are left untouched (the
// content address already holds this result).
func (s *Store) Put(key string, r *sim.Result) error {
	if r == nil {
		return nil
	}
	path := s.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	body, err := json.Marshal(campaign.Entry{Key: key, Result: r})
	if err != nil {
		return fmt.Errorf("server: result store: encode %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("server: result store: %w", err)
	}
	_, werr := tmp.Write(body)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: result store: write %q: %w", key, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: result store: %w", err)
	}
	return nil
}

// Get loads the stored result for key. A missing, unreadable, or damaged
// entry (including a hash collision's mismatched key) reports !ok — the
// run simply re-executes, the store is a cache, not a ledger.
func (s *Store) Get(key string) (*sim.Result, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var e campaign.Entry
	if json.Unmarshal(data, &e) != nil || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// Len counts the stored results (a startup log line, not a hot path).
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range entries {
		if !de.IsDir() && filepath.Ext(de.Name()) == ".json" {
			n++
		}
	}
	return n
}
