package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/obs/live"
)

// chaosSpecs is the distributed acceptance sweep: big enough that one
// worker cannot finish it before being killed.
func chaosSpecs() []harness.RunSpec {
	return []harness.RunSpec{
		{Workload: "mcf_like_1554", L1DPf: "ip-stride"},
		{Workload: "mcf_like_1554", L1DPf: "next-line"},
		{Workload: "roms_like", L1DPf: "ip-stride"},
		{Workload: "roms_like", L1DPf: "next-line"},
		{Workload: "lbm_like", L1DPf: "ip-stride"},
		{Workload: "lbm_like", L1DPf: "next-line"},
	}
}

// pathBlocker fails every request whose path contains substr — the
// "partitioned worker" transport: heartbeats get through, results do not.
type pathBlocker struct {
	base    http.RoundTripper
	substr  string
	blocked atomic.Int64
}

func (b *pathBlocker) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.Contains(req.URL.Path, b.substr) {
		b.blocked.Add(1)
		return nil, fmt.Errorf("chaos test: partition blocks %s", req.URL.Path)
	}
	return b.base.RoundTrip(req)
}

// TestLeaseChaosLostWorkerByteIdentical is the tentpole acceptance test,
// in-process: a campaign distributed over three workers — one killed
// mid-batch while partitioned from the results endpoint, one running
// behind a seeded fault injector that drops/delays/duplicates requests —
// must finish with a report byte-identical to a local-execution daemon's,
// with lease expiry, spec reassignment, and duplicate dedup all observed
// in the fleet metrics.
func TestLeaseChaosLostWorkerByteIdentical(t *testing.T) {
	ctx := testCtx(t)
	specs := chaosSpecs()

	// Reference: the same sweep on a plain local-execution daemon.
	refS, _ := newTestServer(t, t.TempDir())
	refTS := httptest.NewServer(refS.Handler())
	defer refTS.Close()
	refCl := NewClient(refTS.URL)
	refAck, err := refCl.Submit(ctx, "chaos", specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refCl.WaitCampaign(ctx, refAck.ID); err != nil {
		t.Fatal(err)
	}
	want, err := refCl.Report(ctx, refAck.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos coordinator: lease-only, fast TTL so the test observes expiry.
	h := harness.New(srvScale)
	s, err := New(Options{
		Harness: h, DataDir: t.TempDir(), Logf: t.Logf,
		LeaseOnly: true, LeaseTTL: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)

	ack, err := cl.Submit(ctx, "chaos", specs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != refAck.ID {
		t.Fatalf("same sweep, different campaign IDs: %q vs %q", ack.ID, refAck.ID)
	}

	// Victim: grabs the whole batch, heartbeats fine, but a partition
	// blocks its results pushes. It will compute work it can never land.
	victimCl := NewClient(ts.URL)
	victimCl.SetTransport(&pathBlocker{base: http.DefaultTransport, substr: "/results"})
	victimCl.Retry = harness.RetryPolicy{MaxAttempts: 2, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	vctx, vcancel := context.WithCancel(ctx)
	victim := &Worker{
		ID: "victim", Client: victimCl, Harness: harness.New(srvScale),
		MaxSpecs: 64, PollInterval: 20 * time.Millisecond, Logf: t.Logf,
	}
	victimDone := make(chan error, 1)
	go func() { victimDone <- victim.Run(vctx) }()

	// Wait for the victim to hold the lease, then SIGKILL-equivalent: stop
	// the process outright, mid-batch, heartbeats and all.
	for {
		s.pool.mu.Lock()
		granted := s.pool.seq > 0
		s.pool.mu.Unlock()
		if granted {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("victim never acquired a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	vcancel()
	if err := <-victimDone; err != nil {
		t.Fatalf("victim exit: %v", err)
	}

	// Two healthy workers finish the job; one runs behind the seeded
	// network-fault injector (drops, delays, duplicated requests).
	faultyCl := NewClient(ts.URL)
	plan := &fault.NetPlan{Seed: 7, DropRate: 0.15, DelayRate: 0.3, Delay: 5 * time.Millisecond, DupRate: 0.2}
	faultyCl.SetTransport(plan.Transport(nil))
	faultyCl.Retry = harness.RetryPolicy{MaxAttempts: 6, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 25 * time.Millisecond}
	for i, c := range []*Client{faultyCl, NewClient(ts.URL)} {
		w := &Worker{
			ID: fmt.Sprintf("healthy-%d", i), Client: c, Harness: harness.New(srvScale),
			MaxSpecs: 2, PollInterval: 20 * time.Millisecond, Logf: t.Logf,
		}
		wctx, wcancel := context.WithCancel(ctx)
		t.Cleanup(wcancel)
		go func() {
			if err := w.Run(wctx); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}

	st, err := cl.WaitCampaign(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Completed != len(specs) || st.Failed != 0 {
		t.Fatalf("chaos campaign finished as %+v, want done %d/%d", st, len(specs), len(specs))
	}
	got, err := cl.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos report differs from local-execution report (%d vs %d bytes)", len(got), len(want))
	}

	// Deterministic late duplicate: replay a finished entry against the
	// victim's long-dead lease. It must be accepted-and-deduped and leave
	// the report untouched.
	var rep Report
	if err := json.Unmarshal(got, &rep); err != nil {
		t.Fatal(err)
	}
	rr, err := cl.PushResults(ctx, "l000001", "victim",
		[]campaign.Entry{{Key: rep.Runs[0].Key, Result: rep.Runs[0].Result}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != 0 || rr.Duplicates != 1 {
		t.Fatalf("late replay: %+v, want 1 duplicate", rr)
	}
	again, err := cl.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("late duplicate changed the report")
	}

	// The failure story must be visible in the fleet metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap live.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fl := snap.Fleet
	if fl.LeasesExpired < 1 {
		t.Fatalf("fleet metrics: %+v, want at least one expired lease", fl)
	}
	if fl.SpecsReassigned < 1 {
		t.Fatalf("fleet metrics: %+v, want reassigned specs", fl)
	}
	if fl.DuplicateResults < 1 {
		t.Fatalf("fleet metrics: %+v, want deduped duplicates", fl)
	}
	if fl.RemoteResults < uint64(len(specs)) {
		t.Fatalf("fleet metrics: %+v, want every spec landed remotely", fl)
	}
	if fl.WorkersSeen < 3 {
		t.Fatalf("fleet metrics: %+v, want all three workers registered", fl)
	}
}
