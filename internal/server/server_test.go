package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

// srvScale keeps server tests fast (the harness tiers are exercised
// elsewhere; here the simulations are just real-enough payloads).
var srvScale = harness.Scale{Name: "srv-test", MemRecords: 30_000, WarmupInstr: 20_000, SimInstr: 50_000, Mixes: 2}

func srvSpecs() []harness.RunSpec {
	return []harness.RunSpec{
		{Workload: "mcf_like_1554", L1DPf: "ip-stride"},
		{Workload: "mcf_like_1554", L1DPf: "next-line"},
		{Workload: "roms_like", L1DPf: "ip-stride"},
	}
}

// newTestServer builds a server over a fresh harness and data dir and
// registers cleanup. Tests that restart the daemon call New directly.
func newTestServer(t *testing.T, dataDir string) (*Server, *harness.Harness) {
	t.Helper()
	h := harness.New(srvScale)
	s, err := New(Options{Harness: h, DataDir: dataDir, Shards: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s, h
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// TestCampaignLifecycle drives the full happy path over real HTTP: submit,
// watch status converge, and fetch a deterministic report — two fetches of
// the same finished campaign must be byte-identical, and a duplicate
// submission must attach to the existing campaign instead of re-running.
func TestCampaignLifecycle(t *testing.T) {
	s, _ := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := testCtx(t)

	ack, err := cl.Submit(ctx, "lifecycle", srvSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if ack.Existing || ack.Total != 3 {
		t.Fatalf("first submit: existing=%v total=%d, want fresh total 3", ack.Existing, ack.Total)
	}
	st, err := cl.WaitCampaign(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Completed != 3 || st.Failed != 0 {
		t.Fatalf("campaign finished as %+v, want done 3/3", st)
	}

	rep1, err := cl.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := cl.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("two report fetches of the same campaign differ")
	}
	var rep Report
	if err := json.Unmarshal(rep1, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 || rep.ID != ack.ID {
		t.Fatalf("report holds %d runs for %q, want 3 for %q", len(rep.Runs), rep.ID, ack.ID)
	}
	for i := 1; i < len(rep.Runs); i++ {
		if rep.Runs[i-1].Key >= rep.Runs[i].Key {
			t.Fatalf("report runs not sorted by key: %q then %q", rep.Runs[i-1].Key, rep.Runs[i].Key)
		}
	}

	// Resubmitting the identical sweep (shuffled, with a duplicate) joins
	// the finished campaign.
	specs := srvSpecs()
	specs = append([]harness.RunSpec{specs[2], specs[0], specs[1]}, specs[0])
	again, err := cl.Submit(ctx, "lifecycle-again", specs)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Existing || again.ID != ack.ID {
		t.Fatalf("identical resubmit: existing=%v id=%q, want existing id %q", again.Existing, again.ID, ack.ID)
	}
}

// TestConcurrentDuplicateSubmission is the dedup contract: two clients
// POSTing the same spec set simultaneously share one campaign, and every
// unique spec executes exactly once — OnResult (counted per key under
// -race) must never fire twice for one key.
func TestConcurrentDuplicateSubmission(t *testing.T) {
	s, h := newTestServer(t, t.TempDir())
	var mu sync.Mutex
	perKey := map[string]int{}
	prev := h.OnResult
	h.OnResult = func(key string, spec harness.RunSpec, r *sim.Result) {
		mu.Lock()
		perKey[key]++
		mu.Unlock()
		prev(key, spec, r)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := testCtx(t)

	const clients = 4
	acks := make([]*SubmitResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acks[i], errs[i] = NewClient(ts.URL).Submit(ctx, "dup", srvSpecs())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if acks[i].ID != acks[0].ID {
			t.Fatalf("clients landed on different campaigns: %q vs %q", acks[i].ID, acks[0].ID)
		}
	}
	if _, err := NewClient(ts.URL).WaitCampaign(ctx, acks[0].ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(perKey) != 3 {
		t.Fatalf("OnResult saw %d distinct keys, want 3: %v", len(perKey), perKey)
	}
	for k, n := range perKey {
		if n != 1 {
			t.Fatalf("spec %q executed %d times, want exactly once", k, n)
		}
	}
}

// TestRestartResumesCampaign is the crash-resume contract in-process: a
// campaign interrupted by a drain (standing in for SIGKILL — the journals
// are write-through, so the drain adds nothing they need) must resume on a
// fresh daemon over the same data dir and finish with a report
// byte-identical to an uninterrupted run of the same sweep.
func TestRestartResumesCampaign(t *testing.T) {
	dataDir := t.TempDir()
	ctx := testCtx(t)

	// Reference: the same sweep run uninterrupted on a separate data dir.
	ref, _ := newTestServer(t, t.TempDir())
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	refCl := NewClient(refTS.URL)
	refAck, err := refCl.Submit(ctx, "resume", srvSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refCl.WaitCampaign(ctx, refAck.ID); err != nil {
		t.Fatal(err)
	}
	want, err := refCl.Report(ctx, refAck.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Life 1: serialize the pool so the campaign cannot finish instantly,
	// submit, wait for the first journaled completion, then tear down with
	// work still pending.
	h1 := harness.New(srvScale)
	h1.Workers = 1
	s1, err := New(Options{Harness: h1, DataDir: dataDir, Shards: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var first atomic.Int32
	prev := h1.OnResult
	h1.OnResult = func(key string, spec harness.RunSpec, r *sim.Result) {
		prev(key, spec, r)
		first.Add(1)
	}
	ts1 := httptest.NewServer(s1.Handler())
	cl1 := NewClient(ts1.URL)
	ack, err := cl1.Submit(ctx, "resume", srvSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != refAck.ID {
		t.Fatalf("same sweep produced different campaign IDs: %q vs %q", ack.ID, refAck.ID)
	}
	for first.Load() == 0 {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for the first completion")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s1.Drain()
	ts1.Close()
	if st, err := cl1WaitlessStatus(s1, ack.ID); err == nil && st.Completed == st.Total {
		t.Skip("campaign finished before the drain landed; nothing to resume")
	}

	// Life 2: a fresh daemon over the same data dir must recover the
	// campaign from manifest+journal+store and finish it.
	h2 := harness.New(srvScale)
	s2, err := New(Options{Harness: h2, DataDir: dataDir, Shards: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Drain)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	cl2 := NewClient(ts2.URL)
	st, err := cl2.WaitCampaign(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Completed != 3 {
		t.Fatalf("resumed campaign finished as %+v, want done 3/3", st)
	}
	got, err := cl2.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted report:\nresumed:\n%s\nuninterrupted:\n%s", got, want)
	}
}

// cl1WaitlessStatus peeks at a campaign's status without HTTP (the test
// server may already be closed).
func cl1WaitlessStatus(s *Server, id string) (*CampaignStatus, error) {
	c, ok := s.campaignByID(id)
	if !ok {
		return nil, errors.New("unknown campaign")
	}
	return c.status(), nil
}

// TestRemoteHarnessThinClient wires a second, client-side harness to the
// daemon through Harness.Remote: runs execute on the daemon, memoize on
// the client, and concurrent duplicate client calls still collapse.
func TestRemoteHarnessThinClient(t *testing.T) {
	s, _ := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	cl.PollInterval = 20 * time.Millisecond

	local := harness.New(srvScale)
	local.Remote = cl.Run
	var fired atomic.Int32
	local.OnResult = func(string, harness.RunSpec, *sim.Result) { fired.Add(1) }

	spec := harness.RunSpec{Workload: "mcf_like_1554", L1DPf: "berti"}
	out, err := local.RunMany([]harness.RunSpec{spec, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] == nil || out[0] != out[1] || out[1] != out[2] {
		t.Fatalf("thin-client duplicates did not share one result: %v", out)
	}
	if n := fired.Load(); n != 1 {
		t.Fatalf("client-side OnResult fired %d times, want 1", n)
	}
	if out[0].IPC() <= 0 {
		t.Fatalf("remote result has non-positive IPC: %v", out[0].IPC())
	}
	// The daemon now owns the result; a fresh client harness gets it from
	// the store without a re-run (state "done" on first poll).
	st, err := cl.postRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("daemon state for completed spec = %q, want done", st.State)
	}
}

// TestSubmitValidation: invalid specs are rejected with the typed field
// breakdown, rehydrated client-side as *harness.SpecError.
func TestSubmitValidation(t *testing.T) {
	s, _ := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := testCtx(t)

	_, err := cl.Submit(ctx, "bad", []harness.RunSpec{{Workload: "no_such_workload", L1DPf: "berti"}})
	var se *harness.SpecError
	if !errors.As(err, &se) {
		t.Fatalf("invalid workload: got %v, want *harness.SpecError", err)
	}
	if se.Field != "Workload" || se.Name != "no_such_workload" {
		t.Fatalf("SpecError = %+v, want Field=Workload Name=no_such_workload", se)
	}

	_, err = cl.Submit(ctx, "bad", []harness.RunSpec{{Workload: "mcf_like_1554", L1DPf: "definitely-not-a-prefetcher"}})
	if !errors.As(err, &se) || se.Field != "L1DPf" {
		t.Fatalf("invalid prefetcher: got %v, want SpecError on L1DPf", err)
	}

	if _, err := cl.Submit(ctx, "empty", nil); err == nil || !strings.Contains(err.Error(), "at least one spec") {
		t.Fatalf("empty submit: got %v, want at-least-one-spec error", err)
	}

	if _, err := cl.Status(ctx, "0000000000000000"); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("unknown campaign: got %v", err)
	}
}

// TestDrainRejectsNewWork: a draining daemon answers health with
// "draining" and turns away new campaigns with 503.
func TestDrainRejectsNewWork(t *testing.T) {
	s, _ := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Drain()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.State != "draining" {
		t.Fatalf("health state = %q, want draining", health.State)
	}

	_, err = NewClient(ts.URL).Submit(context.Background(), "late", srvSpecs())
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("submit while draining: got %v, want draining rejection", err)
	}
}

// TestStoreRoundTrip: the content-addressed store is idempotent, collision
// -checked, and treats damage as a miss.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := harness.New(srvScale)
	spec := harness.RunSpec{Workload: "mcf_like_1554", L1DPf: "next-line"}
	r, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := spec.Key()
	if err := st.Put(key, r); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key, r); err != nil {
		t.Fatalf("second Put must be a no-op, got %v", err)
	}
	got, ok := st.Get(key)
	if !ok {
		t.Fatal("Get missed a stored key")
	}
	a, _ := json.Marshal(r)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatal("stored result does not round-trip")
	}
	if _, ok := st.Get("w=never|mix=[]|l1=|l2=|dram=|seed=0"); ok {
		t.Fatal("Get invented a result for an unknown key")
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", st.Len())
	}
	// Damage the entry on disk: Get must report a miss, not garbage.
	if err := writeGarbage(st.path(key)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("Get returned a damaged entry")
	}
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("{ damaged"), 0o644)
}
