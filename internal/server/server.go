package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/obs/live"
	"github.com/bertisim/berti/internal/sim"
)

// APISchemaVersion governs every JSON document the HTTP API serves.
const APISchemaVersion = 1

// ReportSchemaVersion governs the campaign report document. It matches the
// cmd/experiments -json-out shape (schema, scale, runs sorted by key) with
// the campaign identity added.
const ReportSchemaVersion = 1

// DefaultShards is the work-queue shard count when Options leaves it zero.
// Shards give cross-campaign fairness — a huge campaign's batches
// interleave with a small one's — while the harness's global worker
// semaphore keeps total simulation concurrency bounded regardless of how
// many shards drain at once.
const DefaultShards = 4

// batchSize bounds the specs per queue batch. Small batches keep shards
// preemptible: a later campaign's first batch starts after at most one
// batch of an earlier campaign, not after the whole campaign.
const batchSize = 8

// shardBacklog bounds each shard's queued batches before dispatchers block.
const shardBacklog = 256

// Options configures a Server.
type Options struct {
	// Harness executes the runs (required). The server owns its OnResult
	// hook and its base context; do not install either elsewhere.
	Harness *harness.Harness
	// DataDir is the daemon's state root (required): per-campaign journals
	// and manifests live in DataDir/campaigns, the content-addressed result
	// store in DataDir/results.
	DataDir string
	// Shards is the work-queue shard count (DefaultShards if 0).
	Shards int
	// Live receives run counters and serves /metrics; a listener-less one
	// is created when nil.
	Live *live.Server
	// Logf sinks operational log lines (log.Printf when nil).
	Logf func(format string, args ...any)
	// LeaseOnly switches execution to the distributed worker protocol:
	// campaign and ad-hoc specs go to the lease pool for bertiworker
	// processes to pull, instead of the local shard queue. The lease
	// endpoints are served either way (a local daemon simply never has
	// pending pool work).
	LeaseOnly bool
	// LeaseTTL is how long a lease survives without a heartbeat or a
	// results push before its specs are reassigned (DefaultLeaseTTL if 0).
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence suggested to workers and the expiry
	// scan period (LeaseTTL/4 if 0).
	HeartbeatInterval time.Duration
}

// batch is one unit of queued work: a slice of specs bound for
// RunManyContext, attributed to a campaign (nil for ad-hoc single runs).
type batch struct {
	camp  *campaignState
	specs []harness.RunSpec
}

// Server is the campaign service: it admits experiment specs over HTTP,
// dedupes them against everything ever computed (memo cache, result store,
// in-flight single-flight), fans fresh work across a sharded queue, and
// journals every completion so a killed daemon resumes every in-flight
// campaign on restart.
type Server struct {
	h         *harness.Harness
	live      *live.Server
	store     *Store
	campDir   string
	logf      func(string, ...any)
	mux       *http.ServeMux
	pool      *leasePool
	leaseOnly bool

	runCtx     context.Context
	cancelRuns context.CancelFunc
	shards     []chan batch
	workerWG   sync.WaitGroup
	dispatchWG sync.WaitGroup
	drainOnce  sync.Once

	mu        sync.Mutex
	campaigns map[string]*campaignState
	pending   map[string]bool   // ad-hoc run keys queued but not finished
	adhocErr  map[string]string // ad-hoc run keys that failed (memoized error text)
	draining  bool
}

// New builds the server: opens the result store, recovers every on-disk
// campaign (journals seeded, unfinished specs re-enqueued), and starts the
// shard workers. Mount Handler on an HTTP listener to serve it.
func New(opts Options) (*Server, error) {
	if opts.Harness == nil {
		return nil, errors.New("server: Options.Harness is required")
	}
	if opts.DataDir == "" {
		return nil, errors.New("server: Options.DataDir is required")
	}
	store, err := NewStore(filepath.Join(opts.DataDir, "results"))
	if err != nil {
		return nil, err
	}
	campDir := filepath.Join(opts.DataDir, "campaigns")
	if err := os.MkdirAll(campDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	lv := opts.Live
	if lv == nil {
		lv = live.NewServer()
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		h:         opts.Harness,
		live:      lv,
		store:     store,
		campDir:   campDir,
		logf:      logf,
		leaseOnly: opts.LeaseOnly,
		campaigns: map[string]*campaignState{},
		pending:   map[string]bool{},
		adhocErr:  map[string]string{},
	}
	s.pool = newLeasePool(opts.LeaseTTL, opts.HeartbeatInterval, lv)
	lv.SetFleetGauges(s.pool.gauges)
	s.runCtx, s.cancelRuns = context.WithCancel(context.Background())
	s.h.SetContext(s.runCtx)
	s.h.OnResult = s.onResult
	s.shards = make([]chan batch, nshards)
	for i := range s.shards {
		s.shards[i] = make(chan batch, shardBacklog)
	}
	s.buildMux()
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := range s.shards {
		s.workerWG.Add(1)
		go s.shardWorker(s.shards[i])
	}
	s.workerWG.Add(1)
	go s.expiryLoop()
	return s, nil
}

// onResult is the harness completion hook: persist to the store, bump live
// metrics, and journal into every active campaign that contains the key.
// Journal.Append dedupes re-completions; its first write error is retained
// on the journal and reported at status time rather than aborting runs.
func (s *Server) onResult(key string, _ harness.RunSpec, r *sim.Result) {
	if err := s.store.Put(key, r); err != nil {
		s.logf("server: result store: %v", err)
	}
	s.live.RunCompleted()
	s.mu.Lock()
	var interested []*campaignState
	for _, c := range s.campaigns {
		if c.keys[key] {
			interested = append(interested, c)
		}
	}
	s.mu.Unlock()
	for _, c := range interested {
		_ = c.journal.Append(key, r)
	}
}

// recover rebuilds every on-disk campaign after a restart: journals are
// scanned (torn tails repaired), their entries and the result store seed
// the memo cache, and whatever is still unfinished re-enters the queue.
func (s *Server) recover() error {
	scanned, err := campaign.ScanDir(s.campDir)
	if err != nil {
		return fmt.Errorf("server: scanning %s: %w", s.campDir, err)
	}
	for _, e := range scanned {
		if e.Err != nil {
			s.logf("server: skipping campaign %s: %v", e.ID, e.Err)
			continue
		}
		m, err := readManifest(filepath.Join(s.campDir, e.ID+ManifestExt))
		if err != nil {
			s.logf("server: skipping campaign %s: no usable manifest: %v", e.ID, err)
			continue
		}
		if e.Journal.Scale() != s.h.Scale {
			s.logf("server: skipping campaign %s: journal scale %q, daemon runs %q",
				e.ID, e.Journal.Scale().Name, s.h.Scale.Name)
			continue
		}
		if d := e.Journal.Dropped(); d > 0 {
			s.logf("server: campaign %s: truncated %d damaged tail record(s); those runs re-execute", e.ID, d)
		}
		c := newCampaignState(m.ID, m.Name, m.Specs, e.Journal)
		e.Journal.Seed(s.h)
		s.mu.Lock()
		s.campaigns[c.id] = c
		s.mu.Unlock()
		s.enqueue(c)
		s.logf("server: resumed campaign %s (%d specs, %d already complete)", c.id, len(c.specs), c.status().Completed)
	}
	return nil
}

// enqueue seeds c's specs from the result store, counts what is already
// complete, and dispatches the remainder — to the lease pool in
// lease-only mode, across the shards otherwise. Safe to call exactly once
// per campaignState. Counters were initialised pessimistically at
// construction (everything remaining), so a remote completion racing this
// call is safe: noteKeyDone dedupes per key via the campaign's done set.
func (s *Server) enqueue(c *campaignState) {
	var todo []harness.RunSpec
	var doneKeys []string
	for _, spec := range c.specs {
		key := spec.Key()
		if _, ok := s.h.ResultFor(key); ok {
			doneKeys = append(doneKeys, key)
			continue
		}
		if r, ok := s.store.Get(key); ok {
			s.h.SeedResult(key, r)
			doneKeys = append(doneKeys, key)
			continue
		}
		todo = append(todo, spec)
	}
	if s.leaseOnly {
		doneKeys = append(doneKeys, s.pool.add(todo)...)
	}
	for _, k := range doneKeys {
		c.noteKeyDone(k)
	}
	if s.leaseOnly || len(todo) == 0 {
		return
	}
	perShard := make([][]harness.RunSpec, len(s.shards))
	for _, spec := range todo {
		i := s.shardOf(spec.Key())
		perShard[i] = append(perShard[i], spec)
	}
	// The Add must be ordered against Drain's Wait by s.mu: a drain that
	// already started owns the queue's lifecycle, and this campaign's
	// remainder resumes on the next daemon life instead.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.dispatchWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.dispatchWG.Done()
		for i, specs := range perShard {
			for len(specs) > 0 {
				n := batchSize
				if n > len(specs) {
					n = len(specs)
				}
				s.shards[i] <- batch{camp: c, specs: specs[:n]}
				specs = specs[n:]
			}
		}
	}()
}

// shardOf maps a memo key to its queue shard.
func (s *Server) shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// shardWorker drains one shard: each batch runs on the harness pool (the
// global worker semaphore bounds real concurrency) and its outcome feeds
// the owning campaign's counters. Cancelled specs stay unfinished — the
// journal-plus-manifest pair resumes them after restart.
func (s *Server) shardWorker(ch chan batch) {
	defer s.workerWG.Done()
	for b := range ch {
		out, err := s.h.RunManyContext(s.runCtx, b.specs)
		completed := 0
		for _, r := range out {
			if r != nil {
				completed++
			}
		}
		var failed []failedRun
		cancelled := 0
		var rf *harness.RunFailures
		if errors.As(err, &rf) {
			for _, f := range rf.Failed {
				failed = append(failed, failedRun{Key: f.Spec.Key(), Error: f.Error()})
				s.live.RunFailed()
			}
			cancelled = len(rf.Cancelled)
		} else if err != nil {
			s.logf("server: batch failed: %v", err)
		}
		if b.camp != nil {
			b.camp.noteBatch(completed, failed, cancelled)
		} else {
			s.noteAdhoc(b.specs, failed)
		}
	}
}

// noteAdhoc clears finished ad-hoc keys and records their failures.
func (s *Server) noteAdhoc(specs []harness.RunSpec, failed []failedRun) {
	s.mu.Lock()
	for _, spec := range specs {
		delete(s.pending, spec.Key())
	}
	for _, f := range failed {
		s.adhocErr[f.Key] = f.Error
	}
	s.mu.Unlock()
}

// Drain stops the service gracefully: new submissions get 503, the queue
// context is cancelled so in-flight simulations stop cooperatively at the
// engine's next poll stride, every completed run is already journaled and
// flushed (Journal.Append is write-through), and the shard pool exits.
// Idempotent; returns once the pool is fully drained.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.cancelRuns()
		s.dispatchWG.Wait()
		for _, ch := range s.shards {
			close(ch)
		}
		s.workerWG.Wait()
	})
}

// Close is Drain (the HTTP listener belongs to the caller).
func (s *Server) Close() error {
	s.Drain()
	return nil
}

// Handler returns the API mux:
//
//	POST /api/v1/campaigns           — submit a spec set; identical sets dedupe
//	GET  /api/v1/campaigns           — list campaign statuses
//	GET  /api/v1/campaigns/{id}      — one campaign's status
//	GET  /api/v1/campaigns/{id}/report — deterministic JSON report (done only)
//	GET  /api/v1/campaigns/{id}/stream — SSE progress stream
//	POST /api/v1/runs                — submit/poll one spec (idempotent)
//	POST /api/v1/leases              — worker acquires a batch of specs
//	POST /api/v1/leases/{id}/heartbeat — worker extends its lease
//	POST /api/v1/leases/{id}/results — worker pushes results (idempotent)
//	GET  /api/v1/workers             — worker registry
//	GET  /healthz                    — daemon state
//	GET  /metrics, /metrics/provenance, /debug/vars — the live metrics mux
func (s *Server) Handler() http.Handler { return s.mux }

// Live returns the embedded metrics server (the daemon wires provenance
// attribution through it).
func (s *Server) Live() *live.Server { return s.live }

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /api/v1/runs", s.handleRun)
	mux.HandleFunc("POST /api/v1/leases", s.handleLeaseAcquire)
	mux.HandleFunc("POST /api/v1/leases/{id}/heartbeat", s.handleLeaseHeartbeat)
	mux.HandleFunc("POST /api/v1/leases/{id}/results", s.handleLeaseResults)
	mux.HandleFunc("GET /api/v1/workers", s.handleWorkers)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.live.Mount(mux)
	s.mux = mux
}

// ---- API documents ----

// SubmitRequest is the POST /api/v1/campaigns body. Specs use the harness
// RunSpec JSON shape; duplicate keys within one submission collapse.
type SubmitRequest struct {
	Name  string            `json:"name,omitempty"`
	Specs []harness.RunSpec `json:"specs"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	// Existing reports that an identical campaign was already known (from
	// any client, or a previous daemon life); the submission attached to it
	// instead of re-running anything.
	Existing  bool   `json:"existing"`
	Total     int    `json:"total"`
	StatusURL string `json:"status_url"`
}

// CampaignStatus is the status document for one campaign.
type CampaignStatus struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Name          string `json:"name,omitempty"`
	State         string `json:"state"`
	Total         int    `json:"total"`
	Completed     int    `json:"completed"`
	Failed        int    `json:"failed"`
	Cancelled     int    `json:"cancelled"`
}

// Report is the final campaign document: every completed run sorted by
// memo key. For one campaign it is byte-identical whether the campaign ran
// uninterrupted or across any number of daemon restarts — the CI
// campaign-server job enforces exactly that.
type Report struct {
	SchemaVersion int              `json:"schema_version"`
	ID            string           `json:"id"`
	Name          string           `json:"name,omitempty"`
	Scale         harness.Scale    `json:"scale"`
	Runs          []campaign.Entry `json:"runs"`
	Failed        []failedRun      `json:"failed,omitempty"`
}

// RunStatus is the POST /api/v1/runs response: the submit call doubles as
// the poll (idempotent — the memo key is the identity).
type RunStatus struct {
	SchemaVersion int         `json:"schema_version"`
	Key           string      `json:"key"`
	State         string      `json:"state"` // "running", "done", or "failed"
	Result        *sim.Result `json:"result,omitempty"`
	Error         string      `json:"error,omitempty"`
}

// apiError is every non-2xx JSON body. Field/Name carry the typed
// *harness.SpecError breakdown for validation failures.
type apiError struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
	Name  string `json:"name,omitempty"`
}

// maxBodyBytes bounds request bodies (a full-scale sweep is well under
// this; anything bigger is a mistake or abuse).
const maxBodyBytes = 32 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	doc := apiError{Error: err.Error()}
	var se *harness.SpecError
	if errors.As(err, &se) {
		doc.Field, doc.Name = se.Field, se.Name
	}
	writeJSON(w, code, doc)
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	state := "running"
	if s.draining {
		state = "draining"
	}
	n := len(s.campaigns)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": APISchemaVersion,
		"state":          state,
		"scale":          s.h.Scale.Name,
		"campaigns":      n,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("a campaign needs at least one spec"))
		return
	}
	for i, spec := range req.Specs {
		if err := harness.ValidateSpec(spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("spec %d: %w", i, err))
			return
		}
	}
	specs := dedupeSpecs(req.Specs)
	id := CampaignID(s.h.Scale, specs)

	s.mu.Lock()
	if c, ok := s.campaigns[id]; ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, &SubmitResponse{
			SchemaVersion: APISchemaVersion,
			ID:            id,
			Existing:      true,
			Total:         len(c.specs),
			StatusURL:     "/api/v1/campaigns/" + id,
		})
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, errors.New("daemon is draining; not admitting new campaigns"))
		return
	}
	// Register under the lock so a concurrent identical submission attaches
	// to this campaign instead of racing the on-disk artifacts.
	j, err := s.createCampaignArtifacts(id, req.Name, specs)
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	c := newCampaignState(id, req.Name, specs, j)
	s.campaigns[id] = c
	s.mu.Unlock()

	s.enqueue(c)
	writeJSON(w, http.StatusAccepted, &SubmitResponse{
		SchemaVersion: APISchemaVersion,
		ID:            id,
		Total:         len(specs),
		StatusURL:     "/api/v1/campaigns/" + id,
	})
}

// createCampaignArtifacts writes the manifest and creates the journal.
// Caller holds s.mu (submission admission is serialized by design — disk
// artifacts must exist before the campaign is visible).
func (s *Server) createCampaignArtifacts(id, name string, specs []harness.RunSpec) (*campaign.Journal, error) {
	m := &Manifest{SchemaVersion: ManifestSchemaVersion, ID: id, Name: name, Scale: s.h.Scale, Specs: specs}
	if err := writeManifest(filepath.Join(s.campDir, id+ManifestExt), m); err != nil {
		return nil, fmt.Errorf("writing manifest: %w", err)
	}
	j, err := campaign.Create(filepath.Join(s.campDir, id+campaign.JournalExt), s.h.Scale)
	if err != nil {
		return nil, fmt.Errorf("creating journal: %w", err)
	}
	return j, nil
}

func (s *Server) campaignByID(id string) (*campaignState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	all := make([]*campaignState, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		all = append(all, c)
	}
	s.mu.Unlock()
	statuses := make([]*CampaignStatus, len(all))
	for i, c := range all {
		statuses[i] = c.status()
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].ID < statuses[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": APISchemaVersion,
		"campaigns":      statuses,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("unknown campaign"))
		return
	}
	st := c.status()
	if err := c.journal.Err(); err != nil {
		// Journal writes failing means the campaign is not crash-resumable;
		// surface it on every status rather than only in daemon logs.
		writeJSON(w, http.StatusOK, map[string]any{
			"schema_version": APISchemaVersion,
			"status":         st,
			"journal_error":  err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("unknown campaign"))
		return
	}
	st := c.status()
	if st.State == StateRunning {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("campaign is still %s (%d of %d complete)", st.State, st.Completed, st.Total))
		return
	}
	writeJSON(w, http.StatusOK, s.buildReport(c))
}

// buildReport assembles the deterministic report: the campaign's keys
// sorted, each resolved through the memo cache (which the journals and the
// result store seeded after any restart).
func (s *Server) buildReport(c *campaignState) *Report {
	keys := make([]string, 0, len(c.keys))
	for k := range c.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		ID:            c.id,
		Name:          c.name,
		Scale:         s.h.Scale,
		Runs:          make([]campaign.Entry, 0, len(keys)),
	}
	for _, k := range keys {
		if r, ok := s.h.ResultFor(k); ok {
			rep.Runs = append(rep.Runs, campaign.Entry{Key: k, Result: r})
		}
	}
	c.mu.Lock()
	failed := append([]failedRun(nil), c.failed...)
	c.mu.Unlock()
	sort.Slice(failed, func(i, j int) bool { return failed[i].Key < failed[j].Key })
	rep.Failed = failed
	return rep
}

// handleStream serves server-sent events: one status document per progress
// change, a final one when the campaign finishes, then the stream closes.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("unknown campaign"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	events, cancel := c.subscribe()
	defer cancel()
	send := func() bool {
		body, err := json.Marshal(c.status())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", body); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-events:
			if !send() {
				return
			}
		case <-c.done:
			send()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleRun is the single-spec endpoint behind the cmd/experiments
// -server thin-client mode. The POST is idempotent: submitting an
// already-known spec reports its current state (and result, once done), so
// the same call is both "submit" and "poll".
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec harness.RunSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	if err := harness.ValidateSpec(spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key := spec.Key()
	if res, ok := s.h.ResultFor(key); ok {
		writeJSON(w, http.StatusOK, &RunStatus{SchemaVersion: APISchemaVersion, Key: key, State: "done", Result: res})
		return
	}
	if err, ok := s.h.ErrFor(key); ok {
		writeJSON(w, http.StatusOK, &RunStatus{SchemaVersion: APISchemaVersion, Key: key, State: "failed", Error: err.Error()})
		return
	}
	if res, ok := s.store.Get(key); ok {
		s.h.SeedResult(key, res)
		writeJSON(w, http.StatusOK, &RunStatus{SchemaVersion: APISchemaVersion, Key: key, State: "done", Result: res})
		return
	}
	s.mu.Lock()
	if msg, ok := s.adhocErr[key]; ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, &RunStatus{SchemaVersion: APISchemaVersion, Key: key, State: "failed", Error: msg})
		return
	}
	if s.pending[key] {
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, &RunStatus{SchemaVersion: APISchemaVersion, Key: key, State: "running"})
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, errors.New("daemon is draining; not admitting new runs"))
		return
	}
	s.pending[key] = true
	if s.leaseOnly {
		s.mu.Unlock()
		// A worker will pull this spec; completion lands via acceptEntry,
		// which clears the pending mark.
		s.pool.add([]harness.RunSpec{spec})
		writeJSON(w, http.StatusAccepted, &RunStatus{SchemaVersion: APISchemaVersion, Key: key, State: "running"})
		return
	}
	s.dispatchWG.Add(1) // ordered against Drain's Wait by s.mu
	s.mu.Unlock()
	go func() {
		defer s.dispatchWG.Done()
		s.shards[s.shardOf(key)] <- batch{specs: []harness.RunSpec{spec}}
	}()
	writeJSON(w, http.StatusAccepted, &RunStatus{SchemaVersion: APISchemaVersion, Key: key, State: "running"})
}
