package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

// poolSpecs fabricates n distinct specs for pool-only tests (the pool
// never executes them, so only key distinctness matters).
func poolSpecs(n int) []harness.RunSpec {
	pfs := []string{"none", "next-line", "ip-stride", "berti", "stream", "sms"}
	wls := []string{"mcf_like_1554", "roms_like", "lbm_like", "gcc_like", "xz_like"}
	specs := make([]harness.RunSpec, n)
	for i := range specs {
		specs[i] = harness.RunSpec{Workload: wls[i%len(wls)], L1DPf: pfs[(i/len(wls))%len(pfs)]}
	}
	return specs
}

// fakeClock drives a leasePool deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakePool(ttl time.Duration) (*leasePool, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	p := newLeasePool(ttl, 0, nil)
	p.now = clk.now
	return p, clk
}

// checkPoolInvariants asserts the structural invariants the state machine
// promises: exact pending count, holder/lease agreement, and no key in
// two leases.
func checkPoolInvariants(t *testing.T, p *leasePool) {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	pending := 0
	for key, st := range p.state {
		switch st {
		case specPending:
			pending++
			if _, held := p.holder[key]; held {
				t.Fatalf("pending key %q has a holder", key)
			}
		case specLeased:
			lid, held := p.holder[key]
			if !held {
				t.Fatalf("leased key %q has no holder", key)
			}
			l := p.leases[lid]
			if l == nil || !l.outstanding[key] {
				t.Fatalf("leased key %q not outstanding in its lease %q", key, lid)
			}
		case specDone:
			if _, held := p.holder[key]; held {
				t.Fatalf("done key %q still has a holder", key)
			}
		}
	}
	if pending != p.pendingN {
		t.Fatalf("pendingN=%d but %d keys are pending", p.pendingN, pending)
	}
	seen := map[string]string{}
	for lid, l := range p.leases {
		if len(l.outstanding) == 0 {
			t.Fatalf("lease %q kept alive with nothing outstanding", lid)
		}
		for key := range l.outstanding {
			if other, dup := seen[key]; dup {
				t.Fatalf("key %q outstanding in leases %q and %q", key, other, lid)
			}
			seen[key] = lid
			if p.state[key] != specLeased {
				t.Fatalf("lease %q holds key %q in state %d", lid, key, p.state[key])
			}
		}
	}
}

// TestLeasePoolLifecycle walks the core path: add, acquire, heartbeat
// past the original deadline, expire a silent lease, reacquire, finish —
// and checks every counter the metrics endpoint exposes.
func TestLeasePoolLifecycle(t *testing.T) {
	p, clk := newFakePool(time.Second)
	specs := poolSpecs(5)
	if done := p.add(specs); len(done) != 0 {
		t.Fatalf("fresh add reported %v already done", done)
	}
	checkPoolInvariants(t, p)

	l, granted := p.acquire("w1", 3)
	if l == nil || len(granted) != 3 || l.worker != "w1" {
		t.Fatalf("acquire: lease %+v, %d specs", l, len(granted))
	}
	checkPoolInvariants(t, p)

	// Heartbeats extend the deadline: after two half-TTL advances with a
	// heartbeat in between, the lease must still be alive.
	clk.advance(600 * time.Millisecond)
	if !p.heartbeat(l.id, "w1", 1) {
		t.Fatal("heartbeat on a live lease refused")
	}
	clk.advance(600 * time.Millisecond)
	if n, _ := p.expire(); n != 0 {
		t.Fatalf("lease expired despite heartbeat %v before deadline", 600*time.Millisecond)
	}

	// One spec completes; the other two go silent past the TTL.
	key0 := granted[0].Key()
	if fresh, known := p.finish("w1", key0); !fresh || !known {
		t.Fatalf("first finish: fresh=%v known=%v", fresh, known)
	}
	if fresh, known := p.finish("w1", key0); fresh || !known {
		t.Fatalf("duplicate finish: fresh=%v known=%v, want deduped", fresh, known)
	}
	clk.advance(1100 * time.Millisecond)
	nl, ns := p.expire()
	if nl != 1 || ns != 2 {
		t.Fatalf("expire: %d leases / %d specs, want 1/2", nl, ns)
	}
	if p.heartbeat(l.id, "w1", 2) {
		t.Fatal("heartbeat on an expired lease accepted")
	}
	checkPoolInvariants(t, p)

	// The reassigned specs plus the two never-leased ones go to w2.
	l2, granted2 := p.acquire("w2", 64)
	if l2 == nil || len(granted2) != 4 {
		t.Fatalf("reacquire after expiry granted %d specs, want 4", len(granted2))
	}
	// A late result from w1 for a reassigned key is a first completion
	// (w1 really did compute it) and detaches it from w2's lease.
	late := granted[1].Key()
	if fresh, _ := p.finish("w1", late); !fresh {
		t.Fatal("late result for a reassigned spec not counted as first completion")
	}
	// w2 finishing the same key afterwards is the duplicate.
	if fresh, known := p.finish("w2", late); fresh || !known {
		t.Fatalf("second completion after reassignment: fresh=%v known=%v", fresh, known)
	}
	for _, spec := range granted2 {
		p.finish("w2", spec.Key())
	}
	checkPoolInvariants(t, p)

	g := p.gauges()
	if g.SpecsPending != 0 || g.LeasesOutstanding != 0 || g.WorkersSeen != 2 {
		t.Fatalf("final gauges: %+v", g)
	}
	ws := p.workerStatuses()
	if len(ws) != 2 || ws[0].Worker != "w1" || ws[1].Worker != "w2" {
		t.Fatalf("worker registry: %+v", ws)
	}
	var totalDone uint64
	for _, w := range ws {
		totalDone += w.SpecsCompleted
	}
	if totalDone != 5 {
		t.Fatalf("registry counts %d completions, want exactly 5 (one per spec)", totalDone)
	}
	if _, known := p.finish("w2", "no-such-key"); known {
		t.Fatal("finish on an unknown key claimed to know it")
	}
}

// TestLeasePoolNeverLosesOrDoubleCounts is the property test behind the
// exactly-once claim: under a seeded random interleaving of acquire /
// heartbeat / expire / finish (including duplicate and late finishes),
// every spec is first-completed exactly once and the structural
// invariants hold after every step.
func TestLeasePoolNeverLosesOrDoubleCounts(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p, clk := newFakePool(time.Second)
			specs := poolSpecs(20)
			p.add(specs)
			keys := make([]string, len(specs))
			for i, s := range specs {
				keys[i] = s.Key()
			}
			freshCount := map[string]int{}
			workers := []string{"wa", "wb", "wc"}
			var leaseIDs []string

			for step := 0; step < 600; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // acquire
					w := workers[rng.Intn(len(workers))]
					if l, _ := p.acquire(w, 1+rng.Intn(5)); l != nil {
						leaseIDs = append(leaseIDs, l.id)
					}
				case 3: // heartbeat a random (possibly dead) lease
					if len(leaseIDs) > 0 {
						p.heartbeat(leaseIDs[rng.Intn(len(leaseIDs))], workers[rng.Intn(len(workers))], rng.Intn(5))
					}
				case 4: // time passes; maybe leases expire
					clk.advance(time.Duration(rng.Intn(700)) * time.Millisecond)
					p.expire()
				default: // finish a random key — duplicates and late results included
					key := keys[rng.Intn(len(keys))]
					fresh, known := p.finish(workers[rng.Intn(len(workers))], key)
					if !known {
						t.Fatalf("step %d: pool forgot key %q", step, key)
					}
					if fresh {
						freshCount[key]++
					}
				}
				checkPoolInvariants(t, p)
			}
			// Drain: finish everything still unfinished.
			for _, key := range keys {
				if fresh, known := p.finish("wa", key); !known {
					t.Fatalf("drain: pool forgot key %q", key)
				} else if fresh {
					freshCount[key]++
				}
			}
			for _, key := range keys {
				if freshCount[key] != 1 {
					t.Fatalf("key %q first-completed %d times, want exactly 1", key, freshCount[key])
				}
			}
			if g := p.gauges(); g.SpecsPending != 0 || g.LeasesOutstanding != 0 {
				t.Fatalf("after drain: %+v", g)
			}
		})
	}
}

// newLeaseTestServer builds a lease-only coordinator over a fresh data
// dir with a fast TTL, plus its HTTP front.
func newLeaseTestServer(t *testing.T, dataDir string, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	h := harness.New(srvScale)
	s, err := New(Options{Harness: h, DataDir: dataDir, Logf: t.Logf, LeaseOnly: true, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestLeaseProtocolEndToEnd drives the wire protocol by hand (no Worker
// loop): submit a campaign to a lease-only coordinator, acquire the
// lease, push results computed on a local harness, and verify the
// campaign report equals a local-execution daemon's byte for byte. A
// replay of the same push must dedupe, not double-count.
func TestLeaseProtocolEndToEnd(t *testing.T) {
	ctx := testCtx(t)
	specs := srvSpecs()

	// Reference: local-execution daemon.
	refS, _ := newTestServer(t, t.TempDir())
	refTS := httptest.NewServer(refS.Handler())
	defer refTS.Close()
	refCl := NewClient(refTS.URL)
	refAck, err := refCl.Submit(ctx, "wire", specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refCl.WaitCampaign(ctx, refAck.ID); err != nil {
		t.Fatal(err)
	}
	want, err := refCl.Report(ctx, refAck.ID)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newLeaseTestServer(t, t.TempDir(), time.Minute)
	cl := NewClient(ts.URL)
	ack, err := cl.Submit(ctx, "wire", specs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != refAck.ID {
		t.Fatalf("same sweep, different campaign IDs: %q vs %q", ack.ID, refAck.ID)
	}
	st, err := cl.Status(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.Completed != 0 {
		t.Fatalf("lease-only campaign should wait for workers, got %+v", st)
	}

	grant, err := cl.AcquireLease(ctx, "hand-worker", 64)
	if err != nil {
		t.Fatal(err)
	}
	if grant.ID == "" || len(grant.Specs) != len(specs) || grant.Scale != srvScale.Name {
		t.Fatalf("grant: %+v", grant)
	}
	if _, err := cl.Heartbeat(ctx, grant.ID, "hand-worker", 0); err != nil {
		t.Fatal(err)
	}

	// Execute locally and push.
	wh := harness.New(srvScale)
	var entries []campaign.Entry
	for _, spec := range grant.Specs {
		r, err := wh.RunContext(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, campaign.Entry{Key: spec.Key(), Result: r})
	}
	rr, err := cl.PushResults(ctx, grant.ID, "hand-worker", entries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != len(specs) || rr.Duplicates != 0 || rr.Unknown != 0 {
		t.Fatalf("first push: %+v", rr)
	}
	// Exact replay: everything dedupes.
	rr2, err := cl.PushResults(ctx, grant.ID, "hand-worker", entries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Accepted != 0 || rr2.Duplicates != len(specs) {
		t.Fatalf("replayed push: %+v", rr2)
	}

	st, err = cl.WaitCampaign(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Completed != len(specs) {
		t.Fatalf("campaign finished as %+v", st)
	}
	got, err := cl.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("lease-mode report differs from local-execution report (%d vs %d bytes)", len(got), len(want))
	}

	ws, err := cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].Worker != "hand-worker" || ws[0].SpecsCompleted != uint64(len(specs)) {
		t.Fatalf("worker registry: %+v", ws)
	}
}

// TestAdhocRunLeaseMode covers the thin-client path through a lease-only
// coordinator: POST /api/v1/runs parks the spec in the pool, a Worker
// executes it, and the poll returns the result.
func TestAdhocRunLeaseMode(t *testing.T) {
	ctx := testCtx(t)
	_, ts := newLeaseTestServer(t, t.TempDir(), time.Minute)
	cl := NewClient(ts.URL)

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	w := &Worker{
		ID:           "adhoc-worker",
		Client:       NewClient(ts.URL),
		Harness:      harness.New(srvScale),
		PollInterval: 20 * time.Millisecond,
		Logf:         t.Logf,
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(wctx) }()

	spec := harness.RunSpec{Workload: "mcf_like_1554", L1DPf: "next-line"}
	r, err := cl.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("ad-hoc lease-mode run returned no result")
	}
	wcancel()
	if err := <-done; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}

// TestClientRetriesTransient pins the retry discipline: 5xx and transport
// errors retry with the deterministic backoff; 4xx (including 410 for a
// dead lease) surface immediately.
func TestClientRetriesTransient(t *testing.T) {
	ctx := testCtx(t)
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"hiccup"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("[]\n"))
	})
	var hbCalls atomic.Int64
	mux.HandleFunc("POST /api/v1/leases/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		hbCalls.Add(1)
		http.Error(w, `{"error":"lease gone"}`, http.StatusGone)
	})
	var badCalls atomic.Int64
	mux.HandleFunc("POST /api/v1/leases", func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		http.Error(w, `{"error":"no"}`, http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := NewClient(ts.URL)
	cl.Retry = harness.RetryPolicy{MaxAttempts: 4, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond}

	if _, err := cl.Workers(ctx); err != nil {
		t.Fatalf("two 503s then success should succeed, got %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("transient 503 retried %d times total, want 3 calls", n)
	}

	_, err := cl.Heartbeat(ctx, "l000001", "w", 0)
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("410 heartbeat: got %v, want ErrLeaseLost", err)
	}
	if n := hbCalls.Load(); n != 1 {
		t.Fatalf("permanent 410 hit the server %d times, want exactly 1", n)
	}

	if _, err := cl.AcquireLease(ctx, "w", 1); err == nil {
		t.Fatal("400 acquire should error")
	}
	if n := badCalls.Load(); n != 1 {
		t.Fatalf("permanent 400 hit the server %d times, want exactly 1", n)
	}

	// Transport-level failure against a dead server retries, then gives a
	// cancel-typed error when the context dies mid-backoff.
	dead := NewClient("http://127.0.0.1:1")
	dead.Retry = harness.RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	cctx, cancel := context.WithTimeout(ctx, 60*time.Millisecond)
	defer cancel()
	_, err = dead.Workers(cctx)
	var ce *sim.CancelError
	if err == nil {
		t.Fatal("dead server should error")
	}
	if !errors.As(err, &ce) && cctx.Err() == nil {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

// TestLeaseDrainBehaviour: a draining coordinator refuses new leases
// (503) and tells heartbeating workers to abandon their batches (410),
// but still accepts results — landed work is never thrown away.
func TestLeaseDrainBehaviour(t *testing.T) {
	ctx := testCtx(t)
	s, ts := newLeaseTestServer(t, t.TempDir(), time.Minute)
	cl := NewClient(ts.URL)
	cl.Retry = harness.RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Millisecond}

	spec := harness.RunSpec{Workload: "roms_like", L1DPf: "next-line"}
	s.pool.add([]harness.RunSpec{spec})
	grant, err := cl.AcquireLease(ctx, "drain-worker", 1)
	if err != nil || grant.ID == "" {
		t.Fatalf("pre-drain acquire: grant=%+v err=%v", grant, err)
	}
	r, err := harness.New(srvScale).RunContext(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	s.Drain()
	if _, err := cl.AcquireLease(ctx, "drain-worker", 1); err == nil {
		t.Fatal("draining coordinator granted a lease")
	}
	if _, err := cl.Heartbeat(ctx, grant.ID, "drain-worker", 0); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("draining heartbeat: got %v, want ErrLeaseLost", err)
	}
	rr, err := cl.PushResults(ctx, grant.ID, "drain-worker", []campaign.Entry{{Key: spec.Key(), Result: r}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != 1 {
		t.Fatalf("draining coordinator rejected a result: %+v", rr)
	}
}
