package server

import (
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
)

// DefaultLeaseTTL is the lease deadline when Options.LeaseTTL is zero. A
// worker that neither heartbeats nor pushes results for this long is
// presumed dead and its specs are reassigned.
const DefaultLeaseTTL = 60 * time.Second

// DefaultLeaseSpecs is the batch size granted when a lease request leaves
// MaxSpecs zero.
const DefaultLeaseSpecs = 4

// maxLeaseSpecs caps one lease's batch regardless of what the worker asks
// for: smaller batches keep reassignment cheap when a worker dies.
const maxLeaseSpecs = 64

// LeaseRequest is the POST /api/v1/leases body: a worker asking for a
// batch of specs.
type LeaseRequest struct {
	// Worker is the requester's stable identity (registry key; required).
	Worker string `json:"worker"`
	// MaxSpecs bounds the batch (DefaultLeaseSpecs when 0, capped at
	// maxLeaseSpecs).
	MaxSpecs int `json:"max_specs,omitempty"`
}

// LeaseGrant is the lease response. An empty ID means no work is pending
// right now — poll again later.
type LeaseGrant struct {
	SchemaVersion int               `json:"schema_version"`
	ID            string            `json:"id,omitempty"`
	Specs         []harness.RunSpec `json:"specs,omitempty"`
	// Scale names the coordinator's simulation scale; a worker built for a
	// different scale must refuse the grant (its memo keys would collide
	// with differently-sized runs).
	Scale string `json:"scale"`
	// TTLMillis is the lease lifetime; the worker must heartbeat (or push
	// results) within it or the specs are reassigned.
	TTLMillis int64 `json:"ttl_ms"`
	// HeartbeatMillis is the coordinator's suggested heartbeat cadence.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest is the POST /api/v1/leases/{id}/heartbeat body.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	// Completed reports batch progress (specs finished so far) for the
	// worker registry.
	Completed int `json:"completed"`
}

// HeartbeatResponse acknowledges a heartbeat: the lease deadline was
// pushed out DeadlineMillis from now. A 410 response (lease gone) means
// the batch was reassigned — the worker should abandon it.
type HeartbeatResponse struct {
	SchemaVersion  int    `json:"schema_version"`
	State          string `json:"state"`
	DeadlineMillis int64  `json:"deadline_ms"`
}

// RunFailure is one failed spec in a results push (and in worker-side
// reporting): the memo key plus the harness's error text.
type RunFailure struct {
	Key   string `json:"key"`
	Error string `json:"error"`
}

// ResultsRequest is the POST /api/v1/leases/{id}/results body. Entries
// reuse the journal's {key, result} shape. The push is idempotent: every
// entry is accepted no matter the lease's fate, and re-completions are
// deduped, never double-counted.
type ResultsRequest struct {
	Worker   string           `json:"worker"`
	Entries  []campaign.Entry `json:"entries,omitempty"`
	Failures []RunFailure     `json:"failures,omitempty"`
}

// ResultsResponse itemises a push's fate: Accepted counts first
// completions, Duplicates re-completions (deduped), Unknown keys the
// coordinator never issued, Failed recorded failures.
type ResultsResponse struct {
	SchemaVersion int `json:"schema_version"`
	Accepted      int `json:"accepted"`
	Duplicates    int `json:"duplicates"`
	Unknown       int `json:"unknown"`
	Failed        int `json:"failed"`
}

// WorkerStatus is one registry row in the GET /api/v1/workers response.
type WorkerStatus struct {
	Worker string `json:"worker"`
	// Live reports whether the worker was seen within the lease TTL.
	Live              bool   `json:"live"`
	LastSeenAgoMillis int64  `json:"last_seen_ago_ms"`
	LeasesAcquired    uint64 `json:"leases_acquired"`
	SpecsCompleted    uint64 `json:"specs_completed"`
}
