package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

// finalPushTimeout bounds the end-of-batch results push. It runs on a
// context detached from the worker's (a shutdown must not strand computed
// results), so it needs its own deadline.
const finalPushTimeout = 30 * time.Second

// Worker is the bertiworker execution loop: pull a lease from the
// coordinator, run its specs on the local harness pool, stream each
// result back as it lands, heartbeat in between, repeat. It survives the
// network: the client retries transient errors, a lost lease abandons the
// batch (the coordinator already reassigned it), and anything computed
// before the loss is still pushed — the coordinator dedupes.
type Worker struct {
	// ID is this worker's stable identity (registry key; required).
	ID string
	// Client targets the coordinator (required).
	Client *Client
	// Harness executes the specs (required). The worker owns its OnResult
	// hook.
	Harness *harness.Harness
	// MaxSpecs bounds each lease batch (DefaultLeaseSpecs if 0).
	MaxSpecs int
	// PollInterval is the idle wait when the coordinator has no work
	// (default 500ms).
	PollInterval time.Duration
	// Logf sinks operational log lines (log.Printf when nil).
	Logf func(format string, args ...any)
}

// Run executes leases until ctx is cancelled (clean shutdown, returns
// nil) or a permanent protocol error occurs (e.g. scale mismatch).
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" || w.Client == nil || w.Harness == nil {
		return errors.New("server: Worker needs ID, Client, and Harness")
	}
	logf := w.Logf
	if logf == nil {
		logf = log.Printf
	}
	poll := w.PollInterval
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	max := w.MaxSpecs
	if max <= 0 {
		max = DefaultLeaseSpecs
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		grant, err := w.Client.AcquireLease(ctx, w.ID, max)
		if err != nil {
			if sim.IsCancel(err) || ctx.Err() != nil {
				return nil
			}
			// Residual error after the client's own retries: the
			// coordinator may be restarting or draining — keep polling.
			logf("worker %s: acquire lease: %v", w.ID, err)
			if !sleepCtx(ctx, poll) {
				return nil
			}
			continue
		}
		if grant.Scale != "" && grant.Scale != w.Harness.Scale.Name {
			return fmt.Errorf("server: coordinator runs scale %q but this worker is built for %q",
				grant.Scale, w.Harness.Scale.Name)
		}
		if grant.ID == "" {
			if !sleepCtx(ctx, poll) {
				return nil
			}
			continue
		}
		if err := w.runLease(ctx, grant, logf); err != nil {
			logf("worker %s: lease %s: %v", w.ID, grant.ID, err)
		}
	}
}

// runLease executes one granted batch. Results stream back as each spec
// finishes (so a worker killed mid-batch has already banked its completed
// work), heartbeats extend the lease in parallel, and a final sweep
// pushes whatever was not yet acknowledged — on a context that survives
// worker shutdown, because a computed result is worth landing even when
// the lease is already lost.
func (w *Worker) runLease(ctx context.Context, grant *LeaseGrant, logf func(string, ...any)) error {
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	acked := map[string]bool{}
	completed := 0

	w.Harness.OnResult = func(key string, _ harness.RunSpec, r *sim.Result) {
		mu.Lock()
		completed++
		mu.Unlock()
		if _, err := w.Client.PushResults(bctx, grant.ID, w.ID,
			[]campaign.Entry{{Key: key, Result: r}}, nil); err != nil {
			logf("worker %s: push %s: %v (will retry in final sweep)", w.ID, key, err)
			return
		}
		mu.Lock()
		acked[key] = true
		mu.Unlock()
	}
	defer func() { w.Harness.OnResult = nil }()

	hb := time.Duration(grant.HeartbeatMillis) * time.Millisecond
	if hb <= 0 {
		hb = time.Duration(grant.TTLMillis/4) * time.Millisecond
	}
	if hb <= 0 {
		hb = time.Second
	}
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-bctx.Done():
				return
			case <-t.C:
				mu.Lock()
				n := completed
				mu.Unlock()
				if _, err := w.Client.Heartbeat(bctx, grant.ID, w.ID, n); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						logf("worker %s: lease %s lost; abandoning batch", w.ID, grant.ID)
						cancel()
						return
					}
					if bctx.Err() == nil {
						logf("worker %s: heartbeat %s: %v", w.ID, grant.ID, err)
					}
				}
			}
		}
	}()

	_, runErr := w.Harness.RunManyContext(bctx, grant.Specs)

	// Final sweep: everything completed but not yet acknowledged, plus the
	// failures. Detached from ctx so a shutting-down (or lease-lost)
	// worker still lands finished work; the coordinator accepts late
	// pushes and dedupes.
	pushCtx, pcancel := context.WithTimeout(context.WithoutCancel(ctx), finalPushTimeout)
	defer pcancel()
	var entries []campaign.Entry
	mu.Lock()
	for _, spec := range grant.Specs {
		key := spec.Key()
		if acked[key] {
			continue
		}
		if r, ok := w.Harness.ResultFor(key); ok {
			entries = append(entries, campaign.Entry{Key: key, Result: r})
		}
	}
	mu.Unlock()
	var failures []RunFailure
	var rf *harness.RunFailures
	if errors.As(runErr, &rf) {
		for _, f := range rf.Failed {
			failures = append(failures, RunFailure{Key: f.Spec.Key(), Error: f.Error()})
		}
	} else if runErr != nil && !sim.IsCancel(runErr) {
		return runErr
	}
	if len(entries) > 0 || len(failures) > 0 {
		if _, err := w.Client.PushResults(pushCtx, grant.ID, w.ID, entries, failures); err != nil {
			return fmt.Errorf("final results push: %w", err)
		}
	}
	return nil
}

// sleepCtx waits d, returning false if ctx fired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
