package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
)

// ManifestSchemaVersion governs the on-disk manifest shape.
const ManifestSchemaVersion = 1

// ManifestExt is the manifest file suffix, next to each ".journal".
const ManifestExt = ".manifest.json"

// Manifest records what a campaign IS — its full spec list — next to the
// journal, which records what has FINISHED. The journal alone cannot
// resume a campaign after a daemon restart: results computed for another
// campaign (and deduped via the store) never hit this journal, and pending
// specs appear nowhere. Manifest + journal + store together reconstruct
// exact progress.
type Manifest struct {
	SchemaVersion int               `json:"schema_version"`
	ID            string            `json:"id"`
	Name          string            `json:"name,omitempty"`
	Scale         harness.Scale     `json:"scale"`
	Specs         []harness.RunSpec `json:"specs"`
}

// CampaignID derives the deterministic campaign identifier: a SHA-256 over
// the scale and the sorted, deduplicated run keys, truncated to 16 hex
// characters. Identical submissions — from any client, in any spec order —
// map to the same campaign, which is what lets the server hand a second
// client the first client's in-flight campaign instead of re-running it.
func CampaignID(scale harness.Scale, specs []harness.RunSpec) string {
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%d|%d\x00", scale.Name, scale.MemRecords, scale.WarmupInstr, scale.SimInstr)
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// dedupeSpecs drops repeated keys, keeping first occurrence order.
func dedupeSpecs(specs []harness.RunSpec) []harness.RunSpec {
	seen := make(map[string]bool, len(specs))
	out := make([]harness.RunSpec, 0, len(specs))
	for _, s := range specs {
		k := s.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out
}

// writeManifest persists m atomically (temp + rename, like every other
// on-disk artifact the campaign layer owns).
func writeManifest(path string, m *Manifest) error {
	body, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(body, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readManifest loads and sanity-checks a manifest.
func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: manifest %s: %w", path, err)
	}
	if m.SchemaVersion != ManifestSchemaVersion || m.ID == "" || len(m.Specs) == 0 {
		return nil, fmt.Errorf("server: manifest %s: missing or unsupported fields", path)
	}
	return &m, nil
}

// failedRun is one failed spec in a campaign's status and report.
type failedRun struct {
	Key   string `json:"key"`
	Error string `json:"error"`
}

// campaignState is one submitted campaign's in-memory progress. The
// counters move at batch granularity (noteBatch), fed by the sharded
// queue's RunManyContext results.
type campaignState struct {
	id      string
	name    string
	specs   []harness.RunSpec
	keys    map[string]bool // memo keys of every spec (OnResult fan-out filter)
	journal *campaign.Journal

	mu        sync.Mutex
	remaining int // specs not yet completed or failed (cancelled stay remaining)
	completed int
	cancelled int             // specs returned to the queue by a drain; resumed on restart
	doneK     map[string]bool // keys already counted via noteKeyDone/noteKeyFailed
	failed    []failedRun
	finished  bool
	done      chan struct{}          // closed when remaining hits zero
	subs      map[chan struct{}]bool // stream subscribers poked on every change
}

// newCampaignState starts with everything remaining: per-key completions
// (the lease path, or enqueue's already-done seeding) may race campaign
// registration, and a pessimistic start means a completion arriving
// before enqueue runs simply decrements early instead of corrupting
// counters that have not been assigned yet.
func newCampaignState(id, name string, specs []harness.RunSpec, j *campaign.Journal) *campaignState {
	keys := make(map[string]bool, len(specs))
	for _, s := range specs {
		keys[s.Key()] = true
	}
	return &campaignState{
		id:        id,
		name:      name,
		specs:     specs,
		keys:      keys,
		journal:   j,
		remaining: len(keys),
		doneK:     map[string]bool{},
		done:      make(chan struct{}),
		subs:      map[chan struct{}]bool{},
	}
}

// noteBatch folds one finished queue batch into the campaign's counters.
func (c *campaignState) noteBatch(completed int, failed []failedRun, cancelled int) {
	c.mu.Lock()
	c.completed += completed
	c.remaining -= completed + len(failed)
	c.failed = append(c.failed, failed...)
	c.cancelled += cancelled
	c.maybeFinishLocked()
	c.notifyLocked()
	c.mu.Unlock()
}

// noteKeyDone counts one spec complete, exactly once per key no matter
// how many paths report it (lease push, enqueue seeding, duplicate
// worker): the done set is the dedup.
func (c *campaignState) noteKeyDone(key string) {
	c.mu.Lock()
	if c.doneK[key] {
		c.mu.Unlock()
		return
	}
	c.doneK[key] = true
	c.completed++
	c.remaining--
	c.maybeFinishLocked()
	c.notifyLocked()
	c.mu.Unlock()
}

// noteKeyFailed counts one spec failed, with the same per-key dedup.
func (c *campaignState) noteKeyFailed(key, msg string) {
	c.mu.Lock()
	if c.doneK[key] {
		c.mu.Unlock()
		return
	}
	c.doneK[key] = true
	c.failed = append(c.failed, failedRun{Key: key, Error: msg})
	c.remaining--
	c.maybeFinishLocked()
	c.notifyLocked()
	c.mu.Unlock()
}

// maybeFinishLocked closes done exactly once when no work remains.
func (c *campaignState) maybeFinishLocked() {
	if c.remaining <= 0 && !c.finished {
		c.finished = true
		close(c.done)
	}
}

// notifyLocked pokes every stream subscriber without blocking.
func (c *campaignState) notifyLocked() {
	for ch := range c.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// subscribe registers a progress listener; call the returned cancel to
// drop it.
func (c *campaignState) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.subs[ch] = true
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		delete(c.subs, ch)
		c.mu.Unlock()
	}
}

// Campaign states reported by the status endpoint.
const (
	StateRunning = "running" // work queued or in flight
	StateDone    = "done"    // every spec completed
	StateFailed  = "failed"  // finished, but some specs failed
)

// status assembles the externally-visible progress snapshot.
func (c *campaignState) status() *CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &CampaignStatus{
		SchemaVersion: APISchemaVersion,
		ID:            c.id,
		Name:          c.name,
		State:         StateRunning,
		Total:         len(c.specs),
		Completed:     c.completed,
		Failed:        len(c.failed),
		Cancelled:     c.cancelled,
	}
	if c.finished {
		st.State = StateDone
		if len(c.failed) > 0 {
			st.State = StateFailed
		}
	}
	return st
}
