package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

// ErrLeaseLost reports that the coordinator no longer recognises a lease:
// its deadline passed and the specs were reassigned, or the daemon is
// draining. The worker must abandon the batch (results it already
// computed may still be pushed — the coordinator dedupes).
var ErrLeaseLost = errors.New("server: lease expired or reassigned")

// Client is the thin-client transport: it satisfies the Harness.Remote
// hook, so a local harness keeps its memoization, journaling, and metrics
// while every actual simulation happens on a bertid daemon. The submit
// call is idempotent (the memo key is the identity), so polling is just
// re-POSTing the same spec. The same client carries the worker protocol
// (AcquireLease / Heartbeat / PushResults).
//
// Every request runs under Retry: transport errors and transient HTTP
// statuses (5xx except where noted, 408, 429) are retried with the
// harness's deterministic exponential-backoff-plus-splitmix64-jitter
// schedule, so a network blip never fails a run. Permanent statuses
// (4xx, including 410 lease-gone) surface immediately.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval is the initial result-poll delay (default 250ms; each
	// poll backs off 1.5x up to PollMax).
	PollInterval time.Duration
	// PollMax caps the poll backoff (default 5s).
	PollMax time.Duration
	// Retry is the deterministic transient-error retry schedule shared
	// with the harness (jitter keyed by method+path). MaxAttempts 1
	// disables retries.
	Retry harness.RetryPolicy
}

// NewClient targets a bertid daemon at base (e.g. "http://127.0.0.1:9090").
func NewClient(base string) *Client {
	return &Client{
		base:         strings.TrimRight(base, "/"),
		hc:           &http.Client{Timeout: 30 * time.Second},
		PollInterval: 250 * time.Millisecond,
		PollMax:      5 * time.Second,
		Retry: harness.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 100 * time.Millisecond,
			MaxBackoff:  2 * time.Second,
		},
	}
}

// Base returns the daemon base URL this client targets.
func (c *Client) Base() string { return c.base }

// SetTransport replaces the underlying HTTP transport — the seam the
// network-fault injector (fault.NetPlan.Transport) plugs into.
func (c *Client) SetTransport(rt http.RoundTripper) {
	c.hc.Transport = rt
}

// transientStatus reports whether an HTTP status is worth retrying: the
// server or an intermediary failed, not the request itself. 410 (lease
// gone) and other 4xx are permanent — retrying cannot change the answer.
func transientStatus(code int) bool {
	switch code {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusTooManyRequests, http.StatusRequestTimeout:
		return true
	}
	return false
}

// do is the shared transport core: issue method+path with body, retrying
// transport errors and transient statuses per c.Retry. Returns the final
// status code and (bounded) body. Context cancellation surfaces as
// *sim.CancelError.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		code, data, err := c.roundTrip(ctx, method, path, body)
		if err == nil && !transientStatus(code) {
			return code, data, nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, &sim.CancelError{Cause: ctx.Err()}
			}
			lastErr = fmt.Errorf("server: daemon unreachable: %w", err)
		} else {
			lastErr = decodeAPIError(code, data)
		}
		if attempt >= attempts {
			return code, data, lastErr
		}
		if !c.Retry.Sleep(ctx, method+" "+path, attempt) {
			return 0, nil, &sim.CancelError{Cause: ctx.Err()}
		}
	}
}

// roundTrip performs exactly one HTTP exchange.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, fmt.Errorf("reading response: %w", err)
	}
	return resp.StatusCode, data, nil
}

// Run submits spec to the daemon and blocks until it completes, polling
// the idempotent run endpoint. Install as Harness.Remote. Context
// cancellation surfaces as *sim.CancelError so the harness treats it as a
// resumable cancellation, not a failure.
func (c *Client) Run(ctx context.Context, spec harness.RunSpec) (*sim.Result, error) {
	delay := c.PollInterval
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	max := c.PollMax
	if max <= 0 {
		max = 5 * time.Second
	}
	for {
		st, err := c.postRun(ctx, spec)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			if st.Result == nil {
				return nil, fmt.Errorf("server: daemon reported %q done without a result", st.Key)
			}
			return st.Result, nil
		case "failed":
			return nil, fmt.Errorf("server: daemon run %q failed: %s", st.Key, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, &sim.CancelError{Cause: ctx.Err()}
		case <-time.After(delay):
		}
		if delay = delay * 3 / 2; delay > max {
			delay = max
		}
	}
}

// postRun performs one idempotent submit/poll round-trip.
func (c *Client) postRun(ctx context.Context, spec harness.RunSpec) (*RunStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("server: encoding spec: %w", err)
	}
	code, data, err := c.do(ctx, http.MethodPost, "/api/v1/runs", body)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK, http.StatusAccepted:
		var st RunStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("server: decoding daemon response: %w", err)
		}
		return &st, nil
	default:
		return nil, decodeAPIError(code, data)
	}
}

// Submit posts a full campaign spec set, returning the acknowledgement.
func (c *Client) Submit(ctx context.Context, name string, specs []harness.RunSpec) (*SubmitResponse, error) {
	body, err := json.Marshal(SubmitRequest{Name: name, Specs: specs})
	if err != nil {
		return nil, fmt.Errorf("server: encoding campaign: %w", err)
	}
	var ack SubmitResponse
	if err := c.doJSON(ctx, http.MethodPost, "/api/v1/campaigns", body, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Status fetches one campaign's progress snapshot.
func (c *Client) Status(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.doJSON(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Report fetches a finished campaign's raw report bytes (kept as served,
// so client-side files stay byte-identical to the daemon's document).
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	code, data, err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, decodeAPIError(code, data)
	}
	return data, nil
}

// WaitCampaign polls a campaign until it leaves the running state.
func (c *Client) WaitCampaign(ctx context.Context, id string) (*CampaignStatus, error) {
	delay := c.PollInterval
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	max := c.PollMax
	if max <= 0 {
		max = 5 * time.Second
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, &sim.CancelError{Cause: ctx.Err()}
		case <-time.After(delay):
		}
		if delay = delay * 3 / 2; delay > max {
			delay = max
		}
	}
}

// AcquireLease asks the coordinator for a batch of up to maxSpecs run
// specs. A grant with an empty ID means no work is pending right now.
func (c *Client) AcquireLease(ctx context.Context, worker string, maxSpecs int) (*LeaseGrant, error) {
	body, err := json.Marshal(LeaseRequest{Worker: worker, MaxSpecs: maxSpecs})
	if err != nil {
		return nil, fmt.Errorf("server: encoding lease request: %w", err)
	}
	var grant LeaseGrant
	if err := c.doJSON(ctx, http.MethodPost, "/api/v1/leases", body, &grant); err != nil {
		return nil, err
	}
	return &grant, nil
}

// Heartbeat extends a lease's deadline, reporting progress. Returns
// ErrLeaseLost (wrapped) when the coordinator no longer honours the lease
// — the deadline passed and the batch was reassigned, or the daemon is
// draining.
func (c *Client) Heartbeat(ctx context.Context, leaseID, worker string, completed int) (*HeartbeatResponse, error) {
	body, err := json.Marshal(HeartbeatRequest{Worker: worker, Completed: completed})
	if err != nil {
		return nil, fmt.Errorf("server: encoding heartbeat: %w", err)
	}
	code, data, err := c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/heartbeat", body)
	if err != nil {
		return nil, err
	}
	if code == http.StatusGone {
		return nil, fmt.Errorf("server: heartbeat for lease %s: %w", leaseID, ErrLeaseLost)
	}
	if code < 200 || code > 299 {
		return nil, decodeAPIError(code, data)
	}
	var hb HeartbeatResponse
	if err := json.Unmarshal(data, &hb); err != nil {
		return nil, fmt.Errorf("server: decoding heartbeat response: %w", err)
	}
	return &hb, nil
}

// PushResults uploads completed entries (and failures) for a lease. The
// endpoint is idempotent: results for already-completed specs are
// accepted and counted as duplicates, and pushes against an expired or
// unknown lease still land (the work is real even if the lease died), so
// late workers never error out here.
func (c *Client) PushResults(ctx context.Context, leaseID, worker string, entries []campaign.Entry, failures []RunFailure) (*ResultsResponse, error) {
	body, err := json.Marshal(ResultsRequest{Worker: worker, Entries: entries, Failures: failures})
	if err != nil {
		return nil, fmt.Errorf("server: encoding results: %w", err)
	}
	code, data, err := c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/results", body)
	if err != nil {
		return nil, err
	}
	if code < 200 || code > 299 {
		return nil, decodeAPIError(code, data)
	}
	var rr ResultsResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return nil, fmt.Errorf("server: decoding results response: %w", err)
	}
	return &rr, nil
}

// Workers fetches the coordinator's worker registry.
func (c *Client) Workers(ctx context.Context) ([]WorkerStatus, error) {
	var ws []WorkerStatus
	if err := c.doJSON(ctx, http.MethodGet, "/api/v1/workers", nil, &ws); err != nil {
		return nil, err
	}
	return ws, nil
}

// doJSON is the shared request/decode path for the campaign endpoints.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	code, data, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	if code < 200 || code > 299 {
		return decodeAPIError(code, data)
	}
	return json.Unmarshal(data, out)
}

// decodeAPIError turns a non-2xx body back into a typed error:
// validation failures are rehydrated as *harness.SpecError so client-side
// callers see exactly what a local harness would have returned.
func decodeAPIError(code int, data []byte) error {
	var doc apiError
	if json.Unmarshal(data, &doc) == nil && doc.Error != "" {
		if doc.Field != "" {
			return &harness.SpecError{Field: doc.Field, Name: doc.Name, Err: errors.New(doc.Error)}
		}
		return fmt.Errorf("server: daemon returned %d: %s", code, doc.Error)
	}
	return fmt.Errorf("server: daemon returned %d", code)
}
