package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

// Client is the thin-client transport: it satisfies the Harness.Remote
// hook, so a local harness keeps its memoization, journaling, and metrics
// while every actual simulation happens on a bertid daemon. The submit
// call is idempotent (the memo key is the identity), so polling is just
// re-POSTing the same spec.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval is the initial result-poll delay (default 250ms; each
	// poll backs off 1.5x up to PollMax).
	PollInterval time.Duration
	// PollMax caps the poll backoff (default 5s).
	PollMax time.Duration
}

// NewClient targets a bertid daemon at base (e.g. "http://127.0.0.1:9090").
func NewClient(base string) *Client {
	return &Client{
		base:         strings.TrimRight(base, "/"),
		hc:           &http.Client{Timeout: 30 * time.Second},
		PollInterval: 250 * time.Millisecond,
		PollMax:      5 * time.Second,
	}
}

// Base returns the daemon base URL this client targets.
func (c *Client) Base() string { return c.base }

// Run submits spec to the daemon and blocks until it completes, polling
// the idempotent run endpoint. Install as Harness.Remote. Context
// cancellation surfaces as *sim.CancelError so the harness treats it as a
// resumable cancellation, not a failure.
func (c *Client) Run(ctx context.Context, spec harness.RunSpec) (*sim.Result, error) {
	delay := c.PollInterval
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	max := c.PollMax
	if max <= 0 {
		max = 5 * time.Second
	}
	for {
		st, err := c.postRun(ctx, spec)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			if st.Result == nil {
				return nil, fmt.Errorf("server: daemon reported %q done without a result", st.Key)
			}
			return st.Result, nil
		case "failed":
			return nil, fmt.Errorf("server: daemon run %q failed: %s", st.Key, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, &sim.CancelError{Cause: ctx.Err()}
		case <-time.After(delay):
		}
		if delay = delay * 3 / 2; delay > max {
			delay = max
		}
	}
}

// postRun performs one idempotent submit/poll round-trip.
func (c *Client) postRun(ctx context.Context, spec harness.RunSpec) (*RunStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("server: encoding spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, &sim.CancelError{Cause: ctx.Err()}
		}
		return nil, fmt.Errorf("server: daemon unreachable: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("server: reading daemon response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var st RunStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("server: decoding daemon response: %w", err)
		}
		return &st, nil
	default:
		return nil, decodeAPIError(resp.StatusCode, data)
	}
}

// Submit posts a full campaign spec set, returning the acknowledgement.
func (c *Client) Submit(ctx context.Context, name string, specs []harness.RunSpec) (*SubmitResponse, error) {
	body, err := json.Marshal(SubmitRequest{Name: name, Specs: specs})
	if err != nil {
		return nil, fmt.Errorf("server: encoding campaign: %w", err)
	}
	var ack SubmitResponse
	if err := c.doJSON(ctx, http.MethodPost, "/api/v1/campaigns", body, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Status fetches one campaign's progress snapshot.
func (c *Client) Status(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.doJSON(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Report fetches a finished campaign's raw report bytes (kept as served,
// so client-side files stay byte-identical to the daemon's document).
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/campaigns/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("server: daemon unreachable: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("server: reading daemon response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp.StatusCode, data)
	}
	return data, nil
}

// WaitCampaign polls a campaign until it leaves the running state.
func (c *Client) WaitCampaign(ctx context.Context, id string) (*CampaignStatus, error) {
	delay := c.PollInterval
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	max := c.PollMax
	if max <= 0 {
		max = 5 * time.Second
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, &sim.CancelError{Cause: ctx.Err()}
		case <-time.After(delay):
		}
		if delay = delay * 3 / 2; delay > max {
			delay = max
		}
	}
}

// doJSON is the shared request/decode path for the campaign endpoints.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: daemon unreachable: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("server: reading daemon response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}

// decodeAPIError turns a non-2xx body back into a typed error:
// validation failures are rehydrated as *harness.SpecError so client-side
// callers see exactly what a local harness would have returned.
func decodeAPIError(code int, data []byte) error {
	var doc apiError
	if json.Unmarshal(data, &doc) == nil && doc.Error != "" {
		if doc.Field != "" {
			return &harness.SpecError{Field: doc.Field, Name: doc.Name, Err: errors.New(doc.Error)}
		}
		return fmt.Errorf("server: daemon returned %d: %s", code, doc.Error)
	}
	return fmt.Errorf("server: daemon returned %d", code)
}
