package fault

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// NetPlan describes deterministic network-fault injection for the
// distributed worker protocol: an http.RoundTripper decorator that drops,
// delays, duplicates, or severs requests per-opportunity. Like Plan, every
// decision derives from a splitmix64 stream seeded by Seed, so a given
// plan injures the same request opportunities on every run — worker-loss
// and partition scenarios become reproducible tests instead of production
// folklore.
type NetPlan struct {
	// Seed drives the deterministic decision stream.
	Seed int64
	// DropRate is the per-request probability of losing the exchange: half
	// the injected drops fail before the request is sent (a connect
	// failure), half after (the request reached the server but the response
	// was lost — the case idempotent endpoints exist for).
	DropRate float64
	// DelayRate / Delay inject latency: each hit sleeps Delay (default
	// 10ms) before the request goes out.
	DelayRate float64
	Delay     time.Duration
	// DupRate duplicates the request: the duplicate is sent (and its
	// response discarded) before the real exchange, so the server sees the
	// same message twice — the dedup paths must make that invisible.
	// Requests without a rewindable body (GetBody) are never duplicated.
	DupRate float64
	// SeverAfter/SeverFor model a network partition: request opportunities
	// [SeverAfter, SeverAfter+SeverFor) all fail outright. SeverAfter 0
	// disables (use Drop for random loss).
	SeverAfter uint64
	SeverFor   uint64
}

// DefaultNetDelay is the injected latency when Delay is zero.
const DefaultNetDelay = 10 * time.Millisecond

// ParseNet builds a NetPlan from the CLI syntax
//
//	key=value[,key=value...]
//
// e.g. "drop=0.05,delay=0.2,delayms=25,dup=0.1,seed=7". Keys: seed, drop,
// delay, delayms, dup, sever-after, sever-for.
func ParseNet(s string) (*NetPlan, error) {
	if s == "" {
		return nil, &PlanError{Spec: s, Reason: "empty net plan"}
	}
	p := &NetPlan{}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, &PlanError{Spec: s, Reason: fmt.Sprintf("malformed option %q (want key=value)", kv)}
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			p.DropRate, err = parseRate(val)
		case "delay":
			p.DelayRate, err = parseRate(val)
		case "delayms":
			var ms int64
			ms, err = strconv.ParseInt(val, 10, 64)
			p.Delay = time.Duration(ms) * time.Millisecond
		case "dup":
			p.DupRate, err = parseRate(val)
		case "sever-after":
			p.SeverAfter, err = strconv.ParseUint(val, 10, 64)
		case "sever-for":
			p.SeverFor, err = strconv.ParseUint(val, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return nil, &PlanError{Spec: s, Reason: err.Error()}
		}
	}
	return p, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// String renders the plan in the ParseNet syntax.
func (p *NetPlan) String() string {
	return fmt.Sprintf("drop=%g,delay=%g,delayms=%d,dup=%g,seed=%d,sever-after=%d,sever-for=%d",
		p.DropRate, p.DelayRate, p.Delay.Milliseconds(), p.DupRate, p.Seed, p.SeverAfter, p.SeverFor)
}

// Transport wraps base (http.DefaultTransport when nil) with the plan's
// injections. Each NetInjector owns its own opportunity counter, so two
// clients sharing a plan value fault independently.
func (p *NetPlan) Transport(base http.RoundTripper) *NetInjector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &NetInjector{base: base, plan: *p}
}

// NetError is the injected transport failure. It unwraps to nothing — the
// retry layer must classify it by type/transport position, exactly as it
// would a real connection error.
type NetError struct {
	// Op says what was injected ("drop", "drop-response", "sever").
	Op string
	// Opportunity is the request counter value the decision hashed.
	Opportunity uint64
}

// Error implements error.
func (e *NetError) Error() string {
	return fmt.Sprintf("fault: injected network %s (opportunity %d)", e.Op, e.Opportunity)
}

// Timeout implements net.Error-style classification: injected faults are
// transient by construction.
func (e *NetError) Timeout() bool { return true }

// Temporary implements the legacy net.Error method.
func (e *NetError) Temporary() bool { return true }

// NetInjector is the fault-injecting RoundTripper. Safe for concurrent
// use; the opportunity counter is atomic (note that under concurrency the
// assignment of opportunities to specific requests depends on scheduling —
// the *decisions per opportunity* are what stay deterministic).
type NetInjector struct {
	base http.RoundTripper
	plan NetPlan
	n    atomic.Uint64

	// Injection counters (test observability).
	Dropped    atomic.Uint64
	Delayed    atomic.Uint64
	Duplicated atomic.Uint64
	Severed    atomic.Uint64
}

// Decision-stream salts: each fault class hashes a disjoint stream so e.g.
// raising the drop rate never shifts which opportunities get delayed.
const (
	saltDrop = iota + 1
	saltDropSide
	saltDelay
	saltDup
)

func (t *NetInjector) hit(salt uint64, n uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := splitmix64(uint64(t.plan.Seed)*0x9E3779B97F4A7C15 + salt*0xD1B54A32D192ED03 + n)
	return float64(h>>11)/(1<<53) < rate
}

// RoundTrip implements http.RoundTripper with the plan's faults applied.
func (t *NetInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.n.Add(1) - 1
	if t.plan.SeverAfter > 0 && n >= t.plan.SeverAfter && n < t.plan.SeverAfter+t.plan.SeverFor {
		t.Severed.Add(1)
		return nil, &NetError{Op: "sever", Opportunity: n}
	}
	if t.hit(saltDrop, n, t.plan.DropRate) {
		t.Dropped.Add(1)
		if t.hit(saltDropSide, n, 0.5) || req.GetBody == nil {
			// Lost before it was sent: the server never sees it.
			return nil, &NetError{Op: "drop", Opportunity: n}
		}
		// Sent, but the response is lost: the server's side effects happen,
		// the client sees a failure — the retry will be a duplicate.
		if resp, err := t.send(req); err == nil {
			resp.Body.Close()
		}
		return nil, &NetError{Op: "drop-response", Opportunity: n}
	}
	if t.hit(saltDelay, n, t.plan.DelayRate) {
		t.Delayed.Add(1)
		d := t.plan.Delay
		if d <= 0 {
			d = DefaultNetDelay
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if req.GetBody != nil && t.hit(saltDup, n, t.plan.DupRate) {
		t.Duplicated.Add(1)
		if resp, err := t.send(req); err == nil {
			resp.Body.Close()
		}
		// Fall through to the real exchange regardless: the duplicate is
		// extra noise, not a replacement.
	}
	return t.base.RoundTrip(req)
}

// send re-issues req on the base transport with a rewound body.
func (t *NetInjector) send(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		clone.Body = body
	}
	resp, err := t.base.RoundTrip(clone)
	if err != nil {
		return nil, err
	}
	// The original request's body was consumed by nobody yet — but the
	// base transport may have read clone's; rewind the original so the
	// real exchange (or a later retry) sends full bytes.
	if req.GetBody != nil {
		if body, berr := req.GetBody(); berr == nil {
			req.Body = body
		}
	}
	return resp, err
}
