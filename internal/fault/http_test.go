package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// countingBase is a stub transport recording how many exchanges actually
// reach "the network".
type countingBase struct {
	calls atomic.Int64
}

func (b *countingBase) RoundTrip(req *http.Request) (*http.Response, error) {
	b.calls.Add(1)
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("{}")),
		Header:     http.Header{},
		Request:    req,
	}, nil
}

func postReq(t *testing.T) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://coordinator/api/v1/leases", bytes.NewReader([]byte(`{"worker":"w"}`)))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestParseNet(t *testing.T) {
	p, err := ParseNet("drop=0.1,delay=0.2,delayms=25,dup=0.3,seed=7,sever-after=40,sever-for=20")
	if err != nil {
		t.Fatal(err)
	}
	want := NetPlan{Seed: 7, DropRate: 0.1, DelayRate: 0.2, Delay: 25 * time.Millisecond, DupRate: 0.3, SeverAfter: 40, SeverFor: 20}
	if *p != want {
		t.Fatalf("parsed %+v, want %+v", *p, want)
	}
	if got := p.String(); !strings.Contains(got, "drop=0.1") || !strings.Contains(got, "seed=7") {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "drop", "drop=2", "drop=-0.1", "bogus=1", "delayms=x"} {
		if _, err := ParseNet(bad); err == nil {
			t.Fatalf("ParseNet(%q) accepted", bad)
		}
		var pe *PlanError
		if _, err := ParseNet(bad); !errors.As(err, &pe) {
			t.Fatalf("ParseNet(%q) error not a *PlanError: %v", bad, err)
		}
	}
}

// TestNetInjectorDeterministic pins the seeded decision stream: two
// injectors built from the same plan fail the exact same opportunities,
// and a different seed fails different ones.
func TestNetInjectorDeterministic(t *testing.T) {
	plan := &NetPlan{Seed: 11, DropRate: 0.3}
	pattern := func(p *NetPlan) string {
		inj := p.Transport(&countingBase{})
		var b strings.Builder
		for i := 0; i < 200; i++ {
			resp, err := inj.RoundTrip(postReq(t))
			if err != nil {
				b.WriteByte('x')
				continue
			}
			resp.Body.Close()
			b.WriteByte('.')
		}
		return b.String()
	}
	p1, p2 := pattern(plan), pattern(plan)
	if p1 != p2 {
		t.Fatal("same plan, different fault pattern")
	}
	if !strings.Contains(p1, "x") || !strings.Contains(p1, ".") {
		t.Fatalf("rate 0.3 over 200 requests produced a degenerate pattern %q", p1[:20])
	}
	if p3 := pattern(&NetPlan{Seed: 12, DropRate: 0.3}); p3 == p1 {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestNetInjectorSever(t *testing.T) {
	base := &countingBase{}
	inj := (&NetPlan{SeverAfter: 2, SeverFor: 3}).Transport(base)
	var failed []int
	for i := 0; i < 8; i++ {
		resp, err := inj.RoundTrip(postReq(t))
		if err != nil {
			var ne *NetError
			if !errors.As(err, &ne) || ne.Op != "sever" {
				t.Fatalf("request %d: %v, want injected sever", i, err)
			}
			failed = append(failed, i)
			continue
		}
		resp.Body.Close()
	}
	if len(failed) != 3 || failed[0] != 2 || failed[2] != 4 {
		t.Fatalf("severed opportunities %v, want [2 3 4]", failed)
	}
	if inj.Severed.Load() != 3 {
		t.Fatalf("Severed=%d, want 3", inj.Severed.Load())
	}
	if base.calls.Load() != 5 {
		t.Fatalf("base saw %d exchanges, want 5 (8 minus the partition window)", base.calls.Load())
	}
}

// TestNetInjectorDuplicate: at dup=1 every request with a rewindable body
// reaches the server twice, yet the caller sees exactly one success — the
// shape the coordinator's dedup layer must absorb.
func TestNetInjectorDuplicate(t *testing.T) {
	base := &countingBase{}
	inj := (&NetPlan{DupRate: 1}).Transport(base)
	for i := 0; i < 5; i++ {
		resp, err := inj.RoundTrip(postReq(t))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if base.calls.Load() != 10 {
		t.Fatalf("base saw %d exchanges for 5 dup=1 requests, want 10", base.calls.Load())
	}
	if inj.Duplicated.Load() != 5 {
		t.Fatalf("Duplicated=%d, want 5", inj.Duplicated.Load())
	}
}

// TestNetInjectorDropSides: at drop=1 every request fails from the
// caller's view, but roughly half were actually delivered (response
// lost) — the counting base proves both sides of the drop exist.
func TestNetInjectorDropSides(t *testing.T) {
	base := &countingBase{}
	inj := (&NetPlan{Seed: 3, DropRate: 1}).Transport(base)
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := inj.RoundTrip(postReq(t)); err == nil {
			t.Fatalf("request %d survived drop=1", i)
		}
	}
	if inj.Dropped.Load() != n {
		t.Fatalf("Dropped=%d, want %d", inj.Dropped.Load(), n)
	}
	delivered := base.calls.Load()
	if delivered == 0 || delivered == n {
		t.Fatalf("%d of %d dropped requests delivered; want a mix of lost-request and lost-response", delivered, n)
	}
}

func TestNetInjectorDelay(t *testing.T) {
	base := &countingBase{}
	inj := (&NetPlan{DelayRate: 1, Delay: time.Millisecond}).Transport(base)
	start := time.Now()
	for i := 0; i < 5; i++ {
		resp, err := inj.RoundTrip(postReq(t))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if inj.Delayed.Load() != 5 {
		t.Fatalf("Delayed=%d, want 5", inj.Delayed.Load())
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("5 delayed requests took %v, want >= 5ms", elapsed)
	}
}

// TestNetErrorClassifiesTransient: injected failures present as
// timeout-style net errors so generic retry layers treat them as
// transient, exactly like a real connection fault.
func TestNetErrorClassifiesTransient(t *testing.T) {
	e := &NetError{Op: "drop", Opportunity: 3}
	if !e.Timeout() || !e.Temporary() {
		t.Fatal("NetError must classify as transient")
	}
	if !strings.Contains(e.Error(), "drop") || !strings.Contains(e.Error(), "3") {
		t.Fatalf("error text %q", e.Error())
	}
}
