package fault

import (
	"bytes"
	"errors"
	"testing"
)

func TestParse(t *testing.T) {
	p, err := Parse("drop-fill:seed=7,rate=0.05,after=1000,param=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Kind: DropFill, Seed: 7, Rate: 0.05, After: 1000, Param: 3}
	if *p != want {
		t.Fatalf("parsed %+v, want %+v", *p, want)
	}
	if p, err := Parse("truncate"); err != nil || p.Kind != TruncateTrace || p.Rate != 0.01 {
		t.Fatalf("bare kind must parse with defaults: %+v, %v", p, err)
	}
	for _, bad := range []string{"", "no-such-kind", "drop-fill:rate=2", "drop-fill:rate",
		"drop-fill:bogus=1", "drop-fill:seed=abc"} {
		_, err := Parse(bad)
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) = %v, want *PlanError", bad, err)
		}
	}
}

func TestTraceFaultClassification(t *testing.T) {
	for _, k := range Kinds() {
		p := &Plan{Kind: k}
		want := k == CorruptRecord || k == TruncateTrace
		if p.TraceFault() != want {
			t.Fatalf("TraceFault(%s) = %v", k, p.TraceFault())
		}
	}
}

func TestMutateTraceDeterministicAndHeaderSafe(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	p := &Plan{Kind: CorruptRecord, Seed: 3, Rate: 0.1}
	a := p.MutateTrace(data, 8)
	b := p.MutateTrace(data, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("same plan must damage the same bytes")
	}
	if bytes.Equal(a, data) {
		t.Fatal("rate 0.1 over 248 bytes must flip something")
	}
	if !bytes.Equal(a[:8], data[:8]) {
		t.Fatal("the header must never be damaged")
	}
	if !bytes.Equal(data, append([]byte(nil), data[:256]...)) {
		t.Fatal("the input slice must not be mutated in place")
	}
	if other := (&Plan{Kind: CorruptRecord, Seed: 4, Rate: 0.1}).MutateTrace(data, 8); bytes.Equal(a, other) {
		t.Fatal("different seeds must damage different bytes")
	}
}

func TestMutateTraceTruncate(t *testing.T) {
	data := make([]byte, 100)
	p := &Plan{Kind: TruncateTrace}
	if got := p.MutateTrace(data, 8); len(got) != 8+(100-8)/2 {
		t.Fatalf("default truncation kept %d bytes", len(got))
	}
	p.Param = 20
	if got := p.MutateTrace(data, 8); len(got) != 20 {
		t.Fatalf("param truncation kept %d bytes, want 20", len(got))
	}
	p.Param = 1000
	if got := p.MutateTrace(data, 8); len(got) != 100 {
		t.Fatalf("oversized param must keep the whole stream, kept %d", len(got))
	}
	if got := (&Plan{Kind: DropFill}).MutateTrace(data, 8); !bytes.Equal(got, data) {
		t.Fatal("non-trace kinds must return the data unchanged")
	}
}

func TestFillInjector(t *testing.T) {
	if NewFillInjector(&Plan{Kind: DupLine}) != nil || NewFillInjector(nil) != nil {
		t.Fatal("injector must only exist for fill plans")
	}
	drop := NewFillInjector(&Plan{Kind: DropFill, Rate: 1, After: 2})
	for i := uint64(0); i < 2; i++ {
		if d, _ := drop.FillFault(0x100, true, i); d {
			t.Fatal("faults before After must not fire")
		}
	}
	if d, _ := drop.FillFault(0x100, false, 2); d {
		t.Fatal("demand fills must never be dropped")
	}
	if d, _ := drop.FillFault(0x100, true, 3); !d {
		t.Fatal("prefetch fill past After at rate 1 must drop")
	}
	if drop.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", drop.Dropped)
	}

	delay := NewFillInjector(&Plan{Kind: DelayFill, Rate: 1})
	if _, d := delay.FillFault(0x200, false, 0); d != 4096 {
		t.Fatalf("default delay = %d, want 4096", d)
	}
	delay2 := NewFillInjector(&Plan{Kind: DelayFill, Rate: 1, Param: 99})
	if _, d := delay2.FillFault(0x200, false, 0); d != 99 {
		t.Fatalf("param delay = %d, want 99", d)
	}

	// Determinism: two injectors over the same plan make identical calls.
	a := NewFillInjector(&Plan{Kind: DropFill, Seed: 5, Rate: 0.5})
	b := NewFillInjector(&Plan{Kind: DropFill, Seed: 5, Rate: 0.5})
	for i := 0; i < 200; i++ {
		da, _ := a.FillFault(uint64(i), true, uint64(i))
		db, _ := b.FillFault(uint64(i), true, uint64(i))
		if da != db {
			t.Fatalf("injection diverged at opportunity %d", i)
		}
	}
	if a.Dropped == 0 || a.Dropped == 200 {
		t.Fatalf("rate 0.5 over 200 fills dropped %d — stream looks broken", a.Dropped)
	}
}
