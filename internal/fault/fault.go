// Package fault implements a deterministic, seeded fault injector for the
// simulation pipeline. Its purpose is adversarial: inject precisely
// reproducible damage — corrupted or truncated trace bytes, dropped or
// delayed fills, duplicated cache tags, orphaned prefetch-queue entries —
// and prove that (a) the invariant checker (internal/check) detects the
// damage and (b) the harness degrades gracefully instead of taking down
// sibling experiments.
//
// All randomness derives from a splitmix64 stream seeded by Plan.Seed, so a
// given plan injects the same faults at the same points on every run.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind names one fault class. The CLI spelling (bertisim -fault-plan) is
// the constant's value.
type Kind string

// Fault kinds and the detection each one proves out:
//
//	corrupt-record  flip trace bytes      -> trace.DecodeError
//	truncate        cut the trace short   -> trace.DecodeError (offset)
//	drop-fill       swallow prefetch fill -> check mshr-stuck (leaked MSHR)
//	delay-fill      postpone fills        -> check mshr-stuck, or the
//	                                         engine watchdog when extreme
//	dup-line        duplicate a cache tag -> check dup-tag
//	pq-orphan       overfill the PQ       -> check queue-bound
const (
	CorruptRecord Kind = "corrupt-record"
	TruncateTrace Kind = "truncate"
	DropFill      Kind = "drop-fill"
	DelayFill     Kind = "delay-fill"
	DupLine       Kind = "dup-line"
	PQOrphan      Kind = "pq-orphan"
)

// Kinds lists every fault kind.
func Kinds() []Kind {
	return []Kind{CorruptRecord, TruncateTrace, DropFill, DelayFill, DupLine, PQOrphan}
}

// Plan describes one deterministic fault-injection campaign.
type Plan struct {
	// Kind selects the fault class.
	Kind Kind
	// Seed drives the deterministic stream (same seed = same faults).
	Seed int64
	// Rate is the per-opportunity injection probability in [0,1]
	// (corrupt-record, drop-fill, delay-fill). Defaults to 0.01.
	Rate float64
	// After skips the first N opportunities (lets warmup proceed clean;
	// for dup-line/pq-orphan it is the injection cycle).
	After uint64
	// Param is the kind-specific magnitude: delay cycles for delay-fill
	// (default 4096), bytes kept for truncate (default half the stream),
	// orphan entries for pq-orphan (default 4).
	Param uint64
}

// Parse builds a Plan from the CLI syntax
//
//	kind[:key=value[,key=value...]]
//
// e.g. "drop-fill:seed=7,rate=0.05,after=1000". Keys: seed, rate, after,
// param.
func Parse(s string) (*Plan, error) {
	if s == "" {
		return nil, &PlanError{Spec: s, Reason: "empty plan"}
	}
	kindStr, rest, _ := strings.Cut(s, ":")
	p := &Plan{Kind: Kind(kindStr), Rate: 0.01}
	valid := false
	for _, k := range Kinds() {
		if p.Kind == k {
			valid = true
			break
		}
	}
	if !valid {
		return nil, &PlanError{Spec: s, Reason: fmt.Sprintf("unknown kind %q (kinds: %s)", kindStr, kindList())}
	}
	if rest == "" {
		return p, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, &PlanError{Spec: s, Reason: fmt.Sprintf("malformed option %q (want key=value)", kv)}
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rate":
			p.Rate, err = strconv.ParseFloat(val, 64)
			if err == nil && (p.Rate < 0 || p.Rate > 1) {
				err = fmt.Errorf("rate %v outside [0,1]", p.Rate)
			}
		case "after":
			p.After, err = strconv.ParseUint(val, 10, 64)
		case "param":
			p.Param, err = strconv.ParseUint(val, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return nil, &PlanError{Spec: s, Reason: err.Error()}
		}
	}
	return p, nil
}

func kindList() string {
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, string(k))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// String renders the plan in the Parse syntax.
func (p *Plan) String() string {
	return fmt.Sprintf("%s:seed=%d,rate=%g,after=%d,param=%d", p.Kind, p.Seed, p.Rate, p.After, p.Param)
}

// PlanError reports an unparseable fault plan.
type PlanError struct {
	Spec   string
	Reason string
}

// Error implements error.
func (e *PlanError) Error() string {
	return fmt.Sprintf("fault: invalid plan %q: %s", e.Spec, e.Reason)
}

// TraceFault reports whether the plan mutates encoded trace bytes (and is
// therefore applied before decoding rather than during simulation).
func (p *Plan) TraceFault() bool {
	return p.Kind == CorruptRecord || p.Kind == TruncateTrace
}

// splitmix64 is the deterministic stream generator (Vigna, 2015): every
// injection decision hashes (seed, counter) so decisions are independent of
// call ordering elsewhere.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hit decides deterministically whether opportunity n (0-based, already
// past After) is injected, at probability Rate.
func (p *Plan) hit(n uint64) bool {
	if p.Rate <= 0 {
		return false
	}
	if p.Rate >= 1 {
		return true
	}
	h := splitmix64(uint64(p.Seed)*0x9E3779B97F4A7C15 + n)
	return float64(h>>11)/(1<<53) < p.Rate
}

// MutateTrace applies a trace-level fault (corrupt-record or truncate) to
// an encoded trace and returns the damaged copy. hdrLen bytes at the start
// are preserved so the fault lands in record data, not the magic header
// (corrupting the magic only ever exercises one error path). Other kinds
// return data unchanged.
func (p *Plan) MutateTrace(data []byte, hdrLen int) []byte {
	switch p.Kind {
	case CorruptRecord:
		out := append([]byte(nil), data...)
		n := uint64(0)
		for i := hdrLen; i < len(out); i++ {
			if n >= p.After && p.hit(n-p.After) {
				out[i] ^= byte(1 + splitmix64(uint64(p.Seed)+n)%255)
			}
			n++
		}
		return out
	case TruncateTrace:
		keep := int(p.Param)
		if keep == 0 {
			keep = hdrLen + (len(data)-hdrLen)/2
		}
		if keep > len(data) {
			keep = len(data)
		}
		return append([]byte(nil), data[:keep]...)
	default:
		return data
	}
}

// FillInjector injects drop-fill/delay-fill faults. It implements the
// cache package's FaultHook interface structurally (the cache consults it
// whenever a fill response arrives from the lower level) without this
// package importing the cache.
type FillInjector struct {
	plan Plan
	n    uint64

	// Dropped and Delayed count injections (test observability).
	Dropped uint64
	Delayed uint64
}

// NewFillInjector returns an injector for a drop-fill or delay-fill plan,
// or nil for other kinds.
func NewFillInjector(p *Plan) *FillInjector {
	if p == nil || (p.Kind != DropFill && p.Kind != DelayFill) {
		return nil
	}
	return &FillInjector{plan: *p}
}

// FillFault is consulted once per arriving fill. drop swallows the
// completion outright (the MSHR entry leaks — nothing will ever complete
// it); delay postpones data-ready by the returned number of cycles.
// Prefetch fills only are dropped (dropping a demand fill deadlocks the
// core, which the delay-fill + watchdog path covers instead).
func (f *FillInjector) FillFault(lineAddr uint64, isPrefetch bool, cycle uint64) (drop bool, delay uint64) {
	n := f.n
	f.n++
	if n < f.plan.After {
		return false, 0
	}
	if !f.plan.hit(n - f.plan.After) {
		return false, 0
	}
	switch f.plan.Kind {
	case DropFill:
		if !isPrefetch {
			return false, 0
		}
		f.Dropped++
		return true, 0
	case DelayFill:
		d := f.plan.Param
		if d == 0 {
			d = 4096
		}
		f.Delayed++
		return false, d
	}
	return false, 0
}
