package tracestore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"github.com/bertisim/berti/internal/trace"
)

// File is an opened v2 container: the parsed metadata and chunk index over
// a random-access byte source. Chunk payloads are decoded on demand by
// readers; opening a file reads only the footer. A File is safe for
// concurrent readers (io.ReaderAt is a stateless interface and the index is
// immutable after Open).
type File struct {
	ra     io.ReaderAt
	size   int64
	meta   Meta
	chunks []chunkInfo
	closer io.Closer
}

// Open opens a v2 container on disk. Corrupt or truncated files yield a
// *FormatError; v1 traces are rejected with ErrNotV2 (sniff with
// IsV2Header to pick a decoder).
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	tf, err := OpenReaderAt(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	tf.closer = f
	return tf, nil
}

// OpenBytes opens a v2 container held in memory (tests, fuzzing).
func OpenBytes(b []byte) (*File, error) {
	return OpenReaderAt(bytes.NewReader(b), int64(len(b)))
}

// OpenReaderAt opens a v2 container over any random-access source of the
// given size. The source must remain valid for the life of the File and its
// readers.
func OpenReaderAt(ra io.ReaderAt, size int64) (*File, error) {
	fail := func(section string, off int64, err error) (*File, error) {
		return nil, &FormatError{Section: section, Chunk: -1, Offset: off, Err: err}
	}
	if size < int64(len(headMagic))+trailerLen {
		return fail("trailer", size, io.ErrUnexpectedEOF)
	}
	var head [len(headMagic)]byte
	if _, err := ra.ReadAt(head[:], 0); err != nil {
		return fail("magic", 0, err)
	}
	if head != headMagic {
		return fail("magic", 0, ErrNotV2)
	}
	var tr [trailerLen]byte
	trOff := size - trailerLen
	if _, err := ra.ReadAt(tr[:], trOff); err != nil {
		return fail("trailer", trOff, err)
	}
	if !bytes.Equal(tr[20:28], tailMagic[:]) {
		return fail("trailer", trOff, ErrBadTrailer)
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	chunkCount := binary.LittleEndian.Uint32(tr[8:12])
	metaLen := binary.LittleEndian.Uint32(tr[12:16])
	footerCRC := binary.LittleEndian.Uint32(tr[16:20])
	if metaLen > maxMetaLen {
		return fail("trailer", trOff, fmt.Errorf("meta block of %d bytes exceeds limit %d", metaLen, maxMetaLen))
	}
	indexLen := int64(chunkCount) * indexEntryLen
	if footerOff < int64(len(headMagic)) || footerOff+indexLen+int64(metaLen)+trailerLen != size {
		return fail("trailer", trOff, fmt.Errorf("footer geometry inconsistent with file size %d", size))
	}
	footer := make([]byte, indexLen+int64(metaLen))
	if _, err := ra.ReadAt(footer, footerOff); err != nil {
		return fail("footer", footerOff, err)
	}
	if crc32.Checksum(footer, castagnoli) != footerCRC {
		return fail("footer", footerOff, ErrChecksum)
	}

	f := &File{ra: ra, size: size}
	mb := footer[indexLen:]
	if len(mb) < 32 {
		return fail("meta", footerOff+indexLen, io.ErrUnexpectedEOF)
	}
	if v := binary.LittleEndian.Uint16(mb[0:2]); v != FormatVersion {
		return fail("meta", footerOff+indexLen, fmt.Errorf("unsupported version %d", v))
	}
	f.meta.ChunkRecords = binary.LittleEndian.Uint32(mb[2:6])
	f.meta.Records = binary.LittleEndian.Uint64(mb[6:14])
	f.meta.Instructions = binary.LittleEndian.Uint64(mb[14:22])
	f.meta.LineFootprint = binary.LittleEndian.Uint64(mb[22:30])
	nameLen := int(binary.LittleEndian.Uint16(mb[30:32]))
	if len(mb) != 32+nameLen {
		return fail("meta", footerOff+indexLen, fmt.Errorf("name length %d inconsistent with meta block of %d bytes", nameLen, len(mb)))
	}
	f.meta.Workload = string(mb[32:])
	if f.meta.ChunkRecords == 0 || f.meta.ChunkRecords > MaxChunkRecords {
		return fail("meta", footerOff+indexLen, fmt.Errorf("chunk size %d outside [1, %d]", f.meta.ChunkRecords, MaxChunkRecords))
	}
	if f.meta.Records > trace.MaxRecords {
		return fail("meta", footerOff+indexLen, fmt.Errorf("record count %d exceeds limit %d", f.meta.Records, int64(trace.MaxRecords)))
	}

	// Parse and validate the index: chunks must tile [len(magic), footerOff)
	// contiguously with monotonic record/instruction starts that sum to the
	// meta totals, so a corrupt index can neither alias chunks nor claim
	// counts the payloads cannot hold.
	f.chunks = make([]chunkInfo, chunkCount)
	wantOff := int64(len(headMagic))
	var recs, instr uint64
	for i := range f.chunks {
		e := footer[int64(i)*indexEntryLen:]
		c := chunkInfo{
			Offset:      int64(binary.LittleEndian.Uint64(e[0:8])),
			CompLen:     binary.LittleEndian.Uint32(e[8:12]),
			RawLen:      binary.LittleEndian.Uint32(e[12:16]),
			Records:     binary.LittleEndian.Uint32(e[16:20]),
			CRC:         binary.LittleEndian.Uint32(e[20:24]),
			StartRecord: binary.LittleEndian.Uint64(e[24:32]),
			StartInstr:  binary.LittleEndian.Uint64(e[32:40]),
		}
		failC := func(err error) (*File, error) {
			return nil, &FormatError{Section: "index", Chunk: i, Offset: c.Offset, Err: err}
		}
		if c.Offset != wantOff {
			return failC(fmt.Errorf("offset %d, want %d (chunks must be contiguous)", c.Offset, wantOff))
		}
		if c.CompLen == 0 || c.Offset+int64(c.CompLen) > footerOff {
			return failC(fmt.Errorf("compressed length %d overruns footer", c.CompLen))
		}
		if c.Records == 0 || c.Records > f.meta.ChunkRecords {
			return failC(fmt.Errorf("record count %d outside [1, %d]", c.Records, f.meta.ChunkRecords))
		}
		if c.RawLen < c.Records*minRecordBytes || c.RawLen > c.Records*maxRecordBytes {
			return failC(fmt.Errorf("raw length %d inconsistent with %d records", c.RawLen, c.Records))
		}
		if c.StartRecord != recs {
			return failC(fmt.Errorf("start record %d, want %d", c.StartRecord, recs))
		}
		if c.StartInstr != instr {
			return failC(fmt.Errorf("start instruction %d, want %d", c.StartInstr, instr))
		}
		if instr+uint64(c.Records) < instr { // each record retires >= 1 instruction
			return failC(fmt.Errorf("instruction count overflow"))
		}
		recs += uint64(c.Records)
		// StartInstr of the next chunk carries the real per-chunk
		// instruction total; the final chunk is checked against the meta.
		if i+1 < len(f.chunks) {
			instr = binary.LittleEndian.Uint64(footer[int64(i+1)*indexEntryLen+32:][:8])
			if instr < c.StartInstr+uint64(c.Records) {
				return failC(fmt.Errorf("next chunk starts at instruction %d, before this chunk's %d records end", instr, c.Records))
			}
		} else {
			instr = f.meta.Instructions
			if instr < c.StartInstr+uint64(c.Records) {
				return failC(fmt.Errorf("meta instruction total %d too small for final chunk", instr))
			}
		}
		wantOff = c.Offset + int64(c.CompLen)
		f.chunks[i] = c
	}
	if wantOff != footerOff {
		return fail("index", footerOff, fmt.Errorf("chunks end at %d, footer starts at %d", wantOff, footerOff))
	}
	if recs != f.meta.Records {
		return fail("index", footerOff, fmt.Errorf("index holds %d records, meta claims %d", recs, f.meta.Records))
	}
	if chunkCount == 0 && (f.meta.Records != 0 || f.meta.Instructions != 0) {
		return fail("index", footerOff, fmt.Errorf("empty index but meta claims %d records", f.meta.Records))
	}
	return f, nil
}

// Close releases the underlying file handle (no-op for in-memory sources).
// Readers created from the File must be closed or exhausted first.
func (f *File) Close() error {
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// Meta returns the stored trace metadata.
func (f *File) Meta() Meta { return f.meta }

// Chunks returns the number of chunks in the container.
func (f *File) Chunks() int { return len(f.chunks) }

// CompressedSize returns the total compressed payload bytes (diagnostics).
func (f *File) CompressedSize() int64 {
	var n int64
	for i := range f.chunks {
		n += int64(f.chunks[i].CompLen)
	}
	return n
}

// scratch holds the per-decoder reusable buffers so a streaming worker
// allocates only the record slice it hands off.
type scratch struct {
	comp []byte
	raw  bytes.Buffer
	br   *bytes.Reader
	fr   io.ReadCloser
}

func newScratch() *scratch {
	return &scratch{br: bytes.NewReader(nil), fr: flate.NewReader(bytes.NewReader(nil))}
}

// decodeChunk reads, decompresses, verifies, and parses one chunk. The
// returned slice is freshly allocated (it is handed across goroutines);
// everything else comes from sc.
func (f *File) decodeChunk(idx int, sc *scratch) ([]trace.Record, error) {
	c := &f.chunks[idx]
	failC := func(err error) ([]trace.Record, error) {
		return nil, &FormatError{Section: "chunk", Chunk: idx, Offset: c.Offset, Err: err}
	}
	if cap(sc.comp) < int(c.CompLen) {
		sc.comp = make([]byte, c.CompLen)
	}
	comp := sc.comp[:c.CompLen]
	if _, err := f.ra.ReadAt(comp, c.Offset); err != nil {
		return failC(err)
	}
	sc.br.Reset(comp)
	if err := sc.fr.(flate.Resetter).Reset(sc.br, nil); err != nil {
		return failC(err)
	}
	sc.raw.Reset()
	// The copy is capped at RawLen+1: a payload that inflates past its
	// declared size is rejected without buffering the excess, and the
	// index validation already bounded RawLen by the chunk's record count.
	n, err := io.Copy(&sc.raw, io.LimitReader(sc.fr, int64(c.RawLen)+1))
	if err != nil {
		return failC(fmt.Errorf("inflate: %w", err))
	}
	if n != int64(c.RawLen) {
		return failC(fmt.Errorf("payload inflated to %d bytes, index claims %d", n, c.RawLen))
	}
	raw := sc.raw.Bytes()
	if crc32.Checksum(raw, castagnoli) != c.CRC {
		return failC(ErrChecksum)
	}

	out := make([]trace.Record, 0, c.Records)
	var prevIP, prevAddr uint64
	pos := 0
	for i := uint32(0); i < c.Records; i++ {
		failR := func(field string) ([]trace.Record, error) {
			return failC(fmt.Errorf("record %d %s at payload byte %d: invalid encoding", c.StartRecord+uint64(i), field, pos))
		}
		dip, w := binary.Varint(raw[pos:])
		if w <= 0 {
			return failR("ip")
		}
		pos += w
		daddr, w := binary.Varint(raw[pos:])
		if w <= 0 {
			return failR("addr")
		}
		pos += w
		if pos >= len(raw) {
			return failR("kind")
		}
		kind := raw[pos]
		pos++
		if kind > uint8(trace.Store) {
			return failR("kind")
		}
		nonMem, w := binary.Uvarint(raw[pos:])
		if w <= 0 || nonMem > 1<<32-1 {
			return failR("nonmem")
		}
		pos += w
		if pos >= len(raw) {
			return failR("depdist")
		}
		dep := raw[pos]
		pos++
		prevIP += uint64(dip)
		prevAddr += uint64(daddr)
		out = append(out, trace.Record{
			IP:           prevIP,
			Addr:         prevAddr,
			Kind:         trace.Kind(kind),
			NonMemBefore: uint32(nonMem),
			DepDist:      dep,
		})
	}
	if pos != len(raw) {
		return failC(fmt.Errorf("%d trailing payload bytes after last record", len(raw)-pos))
	}
	return out, nil
}

// FastForward locates the window start for an instruction target: the
// position of the first record whose retirement would push the cumulative
// instruction count (memory records plus their NonMemBefore runs) past
// target. It returns the chunk to start in and the records to skip within
// it, decoding at most one chunk. A target at or past the end of the trace
// returns chunk == Chunks() (the EOF position).
func (f *File) FastForward(target uint64) (chunk, skip int, startInstr uint64, err error) {
	if target >= f.meta.Instructions {
		return len(f.chunks), 0, f.meta.Instructions, nil
	}
	// Last chunk whose first record retires within the target.
	chunk = sort.Search(len(f.chunks), func(i int) bool {
		return f.chunks[i].StartInstr > target
	}) - 1
	if chunk < 0 {
		chunk = 0
	}
	recs, err := f.decodeChunk(chunk, newScratch())
	if err != nil {
		return 0, 0, 0, err
	}
	cum := f.chunks[chunk].StartInstr
	for skip = 0; skip < len(recs); skip++ {
		step := uint64(recs[skip].NonMemBefore) + 1
		if cum+step > target {
			return chunk, skip, cum, nil
		}
		cum += step
	}
	// Unreachable for a consistent index (the next chunk's StartInstr
	// would have been <= target), but a damaged file should degrade to
	// "start at the next chunk", not panic.
	return chunk + 1, 0, cum, nil
}

// ReadAll decodes the whole container into an in-memory trace (inspection
// tools and tests; simulation paths should stream instead).
func (f *File) ReadAll() (*trace.Slice, error) {
	capHint := f.meta.Records
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	s := &trace.Slice{Records: make([]trace.Record, 0, capHint)}
	sc := newScratch()
	for i := range f.chunks {
		recs, err := f.decodeChunk(i, sc)
		if err != nil {
			return nil, err
		}
		s.Records = append(s.Records, recs...)
	}
	return s, nil
}
