package tracestore

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/bertisim/berti/internal/trace"
)

// Key identifies one generated trace: the generation is deterministic in
// these parameters, so hashing them addresses the content.
type Key struct {
	// Workload is the registry name of the generator.
	Workload string
	// Records is the requested memory-record count.
	Records int
	// Seed is the generation seed.
	Seed int64
}

// Corpus is an on-disk cache of generated workload traces in the v2
// container format. Files are content-addressed by generation parameters
// (plus the format version, so a format bump invalidates cleanly), written
// atomically via temp-file + rename, and regenerated transparently when
// missing or corrupt.
type Corpus struct {
	dir string
	// gen serializes cache misses so concurrent runs of the same spec
	// generate a trace once instead of racing (both outcomes would be
	// valid — rename is atomic — but generation is the expensive part).
	gen sync.Mutex
}

// NewCorpus opens (creating if needed) a corpus cache rooted at dir.
func NewCorpus(dir string) (*Corpus, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Corpus{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Corpus) Dir() string { return c.dir }

// Path returns the cache file path for a key. The human-readable workload
// prefix is cosmetic; the hash alone addresses the content.
func (c *Corpus) Path(k Key) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("berti-trace-v%d|%s|%d|%d", FormatVersion, k.Workload, k.Records, k.Seed)))
	name := sanitize(k.Workload)
	if name == "" {
		name = "trace"
	}
	return filepath.Join(c.dir, fmt.Sprintf("%s-%s.btr2", name, hex.EncodeToString(sum[:8])))
}

// sanitize keeps the workload prefix filesystem-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// Ensure opens the cached container for k, invoking gen and writing the
// cache entry on a miss. A corrupt or truncated entry (interrupted write on
// an old kernel, disk damage) is regenerated rather than surfaced: the
// cache is an optimization, never a source of truth.
func (c *Corpus) Ensure(k Key, gen func() *trace.Slice) (*File, error) {
	path := c.Path(k)
	if f, err := Open(path); err == nil {
		return f, nil
	}
	c.gen.Lock()
	defer c.gen.Unlock()
	// Another goroutine may have filled the entry while we waited.
	if f, err := Open(path); err == nil {
		return f, nil
	}
	if err := c.write(path, gen(), k.Workload); err != nil {
		return nil, err
	}
	return Open(path)
}

// write persists a trace atomically: temp file in the same directory,
// error-checked flush/sync/close, then rename over the final path.
func (c *Corpus) write(path string, s *trace.Slice, workload string) (err error) {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*.btr2")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err = Write(bw, s, Meta{Workload: workload}); err != nil {
		return fmt.Errorf("tracestore: corpus write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("tracestore: corpus flush %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("tracestore: corpus sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("tracestore: corpus close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
