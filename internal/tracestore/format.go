// Package tracestore implements the v2 trace-corpus container: a
// chunk-framed, flate-compressed, seekable on-disk format for memory-access
// traces, a bounded-memory streaming reader with a parallel decode
// pipeline, an instruction-window engine that fast-forwards through the
// chunk index, and a content-addressed corpus cache that persists generated
// workload traces across runs.
//
// # File layout
//
//	offset 0:  magic "BERTITR2" (8 bytes)
//	           chunk 0 payload (flate-compressed record block)
//	           chunk 1 payload
//	           ...
//	footer:    index: one 40-byte entry per chunk
//	             u64 offset  u32 compLen  u32 rawLen  u32 records
//	             u32 crc32c(raw payload)  u64 startRecord  u64 startInstr
//	           meta: u16 version  u32 chunkRecords  u64 records
//	             u64 instructions  u64 lineFootprint  u16 nameLen  name
//	trailer:   u64 footerOff  u32 chunkCount  u32 metaLen
//	           u32 crc32c(footer)  magic "BERTIEN2" (28 bytes)
//
// All fixed-width fields are little-endian. Each chunk holds up to
// ChunkRecords records, varint-delta encoded exactly like the v1 format but
// with the delta state reset at every chunk boundary, so any chunk decodes
// independently of the others — that independence is what makes the file
// seekable and the decode pipeline parallel. The index entry's startInstr
// is the cumulative instruction count (memory records plus their
// NonMemBefore runs) retired before the chunk's first record; the window
// engine binary-searches it to fast-forward without decompressing skipped
// chunks.
package tracestore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/bertisim/berti/internal/trace"
)

const (
	// FormatVersion is the container version this package reads and writes.
	FormatVersion = 2
	// DefaultChunkRecords is the records-per-chunk used when Meta does not
	// override it. 64K records compress to ~100-300 KB per chunk: large
	// enough to amortize flate overhead, small enough that the streaming
	// reader's resident window stays in the low megabytes.
	DefaultChunkRecords = 1 << 16
	// MaxChunkRecords bounds ChunkRecords so a corrupt index cannot force
	// an unbounded per-chunk allocation.
	MaxChunkRecords = 1 << 20
	// maxMetaLen bounds the meta block (the workload name is the only
	// variable-length field).
	maxMetaLen = 1 << 12
	// trailerLen is the fixed trailer size.
	trailerLen = 28
	// indexEntryLen is the per-chunk index entry size.
	indexEntryLen = 40
	// minRecordBytes / maxRecordBytes bound one encoded record (varint ip +
	// varint addr + kind byte + uvarint nonmem + depdist byte); the decoder
	// cross-checks claimed record counts against claimed payload sizes with
	// them, so allocations stay proportional to real data.
	minRecordBytes = 5
	maxRecordBytes = binary.MaxVarintLen64 + binary.MaxVarintLen64 + 1 + binary.MaxVarintLen32 + 1
)

var (
	headMagic = [8]byte{'B', 'E', 'R', 'T', 'I', 'T', 'R', '2'}
	tailMagic = [8]byte{'B', 'E', 'R', 'T', 'I', 'E', 'N', '2'}
)

// castagnoli is the CRC32-C polynomial (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// HeadMagicLen is the length of the v2 file magic (format sniffing).
const HeadMagicLen = len(headMagic)

// IsV2Header reports whether b begins with the v2 container magic.
func IsV2Header(b []byte) bool {
	return len(b) >= HeadMagicLen && bytes.Equal(b[:HeadMagicLen], headMagic[:])
}

// Sentinel causes wrapped in *FormatError by the decoder.
var (
	// ErrNotV2 marks a stream that does not start with the v2 magic.
	ErrNotV2 = errors.New("tracestore: not a v2 trace container")
	// ErrBadTrailer marks a missing or damaged trailer.
	ErrBadTrailer = errors.New("tracestore: bad trailer")
	// ErrChecksum marks a CRC mismatch (footer or chunk payload).
	ErrChecksum = errors.New("tracestore: checksum mismatch")
)

// FormatError reports a corrupt or truncated container, locating the damage
// by section, chunk, and byte offset.
type FormatError struct {
	// Section names the damaged structure ("magic", "trailer", "footer",
	// "meta", "index", "chunk").
	Section string
	// Chunk is the chunk index for Section=="chunk" (-1 otherwise).
	Chunk int
	// Offset is the file offset of the damaged structure.
	Offset int64
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *FormatError) Error() string {
	if e.Chunk >= 0 {
		return fmt.Sprintf("tracestore: chunk %d at byte %d: %v", e.Chunk, e.Offset, e.Err)
	}
	return fmt.Sprintf("tracestore: %s at byte %d: %v", e.Section, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *FormatError) Unwrap() error { return e.Err }

// Meta describes a stored trace. Records, Instructions, and LineFootprint
// are computed by the Writer; on input only Workload and ChunkRecords are
// consulted.
type Meta struct {
	// Workload is the generating workload's registry name (informational).
	Workload string
	// ChunkRecords is the records-per-chunk framing (0 selects
	// DefaultChunkRecords).
	ChunkRecords uint32
	// Records is the total record count.
	Records uint64
	// Instructions is the total instruction count (records plus their
	// NonMemBefore runs), the unit the window engine addresses.
	Instructions uint64
	// LineFootprint is the number of distinct 64-byte lines touched.
	LineFootprint uint64
}

// chunkInfo is one decoded index entry.
type chunkInfo struct {
	Offset      int64
	CompLen     uint32
	RawLen      uint32
	Records     uint32
	CRC         uint32
	StartRecord uint64
	StartInstr  uint64
}

// lineShift mirrors cache.LineShift (64-byte lines) without importing the
// cache package into the storage layer.
const lineShift = 6

// Writer streams records into a v2 container. It implements trace.Writer;
// because that interface cannot return errors, write failures are sticky:
// check Err (or the Close return) after appending. The output writer
// receives one Write per chunk plus the footer, so wrapping it in a
// bufio.Writer is unnecessary.
type Writer struct {
	w      io.Writer
	off    int64
	meta   Meta
	recs   []trace.Record
	chunks []chunkInfo
	lines  map[uint64]struct{}
	comp   *flate.Writer
	raw    bytes.Buffer
	cbuf   bytes.Buffer
	err    error
	closed bool
}

// NewWriter starts a v2 container on w. Only meta.Workload and
// meta.ChunkRecords are read; counts are computed as records arrive.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if meta.ChunkRecords == 0 {
		meta.ChunkRecords = DefaultChunkRecords
	}
	if meta.ChunkRecords > MaxChunkRecords {
		return nil, fmt.Errorf("tracestore: chunk size %d exceeds limit %d", meta.ChunkRecords, MaxChunkRecords)
	}
	if len(meta.Workload) > maxMetaLen-32 {
		return nil, fmt.Errorf("tracestore: workload name of %d bytes too long", len(meta.Workload))
	}
	meta.Records, meta.Instructions, meta.LineFootprint = 0, 0, 0
	tw := &Writer{
		w:     w,
		meta:  meta,
		recs:  make([]trace.Record, 0, meta.ChunkRecords),
		lines: make(map[uint64]struct{}),
	}
	if _, err := w.Write(headMagic[:]); err != nil {
		return nil, err
	}
	tw.off = int64(len(headMagic))
	return tw, nil
}

// Err returns the first write failure (nil while healthy).
func (w *Writer) Err() error { return w.err }

// Append implements trace.Writer. After a write failure it becomes a no-op;
// the error is reported by Err and Close.
func (w *Writer) Append(r trace.Record) {
	if w.err != nil || w.closed {
		return
	}
	w.recs = append(w.recs, r)
	w.meta.Records++
	w.meta.Instructions += uint64(r.NonMemBefore) + 1
	w.lines[r.Addr>>lineShift] = struct{}{}
	if len(w.recs) == int(w.meta.ChunkRecords) {
		w.err = w.flushChunk()
	}
}

// flushChunk encodes, compresses, and writes the buffered records as one
// chunk, recording its index entry.
func (w *Writer) flushChunk() error {
	if len(w.recs) == 0 {
		return nil
	}
	w.raw.Reset()
	var prevIP, prevAddr uint64
	var chunkInstr uint64
	var scratch [binary.MaxVarintLen64]byte
	for i := range w.recs {
		r := &w.recs[i]
		n := binary.PutVarint(scratch[:], int64(r.IP-prevIP))
		w.raw.Write(scratch[:n])
		n = binary.PutVarint(scratch[:], int64(r.Addr-prevAddr))
		w.raw.Write(scratch[:n])
		w.raw.WriteByte(byte(r.Kind))
		n = binary.PutUvarint(scratch[:], uint64(r.NonMemBefore))
		w.raw.Write(scratch[:n])
		w.raw.WriteByte(r.DepDist)
		prevIP, prevAddr = r.IP, r.Addr
		chunkInstr += uint64(r.NonMemBefore) + 1
	}
	raw := w.raw.Bytes()
	crc := crc32.Checksum(raw, castagnoli)
	w.cbuf.Reset()
	if w.comp == nil {
		var err error
		if w.comp, err = flate.NewWriter(&w.cbuf, flate.BestSpeed); err != nil {
			return err
		}
	} else {
		w.comp.Reset(&w.cbuf)
	}
	if _, err := w.comp.Write(raw); err != nil {
		return err
	}
	if err := w.comp.Close(); err != nil {
		return err
	}
	comp := w.cbuf.Bytes()
	if n, err := w.w.Write(comp); err != nil {
		return err
	} else if n < len(comp) {
		return io.ErrShortWrite
	}
	w.chunks = append(w.chunks, chunkInfo{
		Offset:      w.off,
		CompLen:     uint32(len(comp)),
		RawLen:      uint32(len(raw)),
		Records:     uint32(len(w.recs)),
		CRC:         crc,
		StartRecord: w.meta.Records - uint64(len(w.recs)),
		StartInstr:  w.meta.Instructions - chunkInstr,
	})
	w.off += int64(len(comp))
	w.recs = w.recs[:0]
	return nil
}

// Close flushes the final partial chunk and writes the footer and trailer.
// It returns the first error encountered anywhere in the stream.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if w.err = w.flushChunk(); w.err != nil {
		return w.err
	}
	w.meta.LineFootprint = uint64(len(w.lines))

	var footer bytes.Buffer
	var b [8]byte
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(b[:4], v); footer.Write(b[:4]) }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(b[:8], v); footer.Write(b[:8]) }
	for i := range w.chunks {
		c := &w.chunks[i]
		put64(uint64(c.Offset))
		put32(c.CompLen)
		put32(c.RawLen)
		put32(c.Records)
		put32(c.CRC)
		put64(c.StartRecord)
		put64(c.StartInstr)
	}
	metaStart := footer.Len()
	binary.LittleEndian.PutUint16(b[:2], FormatVersion)
	footer.Write(b[:2])
	put32(w.meta.ChunkRecords)
	put64(w.meta.Records)
	put64(w.meta.Instructions)
	put64(w.meta.LineFootprint)
	binary.LittleEndian.PutUint16(b[:2], uint16(len(w.meta.Workload)))
	footer.Write(b[:2])
	footer.WriteString(w.meta.Workload)
	metaLen := footer.Len() - metaStart

	crc := crc32.Checksum(footer.Bytes(), castagnoli)
	put64(uint64(w.off)) // footerOff: chunks end where the footer begins
	put32(uint32(len(w.chunks)))
	put32(uint32(metaLen))
	put32(crc)
	footer.Write(tailMagic[:])

	out := footer.Bytes()
	if n, err := w.w.Write(out); err != nil {
		w.err = err
	} else if n < len(out) {
		w.err = io.ErrShortWrite
	}
	return w.err
}

// Write encodes an in-memory trace as a complete v2 container on w.
func Write(w io.Writer, s *trace.Slice, meta Meta) error {
	tw, err := NewWriter(w, meta)
	if err != nil {
		return err
	}
	for i := range s.Records {
		tw.Append(s.Records[i])
	}
	return tw.Close()
}
