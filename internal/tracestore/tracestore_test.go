package tracestore

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"

	_ "github.com/bertisim/berti/internal/workloads/cloudlike"
	_ "github.com/bertisim/berti/internal/workloads/gap"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

// synthSlice builds a deterministic trace with varied deltas, kinds,
// NonMemBefore runs, and dependences.
func synthSlice(n int, seed uint64) *trace.Slice {
	s := &trace.Slice{Records: make([]trace.Record, 0, n)}
	x := seed*2862933555777941757 + 3037000493
	for i := 0; i < n; i++ {
		x = x*2862933555777941757 + 3037000493
		s.Append(trace.Record{
			IP:           0x400000 + (x>>7)%4096*21,
			Addr:         0x1_0000_0000 + (x>>19)%(1<<24)*8,
			Kind:         trace.Kind((x >> 3) & 1),
			NonMemBefore: uint32((x >> 33) % 13),
			DepDist:      uint8((x >> 45) % 7),
		})
	}
	return s
}

// encodeV2 round-trips a slice into an opened in-memory container.
func encodeV2(t *testing.T, s *trace.Slice, chunk uint32, name string) *File {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s, Meta{Workload: name, ChunkRecords: chunk}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	return f
}

// drain reads a Reader to EOF.
func drain(t *testing.T, r *Reader) []trace.Record {
	t.Helper()
	var out []trace.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(out), err)
		}
		out = append(out, rec)
	}
}

func sameRecords(t *testing.T, want, got []trace.Record, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestRoundTripAllWorkloads checks encode -> stream-decode identity against
// the in-memory v1 path on every registered seed workload, through both the
// synchronous and the parallel pipeline.
func TestRoundTripAllWorkloads(t *testing.T) {
	all := workloads.All()
	if len(all) == 0 {
		t.Fatal("no workloads registered")
	}
	records := 20_000
	if testing.Short() {
		records = 6_000
	}
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			s := w.Gen(workloads.GenConfig{MemRecords: records, Seed: 42})

			// v1 reference: the in-memory binary codec must agree.
			var v1 bytes.Buffer
			if err := trace.Encode(&v1, s); err != nil {
				t.Fatalf("v1 encode: %v", err)
			}
			v1dec, err := trace.Decode(&v1)
			if err != nil {
				t.Fatalf("v1 decode: %v", err)
			}
			sameRecords(t, s.Records, v1dec.Records, "v1 round trip")

			f := encodeV2(t, s, 1<<10, w.Name)
			if m := f.Meta(); m.Records != uint64(len(s.Records)) || m.Instructions != s.Instructions() || m.Workload != w.Name {
				t.Fatalf("meta = %+v, want %d records / %d instructions / %q",
					m, len(s.Records), s.Instructions(), w.Name)
			}
			sameRecords(t, s.Records, drain(t, f.NewReader(ReaderOptions{Workers: 1})), "sync stream")
			par := f.NewReader(ReaderOptions{Workers: 4})
			sameRecords(t, s.Records, drain(t, par), "parallel stream")
			all, err := f.ReadAll()
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			sameRecords(t, s.Records, all.Records, "ReadAll")
		})
	}
}

// TestWindowFastForward checks that index-based fast-forward lands on the
// exact record boundary a naive linear scan picks, including targets that
// fall exactly on chunk boundaries.
func TestWindowFastForward(t *testing.T) {
	const chunk = 512
	s := synthSlice(10*chunk+137, 7)
	f := encodeV2(t, s, chunk, "ff")
	total := s.Instructions()

	// naive: first record index whose retirement exceeds target.
	naive := func(target uint64) (int, uint64) {
		var cum uint64
		for i := range s.Records {
			step := uint64(s.Records[i].NonMemBefore) + 1
			if cum+step > target {
				return i, cum
			}
			cum += step
		}
		return len(s.Records), cum
	}
	recordIndexOf := func(chunkIdx, skip int) int {
		if chunkIdx >= f.Chunks() {
			return int(f.Meta().Records)
		}
		return int(f.chunks[chunkIdx].StartRecord) + skip
	}

	targets := []uint64{0, 1, 57, total / 3, total / 2, total - 1, total, total + 1000}
	// Exact chunk-boundary targets: the cumulative instruction count at
	// each chunk's first record, and one instruction either side.
	for i := 1; i < f.Chunks(); i++ {
		si := f.chunks[i].StartInstr
		targets = append(targets, si-1, si, si+1)
	}
	for _, target := range targets {
		wantIdx, wantCum := naive(target)
		chunkIdx, skip, startInstr, err := f.FastForward(target)
		if err != nil {
			t.Fatalf("FastForward(%d): %v", target, err)
		}
		if got := recordIndexOf(chunkIdx, skip); got != wantIdx || startInstr != wantCum {
			t.Fatalf("FastForward(%d) = record %d (instr %d), want record %d (instr %d)",
				target, got, startInstr, wantIdx, wantCum)
		}
		rd, err := f.NewWindowReader(target, ReaderOptions{Workers: 2})
		if err != nil {
			t.Fatalf("NewWindowReader(%d): %v", target, err)
		}
		sameRecords(t, s.Records[wantIdx:], drain(t, rd), "windowed stream")
	}
}

// TestLoopParity checks the streaming loop reader against trace.LoopReader
// across several wraps.
func TestLoopParity(t *testing.T) {
	s := synthSlice(700, 3)
	f := encodeV2(t, s, 256, "loop")
	want := trace.NewLoopReader(s)
	got := f.NewReader(ReaderOptions{Workers: 3, Loop: true})
	defer got.Close()
	for i := 0; i < 5*len(s.Records)/2; i++ {
		w, err := want.Next()
		if err != nil {
			t.Fatalf("LoopReader: %v", err)
		}
		g, err := got.Next()
		if err != nil {
			t.Fatalf("streaming loop at %d: %v", i, err)
		}
		if w != g {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
	}
	if got.Loops() != 2 {
		t.Fatalf("Loops = %d, want 2", got.Loops())
	}
}

// TestEmptyTrace: zero records must round-trip and stream to immediate EOF,
// looping or not (matching LoopReader's empty-slice behaviour).
func TestEmptyTrace(t *testing.T) {
	f := encodeV2(t, &trace.Slice{}, 0, "")
	if f.Chunks() != 0 || f.Meta().Records != 0 {
		t.Fatalf("empty trace: %d chunks, %d records", f.Chunks(), f.Meta().Records)
	}
	for _, opt := range []ReaderOptions{{Workers: 1}, {Workers: 2}, {Workers: 2, Loop: true}} {
		r := f.NewReader(opt)
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("Next on empty (opts %+v) = %v, want EOF", opt, err)
		}
	}
}

// TestReaderClose: closing mid-stream stops the pipeline and poisons Next.
func TestReaderClose(t *testing.T) {
	f := encodeV2(t, synthSlice(5000, 9), 256, "close")
	r := f.NewReader(ReaderOptions{Workers: 4, Loop: true})
	for i := 0; i < 100; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrReaderClosed) {
		t.Fatalf("Next after Close = %v, want ErrReaderClosed", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCorpusEnsure: the cache generates once, reuses thereafter, and
// regenerates a damaged entry.
func TestCorpusEnsure(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := synthSlice(3000, 11)
	gens := 0
	gen := func() *trace.Slice { gens++; return s }
	k := Key{Workload: "synthetic/x", Records: 3000, Seed: 42}

	f1, err := c.Ensure(k, gen)
	if err != nil {
		t.Fatalf("Ensure (miss): %v", err)
	}
	sameRecords(t, s.Records, drain(t, f1.NewReader(ReaderOptions{Workers: 1})), "first Ensure")
	f1.Close()
	f2, err := c.Ensure(k, gen)
	if err != nil {
		t.Fatalf("Ensure (hit): %v", err)
	}
	f2.Close()
	if gens != 1 {
		t.Fatalf("generator ran %d times, want 1", gens)
	}
	// Distinct keys map to distinct files.
	if c.Path(k) == c.Path(Key{Workload: "synthetic/x", Records: 3000, Seed: 43}) {
		t.Fatal("different seeds share a cache path")
	}

	// Damage the entry: Ensure must regenerate, not fail.
	path := c.Path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	f3, err := c.Ensure(k, gen)
	if err != nil {
		t.Fatalf("Ensure (corrupt entry): %v", err)
	}
	sameRecords(t, s.Records, drain(t, f3.NewReader(ReaderOptions{Workers: 1})), "regenerated entry")
	f3.Close()
	if gens != 2 {
		t.Fatalf("generator ran %d times after corruption, want 2", gens)
	}
	// No temp litter.
	matches, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

// failingWriter errors after n bytes (disk-full simulation).
type failingWriter struct {
	n    int
	fail error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.fail
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriterShortWrite: a failing sink must surface through Append/Close,
// never silently truncate.
func TestWriterShortWrite(t *testing.T) {
	s := synthSlice(4096, 5)
	wantErr := errors.New("disk full")
	for _, budget := range []int{0, 4, 2000} {
		fw := &failingWriter{n: budget, fail: wantErr}
		tw, err := NewWriter(fw, Meta{ChunkRecords: 512})
		if budget < len(headMagic) {
			if err == nil {
				t.Fatalf("budget %d: NewWriter succeeded", budget)
			}
			continue
		}
		if err != nil {
			t.Fatalf("budget %d: NewWriter: %v", budget, err)
		}
		for i := range s.Records {
			tw.Append(s.Records[i])
		}
		if err := tw.Close(); !errors.Is(err, wantErr) {
			t.Fatalf("budget %d: Close = %v, want %v", budget, err, wantErr)
		}
		if tw.Err() == nil {
			t.Fatalf("budget %d: Err() nil after failed write", budget)
		}
	}
}

// TestOpenRejectsDamage: structural damage must yield *FormatError, and a
// v1 stream must be rejected with ErrNotV2.
func TestOpenRejectsDamage(t *testing.T) {
	s := synthSlice(2000, 13)
	var buf bytes.Buffer
	if err := Write(&buf, s, Meta{ChunkRecords: 256, Workload: "dmg"}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := OpenBytes(valid); err != nil {
		t.Fatalf("valid container rejected: %v", err)
	}

	check := func(label string, data []byte, want error) {
		t.Helper()
		_, err := OpenBytes(data)
		if err == nil {
			t.Fatalf("%s: accepted", label)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error %v is not *FormatError", label, err)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("%s: error %v, want %v", label, err, want)
		}
	}
	mut := func(i int) []byte {
		d := append([]byte(nil), valid...)
		d[i] ^= 0xff
		return d
	}
	var v1 bytes.Buffer
	if err := trace.Encode(&v1, s); err != nil {
		t.Fatal(err)
	}
	check("v1 stream", v1.Bytes(), ErrNotV2)
	check("bad head magic", mut(0), ErrNotV2)
	check("bad tail magic", mut(len(valid)-1), ErrBadTrailer)
	check("damaged index", mut(len(valid)-trailerLen-50), ErrChecksum)
	check("truncated footer", valid[:len(valid)-trailerLen-10], nil)
	check("truncated to header", valid[:HeadMagicLen], nil)

	// A flipped payload byte passes Open (footer is intact) but must fail
	// the chunk CRC at decode time.
	d := mut(HeadMagicLen + 3)
	f, err := OpenBytes(d)
	if err != nil {
		t.Fatalf("payload damage rejected at Open (footer is intact): %v", err)
	}
	if _, err := f.NewReader(ReaderOptions{Workers: 1}).Next(); err == nil {
		t.Fatal("damaged chunk decoded cleanly")
	} else if !errors.Is(err, ErrChecksum) {
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("damaged chunk error %v is not *FormatError", err)
		}
	}
}
