package tracestore

import (
	"errors"
	"io"
	"runtime"
	"sync"

	"github.com/bertisim/berti/internal/trace"
)

// ReaderOptions tunes a streaming reader.
type ReaderOptions struct {
	// Workers is the number of concurrent chunk-decode goroutines. 0 picks
	// min(GOMAXPROCS, 8); 1 decodes synchronously on the consuming
	// goroutine (no pipeline, no goroutines — the single-threaded
	// baseline).
	Workers int
	// Ahead bounds how many decoded chunks may sit ready in front of the
	// consumer (0 = 2x workers). Together with Workers it bounds peak
	// decoded-records-resident memory at (Ahead + Workers + 1) chunks,
	// independent of trace length.
	Ahead int
	// Loop replays the trace forever (multi-core mixes), matching
	// trace.LoopReader: EOF is returned only for an empty trace.
	Loop bool
}

// ErrReaderClosed is returned by Next after Close.
var ErrReaderClosed = errors.New("tracestore: reader closed")

// job asks a worker to decode one chunk; the per-job channel (buffered 1)
// is the ordered hand-off slot.
type job struct {
	idx     int
	skip    int
	wrapped bool
	ch      chan chunkResult
}

type chunkResult struct {
	recs    []trace.Record
	err     error
	wrapped bool
}

// Reader streams records out of a File, implementing trace.Reader. With
// Workers > 1 it runs a bounded pipeline: a producer enumerates chunks in
// order, workers decompress and parse them concurrently, and the consumer
// receives them strictly in order through per-chunk hand-off slots. Close
// must be called to release the pipeline goroutines unless Next has already
// returned an error (EOF included).
type Reader struct {
	f    *File
	loop bool

	cur   []trace.Record
	pos   int
	loops int
	err   error

	// Synchronous mode (Workers == 1).
	sync      bool
	nextChunk int
	skip      int
	sc        *scratch

	// Pipeline mode.
	pending  chan chan chunkResult
	stop     chan struct{}
	stopOnce sync.Once
}

// NewReader returns a streaming reader over the whole trace.
func (f *File) NewReader(o ReaderOptions) *Reader {
	return f.newReader(0, 0, o)
}

// NewWindowReader returns a streaming reader fast-forwarded to the
// instruction-window start (see FastForward): the first record returned is
// the first whose retirement pushes the cumulative instruction count past
// startInstr. Skipped chunks are never decompressed. With Loop set, later
// laps replay from the beginning of the trace.
func (f *File) NewWindowReader(startInstr uint64, o ReaderOptions) (*Reader, error) {
	chunk, skip, _, err := f.FastForward(startInstr)
	if err != nil {
		return nil, err
	}
	return f.newReader(chunk, skip, o), nil
}

func (f *File) newReader(startChunk, skip int, o ReaderOptions) *Reader {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	r := &Reader{f: f, loop: o.Loop}
	if workers == 1 {
		r.sync = true
		r.nextChunk = startChunk
		r.skip = skip
		r.sc = newScratch()
		return r
	}
	ahead := o.Ahead
	if ahead <= 0 {
		ahead = 2 * workers
	}
	r.pending = make(chan chan chunkResult, ahead)
	r.stop = make(chan struct{})
	jobs := make(chan job, workers)

	// Producer: enumerate chunks in order, pairing each decode job with the
	// hand-off slot the consumer will read, so results arrive in order no
	// matter which worker finishes first. Both sends respect stop, so Close
	// never strands it.
	go func() {
		defer close(jobs)
		chunk, skip, wrapped := startChunk, skip, false
		for {
			if chunk >= len(r.f.chunks) {
				if !r.loop || len(r.f.chunks) == 0 {
					close(r.pending)
					return
				}
				chunk, skip, wrapped = 0, 0, true
			}
			ch := make(chan chunkResult, 1)
			j := job{idx: chunk, skip: skip, wrapped: wrapped, ch: ch}
			select {
			case jobs <- j:
			case <-r.stop:
				return
			}
			select {
			case r.pending <- ch:
			case <-r.stop:
				return
			}
			chunk, skip, wrapped = chunk+1, 0, false
		}
	}()
	for w := 0; w < workers; w++ {
		go func() {
			sc := newScratch()
			for {
				select {
				case j, ok := <-jobs:
					if !ok {
						return
					}
					recs, err := r.f.decodeChunk(j.idx, sc)
					if err == nil && j.skip > 0 {
						recs = recs[j.skip:]
					}
					j.ch <- chunkResult{recs: recs, err: err, wrapped: j.wrapped}
				case <-r.stop:
					return
				}
			}
		}()
	}
	return r
}

// Next implements trace.Reader. Decode failures surface as the
// *FormatError of the damaged chunk; the reader is unusable afterwards.
func (r *Reader) Next() (trace.Record, error) {
	for r.pos >= len(r.cur) {
		if r.err != nil {
			return trace.Record{}, r.err
		}
		if r.sync {
			if err := r.advanceSync(); err != nil {
				r.err = err
				return trace.Record{}, err
			}
			continue
		}
		ch, ok := <-r.pending
		if !ok {
			r.err = io.EOF
			return trace.Record{}, io.EOF
		}
		res := <-ch
		if res.err != nil {
			r.err = res.err
			r.shutdown()
			return trace.Record{}, res.err
		}
		if res.wrapped {
			r.loops++
		}
		r.cur, r.pos = res.recs, 0
	}
	rec := r.cur[r.pos]
	r.pos++
	return rec, nil
}

// advanceSync decodes the next chunk inline (Workers == 1 mode).
func (r *Reader) advanceSync() error {
	if r.nextChunk >= len(r.f.chunks) {
		if !r.loop || len(r.f.chunks) == 0 {
			return io.EOF
		}
		r.nextChunk, r.skip = 0, 0
		r.loops++
	}
	recs, err := r.f.decodeChunk(r.nextChunk, r.sc)
	if err != nil {
		return err
	}
	r.cur, r.pos = recs[r.skip:], 0
	r.nextChunk++
	r.skip = 0
	return nil
}

// Loops reports how many times a looping reader has wrapped.
func (r *Reader) Loops() int { return r.loops }

// shutdown stops the pipeline goroutines without marking the reader closed.
func (r *Reader) shutdown() {
	if r.stop != nil {
		r.stopOnce.Do(func() { close(r.stop) })
	}
}

// Close stops the decode pipeline and releases its goroutines. It is safe
// to call multiple times; subsequent Next calls return ErrReaderClosed.
func (r *Reader) Close() error {
	if r.err == nil {
		r.err = ErrReaderClosed
	}
	r.cur, r.pos = nil, 0
	r.shutdown()
	return nil
}
