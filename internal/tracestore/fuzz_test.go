package tracestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/bertisim/berti/internal/trace"
)

// FuzzDecode throws arbitrary bytes at the v2 container. Opening and fully
// streaming any input must never panic, and allocations stay bounded by the
// format's validated limits (chunk record counts are cross-checked against
// payload sizes before any record slice is sized, and inflation is capped
// at the declared raw length) no matter what the length fields claim.
// Accepted inputs must round-trip: re-encoding the streamed records yields
// a container that decodes to the identical record sequence.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid containers plus the structured-damage variants the
	// decoder must reject gracefully (damaged index footer, bad chunk CRC,
	// truncated chunk, lying trailer).
	var empty bytes.Buffer
	if err := Write(&empty, &trace.Slice{}, Meta{}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	s := synthFuzzSlice(600)
	var full bytes.Buffer
	if err := Write(&full, s, Meta{Workload: "fuzz-seed", ChunkRecords: 128}); err != nil {
		f.Fatal(err)
	}
	valid := full.Bytes()
	f.Add(valid)

	mut := func(i int) []byte {
		d := append([]byte(nil), valid...)
		d[i] ^= 0xff
		return d
	}
	f.Add(mut(len(valid) - trailerLen - 30))  // damaged index footer entry
	f.Add(mut(HeadMagicLen + 2))              // bad chunk payload -> CRC mismatch
	f.Add(valid[:HeadMagicLen+10])            // truncated mid-chunk, no footer
	f.Add(valid[:len(valid)-trailerLen])      // trailer sheared off
	f.Add(valid[:len(valid)-trailerLen-7])    // truncated inside footer
	f.Add(mut(len(valid) - 1))                // bad tail magic
	f.Add([]byte("BERTITR1not-a-v2-file...")) // v1 magic
	// Trailer claiming a huge chunk count over no data.
	huge := append([]byte(nil), headMagic[:]...)
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(len(huge)))
	binary.LittleEndian.PutUint32(tr[8:12], 1<<30)
	copy(tr[20:28], tailMagic[:])
	f.Add(append(huge, tr[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := OpenBytes(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("Open error is not a *FormatError: %v", err)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(data)) {
				t.Fatalf("FormatError offset %d outside input of %d bytes", fe.Offset, len(data))
			}
			return
		}
		got, err := streamAll(tf)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error is not a *FormatError: %v", err)
			}
			return
		}
		if uint64(len(got)) != tf.Meta().Records {
			t.Fatalf("streamed %d records, meta claims %d", len(got), tf.Meta().Records)
		}
		// Window fast-forward on an accepted input must never fail or
		// mis-position.
		if n := tf.Meta().Instructions; n > 0 {
			chunk, skip, _, err := tf.FastForward(n / 2)
			if err != nil {
				t.Fatalf("FastForward on accepted input: %v", err)
			}
			if chunk > tf.Chunks() || (chunk == tf.Chunks() && skip != 0) {
				t.Fatalf("FastForward out of range: chunk %d skip %d of %d chunks", chunk, skip, tf.Chunks())
			}
		}
		// Re-encode and compare (the container is not canonical byte-wise —
		// chunk framing may differ — but the record sequence is).
		var buf bytes.Buffer
		if err := Write(&buf, &trace.Slice{Records: got}, Meta{ChunkRecords: tf.Meta().ChunkRecords}); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		tf2, err := OpenBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("re-open of re-encoded input: %v", err)
		}
		again, err := streamAll(tf2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded input: %v", err)
		}
		if len(got) != len(again) {
			t.Fatalf("round trip changed length: %d != %d", len(got), len(again))
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("record %d changed in round trip: %+v != %+v", i, got[i], again[i])
			}
		}
	})
}

// streamAll drains a file through the synchronous reader.
func streamAll(f *File) ([]trace.Record, error) {
	r := f.NewReader(ReaderOptions{Workers: 1})
	var out []trace.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// synthFuzzSlice mirrors synthSlice without depending on test ordering.
func synthFuzzSlice(n int) *trace.Slice {
	s := &trace.Slice{}
	x := uint64(99)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		s.Append(trace.Record{
			IP:           0x400000 + (x>>5)%512*21,
			Addr:         0x2_0000_0000 + (x>>17)%(1<<20)*64,
			Kind:         trace.Kind((x >> 2) & 1),
			NonMemBefore: uint32((x >> 31) % 9),
			DepDist:      uint8((x >> 41) % 4),
		})
	}
	return s
}
