package tracestore

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"testing"

	"github.com/bertisim/berti/internal/trace"
)

// benchFile lazily builds a >=1M-record container shared by the decode
// benchmarks (encoding it once keeps -benchtime=1x smoke runs quick).
var (
	benchOnce  sync.Once
	benchData  []byte
	benchRecs  int
	benchInstr uint64
)

func benchContainer(b *testing.B) *File {
	b.Helper()
	benchOnce.Do(func() {
		const n = 1 << 20 // 1,048,576 records
		s := synthSlice(n, 17)
		var buf bytes.Buffer
		if err := Write(&buf, s, Meta{Workload: "bench"}); err != nil {
			b.Fatal(err)
		}
		benchData = buf.Bytes()
		benchRecs = n
		benchInstr = s.Instructions()
	})
	f, err := OpenBytes(benchData)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func drainBench(b *testing.B, r *Reader) {
	b.Helper()
	var n int
	var sum uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		n++
		sum += rec.Addr
	}
	if n != benchRecs {
		b.Fatalf("streamed %d records, want %d", n, benchRecs)
	}
	_ = sum
}

// BenchmarkDecode compares single-threaded whole-file decode against the
// parallel chunk pipeline on a >=1M-record trace. bytes/op is the
// compressed container size, so MB/s is decode throughput.
func BenchmarkDecode(b *testing.B) {
	f := benchContainer(b)
	b.Run("single", func(b *testing.B) {
		b.SetBytes(int64(len(benchData)))
		b.ReportMetric(float64(benchRecs), "records")
		for i := 0; i < b.N; i++ {
			drainBench(b, f.NewReader(ReaderOptions{Workers: 1}))
		}
	})
	b.Run("parallel", func(b *testing.B) {
		// Pinned at 4 workers: the pipeline's win needs spare cores, and
		// GOMAXPROCS-sized pools understate it on constrained CI runners.
		workers := 4
		if n := runtime.GOMAXPROCS(0); n > workers {
			workers = n
		}
		b.SetBytes(int64(len(benchData)))
		b.ReportMetric(float64(workers), "workers")
		for i := 0; i < b.N; i++ {
			r := f.NewReader(ReaderOptions{Workers: workers})
			drainBench(b, r)
			r.Close()
		}
	})
	b.Run("v1-whole-file", func(b *testing.B) {
		// The pre-tentpole baseline: decode an uncompressed v1 stream
		// wholly into memory.
		s, err := f.ReadAll()
		if err != nil {
			b.Fatal(err)
		}
		var v1 bytes.Buffer
		if err := trace.Encode(&v1, s); err != nil {
			b.Fatal(err)
		}
		data := v1.Bytes()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := trace.Decode(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWindowSeek measures index-based fast-forward to the middle of
// the trace (decodes exactly one chunk regardless of trace length).
func BenchmarkWindowSeek(b *testing.B) {
	f := benchContainer(b)
	for i := 0; i < b.N; i++ {
		if _, _, _, err := f.FastForward(benchInstr / 2); err != nil {
			b.Fatal(err)
		}
	}
}
