package ringbuf

import "testing"

// drain returns the ring's contents front to back.
func drain(r *Ring[int]) []int {
	out := make([]int, 0, r.Len())
	for i := 0; i < r.Len(); i++ {
		out = append(out, *r.At(i))
	}
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPushPopWrap(t *testing.T) {
	var r Ring[int]
	r.Init(4)
	// Cycle through far more entries than the capacity so the head wraps.
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			r.Push(round*10 + i)
		}
		if r.Len() != 3 {
			t.Fatalf("round %d: len=%d want 3", round, r.Len())
		}
		for i := 0; i < 3; i++ {
			if got := *r.Front(); got != round*10+i {
				t.Fatalf("round %d: front=%d want %d", round, got, round*10+i)
			}
			r.PopFront()
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len=%d want 0", r.Len())
	}
}

func TestRemoveAtMatchesSplice(t *testing.T) {
	// RemoveAt must preserve order exactly like append(q[:i], q[i+1:]...).
	for removeIdx := 0; removeIdx < 5; removeIdx++ {
		var r Ring[int]
		r.Init(8)
		// Offset the head so the removal crosses the wrap point.
		for i := 0; i < 6; i++ {
			r.Push(-1)
			r.PopFront()
		}
		ref := []int{}
		for i := 0; i < 5; i++ {
			r.Push(i * 7)
			ref = append(ref, i*7)
		}
		r.RemoveAt(removeIdx)
		ref = append(ref[:removeIdx], ref[removeIdx+1:]...)
		if got := drain(&r); !eq(got, ref) {
			t.Fatalf("RemoveAt(%d): got %v want %v", removeIdx, got, ref)
		}
	}
}

func TestGrowPreservesOrder(t *testing.T) {
	var r Ring[int]
	r.Init(4)
	// Wrap the head, then push past capacity to force growth.
	r.Push(0)
	r.Push(0)
	r.PopFront()
	r.PopFront()
	want := []int{}
	for i := 0; i < 37; i++ {
		r.Push(i)
		want = append(want, i)
	}
	if got := drain(&r); !eq(got, want) {
		t.Fatalf("after grow: got %v want %v", got, want)
	}
}

func TestInitRoundsUp(t *testing.T) {
	var r Ring[int]
	r.Init(0)
	if len(r.buf) != 4 {
		t.Fatalf("Init(0): cap=%d want 4", len(r.buf))
	}
	r.Init(33)
	if len(r.buf) != 64 {
		t.Fatalf("Init(33): cap=%d want 64", len(r.buf))
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	var r Ring[int]
	r.Init(16)
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			r.Push(i)
		}
		r.RemoveAt(7)
		for r.Len() > 0 {
			r.PopFront()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", avg)
	}
}
