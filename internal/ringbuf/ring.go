// Package ringbuf provides a fixed-capacity circular buffer used by the
// simulation hot path (cache queues, DRAM queues). Entries are stored by
// value in a power-of-two backing array, so steady-state enqueue/dequeue
// performs zero allocations and no head-shifting copies — the two costs the
// `q = q[1:]` / `append(q[:i], q[i+1:]...)` slice idiom pays per access.
//
// The ring auto-grows when pushed past its capacity. Normal simulation
// paths never trigger growth — callers enforce the architectural queue
// bounds (RQSize, WQSize, ...) before pushing — but deliberate-damage paths
// (the pq-orphan fault plan) overfill queues on purpose, and the ring must
// tolerate that rather than panic.
package ringbuf

// Ring is a circular buffer of T with power-of-two capacity. The zero
// value is unusable; call Init first.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Init sizes the ring for at least capacity entries (rounded up to a power
// of two, minimum 4) and clears it.
func (r *Ring[T]) Init(capacity int) {
	c := 4
	for c < capacity {
		c <<= 1
	}
	r.buf = make([]T, c)
	r.head = 0
	r.n = 0
}

// Len returns the number of entries.
func (r *Ring[T]) Len() int { return r.n }

// At returns a pointer to the i-th entry from the front. The pointer is
// valid until the next Push (which may grow the backing array) or removal.
func (r *Ring[T]) At(i int) *T {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Front returns a pointer to the oldest entry.
func (r *Ring[T]) Front() *T { return &r.buf[r.head] }

// Push appends v at the back and returns a pointer to the stored entry,
// growing the backing array when full.
func (r *Ring[T]) Push(v T) *T {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := (r.head + r.n) & (len(r.buf) - 1)
	r.buf[i] = v
	r.n++
	return &r.buf[i]
}

// PopFront removes the oldest entry, zeroing its slot so value types
// holding pointers (callbacks, interfaces) do not pin garbage.
func (r *Ring[T]) PopFront() {
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// RemoveAt deletes the i-th entry from the front, preserving the relative
// order of the remaining entries (identical semantics to the slice splice
// append(q[:i], q[i+1:]...)): entries behind i shift forward one slot.
func (r *Ring[T]) RemoveAt(i int) {
	mask := len(r.buf) - 1
	for j := i; j < r.n-1; j++ {
		r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
	}
	var zero T
	r.buf[(r.head+r.n-1)&mask] = zero
	r.n--
}

// Truncate drops the entries at positions >= k, zeroing their slots. Used
// by single-pass queue compaction: the caller copies kept entries toward
// the front with At and cuts the tail off here.
func (r *Ring[T]) Truncate(k int) {
	var zero T
	mask := len(r.buf) - 1
	for j := k; j < r.n; j++ {
		r.buf[(r.head+j)&mask] = zero
	}
	r.n = k
}

// grow doubles the backing array, compacting entries to the front.
func (r *Ring[T]) grow() {
	nb := make([]T, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		nb[i] = *r.At(i)
	}
	r.buf = nb
	r.head = 0
}
