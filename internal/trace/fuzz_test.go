package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the trace decoder. Decode must never
// panic and never allocate proportionally to what a corrupt length field
// claims; any accepted input must round-trip through Encode byte-for-byte
// (the encoding is canonical: one byte sequence per trace).
func FuzzDecode(f *testing.F) {
	// Seed corpus: empty trace, a small real trace, and damaged variants.
	var empty bytes.Buffer
	if err := Encode(&empty, &Slice{}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	s := &Slice{}
	for i := 0; i < 32; i++ {
		s.Append(Record{
			IP:           0x400000 + uint64(i)*4,
			Addr:         0x7f0000 + uint64(i)*64,
			Kind:         Kind(i % 2),
			NonMemBefore: uint32(i % 7),
			DepDist:      uint8(i % 5),
		})
	}
	var full bytes.Buffer
	if err := Encode(&full, s); err != nil {
		f.Fatal(err)
	}
	valid := full.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])          // truncated mid-record
	f.Add(valid[:MagicLen])              // header only
	f.Add([]byte("NOTATRACEFILE!!!"))    // bad magic
	f.Add(append([]byte{}, magic[:]...)) // magic, no count
	// Huge claimed record count over no data.
	f.Add(append(append([]byte{}, magic[:]...), 0xff, 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Decode error is not a *DecodeError: %v", err)
			}
			if de.Offset < 0 || de.Offset > int64(len(data)) {
				t.Fatalf("DecodeError offset %d outside input of %d bytes", de.Offset, len(data))
			}
			return
		}
		// Accepted input must re-encode to a trace that decodes identically.
		var buf bytes.Buffer
		if err := Encode(&buf, got); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding: %v", err)
		}
		if got.Len() != again.Len() {
			t.Fatalf("round trip changed length: %d != %d", got.Len(), again.Len())
		}
		for i := range got.Records {
			if got.Records[i] != again.Records[i] {
				t.Fatalf("record %d changed in round trip: %+v != %+v",
					i, got.Records[i], again.Records[i])
			}
		}
	})
}
