package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTrace(n int, seed int64) *Slice {
	rng := rand.New(rand.NewSource(seed))
	s := &Slice{}
	var ip, addr uint64 = 0x400000, 0x10000000
	for i := 0; i < n; i++ {
		ip += uint64(rng.Intn(64))
		addr += uint64(rng.Int63n(1<<20)) - 1<<19
		k := Load
		if rng.Intn(4) == 0 {
			k = Store
		}
		s.Append(Record{
			IP: ip, Addr: addr, Kind: k,
			NonMemBefore: uint32(rng.Intn(16)),
			DepDist:      uint8(rng.Intn(8)),
		})
	}
	return s
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	s := sampleTrace(5000, 1)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s.Records, got.Records) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Slice{}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("expected empty, got %d", got.Len())
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := Decode(bytes.NewReader([]byte("NOTATRACEFILE!!!")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("expected ErrBadMagic, got %v", err)
	}
	var de *DecodeError
	if !errors.As(err, &de) || de.Field != "magic" {
		t.Fatalf("expected *DecodeError for field magic, got %#v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := sampleTrace(100, 2)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Decode(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("expected error on truncated input")
	}
}

// TestRoundtripProperty: any generated record sequence survives a
// roundtrip (property-based via testing/quick).
func TestRoundtripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := sampleTrace(int(n), seed)
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(s.Records) == 0 {
			return got.Len() == 0
		}
		return reflect.DeepEqual(s.Records, got.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceReader(t *testing.T) {
	s := sampleTrace(10, 3)
	r := NewSliceReader(s)
	for i := 0; i < 10; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != s.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	r.Reset()
	if rec, err := r.Next(); err != nil || rec != s.Records[0] {
		t.Fatal("reset did not rewind")
	}
}

func TestLoopReaderWraps(t *testing.T) {
	s := sampleTrace(4, 4)
	r := NewLoopReader(s)
	for i := 0; i < 11; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("loop read %d: %v", i, err)
		}
		if rec != s.Records[i%4] {
			t.Fatalf("loop read %d mismatch", i)
		}
	}
	if r.Loops != 2 {
		t.Fatalf("expected 2 wraps, got %d", r.Loops)
	}
}

func TestLoopReaderEmpty(t *testing.T) {
	r := NewLoopReader(&Slice{})
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF on empty loop reader, got %v", err)
	}
}

func TestInstructionsCount(t *testing.T) {
	s := &Slice{}
	s.Append(Record{NonMemBefore: 3})
	s.Append(Record{NonMemBefore: 0})
	s.Append(Record{NonMemBefore: 7})
	if got := s.Instructions(); got != 13 {
		t.Fatalf("instructions = %d, want 13", got)
	}
}
