// Package trace defines the memory-access trace format consumed by the
// simulator and produced by the workload generators.
//
// A trace is a sequence of Records. Each record describes one memory
// instruction: its instruction pointer, the virtual address it touches,
// whether it is a load or a store, and the number of non-memory
// instructions that execute before it (so instruction counts and IPC are
// well defined without storing every ALU op).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Load is a demand read.
	Load Kind = iota
	// Store is a demand write.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one memory instruction in a trace.
type Record struct {
	// IP is the virtual address of the instruction itself.
	IP uint64
	// Addr is the virtual byte address accessed.
	Addr uint64
	// Kind is Load or Store.
	Kind Kind
	// NonMemBefore is the number of non-memory instructions that retire
	// between the previous memory instruction and this one.
	NonMemBefore uint32
	// DepDist is the data-dependence distance: 0 means the access address
	// does not depend on an earlier load's value; k > 0 means the address
	// was computed from the value returned by the k-th previous memory
	// record (pointer chasing). The simulator delays issue of dependent
	// accesses until the producer load completes.
	DepDist uint8
}

// Reader yields trace records in program order.
type Reader interface {
	// Next returns the next record. It returns io.EOF when the trace is
	// exhausted and the reader may not be used afterwards.
	Next() (Record, error)
}

// Writer consumes trace records.
type Writer interface {
	Append(Record)
}

// Slice is an in-memory trace. It implements Writer; use NewSliceReader to
// iterate it.
type Slice struct {
	Records []Record
}

// Append implements Writer.
func (s *Slice) Append(r Record) { s.Records = append(s.Records, r) }

// Len returns the number of records.
func (s *Slice) Len() int { return len(s.Records) }

// Instructions returns the total instruction count represented by the trace
// (memory instructions plus the non-memory instructions between them).
func (s *Slice) Instructions() uint64 {
	var n uint64
	for i := range s.Records {
		n += uint64(s.Records[i].NonMemBefore) + 1
	}
	return n
}

// SliceReader iterates over a Slice.
type SliceReader struct {
	records []Record
	pos     int
}

// NewSliceReader returns a Reader over s. The slice must not be mutated
// while the reader is in use.
func NewSliceReader(s *Slice) *SliceReader {
	return &SliceReader{records: s.Records}
}

// Next implements Reader.
func (r *SliceReader) Next() (Record, error) {
	if r.pos >= len(r.records) {
		return Record{}, io.EOF
	}
	rec := r.records[r.pos]
	r.pos++
	return rec, nil
}

// Reset rewinds the reader to the beginning of the trace.
func (r *SliceReader) Reset() { r.pos = 0 }

// LoopReader replays an underlying slice forever (used for multi-core mixes
// where finished cores replay until all cores complete). It never returns
// io.EOF unless the slice is empty.
type LoopReader struct {
	records []Record
	pos     int
	// Loops counts how many times the trace has wrapped.
	Loops int
}

// NewLoopReader returns a looping reader over s.
func NewLoopReader(s *Slice) *LoopReader {
	return &LoopReader{records: s.Records}
}

// Next implements Reader.
func (r *LoopReader) Next() (Record, error) {
	if len(r.records) == 0 {
		return Record{}, io.EOF
	}
	if r.pos >= len(r.records) {
		r.pos = 0
		r.Loops++
	}
	rec := r.records[r.pos]
	r.pos++
	return rec, nil
}

// Binary trace encoding: a small magic header followed by varint-delta
// encoded records. IPs and addresses are delta-encoded against the previous
// record to keep files compact.

var magic = [8]byte{'B', 'E', 'R', 'T', 'I', 'T', 'R', '1'}

// ErrBadMagic is returned when decoding a stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic header")

// Encode writes the trace to w in the binary format.
func Encode(w io.Writer, s *Slice) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(s.Records))); err != nil {
		return err
	}
	var prevIP, prevAddr uint64
	for i := range s.Records {
		r := &s.Records[i]
		if err := putVarint(int64(r.IP - prevIP)); err != nil {
			return err
		}
		if err := putVarint(int64(r.Addr - prevAddr)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.NonMemBefore)); err != nil {
			return err
		}
		if err := bw.WriteByte(r.DepDist); err != nil {
			return err
		}
		prevIP, prevAddr = r.IP, r.Addr
	}
	return bw.Flush()
}

// Decode reads a binary trace written by Encode.
func Decode(r io.Reader) (*Slice, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxRecords = 1 << 31
	if n > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", n)
	}
	s := &Slice{Records: make([]Record, 0, n)}
	var prevIP, prevAddr uint64
	for i := uint64(0); i < n; i++ {
		dip, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d ip: %w", i, err)
		}
		daddr, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d kind: %w", i, err)
		}
		if kindByte > uint8(Store) {
			return nil, fmt.Errorf("trace: record %d invalid kind %d", i, kindByte)
		}
		nonMem, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d nonmem: %w", i, err)
		}
		if nonMem > 1<<32-1 {
			return nil, fmt.Errorf("trace: record %d nonmem %d overflows", i, nonMem)
		}
		depDist, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d depdist: %w", i, err)
		}
		prevIP += uint64(dip)
		prevAddr += uint64(daddr)
		s.Records = append(s.Records, Record{
			IP:           prevIP,
			Addr:         prevAddr,
			Kind:         Kind(kindByte),
			NonMemBefore: uint32(nonMem),
			DepDist:      depDist,
		})
	}
	return s, nil
}
