// Package trace defines the memory-access trace format consumed by the
// simulator and produced by the workload generators.
//
// A trace is a sequence of Records. Each record describes one memory
// instruction: its instruction pointer, the virtual address it touches,
// whether it is a load or a store, and the number of non-memory
// instructions that execute before it (so instruction counts and IPC are
// well defined without storing every ALU op).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Load is a demand read.
	Load Kind = iota
	// Store is a demand write.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one memory instruction in a trace.
type Record struct {
	// IP is the virtual address of the instruction itself.
	IP uint64
	// Addr is the virtual byte address accessed.
	Addr uint64
	// Kind is Load or Store.
	Kind Kind
	// NonMemBefore is the number of non-memory instructions that retire
	// between the previous memory instruction and this one.
	NonMemBefore uint32
	// DepDist is the data-dependence distance: 0 means the access address
	// does not depend on an earlier load's value; k > 0 means the address
	// was computed from the value returned by the k-th previous memory
	// record (pointer chasing). The simulator delays issue of dependent
	// accesses until the producer load completes.
	DepDist uint8
}

// Reader yields trace records in program order.
type Reader interface {
	// Next returns the next record. It returns io.EOF when the trace is
	// exhausted and the reader may not be used afterwards.
	Next() (Record, error)
}

// Writer consumes trace records.
type Writer interface {
	Append(Record)
}

// Slice is an in-memory trace. It implements Writer; use NewSliceReader to
// iterate it.
type Slice struct {
	Records []Record
}

// Append implements Writer.
func (s *Slice) Append(r Record) { s.Records = append(s.Records, r) }

// Len returns the number of records.
func (s *Slice) Len() int { return len(s.Records) }

// Instructions returns the total instruction count represented by the trace
// (memory instructions plus the non-memory instructions between them).
func (s *Slice) Instructions() uint64 {
	var n uint64
	for i := range s.Records {
		n += uint64(s.Records[i].NonMemBefore) + 1
	}
	return n
}

// SliceReader iterates over a Slice.
type SliceReader struct {
	records []Record
	pos     int
}

// NewSliceReader returns a Reader over s. The slice must not be mutated
// while the reader is in use.
func NewSliceReader(s *Slice) *SliceReader {
	return &SliceReader{records: s.Records}
}

// Next implements Reader.
func (r *SliceReader) Next() (Record, error) {
	if r.pos >= len(r.records) {
		return Record{}, io.EOF
	}
	rec := r.records[r.pos]
	r.pos++
	return rec, nil
}

// Reset rewinds the reader to the beginning of the trace.
func (r *SliceReader) Reset() { r.pos = 0 }

// LoopReader replays an underlying slice forever (used for multi-core mixes
// where finished cores replay until all cores complete). It never returns
// io.EOF unless the slice is empty.
type LoopReader struct {
	records []Record
	pos     int
	// Loops counts how many times the trace has wrapped.
	Loops int
}

// NewLoopReader returns a looping reader over s.
func NewLoopReader(s *Slice) *LoopReader {
	return &LoopReader{records: s.Records}
}

// Next implements Reader.
func (r *LoopReader) Next() (Record, error) {
	if len(r.records) == 0 {
		return Record{}, io.EOF
	}
	if r.pos >= len(r.records) {
		r.pos = 0
		r.Loops++
	}
	rec := r.records[r.pos]
	r.pos++
	return rec, nil
}

// Binary trace encoding: a small magic header followed by varint-delta
// encoded records. IPs and addresses are delta-encoded against the previous
// record to keep files compact.

var magic = [8]byte{'B', 'E', 'R', 'T', 'I', 'T', 'R', '1'}

// MagicLen is the length of the binary-format header (fault injection
// preserves it so corruption lands in record data).
const MagicLen = len(magic)

// ErrBadMagic is returned (wrapped in a *DecodeError) when decoding a
// stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic header")

// DecodeError reports a corrupt or truncated trace, locating the damage by
// byte offset and record index.
type DecodeError struct {
	// Offset is the byte offset into the stream at which decoding failed.
	Offset int64
	// Record is the index of the record being decoded (0-based); -1 for
	// header-level failures.
	Record int64
	// Field names the record field being decoded ("ip", "kind", ...).
	Field string
	// Err is the underlying cause (io.ErrUnexpectedEOF, ErrBadMagic, a
	// validation failure).
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string {
	if e.Record < 0 {
		return fmt.Sprintf("trace: decode %s at byte %d: %v", e.Field, e.Offset, e.Err)
	}
	return fmt.Sprintf("trace: decode record %d %s at byte %d: %v", e.Record, e.Field, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *DecodeError) Unwrap() error { return e.Err }

// countingReader tracks the byte offset consumed so decode errors can
// pinpoint the damage.
type countingReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingReader) readFull(p []byte) error {
	n, err := io.ReadFull(c.br, p)
	c.off += int64(n)
	return err
}

// Encode writes the trace to w in the binary format.
func Encode(w io.Writer, s *Slice) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(s.Records))); err != nil {
		return err
	}
	var prevIP, prevAddr uint64
	for i := range s.Records {
		r := &s.Records[i]
		if err := putVarint(int64(r.IP - prevIP)); err != nil {
			return err
		}
		if err := putVarint(int64(r.Addr - prevAddr)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.NonMemBefore)); err != nil {
			return err
		}
		if err := bw.WriteByte(r.DepDist); err != nil {
			return err
		}
		prevIP, prevAddr = r.IP, r.Addr
	}
	return bw.Flush()
}

// MaxRecords bounds the record count a decoded trace may claim.
const MaxRecords = 1 << 31

// maxInitialAlloc caps the capacity pre-allocated from the (untrusted)
// record-count field, so a corrupt header cannot force a multi-gigabyte
// allocation before the first record is even read. Larger traces still
// decode; the slice grows as records actually arrive.
const maxInitialAlloc = 1 << 20

// Decode reads a binary trace written by Encode. Corrupt or truncated
// input yields a *DecodeError locating the damage by byte offset; Decode
// never panics and bounds its allocations regardless of what the length
// fields claim.
func Decode(r io.Reader) (*Slice, error) {
	cr := &countingReader{br: bufio.NewReader(r)}
	fail := func(rec int64, field string, err error) (*Slice, error) {
		if err == io.EOF && (rec >= 0 || field != "magic") {
			// EOF mid-stream is truncation, not a clean end.
			err = io.ErrUnexpectedEOF
		}
		return nil, &DecodeError{Offset: cr.off, Record: rec, Field: field, Err: err}
	}
	var hdr [8]byte
	if err := cr.readFull(hdr[:]); err != nil {
		return fail(-1, "magic", err)
	}
	if hdr != magic {
		return fail(-1, "magic", ErrBadMagic)
	}
	n, err := binary.ReadUvarint(cr)
	if err != nil {
		return fail(-1, "count", err)
	}
	if n > MaxRecords {
		return fail(-1, "count", fmt.Errorf("record count %d exceeds limit %d", n, uint64(MaxRecords)))
	}
	capHint := n
	if capHint > maxInitialAlloc {
		capHint = maxInitialAlloc
	}
	s := &Slice{Records: make([]Record, 0, capHint)}
	var prevIP, prevAddr uint64
	for i := uint64(0); i < n; i++ {
		ri := int64(i)
		dip, err := binary.ReadVarint(cr)
		if err != nil {
			return fail(ri, "ip", err)
		}
		daddr, err := binary.ReadVarint(cr)
		if err != nil {
			return fail(ri, "addr", err)
		}
		kindByte, err := cr.ReadByte()
		if err != nil {
			return fail(ri, "kind", err)
		}
		if kindByte > uint8(Store) {
			return fail(ri, "kind", fmt.Errorf("invalid kind %d", kindByte))
		}
		nonMem, err := binary.ReadUvarint(cr)
		if err != nil {
			return fail(ri, "nonmem", err)
		}
		if nonMem > 1<<32-1 {
			return fail(ri, "nonmem", fmt.Errorf("count %d overflows uint32", nonMem))
		}
		depDist, err := cr.ReadByte()
		if err != nil {
			return fail(ri, "depdist", err)
		}
		prevIP += uint64(dip)
		prevAddr += uint64(daddr)
		s.Records = append(s.Records, Record{
			IP:           prevIP,
			Addr:         prevAddr,
			Kind:         Kind(kindByte),
			NonMemBefore: uint32(nonMem),
			DepDist:      depDist,
		})
	}
	return s, nil
}
