package sim

import (
	"errors"
	"strings"
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/vm"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"no cores", func(c *Config) { c.Cores = 0 }, "Cores"},
		{"rob", func(c *Config) { c.Core.ROBSize = 0 }, "Core.ROBSize"},
		{"issue", func(c *Config) { c.Core.IssueWidth = -1 }, "Core.IssueWidth"},
		{"l1d ways", func(c *Config) { c.L1D.Ways = 0 }, "L1D"},
		{"l2 mshrs", func(c *Config) { c.L2.MSHRs = 0 }, "L2"},
		{"llc size", func(c *Config) { c.LLC.SizeBytes = 1000 }, "LLC"},
		{"dram banks", func(c *Config) { c.DRAM.Banks = 0 }, "DRAM.Banks"},
		{"dram row", func(c *Config) { c.DRAM.RowBytes = 32 }, "DRAM.RowBytes"},
		{"dram queues", func(c *Config) { c.DRAM.RQSize = 0 }, "DRAM"},
		{"instructions", func(c *Config) { c.SimInstructions = 0 }, "SimInstructions"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("expected *ConfigError, got %v", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("Field = %q, want %q (%v)", ce.Field, tc.field, err)
			}
		})
	}

	// Nested cache errors keep the inner detail reachable.
	cfg := DefaultConfig()
	cfg.L1D.Ways = 0
	err := cfg.Validate()
	var cce *cache.ConfigError
	if !errors.As(err, &cce) {
		t.Fatalf("cache cause not unwrappable: %v", err)
	}
	cfg = DefaultConfig()
	cfg.MMU.DTLBWays = 0
	var ve *vm.ConfigError
	if !errors.As(cfg.Validate(), &ve) {
		t.Fatalf("vm cause not unwrappable: %v", cfg.Validate())
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := New(cfg, nil, nil, nil); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	cfg = DefaultConfig()
	cfg.Cores = 2
	_, err := New(cfg, []trace.Reader{trace.NewSliceReader(&trace.Slice{})}, nil, nil)
	var ce *ConfigError
	if !errors.As(err, &ce) || !strings.Contains(err.Error(), "trace reader") {
		t.Fatalf("trace/core count mismatch must be a *ConfigError, got %v", err)
	}
}

func TestStallErrorSnapshot(t *testing.T) {
	e := &StallError{StallCycles: 100, Snapshot: EngineSnapshot{
		Cycle:    12345,
		Retired:  []uint64{10, 20},
		Finished: []bool{false, true},
		Queues:   []cache.QueueSnapshot{{Name: "L1D.0", MSHR: 3, PQ: 1}},
	}}
	msg := e.Error()
	for _, want := range []string{"100 cycles", "cycle=12345", "retired=[10 20]", "L1D.0", "mshr=3"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("stall message %q lacks %q", msg, want)
		}
	}
}

// TestWatchdogFiresOnDeadlock: every fill delayed by ~a trillion cycles
// means no load ever completes, so retirement stops dead and the stall
// watchdog must end the run with a structured *StallError instead of
// spinning forever.
func TestWatchdogFiresOnDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 0
	cfg.SimInstructions = 10_000
	tr := strideTrace(20_000, 9, 1) // long strides: misses from the start
	m := MustNew(cfg, []trace.Reader{trace.NewSliceReader(tr)}, nil, nil)
	m.SetFaultPlan(&fault.Plan{Kind: fault.DelayFill, Rate: 1, Param: 1 << 40})
	m.SetStallWatchdog(5_000)
	_, err := m.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StallError, got %v", err)
	}
	if se.Snapshot.Cycle < 5_000 {
		t.Fatalf("snapshot cycle %d predates the watchdog window", se.Snapshot.Cycle)
	}
}

// TestTraceReadErrorPropagates: a reader failing mid-run must surface as a
// *TraceReadError naming the core, not a panic (the coremodel used to
// panic(err) on this path).
func TestTraceReadErrorPropagates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 0
	cfg.SimInstructions = 10_000
	m := MustNew(cfg, []trace.Reader{&failingReader{after: 100}}, nil, nil)
	_, err := m.Run()
	var te *TraceReadError
	if !errors.As(err, &te) {
		t.Fatalf("expected *TraceReadError, got %v", err)
	}
	if te.Core != 0 || !errors.Is(err, errBrokenReader) {
		t.Fatalf("error must name the core and keep the cause: %v", err)
	}
}

// failingReader yields a few records then fails with a non-EOF error.
type failingReader struct{ after int }

func (r *failingReader) Next() (trace.Record, error) {
	if r.after <= 0 {
		return trace.Record{}, errBrokenReader
	}
	r.after--
	return trace.Record{IP: 0x400000, Addr: 0x10000, NonMemBefore: 1}, nil
}

var errBrokenReader = errors.New("broken reader")
