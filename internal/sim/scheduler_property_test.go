package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/bertisim/berti/internal/trace"
)

// randomTrace mixes the access archetypes the schedulers must agree on:
// strided streams, pointer chases (dependent loads), store bursts, and
// compute-heavy non-mem runs.
func randomTrace(rng *rand.Rand, n int) *trace.Slice {
	tr := &trace.Slice{}
	addr := uint64(0x1_0000_0000)
	for i := 0; i < n; i++ {
		kind := trace.Load
		if rng.Intn(4) == 0 {
			kind = trace.Store
		}
		switch rng.Intn(3) {
		case 0: // stride
			addr += uint64(1+rng.Intn(4)) * 64
		case 1: // chase: far jump, depend on the previous record
			addr += uint64(4+rng.Intn(64)) << 10
		case 2: // local reuse
			addr -= addr % 4096
		}
		var dep uint8
		if rng.Intn(3) == 0 {
			dep = uint8(1 + rng.Intn(4))
		}
		tr.Append(trace.Record{
			IP:           0x400000 + uint64(rng.Intn(8))*4,
			Addr:         addr,
			Kind:         kind,
			NonMemBefore: uint32(rng.Intn(12)),
			DepDist:      dep,
		})
	}
	return tr
}

// observableDigest captures every piece of machine state whose change is
// observable in a Result or in a component's subsequent behaviour —
// excluding the per-cycle counters creditSkip reconciles (CoreStats.Cycles,
// CoreStats.ROBFullStalls) and scheduler-dependent hidden state: the
// diagnostics DepBlocked/IssueBlocked, and issueSkip — the issue scan's
// start hint, which may keep advancing over already-issued entries during
// ticks that change nothing else. Entries below issueSkip are by
// construction issued or non-mem, and scanning them again has no side
// effects, so its value cannot alter observable behaviour.
func observableDigest(m *Machine) string {
	var b strings.Builder
	for i := range m.l1ds {
		fmt.Fprintf(&b, "l1[%d] q=%+v s=%+v\n", i, m.l1ds[i].Queues(), m.l1ds[i].Stats)
		fmt.Fprintf(&b, "l2[%d] q=%+v s=%+v\n", i, m.l2s[i].Queues(), m.l2s[i].Stats)
		fmt.Fprintf(&b, "mmu[%d] %+v\n", i, m.mmus[i].Stats)
	}
	fmt.Fprintf(&b, "llc q=%+v s=%+v\n", m.llc.Queues(), m.llc.Stats)
	fmt.Fprintf(&b, "dram %+v pending=%v\n", m.dramC.Stats, m.dramC.Pending())
	for i, c := range m.cores {
		cs := c.Stats
		cs.Cycles = 0
		cs.ROBFullStalls = 0
		fmt.Fprintf(&b, "core[%d] rob=%d/%d head=%d tail=%d pend=%v/%d done=%v ret=%d rec=%d s=%+v\n",
			i, c.robCount, c.robInstrs, c.robHead, c.robTail,
			c.pendingValid, c.pendingNonMem, c.traceDone, c.RetiredTotal, c.memRecords, cs)
	}
	return b.String()
}

// TestHorizonQuiescenceProperty cross-checks NextEventCycle against the
// per-cycle reference: whenever the global horizon (the minimum across all
// components) lies beyond the next cycle, executing the allegedly skippable
// ticks one by one must leave the observable state digest unchanged. A
// digest change inside the window means some component changed state before
// its reported horizon — exactly the bug class that would silently corrupt
// horizon-mode results.
func TestHorizonQuiescenceProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 7}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			cfg := DefaultConfig()
			cfg.WarmupInstructions = 0
			cfg.SimInstructions = 50_000
			// Shrink the hierarchy so misses, evictions, and writebacks all
			// occur within a short trace.
			cfg.L1D.SizeBytes = 12 * 1024
			cfg.L2.SizeBytes = 64 * 1024
			cfg.LLC.SizeBytes = 256 * 1024
			tr := randomTrace(rng, 4_000)
			m := MustNew(cfg, []trace.Reader{trace.NewSliceReader(tr)}, nil, nil)

			const cycleLimit = 400_000
			windows, skippable := 0, uint64(0)
			for m.cycle < cycleLimit && !m.cores[0].Done() {
				m.tick()
				h := m.horizon()
				if h <= m.cycle {
					continue
				}
				if h == Never {
					break // fully quiescent: nothing left to verify
				}
				windows++
				skippable += h - m.cycle
				before := observableDigest(m)
				for m.cycle < h {
					m.tick()
					if after := observableDigest(m); after != before {
						t.Fatalf("seed %d: state changed at cycle %d inside quiescent window ending %d:\nbefore:\n%s\nafter:\n%s",
							seed, m.cycle, h, before, after)
					}
				}
			}
			if windows == 0 {
				t.Fatalf("seed %d: property test exercised no quiescent windows", seed)
			}
			t.Logf("seed %d: verified %d windows covering %d skippable cycles", seed, windows, skippable)
		})
	}
}

// TestSchedulerResultIdentity runs the same machine configuration to
// completion under both schedulers and requires identical Results — the
// in-package complement of the harness-level differential suite, covering
// the raw engine path (RunOnce) without registry plumbing.
func TestSchedulerResultIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 6_000)
	cfg := smallConfig()
	run := func(s Scheduler) *Result {
		m := MustNew(cfg, []trace.Reader{trace.NewSliceReader(tr)}, nil, nil)
		m.SetScheduler(s)
		return MustRun(m)
	}
	ticked := run(SchedTicked)
	horizon := run(SchedHorizon)
	if a, b := fmt.Sprintf("%+v", ticked), fmt.Sprintf("%+v", horizon); a != b {
		t.Fatalf("schedulers diverged:\nticked:  %s\nhorizon: %s", a, b)
	}
}
