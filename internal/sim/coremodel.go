package sim

import (
	"fmt"
	"io"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/stats"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/vm"
)

// robEntry is one reorder-buffer slot. Non-memory instructions between
// memory operations are aggregated into a single entry with a count, which
// preserves window-occupancy and retire-bandwidth semantics at a fraction
// of the bookkeeping cost.
type robEntry struct {
	nonMem uint32 // >0: aggregated run of non-memory instructions
	isMem  bool
	kind   trace.Kind
	vaddr  uint64
	ip     uint64
	recIdx uint64 // global memory-record index (dependence tracking)
	dep    uint64 // producer record index + 1 (0 = independent)

	issued    bool
	issuedAt  uint64 // issue cycle (load-latency bucketing on completion)
	done      bool
	doneCycle uint64
}

// depWindow tracks completion cycles of recent memory records so dependent
// accesses (pointer chases) serialize behind their producers.
const depWindow = 1024

// storeTokenBit distinguishes store completion tokens from load tokens.
// Loads complete before their ROB slot can be reused, so the slot index is
// the token; stores retire immediately and their slot may be recycled
// before the fill lands, so the token carries the record index instead.
const storeTokenBit = uint64(1) << 63

// Core is the trace-driven out-of-order core approximation: a 352-entry
// instruction window filled at issue-width, memory operations issued
// through limited L1D ports, in-order retirement at retire-width.
type Core struct {
	ID     int
	cfg    CoreConfig
	reader trace.Reader
	mmu    *vm.MMU
	l1d    *cache.Cache

	rob       []robEntry
	robHead   int
	robTail   int
	robCount  int // entries
	robInstrs int // instructions occupying the window
	// pend lists the ROB slots of unissued memory operations in program
	// order, so the per-cycle issue scan touches exactly the entries that
	// can issue instead of walking the window (the walk dominated
	// simulation time). Slots are stable while listed: an unissued memory
	// entry cannot retire, and nothing ahead of it can pop past it.
	pend []int32

	// pending is the next trace record being dispatched (nonMem first).
	pending       trace.Record
	pendingValid  bool
	pendingNonMem uint32
	traceDone     bool
	// err records a non-EOF trace-reader failure; the core stops
	// dispatching and the engine surfaces it as the run error.
	err error

	memRecords uint64 // global memory-record counter
	depDone    [depWindow]uint64
	depReady   [depWindow]bool

	Stats stats.CoreStats
	// RetiredTotal counts instructions retired since construction
	// (Stats.Instructions is reset after warmup).
	RetiredTotal uint64
	// IssueBlocked counts issue attempts refused by a full L1D RQ.
	IssueBlocked uint64
	// DepBlocked counts issue attempts blocked by an incomplete producer.
	DepBlocked uint64
	// LoadLatHist buckets load issue->complete latencies by power of two
	// (diagnostics).
	LoadLatHist [20]uint64
	// DispatchToIssue accumulates dispatch->issue delay (diagnostics).
	issueDelaySum uint64
	// FinishedCycle is set when RetiredTotal first reaches its target.
	finishTarget  uint64
	FinishedCycle uint64
	Finished      bool
}

// NewCore builds a core bound to its trace, MMU, and L1D.
func NewCore(id int, cfg CoreConfig, rd trace.Reader, mmu *vm.MMU, l1d *cache.Cache) *Core {
	return &Core{
		ID:     id,
		cfg:    cfg,
		reader: rd,
		mmu:    mmu,
		l1d:    l1d,
		rob:    make([]robEntry, cfg.ROBSize+1),
		// Memory entries occupy one instruction each, so the unissued set
		// can never exceed the window: appends never reallocate.
		pend: make([]int32, 0, cfg.ROBSize+1),
	}
}

// SetFinishTarget arms FinishedCycle at the given total retired count.
func (c *Core) SetFinishTarget(totalInstructions uint64) {
	c.finishTarget = totalInstructions
}

// Tick advances the core one cycle: retire, dispatch, issue.
func (c *Core) Tick(cycle uint64) {
	c.Stats.Cycles++
	c.retire(cycle)
	c.dispatch(cycle)
	c.issue(cycle)
}

// NextEventCycle reports the earliest future cycle at which the core can
// change state on its own: retiring the head entry, dispatching from the
// trace, or issuing a memory operation whose producer's completion cycle is
// already known. A core blocked on an in-flight fill reports no horizon for
// it — the completion is the owning cache's event, and the engine re-queries
// after every executed tick. Diagnostic counters that are not part of the
// result surface (DepBlocked, IssueBlocked, LoadLatHist) are allowed to
// diverge across skipped cycles; the counters in Stats are reconciled by
// creditSkip.
func (c *Core) NextEventCycle(now uint64) uint64 {
	h := Never
	if c.robCount > 0 {
		e := &c.rob[c.robHead]
		if !e.isMem {
			return now // a non-mem run at the head retires next tick
		}
		if e.done {
			if e.doneCycle <= now {
				return now
			}
			if e.doneCycle < h {
				h = e.doneCycle
			}
		}
	}
	// Dispatch: reading the next trace record is itself a state change, so
	// only a full window with a record already pending is dispatch-quiescent.
	if !c.traceDone && !c.pendingValid {
		return now
	}
	if c.pendingValid && c.robInstrs < c.cfg.ROBSize {
		return now
	}
	// Issue: every pend entry is an unissued memory operation. A producer
	// still in flight (depReady unset) is the cache's event; a completed
	// producer with a future completion cycle schedules the consumer's
	// issue.
	for _, slot := range c.pend {
		e := &c.rob[slot]
		if e.dep != 0 {
			s := (e.dep - 1) % depWindow
			if !c.depReady[s] {
				continue
			}
			if d := c.depDone[s]; d > now {
				if d < h {
					h = d
				}
				continue
			}
		}
		return now // issuable (ports and RQ willing — both per-tick events)
	}
	return h
}

// creditSkip accounts n skipped no-op cycles in the counters SchedTicked
// would have advanced every tick: the cycle count, and the ROB-full stall
// count when the core is stalled with a record pending (the condition
// dispatch re-evaluates per cycle; it cannot change across a quiescent
// window because retirement and dispatch are both events).
func (c *Core) creditSkip(n uint64) {
	c.Stats.Cycles += n
	if c.pendingValid && c.robInstrs >= c.cfg.ROBSize {
		c.Stats.ROBFullStalls += n
	}
}

// Done reports whether the core has exhausted its trace and window.
func (c *Core) Done() bool {
	return c.traceDone && !c.pendingValid && c.robCount == 0
}

// Err returns the trace-reader failure that stopped this core, if any.
func (c *Core) Err() error { return c.err }

// CheckInvariants verifies the reorder buffer's accounting: the occupancy
// counters must agree with the entries actually present in the ring, the
// aggregated instruction count must match a fresh walk, and the pending
// issue list must name exactly the unissued memory entries. It never
// mutates state.
func (c *Core) CheckInvariants(name string, cycle uint64, report func(check.Violation)) {
	if c.robCount < 0 || c.robCount >= len(c.rob) {
		report(check.Violation{Rule: check.RuleROBAccounting, Component: name, Cycle: cycle,
			Detail: fmt.Sprintf("robCount %d outside ring of %d slots", c.robCount, len(c.rob))})
		return
	}
	instrs := 0
	unissued := 0
	i := c.robHead
	for n := 0; n < c.robCount; n++ {
		instrs += c.entryInstrs(&c.rob[i])
		if c.rob[i].isMem && !c.rob[i].issued {
			unissued++
		}
		i = (i + 1) % len(c.rob)
	}
	if instrs != c.robInstrs {
		report(check.Violation{Rule: check.RuleROBAccounting, Component: name, Cycle: cycle,
			Detail: fmt.Sprintf("robInstrs counter %d, ring walk says %d", c.robInstrs, instrs)})
	}
	if unissued != len(c.pend) {
		report(check.Violation{Rule: check.RuleROBAccounting, Component: name, Cycle: cycle,
			Detail: fmt.Sprintf("pend list holds %d slots, ring walk finds %d unissued memory ops", len(c.pend), unissued)})
	}
	for _, slot := range c.pend {
		e := &c.rob[slot]
		if !e.isMem || e.issued {
			report(check.Violation{Rule: check.RuleROBAccounting, Component: name, Cycle: cycle,
				Detail: fmt.Sprintf("pend slot %d does not hold an unissued memory op", slot)})
			break
		}
	}
}

func (c *Core) retire(cycle uint64) {
	budget := c.cfg.RetireWidth
	for budget > 0 && c.robCount > 0 {
		e := &c.rob[c.robHead]
		if e.nonMem > 0 {
			n := uint32(budget)
			if n > e.nonMem {
				n = e.nonMem
			}
			e.nonMem -= n
			c.robInstrs -= int(n)
			budget -= int(n)
			c.retired(uint64(n), cycle)
			if e.nonMem > 0 {
				return
			}
			c.popHead()
			continue
		}
		// Memory instruction: must be complete.
		if !e.done || e.doneCycle > cycle {
			return
		}
		budget--
		c.retired(1, cycle)
		c.popHead()
	}
}

func (c *Core) retired(n, cycle uint64) {
	c.Stats.Instructions += n
	c.RetiredTotal += n
	if !c.Finished && c.finishTarget > 0 && c.RetiredTotal >= c.finishTarget {
		c.Finished = true
		c.FinishedCycle = cycle
	}
}

func (c *Core) popHead() {
	c.robInstrs -= c.entryInstrs(&c.rob[c.robHead])
	c.rob[c.robHead] = robEntry{}
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCount--
}

func (c *Core) entryInstrs(e *robEntry) int {
	if e.isMem {
		return 1
	}
	return int(e.nonMem)
}

// dispatch brings up to IssueWidth instructions into the window.
func (c *Core) dispatch(cycle uint64) {
	budget := c.cfg.IssueWidth
	for budget > 0 {
		if !c.pendingValid {
			if c.traceDone {
				return
			}
			rec, err := c.reader.Next()
			if err != nil {
				// EOF ends the trace cleanly; anything else (a corrupt
				// stream read lazily) stops this core and is surfaced by
				// the engine as the run error.
				if err != io.EOF {
					c.err = err
				}
				c.traceDone = true
				return
			}
			c.pending = rec
			c.pendingNonMem = rec.NonMemBefore
			c.pendingValid = true
		}
		if c.robInstrs >= c.cfg.ROBSize {
			c.Stats.ROBFullStalls++
			return
		}
		if c.pendingNonMem > 0 {
			n := uint32(budget)
			if room := uint32(c.cfg.ROBSize - c.robInstrs); n > room {
				n = room
			}
			if n > c.pendingNonMem {
				n = c.pendingNonMem
			}
			c.pendingNonMem -= n
			budget -= int(n)
			c.pushNonMem(n)
			continue
		}
		// Dispatch the memory operation itself.
		c.memRecords++
		idx := c.memRecords
		var dep uint64
		if d := uint64(c.pending.DepDist); d > 0 && d < idx {
			dep = idx - d + 1 // +1 so 0 means "independent"
			// Out-of-window producers are treated as complete.
			if idx-(dep-1) >= depWindow {
				dep = 0
			}
		}
		c.depReady[idx%depWindow] = false
		e := robEntry{
			isMem:  true,
			kind:   c.pending.Kind,
			vaddr:  c.pending.Addr,
			ip:     c.pending.IP,
			recIdx: idx,
			dep:    dep,
		}
		slot := c.robTail
		c.pushEntry(e)
		c.pend = append(c.pend, int32(slot))
		budget--
		c.pendingValid = false
		if c.pending.Kind == trace.Load {
			c.Stats.Loads++
		} else {
			c.Stats.Stores++
		}
	}
}

func (c *Core) pushNonMem(n uint32) {
	// Merge into the previous tail entry when it is a non-mem run that
	// has not begun retiring (keeps the ring short).
	if c.robCount > 0 {
		lastIdx := (c.robTail + len(c.rob) - 1) % len(c.rob)
		last := &c.rob[lastIdx]
		if !last.isMem && lastIdx != c.robHead {
			last.nonMem += n
			c.robInstrs += int(n)
			return
		}
	}
	c.pushEntry(robEntry{nonMem: n})
}

func (c *Core) pushEntry(e robEntry) {
	if c.robCount >= len(c.rob) {
		panic("sim: ROB ring overflow")
	}
	c.robInstrs += c.entryInstrs(&e)
	c.rob[c.robTail] = e
	c.robTail = (c.robTail + 1) % len(c.rob)
	c.robCount++
}

// issue sends ready memory operations to the L1D through limited ports.
// The pend list is filtered in place: issued entries drop out, blocked
// entries stay in program order.
func (c *Core) issue(cycle uint64) {
	loads := c.cfg.LoadPorts
	stores := c.cfg.StorePorts
	w := 0
	n := 0
	for ; n < len(c.pend); n++ {
		if loads == 0 && stores == 0 {
			break
		}
		slot := c.pend[n]
		e := &c.rob[slot]
		if e.kind == trace.Load && loads == 0 {
			c.pend[w] = slot
			w++
			continue
		}
		if e.kind == trace.Store && stores == 0 {
			c.pend[w] = slot
			w++
			continue
		}
		// Dependence check: producer must have completed.
		if e.dep != 0 {
			s := (e.dep - 1) % depWindow
			if !c.depReady[s] || c.depDone[s] > cycle {
				c.DepBlocked++
				c.pend[w] = slot
				w++
				continue
			}
		}
		if !c.tryIssue(e, slot, cycle) {
			// L1D RQ full: stop issuing this cycle; keep this entry and
			// everything behind it.
			c.pend[w] = slot
			w++
			n++
			break
		}
		if e.kind == trace.Load {
			loads--
		} else {
			stores--
		}
	}
	for ; n < len(c.pend); n++ {
		c.pend[w] = c.pend[n]
		w++
	}
	c.pend = c.pend[:w]
}

// tryIssue translates and sends one memory op to the L1D. Completion comes
// back through ReqDone with a token instead of a per-request closure, so
// issuing allocates nothing.
func (c *Core) tryIssue(e *robEntry, slot int32, cycle uint64) bool {
	if c.l1d.RQOccupancy() >= c.l1d.RQCap() {
		c.IssueBlocked++
		return false
	}
	paddr, xlat := c.mmu.TranslateDemand(e.vaddr, cycle)
	req := cache.Req{
		LineAddr:  paddr >> cache.LineShift,
		VLineAddr: e.vaddr >> cache.LineShift,
		IP:        e.ip,
		FillLevel: cache.L1D,
		Store:     e.kind == trace.Store,
		Sink:      c,
		Token:     uint64(slot),
	}
	if e.kind == trace.Store {
		// Stores retire without waiting for the fill; the L1D handles
		// write-allocation in the background. The slot may be recycled
		// before the fill lands, so the token names the record instead.
		e.done = true
		e.doneCycle = cycle + 1
		req.Token = storeTokenBit | e.recIdx
	}
	if !c.l1d.AcceptDemand(&req, cycle+xlat) {
		return false
	}
	e.issued = true
	e.issuedAt = cycle
	return true
}

// ReqDone implements cache.DoneSink: L1D completions arrive here keyed by
// the token tryIssue encoded.
func (c *Core) ReqDone(token, done uint64) {
	if token&storeTokenBit != 0 {
		// Store fill: the ROB entry is long retired; only the dependence
		// window needs the completion.
		s := (token &^ storeTokenBit) % depWindow
		c.depDone[s] = done
		c.depReady[s] = true
		return
	}
	e := &c.rob[token]
	e.done = true
	e.doneCycle = done
	s := e.recIdx % depWindow
	c.depDone[s] = done
	c.depReady[s] = true
	d := done - e.issuedAt
	b := 0
	for d > 0 && b < len(c.LoadLatHist)-1 {
		d >>= 1
		b++
	}
	c.LoadLatHist[b]++
}

// ResetStats clears measured counters (after warmup).
func (c *Core) ResetStats() {
	c.Stats = stats.CoreStats{}
}
