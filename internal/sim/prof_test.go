package sim

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

func BenchmarkProfileSim(b *testing.B) {
	w, _ := workloads.ByName("mcf_like_1554")
	tr := w.Gen(workloads.GenConfig{MemRecords: 100_000, Seed: 1})
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.WarmupInstructions = 50_000
		cfg.SimInstructions = 200_000
		m := MustNew(cfg, []trace.Reader{trace.NewLoopReader(tr)},
			func() cache.Prefetcher { return core.New(core.DefaultConfig()) }, nil)
		MustRun(m)
	}
}
