package sim

import (
	"fmt"
	"time"

	"github.com/bertisim/berti/internal/cache"
)

// ConfigError reports an invalid system configuration.
type ConfigError struct {
	// Field names the offending parameter ("Cores", "Core.ROBSize", ...).
	Field string
	// Reason describes the constraint that failed.
	Reason string
	// Err is the underlying cause when the failure came from a nested
	// configuration (a *cache.ConfigError, a *vm.ConfigError); nil
	// otherwise.
	Err error
}

// Error implements error.
func (e *ConfigError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("sim: invalid config %s: %v", e.Field, e.Err)
	}
	return fmt.Sprintf("sim: invalid config %s: %s", e.Field, e.Reason)
}

// Unwrap exposes the nested cause to errors.Is/As.
func (e *ConfigError) Unwrap() error { return e.Err }

// EngineSnapshot captures the machine's progress state at the moment a run
// failed — enough to see which queue or core wedged without re-running
// under a debugger.
type EngineSnapshot struct {
	// Cycle is the simulation cycle at capture.
	Cycle uint64 `json:"cycle"`
	// Retired holds each core's total retired-instruction count.
	Retired []uint64 `json:"retired"`
	// Finished holds each core's completion flag.
	Finished []bool `json:"finished"`
	// Queues holds every cache level's queue/MSHR occupancy, L1D.0 first,
	// LLC last.
	Queues []cache.QueueSnapshot `json:"queues"`
}

// String renders the snapshot compactly for error messages.
func (s EngineSnapshot) String() string {
	out := fmt.Sprintf("cycle=%d retired=%v", s.Cycle, s.Retired)
	for _, q := range s.Queues {
		out += fmt.Sprintf(" %s[mshr=%d rq=%d wq=%d pq=%d sendq=%d]",
			q.Name, q.MSHR, q.RQ, q.WQ, q.PQ, q.SendQ)
	}
	return out
}

// StallError reports that the engine made no retirement progress for
// StallCycles cycles — a hang (leaked fill, wedged queue) that previously
// crashed the process via panic.
type StallError struct {
	// StallCycles is the progress-free window that tripped the watchdog.
	StallCycles uint64
	// Snapshot is the engine state at detection.
	Snapshot EngineSnapshot
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("sim: no retirement progress for %d cycles (%s)", e.StallCycles, e.Snapshot)
}

// DeadlineError reports that a run exceeded its wall-clock budget.
type DeadlineError struct {
	// Limit is the configured budget.
	Limit time.Duration
	// Snapshot is the engine state when the deadline fired.
	Snapshot EngineSnapshot
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sim: run exceeded %v wall-clock deadline (%s)", e.Limit, e.Snapshot)
}

// TraceReadError reports a trace-reader failure surfaced through the core
// model mid-run (previously a panic inside dispatch).
type TraceReadError struct {
	// Core is the core whose reader failed.
	Core int
	// Err is the reader's error (often a *trace.DecodeError).
	Err error
}

// Error implements error.
func (e *TraceReadError) Error() string {
	return fmt.Sprintf("sim: core %d trace read: %v", e.Core, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *TraceReadError) Unwrap() error { return e.Err }
