package sim

import (
	"errors"
	"fmt"
	"time"

	"github.com/bertisim/berti/internal/cache"
)

// ConfigError reports an invalid system configuration.
type ConfigError struct {
	// Field names the offending parameter ("Cores", "Core.ROBSize", ...).
	Field string
	// Reason describes the constraint that failed.
	Reason string
	// Err is the underlying cause when the failure came from a nested
	// configuration (a *cache.ConfigError, a *vm.ConfigError); nil
	// otherwise.
	Err error
}

// Error implements error.
func (e *ConfigError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("sim: invalid config %s: %v", e.Field, e.Err)
	}
	return fmt.Sprintf("sim: invalid config %s: %s", e.Field, e.Reason)
}

// Unwrap exposes the nested cause to errors.Is/As.
func (e *ConfigError) Unwrap() error { return e.Err }

// EngineSnapshot captures the machine's progress state at the moment a run
// failed — enough to see which queue or core wedged without re-running
// under a debugger.
type EngineSnapshot struct {
	// Cycle is the simulation cycle at capture.
	Cycle uint64 `json:"cycle"`
	// Retired holds each core's total retired-instruction count.
	Retired []uint64 `json:"retired"`
	// Finished holds each core's completion flag.
	Finished []bool `json:"finished"`
	// Queues holds every cache level's queue/MSHR occupancy, L1D.0 first,
	// LLC last.
	Queues []cache.QueueSnapshot `json:"queues"`
}

// String renders the snapshot compactly for error messages.
func (s EngineSnapshot) String() string {
	out := fmt.Sprintf("cycle=%d retired=%v", s.Cycle, s.Retired)
	for _, q := range s.Queues {
		out += fmt.Sprintf(" %s[mshr=%d rq=%d wq=%d pq=%d sendq=%d]",
			q.Name, q.MSHR, q.RQ, q.WQ, q.PQ, q.SendQ)
	}
	return out
}

// StallError reports that the engine made no retirement progress for
// StallCycles cycles — a hang (leaked fill, wedged queue) that previously
// crashed the process via panic.
type StallError struct {
	// StallCycles is the progress-free window that tripped the watchdog.
	StallCycles uint64
	// Snapshot is the engine state at detection.
	Snapshot EngineSnapshot
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("sim: no retirement progress for %d cycles (%s)", e.StallCycles, e.Snapshot)
}

// DeadlineError reports that a run exceeded its wall-clock budget.
type DeadlineError struct {
	// Limit is the configured budget.
	Limit time.Duration
	// Snapshot is the engine state when the deadline fired.
	Snapshot EngineSnapshot
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sim: run exceeded %v wall-clock deadline (%s)", e.Limit, e.Snapshot)
}

// CancelError reports that a run was stopped by context cancellation (a
// Ctrl-C draining a campaign, a caller-imposed context deadline). It is a
// distinct class from StallError/DeadlineError: the machine was healthy,
// the caller asked it to stop. Unwrap exposes the context's cause, so
// errors.Is(err, context.Canceled) works on the chain.
type CancelError struct {
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded, possibly wrapped by context.WithCancelCause).
	Cause error
	// Snapshot is the engine state at the cancellation poll (zero when the
	// run was cancelled before the first cycle executed).
	Snapshot EngineSnapshot
}

// Error implements error.
func (e *CancelError) Error() string {
	return fmt.Sprintf("sim: run cancelled: %v (%s)", e.Cause, e.Snapshot)
}

// Unwrap exposes the context cause to errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Cause }

// IsCancel reports whether err's chain contains a *CancelError — the test
// callers use to distinguish "the campaign is shutting down" from a genuine
// run failure (cancelled runs are neither memoized nor retried).
func IsCancel(err error) bool {
	var ce *CancelError
	return errors.As(err, &ce)
}

// TraceReadError reports a trace-reader failure surfaced through the core
// model mid-run (previously a panic inside dispatch).
type TraceReadError struct {
	// Core is the core whose reader failed.
	Core int
	// Err is the reader's error (often a *trace.DecodeError).
	Err error
}

// Error implements error.
func (e *TraceReadError) Error() string {
	return fmt.Sprintf("sim: core %d trace read: %v", e.Core, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *TraceReadError) Unwrap() error { return e.Err }
