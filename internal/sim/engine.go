package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/dram"
	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/obs/provenance"
	"github.com/bertisim/berti/internal/stats"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/vm"
)

// dramAdaptor bridges cache.Lower to the DRAM channel.
type dramAdaptor struct {
	ch *dram.Channel
}

func (d *dramAdaptor) AcceptRead(r *cache.Req, cycle uint64) bool {
	// cache.DoneSink and dram.DoneSink are structurally identical, so the
	// sink passes straight through; the Request is stack-built and copied
	// into the channel's ring — no allocation.
	req := dram.Request{
		LineAddr:   r.LineAddr,
		IsPrefetch: r.IsPrefetch,
		OnComplete: r.OnDone,
		Sink:       r.Sink,
		Token:      r.Token,
	}
	return d.ch.EnqueueRead(&req, cycle)
}

func (d *dramAdaptor) AcceptWrite(r *cache.Req, cycle uint64) bool {
	req := dram.Request{
		LineAddr: r.LineAddr,
		Write:    true,
	}
	return d.ch.EnqueueWrite(&req, cycle)
}

// Promote implements cache.Lower.
func (d *dramAdaptor) Promote(lineAddr uint64) { d.ch.Promote(lineAddr) }

// stlbXlat adapts the MMU's prefetch translation path to cache.Translator.
type stlbXlat struct{ mmu *vm.MMU }

func (x stlbXlat) TranslatePrefetchLine(vline uint64) (uint64, uint64, bool) {
	vaddr := vline << cache.LineShift
	paddr, lat, ok := x.mmu.TranslatePrefetch(vaddr)
	if !ok {
		return 0, 0, false
	}
	return paddr >> cache.LineShift, lat, true
}

// CoreResult holds one core's measured statistics.
type CoreResult struct {
	Core stats.CoreStats
	TLB  stats.TLBStats
	L1D  stats.CacheStats
	L2   stats.CacheStats
	// Traffic sent downward by this core's private levels.
	L1DToL2 uint64
	WBToL2  uint64
	L2ToLLC uint64
	WBToLLC uint64
	// IPC over the measured region.
	IPC float64
}

// Result holds a full simulation's statistics.
type Result struct {
	Config    Config
	Cores     []CoreResult
	LLC       stats.CacheStats
	LLCToDRAM uint64
	WBToDRAM  uint64
	DRAM      stats.DRAMStats
	Cycles    uint64
	L1DPfName string
	L2PfName  string
	L1DPfBits int
	L2PfBits  int
	// TimeSeries holds the per-interval samples when an observer with a
	// sampler was attached before Run (nil otherwise).
	TimeSeries *obs.TimeSeries
	// Provenance holds the per-prefetch lifecycle report when a tracker was
	// attached before Run (nil otherwise — omitted from JSON so disabled
	// runs serialize byte-identically to builds without the tracker).
	Provenance *provenance.Report `json:",omitempty"`
}

// IPC returns core 0's IPC (single-core convenience).
func (r *Result) IPC() float64 { return r.Cores[0].IPC }

// Traffic aggregates inter-level DATA transfers across cores: lines filled
// into the upper level (each fill is one line crossing the boundary) plus
// writebacks travelling down. Request/command traffic is not counted — a
// prefetch request that gets dropped as a duplicate moves no data.
func (r *Result) Traffic() stats.Traffic {
	var t stats.Traffic
	for i := range r.Cores {
		t.L1DToL2 += r.Cores[i].L1D.TotalFills
		t.WBToL2 += r.Cores[i].WBToL2
		t.L2ToLLC += r.Cores[i].L2.TotalFills
		t.WBToLLC += r.Cores[i].WBToLLC
	}
	t.LLCToDRAM = r.LLC.TotalFills
	t.WBToDRAM = r.WBToDRAM
	return t
}

// Machine is a fully-wired simulated system.
type Machine struct {
	cfg   Config
	cores []*Core
	mmus  []*vm.MMU
	l1ds  []*cache.Cache
	l2s   []*cache.Cache
	llc   *cache.Cache
	dramC *dram.Channel
	cycle uint64

	// sched selects the main-loop strategy (SchedHorizon by default).
	// horizon() queries the component slices directly through their
	// concrete types — see scheduler.go.
	sched Scheduler

	// Observability (nil = disabled; the per-tick cost of the disabled
	// path is a single bool check in runUntil).
	obsv       *obs.Observer
	sampling   bool
	nextSample uint64

	// Invariant checking (nil checker = disabled at the cost of one nil
	// check per tick). checkInterval is the cycle stride between sweeps;
	// mshrStuckAfter is the in-flight age that flags a leaked fill.
	checker        *check.Checker
	checkInterval  uint64
	mshrStuckAfter uint64
	nextCheck      uint64

	// Fault injection (nil = disabled). State-corruption plans (dup-line,
	// pq-orphan) fire once at plan.After cycles; fill plans attach a hook
	// to every L1D.
	faultPlan      *fault.Plan
	injector       *fault.FillInjector
	corruptApplied bool

	// deadline bounds the run's wall-clock time (zero = unbounded).
	// nextDeadlineCheck is the next cycle at which the wall clock and the
	// cancellation context are consulted (a tracked target rather than a
	// modulus, so horizon jumps land on it instead of leaping over the
	// stride boundary).
	deadline          time.Time
	deadlineLimit     time.Duration
	nextDeadlineCheck uint64

	// ctx, when non-nil, is polled for cooperative cancellation at the
	// same stride as the wall-clock deadline: no per-cycle cost, and under
	// the horizon scheduler jumps are clamped to the poll boundary so a
	// quiescent stretch cannot defer the check.
	ctx context.Context

	// watchdogCycles overrides StallWatchdogCycles (0 = default).
	watchdogCycles uint64

	// prov is the per-prefetch lifecycle tracker shared by every cache
	// level (nil = disabled at zero cost: the caches guard every emission).
	prov *provenance.Tracker
}

// New builds a machine: per-core L1D+L2 (private), a shared LLC sized
// 2 MB/core, and one DRAM channel. traces supplies one reader per core.
// l1dPf/l2Pf are per-level prefetcher factories (nil = none). The
// configuration is validated first; an invalid one yields a *ConfigError
// (or the nested cache/vm error) instead of a panic downstream.
func New(cfg Config, traces []trace.Reader, l1dPf, l2Pf PrefetcherFactory) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(traces) != cfg.Cores {
		return nil, &ConfigError{Field: "Cores",
			Reason: fmt.Sprintf("%d trace readers for %d cores", len(traces), cfg.Cores)}
	}
	m := &Machine{cfg: cfg}
	m.dramC = dram.NewChannel(cfg.DRAM)
	da := &dramAdaptor{ch: m.dramC}

	llcCfg := cfg.LLC
	llcCfg.SizeBytes *= cfg.Cores
	llcCfg.MSHRs *= cfg.Cores
	llcCfg.RQSize *= cfg.Cores
	llcCfg.WQSize *= cfg.Cores
	llcCfg.PQSize *= cfg.Cores
	llc, err := cache.New(llcCfg, da)
	if err != nil {
		return nil, &ConfigError{Field: "LLC", Err: err}
	}
	m.llc = llc

	for i := 0; i < cfg.Cores; i++ {
		mmu, err := vm.NewMMU(cfg.MMU, uint64(i)+1)
		if err != nil {
			return nil, &ConfigError{Field: "MMU", Err: err}
		}
		l2cfg := cfg.L2
		l2cfg.Name = fmt.Sprintf("L2.%d", i)
		l2, err := cache.New(l2cfg, m.llc)
		if err != nil {
			return nil, &ConfigError{Field: "L2", Err: err}
		}
		l1cfg := cfg.L1D
		l1cfg.Name = fmt.Sprintf("L1D.%d", i)
		l1, err := cache.New(l1cfg, l2)
		if err != nil {
			return nil, &ConfigError{Field: "L1D", Err: err}
		}
		l1.SetTranslator(stlbXlat{mmu: mmu})
		if l1dPf != nil {
			l1.SetPrefetcher(l1dPf())
		}
		if l2Pf != nil {
			l2.SetPrefetcher(l2Pf())
		}
		core := NewCore(i, cfg.Core, traces[i], mmu, l1)
		m.mmus = append(m.mmus, mmu)
		m.l1ds = append(m.l1ds, l1)
		m.l2s = append(m.l2s, l2)
		m.cores = append(m.cores, core)
	}
	return m, nil
}

// MustNew builds a machine from a configuration known to be valid (tests,
// compiled-in defaults). It panics on error; user-supplied configurations
// must go through New.
func MustNew(cfg Config, traces []trace.Reader, l1dPf, l2Pf PrefetcherFactory) *Machine {
	m, err := New(cfg, traces, l1dPf, l2Pf)
	if err != nil {
		panic(err)
	}
	return m
}

// SetObserver attaches the observability layer. Must be called before Run.
// A nil observer (or nil fields) leaves the corresponding subsystem
// disabled at zero cost. The tracer is threaded into every cache level and
// MMU; the sampler is driven from the measurement loop over core 0.
func (m *Machine) SetObserver(o *obs.Observer) {
	m.obsv = o
	if o == nil || o.Tracer == nil {
		return
	}
	for i := range m.l1ds {
		m.l1ds[i].SetTracer(o.Tracer)
		m.l2s[i].SetTracer(o.Tracer)
		m.mmus[i].SetTracer(o.Tracer)
	}
	m.llc.SetTracer(o.Tracer)
}

// SetProvenance attaches a per-prefetch lifecycle tracker, threading it
// through every cache level so provenance IDs stay meaningful as prefetches
// cross the hierarchy. Must be called before Run. The tracker is a pure
// observer: core statistics are byte-identical with and without it.
func (m *Machine) SetProvenance(t *provenance.Tracker) {
	m.prov = t
	for i := range m.l1ds {
		m.l1ds[i].SetProvenance(t)
		m.l2s[i].SetProvenance(t)
	}
	m.llc.SetProvenance(t)
}

// Provenance returns the attached tracker (nil if none).
func (m *Machine) Provenance() *provenance.Tracker { return m.prov }

// DefaultCheckInterval is the cycle stride between invariant sweeps.
const DefaultCheckInterval = 10_000

// DefaultMSHRStuckAfter is the in-flight age (cycles) at which an MSHR
// entry is flagged as a leaked fill. Well below the 2M-cycle watchdog, far
// above any legitimate DRAM round trip.
const DefaultMSHRStuckAfter = 100_000

// SetChecker attaches the invariant checker. Must be called before Run.
// interval and stuckAfter of 0 select the defaults. A nil checker leaves
// checking disabled at the cost of one nil check per tick.
func (m *Machine) SetChecker(c *check.Checker, interval, stuckAfter uint64) {
	m.checker = c
	m.checkInterval = interval
	if m.checkInterval == 0 {
		m.checkInterval = DefaultCheckInterval
	}
	m.mshrStuckAfter = stuckAfter
	if m.mshrStuckAfter == 0 {
		m.mshrStuckAfter = DefaultMSHRStuckAfter
	}
}

// SetFaultPlan attaches a simulation-level fault plan. Must be called
// before Run. Fill plans (drop-fill, delay-fill) hook every L1D's fill
// path; state-corruption plans (dup-line, pq-orphan) fire once when the
// cycle counter reaches plan.After. Trace-level plans are a no-op here
// (apply them to the encoded bytes before decoding).
func (m *Machine) SetFaultPlan(p *fault.Plan) {
	m.faultPlan = p
	if inj := fault.NewFillInjector(p); inj != nil {
		m.injector = inj
		for _, l1 := range m.l1ds {
			l1.SetFaultHook(inj)
		}
	}
}

// Injector returns the attached fill injector (nil if none) for test
// observability of injection counts.
func (m *Machine) Injector() *fault.FillInjector { return m.injector }

// SetStallWatchdog overrides the progress-free cycle window after which the
// run is declared hung (0 restores StallWatchdogCycles). Fault-injection
// tests shrink it so a deliberately deadlocked machine fails fast.
func (m *Machine) SetStallWatchdog(cycles uint64) { m.watchdogCycles = cycles }

// SetDeadline bounds the run's wall-clock time; 0 disables the bound. The
// deadline is checked every few thousand cycles, so enforcement is
// approximate but cheap.
func (m *Machine) SetDeadline(d time.Duration) {
	m.deadlineLimit = d
	if d > 0 {
		m.deadline = time.Now().Add(d)
	} else {
		m.deadline = time.Time{}
	}
}

// SetContext arms cooperative cancellation: once ctx is done, the run stops
// at the next poll (every deadlineStride cycles) and Run returns a
// *CancelError carrying the engine snapshot. A nil context disables
// polling. Must be called before Run.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// cancelled returns the typed cancellation error when the attached context
// is done, nil otherwise.
func (m *Machine) cancelled() *CancelError {
	if m.ctx == nil {
		return nil
	}
	select {
	case <-m.ctx.Done():
		return &CancelError{Cause: m.ctx.Err(), Snapshot: m.snapshotState()}
	default:
		return nil
	}
}

// snapshotState captures the engine's progress state for stall/deadline
// reports.
func (m *Machine) snapshotState() EngineSnapshot {
	s := EngineSnapshot{Cycle: m.cycle}
	for _, c := range m.cores {
		s.Retired = append(s.Retired, c.RetiredTotal)
		s.Finished = append(s.Finished, c.Finished)
	}
	for i := range m.l1ds {
		s.Queues = append(s.Queues, m.l1ds[i].Queues())
	}
	for i := range m.l2s {
		s.Queues = append(s.Queues, m.l2s[i].Queues())
	}
	s.Queues = append(s.Queues, m.llc.Queues())
	return s
}

// checkAll sweeps every subsystem's invariants once.
func (m *Machine) checkAll(cycle uint64) {
	report := m.checker.Report
	for i := range m.l1ds {
		m.l1ds[i].CheckInvariants(cycle, m.mshrStuckAfter, report)
		m.l2s[i].CheckInvariants(cycle, m.mshrStuckAfter, report)
	}
	m.llc.CheckInvariants(cycle, m.mshrStuckAfter, report)
	for i, c := range m.cores {
		c.CheckInvariants(fmt.Sprintf("core.%d", i), cycle, report)
		m.mmus[i].CheckInvariants(fmt.Sprintf("MMU.%d", i), cycle, report)
	}
}

// maybeCorrupt applies a one-shot state-corruption fault (dup-line,
// pq-orphan) once the cycle counter reaches the plan's After.
func (m *Machine) maybeCorrupt() {
	if m.corruptApplied || m.faultPlan == nil || m.cycle < m.faultPlan.After {
		return
	}
	switch m.faultPlan.Kind {
	case fault.DupLine:
		m.corruptApplied = m.l1ds[0].CorruptDuplicateTag()
	case fault.PQOrphan:
		n := int(m.faultPlan.Param)
		if n == 0 {
			n = 4
		}
		m.l1ds[0].CorruptPQOrphans(n)
		m.corruptApplied = true
	default:
		m.corruptApplied = true // fill/trace plans need no state corruption
	}
	if m.corruptApplied && m.checker != nil {
		// Sweep before normal traffic can evict the damage: a duplicated
		// tag in a streaming set lives far shorter than the check interval.
		m.nextCheck = m.cycle
	}
}

// snapshot captures core 0's cumulative counters (plus shared LLC/DRAM)
// for the interval sampler. Multi-core runs sample core 0's view.
func (m *Machine) snapshot() obs.Snapshot {
	s := obs.Snapshot{
		Cycle:            m.cycle,
		Instructions:     m.cores[0].Stats.Instructions,
		Core:             m.cores[0].Stats,
		TLB:              m.mmus[0].Stats,
		L1D:              m.l1ds[0].Stats,
		L2:               m.l2s[0].Stats,
		LLC:              m.llc.Stats,
		DRAM:             m.dramC.Stats,
		L1DMSHROccupancy: m.l1ds[0].MSHROccupancy(),
	}
	if pf := m.l1ds[0].Prefetcher(); pf != nil {
		if in, ok := pf.(obs.Introspector); ok {
			s.Gauges = make(map[string]float64, 16)
			in.Introspect(s.Gauges)
		}
	}
	return s
}

// maybeSample records a sampler row at every interval boundary crossed by
// core 0's retired-instruction count.
func (m *Machine) maybeSample() {
	instr := m.cores[0].Stats.Instructions
	for instr >= m.nextSample {
		m.obsv.Sampler.Record(m.snapshot())
		m.nextSample += m.obsv.Sampler.Interval()
	}
}

// L1D returns core i's L1D (harness introspection).
func (m *Machine) L1D(i int) *cache.Cache { return m.l1ds[i] }

// Core returns core i.
func (m *Machine) CoreAt(i int) *Core { return m.cores[i] }

// tick advances the whole machine one cycle, bottom-up.
func (m *Machine) tick() {
	m.dramC.Tick(m.cycle)
	m.llc.Tick(m.cycle)
	for i := range m.l2s {
		m.l2s[i].Tick(m.cycle)
	}
	for i := range m.l1ds {
		m.l1ds[i].Tick(m.cycle)
	}
	for i := range m.cores {
		m.cores[i].Tick(m.cycle)
	}
	m.cycle++
}

// Run executes warmup then measurement and returns the collected result.
// Each core is measured over cfg.SimInstructions retired after warmup;
// cores that finish early keep executing (their trace readers loop in
// multi-core mixes) so contention persists until all cores finish.
//
// A hang yields a *StallError, a blown wall-clock budget a *DeadlineError,
// a done cancellation context a *CancelError, a failing trace reader a
// *TraceReadError (all with nil result). When an attached checker recorded
// violations the result is still returned alongside the
// *check.ViolationError.
func (m *Machine) Run() (*Result, error) {
	cfg := m.cfg
	// Warmup phase.
	if cfg.WarmupInstructions > 0 {
		if err := m.runUntil(func() bool {
			for _, c := range m.cores {
				if c.RetiredTotal < cfg.WarmupInstructions && !c.Done() {
					return false
				}
			}
			return true
		}); err != nil {
			return nil, err
		}
	}
	// Reset measured statistics; cache/TLB/predictor state persists.
	warmupEnd := m.cycle
	for i, c := range m.cores {
		c.ResetStats()
		c.SetFinishTarget(c.RetiredTotal + cfg.SimInstructions)
		c.Finished = false
		m.l1ds[i].ResetStats()
		m.l2s[i].ResetStats()
		m.mmus[i].Stats = stats.TLBStats{}
	}
	m.llc.ResetStats()
	m.dramC.Stats = stats.DRAMStats{}
	if m.prov != nil {
		// Zero the aggregates but keep live records: a prefetch issued in
		// warmup that resolves during measurement lands in the measured
		// aggregates exactly like its PrefUseful/PrefLate/PrefUseless
		// counterpart does.
		m.prov.ResetCounters()
	}

	// Arm the interval sampler: baseline at measurement start (counters
	// just reset, only the cycle is nonzero).
	if m.obsv != nil && m.obsv.Sampler != nil {
		m.obsv.Sampler.Begin(m.snapshot())
		m.nextSample = m.obsv.Sampler.Interval()
		m.sampling = true
	}

	// Measurement phase.
	if err := m.runUntil(func() bool {
		for _, c := range m.cores {
			if !c.Finished && !c.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		return nil, err
	}

	res := &Result{Config: cfg, Cycles: m.cycle - warmupEnd}
	if m.sampling {
		// Close the trailing partial interval (no-op when the run ended
		// exactly on a boundary) and publish the series.
		m.obsv.Sampler.Record(m.snapshot())
		m.sampling = false
		res.TimeSeries = m.obsv.Sampler.Series()
	}
	for i, c := range m.cores {
		finish := c.FinishedCycle
		if finish == 0 {
			finish = m.cycle
		}
		cycles := finish - warmupEnd
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(cfg.SimInstructions) / float64(cycles)
		}
		res.Cores = append(res.Cores, CoreResult{
			Core:    c.Stats,
			TLB:     m.mmus[i].Stats,
			L1D:     m.l1ds[i].Stats,
			L2:      m.l2s[i].Stats,
			L1DToL2: m.l1ds[i].TrafficDown,
			WBToL2:  m.l1ds[i].WBDown,
			L2ToLLC: m.l2s[i].TrafficDown,
			WBToLLC: m.l2s[i].WBDown,
			IPC:     ipc,
		})
	}
	res.LLC = m.llc.Stats
	res.LLCToDRAM = m.llc.TrafficDown
	res.WBToDRAM = m.llc.WBDown
	res.DRAM = m.dramC.Stats
	if pf := m.l1ds[0].Prefetcher(); pf != nil {
		res.L1DPfName = pf.Name()
		res.L1DPfBits = pf.StorageBits()
	}
	if pf := m.l2s[0].Prefetcher(); pf != nil {
		res.L2PfName = pf.Name()
		res.L2PfBits = pf.StorageBits()
	}
	if m.prov != nil {
		res.Provenance = m.prov.Report()
	}
	if m.checker != nil {
		// Final sweep so short runs (or damage near the end) are still
		// inspected at least once.
		m.checkAll(m.cycle)
		if err := m.checker.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// MustRun is Run for machines known to be healthy (examples, tests with
// trusted traces); it panics on any error. The free-function form exists so
// call sites read sim.MustRun(m) alongside sim.MustNew.
func MustRun(m *Machine) *Result {
	res, err := m.Run()
	if err != nil {
		panic(err)
	}
	return res
}

// StallWatchdogCycles is the progress-free window after which runUntil
// declares the machine hung.
const StallWatchdogCycles = 2_000_000

// deadlineStride is how many cycles pass between wall-clock deadline and
// context-cancellation checks.
const deadlineStride = 1 << 14

// loopState carries runUntil's progress-watchdog bookkeeping across
// afterCycle calls.
type loopState struct {
	lastProgress uint64
	lastRetired  uint64
	watchdog     uint64
}

// runUntil drives the machine until cond holds, with a progress watchdog, a
// wall-clock deadline, and the periodic invariant sweep. Under SchedTicked
// every cycle is executed; under SchedHorizon the loop jumps the clock over
// stretches every component reports as quiescent, re-running the trigger
// bookkeeping at the jump target (the jump is clamped so every trigger fires
// at exactly the cycle it would under SchedTicked).
func (m *Machine) runUntil(cond func() bool) error {
	st := loopState{lastProgress: m.cycle, watchdog: m.watchdogCycles}
	if st.watchdog == 0 {
		st.watchdog = StallWatchdogCycles
	}
	m.nextDeadlineCheck = (m.cycle/deadlineStride + 1) * deadlineStride
	// A context that is already done stops the run before any work: a
	// drained worker pool must not start cycles it will immediately abandon.
	if ce := m.cancelled(); ce != nil {
		return ce
	}
	for !cond() {
		m.tick()
		if err := m.afterCycle(&st); err != nil {
			return err
		}
		if m.sched != SchedHorizon || cond() {
			// cond is re-checked so a jump can never inflate the cycle
			// counter after the tick that satisfies it.
			continue
		}
		if h := m.clampHorizon(m.horizon(), &st); h > m.cycle {
			m.skipTo(h)
			if err := m.afterCycle(&st); err != nil {
				return err
			}
		}
	}
	return nil
}

// afterCycle runs the engine-level bookkeeping both schedulers share:
// sampling, fault triggering, invariant sweeps, the wall-clock deadline, the
// progress watchdog, and trace-reader failures. It observes m.cycle only, so
// running it after a horizon jump is identical to running it after the
// equivalent executed tick.
func (m *Machine) afterCycle(st *loopState) error {
	if m.sampling {
		m.maybeSample()
	}
	if m.faultPlan != nil {
		m.maybeCorrupt()
	}
	if m.checker != nil && m.cycle >= m.nextCheck {
		m.checkAll(m.cycle)
		m.nextCheck = m.cycle + m.checkInterval
	}
	if (m.ctx != nil || !m.deadline.IsZero()) && m.cycle >= m.nextDeadlineCheck {
		m.nextDeadlineCheck = (m.cycle/deadlineStride + 1) * deadlineStride
		if ce := m.cancelled(); ce != nil {
			return ce
		}
		if !m.deadline.IsZero() && time.Now().After(m.deadline) {
			return &DeadlineError{Limit: m.deadlineLimit, Snapshot: m.snapshotState()}
		}
	}
	var retired uint64
	for _, c := range m.cores {
		retired += c.RetiredTotal
	}
	if retired != st.lastRetired {
		st.lastRetired = retired
		st.lastProgress = m.cycle
	} else if m.cycle-st.lastProgress > st.watchdog {
		return &StallError{StallCycles: st.watchdog, Snapshot: m.snapshotState()}
	}
	for i, c := range m.cores {
		if err := c.Err(); err != nil {
			return &TraceReadError{Core: i, Err: err}
		}
	}
	return nil
}

// RunReader is the stream-first entry point: build a single-core machine
// over any record source (an in-memory slice reader, a looping reader, or a
// tracestore streaming reader) and run it. The engine never materializes
// the trace; memory is bounded by whatever window the reader itself holds.
func RunReader(cfg Config, rd trace.Reader, l1dPf, l2Pf PrefetcherFactory) (*Result, error) {
	return RunReaderContext(context.Background(), cfg, rd, l1dPf, l2Pf)
}

// RunReaderContext is RunReader with cooperative cancellation: once ctx is
// done the run stops at the next poll stride and returns a *CancelError.
func RunReaderContext(ctx context.Context, cfg Config, rd trace.Reader, l1dPf, l2Pf PrefetcherFactory) (*Result, error) {
	cfg.Cores = 1
	m, err := New(cfg, []trace.Reader{rd}, l1dPf, l2Pf)
	if err != nil {
		return nil, err
	}
	m.SetContext(ctx)
	return m.Run()
}

// RunOnce is a convenience: build a single-core machine over an in-memory
// trace and run it.
func RunOnce(cfg Config, tr *trace.Slice, l1dPf, l2Pf PrefetcherFactory) (*Result, error) {
	return RunReader(cfg, trace.NewSliceReader(tr), l1dPf, l2Pf)
}

// MustRunOnce is RunOnce for configurations and traces known to be good
// (tests, benchmarks); it panics on any error.
func MustRunOnce(cfg Config, tr *trace.Slice, l1dPf, l2Pf PrefetcherFactory) *Result {
	res, err := RunOnce(cfg, tr, l1dPf, l2Pf)
	if err != nil {
		panic(err)
	}
	return res
}

// L2RQRejects exposes core i's L2 read-queue rejections (diagnostics).
func (m *Machine) L2RQRejects(i int) uint64 { return m.l2s[i].RQRejects }

// LLCRQRejects exposes the LLC's read-queue rejections (diagnostics).
func (m *Machine) LLCRQRejects() uint64 { return m.llc.RQRejects }
