package sim

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/prefetch/spp"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

// bertiFactory builds the default Berti.
func bertiFactory() cache.Prefetcher { return core.New(core.DefaultConfig()) }

// TestBertiLearnsAndCoversChains is the package-level integration test for
// the full pipeline: trace -> core -> hierarchy -> Berti training ->
// prefetch fills -> measurable speedup.
func TestBertiLearnsAndCoversChains(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	w, _ := workloads.ByName("mcf_like_1554")
	tr := w.Gen(workloads.GenConfig{MemRecords: 120_000, Seed: 1})
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 80_000
	cfg.SimInstructions = 200_000

	base := MustRunOnce(cfg, tr, nil, nil)
	withBerti := MustRunOnce(cfg, tr, bertiFactory, nil)

	if sp := withBerti.IPC() / base.IPC(); sp < 1.5 {
		t.Fatalf("Berti speedup on chains = %.3f, want > 1.5", sp)
	}
	l1 := withBerti.Cores[0].L1D
	if acc := l1.Accuracy(); acc < 0.85 {
		t.Fatalf("accuracy %.3f below the paper's profile", acc)
	}
	if l1.PrefUseful == 0 {
		t.Fatal("no useful prefetches")
	}
	if withBerti.Cores[0].L1D.MPKI(cfg.SimInstructions) >= base.Cores[0].L1D.MPKI(cfg.SimInstructions) {
		t.Fatal("coverage did not reduce L1D MPKI")
	}
}

// TestBertiL2FillsLandAtL2 verifies fill-level plumbing end to end: Berti's
// medium-band prefetches must install at L2 (not L1D) and convert L1D
// misses into fast L2 hits.
func TestBertiL2FillsLandAtL2(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	w, _ := workloads.ByName("lbm_like")
	tr := w.Gen(workloads.GenConfig{MemRecords: 120_000, Seed: 1})
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 80_000
	cfg.SimInstructions = 200_000
	res := MustRunOnce(cfg, tr, bertiFactory, nil)
	if res.Cores[0].L2.PrefFills == 0 {
		t.Fatal("no prefetch fills reached L2")
	}
	if res.Cores[0].L2.PrefUseful == 0 {
		t.Fatal("L2 prefetch fills never hit")
	}
}

// TestL2PrefetcherIntegration wires SPP at L2 under an IP-stride L1D and
// checks it trains on the filtered stream and fills usefully.
func TestL2PrefetcherIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	w, _ := workloads.ByName("roms_like")
	tr := w.Gen(workloads.GenConfig{MemRecords: 120_000, Seed: 1})
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 60_000
	cfg.SimInstructions = 150_000
	res := MustRunOnce(cfg, tr, nil, func() cache.Prefetcher { return spp.New(spp.DefaultConfig()) })
	l2 := res.Cores[0].L2
	if l2.PrefFills == 0 {
		t.Fatal("SPP at L2 never filled")
	}
	if float64(l2.PrefUseful)/float64(l2.PrefFills) < 0.5 {
		t.Fatalf("SPP on a pure stream should be mostly useful: %d/%d",
			l2.PrefUseful, l2.PrefFills)
	}
}

// TestLoopReaderMixFairness: in a 2-core mix of unequal traces both cores
// must be measured over the same instruction budget (the paper's replay
// methodology).
func TestLoopReaderMixFairness(t *testing.T) {
	fast := strideTrace(20_000, 0, 3) // all hits
	slow := chainTrace(20_000, 1)     // serialized misses
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.WarmupInstructions = 5_000
	cfg.SimInstructions = 30_000
	m := MustNew(cfg, []trace.Reader{
		trace.NewLoopReader(fast),
		trace.NewLoopReader(slow),
	}, nil, nil)
	res := MustRun(m)
	// The fast core replays its trace until the slow core finishes (the
	// paper's methodology), so it retires MORE than the budget in total;
	// its IPC is still measured over exactly SimInstructions. The slow
	// core ends the run at exactly the budget.
	if res.Cores[0].Core.Instructions < cfg.SimInstructions ||
		res.Cores[1].Core.Instructions != cfg.SimInstructions {
		t.Fatalf("budget accounting wrong: %d / %d",
			res.Cores[0].Core.Instructions, res.Cores[1].Core.Instructions)
	}
	if res.Cores[0].IPC < res.Cores[1].IPC*2 {
		t.Fatalf("hit-dominated core should be far faster: %.3f vs %.3f",
			res.Cores[0].IPC, res.Cores[1].IPC)
	}
}

// TestBandwidthConstrainedSlower: the DDR3-1600 channel must not be faster
// than DDR5-6400 on a bandwidth-hungry stream.
func TestBandwidthConstrainedSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	w, _ := workloads.ByName("roms_like")
	tr := w.Gen(workloads.GenConfig{MemRecords: 120_000, Seed: 1})
	fast := DefaultConfig()
	fast.WarmupInstructions = 60_000
	fast.SimInstructions = 150_000
	slow := fast
	slow.DRAM.BurstCycles = 20 // DDR3-1600
	fr := MustRunOnce(fast, tr, bertiFactory, nil)
	sr := MustRunOnce(slow, tr, bertiFactory, nil)
	if sr.IPC() > fr.IPC()*1.02 {
		t.Fatalf("constrained DRAM must not be faster: %.3f vs %.3f", sr.IPC(), fr.IPC())
	}
}
