// Package sim composes the substrates into a full system simulator: an
// out-of-order core approximation driving the L1D, private L2, shared LLC,
// and one DRAM channel, mirroring the paper's Table II baseline (an Intel
// Sunny Cove-like core at 4 GHz).
package sim

import (
	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/dram"
	"github.com/bertisim/berti/internal/vm"
)

// CoreConfig sets the core-model parameters.
type CoreConfig struct {
	ROBSize     int // 352-entry ROB
	IssueWidth  int // 6-issue
	RetireWidth int // 4-retire
	LoadPorts   int // L1D read ports used per cycle
	StorePorts  int
	// NonMemLatency is the execution latency of non-memory instructions.
	NonMemLatency uint64
}

// Config describes a full system.
type Config struct {
	Cores int
	Core  CoreConfig
	L1D   cache.Config
	L2    cache.Config
	LLC   cache.Config // sized per core; scaled by Cores at build time
	DRAM  dram.Config
	MMU   vm.MMUConfig
	// WarmupInstructions are executed before statistics collection.
	WarmupInstructions uint64
	// SimInstructions are measured after warmup (per core).
	SimInstructions uint64
}

// DefaultConfig mirrors Table II for one core.
func DefaultConfig() Config {
	return Config{
		Cores: 1,
		Core: CoreConfig{
			ROBSize:       352,
			IssueWidth:    6,
			RetireWidth:   4,
			LoadPorts:     2,
			StorePorts:    1,
			NonMemLatency: 1,
		},
		L1D: cache.Config{
			Name: "L1D", Level: cache.L1D,
			SizeBytes: 48 * 1024, Ways: 12, LatencyCyc: 5,
			MSHRs: 16, RQSize: 24, WQSize: 16, PQSize: 16,
			ReadPorts: 2, WritePorts: 1, Repl: cache.LRU,
		},
		L2: cache.Config{
			Name: "L2", Level: cache.L2,
			SizeBytes: 512 * 1024, Ways: 8, LatencyCyc: 10,
			MSHRs: 32, RQSize: 32, WQSize: 32, PQSize: 32,
			ReadPorts: 1, WritePorts: 1, Repl: cache.SRRIP,
		},
		LLC: cache.Config{
			Name: "LLC", Level: cache.LLC,
			SizeBytes: 2 * 1024 * 1024, Ways: 16, LatencyCyc: 20,
			MSHRs: 64, RQSize: 48, WQSize: 48, PQSize: 32,
			ReadPorts: 1, WritePorts: 1, Repl: cache.DRRIP,
		},
		DRAM:               dram.ConfigDDR5_6400(),
		MMU:                vm.DefaultMMUConfig(),
		WarmupInstructions: 200_000,
		SimInstructions:    1_000_000,
	}
}

// PrefetcherFactory builds a prefetcher instance for one core's cache
// level; nil factories mean no prefetching at that level.
type PrefetcherFactory func() cache.Prefetcher
