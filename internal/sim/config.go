// Package sim composes the substrates into a full system simulator: an
// out-of-order core approximation driving the L1D, private L2, shared LLC,
// and one DRAM channel, mirroring the paper's Table II baseline (an Intel
// Sunny Cove-like core at 4 GHz).
package sim

import (
	"fmt"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/dram"
	"github.com/bertisim/berti/internal/vm"
)

// CoreConfig sets the core-model parameters.
type CoreConfig struct {
	ROBSize     int // 352-entry ROB
	IssueWidth  int // 6-issue
	RetireWidth int // 4-retire
	LoadPorts   int // L1D read ports used per cycle
	StorePorts  int
	// NonMemLatency is the execution latency of non-memory instructions.
	NonMemLatency uint64
}

// Config describes a full system.
type Config struct {
	Cores int
	Core  CoreConfig
	L1D   cache.Config
	L2    cache.Config
	LLC   cache.Config // sized per core; scaled by Cores at build time
	DRAM  dram.Config
	MMU   vm.MMUConfig
	// WarmupInstructions are executed before statistics collection.
	WarmupInstructions uint64
	// SimInstructions are measured after warmup (per core).
	SimInstructions uint64
}

// DefaultConfig mirrors Table II for one core.
func DefaultConfig() Config {
	return Config{
		Cores: 1,
		Core: CoreConfig{
			ROBSize:       352,
			IssueWidth:    6,
			RetireWidth:   4,
			LoadPorts:     2,
			StorePorts:    1,
			NonMemLatency: 1,
		},
		L1D: cache.Config{
			Name: "L1D", Level: cache.L1D,
			SizeBytes: 48 * 1024, Ways: 12, LatencyCyc: 5,
			MSHRs: 16, RQSize: 24, WQSize: 16, PQSize: 16,
			ReadPorts: 2, WritePorts: 1, Repl: cache.LRU,
		},
		L2: cache.Config{
			Name: "L2", Level: cache.L2,
			SizeBytes: 512 * 1024, Ways: 8, LatencyCyc: 10,
			MSHRs: 32, RQSize: 32, WQSize: 32, PQSize: 32,
			ReadPorts: 1, WritePorts: 1, Repl: cache.SRRIP,
		},
		LLC: cache.Config{
			Name: "LLC", Level: cache.LLC,
			SizeBytes: 2 * 1024 * 1024, Ways: 16, LatencyCyc: 20,
			MSHRs: 64, RQSize: 48, WQSize: 48, PQSize: 32,
			ReadPorts: 1, WritePorts: 1, Repl: cache.DRRIP,
		},
		DRAM:               dram.ConfigDDR5_6400(),
		MMU:                vm.DefaultMMUConfig(),
		WarmupInstructions: 200_000,
		SimInstructions:    1_000_000,
	}
}

// PrefetcherFactory builds a prefetcher instance for one core's cache
// level; nil factories mean no prefetching at that level.
type PrefetcherFactory func() cache.Prefetcher

// Validate checks the core-model parameters.
func (c CoreConfig) Validate() error {
	bad := func(field string, got int) error {
		return &ConfigError{Field: "Core." + field, Reason: fmt.Sprintf("must be >= 1, got %d", got)}
	}
	if c.ROBSize <= 0 {
		return bad("ROBSize", c.ROBSize)
	}
	if c.IssueWidth <= 0 {
		return bad("IssueWidth", c.IssueWidth)
	}
	if c.RetireWidth <= 0 {
		return bad("RetireWidth", c.RetireWidth)
	}
	if c.LoadPorts <= 0 {
		return bad("LoadPorts", c.LoadPorts)
	}
	if c.StorePorts <= 0 {
		return bad("StorePorts", c.StorePorts)
	}
	return nil
}

// Validate checks the whole system configuration, descending into each
// cache level, the core model, and the MMU. It returns a *ConfigError
// (wrapping the nested error where applicable) for the first violated
// constraint, or nil.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return &ConfigError{Field: "Cores", Reason: fmt.Sprintf("must be >= 1, got %d", c.Cores)}
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	for _, lv := range []struct {
		field string
		cfg   cache.Config
	}{{"L1D", c.L1D}, {"L2", c.L2}, {"LLC", c.LLC}} {
		if err := lv.cfg.Validate(); err != nil {
			return &ConfigError{Field: lv.field, Err: err}
		}
	}
	if err := c.MMU.Validate(); err != nil {
		return &ConfigError{Field: "MMU", Err: err}
	}
	if c.DRAM.Banks <= 0 {
		return &ConfigError{Field: "DRAM.Banks", Reason: fmt.Sprintf("must be >= 1, got %d", c.DRAM.Banks)}
	}
	if c.DRAM.RowBytes < 64 {
		return &ConfigError{Field: "DRAM.RowBytes", Reason: fmt.Sprintf("must be >= one 64-byte line, got %d", c.DRAM.RowBytes)}
	}
	if c.DRAM.RQSize <= 0 || c.DRAM.WQSize <= 0 {
		return &ConfigError{Field: "DRAM", Reason: fmt.Sprintf("queue sizes must be >= 1, got rq=%d wq=%d", c.DRAM.RQSize, c.DRAM.WQSize)}
	}
	if c.SimInstructions == 0 {
		return &ConfigError{Field: "SimInstructions", Reason: "must be > 0"}
	}
	return nil
}
