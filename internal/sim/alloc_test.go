package sim

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/trace"
)

// allocMachine wires a single-core machine (Berti on the L1D, the paper's
// primary configuration) over a looping mixed load/store trace with a
// bounded footprint: 32 pages, several interleaved strides, a dependent
// chain, and stores, so every queue, MSHR chain, writeback path, and the
// prefetcher's train/issue path all see steady traffic while the page
// tables stop first-touch allocating after warmup.
func allocMachine() *Machine {
	tr := &trace.Slice{}
	base := uint64(0x2_0000_0000)
	for i := 0; i < 4096; i++ {
		page := uint64(i*7%32) * 4096
		off := uint64(i*13%64) * 64
		rec := trace.Record{
			IP:           0x400000 + uint64(i%8)*16,
			Addr:         base + page + off,
			Kind:         trace.Load,
			NonMemBefore: uint32(i % 3),
		}
		switch {
		case i%11 == 3:
			rec.Kind = trace.Store
		case i%5 == 2:
			rec.DepDist = 1
		}
		tr.Append(rec)
	}
	cfg := DefaultConfig()
	cfg.Cores = 1
	return MustNew(cfg, []trace.Reader{trace.NewLoopReader(tr)},
		func() cache.Prefetcher { return core.New(core.DefaultConfig()) }, nil)
}

// TestMachineTickZeroAllocSteadyState asserts the whole simulation hot path
// — core issue/retire, L1D/L2/LLC queues and MSHRs, DRAM scheduling, and
// Berti training — performs zero heap allocations per cycle once warm. All
// steady-state state lives in fixed-capacity rings, open-addressed tables,
// and pooled waiter chains sized at construction; completions flow through
// DoneSink tokens instead of per-request closures.
func TestMachineTickZeroAllocSteadyState(t *testing.T) {
	m := allocMachine()
	// Warm: touch every page, fill the waiter pool and ring high-water
	// marks, and let the prefetcher reach steady state.
	for i := 0; i < 300_000; i++ {
		m.tick()
	}
	avg := testing.AllocsPerRun(2000, func() { m.tick() })
	if avg != 0 {
		t.Fatalf("%.3f allocs per tick in steady state, want 0", avg)
	}
}
