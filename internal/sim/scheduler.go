package sim

import (
	"fmt"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/dram"
)

// Never is the horizon a quiescent component reports: no future cycle at
// which it can change state without external stimulus.
const Never = ^uint64(0)

// Clocked is a component driven by the engine's clock. Tick advances it one
// cycle; NextEventCycle reports the earliest future cycle (>= now) at which
// the component could change observable state on its own — or Never when it
// is quiescent and only external stimulus can wake it.
//
// The contract is a soundness obligation, not an exactness one: the reported
// horizon must be a lower bound on the component's next autonomous state
// change. Returning now is always correct (it just forfeits skipping);
// returning a cycle later than the true next event is a bug, because the
// engine will jump the clock past work the component should have done. The
// engine re-queries every component after every executed tick, so events
// caused by *other* components (a fill arriving from below, a request
// enqueued from above) never need to appear in a component's own horizon.
type Clocked interface {
	Tick(cycle uint64)
	NextEventCycle(now uint64) uint64
}

// Scheduler selects the engine's main-loop strategy.
type Scheduler int

const (
	// SchedHorizon is the event-horizon scheduler (default): after each
	// executed tick it computes the minimum NextEventCycle across all
	// components and jumps the clock there when that minimum lies beyond
	// the next cycle. Results are byte-identical to SchedTicked.
	SchedHorizon Scheduler = iota
	// SchedTicked is the exhaustive per-cycle reference loop: every
	// component is ticked at every cycle. Kept as the differential oracle
	// for the horizon scheduler.
	SchedTicked
)

// String implements fmt.Stringer (flag rendering).
func (s Scheduler) String() string {
	switch s {
	case SchedHorizon:
		return "horizon"
	case SchedTicked:
		return "ticked"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// ParseScheduler resolves a -sched flag value ("" selects the default).
func ParseScheduler(s string) (Scheduler, error) {
	switch s {
	case "", "horizon":
		return SchedHorizon, nil
	case "ticked":
		return SchedTicked, nil
	default:
		return 0, fmt.Errorf("sim: unknown scheduler %q (want ticked or horizon)", s)
	}
}

// SetScheduler selects the main-loop strategy. Must be called before Run.
func (m *Machine) SetScheduler(s Scheduler) { m.sched = s }

// Compile-time checks that every engine component satisfies Clocked.
var (
	_ Clocked = (*Core)(nil)
	_ Clocked = (*cache.Cache)(nil)
	_ Clocked = (*dram.Channel)(nil)
)

// horizon returns the minimum NextEventCycle across all components, early-
// exiting as soon as any component reports the next cycle (no skip possible).
// Components are queried through their concrete types — NextEventCycle is
// side-effect-free and min is order-independent, so devirtualizing the scan
// (it runs after every executed tick) changes nothing but its cost. Cheap
// likely-busy components are asked first to make the early exit pay.
func (m *Machine) horizon() uint64 {
	h := Never
	now := m.cycle
	for _, c := range m.l1ds {
		if e := c.NextEventCycle(now); e < h {
			if e <= now {
				return now
			}
			h = e
		}
	}
	for _, c := range m.l2s {
		if e := c.NextEventCycle(now); e < h {
			if e <= now {
				return now
			}
			h = e
		}
	}
	if e := m.llc.NextEventCycle(now); e < h {
		if e <= now {
			return now
		}
		h = e
	}
	if e := m.dramC.NextEventCycle(now); e < h {
		if e <= now {
			return now
		}
		h = e
	}
	for _, c := range m.cores {
		if e := c.NextEventCycle(now); e < h {
			if e <= now {
				return now
			}
			h = e
		}
	}
	return h
}

// clampHorizon bounds a horizon jump by every engine-level trigger that must
// fire at an exact cycle: the invariant-check sweep, an unapplied fault
// plan's trigger, the wall-clock deadline / cancellation poll stride, and
// the stall watchdog.
// The watchdog clamp also guarantees the jump is finite when every component
// reports Never.
func (m *Machine) clampHorizon(h uint64, st *loopState) uint64 {
	if limit := st.lastProgress + st.watchdog + 1; h > limit {
		h = limit
	}
	if m.checker != nil && h > m.nextCheck {
		h = m.nextCheck
	}
	if m.faultPlan != nil && !m.corruptApplied && h > m.faultPlan.After {
		h = m.faultPlan.After
	}
	if (m.ctx != nil || !m.deadline.IsZero()) && h > m.nextDeadlineCheck {
		h = m.nextDeadlineCheck
	}
	if h < m.cycle {
		h = m.cycle
	}
	return h
}

// skipTo advances the clock to cycle h without executing the intervening
// ticks, crediting each core's per-cycle stall accounting so the skipped
// no-op ticks leave the same statistics they would have under SchedTicked.
func (m *Machine) skipTo(h uint64) {
	n := h - m.cycle
	for _, c := range m.cores {
		c.creditSkip(n)
	}
	m.cycle = h
}
