package sim

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/prefetch/nextline"
	"github.com/bertisim/berti/internal/trace"
)

// strideTrace emits n loads at a constant line stride.
func strideTrace(n int, strideLines uint64, nonMem uint32) *trace.Slice {
	tr := &trace.Slice{}
	addr := uint64(0x1_0000_0000)
	for i := 0; i < n; i++ {
		tr.Append(trace.Record{IP: 0x400040, Addr: addr, Kind: trace.Load, NonMemBefore: nonMem})
		addr += strideLines * 64
	}
	return tr
}

// chainTrace emits loads where each depends on the previous (DepDist=1).
func chainTrace(n int, dep uint8) *trace.Slice {
	tr := &trace.Slice{}
	addr := uint64(0x1_0000_0000)
	for i := 0; i < n; i++ {
		addr += 8 << 10 // always a cold line on its own page region
		tr.Append(trace.Record{IP: 0x400040, Addr: addr, Kind: trace.Load,
			NonMemBefore: 1, DepDist: dep})
	}
	return tr
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 5_000
	cfg.SimInstructions = 40_000
	return cfg
}

func TestIPCWithinPhysicalBounds(t *testing.T) {
	cfg := smallConfig()
	res := MustRunOnce(cfg, strideTrace(60_000, 0, 3), nil, nil)
	// Stride 0 = same line every time: everything hits; retire width
	// bounds IPC at 4.
	if ipc := res.IPC(); ipc <= 1 || ipc > 4.01 {
		t.Fatalf("all-hit IPC out of bounds: %.3f", ipc)
	}
}

func TestMissLatencySlowsExecution(t *testing.T) {
	cfg := smallConfig()
	hit := MustRunOnce(cfg, strideTrace(60_000, 0, 3), nil, nil)
	miss := MustRunOnce(cfg, strideTrace(60_000, 9, 3), nil, nil)
	if miss.IPC() >= hit.IPC() {
		t.Fatalf("missing run (%.3f) not slower than hitting run (%.3f)",
			miss.IPC(), hit.IPC())
	}
	if miss.Cores[0].L1D.DemandMisses == 0 {
		t.Fatal("stride-9 trace produced no misses")
	}
}

func TestDependentChainSerializes(t *testing.T) {
	cfg := smallConfig()
	cfg.SimInstructions = 20_000
	chained := MustRunOnce(cfg, chainTrace(30_000, 1), nil, nil)
	indep := MustRunOnce(cfg, chainTrace(30_000, 0), nil, nil)
	if chained.IPC() > indep.IPC()/3 {
		t.Fatalf("chain did not serialize: dep=%.3f indep=%.3f",
			chained.IPC(), indep.IPC())
	}
}

func TestPrefetcherImprovesDependentStream(t *testing.T) {
	// A dependent sequential walk is latency-bound: without prefetching
	// every line costs a full miss; a next-line prefetcher turns the
	// chain into hits. (An independent stream would not show this: the
	// 352-entry window itself runs ~70 lines ahead, further than any
	// short-distance prefetcher.)
	tr := &trace.Slice{}
	addr := uint64(0x1_0000_0000)
	for i := 0; i < 30_000; i++ {
		addr += 64
		tr.Append(trace.Record{IP: 0x400040, Addr: addr, Kind: trace.Load,
			NonMemBefore: 1, DepDist: 1})
	}
	cfg := smallConfig()
	cfg.SimInstructions = 20_000
	base := MustRunOnce(cfg, tr, nil, nil)
	pf := MustRunOnce(cfg, tr, func() cache.Prefetcher {
		nl := nextline.New(8)
		nl.OnHits = true
		return nl
	}, nil)
	if pf.IPC() < base.IPC()*1.5 {
		t.Fatalf("next-line on a dependent walk should speed up >1.5x: %.3f vs %.3f",
			pf.IPC(), base.IPC())
	}
	// Degree-8 next-line self-balances right at the timeliness edge on a
	// serialized chain, so most covered lines appear as late (merged)
	// prefetches rather than full hits — they must be visible either way.
	st := pf.Cores[0].L1D
	if st.PrefUseful+st.PrefLate == 0 {
		t.Fatal("prefetches neither hit nor merged")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	cfg := smallConfig()
	res := MustRunOnce(cfg, strideTrace(60_000, 1, 3), nil, nil)
	if res.Cores[0].Core.Instructions != cfg.SimInstructions {
		t.Fatalf("measured %d instructions, want %d",
			res.Cores[0].Core.Instructions, cfg.SimInstructions)
	}
}

func TestMultiCoreSharesBandwidth(t *testing.T) {
	cfg := smallConfig()
	cfg.Cores = 4
	mk := func() trace.Reader { return trace.NewLoopReader(strideTrace(40_000, 9, 2)) }
	m := MustNew(cfg, []trace.Reader{mk(), mk(), mk(), mk()}, nil, nil)
	multi := MustRun(m)
	single := MustRunOnce(smallConfig(), strideTrace(40_000, 9, 2), nil, nil)
	for i := range multi.Cores {
		if multi.Cores[i].IPC <= 0 {
			t.Fatalf("core %d made no progress", i)
		}
	}
	// Contention: per-core IPC under sharing must not exceed solo IPC.
	if multi.Cores[0].IPC > single.IPC()*1.05 {
		t.Fatalf("shared run faster than solo: %.3f vs %.3f",
			multi.Cores[0].IPC, single.IPC())
	}
}

func TestStoresRetireWithoutBlocking(t *testing.T) {
	tr := &trace.Slice{}
	addr := uint64(0x2_0000_0000)
	for i := 0; i < 40_000; i++ {
		addr += 64 * 11
		tr.Append(trace.Record{IP: 0x40aa, Addr: addr, Kind: trace.Store, NonMemBefore: 3})
	}
	cfg := smallConfig()
	res := MustRunOnce(cfg, tr, nil, nil)
	// Store misses are write-allocated in the background and retire
	// immediately; throughput is MSHR-bandwidth-bound (~0.3 IPC here),
	// not serialized on the full miss latency (~0.02 IPC).
	if res.IPC() < 0.1 {
		t.Fatalf("stores appear to serialize retirement: IPC=%.3f", res.IPC())
	}
	if res.Cores[0].Core.Stores == 0 {
		t.Fatal("no stores retired")
	}
}

func TestWritebacksReachDRAM(t *testing.T) {
	// Store to many distinct lines so dirty evictions must flow down.
	// The dirty footprint must exceed the LLC (2 MB = 32k lines) within
	// the measured window for writebacks to reach DRAM.
	tr := &trace.Slice{}
	addr := uint64(0x3_0000_0000)
	for i := 0; i < 70_000; i++ {
		addr += 64
		tr.Append(trace.Record{IP: 0x40bb, Addr: addr, Kind: trace.Store, NonMemBefore: 2})
	}
	cfg := smallConfig()
	cfg.SimInstructions = 180_000
	res := MustRunOnce(cfg, tr, nil, nil)
	if res.DRAM.Writes == 0 {
		t.Fatal("dirty evictions never reached DRAM")
	}
}

func TestResultTrafficConsistency(t *testing.T) {
	cfg := smallConfig()
	res := MustRunOnce(cfg, strideTrace(60_000, 5, 3), nil, nil)
	tr := res.Traffic()
	l2, llc, dr := tr.Total()
	if l2 == 0 || llc == 0 || dr == 0 {
		t.Fatalf("traffic should flow at every boundary: %d %d %d", l2, llc, dr)
	}
	if dr > llc+10 || llc > l2+10 {
		t.Fatalf("traffic cannot grow downward: L2=%d LLC=%d DRAM=%d", l2, llc, dr)
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	if c.Core.ROBSize != 352 || c.Core.IssueWidth != 6 || c.Core.RetireWidth != 4 {
		t.Fatal("core parameters deviate from Table II")
	}
	if c.L1D.SizeBytes != 48*1024 || c.L1D.Ways != 12 || c.L1D.MSHRs != 16 {
		t.Fatal("L1D parameters deviate from Table II")
	}
	if c.L2.SizeBytes != 512*1024 || c.LLC.SizeBytes != 2*1024*1024 {
		t.Fatal("cache sizes deviate from Table II")
	}
	if c.L1D.Repl != cache.LRU || c.L2.Repl != cache.SRRIP || c.LLC.Repl != cache.DRRIP {
		t.Fatal("replacement policies deviate from Table II")
	}
}
