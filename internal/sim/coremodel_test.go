package sim

import (
	"testing"

	"github.com/bertisim/berti/internal/trace"
)

// TestRetireOrderInOrder: completion out of order must not reorder
// retirement — a fast later load cannot retire past a slow earlier one.
func TestRetireOrderInOrder(t *testing.T) {
	tr := &trace.Slice{}
	// One slow (cold DRAM) load followed by many same-line (fast) loads.
	tr.Append(trace.Record{IP: 0x400040, Addr: 0x9_0000_0000, Kind: trace.Load, NonMemBefore: 0})
	for i := 0; i < 1000; i++ {
		tr.Append(trace.Record{IP: 0x400061, Addr: 0x8_0000_0000, Kind: trace.Load, NonMemBefore: 0})
	}
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 0
	cfg.SimInstructions = 900
	res := MustRunOnce(cfg, tr, nil, nil)
	// The window is 352: until the head (slow) load completes, at most
	// ROBSize instructions can be in flight; cycles must cover at least
	// the head's miss latency.
	if res.Cores[0].Core.Cycles < 100 {
		t.Fatalf("head-of-line miss not respected: %d cycles", res.Cores[0].Core.Cycles)
	}
}

// TestIssueSkipDoesNotSkipUnissued: a dep-blocked older load must still
// issue after its producer completes, even with the skip optimization.
func TestIssueSkipDoesNotSkipUnissued(t *testing.T) {
	tr := &trace.Slice{}
	// Producer (slow), dependent consumer, then independent loads that
	// issue first (tempting the scan to skip past the consumer).
	tr.Append(trace.Record{IP: 0x1, Addr: 0x9_0000_0000, Kind: trace.Load, NonMemBefore: 0})
	tr.Append(trace.Record{IP: 0x2, Addr: 0x9_1000_0000, Kind: trace.Load, NonMemBefore: 0, DepDist: 1})
	for i := 0; i < 200; i++ {
		tr.Append(trace.Record{IP: 0x3, Addr: 0x8_0000_0000, Kind: trace.Load, NonMemBefore: 0})
	}
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 0
	cfg.SimInstructions = 202
	res := MustRunOnce(cfg, tr, nil, nil) // must terminate: consumer issues eventually
	if res.Cores[0].Core.Loads != 202 {
		t.Fatalf("loads retired = %d, want 202", res.Cores[0].Core.Loads)
	}
}

// TestNonMemAggregation: huge non-memory runs must respect window capacity
// and retire bandwidth.
func TestNonMemAggregation(t *testing.T) {
	tr := &trace.Slice{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.Record{IP: 0x1, Addr: 0x8_0000_0000, Kind: trace.Load, NonMemBefore: 4000})
	}
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 0
	cfg.SimInstructions = 100_000
	res := MustRunOnce(cfg, tr, nil, nil)
	// Pure ALU work retires at exactly RetireWidth=4 per cycle
	// asymptotically.
	if ipc := res.IPC(); ipc < 3.5 || ipc > 4.01 {
		t.Fatalf("nonmem IPC = %.3f, want ~4", ipc)
	}
}

// TestDoneWithoutTarget: a machine whose trace runs out terminates.
func TestDoneWithoutTarget(t *testing.T) {
	tr := &trace.Slice{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.Record{IP: 0x1, Addr: 0x8_0000_0000 + uint64(i)*64, Kind: trace.Load, NonMemBefore: 1})
	}
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 0
	cfg.SimInstructions = 1_000_000 // more than the trace holds
	m := MustNew(cfg, []trace.Reader{trace.NewSliceReader(tr)}, nil, nil)
	res := MustRun(m) // must not hang: Done() ends the run
	if res.Cores[0].Core.Instructions == 0 {
		t.Fatal("nothing retired")
	}
}

// TestDepDistToStore: dependences on stores resolve (store completion is
// posted at issue).
func TestDepDistToStore(t *testing.T) {
	tr := &trace.Slice{}
	for i := 0; i < 2000; i++ {
		tr.Append(trace.Record{IP: 0x1, Addr: 0x8_0000_0000 + uint64(i)*64, Kind: trace.Store, NonMemBefore: 1})
		tr.Append(trace.Record{IP: 0x2, Addr: 0x9_0000_0000 + uint64(i)*64, Kind: trace.Load, NonMemBefore: 1, DepDist: 1})
	}
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 0
	cfg.SimInstructions = 7000
	res := MustRunOnce(cfg, tr, nil, nil)
	if res.Cores[0].Core.Loads == 0 || res.Cores[0].Core.Stores == 0 {
		t.Fatal("mixed trace did not retire")
	}
}
