package sim

import (
	"bytes"
	"testing"

	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/trace"
)

// observedRun executes one sampled+traced run over a fresh machine and
// returns the result plus the rendered CSV and Chrome trace bytes.
func observedRun(t *testing.T, cfg Config, tr *trace.Slice) (*Result, []byte, []byte) {
	t.Helper()
	o := &obs.Observer{
		Sampler: obs.NewSampler(5_000),
		Tracer:  obs.NewTracer(1 << 12),
	}
	m := MustNew(cfg, []trace.Reader{trace.NewSliceReader(tr)}, bertiFactory, nil)
	m.SetObserver(o)
	res := MustRun(m)
	var csv, tj bytes.Buffer
	if res.TimeSeries == nil {
		t.Fatal("observed run returned no time series")
	}
	if err := res.TimeSeries.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := o.Tracer.WriteChromeTrace(&tj); err != nil {
		t.Fatal(err)
	}
	return res, csv.Bytes(), tj.Bytes()
}

// TestObservedRunDeterministic: two identical observed runs must produce
// byte-identical time series and event traces.
func TestObservedRunDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Cores = 1
	tr := strideTrace(60_000, 9, 2)
	resA, csvA, traceA := observedRun(t, cfg, tr)
	resB, csvB, traceB := observedRun(t, cfg, tr)
	if !bytes.Equal(csvA, csvB) {
		t.Fatal("identical runs produced different time-series CSV")
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("identical runs produced different Chrome traces")
	}
	if resA.Cycles != resB.Cycles {
		t.Fatalf("cycles diverged: %d vs %d", resA.Cycles, resB.Cycles)
	}
}

// TestObservedRunMatchesUnobserved: attaching the observability layer must
// not perturb simulation results.
func TestObservedRunMatchesUnobserved(t *testing.T) {
	cfg := smallConfig()
	cfg.Cores = 1
	tr := strideTrace(60_000, 9, 2)
	plain := MustRunOnce(cfg, tr, bertiFactory, nil)
	observed, _, _ := observedRun(t, cfg, tr)
	if plain.Cycles != observed.Cycles {
		t.Fatalf("observation perturbed the run: %d vs %d cycles",
			plain.Cycles, observed.Cycles)
	}
	if plain.Cores[0].L1D.PrefFills != observed.Cores[0].L1D.PrefFills {
		t.Fatalf("prefetch fills diverged: %d vs %d",
			plain.Cores[0].L1D.PrefFills, observed.Cores[0].L1D.PrefFills)
	}
}

// TestObservedRunSeriesShape checks the engine-driven sampling: interval
// boundaries fall on exact multiples of the interval, intervals are
// contiguous, and the trailing partial interval (if any) is closed.
func TestObservedRunSeriesShape(t *testing.T) {
	cfg := smallConfig() // 40k measured instructions, 5k interval
	cfg.Cores = 1
	res, _, _ := observedRun(t, cfg, strideTrace(60_000, 9, 2))
	ts := res.TimeSeries
	if ts.SchemaVersion != obs.SchemaVersion || ts.IntervalInstr != 5_000 {
		t.Fatalf("series metadata wrong: v%d interval=%d", ts.SchemaVersion, ts.IntervalInstr)
	}
	if len(ts.Rows) < 8 {
		t.Fatalf("rows = %d, want >= 8 for 40k instructions at 5k interval", len(ts.Rows))
	}
	var prevEnd uint64
	for i, r := range ts.Rows {
		if r.Interval != i {
			t.Fatalf("row %d carries interval index %d", i, r.Interval)
		}
		if r.EndInstr != prevEnd+r.Instructions {
			t.Fatalf("row %d not contiguous: end=%d prev=%d delta=%d",
				i, r.EndInstr, prevEnd, r.Instructions)
		}
		// Every row except a trailing partial closes at the first retire
		// point at or past its boundary; with retire width 4 the overshoot
		// is bounded by a few instructions.
		if i < len(ts.Rows)-1 {
			boundary := uint64(i+1) * 5_000
			if r.EndInstr < boundary || r.EndInstr >= boundary+8 {
				t.Fatalf("row %d ends at %d, want within [%d, %d)",
					i, r.EndInstr, boundary, boundary+8)
			}
		}
		if r.Instructions == 0 || r.Instructions > 5_000+8 {
			t.Fatalf("row %d spans %d instructions", i, r.Instructions)
		}
		prevEnd = r.EndInstr
	}
	if last := ts.Rows[len(ts.Rows)-1]; last.EndInstr < cfg.SimInstructions {
		t.Fatalf("series ends at %d, before the %d measured instructions",
			last.EndInstr, cfg.SimInstructions)
	}
	// Berti implements Introspector, so gauges must be populated.
	if len(ts.Rows[0].Gauges) == 0 {
		t.Fatal("Berti introspection gauges missing from sampled rows")
	}
	if _, ok := ts.Rows[0].Gauges["table_occupancy"]; !ok {
		t.Fatalf("gauges missing table_occupancy: %v", ts.Rows[0].Gauges)
	}
}
