// Package metrics provides the aggregation and formatting used by the
// evaluation harness: geometric-mean speedups, normalized series, and
// fixed-width table rendering for the per-figure reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs (1.0 for empty input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns ipc/baseline (0 if baseline is 0).
func Speedup(ipc, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return ipc / baseline
}

// Series is a named set of per-key values (one line/bar group per figure).
type Series struct {
	Name   string
	Values map[string]float64
}

// Table renders rows of labelled values with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order (stable table rows).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
