package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomeanBasics(t *testing.T) {
	if g := Geomean(nil); g != 1 {
		t.Fatalf("empty geomean = %f", g)
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if g := Geomean([]float64{1, 0, 2}); g != 0 {
		t.Fatalf("non-positive input should yield 0, got %f", g)
	}
}

// Property: the geomean lies between min and max.
func TestGeomeanBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := 0.5 + float64(v)/1000
			xs = append(xs, x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(2, 1) != 2 || Speedup(1, 0) != 0 {
		t.Fatal("speedup wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") ||
		!strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
