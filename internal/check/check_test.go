package check

import (
	"strings"
	"testing"
)

func TestCheckerCountsAndCaps(t *testing.T) {
	c := New()
	c.MaxRecorded = 3
	if c.Err() != nil {
		t.Fatal("empty checker must have nil Err")
	}
	for i := 0; i < 10; i++ {
		c.Reportf(RuleDupTag, "L1D.0", uint64(i), "dup %d", i)
	}
	c.Report(Violation{Rule: RuleMSHRStuck, Component: "L2.0", Cycle: 99, Detail: "stuck"})
	if c.Total() != 11 {
		t.Fatalf("Total = %d, want 11", c.Total())
	}
	if len(c.Violations()) != 3 {
		t.Fatalf("recorded %d violations, want MaxRecorded=3", len(c.Violations()))
	}
	if c.CountByRule(RuleDupTag) != 10 || c.CountByRule(RuleMSHRStuck) != 1 {
		t.Fatalf("per-rule counts wrong: %d/%d",
			c.CountByRule(RuleDupTag), c.CountByRule(RuleMSHRStuck))
	}
	if c.CountByRule(RuleTLBDup) != 0 {
		t.Fatal("unreported rule must count 0")
	}
}

func TestViolationErrorFormatting(t *testing.T) {
	c := New()
	for i := 0; i < 5; i++ {
		c.Reportf(RuleQueueBound, "L1D.0", 42, "pq %d", i)
	}
	err := c.Err()
	ve, ok := err.(*ViolationError)
	if !ok {
		t.Fatalf("Err() = %T, want *ViolationError", err)
	}
	if ve.Total != 5 {
		t.Fatalf("Total = %d", ve.Total)
	}
	msg := err.Error()
	if !strings.Contains(msg, "5 invariant violation(s)") ||
		!strings.Contains(msg, "(2 more)") ||
		!strings.Contains(msg, "[queue-bound] L1D.0 at cycle 42") {
		t.Fatalf("message lacks summary/truncation/detail: %q", msg)
	}
}
