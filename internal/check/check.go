// Package check defines the simulator's runtime invariant checker.
//
// The paper's results depend on the simulator faithfully modelling limited
// MSHRs, bounded queues, and variable fill latency: a silent accounting bug
// (a leaked MSHR, an over-full prefetch queue, a duplicated cache tag)
// corrupts every downstream IPC/accuracy number without any visible
// failure. The checker makes those invariants explicit: each subsystem
// implements a CheckInvariants method that walks its own state and reports
// structured Violation values, and the engine drives those methods at a
// configurable cycle interval plus once at the end of each run.
//
// The checker is strictly an observer: it never mutates simulator state, so
// a checked run with no faults injected produces byte-identical results to
// an unchecked run. When disabled (the default) its cost is a single nil
// check per engine tick.
package check

import (
	"fmt"
	"strings"
)

// Rule names. Each subsystem reports violations under one of these; the
// fault-injection tests key on them to prove each fault class is caught.
const (
	// RuleMSHRStuck: an MSHR entry has been in flight implausibly long —
	// a leaked or dropped fill (nothing will ever complete it).
	RuleMSHRStuck = "mshr-stuck"
	// RuleMSHRDup: two valid MSHR entries track the same line address.
	RuleMSHRDup = "mshr-dup"
	// RuleQueueBound: a read/write/prefetch queue exceeds its configured
	// capacity.
	RuleQueueBound = "queue-bound"
	// RuleDupTag: two valid ways of one cache set hold the same tag.
	RuleDupTag = "dup-tag"
	// RuleSetMap: a valid line is stored in a set its address does not
	// map to.
	RuleSetMap = "set-map"
	// RuleROBAccounting: the core's reorder-buffer occupancy counters
	// disagree with the entries actually present in the ring.
	RuleROBAccounting = "rob-accounting"
	// RuleTLBDup: two valid ways of one TLB set hold the same virtual
	// page number.
	RuleTLBDup = "tlb-dup"
	// RuleTLBMap: a TLB entry's translation disagrees with the page
	// table (a stale or corrupted mapping).
	RuleTLBMap = "tlb-map"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Rule is one of the Rule* constants.
	Rule string
	// Component names the subsystem instance ("L1D.0", "core.1", "MMU.0").
	Component string
	// Cycle is the simulation cycle at which the check ran.
	Cycle uint64
	// Detail describes the specific breach (addresses, counts).
	Detail string
}

// String formats the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s at cycle %d: %s", v.Rule, v.Component, v.Cycle, v.Detail)
}

// DefaultMaxRecorded bounds the violations kept verbatim; further
// violations are counted but not stored (a corrupt run can trip thousands).
const DefaultMaxRecorded = 64

// Checker accumulates violations from all subsystems of one machine. It is
// not safe for concurrent use; each simulated machine owns one checker
// (matching the engine's single-threaded tick loop).
type Checker struct {
	// MaxRecorded bounds stored violations (DefaultMaxRecorded if 0).
	MaxRecorded int

	violations []Violation
	total      int
	byRule     map[string]int
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{byRule: map[string]int{}}
}

// Report records one violation.
func (c *Checker) Report(v Violation) {
	c.total++
	c.byRule[v.Rule]++
	limit := c.MaxRecorded
	if limit <= 0 {
		limit = DefaultMaxRecorded
	}
	if len(c.violations) < limit {
		c.violations = append(c.violations, v)
	}
}

// Reportf records one violation with a formatted detail string.
func (c *Checker) Reportf(rule, component string, cycle uint64, format string, args ...interface{}) {
	c.Report(Violation{Rule: rule, Component: component, Cycle: cycle,
		Detail: fmt.Sprintf(format, args...)})
}

// Violations returns the recorded violations (up to MaxRecorded).
func (c *Checker) Violations() []Violation { return c.violations }

// Total returns the number of violations reported, including those beyond
// the recording limit.
func (c *Checker) Total() int { return c.total }

// CountByRule returns how many violations were reported under rule.
func (c *Checker) CountByRule(rule string) int { return c.byRule[rule] }

// Err returns nil when no violations were reported, and a *ViolationError
// summarizing them otherwise.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return &ViolationError{Violations: c.violations, Total: c.total}
}

// ViolationError is the structured error carrying a run's invariant
// violations.
type ViolationError struct {
	// Violations holds the recorded breaches (bounded; see Checker).
	Violations []Violation
	// Total counts every reported breach, recorded or not.
	Total int
}

// Error implements error.
func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s)", e.Total)
	n := len(e.Violations)
	if n > 3 {
		n = 3
	}
	for i := 0; i < n; i++ {
		b.WriteString("; ")
		b.WriteString(e.Violations[i].String())
	}
	if e.Total > n {
		fmt.Fprintf(&b, "; ... (%d more)", e.Total-n)
	}
	return b.String()
}
