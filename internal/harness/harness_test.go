package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bertisim/berti/internal/sim"
)

// tinyScale keeps harness tests fast.
var tinyScale = Scale{Name: "tiny", MemRecords: 40_000, WarmupInstr: 30_000, SimInstr: 80_000, Mixes: 2}

// mustRun fails the test on a run error, which also exercises the happy
// error path of the hardened harness.
func mustRun(t *testing.T, h *Harness, spec RunSpec) *sim.Result {
	t.Helper()
	res, err := h.Run(spec)
	if err != nil {
		t.Fatalf("Run(%+v): %v", spec, err)
	}
	return res
}

func TestRunMemoizes(t *testing.T) {
	h := New(tinyScale)
	spec := RunSpec{Workload: "roms_like", L1DPf: "ip-stride"}
	a := mustRun(t, h, spec)
	b := mustRun(t, h, spec)
	if a != b {
		t.Fatal("identical specs must return the memoized result")
	}
}

func TestTraceMemoizes(t *testing.T) {
	h := New(tinyScale)
	if h.MustTrace("roms_like", 0) != h.MustTrace("roms_like", 0) {
		t.Fatal("trace not memoized")
	}
	if h.MustTrace("roms_like", 0) == h.MustTrace("roms_like", 1) {
		t.Fatal("different seeds must generate different traces")
	}
}

func TestRunManyOrder(t *testing.T) {
	h := New(tinyScale)
	specs := []RunSpec{
		{Workload: "roms_like"},
		{Workload: "roms_like", L1DPf: "next-line"},
	}
	out, err := h.RunMany(specs)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if len(out) != 2 || out[0] == nil || out[1] == nil {
		t.Fatal("RunMany results missing")
	}
	if out[0].L1DPfName != "" || out[1].L1DPfName != "next-line" {
		t.Fatalf("results out of order: %q %q", out[0].L1DPfName, out[1].L1DPfName)
	}
}

func TestMemIntSuiteSplitsCorrectly(t *testing.T) {
	spec := MemIntSuite("spec")
	gap := MemIntSuite("gap")
	all := MemIntSuite("all")
	if len(all) != len(spec)+len(gap) {
		t.Fatalf("suite split inconsistent: %d + %d != %d", len(spec), len(gap), len(all))
	}
	if len(CloudSuiteNames()) < 4 {
		t.Fatal("cloud suite missing")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(Experiments()) != len(paperOrder) {
		t.Fatalf("registered %d experiments, paperOrder lists %d",
			len(Experiments()), len(paperOrder))
	}
	for i, e := range Experiments() {
		if e.ID != paperOrder[i] {
			t.Fatalf("experiment %d out of order: %s != %s", i, e.ID, paperOrder[i])
		}
		if e.Run == nil || e.Desc == "" || e.Paper == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ExperimentByID("Fig8L1DSpeedup"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("lookup invented an experiment")
	}
}

func TestMixesDeterministic(t *testing.T) {
	a := Mixes(4)
	b := Mixes(4)
	if len(a) != 4 || len(a[0]) != 4 {
		t.Fatalf("mix shape wrong: %v", a)
	}
	for i := range a {
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				t.Fatal("mixes must be deterministic")
			}
		}
	}
}

func TestTableExperimentsRunFast(t *testing.T) {
	h := New(tinyScale)
	for _, id := range []string{"Tab1Storage", "Tab2Config", "Tab3PrefConfig"} {
		e, _ := ExperimentByID(id)
		var buf bytes.Buffer
		e.Run(h, &buf)
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestTab1Reports255KB(t *testing.T) {
	h := New(tinyScale)
	e, _ := ExperimentByID("Tab1Storage")
	var buf bytes.Buffer
	e.Run(h, &buf)
	if !strings.Contains(buf.String(), "2.55") {
		t.Fatalf("Table I must total 2.55 KB:\n%s", buf.String())
	}
}

// TestBertiBeatsBaselineOnMCF is the repository's headline integration
// test: a full simulation of the mcf-like chain workload where Berti must
// clearly outperform the IP-stride baseline with high accuracy.
func TestBertiBeatsBaselineOnMCF(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	h := New(tinyScale)
	berti := mustRun(t, h, RunSpec{Workload: "mcf_like_1554", L1DPf: "berti"})
	base := mustRun(t, h, RunSpec{Workload: "mcf_like_1554", L1DPf: "ip-stride"})
	sp := SpeedupOver(berti, base)
	if sp < 1.3 {
		t.Fatalf("Berti speedup on mcf-like = %.3f, expected well above 1.3", sp)
	}
	if acc := berti.Cores[0].L1D.Accuracy(); acc < 0.8 {
		t.Fatalf("Berti accuracy = %.3f, paper reports ~0.87+", acc)
	}
}

// TestBertiFailsOnCactu checks the paper's negative result: hundreds of
// interleaved IPs overflow Berti's tables while MLOP's global view copes.
func TestBertiFailsOnCactu(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	h := New(tinyScale)
	berti := mustRun(t, h, RunSpec{Workload: "cactu_like", L1DPf: "berti"})
	mlop := mustRun(t, h, RunSpec{Workload: "cactu_like", L1DPf: "mlop"})
	base := mustRun(t, h, RunSpec{Workload: "cactu_like", L1DPf: "ip-stride"})
	if SpeedupOver(berti, base) > SpeedupOver(mlop, base)+0.01 {
		t.Fatalf("on cactu-like, MLOP (%.3f) must beat Berti (%.3f)",
			SpeedupOver(mlop, base), SpeedupOver(berti, base))
	}
}
