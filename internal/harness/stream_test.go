package harness

import (
	"encoding/json"
	"testing"

	"github.com/bertisim/berti/internal/workloads"
)

// streamScale keeps the identity sweep fast while still crossing several
// chunk boundaries per trace.
var streamScale = Scale{Name: "stream-test", MemRecords: 24_000, WarmupInstr: 20_000, SimInstr: 50_000}

// TestStreamingStatsIdentity: a corpus-backed streaming run must produce
// byte-identical statistics (compared through the JSON encoding, the shape
// the tools emit) to the in-memory path, on every seed workload. This is
// the acceptance bar for replacing whole-trace-in-RAM simulation with the
// tracestore pipeline.
func TestStreamingStatsIdentity(t *testing.T) {
	names := make([]string, 0, 32)
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if len(names) == 0 {
		t.Fatal("no workloads registered")
	}
	if testing.Short() {
		names = names[:4]
	}
	corpusDir := t.TempDir()
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := RunSpec{Workload: name, L1DPf: "berti"}

			mem := New(streamScale)
			memRes, err := mem.Run(spec)
			if err != nil {
				t.Fatalf("in-memory run: %v", err)
			}
			streamed := New(streamScale)
			streamed.CorpusDir = corpusDir
			streamRes, err := streamed.Run(spec)
			if err != nil {
				t.Fatalf("streaming run: %v", err)
			}

			memJSON, err := json.Marshal(memRes)
			if err != nil {
				t.Fatal(err)
			}
			streamJSON, err := json.Marshal(streamRes)
			if err != nil {
				t.Fatal(err)
			}
			if string(memJSON) != string(streamJSON) {
				t.Fatalf("streaming stats diverge from in-memory stats\nmem:    %s\nstream: %s", memJSON, streamJSON)
			}
		})
	}
}

// TestStreamingMixIdentity covers the multi-core looping path: mixes replay
// finished traces, so the streaming loop reader must wrap exactly like
// trace.LoopReader.
func TestStreamingMixIdentity(t *testing.T) {
	mix := []string{"mcf_like_1554", "lbm_like"}
	spec := RunSpec{Mix: mix, L1DPf: "berti", Seed: 1}

	mem := New(streamScale)
	memRes, err := mem.Run(spec)
	if err != nil {
		t.Fatalf("in-memory mix run: %v", err)
	}
	streamed := New(streamScale)
	streamed.CorpusDir = t.TempDir()
	streamRes, err := streamed.Run(spec)
	if err != nil {
		t.Fatalf("streaming mix run: %v", err)
	}
	memJSON, _ := json.Marshal(memRes)
	streamJSON, _ := json.Marshal(streamRes)
	if string(memJSON) != string(streamJSON) {
		t.Fatalf("streaming mix stats diverge\nmem:    %s\nstream: %s", memJSON, streamJSON)
	}
}

// TestRunManyPool: the bounded pool must preserve spec ordering and produce
// the same results as the unbounded path, at any worker count.
func TestRunManyPool(t *testing.T) {
	specs := []RunSpec{
		{Workload: "mcf_like_1554", L1DPf: "berti"},
		{Workload: "mcf_like_1554", L1DPf: "ip-stride"},
		{Workload: "lbm_like", L1DPf: "berti"},
		{Workload: "lbm_like", L1DPf: ""},
	}
	var want []string
	for workers := 1; workers <= 3; workers++ {
		h := New(streamScale)
		h.Workers = workers
		results, err := h.RunMany(specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var got []string
		for i, r := range results {
			if r == nil {
				t.Fatalf("workers=%d: slot %d nil", workers, i)
			}
			j, _ := json.Marshal(r)
			got = append(got, string(j))
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d: slot %d diverges from workers=1", workers, i)
			}
		}
	}
}
