package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/sim"
)

// TestConcurrentDuplicateRunsExecuteOnce: many goroutines submitting the
// same spec concurrently must share a single execution — OnResult (the
// journal/dedup subscription point) fires exactly once and every caller
// gets the same memoized result. This is the in-process half of the
// campaign server's dedup guarantee; run it under -race.
func TestConcurrentDuplicateRunsExecuteOnce(t *testing.T) {
	h := New(tinyScale)
	h.Workers = 4
	var fired atomic.Int64
	h.OnResult = func(string, RunSpec, *sim.Result) { fired.Add(1) }

	spec := RunSpec{Workload: "mcf_like_1554", L1DPf: "berti"}
	const callers = 8
	results := make([]*sim.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = h.RunContext(context.Background(), spec)
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d failed: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("caller %d got a nil result", i)
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result object — the spec ran more than once", i)
		}
	}
	if n := fired.Load(); n != 1 {
		t.Fatalf("OnResult fired %d times for one spec, want exactly 1", n)
	}
}

// TestRunManyDuplicateSpecsExecuteOnce: a batch that repeats one spec must
// execute it once and fill every slot with the shared result.
func TestRunManyDuplicateSpecsExecuteOnce(t *testing.T) {
	h := New(tinyScale)
	h.Workers = 4
	var fired atomic.Int64
	h.OnResult = func(string, RunSpec, *sim.Result) { fired.Add(1) }

	spec := RunSpec{Workload: "roms_like", L1DPf: "next-line"}
	specs := []RunSpec{spec, spec, spec, spec, spec, spec}
	out, err := h.RunMany(specs)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for i, r := range out {
		if r != out[0] || r == nil {
			t.Fatalf("slot %d does not share the single execution's result", i)
		}
	}
	if n := fired.Load(); n != 1 {
		t.Fatalf("OnResult fired %d times for a duplicated spec, want 1", n)
	}
}

// TestSingleFlightWaiterObservesCancel: a waiter with a cancelled context
// must not block on the leader; it returns the typed cancel error.
func TestSingleFlightWaiterObservesCancel(t *testing.T) {
	h := New(tinyScale)
	h.Workers = 2
	spec := RunSpec{Workload: "lbm_like", L1DPf: "bop"}

	started := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		_, leaderErr = h.RunContext(context.Background(), spec)
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.RunContext(ctx, spec); !sim.IsCancel(err) {
		t.Fatalf("cancelled waiter must get a cancel error, got %v", err)
	}
	wg.Wait()
	if leaderErr != nil {
		t.Fatalf("leader must complete unaffected: %v", leaderErr)
	}
}

// TestRemoteHook: with Remote set, the harness delegates execution,
// memoizes the response, and fires OnResult once; remote failures are
// recorded like local run failures.
func TestRemoteHook(t *testing.T) {
	h := New(tinyScale)
	canned := &sim.Result{Config: sim.DefaultConfig(), Cores: make([]sim.CoreResult, 1)}
	var calls atomic.Int64
	h.Remote = func(_ context.Context, spec RunSpec) (*sim.Result, error) {
		calls.Add(1)
		if spec.Workload == "nope" {
			return nil, errors.New("server rejected the spec")
		}
		return canned, nil
	}
	var fired atomic.Int64
	h.OnResult = func(string, RunSpec, *sim.Result) { fired.Add(1) }

	spec := RunSpec{Workload: "mcf_like_1554", L1DPf: "berti"}
	r1, err := h.Run(spec)
	if err != nil || r1 != canned {
		t.Fatalf("remote run = (%v, %v), want the canned result", r1, err)
	}
	if r2, err := h.Run(spec); err != nil || r2 != canned {
		t.Fatalf("second run must be a memo hit: (%v, %v)", r2, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("remote transport called %d times, want 1 (memoized)", calls.Load())
	}
	if fired.Load() != 1 {
		t.Fatalf("OnResult fired %d times, want 1", fired.Load())
	}

	bad := RunSpec{Workload: "nope"}
	if _, err := h.Run(bad); err == nil {
		t.Fatal("remote failure must surface")
	} else {
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("remote failure must be a *RunError, got %v", err)
		}
	}
	if len(h.Failures()) != 1 {
		t.Fatalf("remote failure must be recorded, got %v", h.Failures())
	}
	// Cancelled remote calls are not memoized and not recorded.
	h2 := New(tinyScale)
	h2.Remote = func(ctx context.Context, _ RunSpec) (*sim.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h2.RunContext(ctx, spec); !sim.IsCancel(err) {
		t.Fatalf("cancelled remote run must yield a cancel error, got %v", err)
	}
	if len(h2.Failures()) != 0 || len(h2.Results()) != 0 {
		t.Fatal("cancelled remote run must not be recorded or memoized")
	}
}

// TestValidateSpec: admission-time validation resolves exactly what a run
// would, with the offending field named.
func TestValidateSpec(t *testing.T) {
	valid := []RunSpec{
		{Workload: "mcf_like_1554", L1DPf: "berti"},
		{Workload: "roms_like"},
		{Workload: "bfs-kron", L1DPf: "oracle"},
		{Mix: []string{"mcf_like_1554", "roms_like"}, L1DPf: "ipcp", L2Pf: "bingo"},
		{Workload: "lbm_like", L1DPf: "berti", DRAMCfg: "ddr4-3200"},
	}
	for _, s := range valid {
		if err := ValidateSpec(s); err != nil {
			t.Errorf("ValidateSpec(%+v) = %v, want nil", s, err)
		}
	}

	cases := []struct {
		spec  RunSpec
		field string
	}{
		{RunSpec{}, "Workload"},
		{RunSpec{Workload: "no-such-workload"}, "Workload"},
		{RunSpec{Mix: []string{"mcf_like_1554", "no-such"}}, "Workload"},
		{RunSpec{Workload: "mcf_like_1554", L1DPf: "no-such-pf"}, "L1DPf"},
		{RunSpec{Workload: "mcf_like_1554", L2Pf: "no-such-pf"}, "L2Pf"},
		{RunSpec{Workload: "mcf_like_1554", DRAMCfg: "ddr9"}, "DRAMCfg"},
		{RunSpec{Workload: "mcf_like_1554", L1DPf: "berti", BertiOverride: &core.Config{}}, "BertiOverride"},
	}
	for _, c := range cases {
		err := ValidateSpec(c.spec)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("ValidateSpec(%+v) = %v, want *SpecError", c.spec, err)
			continue
		}
		if se.Field != c.field {
			t.Errorf("ValidateSpec(%+v) flagged field %q, want %q", c.spec, se.Field, c.field)
		}
	}
}
