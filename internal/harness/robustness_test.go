package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/tracestore"
)

// faultScale is even smaller than tinyScale: fault runs are repeated per
// kind and some (delay-fill) inflate the cycle count.
var faultScale = Scale{Name: "fault", MemRecords: 20_000, WarmupInstr: 10_000, SimInstr: 30_000, Mixes: 2}

// faultSpec is the workload every injection campaign runs: Berti at L1D so
// prefetch fills exist for drop-fill to swallow.
var faultSpec = RunSpec{Workload: "mcf_like_1554", L1DPf: "berti"}

// TestTraceFaultsYieldDecodeError: corrupt-record and truncate damage the
// encoded trace bytes, so the run must fail before simulation with a
// *trace.DecodeError locating the damage.
func TestTraceFaultsYieldDecodeError(t *testing.T) {
	for _, kind := range []fault.Kind{fault.CorruptRecord, fault.TruncateTrace} {
		t.Run(string(kind), func(t *testing.T) {
			h := New(faultScale)
			plan := &fault.Plan{Kind: kind, Seed: 11, Rate: 0.05}
			_, err := h.RunWith(faultSpec, RunOptions{Checker: check.New(), Fault: plan})
			if err == nil {
				t.Fatal("damaged trace must fail the run")
			}
			var de *trace.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("expected a *trace.DecodeError in the chain, got %v", err)
			}
			if de.Offset <= 0 {
				t.Fatalf("decode error must locate the damage, offset=%d", de.Offset)
			}
			var re *RunError
			if !errors.As(err, &re) || re.Attempts != 1 {
				t.Fatalf("deterministic decode failures must not be retried: %v", err)
			}
			// The pristine memoized trace must be untouched by the damage.
			if _, err := h.Run(faultSpec); err != nil {
				t.Fatalf("fault-free rerun after trace fault: %v", err)
			}
		})
	}
}

// TestFillFaultsTripMSHRStuck: dropped prefetch fills leak MSHR entries and
// grossly delayed fills age past the stuck threshold; both must surface as
// mshr-stuck violations from the periodic sweep.
func TestFillFaultsTripMSHRStuck(t *testing.T) {
	for _, plan := range []*fault.Plan{
		{Kind: fault.DropFill, Seed: 3, Rate: 1, After: 50},
		{Kind: fault.DelayFill, Seed: 3, Rate: 0.02, After: 50, Param: 20_000},
	} {
		t.Run(string(plan.Kind), func(t *testing.T) {
			h := New(faultScale)
			ck := check.New()
			_, err := h.RunWith(faultSpec, RunOptions{
				Checker: ck, CheckInterval: 500, MSHRStuckAfter: 2_000,
				Watchdog: 50_000, Fault: plan,
			})
			if err == nil {
				t.Fatalf("%s must fail the checked run", plan.Kind)
			}
			// A total deadlock (demand merged into a leaked prefetch MSHR)
			// ends in the stall watchdog; a surviving run ends with the
			// checker's violations. Either way the sweep must have flagged
			// the stuck entries.
			var ve *check.ViolationError
			var se *sim.StallError
			if !errors.As(err, &ve) && !errors.As(err, &se) {
				t.Fatalf("expected violations or a stall, got %v", err)
			}
			if n := ck.CountByRule(check.RuleMSHRStuck); n == 0 {
				t.Fatalf("no %s violations recorded; got %v", check.RuleMSHRStuck, ck.Violations())
			}
		})
	}
}

// TestStateCorruptionDetected: dup-line must be flagged by the dup-tag scan
// and pq-orphan by the queue-bound check.
func TestStateCorruptionDetected(t *testing.T) {
	for _, tc := range []struct {
		plan *fault.Plan
		rule string
	}{
		{&fault.Plan{Kind: fault.DupLine, Seed: 5, After: 2_000}, check.RuleDupTag},
		{&fault.Plan{Kind: fault.PQOrphan, Seed: 5, After: 2_000, Param: 3}, check.RuleQueueBound},
	} {
		t.Run(string(tc.plan.Kind), func(t *testing.T) {
			h := New(faultScale)
			ck := check.New()
			_, err := h.RunWith(faultSpec, RunOptions{
				Checker: ck, CheckInterval: 500, Fault: tc.plan,
			})
			if err == nil {
				t.Fatalf("%s must fail the checked run", tc.plan.Kind)
			}
			if n := ck.CountByRule(tc.rule); n == 0 {
				t.Fatalf("no %s violations recorded; got %v", tc.rule, ck.Violations())
			}
		})
	}
}

// TestFaultDetectionDeterministic: the same plan over the same spec must
// record the same violation counts on every execution.
func TestFaultDetectionDeterministic(t *testing.T) {
	plan := &fault.Plan{Kind: fault.DropFill, Seed: 9, Rate: 1, After: 50}
	counts := func() int {
		h := New(faultScale)
		ck := check.New()
		_, err := h.RunWith(faultSpec, RunOptions{
			Checker: ck, CheckInterval: 500, MSHRStuckAfter: 2_000,
			Watchdog: 50_000, Fault: plan,
		})
		if err == nil {
			t.Fatal("injection must be detected")
		}
		return ck.Total()
	}
	a, b := counts(), counts()
	if a != b || a == 0 {
		t.Fatalf("violation totals differ across identical runs: %d != %d", a, b)
	}
}

// TestCheckedRunMatchesUnchecked: the checker is an observer; with no
// faults injected a checked run must produce an identical result.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	h := New(faultScale)
	plain, err := h.Run(faultSpec)
	if err != nil {
		t.Fatalf("unchecked run: %v", err)
	}
	checked, err := h.RunWith(faultSpec, RunOptions{Checker: check.New(), CheckInterval: 500})
	if err != nil {
		t.Fatalf("checked run reported violations on a healthy machine: %v", err)
	}
	if !reflect.DeepEqual(plain, checked) {
		t.Fatalf("checking changed the simulation:\nunchecked: %+v\nchecked:   %+v", plain, checked)
	}
}

// TestRunManyPartialResults: one failing spec must leave its slot nil and
// surface in the *RunFailures report while the sibling runs complete.
func TestRunManyPartialResults(t *testing.T) {
	h := New(faultScale)
	specs := []RunSpec{
		{Workload: "roms_like"},
		{Workload: "no-such-workload"},
		{Workload: "roms_like", L1DPf: "next-line"},
	}
	out, err := h.RunMany(specs)
	if err == nil {
		t.Fatal("RunMany must report the failed spec")
	}
	var rf *RunFailures
	if !errors.As(err, &rf) {
		t.Fatalf("expected *RunFailures, got %v", err)
	}
	if rf.Completed != 2 || len(rf.Failed) != 1 {
		t.Fatalf("expected 2 completed + 1 failed, got %d + %d", rf.Completed, len(rf.Failed))
	}
	if out[0] == nil || out[1] != nil || out[2] == nil {
		t.Fatalf("result slots wrong: %v", out)
	}
	var se *SpecError
	if !errors.As(rf.Failed[0], &se) || se.Name != "no-such-workload" {
		t.Fatalf("failure must identify the bad spec: %v", rf.Failed[0])
	}
	if len(h.Failures()) != 1 {
		t.Fatalf("harness must record exactly the one failure, got %v", h.Failures())
	}
	// RunManySafe renders placeholders for the failed slot.
	safe := h.RunManySafe(specs)
	if safe[1] == nil || safe[1].IPC() != 0 {
		t.Fatal("RunManySafe must substitute a zero-stats placeholder")
	}
}

// TestPanicBecomesError: a panic inside a run must come back as a
// *PanicError with the stack attached, and count as retryable.
func TestPanicBecomesError(t *testing.T) {
	_, err := protect(func() (*sim.Result, error) { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *PanicError, got %v", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic value/stack not captured: %+v", pe)
	}
	if !transient(err, 1) {
		t.Fatal("panics must be retryable on first occurrence (possibly environmental)")
	}
	if transient(err, 2) {
		t.Fatal("a second panic is a crash loop and must not be retried again")
	}
	if transient(&SpecError{Field: "Workload", Name: "x"}, 1) {
		t.Fatal("spec errors are deterministic and must not be retried")
	}
	if !transient(&sim.DeadlineError{}, 1) {
		t.Fatal("deadline overruns must be retryable")
	}
}

// TestRetryClassification pins the transient/deterministic split the retry
// policy enforces: corpus I/O retries, everything reproducible does not.
func TestRetryClassification(t *testing.T) {
	transientErrs := []error{
		&os.PathError{Op: "open", Path: "corpus/x.btr2", Err: errors.New("I/O error")},
		os.NewSyscallError("read", errors.New("EIO")),
		&tracestore.FormatError{Section: "chunk", Err: errors.New("crc mismatch")},
		fmt.Errorf("reading chunk: %w", io.ErrUnexpectedEOF),
		&sim.DeadlineError{},
	}
	for _, err := range transientErrs {
		if !transient(err, 1) {
			t.Errorf("%T (%v) must be classified transient", err, err)
		}
	}
	deterministic := []error{
		&sim.ConfigError{Field: "Cores", Reason: "must be >= 1"},
		&trace.DecodeError{Offset: 12},
		&check.ViolationError{Total: 1},
		&sim.StallError{},
		&sim.CancelError{Cause: context.Canceled},
		&SpecError{Field: "Workload", Name: "x"},
	}
	for _, err := range deterministic {
		if transient(err, 1) {
			t.Errorf("%T (%v) must never be retried", err, err)
		}
	}
	// Classification sees through the RunError/TraceReadError wrappers.
	wrapped := &RunError{Spec: faultSpec, Attempts: 1,
		Err: &sim.TraceReadError{Core: 0, Err: &trace.DecodeError{Offset: 3}}}
	if transient(wrapped, 1) {
		t.Error("a wrapped decode failure must stay deterministic")
	}
}

// TestRetryBackoffDeterministic: the seeded jitter must make delays a pure
// function of (seed, key, attempt), growing exponentially to the cap.
func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Seed: 7}
	a := p.delay("k", 1)
	if a != p.delay("k", 1) {
		t.Fatal("identical inputs must give identical delays")
	}
	if p.delay("k", 1) == p.delay("other", 1) {
		t.Fatal("jitter must vary across keys (seed-mixed)")
	}
	if d := p.delay("k", 20); d > DefaultRetryMaxBackoff+DefaultRetryMaxBackoff/2 {
		t.Fatalf("delay must stay within cap+jitter, got %v", d)
	}
	base := RetryPolicy{Seed: 7, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 10 * time.Second}
	if d1, d2 := base.delay("k", 1), base.delay("k", 3); d2 < 2*d1-base.BaseBackoff {
		t.Fatalf("backoff must grow exponentially: attempt1=%v attempt3=%v", d1, d2)
	}
}

// TestRunMemoizesErrors: a failing spec must be executed once and return
// the same error on subsequent calls.
func TestRunMemoizesErrors(t *testing.T) {
	h := New(faultScale)
	bad := RunSpec{Workload: "roms_like", L1DPf: "no-such-prefetcher"}
	_, err1 := h.Run(bad)
	_, err2 := h.Run(bad)
	if err1 == nil || err1 != err2 {
		t.Fatalf("errors must be memoized: %v vs %v", err1, err2)
	}
	if len(h.Failures()) != 1 {
		t.Fatalf("memoized failures must be recorded once, got %d", len(h.Failures()))
	}
}

// TestBertiOverrideValidated: an invalid sensitivity-study override must be
// rejected as a *SpecError before any machine is built.
func TestBertiOverrideValidated(t *testing.T) {
	h := New(faultScale)
	bad := faultSpec
	cfg := core.DefaultConfig()
	cfg.DeltasPerEntry = 0
	bad.BertiOverride = &cfg
	_, err := h.Run(bad)
	var se *SpecError
	if !errors.As(err, &se) || se.Field != "BertiOverride" {
		t.Fatalf("expected BertiOverride *SpecError, got %v", err)
	}
}
