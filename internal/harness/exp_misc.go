package harness

import (
	"fmt"
	"io"

	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/metrics"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/sim"
)

func init() {
	registerExperiment(Experiment{
		ID: "Tab1Storage", Paper: "Table I",
		Desc: "Berti storage breakdown (must total 2.55 KB)",
		Run:  runTab1,
	})
	registerExperiment(Experiment{
		ID: "Tab2Config", Paper: "Table II",
		Desc: "baseline system configuration",
		Run:  runTab2,
	})
	registerExperiment(Experiment{
		ID: "Tab3PrefConfig", Paper: "Table III",
		Desc: "evaluated prefetcher configurations and storage",
		Run:  runTab3,
	})
	registerExperiment(Experiment{
		ID: "Fig21Watermarks", Paper: "Figure 21",
		Desc: "L1/L2 coverage watermark sensitivity",
		Run:  runFig21,
	})
	registerExperiment(Experiment{
		ID: "Fig22TableSizes", Paper: "Figure 22",
		Desc: "Berti table size sensitivity (0.25x..4x)",
		Run:  runFig22,
	})
	registerExperiment(Experiment{
		ID: "AblLatencyBits", Paper: "Section IV.J",
		Desc: "latency counter width (4/12/32 bits)",
		Run:  runAblLatency,
	})
	registerExperiment(Experiment{
		ID: "AblCrossPage", Paper: "Section IV.J",
		Desc: "cross-page prefetching on/off",
		Run:  runAblCrossPage,
	})
	registerExperiment(Experiment{
		ID: "AblIdealL1D", Paper: "Section IV-G",
		Desc: "ideal (oracle) L1D prefetcher headroom, cloud vs MemInt",
		Run:  runAblIdeal,
	})
	registerExperiment(Experiment{
		ID: "AblCalibration", Paper: "DESIGN.md §6",
		Desc: "this reproduction's calibration knobs: timeliness margin, medium-band gating",
		Run:  runAblCalibration,
	})
	registerExperiment(Experiment{
		ID: "AblPythia", Paper: "Section V",
		Desc: "Pythia (RL, L2) with and without Berti at L1D",
		Run:  runAblPythia,
	})
	registerExperiment(Experiment{
		ID: "AblPerIP", Paper: "Section I / ref [46]",
		Desc: "per-IP (local) deltas vs the DPC-3 per-page keying",
		Run:  runAblPerIP,
	})
}

// runAblPerIP compares the paper's per-IP local deltas against the same
// machinery keyed by page (the DPC-3 Berti the design evolved from) — the
// choice the paper's title is about.
func runAblPerIP(h *Harness, w io.Writer) {
	t := metrics.NewTable("Ablation: per-IP (local) vs per-page delta context",
		"keying", "SPEC", "GAP")
	for _, c := range []struct{ label, pf string }{
		{"per-IP (paper)", "berti"},
		{"per-page (DPC-3)", "berti-dpc3"},
	} {
		t.AddRow(c.label,
			h.suiteSpeedup(MemIntSuite("spec"), c.pf, ""),
			h.suiteSpeedup(MemIntSuite("gap"), c.pf, ""))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "the paper's thesis: IP-local context beats page context for delta selection")
}

// runAblPythia reproduces the Section V claim: Pythia is a capable L2
// prefetcher on its own, but adds less than ~1% once Berti runs at the L1D.
func runAblPythia(h *Harness, w io.Writer) {
	names := MemIntSuite("all")
	t := metrics.NewTable("Ablation: Pythia at L2 vs Berti at L1D (speedup over IP-stride)",
		"config", "ALL")
	cfgs := []struct {
		label, l1, l2 string
	}{
		{"pythia (L2 only)", "ip-stride", "pythia"},
		{"berti (L1D only)", "berti", ""},
		{"berti + pythia", "berti", "pythia"},
	}
	for _, c := range cfgs {
		t.AddRow(c.label, h.suiteSpeedup(names, c.l1, c.l2))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper: with Berti at the L1D, Pythia adds <1%")
}

// runAblCalibration ablates the two Berti calibration decisions this
// reproduction adds on top of the paper's text (DESIGN.md §6): the
// timeliness margin on the timely-delta search and the trigger gating of
// the medium-coverage (L2-fill) band.
func runAblCalibration(h *Harness, w io.Writer) {
	t := metrics.NewTable("Ablation: reproduction calibration knobs (speedup over IP-stride)",
		"margin-%", "medium-band", "speedup")
	for _, margin := range []int{0, 25, 50} {
		for _, gated := range []bool{true, false} {
			cfg := core.DefaultConfig()
			cfg.TimelinessMarginPct = margin
			cfg.MediumBandOnTriggerOnly = gated
			band := "every-access"
			if gated {
				band = "triggers-only"
			}
			t.AddRow(margin, band, h.bertiVariantSpeedup(cfg))
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "defaults: margin 25%, triggers-only (see DESIGN.md §6 for rationale)")
}

// runAblIdeal reproduces the Section IV-G observation: for CloudSuite-like
// traces even an ideal L1D prefetcher gains little, while the MemInt suites
// have large headroom.
func runAblIdeal(h *Harness, w io.Writer) {
	t := metrics.NewTable("Ablation: ideal L1D prefetcher headroom (speedup over IP-stride)",
		"workload", "berti", "ideal")
	names := append(append([]string{}, CloudSuiteNames()...), SensitivitySubset()...)
	for _, n := range names {
		base := h.RunSafe(baseSpec(n))
		berti := h.RunSafe(RunSpec{Workload: n, L1DPf: "berti"})
		ideal := h.RunSafe(RunSpec{Workload: n, L1DPf: "oracle"})
		t.AddRow(n, SpeedupOver(berti, base), SpeedupOver(ideal, base))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper: cloud traces show little headroom even for an ideal prefetcher;")
	fmt.Fprintln(w, "Berti approaches the oracle where local deltas exist")
}

func runTab1(h *Harness, w io.Writer) {
	cfg := core.DefaultConfig()
	b := core.New(cfg)
	histEntryBits := 7 + cfg.LineAddrBits + cfg.TimestampBits
	histBits := cfg.HistorySets*cfg.HistoryWays*histEntryBits + cfg.HistorySets*4
	deltaBits := cfg.DeltaTableEntries*(10+4+cfg.DeltasPerEntry*(cfg.DeltaBits+4+2)) + 4
	queueBits := (cfg.PQEntries + cfg.MSHREntries) * cfg.TimestampBits
	l1dBits := cfg.L1DLines * cfg.LatencyBits

	t := metrics.NewTable("Table I: Berti storage overhead", "structure", "geometry", "KB")
	kb := func(bits int) float64 { return float64(bits) / 8 / 1024 }
	t.AddRow("History table",
		fmt.Sprintf("%d-set, %d-way, %d-bit entries", cfg.HistorySets, cfg.HistoryWays, histEntryBits),
		fmt.Sprintf("%.2f", kb(histBits)))
	t.AddRow("Table of deltas",
		fmt.Sprintf("%d-entry FA, %d deltas each", cfg.DeltaTableEntries, cfg.DeltasPerEntry),
		fmt.Sprintf("%.2f", kb(deltaBits)))
	t.AddRow("PQ + MSHR timestamps",
		fmt.Sprintf("%d+%d entries x %d bits", cfg.PQEntries, cfg.MSHREntries, cfg.TimestampBits),
		fmt.Sprintf("%.2f", kb(queueBits)))
	t.AddRow("L1D latency metadata",
		fmt.Sprintf("%d lines x %d bits", cfg.L1DLines, cfg.LatencyBits),
		fmt.Sprintf("%.2f", kb(l1dBits)))
	t.AddRow("Total", "", fmt.Sprintf("%.2f", kb(b.StorageBits())))
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper value: 2.55 KB")
}

func runTab2(h *Harness, w io.Writer) {
	c := sim.DefaultConfig()
	t := metrics.NewTable("Table II: baseline system", "component", "configuration")
	t.AddRow("Core", fmt.Sprintf("OoO approx, %d-entry window, %d-issue, %d-retire, %dld/%dst ports",
		c.Core.ROBSize, c.Core.IssueWidth, c.Core.RetireWidth, c.Core.LoadPorts, c.Core.StorePorts))
	t.AddRow("TLBs", fmt.Sprintf("dTLB %d-entry/%d-way %dcyc; STLB %d-entry/%d-way %dcyc; walk %dcyc",
		c.MMU.DTLBEntries, c.MMU.DTLBWays, c.MMU.DTLBLatency,
		c.MMU.STLBEntries, c.MMU.STLBWays, c.MMU.STLBLatency, c.MMU.WalkLatency))
	t.AddRow("L1D", fmt.Sprintf("%d KB, %d-way, %d cyc, %d MSHRs, %s",
		c.L1D.SizeBytes/1024, c.L1D.Ways, c.L1D.LatencyCyc, c.L1D.MSHRs, c.L1D.Repl))
	t.AddRow("L2", fmt.Sprintf("%d KB, %d-way, %d cyc, %d MSHRs, %s, non-inclusive",
		c.L2.SizeBytes/1024, c.L2.Ways, c.L2.LatencyCyc, c.L2.MSHRs, c.L2.Repl))
	t.AddRow("LLC", fmt.Sprintf("%d MB/core, %d-way, %d cyc, %d MSHRs, %s, non-inclusive",
		c.LLC.SizeBytes/1024/1024, c.LLC.Ways, c.LLC.LatencyCyc, c.LLC.MSHRs, c.LLC.Repl))
	t.AddRow("DRAM", fmt.Sprintf("%d banks, %d B rows, tRP/tRCD/tCAS=%d/%d/%d cyc, burst %d cyc/line, RQ/WQ %d/%d",
		c.DRAM.Banks, c.DRAM.RowBytes, c.DRAM.TRP, c.DRAM.TRCD, c.DRAM.TCAS,
		c.DRAM.BurstCycles, c.DRAM.RQSize, c.DRAM.WQSize))
	fmt.Fprintln(w, t)
}

func runTab3(h *Harness, w io.Writer) {
	t := metrics.NewTable("Table III: evaluated prefetchers", "name", "level", "storage-KB", "notes")
	for _, e := range prefetch.All() {
		level := "L1D"
		if e.Level == prefetch.AtL2 {
			level = "L2"
		}
		t.AddRow(e.Name, level, float64(e.New().StorageBits())/8/1024, e.Comment)
	}
	fmt.Fprintln(w, t)
}

// bertiVariantSpeedup computes geomean speedup over IP-stride on the
// sensitivity subset for a Berti config.
func (h *Harness) bertiVariantSpeedup(cfg core.Config) float64 {
	return h.GeomeanSpeedup(SensitivitySubset(),
		func(wl string) RunSpec {
			c := cfg
			return RunSpec{Workload: wl, L1DPf: "berti", BertiOverride: &c}
		},
		baseSpec)
}

func runFig21(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 21: watermark sensitivity (speedup over IP-stride, sensitivity subset)",
		"L1-watermark", "L2-watermark", "speedup")
	for _, hi := range []int{35, 50, 65, 80, 95} {
		for _, lo := range []int{15, 35, 50, 65} {
			if lo > hi {
				continue
			}
			cfg := core.DefaultConfig()
			cfg.HighWatermarkPct = hi
			cfg.MediumWatermarkPct = lo
			t.AddRow(hi, lo, h.bertiVariantSpeedup(cfg))
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper: 65/35 is the sweet spot; many configurations still help")
}

func runFig22(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 22: Berti table size sensitivity",
		"structure", "scale", "speedup")
	scales := []struct {
		label string
		mul   func(cfg *core.Config, f int) // f in quarters: 1=0.25x ... 16=4x
	}{
		{"history-table", func(c *core.Config, q int) {
			c.HistoryWays = max(1, c.HistoryWays*q/4)
		}},
		{"table-of-deltas", func(c *core.Config, q int) {
			c.DeltaTableEntries = max(1, c.DeltaTableEntries*q/4)
		}},
		{"num-deltas", func(c *core.Config, q int) {
			c.DeltasPerEntry = max(1, c.DeltasPerEntry*q/4)
		}},
	}
	for _, s := range scales {
		for _, q := range []int{1, 2, 4, 8, 16} {
			cfg := core.DefaultConfig()
			s.mul(&cfg, q)
			t.AddRow(s.label, fmt.Sprintf("%.2fx", float64(q)/4), h.bertiVariantSpeedup(cfg))
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper: shrinking the table of deltas hurts the most; growing tables gains little")
}

func runAblLatency(h *Harness, w io.Writer) {
	t := metrics.NewTable("Ablation: latency counter width (Section IV.J)",
		"bits", "speedup")
	for _, bits := range []int{4, 8, 12, 32} {
		cfg := core.DefaultConfig()
		cfg.LatencyBits = bits
		t.AddRow(bits, h.bertiVariantSpeedup(cfg))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper: 4 bits drops performance noticeably; 32 bits gains nothing over 12")
}

func runAblCrossPage(h *Harness, w io.Writer) {
	t := metrics.NewTable("Ablation: cross-page prefetching (Section IV.J)",
		"cross-page", "speedup")
	for _, cp := range []bool{true, false} {
		cfg := core.DefaultConfig()
		cfg.CrossPage = cp
		t.AddRow(fmt.Sprint(cp), h.bertiVariantSpeedup(cfg))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper: disabling cross-page prefetching costs a few percent")
}
