// Package harness runs the paper's experiments: it builds workload traces,
// wires prefetcher configurations into simulated machines, memoizes
// results, and renders the per-figure reports. Both cmd/experiments and the
// repository benchmarks drive this package.
package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/dram"
	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/metrics"
	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/obs/provenance"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/prefetch/oracle"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/tracestore"
	"github.com/bertisim/berti/internal/workloads"

	// Populate the registries.
	_ "github.com/bertisim/berti/internal/prefetch/all"
	_ "github.com/bertisim/berti/internal/workloads/cloudlike"
	_ "github.com/bertisim/berti/internal/workloads/gap"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

// SpecError reports a RunSpec that names something the registries do not
// know or carries an invalid override.
type SpecError struct {
	// Field names the offending spec field ("Workload", "L1DPf", ...).
	Field string
	// Name is the value that failed to resolve.
	Name string
	// Err is the nested cause for override validation failures (nil for
	// plain lookup misses).
	Err error
}

// Error implements error.
func (e *SpecError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("harness: spec %s=%q: %v", e.Field, e.Name, e.Err)
	}
	return fmt.Sprintf("harness: spec %s: unknown %q", e.Field, e.Name)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *SpecError) Unwrap() error { return e.Err }

// PanicError wraps a panic recovered from a simulation goroutine so one
// crashing run cannot take down sibling experiments.
type PanicError struct {
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("harness: run panicked: %v", e.Value) }

// RunError ties a failure to the spec that produced it.
type RunError struct {
	// Spec is the failing run.
	Spec RunSpec
	// Attempts is how many executions were tried (2 after a retry).
	Attempts int
	// Err is the final failure.
	Err error
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("harness: run %s failed after %d attempt(s): %v", e.Spec.key(), e.Attempts, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// RunFailures aggregates the failed runs of a RunMany batch whose other
// runs completed (the partial-results failure report).
type RunFailures struct {
	// Failed holds one *RunError per failing spec.
	Failed []*RunError
	// Cancelled holds the runs aborted by context cancellation. They are
	// not failures: nothing is recorded on the harness and a resumed
	// campaign re-executes them.
	Cancelled []*RunError
	// Completed counts the runs that succeeded.
	Completed int
}

// Error implements error.
func (e *RunFailures) Error() string {
	total := len(e.Failed) + len(e.Cancelled) + e.Completed
	msg := fmt.Sprintf("harness: %d of %d runs failed", len(e.Failed), total)
	if n := len(e.Cancelled); n > 0 {
		msg += fmt.Sprintf(" (%d cancelled)", n)
	}
	for i, f := range e.Failed {
		if i == 3 {
			msg += fmt.Sprintf("; ... (%d more)", len(e.Failed)-i)
			break
		}
		msg += "; " + f.Error()
	}
	return msg
}

// DefaultRunTimeout is the per-run wall-clock budget. Generous: quick-scale
// runs finish in seconds; only a genuine hang (which the cycle-domain
// watchdog usually catches first) burns this long.
const DefaultRunTimeout = 10 * time.Minute

// Retry-policy defaults (see RetryPolicy).
const (
	DefaultRetryAttempts   = 2
	DefaultRetryBackoff    = 50 * time.Millisecond
	DefaultRetryMaxBackoff = 2 * time.Second
)

// RetryPolicy bounds how the harness re-executes transiently-failing runs:
// up to MaxAttempts total executions with exponential backoff between them.
// The jitter is deterministic — mixed from Seed, the spec key, and the
// attempt number — so identical campaigns sleep identically and a resumed
// campaign is reproducible.
type RetryPolicy struct {
	// MaxAttempts is the total execution budget per run, including the
	// first attempt (0 selects DefaultRetryAttempts; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it (0 selects DefaultRetryBackoff).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 selects
	// DefaultRetryMaxBackoff).
	MaxBackoff time.Duration
	// Seed drives the deterministic jitter added to each backoff.
	Seed uint64
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultRetryAttempts
	}
	return p.MaxAttempts
}

// delay computes the backoff before retry number attempt (1-based: the
// sleep between the first failure and the second execution): base doubled
// per attempt, capped, plus deterministic jitter in [0, delay/2].
func (p RetryPolicy) delay(key string, attempt int) time.Duration {
	base, maxB := p.BaseBackoff, p.MaxBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	if maxB <= 0 {
		maxB = DefaultRetryMaxBackoff
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxB {
			d = maxB
			break
		}
	}
	if d > maxB {
		d = maxB
	}
	if half := uint64(d / 2); half > 0 {
		d += time.Duration(splitmix64(p.Seed^hashKey(key)^uint64(attempt)) % (half + 1))
	}
	return d
}

// Delay exposes the deterministic backoff schedule: the sleep before
// retry number attempt (1-based) for the given identity key. The
// distributed transport layer shares this discipline so an HTTP client's
// retries are as reproducible as the harness's own.
func (p RetryPolicy) Delay(key string, attempt int) time.Duration { return p.delay(key, attempt) }

// Sleep blocks for Delay(key, attempt), aborting early when ctx fires, and
// reports whether the retry should proceed (false = ctx cancelled).
func (p RetryPolicy) Sleep(ctx context.Context, key string, attempt int) bool {
	return p.backoff(ctx, key, attempt)
}

// backoff sleeps the policy's delay, aborting early when ctx fires. It
// reports whether the retry should proceed.
func (p RetryPolicy) backoff(ctx context.Context, key string, attempt int) bool {
	t := time.NewTimer(p.delay(key, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// hashKey folds a spec key into 64 bits (FNV-1a) for the jitter mix.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the finalizer used to decorrelate the jitter inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// transient reports whether a failure class is worth retrying on attempt
// number attempt (1-based). Deterministic classes — invalid specs/configs,
// decode failures of in-memory bytes, invariant violations, simulated
// hangs, cancellations — are never retried: re-executing reproduces them
// exactly. Environmental classes are: corpus/trace I/O (a flaky disk, a
// corrupt on-disk entry the corpus regenerates on the next attempt),
// wall-clock deadline overruns (machine load), and panics on their first
// occurrence only.
func transient(err error, attempt int) bool {
	if sim.IsCancel(err) {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return attempt == 1 // retry a panic once, never chase a crash loop
	}
	var specErr *SpecError
	var cfgErr *sim.ConfigError
	var decErr *trace.DecodeError
	var vioErr *check.ViolationError
	var stallErr *sim.StallError
	if errors.As(err, &specErr) || errors.As(err, &cfgErr) || errors.As(err, &decErr) ||
		errors.As(err, &vioErr) || errors.As(err, &stallErr) {
		return false
	}
	var dlErr *sim.DeadlineError
	if errors.As(err, &dlErr) {
		return true
	}
	// Corpus and trace-file I/O: path errors, syscall errors, short reads,
	// and structural damage in an on-disk container (which Corpus.Ensure
	// regenerates on the next attempt).
	var pathErr *os.PathError
	var sysErr *os.SyscallError
	var fmtErr *tracestore.FormatError
	return errors.As(err, &pathErr) || errors.As(err, &sysErr) || errors.As(err, &fmtErr) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe)
}

// Scale sizes the experiments. The paper simulates 50M warmup + 200M
// instructions per trace; these scales preserve the methodology at
// laptop-friendly sizes.
type Scale struct {
	Name        string
	MemRecords  int
	WarmupInstr uint64
	SimInstr    uint64
	Mixes       int // multi-core mixes evaluated
}

// Scales available via BERTI_SCALE (quick, default, full).
var (
	ScaleQuick   = Scale{Name: "quick", MemRecords: 120_000, WarmupInstr: 100_000, SimInstr: 250_000, Mixes: 4}
	ScaleDefault = Scale{Name: "default", MemRecords: 300_000, WarmupInstr: 200_000, SimInstr: 600_000, Mixes: 8}
	ScaleFull    = Scale{Name: "full", MemRecords: 1_000_000, WarmupInstr: 600_000, SimInstr: 2_000_000, Mixes: 20}
)

// ScaleFromEnv picks the scale from $BERTI_SCALE (default: ScaleDefault).
func ScaleFromEnv() Scale {
	switch os.Getenv("BERTI_SCALE") {
	case "quick":
		return ScaleQuick
	case "full":
		return ScaleFull
	default:
		return ScaleDefault
	}
}

// RunSpec names one simulation: a workload (or multi-core mix), an L1D and
// L2 prefetcher from the registry, and optional overrides.
type RunSpec struct {
	// Workload is a registry name (single core). For multi-core runs use
	// Mix instead.
	Workload string
	// Mix lists one workload per core (multi-core heterogeneous mix).
	Mix []string
	// L1DPf / L2Pf are prefetch registry names; "" disables the level.
	L1DPf string
	L2Pf  string
	// DRAMCfg overrides the channel ("" = DDR5-6400; "ddr4-3200",
	// "ddr3-1600").
	DRAMCfg string
	// BertiOverride replaces the registry Berti config at L1D (the
	// sensitivity studies). Only used when L1DPf == "berti".
	BertiOverride *core.Config
	// Seed perturbs trace generation (mixes use distinct seeds).
	Seed int64
}

// Key builds the memoization key. It is also the journal key the campaign
// layer persists completed results under, so it must be stable across
// process restarts (it is: a pure function of the spec's fields).
func (s RunSpec) Key() string { return s.key() }

// key builds the memoization key.
func (s RunSpec) key() string {
	k := fmt.Sprintf("w=%s|mix=%v|l1=%s|l2=%s|dram=%s|seed=%d", s.Workload, s.Mix, s.L1DPf, s.L2Pf, s.DRAMCfg, s.Seed)
	if s.BertiOverride != nil {
		k += fmt.Sprintf("|berti=%+v", *s.BertiOverride)
	}
	return k
}

// Harness memoizes traces and simulation results across experiments.
type Harness struct {
	Scale Scale
	// Workers bounds concurrent simulations (defaults to NumCPU).
	Workers int
	// RunTimeout bounds each run's wall-clock time (DefaultRunTimeout if
	// 0; negative disables the bound).
	RunTimeout time.Duration
	// EnableChecks attaches a fresh invariant checker to every run;
	// violations fail the run (the CI quick suite runs with this on).
	EnableChecks bool
	// Scheduler selects the engine's main-loop strategy for every run
	// (sim.SchedHorizon by default). Deliberately absent from the memo key:
	// both schedulers are guaranteed byte-identical results, and the
	// scheduler-differential suite enforces that guarantee.
	Scheduler sim.Scheduler
	// CorpusDir, when set, turns on the on-disk trace corpus: generated
	// workload traces are written once as v2 containers (content-addressed
	// by workload/records/seed) and every simulation streams records from
	// disk through the tracestore decode pipeline instead of holding the
	// whole trace in RAM. Runs that must see the full trace up front
	// (oracle prefetchers, trace-level fault plans) fall back to the
	// in-memory path.
	CorpusDir string
	// Retry bounds re-execution of transiently-failing runs (zero value =
	// defaults: 2 attempts, 50ms exponential backoff capped at 2s).
	Retry RetryPolicy
	// MaxFailures caps the failures recorded verbatim (DefaultMaxFailures
	// if 0, unbounded if negative); further failures only bump the
	// suppressed counter so a pathological campaign cannot grow the slice
	// without bound. Mirrors check.Checker.MaxRecorded.
	MaxFailures int
	// OnResult, when set, is invoked (outside the harness lock, possibly
	// from concurrent workers) for every freshly-completed memoized run —
	// the campaign journal's subscription point. Memo hits and seeded
	// results do not fire it.
	OnResult func(key string, spec RunSpec, r *sim.Result)
	// EnableProvenance attaches a fresh per-prefetch lifecycle tracker to
	// every run; the run's Result carries the attribution report
	// (Result.Provenance). Deliberately absent from the memo key, like
	// EnableChecks: the tracker is a pure observer and the
	// provenance-differential suite enforces that statistics are
	// byte-identical with it off.
	EnableProvenance bool
	// ProvenanceCap bounds each run's tracker record pool
	// (provenance.DefaultCapacity when 0). Overflowing the pool is not an
	// error — further prefetches go untracked and the report's overflow
	// counter says how many.
	ProvenanceCap int
	// Remote, when set, replaces local simulation with a call to a campaign
	// server (the cmd/experiments -server thin-client mode): the leader of
	// each memo key sends the spec and memoizes whatever comes back.
	// Memoization, single-flight dedup, and OnResult behave exactly as for
	// local execution, so journals and live metrics keep working in client
	// mode. The local retry policy is not applied — the transport owns its
	// own polling and retries.
	Remote func(ctx context.Context, spec RunSpec) (*sim.Result, error)

	mu         sync.Mutex
	traces     map[string]*trace.Slice
	results    map[string]*sim.Result
	errs       map[string]error
	inflight   map[string]chan struct{}
	failures   []*RunError
	suppressed int
	sem        chan struct{}
	semOnce    sync.Once
	ctx        context.Context

	corpus     *tracestore.Corpus
	corpusErr  error
	corpusOnce sync.Once
}

// New builds a harness at the given scale.
func New(scale Scale) *Harness {
	return &Harness{
		Scale:   scale,
		Workers: runtime.NumCPU(),
		traces:  map[string]*trace.Slice{},
		results: map[string]*sim.Result{},
		errs:    map[string]error{},
	}
}

// DefaultMaxFailures bounds the failures a harness records verbatim.
const DefaultMaxFailures = 64

// SetContext installs the base context every Run/RunSafe/RunMany call
// observes (campaign-wide cancellation without threading a ctx through
// every experiment's render function). A nil ctx restores
// context.Background(). Call before starting the campaign.
func (h *Harness) SetContext(ctx context.Context) {
	h.mu.Lock()
	h.ctx = ctx
	h.mu.Unlock()
}

// context returns the installed base context (Background when unset).
func (h *Harness) context() context.Context {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ctx == nil {
		return context.Background()
	}
	return h.ctx
}

// Failures returns every run failure recorded so far (up to MaxFailures),
// in completion order.
func (h *Harness) Failures() []*RunError {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*RunError(nil), h.failures...)
}

// SuppressedFailures counts the failures dropped after the MaxFailures cap
// filled — report them as "N more suppressed" next to Failures.
func (h *Harness) SuppressedFailures() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.suppressed
}

// ResetFailures clears the recorded failures and the suppressed counter so
// callers can scope failure reports per experiment (or per campaign stage)
// instead of slicing an ever-growing list by index. Memoized error results
// are untouched: a previously-failed spec still fails without re-running.
func (h *Harness) ResetFailures() {
	h.mu.Lock()
	h.failures = nil
	h.suppressed = 0
	h.mu.Unlock()
}

func (h *Harness) recordFailure(e *RunError) {
	h.mu.Lock()
	limit := h.MaxFailures
	if limit == 0 {
		limit = DefaultMaxFailures
	}
	if limit < 0 || len(h.failures) < limit {
		h.failures = append(h.failures, e)
	} else {
		h.suppressed++
	}
	h.mu.Unlock()
}

// Trace returns the (memoized) trace for a workload; unknown names yield a
// *SpecError.
func (h *Harness) Trace(name string, seed int64) (*trace.Slice, error) {
	key := fmt.Sprintf("%s|%d|%d", name, seed, h.Scale.MemRecords)
	h.mu.Lock()
	if t, ok := h.traces[key]; ok {
		h.mu.Unlock()
		return t, nil
	}
	h.mu.Unlock()
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, &SpecError{Field: "Workload", Name: name}
	}
	t := w.Gen(workloads.GenConfig{MemRecords: h.Scale.MemRecords, Seed: 42 + seed})
	h.mu.Lock()
	h.traces[key] = t
	h.mu.Unlock()
	return t, nil
}

// corpusCache lazily opens the on-disk corpus (CorpusDir must be set).
func (h *Harness) corpusCache() (*tracestore.Corpus, error) {
	h.corpusOnce.Do(func() {
		h.corpus, h.corpusErr = tracestore.NewCorpus(h.CorpusDir)
	})
	return h.corpus, h.corpusErr
}

// corpusFile returns the opened v2 container for a workload, generating and
// persisting it on first use. The generation parameters match Trace exactly
// so streamed and in-memory runs see identical record sequences.
func (h *Harness) corpusFile(name string, seed int64) (*tracestore.File, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, &SpecError{Field: "Workload", Name: name}
	}
	c, err := h.corpusCache()
	if err != nil {
		return nil, err
	}
	cfg := workloads.GenConfig{MemRecords: h.Scale.MemRecords, Seed: 42 + seed}
	key := tracestore.Key{Workload: name, Records: cfg.MemRecords, Seed: cfg.Seed}
	return c.Ensure(key, func() *trace.Slice { return w.Gen(cfg) })
}

// streamWorkers bounds each per-core decode pipeline: the harness already
// runs many simulations concurrently, so individual readers stay narrow.
const streamWorkers = 2

// MustTrace is Trace for workload names known to be registered (tests,
// benchmarks); it panics on lookup failure.
func (h *Harness) MustTrace(name string, seed int64) *trace.Slice {
	t, err := h.Trace(name, seed)
	if err != nil {
		panic(err)
	}
	return t
}

func (h *Harness) factory(name string, override *core.Config) (sim.PrefetcherFactory, error) {
	if name == "" || name == "oracle" {
		return nil, nil // "oracle" is wired specially in Run (needs the trace)
	}
	if name == "berti" && override != nil {
		if err := override.Validate(); err != nil {
			return nil, &SpecError{Field: "BertiOverride", Name: name, Err: err}
		}
		cfg := *override
		return func() cache.Prefetcher { return core.New(cfg) }, nil
	}
	e, ok := prefetch.ByName(name)
	if !ok {
		return nil, &SpecError{Field: "Prefetcher", Name: name}
	}
	return func() cache.Prefetcher { return e.New() }, nil
}

// ValidateSpec resolves every registry name and override in spec without
// executing anything — the campaign server's admission check. A rejected
// spec yields the same typed *SpecError the run itself would fail with,
// but with the offending spec field named ("L1DPf" instead of the generic
// "Prefetcher"), so API clients get an addressable error.
func ValidateSpec(spec RunSpec) error {
	if spec.Workload == "" && len(spec.Mix) == 0 {
		return &SpecError{Field: "Workload", Name: ""}
	}
	names := spec.Mix
	if len(names) == 0 {
		names = []string{spec.Workload}
	}
	for _, w := range names {
		if _, ok := workloads.ByName(w); !ok {
			return &SpecError{Field: "Workload", Name: w}
		}
	}
	if err := validatePrefetcher("L1DPf", spec.L1DPf); err != nil {
		return err
	}
	if err := validatePrefetcher("L2Pf", spec.L2Pf); err != nil {
		return err
	}
	if spec.BertiOverride != nil && spec.L1DPf == "berti" {
		if err := spec.BertiOverride.Validate(); err != nil {
			return &SpecError{Field: "BertiOverride", Name: spec.L1DPf, Err: err}
		}
	}
	if _, err := dramConfig(spec.DRAMCfg); err != nil {
		return err
	}
	return nil
}

// validatePrefetcher mirrors factory's name resolution ("" disables the
// level; "oracle" is wired specially) with the spec field in the error.
func validatePrefetcher(field, name string) error {
	if name == "" || name == "oracle" {
		return nil
	}
	if _, ok := prefetch.ByName(name); !ok {
		return &SpecError{Field: field, Name: name}
	}
	return nil
}

func dramConfig(name string) (dram.Config, error) {
	switch name {
	case "", "ddr5-6400":
		return dram.ConfigDDR5_6400(), nil
	case "ddr4-3200":
		return dram.ConfigDDR4_3200(), nil
	case "ddr3-1600":
		return dram.ConfigDDR3_1600(), nil
	default:
		return dram.Config{}, &SpecError{Field: "DRAMCfg", Name: name}
	}
}

func (h *Harness) acquire() func() {
	h.semOnce.Do(func() {
		n := h.Workers
		if n < 1 {
			n = 1
		}
		h.sem = make(chan struct{}, n)
	})
	h.sem <- struct{}{}
	return func() { <-h.sem }
}

// RunOptions configures a one-off (unmemoized) run: observability,
// invariant checking, and fault injection.
type RunOptions struct {
	// Observer attaches the PR 1 observability layer (sampler/tracer).
	Observer *obs.Observer
	// Checker attaches an invariant checker; violations become the run
	// error (*check.ViolationError) while the result is still returned.
	Checker *check.Checker
	// CheckInterval / MSHRStuckAfter tune the checker (0 = defaults).
	CheckInterval  uint64
	MSHRStuckAfter uint64
	// Watchdog overrides the engine's progress-free cycle window
	// (0 = sim.StallWatchdogCycles). Fault tests shrink it so deliberate
	// deadlocks fail fast.
	Watchdog uint64
	// Fault injects deterministic damage. Trace-level plans re-encode the
	// workload trace, mutate the bytes, and decode — a corrupt stream
	// surfaces as a *trace.DecodeError before simulation starts.
	Fault *fault.Plan
	// Provenance attaches a per-prefetch lifecycle tracker; the run's
	// Result carries its attribution report.
	Provenance *provenance.Tracker
}

// Run executes (or returns the memoized result of) one simulation under
// the harness's base context (see SetContext). Both outcomes are memoized:
// a failing spec returns the same error without re-running. The failure
// (with panic recovery and the retry policy already applied) is also
// recorded on the harness; see Failures.
func (h *Harness) Run(spec RunSpec) (*sim.Result, error) {
	return h.RunContext(h.context(), spec)
}

// RunContext is Run with explicit cooperative cancellation: once ctx is
// done the in-flight simulation stops at the engine's next poll stride and
// the call returns an error chain holding a *sim.CancelError. Cancelled
// runs are neither memoized nor recorded as failures — a resumed campaign
// re-executes them.
//
// Identical specs are single-flight: when a spec's key is already
// executing, further callers wait for that execution and share its
// memoized outcome instead of running a duplicate simulation, so a spec
// submitted concurrently by many clients executes exactly once and fires
// OnResult exactly once. A waiter whose leader was cancelled (nothing
// memoized) takes over as the new leader.
func (h *Harness) RunContext(ctx context.Context, spec RunSpec) (*sim.Result, error) {
	key := spec.key()
	for {
		h.mu.Lock()
		if r, ok := h.results[key]; ok {
			h.mu.Unlock()
			return r, nil
		}
		if err, ok := h.errs[key]; ok {
			h.mu.Unlock()
			return nil, err
		}
		wait, running := h.inflight[key]
		if !running {
			if h.inflight == nil {
				h.inflight = map[string]chan struct{}{}
			}
			done := make(chan struct{})
			h.inflight[key] = done
			h.mu.Unlock()
			return h.lead(ctx, spec, key, done)
		}
		h.mu.Unlock()
		select {
		case <-wait:
			// The leader finished (or was cancelled); loop to re-read the
			// memo — or take over the lead if nothing was recorded.
		case <-ctx.Done():
			return nil, &sim.CancelError{Cause: ctx.Err()}
		}
	}
}

// lead executes spec as the single in-flight owner of key: it runs the
// simulation (or the Remote call in client mode), memoizes the outcome,
// fires OnResult for a fresh success, and finally wakes every waiter.
func (h *Harness) lead(ctx context.Context, spec RunSpec, key string, done chan struct{}) (*sim.Result, error) {
	defer func() {
		h.mu.Lock()
		delete(h.inflight, key)
		h.mu.Unlock()
		close(done)
	}()
	release := h.acquire()
	defer release()

	var r *sim.Result
	var err error
	if h.Remote != nil {
		r, err = h.runRemote(ctx, spec)
	} else {
		opts := RunOptions{}
		if h.EnableChecks {
			opts.Checker = check.New()
		}
		if h.EnableProvenance {
			opts.Provenance = provenance.NewTracker(h.ProvenanceCap)
		}
		r, err = h.runProtected(ctx, spec, opts)
	}
	if err != nil {
		if !sim.IsCancel(err) {
			h.mu.Lock()
			h.errs[key] = err
			h.mu.Unlock()
		}
		return nil, err
	}

	h.mu.Lock()
	h.results[key] = r
	h.mu.Unlock()
	if h.OnResult != nil {
		h.OnResult(key, spec, r)
	}
	return r, nil
}

// runRemote delegates one run to the configured Remote transport. A
// cancelled context surfaces as the usual typed cancel (unmemoized); any
// other failure is recorded like a local run failure.
func (h *Harness) runRemote(ctx context.Context, spec RunSpec) (*sim.Result, error) {
	r, err := h.Remote(ctx, spec)
	if err == nil {
		return r, nil
	}
	if sim.IsCancel(err) {
		return nil, err
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, &sim.CancelError{Cause: ctx.Err()}
	}
	re := &RunError{Spec: spec, Attempts: 1, Err: err}
	h.recordFailure(re)
	return nil, re
}

// SeedResult pre-loads the memo cache with a completed result (the resume
// path: journal entries become memo hits, so a re-invoked campaign skips
// finished work). Seeded results do not fire OnResult — they are already
// journaled.
func (h *Harness) SeedResult(key string, r *sim.Result) {
	if r == nil {
		return
	}
	h.mu.Lock()
	h.results[key] = r
	h.mu.Unlock()
}

// ResultFor returns the memoized result for one run key — the campaign
// server's poll path, which must not copy the whole result map per request.
func (h *Harness) ResultFor(key string) (*sim.Result, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.results[key]
	return r, ok
}

// ErrFor returns the memoized failure for one run key, if any.
func (h *Harness) ErrFor(key string) (error, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	err, ok := h.errs[key]
	return err, ok
}

// Results returns a snapshot of every memoized completed run, keyed by
// RunSpec.Key (the campaign report's source of truth).
func (h *Harness) Results() map[string]*sim.Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]*sim.Result, len(h.results))
	for k, r := range h.results {
		out[k] = r
	}
	return out
}

// RunSafe is Run for result-rendering call sites: a failing run yields a
// zero-stats placeholder (never nil, never a panic) so sibling rows of an
// experiment table still render, and the failure stays queryable through
// Failures.
func (h *Harness) RunSafe(spec RunSpec) *sim.Result {
	r, err := h.Run(spec)
	if err != nil {
		return placeholderResult(spec)
	}
	return r
}

// placeholderResult stands in for a failed run: correct core count, zero
// statistics (ratios over it degrade to 0, not to a nil dereference).
func placeholderResult(spec RunSpec) *sim.Result {
	n := 1
	if len(spec.Mix) > 0 {
		n = len(spec.Mix)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = n
	return &sim.Result{Config: cfg, Cores: make([]sim.CoreResult, n)}
}

// runProtected executes one run with panic recovery, the wall-clock
// deadline, and the retry policy applied to transient failure classes
// (bounded attempts, exponential backoff with deterministic jitter). Every
// final failure is recorded on the harness; cancellations are returned
// unrecorded so the campaign layer can re-run them after a resume.
func (h *Harness) runProtected(ctx context.Context, spec RunSpec, opts RunOptions) (*sim.Result, error) {
	attempts := 0
	for {
		attempts++
		res, err := h.runOnce(ctx, spec, opts)
		if err == nil {
			return res, nil
		}
		if sim.IsCancel(err) {
			// Not a failure: the campaign is shutting down. Never retried,
			// never recorded, and RunContext skips memoization.
			return res, err
		}
		if attempts < h.Retry.maxAttempts() && transient(err, attempts) {
			if !h.Retry.backoff(ctx, spec.key(), attempts) {
				return nil, &sim.CancelError{Cause: ctx.Err()}
			}
			continue
		}
		re := &RunError{Spec: spec, Attempts: attempts, Err: err}
		h.recordFailure(re)
		// Checked runs keep their partial result next to the violation
		// error so callers can inspect what the damaged run produced.
		return res, re
	}
}

// protect runs f, converting a panic into a *PanicError with the goroutine
// stack attached.
func protect(f func() (*sim.Result, error)) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 16*1024)
			stack = stack[:runtime.Stack(stack, false)]
			res, err = nil, &PanicError{Value: r, Stack: stack}
		}
	}()
	return f()
}

// runOnce performs a single protected execution.
func (h *Harness) runOnce(ctx context.Context, spec RunSpec, opts RunOptions) (*sim.Result, error) {
	return protect(func() (*sim.Result, error) { return h.run(ctx, spec, opts) })
}

// run builds and executes the machine for one spec (unprotected).
func (h *Harness) run(ctx context.Context, spec RunSpec, opts RunOptions) (*sim.Result, error) {
	if ctx != nil && ctx.Err() != nil {
		// Already cancelled: skip the (potentially expensive) trace
		// generation and machine build entirely. Memo hits were served
		// before we got here, so a draining pool still returns finished
		// work but starts nothing new.
		return nil, &sim.CancelError{Cause: ctx.Err()}
	}
	m, cleanup, err := h.newMachine(spec, opts.Fault)
	if err != nil {
		return nil, err
	}
	if cleanup != nil {
		defer cleanup()
	}
	m.SetScheduler(h.Scheduler)
	if ctx != nil && ctx != context.Background() {
		m.SetContext(ctx)
	}
	if opts.Observer != nil {
		m.SetObserver(opts.Observer)
	}
	if opts.Checker != nil {
		m.SetChecker(opts.Checker, opts.CheckInterval, opts.MSHRStuckAfter)
	}
	if opts.Provenance != nil {
		m.SetProvenance(opts.Provenance)
	}
	if opts.Fault != nil && !opts.Fault.TraceFault() {
		m.SetFaultPlan(opts.Fault)
	}
	if opts.Watchdog > 0 {
		m.SetStallWatchdog(opts.Watchdog)
	}
	timeout := h.RunTimeout
	if timeout == 0 {
		timeout = DefaultRunTimeout
	}
	if timeout > 0 {
		m.SetDeadline(timeout)
	}
	return m.Run()
}

// RunObserved executes one simulation with the observability layer
// attached (interval sampler, event tracer). Observed runs bypass the memo
// cache in both directions: a time series or event trace belongs to a
// single execution, and the result must reflect the run that produced it.
func (h *Harness) RunObserved(spec RunSpec, o *obs.Observer) (*sim.Result, error) {
	return h.RunWith(spec, RunOptions{Observer: o})
}

// RunWith executes one unmemoized simulation with the given options
// (observability, invariant checking, fault injection). Failures get the
// same protection as Run: panic recovery, deadline, the retry policy.
func (h *Harness) RunWith(spec RunSpec, opts RunOptions) (*sim.Result, error) {
	return h.RunWithContext(h.context(), spec, opts)
}

// RunWithContext is RunWith with explicit cooperative cancellation.
func (h *Harness) RunWithContext(ctx context.Context, spec RunSpec, opts RunOptions) (*sim.Result, error) {
	release := h.acquire()
	defer release()
	return h.runProtected(ctx, spec, opts)
}

// newMachine builds the fully-wired machine for one spec (traces are still
// memoized; the machine itself is fresh). With CorpusDir set, each core
// streams its trace from the on-disk v2 container through a bounded decode
// pipeline; the returned cleanup releases the streaming readers and file
// handles after the run. Oracle prefetchers (which read the trace's
// future) and trace-level fault plans (which damage a private encoded copy,
// surfacing decode failures as *trace.DecodeError) keep the in-memory path.
func (h *Harness) newMachine(spec RunSpec, fp *fault.Plan) (*sim.Machine, func(), error) {
	cfg := sim.DefaultConfig()
	var err error
	cfg.DRAM, err = dramConfig(spec.DRAMCfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.WarmupInstructions = h.Scale.WarmupInstr
	cfg.SimInstructions = h.Scale.SimInstr

	stream := h.CorpusDir != "" && spec.L1DPf != "oracle" && (fp == nil || !fp.TraceFault())
	var closers []func()
	cleanup := func() {
		for _, c := range closers {
			c()
		}
	}
	fail := func(err error) (*sim.Machine, func(), error) {
		cleanup()
		return nil, nil, err
	}

	workloadTrace := func(w string, seed int64) (*trace.Slice, error) {
		tr, err := h.Trace(w, seed)
		if err != nil {
			return nil, err
		}
		if fp != nil && fp.TraceFault() {
			return damageTrace(tr, fp)
		}
		return tr, nil
	}
	var traces []*trace.Slice
	makeReader := func(w string, seed int64) (trace.Reader, error) {
		if stream {
			f, err := h.corpusFile(w, seed)
			if err != nil {
				return nil, err
			}
			rd := f.NewReader(tracestore.ReaderOptions{Loop: true, Workers: streamWorkers})
			closers = append(closers, func() { rd.Close(); f.Close() })
			return rd, nil
		}
		tr, err := workloadTrace(w, seed)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
		return trace.NewLoopReader(tr), nil
	}

	var readers []trace.Reader
	if len(spec.Mix) > 0 {
		cfg.Cores = len(spec.Mix)
		for i, w := range spec.Mix {
			rd, err := makeReader(w, spec.Seed+int64(i))
			if err != nil {
				return fail(err)
			}
			readers = append(readers, rd)
		}
	} else {
		cfg.Cores = 1
		rd, err := makeReader(spec.Workload, spec.Seed)
		if err != nil {
			return fail(err)
		}
		readers = append(readers, rd)
	}
	l1Factory, err := h.factory(spec.L1DPf, spec.BertiOverride)
	if err != nil {
		return fail(err)
	}
	if spec.L1DPf == "oracle" {
		// The ideal L1D prefetcher reads the trace's future; each core
		// gets an oracle over its own trace.
		next := 0
		l1Factory = func() cache.Prefetcher {
			tr := traces[next%len(traces)]
			next++
			return oracle.New(tr, 24)
		}
	}
	l2Factory, err := h.factory(spec.L2Pf, nil)
	if err != nil {
		return fail(err)
	}
	m, err := sim.New(cfg, readers, l1Factory, l2Factory)
	if err != nil {
		return fail(err)
	}
	return m, cleanup, nil
}

// damageTrace round-trips tr through the binary codec with the fault plan
// applied to the encoded bytes. The decode error (if the damage lands in
// structure rather than payload) is returned for the harness to surface.
func damageTrace(tr *trace.Slice, fp *fault.Plan) (*trace.Slice, error) {
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		return nil, err
	}
	mutated := fp.MutateTrace(buf.Bytes(), trace.MagicLen)
	return trace.Decode(bytes.NewReader(mutated))
}

// RunMany executes specs on a bounded worker pool (h.Workers goroutines,
// not one per spec) and returns results in spec order regardless of
// completion order. Each worker goes through the panic-safe Run path, so
// one crashing simulation cannot take down its siblings: a failing run
// leaves a nil slot and contributes to the returned *RunFailures while the
// other runs' results are still returned (the partial results the
// robustness layer exists to preserve).
func (h *Harness) RunMany(specs []RunSpec) ([]*sim.Result, error) {
	return h.RunManyContext(h.context(), specs)
}

// RunManyContext is RunMany with cooperative cancellation. When ctx fires,
// in-flight simulations stop at the engine's next poll stride, not-yet-
// started specs are skipped without executing a cycle, and the pool drains
// cleanly (every worker exits; no goroutine outlives the call). Results
// completed before the cancellation keep their slots; cancelled slots are
// nil and reported under RunFailures.Cancelled with the typed
// *sim.CancelError.
func (h *Harness) RunManyContext(ctx context.Context, specs []RunSpec) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(specs))
	errs := make([]error, len(specs))
	workers := h.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = h.RunContext(ctx, specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var fails *RunFailures
	for i, err := range errs {
		if err == nil {
			continue
		}
		if fails == nil {
			fails = &RunFailures{}
		}
		var re *RunError
		if !errors.As(err, &re) {
			re = &RunError{Spec: specs[i], Attempts: 1, Err: err}
		}
		if sim.IsCancel(err) {
			fails.Cancelled = append(fails.Cancelled, re)
		} else {
			fails.Failed = append(fails.Failed, re)
		}
	}
	if fails != nil {
		fails.Completed = len(specs) - len(fails.Failed) - len(fails.Cancelled)
		return out, fails
	}
	return out, nil
}

// RunManySafe is RunMany for rendering call sites: failed slots hold
// zero-stats placeholders instead of nil.
func (h *Harness) RunManySafe(specs []RunSpec) []*sim.Result {
	out, _ := h.RunMany(specs)
	for i, r := range out {
		if r == nil {
			out[i] = placeholderResult(specs[i])
		}
	}
	return out
}

// MemIntSuite returns the memory-intensive workloads of a suite ("spec",
// "gap") or of both when suite is "all".
func MemIntSuite(suite string) []string {
	var out []string
	for _, w := range workloads.All() {
		if !w.MemIntensive {
			continue
		}
		if suite == "all" && (w.Suite == "spec" || w.Suite == "gap") {
			out = append(out, w.Name)
		} else if w.Suite == suite {
			out = append(out, w.Name)
		}
	}
	return out
}

// CloudSuiteNames returns the CloudSuite-like workloads.
func CloudSuiteNames() []string {
	var out []string
	for _, w := range workloads.All() {
		if w.Suite == "cloud" {
			out = append(out, w.Name)
		}
	}
	return out
}

// SpeedupOver computes r's IPC over base's IPC (single core).
func SpeedupOver(r, base *sim.Result) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return r.IPC() / base.IPC()
}

// GeomeanSpeedup runs pf and the baseline over every workload and returns
// the geometric-mean speedup (the paper's headline metric: speedup over an
// L1D with IP-stride).
func (h *Harness) GeomeanSpeedup(names []string, spec func(w string) RunSpec, base func(w string) RunSpec) float64 {
	ratios := make([]float64, len(names))
	var wg sync.WaitGroup
	for i, w := range names {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			r := h.RunSafe(spec(w))
			b := h.RunSafe(base(w))
			ratios[i] = SpeedupOver(r, b)
		}(i, w)
	}
	wg.Wait()
	return metrics.Geomean(ratios)
}
