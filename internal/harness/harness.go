// Package harness runs the paper's experiments: it builds workload traces,
// wires prefetcher configurations into simulated machines, memoizes
// results, and renders the per-figure reports. Both cmd/experiments and the
// repository benchmarks drive this package.
package harness

import (
	"fmt"
	"os"
	"runtime"
	"sync"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/dram"
	"github.com/bertisim/berti/internal/metrics"
	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/prefetch/oracle"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"

	// Populate the registries.
	_ "github.com/bertisim/berti/internal/prefetch/all"
	_ "github.com/bertisim/berti/internal/workloads/cloudlike"
	_ "github.com/bertisim/berti/internal/workloads/gap"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

// Scale sizes the experiments. The paper simulates 50M warmup + 200M
// instructions per trace; these scales preserve the methodology at
// laptop-friendly sizes.
type Scale struct {
	Name        string
	MemRecords  int
	WarmupInstr uint64
	SimInstr    uint64
	Mixes       int // multi-core mixes evaluated
}

// Scales available via BERTI_SCALE (quick, default, full).
var (
	ScaleQuick   = Scale{Name: "quick", MemRecords: 120_000, WarmupInstr: 100_000, SimInstr: 250_000, Mixes: 4}
	ScaleDefault = Scale{Name: "default", MemRecords: 300_000, WarmupInstr: 200_000, SimInstr: 600_000, Mixes: 8}
	ScaleFull    = Scale{Name: "full", MemRecords: 1_000_000, WarmupInstr: 600_000, SimInstr: 2_000_000, Mixes: 20}
)

// ScaleFromEnv picks the scale from $BERTI_SCALE (default: ScaleDefault).
func ScaleFromEnv() Scale {
	switch os.Getenv("BERTI_SCALE") {
	case "quick":
		return ScaleQuick
	case "full":
		return ScaleFull
	default:
		return ScaleDefault
	}
}

// RunSpec names one simulation: a workload (or multi-core mix), an L1D and
// L2 prefetcher from the registry, and optional overrides.
type RunSpec struct {
	// Workload is a registry name (single core). For multi-core runs use
	// Mix instead.
	Workload string
	// Mix lists one workload per core (multi-core heterogeneous mix).
	Mix []string
	// L1DPf / L2Pf are prefetch registry names; "" disables the level.
	L1DPf string
	L2Pf  string
	// DRAMCfg overrides the channel ("" = DDR5-6400; "ddr4-3200",
	// "ddr3-1600").
	DRAMCfg string
	// BertiOverride replaces the registry Berti config at L1D (the
	// sensitivity studies). Only used when L1DPf == "berti".
	BertiOverride *core.Config
	// Seed perturbs trace generation (mixes use distinct seeds).
	Seed int64
}

// key builds the memoization key.
func (s RunSpec) key() string {
	k := fmt.Sprintf("w=%s|mix=%v|l1=%s|l2=%s|dram=%s|seed=%d", s.Workload, s.Mix, s.L1DPf, s.L2Pf, s.DRAMCfg, s.Seed)
	if s.BertiOverride != nil {
		k += fmt.Sprintf("|berti=%+v", *s.BertiOverride)
	}
	return k
}

// Harness memoizes traces and simulation results across experiments.
type Harness struct {
	Scale Scale
	// Workers bounds concurrent simulations (defaults to NumCPU).
	Workers int

	mu      sync.Mutex
	traces  map[string]*trace.Slice
	results map[string]*sim.Result
	sem     chan struct{}
	semOnce sync.Once
}

// New builds a harness at the given scale.
func New(scale Scale) *Harness {
	return &Harness{
		Scale:   scale,
		Workers: runtime.NumCPU(),
		traces:  map[string]*trace.Slice{},
		results: map[string]*sim.Result{},
	}
}

// Trace returns the (memoized) trace for a workload.
func (h *Harness) Trace(name string, seed int64) *trace.Slice {
	key := fmt.Sprintf("%s|%d|%d", name, seed, h.Scale.MemRecords)
	h.mu.Lock()
	if t, ok := h.traces[key]; ok {
		h.mu.Unlock()
		return t
	}
	h.mu.Unlock()
	w, ok := workloads.ByName(name)
	if !ok {
		panic(fmt.Sprintf("harness: unknown workload %q", name))
	}
	t := w.Gen(workloads.GenConfig{MemRecords: h.Scale.MemRecords, Seed: 42 + seed})
	h.mu.Lock()
	h.traces[key] = t
	h.mu.Unlock()
	return t
}

func (h *Harness) factory(name string, override *core.Config) sim.PrefetcherFactory {
	if name == "" || name == "oracle" {
		return nil // "oracle" is wired specially in Run (needs the trace)
	}
	if name == "berti" && override != nil {
		cfg := *override
		return func() cache.Prefetcher { return core.New(cfg) }
	}
	e, ok := prefetch.ByName(name)
	if !ok {
		panic(fmt.Sprintf("harness: unknown prefetcher %q", name))
	}
	return func() cache.Prefetcher { return e.New() }
}

func dramConfig(name string) dram.Config {
	switch name {
	case "", "ddr5-6400":
		return dram.ConfigDDR5_6400()
	case "ddr4-3200":
		return dram.ConfigDDR4_3200()
	case "ddr3-1600":
		return dram.ConfigDDR3_1600()
	default:
		panic(fmt.Sprintf("harness: unknown DRAM config %q", name))
	}
}

func (h *Harness) acquire() func() {
	h.semOnce.Do(func() {
		n := h.Workers
		if n < 1 {
			n = 1
		}
		h.sem = make(chan struct{}, n)
	})
	h.sem <- struct{}{}
	return func() { <-h.sem }
}

// Run executes (or returns the memoized result of) one simulation.
func (h *Harness) Run(spec RunSpec) *sim.Result {
	key := spec.key()
	h.mu.Lock()
	if r, ok := h.results[key]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()

	release := h.acquire()
	defer release()
	// Re-check after acquiring (another worker may have finished it).
	h.mu.Lock()
	if r, ok := h.results[key]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()

	r := h.newMachine(spec).Run()

	h.mu.Lock()
	h.results[key] = r
	h.mu.Unlock()
	return r
}

// RunObserved executes one simulation with the observability layer
// attached (interval sampler, event tracer). Observed runs bypass the memo
// cache in both directions: a time series or event trace belongs to a
// single execution, and the result must reflect the run that produced it.
func (h *Harness) RunObserved(spec RunSpec, o *obs.Observer) *sim.Result {
	release := h.acquire()
	defer release()
	m := h.newMachine(spec)
	m.SetObserver(o)
	return m.Run()
}

// newMachine builds the fully-wired machine for one spec (traces are still
// memoized; the machine itself is fresh).
func (h *Harness) newMachine(spec RunSpec) *sim.Machine {
	cfg := sim.DefaultConfig()
	cfg.DRAM = dramConfig(spec.DRAMCfg)
	cfg.WarmupInstructions = h.Scale.WarmupInstr
	cfg.SimInstructions = h.Scale.SimInstr

	var readers []trace.Reader
	var traces []*trace.Slice
	if len(spec.Mix) > 0 {
		cfg.Cores = len(spec.Mix)
		for i, w := range spec.Mix {
			tr := h.Trace(w, spec.Seed+int64(i))
			traces = append(traces, tr)
			readers = append(readers, trace.NewLoopReader(tr))
		}
	} else {
		cfg.Cores = 1
		tr := h.Trace(spec.Workload, spec.Seed)
		traces = append(traces, tr)
		readers = append(readers, trace.NewLoopReader(tr))
	}
	l1Factory := h.factory(spec.L1DPf, spec.BertiOverride)
	if spec.L1DPf == "oracle" {
		// The ideal L1D prefetcher reads the trace's future; each core
		// gets an oracle over its own trace.
		next := 0
		l1Factory = func() cache.Prefetcher {
			tr := traces[next%len(traces)]
			next++
			return oracle.New(tr, 24)
		}
	}
	return sim.New(cfg, readers, l1Factory, h.factory(spec.L2Pf, nil))
}

// RunMany executes specs concurrently and returns results in order.
func (h *Harness) RunMany(specs []RunSpec) []*sim.Result {
	out := make([]*sim.Result, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = h.Run(specs[i])
		}(i)
	}
	wg.Wait()
	return out
}

// MemIntSuite returns the memory-intensive workloads of a suite ("spec",
// "gap") or of both when suite is "all".
func MemIntSuite(suite string) []string {
	var out []string
	for _, w := range workloads.All() {
		if !w.MemIntensive {
			continue
		}
		if suite == "all" && (w.Suite == "spec" || w.Suite == "gap") {
			out = append(out, w.Name)
		} else if w.Suite == suite {
			out = append(out, w.Name)
		}
	}
	return out
}

// CloudSuiteNames returns the CloudSuite-like workloads.
func CloudSuiteNames() []string {
	var out []string
	for _, w := range workloads.All() {
		if w.Suite == "cloud" {
			out = append(out, w.Name)
		}
	}
	return out
}

// SpeedupOver computes r's IPC over base's IPC (single core).
func SpeedupOver(r, base *sim.Result) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return r.IPC() / base.IPC()
}

// GeomeanSpeedup runs pf and the baseline over every workload and returns
// the geometric-mean speedup (the paper's headline metric: speedup over an
// L1D with IP-stride).
func (h *Harness) GeomeanSpeedup(names []string, spec func(w string) RunSpec, base func(w string) RunSpec) float64 {
	ratios := make([]float64, len(names))
	var wg sync.WaitGroup
	for i, w := range names {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			r := h.Run(spec(w))
			b := h.Run(base(w))
			ratios[i] = SpeedupOver(r, b)
		}(i, w)
	}
	wg.Wait()
	return metrics.Geomean(ratios)
}
