package harness

import (
	"fmt"
	"io"

	"github.com/bertisim/berti/internal/energy"
	"github.com/bertisim/berti/internal/metrics"
)

func init() {
	registerExperiment(Experiment{
		ID: "Fig12MultiLevel", Paper: "Figure 12",
		Desc: "multi-level (L1D+L2) prefetching speedups vs Berti alone",
		Run:  runFig12,
	})
	registerExperiment(Experiment{
		ID: "Fig13MultiLevelMPKI", Paper: "Figure 13",
		Desc: "L2/LLC demand MPKI with multi-level prefetching",
		Run:  runFig13,
	})
	registerExperiment(Experiment{
		ID: "Fig14Traffic", Paper: "Figure 14",
		Desc: "inter-level traffic normalized to no prefetching",
		Run:  runFig14,
	})
	registerExperiment(Experiment{
		ID: "Fig15Energy", Paper: "Figure 15",
		Desc: "dynamic energy normalized to no prefetching, incl. multi-level",
		Run:  runFig15,
	})
	registerExperiment(Experiment{
		ID: "Fig16BandwidthL1D", Paper: "Figure 16",
		Desc: "L1D prefetcher speedups under constrained DRAM bandwidth",
		Run:  runFig16,
	})
	registerExperiment(Experiment{
		ID: "Fig17BandwidthML", Paper: "Figure 17",
		Desc: "multi-level prefetching under constrained DRAM bandwidth",
		Run:  runFig17,
	})
	registerExperiment(Experiment{
		ID: "Fig18CloudSuite", Paper: "Figure 18",
		Desc: "CloudSuite-like speedups for L1D and multi-level prefetching",
		Run:  runFig18,
	})
	registerExperiment(Experiment{
		ID: "Fig19MISB", Paper: "Figure 19",
		Desc: "adding the MISB temporal prefetcher at L2",
		Run:  runFig19,
	})
	registerExperiment(Experiment{
		ID: "Fig20MultiCore", Paper: "Figure 20",
		Desc: "4-core heterogeneous mixes, speedup over IP-stride",
		Run:  runFig20,
	})
}

func runFig12(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 12: multi-level prefetching speedup over IP-stride",
		"config", "SPEC", "GAP", "ALL")
	t.AddRow("Berti (L1D only)",
		h.suiteSpeedup(MemIntSuite("spec"), "berti", ""),
		h.suiteSpeedup(MemIntSuite("gap"), "berti", ""),
		h.suiteSpeedup(MemIntSuite("all"), "berti", ""))
	for _, c := range MultiLevelCombos {
		label := c.L1 + "+" + c.L2
		t.AddRow(label,
			h.suiteSpeedup(MemIntSuite("spec"), c.L1, c.L2),
			h.suiteSpeedup(MemIntSuite("gap"), c.L1, c.L2),
			h.suiteSpeedup(MemIntSuite("all"), c.L1, c.L2))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti alone >= every combo without Berti; adding an L2")
	fmt.Fprintln(w, "prefetcher on top of Berti gains little")
}

func runFig13(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 13: demand MPKI with multi-level prefetching",
		"config", "suite", "L2", "LLC")
	cfgs := [][2]string{{"mlop", ""}, {"berti", ""}}
	for _, c := range MultiLevelCombos {
		cfgs = append(cfgs, [2]string{c.L1, c.L2})
	}
	for _, c := range cfgs {
		label := c[0]
		if c[1] != "" {
			label += "+" + c[1]
		}
		for _, suite := range []string{"spec", "gap"} {
			names := MemIntSuite(suite)
			var l2, llc float64
			for _, r := range h.RunManySafe(specsFor(names, c[0], c[1])) {
				instr := r.Config.SimInstructions
				l2 += r.Cores[0].L2.MPKI(instr)
				llc += r.LLC.MPKI(instr)
			}
			n := float64(len(names))
			t.AddRow(label, suite, l2/n, llc/n)
		}
	}
	fmt.Fprintln(w, t)
}

// trafficRatios returns (L2, LLC, DRAM) traffic normalized to no-prefetch.
func (h *Harness) trafficRatios(names []string, l1, l2 string) (rl2, rllc, rdram float64) {
	var tl2, tllc, tdram, bl2, bllc, bdram float64
	results := h.RunManySafe(specsFor(names, l1, l2))
	bases := h.RunManySafe(specsFor(names, "", ""))
	for i := range results {
		ta := results[i].Traffic()
		tb := bases[i].Traffic()
		a2, allc, adram := ta.Total()
		b2, bllc2, bdram2 := tb.Total()
		tl2 += float64(a2)
		tllc += float64(allc)
		tdram += float64(adram)
		bl2 += float64(b2)
		bllc += float64(bllc2)
		bdram += float64(bdram2)
	}
	if bl2 > 0 {
		rl2 = tl2 / bl2
	}
	if bllc > 0 {
		rllc = tllc / bllc
	}
	if bdram > 0 {
		rdram = tdram / bdram
	}
	return
}

func runFig14(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 14: traffic normalized to no prefetching",
		"config", "suite", "L1D<->L2", "L2<->LLC", "LLC<->DRAM")
	cfgs := [][2]string{
		{"ip-stride", ""}, {"mlop", ""}, {"ipcp", ""}, {"berti", ""},
		{"mlop", "bingo"}, {"berti", "bingo"},
	}
	for _, c := range cfgs {
		label := c[0]
		if c[1] != "" {
			label += "+" + c[1]
		}
		for _, suite := range []string{"spec", "gap"} {
			a, b, d := h.trafficRatios(MemIntSuite(suite), c[0], c[1])
			t.AddRow(label, suite, a, b, d)
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: traffic increase inversely tracks accuracy; Berti lowest;")
	fmt.Fprintln(w, "L2 prefetchers (Bingo) add large off-chip traffic, especially on GAP")
}

func runFig15(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 15: dynamic energy normalized to no prefetching",
		"config", "SPEC", "GAP")
	cfgs := [][2]string{
		{"ip-stride", ""}, {"mlop", ""}, {"ipcp", ""}, {"berti", ""},
		{"mlop", "bingo"}, {"mlop", "spp-ppf"}, {"berti", "bingo"}, {"berti", "spp-ppf"},
	}
	for _, c := range cfgs {
		label := c[0]
		if c[1] != "" {
			label += "+" + c[1]
		}
		t.AddRow(label,
			h.energyRatio(MemIntSuite("spec"), c[0], c[1]),
			h.energyRatio(MemIntSuite("gap"), c[0], c[1]))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti consumes the least extra energy among L1D prefetchers;")
	fmt.Fprintln(w, "L2 prefetchers on top significantly increase energy")
	_ = energy.Default22nm() // model documented in internal/energy
}

func bandwidthRows(h *Harness, w io.Writer, title string, cfgs [][2]string) {
	t := metrics.NewTable(title, "config", "MTPS", "SPEC", "GAP")
	for _, c := range cfgs {
		label := c[0]
		if c[1] != "" {
			label += "+" + c[1]
		}
		for _, d := range []struct {
			name string
			mtps string
		}{{"", "6400"}, {"ddr4-3200", "3200"}, {"ddr3-1600", "1600"}} {
			spec := h.GeomeanSpeedup(MemIntSuite("spec"),
				func(wl string) RunSpec {
					return RunSpec{Workload: wl, L1DPf: c[0], L2Pf: c[1], DRAMCfg: d.name}
				},
				func(wl string) RunSpec {
					return RunSpec{Workload: wl, L1DPf: "ip-stride", DRAMCfg: d.name}
				})
			gap := h.GeomeanSpeedup(MemIntSuite("gap"),
				func(wl string) RunSpec {
					return RunSpec{Workload: wl, L1DPf: c[0], L2Pf: c[1], DRAMCfg: d.name}
				},
				func(wl string) RunSpec {
					return RunSpec{Workload: wl, L1DPf: "ip-stride", DRAMCfg: d.name}
				})
			t.AddRow(label, d.mtps, spec, gap)
		}
	}
	fmt.Fprintln(w, t)
}

func runFig16(h *Harness, w io.Writer) {
	bandwidthRows(h, w, "Figure 16: L1D prefetchers under constrained DRAM bandwidth",
		[][2]string{{"mlop", ""}, {"ipcp", ""}, {"berti", ""}})
	fmt.Fprintln(w, "shape target: GAP insensitive to bandwidth; SPEC loses a few percent at 1600 MTPS")
}

func runFig17(h *Harness, w io.Writer) {
	bandwidthRows(h, w, "Figure 17: multi-level prefetching under constrained DRAM bandwidth",
		[][2]string{{"berti", "spp-ppf"}, {"mlop", "bingo"}})
}

func runFig18(h *Harness, w io.Writer) {
	names := CloudSuiteNames()
	t := metrics.NewTable("Figure 18: CloudSuite-like speedup over IP-stride",
		"workload", "mlop", "ipcp", "berti", "berti+spp-ppf")
	for _, n := range names {
		base := h.RunSafe(baseSpec(n))
		row := []interface{}{n}
		for _, c := range [][2]string{{"mlop", ""}, {"ipcp", ""}, {"berti", ""}, {"berti", "spp-ppf"}} {
			r := h.RunSafe(RunSpec{Workload: n, L1DPf: c[0], L2Pf: c[1]})
			row = append(row, SpeedupOver(r, base))
		}
		t.AddRow(row...)
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: small gains everywhere (low data MPKI);")
	fmt.Fprintln(w, "classification_like favours the accurate prefetcher (Berti)")
}

func runFig19(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 19: MISB at L2 under each L1D prefetcher",
		"config", "CLOUD", "SPEC", "GAP")
	for _, l1 := range L1DPrefetchers {
		for _, l2 := range []string{"", "misb"} {
			label := l1
			if l2 != "" {
				label += "+misb"
			}
			cloud := h.GeomeanSpeedup(CloudSuiteNames(),
				func(wl string) RunSpec { return RunSpec{Workload: wl, L1DPf: l1, L2Pf: l2} },
				baseSpec)
			t.AddRow(label, cloud,
				h.suiteSpeedup(MemIntSuite("spec"), l1, l2),
				h.suiteSpeedup(MemIntSuite("gap"), l1, l2))
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: MISB helps the temporally-correlated cloud traces;")
	fmt.Fprintln(w, "it does not help SPEC/GAP")
}

// Mixes returns n deterministic heterogeneous 4-core mixes over the
// memory-intensive workloads.
func Mixes(n int) [][]string {
	names := MemIntSuite("all")
	var out [][]string
	state := uint64(0x9E3779B97F4A7C15)
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	for i := 0; i < n; i++ {
		mix := make([]string, 4)
		for c := range mix {
			mix[c] = names[next(len(names))]
		}
		out = append(out, mix)
	}
	return out
}

// mixSpeedup computes the geomean over cores of per-core IPC ratio vs the
// same mix under the baseline config.
func mixSpeedup(r, base []float64) float64 {
	ratios := make([]float64, len(r))
	for i := range r {
		if base[i] > 0 {
			ratios[i] = r[i] / base[i]
		}
	}
	return metrics.Geomean(ratios)
}

func runFig20(h *Harness, w io.Writer) {
	mixes := Mixes(h.Scale.Mixes)
	t := metrics.NewTable(
		fmt.Sprintf("Figure 20: 4-core mixes (%d), speedup over IP-stride", len(mixes)),
		"config", "geomean-speedup")
	cfgs := [][2]string{
		{"mlop", ""}, {"ipcp", ""}, {"berti", ""},
		{"mlop", "bingo"}, {"berti", "spp-ppf"},
	}
	for _, c := range cfgs {
		label := c[0]
		if c[1] != "" {
			label += "+" + c[1]
		}
		var sps []float64
		for mi, mix := range mixes {
			r := h.RunSafe(RunSpec{Mix: mix, L1DPf: c[0], L2Pf: c[1], Seed: int64(mi) * 16})
			b := h.RunSafe(RunSpec{Mix: mix, L1DPf: "ip-stride", Seed: int64(mi) * 16})
			var ripc, bipc []float64
			for ci := range r.Cores {
				ripc = append(ripc, r.Cores[ci].IPC)
				bipc = append(bipc, b.Cores[ci].IPC)
			}
			sps = append(sps, mixSpeedup(ripc, bipc))
		}
		t.AddRow(label, metrics.Geomean(sps))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti best, with a larger margin than single-core")
	fmt.Fprintln(w, "(bandwidth contention rewards accuracy)")
}
