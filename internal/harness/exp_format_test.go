package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentProducesItsTable runs each experiment at a micro scale
// and asserts the report contains its headline table — a wiring regression
// test covering every table and figure target.
func TestEveryExperimentProducesItsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment (micro scale)")
	}
	micro := Scale{Name: "micro", MemRecords: 8_000, WarmupInstr: 6_000, SimInstr: 15_000, Mixes: 1}
	h := New(micro)
	wantFragment := map[string]string{
		"Fig1Accuracy":            "Figure 1(a)",
		"Fig1Energy":              "normalized to no prefetching",
		"Fig3LocalVsGlobal":       "global best offset",
		"Tab1Storage":             "2.55",
		"Tab2Config":              "baseline system",
		"Tab3PrefConfig":          "evaluated prefetchers",
		"Fig7SpeedupVsStorage":    "storage",
		"Fig8L1DSpeedup":          "speedup over IP-stride",
		"Fig9PerTrace":            "per-workload",
		"Fig10AccuracyTimeliness": "timely",
		"Fig11MPKI":               "MPKI",
		"Fig12MultiLevel":         "multi-level",
		"Fig13MultiLevelMPKI":     "MPKI",
		"Fig14Traffic":            "traffic",
		"Fig15Energy":             "energy",
		"Fig16BandwidthL1D":       "MTPS",
		"Fig17BandwidthML":        "MTPS",
		"Fig18CloudSuite":         "CloudSuite",
		"Fig19MISB":               "MISB",
		"Fig20MultiCore":          "4-core",
		"Fig21Watermarks":         "watermark",
		"Fig22TableSizes":         "table size",
		"AblLatencyBits":          "latency counter",
		"AblCrossPage":            "cross-page",
		"AblIdealL1D":             "ideal",
		"AblCalibration":          "calibration",
		"AblPythia":               "Pythia",
		"AblPerIP":                "per-page",
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(h, &buf)
			out := buf.String()
			if out == "" {
				t.Fatal("no output")
			}
			frag, ok := wantFragment[e.ID]
			if !ok {
				t.Fatalf("experiment %s missing from the format map — add it", e.ID)
			}
			if !strings.Contains(strings.ToLower(out), strings.ToLower(frag)) {
				t.Fatalf("output of %s lacks %q:\n%s", e.ID, frag, out)
			}
		})
	}
}
