package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
)

// cancelSpecs builds a batch of distinct specs large enough that a
// cancellation fired after the first completion always catches stragglers.
func cancelSpecs() []RunSpec {
	names := MemIntSuite("spec")
	if len(names) > 4 {
		names = names[:4]
	}
	var specs []RunSpec
	for _, n := range names {
		for _, pf := range []string{"", "next-line"} {
			specs = append(specs, RunSpec{Workload: n, L1DPf: pf})
		}
	}
	return specs
}

// TestRunManyCancelMidPool cancels a RunMany batch after the first result
// completes: the pool must drain without leaking goroutines, completed
// slots keep their results, cancelled slots carry the typed *CancelError,
// and nothing cancelled is memoized or recorded as a failure.
func TestRunManyCancelMidPool(t *testing.T) {
	h := New(tinyScale)
	h.Workers = 2
	specs := cancelSpecs()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	h.OnResult = func(string, RunSpec, *sim.Result) { once.Do(cancel) }

	before := runtime.NumGoroutine()
	out, err := h.RunManyContext(ctx, specs)

	// The pool must drain: every worker goroutine exits once the call
	// returns (allow the runtime a moment to reap them).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("worker pool leaked goroutines: %d before, %d after drain", before, n)
	}

	var fails *RunFailures
	if !errors.As(err, &fails) {
		t.Fatalf("cancelled batch must return *RunFailures, got %v", err)
	}
	if len(fails.Cancelled) == 0 {
		t.Fatal("cancellation after the first completion must leave cancelled runs")
	}
	if len(fails.Failed) != 0 {
		t.Fatalf("cancelled runs must not be reported as failures: %v", fails.Failed)
	}
	if fails.Completed < 1 {
		t.Fatal("the run that triggered the cancel must count as completed")
	}

	completed := 0
	for _, r := range out {
		if r != nil {
			completed++
		}
	}
	if completed != fails.Completed {
		t.Fatalf("completed slots (%d) disagree with RunFailures.Completed (%d)", completed, fails.Completed)
	}
	for _, re := range fails.Cancelled {
		if !sim.IsCancel(re) {
			t.Fatalf("cancelled slot must unwrap to *sim.CancelError, got %v", re)
		}
		if !errors.Is(re, context.Canceled) {
			t.Fatalf("cancelled slot must carry context.Canceled, got %v", re)
		}
	}

	// Cancellations are not failures and are not memoized: the harness has
	// recorded nothing, and re-running a cancelled spec executes it.
	if got := h.Failures(); len(got) != 0 {
		t.Fatalf("cancelled runs must not be recorded as harness failures: %v", got)
	}
	h.OnResult = nil
	respec := fails.Cancelled[0].Spec
	r, err := h.Run(respec)
	if err != nil || r == nil {
		t.Fatalf("cancelled spec must be re-runnable after cancellation: %v", err)
	}
}

// TestRunContextPreCancelled: an already-cancelled context short-circuits
// before a single cycle (or trace generation) happens, with the typed
// error, and leaves no memoized or recorded state behind.
func TestRunContextPreCancelled(t *testing.T) {
	h := New(tinyScale)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := RunSpec{Workload: "roms_like", L1DPf: "next-line"}

	start := time.Now()
	r, err := h.RunContext(ctx, spec)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled run should return immediately, took %v", elapsed)
	}
	if r != nil {
		t.Fatal("cancelled run must not return a result")
	}
	var ce *sim.CancelError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want *sim.CancelError wrapping context.Canceled, got %v", err)
	}
	if len(h.Failures()) != 0 {
		t.Fatalf("cancellation must not be recorded as a failure: %v", h.Failures())
	}
	if len(h.Results()) != 0 {
		t.Fatal("cancellation must not be memoized")
	}

	// The same spec runs normally once the pressure is off.
	if _, err := h.Run(spec); err != nil {
		t.Fatalf("spec must run cleanly after a cancelled attempt: %v", err)
	}
}

// TestSetContextFlowsToRun: the harness base context set by the campaign
// driver governs plain Run/RunMany calls (the experiment code never sees a
// context, yet Ctrl-C still stops it).
func TestSetContextFlowsToRun(t *testing.T) {
	h := New(tinyScale)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.SetContext(ctx)
	if _, err := h.Run(RunSpec{Workload: "roms_like"}); !sim.IsCancel(err) {
		t.Fatalf("Run must observe the harness base context, got %v", err)
	}
	h.SetContext(context.Background())
	if _, err := h.Run(RunSpec{Workload: "roms_like"}); err != nil {
		t.Fatalf("restored context must run cleanly: %v", err)
	}
}

// TestMachineCancelMidRun drives the engine directly with a context that
// fires mid-simulation: the run must stop at a poll stride with the typed
// error carrying an engine snapshot.
func TestMachineCancelMidRun(t *testing.T) {
	h := New(tinyScale)
	tr := h.MustTrace("roms_like", 0)
	cfg := sim.DefaultConfig()
	cfg.WarmupInstructions = tinyScale.WarmupInstr
	cfg.SimInstructions = tinyScale.SimInstr

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := sim.New(cfg, []trace.Reader{trace.NewLoopReader(tr)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetContext(ctx)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err = m.Run()
	if err == nil {
		// The run legitimately beat the timer; nothing to assert.
		t.Skip("run completed before cancellation fired")
	}
	var ce *sim.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *sim.CancelError, got %v", err)
	}
	if ce.Snapshot.Cycle == 0 {
		t.Error("cancel snapshot should capture a mid-run engine state")
	}
}
