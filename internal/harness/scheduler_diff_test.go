package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/workloads"
)

// diffScale keeps the full scheduler matrix (workloads × prefetchers ×
// fault plans × two schedulers) tractable inside go test ./...; the
// guarantee is scale-independent, so the smallest scale that still exercises
// warmup, measurement, misses, and writebacks is the right one.
var diffScale = Scale{Name: "sched-diff", MemRecords: 20_000, WarmupInstr: 20_000, SimInstr: 50_000}

// resultJSON canonicalizes a run outcome for the byte-identity comparison:
// the full Result marshaled to JSON plus the rendered error (StallError
// snapshots, checker violations, and decode errors are all deterministic).
func resultJSON(t *testing.T, res *sim.Result, err error) []byte {
	t.Helper()
	b, merr := json.Marshal(res)
	if merr != nil {
		t.Fatalf("marshal result: %v", merr)
	}
	if err != nil {
		b = append(b, '\n')
		b = append(b, err.Error()...)
	}
	return b
}

// schedulerPair builds one harness per scheduler at the differential scale.
func schedulerPair() (ticked, horizon *Harness) {
	ticked = New(diffScale)
	ticked.Scheduler = sim.SchedTicked
	ticked.EnableChecks = true
	horizon = New(diffScale)
	horizon.Scheduler = sim.SchedHorizon
	horizon.EnableChecks = true
	return ticked, horizon
}

// TestSchedulerDifferentialWorkloads pins the tentpole guarantee across the
// whole workload registry: with the invariant checker attached, every seed
// workload must produce byte-identical JSON stats under the ticked and
// horizon schedulers.
func TestSchedulerDifferentialWorkloads(t *testing.T) {
	ticked, horizon := schedulerPair()
	all := workloads.All()
	if testing.Short() {
		all = all[:6]
	}
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			spec := RunSpec{Workload: w.Name}
			rt, et := ticked.Run(spec)
			rh, eh := horizon.Run(spec)
			a, b := resultJSON(t, rt, et), resultJSON(t, rh, eh)
			if !bytes.Equal(a, b) {
				t.Fatalf("schedulers diverged on %s:\nticked:  %s\nhorizon: %s", w.Name, a, b)
			}
		})
	}
}

// TestSchedulerDifferentialPrefetchers covers every registered prefetcher at
// its deployment level on a memory-intensive workload — prefetch queues,
// MSHR watermarks, and the promote path are where the cache horizon is
// easiest to get wrong.
func TestSchedulerDifferentialPrefetchers(t *testing.T) {
	ticked, horizon := schedulerPair()
	entries := prefetch.All()
	if testing.Short() {
		entries = entries[:3]
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			spec := RunSpec{Workload: "mcf_like_1554"}
			if e.Level == prefetch.AtL2 {
				spec.L2Pf = e.Name
			} else {
				spec.L1DPf = e.Name
			}
			rt, et := ticked.Run(spec)
			rh, eh := horizon.Run(spec)
			a, b := resultJSON(t, rt, et), resultJSON(t, rh, eh)
			if !bytes.Equal(a, b) {
				t.Fatalf("schedulers diverged with %s:\nticked:  %s\nhorizon: %s", e.Name, a, b)
			}
		})
	}
}

// TestSchedulerDifferentialFaults runs every fault kind under both
// schedulers and requires identical outcomes — including identical failures:
// a dropped fill must leak the same MSHR, trip the same mshr-stuck sweep at
// the same cycle, and stall at the same watchdog deadline in both modes.
func TestSchedulerDifferentialFaults(t *testing.T) {
	kinds := fault.Kinds()
	if testing.Short() {
		kinds = []fault.Kind{fault.DropFill, fault.DupLine}
	}
	for _, k := range kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			t.Parallel()
			plan := &fault.Plan{Kind: k, Seed: 7, Rate: 0.05, After: 2_000, Param: 0}
			run := func(s sim.Scheduler) []byte {
				h := New(diffScale)
				h.Scheduler = s
				res, err := h.RunWith(RunSpec{Workload: "mcf_like_1554", L1DPf: "berti"}, RunOptions{
					Checker:  check.New(),
					Watchdog: 300_000,
					Fault:    plan,
				})
				return resultJSON(t, res, err)
			}
			a, b := run(sim.SchedTicked), run(sim.SchedHorizon)
			if !bytes.Equal(a, b) {
				t.Fatalf("schedulers diverged under %s:\nticked:  %s\nhorizon: %s", k, a, b)
			}
		})
	}
}

// TestSchedulerDifferentialMix covers the multi-core path: several cores
// skip only when ALL of them are quiescent, and per-core credit must land on
// the right core's counters.
func TestSchedulerDifferentialMix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core differential is covered by the full run")
	}
	ticked, horizon := schedulerPair()
	spec := RunSpec{Mix: []string{"mcf_like_1554", "lbm_like", "bfs-road", "pr-kron"}, L1DPf: "berti"}
	rt, et := ticked.Run(spec)
	rh, eh := horizon.Run(spec)
	a, b := resultJSON(t, rt, et), resultJSON(t, rh, eh)
	if !bytes.Equal(a, b) {
		t.Fatalf("schedulers diverged on mix:\nticked:  %s\nhorizon: %s", a, b)
	}
}

// TestHarnessSchedulerPlumbing makes sure the field actually reaches the
// engine: an impossible scheduler value must not silently fall back.
func TestSchedulerParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want sim.Scheduler
		ok   bool
	}{
		{"", sim.SchedHorizon, true},
		{"horizon", sim.SchedHorizon, true},
		{"ticked", sim.SchedTicked, true},
		{"warp", 0, false},
	} {
		got, err := sim.ParseScheduler(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Fatalf("ParseScheduler(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for s, want := range map[sim.Scheduler]string{sim.SchedHorizon: "horizon", sim.SchedTicked: "ticked"} {
		if s.String() != want {
			t.Fatalf("Scheduler(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if fmt.Sprint(sim.Scheduler(9)) == "" {
		t.Fatal("unknown scheduler must still render")
	}
}
