package harness

import (
	"io"
	"sort"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper it reproduces
	Desc  string
	Run   func(h *Harness, w io.Writer)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// paperOrder lists experiment IDs in the paper's presentation order.
var paperOrder = []string{
	"Fig1Accuracy", "Fig1Energy", "Fig3LocalVsGlobal",
	"Tab1Storage", "Tab2Config", "Tab3PrefConfig",
	"Fig7SpeedupVsStorage", "Fig8L1DSpeedup", "Fig9PerTrace",
	"Fig10AccuracyTimeliness", "Fig11MPKI",
	"Fig12MultiLevel", "Fig13MultiLevelMPKI", "Fig14Traffic", "Fig15Energy",
	"Fig16BandwidthL1D", "Fig17BandwidthML", "Fig18CloudSuite", "Fig19MISB",
	"Fig20MultiCore", "Fig21Watermarks", "Fig22TableSizes",
	"AblLatencyBits", "AblCrossPage", "AblIdealL1D", "AblCalibration", "AblPythia", "AblPerIP",
}

// Experiments returns every experiment in the paper's presentation order.
func Experiments() []Experiment {
	rank := map[string]int{}
	for i, id := range paperOrder {
		rank[id] = i
	}
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	sort.Slice(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		if iok && jok {
			return ri < rj
		}
		if iok != jok {
			return iok
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// L1DPrefetchers are the L1D designs compared in Figures 8-11.
var L1DPrefetchers = []string{"mlop", "ipcp", "berti"}

// MultiLevelCombos are the Figure 12 combinations (L1D + L2).
var MultiLevelCombos = []struct{ L1, L2 string }{
	{"mlop", "bingo"},
	{"mlop", "spp-ppf"},
	{"ipcp", "ipcp-l2"},
	{"berti", "bingo"},
	{"berti", "spp-ppf"},
}

// SensitivitySubset is the workload subset used by the parameter sweeps
// (Figs. 21-22 and the §IV.J ablations) to bound runtime; it spans the
// archetypes: chains, streams, alternating strides, interleaved IPs, and a
// graph kernel.
func SensitivitySubset() []string {
	return []string{"mcf_like_1554", "lbm_like", "roms_like", "cactu_like", "fotonik_like", "bfs-kron", "pr-urand"}
}

// baseSpec is the paper's baseline: IP-stride at L1D, nothing at L2.
func baseSpec(w string) RunSpec { return RunSpec{Workload: w, L1DPf: "ip-stride"} }

// suiteSpeedup computes the geomean speedup of a config over the IP-stride
// baseline across a suite.
func (h *Harness) suiteSpeedup(names []string, l1, l2 string) float64 {
	return h.GeomeanSpeedup(names,
		func(w string) RunSpec { return RunSpec{Workload: w, L1DPf: l1, L2Pf: l2} },
		baseSpec)
}
