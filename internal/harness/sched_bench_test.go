package harness

import (
	"fmt"
	"testing"

	"github.com/bertisim/berti/internal/sim"
)

// benchScale is larger than diffScale: throughput measurement needs enough
// simulated work for the per-run setup (trace generation is memoized after
// the first iteration) to amortize away.
var benchScale = Scale{Name: "sched-bench", MemRecords: 120_000, WarmupInstr: 100_000, SimInstr: 250_000}

// BenchmarkScheduler measures engine throughput (kinstr/s of simulated
// instructions, warmup included) for both schedulers on a memory-bound and a
// compute-bound workload, with and without prefetching. The memory-bound ×
// no-prefetch cell is where quiescence skipping pays most: the ROB spends
// long stretches stalled on DRAM with every component idle. Prefetching and
// compute-bound traces shrink the idle windows, so those cells bound the
// scheduler's overhead instead of its win.
func BenchmarkScheduler(b *testing.B) {
	workloads := []struct{ name, label string }{
		{"mcf_like_1554", "membound"},
		{"deepsjeng_like", "computebound"},
	}
	for _, w := range workloads {
		for _, pf := range []string{"", "berti"} {
			for _, sched := range []sim.Scheduler{sim.SchedTicked, sim.SchedHorizon} {
				pfLabel := pf
				if pf == "" {
					pfLabel = "nopf"
				}
				name := fmt.Sprintf("%s/%s/%s", w.label, pfLabel, sched)
				b.Run(name, func(b *testing.B) {
					h := New(benchScale)
					h.Scheduler = sched
					spec := RunSpec{Workload: w.name, L1DPf: pf}
					// Generate (and memoize) the trace outside the timed region.
					h.MustTrace(w.name, 0)
					b.ResetTimer()
					var instr uint64
					for i := 0; i < b.N; i++ {
						res, err := h.RunWith(spec, RunOptions{})
						if err != nil {
							b.Fatal(err)
						}
						instr += benchScale.WarmupInstr
						for c := range res.Cores {
							instr += res.Cores[c].Core.Instructions
						}
					}
					b.ReportMetric(float64(instr)/1e3/b.Elapsed().Seconds(), "kinstr/s")
				})
			}
		}
	}
}
