package harness

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/obs/provenance"
	"github.com/bertisim/berti/internal/sim"
)

// ProvenanceRollup accumulates the per-run provenance reports of a campaign
// (delivered through the harness OnResult hook) into a cross-workload
// attribution summary: one outcome row per workload plus a fully merged
// attribution report (per-PC / per-delta tables, calibration bands,
// histograms) across every run that carried provenance.
//
// Attach chains onto any OnResult hook already installed (e.g. the campaign
// journal's), so roll-up and journaling compose.
type ProvenanceRollup struct {
	mu     sync.Mutex
	runs   int
	noProv int
	merged provenance.Report
	byWL   map[string]*WorkloadAttribution
}

// NewProvenanceRollup builds an empty roll-up.
func NewProvenanceRollup() *ProvenanceRollup {
	return &ProvenanceRollup{byWL: map[string]*WorkloadAttribution{}}
}

// Attach subscribes the roll-up to the harness's OnResult hook, chaining any
// hook already installed (journal subscriptions keep firing).
func (p *ProvenanceRollup) Attach(h *Harness) {
	prev := h.OnResult
	h.OnResult = func(key string, spec RunSpec, r *sim.Result) {
		if prev != nil {
			prev(key, spec, r)
		}
		p.Add(spec.Workload, r)
	}
}

// Add folds one completed run into the roll-up. Runs without a provenance
// report (tracker not enabled, or a seeded/legacy result) only bump the
// runs-without-provenance counter.
func (p *ProvenanceRollup) Add(workload string, r *sim.Result) {
	if r == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs++
	if r.Provenance == nil {
		p.noProv++
		return
	}
	provenance.Merge(&p.merged, r.Provenance)
	wa := p.byWL[workload]
	if wa == nil {
		wa = &WorkloadAttribution{Workload: workload}
		p.byWL[workload] = wa
	}
	wa.add(r.Provenance)
}

// WorkloadAttribution is one workload's outcome totals summed across runs
// and cache levels.
type WorkloadAttribution struct {
	Workload string `json:"workload"`
	Runs     int    `json:"runs"`
	Issued   uint64 `json:"issued"`
	Spawned  uint64 `json:"spawned"`
	Timely   uint64 `json:"timely"`
	Late     uint64 `json:"late"`
	Useless  uint64 `json:"useless"`
	Dropped  uint64 `json:"dropped"`
	Overflow uint64 `json:"overflow"`
	// TimelyRate is Timely over all terminally-resolved outcomes.
	TimelyRate float64 `json:"timely_rate"`
	// AvgSlack is the mean fill-to-first-use slack (cycles) over timely
	// outcomes at every level.
	AvgSlack float64 `json:"avg_slack"`

	slackSum, slackCount uint64
}

// add folds one run's report into the workload row.
func (w *WorkloadAttribution) add(r *provenance.Report) {
	w.Runs++
	w.Overflow += r.Overflow
	for i := range r.Levels {
		l := &r.Levels[i]
		w.Issued += l.Issued
		w.Spawned += l.Spawned
		w.Timely += l.Timely
		w.Late += l.Late
		w.Useless += l.Useless
		w.Dropped += l.Dropped
		w.slackSum += l.Slack.Sum
		w.slackCount += l.Slack.Count
	}
	w.finalize()
}

func (w *WorkloadAttribution) finalize() {
	w.TimelyRate, w.AvgSlack = 0, 0
	if n := w.Timely + w.Late + w.Useless + w.Dropped; n > 0 {
		w.TimelyRate = float64(w.Timely) / float64(n)
	}
	if w.slackCount > 0 {
		w.AvgSlack = float64(w.slackSum) / float64(w.slackCount)
	}
}

// RollupReport is the cross-workload attribution document, versioned under
// the obs schema.
type RollupReport struct {
	SchemaVersion int `json:"schema_version"`
	// Runs counts completed runs observed; RunsWithoutProvenance counts the
	// subset that carried no provenance report.
	Runs                  int                   `json:"runs"`
	RunsWithoutProvenance int                   `json:"runs_without_provenance,omitempty"`
	Workloads             []WorkloadAttribution `json:"workloads"`
	Merged                *provenance.Report    `json:"merged"`
}

// Report snapshots the roll-up. The merged attribution report is a deep
// enough copy to be safe against further Add calls mutating slices.
func (p *ProvenanceRollup) Report() *RollupReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	wls := make([]WorkloadAttribution, 0, len(p.byWL))
	for _, w := range p.byWL {
		wls = append(wls, *w)
	}
	sort.Slice(wls, func(i, j int) bool { return wls[i].Workload < wls[j].Workload })
	m := p.merged
	m.SchemaVersion = obs.SchemaVersion
	m.Levels = append([]provenance.LevelStats(nil), p.merged.Levels...)
	m.PCs = append([]provenance.Row(nil), p.merged.PCs...)
	m.Deltas = append([]provenance.Row(nil), p.merged.Deltas...)
	m.Calibration = append([]provenance.CalBand(nil), p.merged.Calibration...)
	return &RollupReport{
		SchemaVersion:         obs.SchemaVersion,
		Runs:                  p.runs,
		RunsWithoutProvenance: p.noProv,
		Workloads:             wls,
		Merged:                &m,
	}
}

// WriteJSON renders the roll-up as indented JSON (deterministic for equal
// roll-ups).
func (r *RollupReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV renders the merged attribution tables as CSV (the per-PC and
// per-delta rows of the merged report, under the provenance CSV schema).
func (r *RollupReport) WriteCSV(w io.Writer) error {
	return r.Merged.WriteCSV(w)
}
