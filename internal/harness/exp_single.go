package harness

import (
	"fmt"
	"io"
	"sync"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/energy"
	"github.com/bertisim/berti/internal/metrics"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/prefetch/bop"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
)

func init() {
	registerExperiment(Experiment{
		ID: "Fig1Accuracy", Paper: "Figure 1(a)",
		Desc: "prefetch accuracy of state-of-the-art prefetchers, SPEC vs GAP",
		Run:  runFig1Accuracy,
	})
	registerExperiment(Experiment{
		ID: "Fig1Energy", Paper: "Figure 1(b)",
		Desc: "dynamic memory-hierarchy energy normalized to no prefetching",
		Run:  runFig1Energy,
	})
	registerExperiment(Experiment{
		ID: "Fig3LocalVsGlobal", Paper: "Figure 3",
		Desc: "per-IP local deltas (Berti) vs one global delta (BOP) on mcf",
		Run:  runFig3,
	})
	registerExperiment(Experiment{
		ID: "Fig7SpeedupVsStorage", Paper: "Figure 7",
		Desc: "geomean speedup vs storage for L1D, L2, and multi-level prefetchers",
		Run:  runFig7,
	})
	registerExperiment(Experiment{
		ID: "Fig8L1DSpeedup", Paper: "Figure 8",
		Desc: "L1D prefetcher speedup over IP-stride, per suite",
		Run:  runFig8,
	})
	registerExperiment(Experiment{
		ID: "Fig9PerTrace", Paper: "Figure 9",
		Desc: "per-workload speedups of the L1D prefetchers",
		Run:  runFig9,
	})
	registerExperiment(Experiment{
		ID: "Fig10AccuracyTimeliness", Paper: "Figure 10",
		Desc: "L1D prefetch accuracy split into timely and late",
		Run:  runFig10,
	})
	registerExperiment(Experiment{
		ID: "Fig11MPKI", Paper: "Figure 11",
		Desc: "demand MPKI at L1D/L2/LLC with each L1D prefetcher",
		Run:  runFig11,
	})
}

// accuracyOf returns the artifact-formula accuracy for one run.
func accuracyOf(r *sim.Result) float64 { return r.Cores[0].L1D.Accuracy() }

func runFig1Accuracy(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 1(a): prefetch accuracy (useful fraction of prefetch fills)",
		"prefetcher", "level", "SPEC", "GAP")
	type cfgT struct {
		name, l1, l2, level string
	}
	cfgs := []cfgT{
		{"MLOP", "mlop", "", "L1D"},
		{"IPCP", "ipcp", "", "L1D"},
		{"SPP-PPF", "ip-stride", "spp-ppf", "L2"},
		{"Bingo", "ip-stride", "bingo", "L2"},
		{"Berti", "berti", "", "L1D"},
	}
	for _, c := range cfgs {
		var accs [2]float64
		for si, suite := range []string{"spec", "gap"} {
			names := MemIntSuite(suite)
			var num, den float64
			results := h.RunManySafe(specsFor(names, c.l1, c.l2))
			for _, r := range results {
				st := r.Cores[0].L1D
				if c.level == "L2" {
					st = r.Cores[0].L2
				}
				num += float64(st.PrefUseful + st.PrefLate)
				den += float64(st.PrefFills)
			}
			if den > 0 {
				accs[si] = num / den
			}
		}
		t.AddRow(c.name, c.level, accs[0], accs[1])
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti ~0.9; others well below, GAP worse than SPEC for IPCP")
}

func specsFor(names []string, l1, l2 string) []RunSpec {
	specs := make([]RunSpec, len(names))
	for i, n := range names {
		specs[i] = RunSpec{Workload: n, L1DPf: l1, L2Pf: l2}
	}
	return specs
}

// energyRatio returns total dynamic energy normalized to the no-prefetch
// run, averaged (arithmetic mean of ratios) across the names.
func (h *Harness) energyRatio(names []string, l1, l2 string) float64 {
	model := energy.Default22nm()
	var sum float64
	var n int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			r := h.RunSafe(RunSpec{Workload: name, L1DPf: l1, L2Pf: l2})
			base := h.RunSafe(RunSpec{Workload: name})
			er := energy.Compute(model, r).Total()
			eb := energy.Compute(model, base).Total()
			if eb > 0 {
				mu.Lock()
				sum += er / eb
				n++
				mu.Unlock()
			}
		}(name)
	}
	wg.Wait()
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func runFig1Energy(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 1(b)/15: dynamic energy normalized to no prefetching",
		"prefetcher", "SPEC", "GAP")
	cfgs := []struct{ name, l1, l2 string }{
		{"IP-stride", "ip-stride", ""},
		{"MLOP", "mlop", ""},
		{"IPCP", "ipcp", ""},
		{"SPP-PPF(L2)", "ip-stride", "spp-ppf"},
		{"Bingo(L2)", "ip-stride", "bingo"},
		{"Berti", "berti", ""},
	}
	for _, c := range cfgs {
		spec := h.energyRatio(MemIntSuite("spec"), c.l1, c.l2)
		gap := h.energyRatio(MemIntSuite("gap"), c.l1, c.l2)
		t.AddRow(c.name, spec, gap)
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti's overhead smallest among the prefetchers")
}

// runFig3 inspects learned state directly: it replays mcf-like accesses
// into a Berti and a BOP instance inside full simulations and dumps the
// per-IP deltas vs. the single global offset.
func runFig3(h *Harness, w io.Writer) {
	tr, err := h.Trace("mcf_like_1554", 0)
	if err != nil {
		fmt.Fprintf(w, "Figure 3 failed: %v\n", err)
		return
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInstructions = h.Scale.WarmupInstr
	cfg.SimInstructions = h.Scale.SimInstr

	var berti *core.Berti
	var bopPf *bop.Prefetcher
	m := sim.MustNew(cfg, []trace.Reader{trace.NewLoopReader(tr)}, func() cache.Prefetcher {
		berti = core.New(core.DefaultConfig())
		return berti
	}, nil)
	if _, err := m.Run(); err != nil {
		fmt.Fprintf(w, "Figure 3 failed (berti run): %v\n", err)
		return
	}
	m2 := sim.MustNew(cfg, []trace.Reader{trace.NewLoopReader(tr)}, func() cache.Prefetcher {
		bopPf = bop.New(bop.DefaultConfig())
		return bopPf
	}, nil)
	res2, err := m2.Run()
	if err != nil {
		fmt.Fprintf(w, "Figure 3 failed (bop run): %v\n", err)
		return
	}

	fmt.Fprintf(w, "== Figure 3: local (per-IP) deltas vs a global delta on mcf-like ==\n")
	fmt.Fprintf(w, "BOP global best offset: %+d (accuracy %.2f)\n",
		bopPf.BestOffset(), res2.Cores[0].L1D.Accuracy())
	ips := []uint64{1, 2, 3, 4, 5}
	for _, loc := range ips {
		ip := ipOf(int(loc))
		ds := berti.SnapshotDeltas(ip)
		fmt.Fprintf(w, "Berti IP#%d (0x%x): ", loc, ip)
		if len(ds) == 0 {
			fmt.Fprintf(w, "(no entry)\n")
			continue
		}
		for _, d := range ds {
			fmt.Fprintf(w, "%+d[%s] ", d.Delta, d.Status)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "shape target: each IP has its own best deltas; no single global offset covers them")
}

// ipOf mirrors workloads.IP without importing it here (cycle avoidance is
// not needed, but keeps the harness decoupled from generator internals).
func ipOf(loc int) uint64 { return 0x400000 + uint64(loc)*21 }

func runFig7(h *Harness, w io.Writer) {
	names := MemIntSuite("all")
	t := metrics.NewTable("Figure 7: geomean speedup (SPEC+GAP) vs storage",
		"config", "storage-KB", "speedup-vs-ipstride")
	type cfgT struct {
		label, l1, l2 string
	}
	cfgs := []cfgT{
		{"IP-stride (L1D)", "ip-stride", ""},
		{"MLOP (L1D)", "mlop", ""},
		{"IPCP (L1D)", "ipcp", ""},
		{"Berti (L1D)", "berti", ""},
		{"SPP-PPF (L2)", "ip-stride", "spp-ppf"},
		{"Bingo (L2)", "ip-stride", "bingo"},
		{"MLOP+Bingo", "mlop", "bingo"},
		{"MLOP+SPP-PPF", "mlop", "spp-ppf"},
		{"IPCP+IPCP", "ipcp", "ipcp-l2"},
		{"Berti+Bingo", "berti", "bingo"},
		{"Berti+SPP-PPF", "berti", "spp-ppf"},
	}
	for _, c := range cfgs {
		sp := h.suiteSpeedup(names, c.l1, c.l2)
		t.AddRow(c.label, storageKB(c.l1, c.l2), sp)
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti best among L1D prefetchers at ~2.55 KB;")
	fmt.Fprintln(w, "Berti alone >= every multi-level combo without Berti")
}

// storageKB sums the registry designs' declared storage.
func storageKB(names ...string) float64 {
	bits := 0
	for _, n := range names {
		if n == "" {
			continue
		}
		if e, ok := prefetch.ByName(n); ok {
			bits += e.New().StorageBits()
		}
	}
	return float64(bits) / 8 / 1024
}

func runFig8(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 8: L1D prefetcher speedup over IP-stride",
		"prefetcher", "SPEC", "GAP", "ALL")
	for _, pf := range L1DPrefetchers {
		t.AddRow(pf,
			h.suiteSpeedup(MemIntSuite("spec"), pf, ""),
			h.suiteSpeedup(MemIntSuite("gap"), pf, ""),
			h.suiteSpeedup(MemIntSuite("all"), pf, ""))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti highest on both suites; only Berti >= 1.0 on GAP")
}

func runFig9(h *Harness, w io.Writer) {
	names := MemIntSuite("all")
	t := metrics.NewTable("Figure 9: per-workload speedup over IP-stride",
		"workload", "mlop", "ipcp", "berti")
	for _, n := range names {
		base := h.RunSafe(baseSpec(n))
		row := []interface{}{n}
		for _, pf := range L1DPrefetchers {
			r := h.RunSafe(RunSpec{Workload: n, L1DPf: pf})
			row = append(row, SpeedupOver(r, base))
		}
		t.AddRow(row...)
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti wins or ties everywhere except cactu_like,")
	fmt.Fprintln(w, "where global-pattern prefetchers (MLOP) win")
}

func runFig10(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 10: L1D accuracy, split timely vs late",
		"prefetcher", "suite", "accuracy", "timely-frac")
	for _, pf := range L1DPrefetchers {
		for _, suite := range []string{"spec", "gap"} {
			names := MemIntSuite(suite)
			var useful, late, fills float64
			for _, r := range h.RunManySafe(specsFor(names, pf, "")) {
				st := r.Cores[0].L1D
				useful += float64(st.PrefUseful)
				late += float64(st.PrefLate)
				fills += float64(st.PrefFills)
			}
			acc, timely := 0.0, 0.0
			if fills > 0 {
				acc = (useful + late) / fills
			}
			if useful+late > 0 {
				timely = useful / (useful + late)
			}
			t.AddRow(pf, suite, acc, timely)
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti ~0.9 accuracy and mostly timely; MLOP/IPCP lower with more late")
}

func runFig11(h *Harness, w io.Writer) {
	t := metrics.NewTable("Figure 11: demand MPKI with L1D prefetchers",
		"config", "suite", "L1D", "L2", "LLC")
	cfgs := append([]string{"ip-stride"}, L1DPrefetchers...)
	for _, pf := range cfgs {
		for _, suite := range []string{"spec", "gap"} {
			names := MemIntSuite(suite)
			var l1, l2, llc float64
			for _, r := range h.RunManySafe(specsFor(names, pf, "")) {
				instr := r.Config.SimInstructions
				l1 += r.Cores[0].L1D.MPKI(instr)
				l2 += r.Cores[0].L2.MPKI(instr)
				llc += r.LLC.MPKI(instr)
			}
			n := float64(len(names))
			t.AddRow(pf, suite, l1/n, l2/n, llc/n)
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "shape target: Berti lowest (or tied) at L2/LLC thanks to its L2 preloading")
}
