package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/bertisim/berti/internal/obs/provenance"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/workloads"
)

// provenancePair builds one harness with lifecycle tracking and one
// without, both at the differential scale.
func provenancePair() (off, on *Harness) {
	off = New(diffScale)
	on = New(diffScale)
	on.EnableProvenance = true
	return off, on
}

// stripProvenance canonicalizes a tracked run for byte-comparison against
// an untracked one: everything except the Provenance report must match.
func stripProvenance(t *testing.T, res *sim.Result, err error) []byte {
	t.Helper()
	if res != nil {
		clone := *res
		clone.Provenance = nil
		res = &clone
	}
	return resultJSON(t, res, err)
}

// TestProvenanceDifferentialWorkloads pins the zero-cost-when-on guarantee
// across the whole workload registry: the tracker is a pure observer, so a
// tracked run's statistics must be byte-identical to an untracked run's.
// (CI also runs the scheduler-differential suite with provenance off, which
// pins the off case by construction.)
func TestProvenanceDifferentialWorkloads(t *testing.T) {
	off, on := provenancePair()
	all := workloads.All()
	if testing.Short() {
		all = all[:6]
	}
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			spec := RunSpec{Workload: w.Name, L1DPf: "berti"}
			ro, eo := off.Run(spec)
			rp, ep := on.Run(spec)
			a, b := resultJSON(t, ro, eo), stripProvenance(t, rp, ep)
			if !bytes.Equal(a, b) {
				t.Fatalf("provenance tracking perturbed %s:\noff: %s\non:  %s", w.Name, a, b)
			}
			if rp != nil && rp.Provenance == nil {
				t.Fatal("tracked run carried no provenance report")
			}
		})
	}
}

// TestProvenanceReconcilesOnGAP is the acceptance invariant: on every GAP
// workload, per level, the tracker's outcome counts (plus the explicit
// untracked spill) must equal the cache counters exactly, and each outcome
// histogram must have seen exactly the tracked resolutions of its class.
func TestProvenanceReconcilesOnGAP(t *testing.T) {
	h := New(diffScale)
	h.EnableProvenance = true
	gap := workloads.Suite("gap")
	if len(gap) == 0 {
		t.Fatal("no GAP workloads registered")
	}
	if testing.Short() {
		gap = gap[:2]
	}
	for _, w := range gap {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res, err := h.Run(RunSpec{Workload: w.Name, L1DPf: "berti"})
			if err != nil {
				t.Fatal(err)
			}
			p := res.Provenance
			if p == nil {
				t.Fatal("no provenance report")
			}
			if p.Overflow != 0 {
				t.Logf("pool overflowed %d times; reconciliation uses the untracked counters", p.Overflow)
			}
			core := &res.Cores[0]
			check := func(name string, useful, late, useless uint64) {
				l := p.Level(name)
				if l == nil {
					if useful|late|useless != 0 {
						t.Fatalf("%s: counters nonzero but no level stats", name)
					}
					return
				}
				if got := l.Timely + l.UntrackedTimely; got != useful {
					t.Errorf("%s: timely %d+%d != PrefUseful %d", name, l.Timely, l.UntrackedTimely, useful)
				}
				if got := l.Late + l.UntrackedLate; got != late {
					t.Errorf("%s: late %d+%d != PrefLate %d", name, l.Late, l.UntrackedLate, late)
				}
				if got := l.Useless + l.UntrackedUseless; got != useless {
					t.Errorf("%s: useless %d+%d != PrefUseless %d", name, l.Useless, l.UntrackedUseless, useless)
				}
				// Histograms observe exactly the tracked resolutions.
				if l.Slack.Count != l.Timely {
					t.Errorf("%s: slack histogram count %d != timely %d", name, l.Slack.Count, l.Timely)
				}
				if l.LateWait.Count != l.Late {
					t.Errorf("%s: late-wait histogram count %d != late %d", name, l.LateWait.Count, l.Late)
				}
				if l.UselessLifetime.Count != l.Useless {
					t.Errorf("%s: useless-lifetime count %d != useless %d", name, l.UselessLifetime.Count, l.Useless)
				}
			}
			check("L1D", core.L1D.PrefUseful, core.L1D.PrefLate, core.L1D.PrefUseless)
			check("L2", core.L2.PrefUseful, core.L2.PrefLate, core.L2.PrefUseless)
			check("LLC", res.LLC.PrefUseful, res.LLC.PrefLate, res.LLC.PrefUseless)
		})
	}
}

// TestProvenanceRollupMergesAcrossRuns covers the campaign roll-up: reports
// from several runs merge by workload and into one attribution table, and
// the OnResult chaining keeps a pre-installed hook firing.
func TestProvenanceRollupMergesAcrossRuns(t *testing.T) {
	h := New(diffScale)
	h.EnableProvenance = true
	var hookFired int
	h.OnResult = func(string, RunSpec, *sim.Result) { hookFired++ }
	rollup := NewProvenanceRollup()
	rollup.Attach(h)

	specs := []RunSpec{
		{Workload: "bfs-kron", L1DPf: "berti"},
		{Workload: "bfs-kron", L1DPf: "berti", Seed: 1},
		{Workload: "pr-kron", L1DPf: "berti"},
	}
	for _, s := range specs {
		if _, err := h.Run(s); err != nil {
			t.Fatal(err)
		}
	}
	if hookFired != len(specs) {
		t.Fatalf("chained OnResult fired %d times, want %d", hookFired, len(specs))
	}
	rep := rollup.Report()
	if rep.Runs != len(specs) || rep.RunsWithoutProvenance != 0 {
		t.Fatalf("rollup saw %d runs (%d without provenance)", rep.Runs, rep.RunsWithoutProvenance)
	}
	if len(rep.Workloads) != 2 {
		t.Fatalf("workload rows = %+v", rep.Workloads)
	}
	if rep.Workloads[0].Workload != "bfs-kron" || rep.Workloads[0].Runs != 2 {
		t.Fatalf("bfs-kron row = %+v", rep.Workloads[0])
	}
	// The merged report's issued totals equal the sum of the per-run ones.
	var wantIssued uint64
	for _, r := range h.Results() {
		for i := range r.Provenance.Levels {
			wantIssued += r.Provenance.Levels[i].Issued
		}
	}
	var gotIssued uint64
	for i := range rep.Merged.Levels {
		gotIssued += rep.Merged.Levels[i].Issued
	}
	if gotIssued != wantIssued || gotIssued == 0 {
		t.Fatalf("merged issued = %d, want %d (nonzero)", gotIssued, wantIssued)
	}
	// The roll-up document is valid JSON with the schema version stamped.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Merged        *provenance.Report
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion == 0 || doc.Merged == nil {
		t.Fatalf("rollup JSON missing schema or merged report: %s", buf.Bytes())
	}
}
