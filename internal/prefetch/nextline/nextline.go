// Package nextline implements a degree-N next-line prefetcher, the simplest
// spatial baseline (and IPCP's fallback class).
package nextline

import "github.com/bertisim/berti/internal/cache"

// Prefetcher prefetches the next Degree sequential lines on every miss.
type Prefetcher struct {
	// Degree is the number of sequential lines fetched per miss.
	Degree int
	// OnHits also triggers on demand hits when true.
	OnHits  bool
	scratch []cache.PrefetchReq
}

// New builds a next-line prefetcher of the given degree.
func New(degree int) *Prefetcher { return &Prefetcher{Degree: degree} }

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "next-line" }

// StorageBits implements cache.Prefetcher (stateless).
func (p *Prefetcher) StorageBits() int { return 0 }

// OnAccess implements cache.Prefetcher.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !p.OnHits {
		return nil
	}
	p.scratch = p.scratch[:0]
	for k := 1; k <= p.Degree; k++ {
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  ev.LineAddr + uint64(k),
			FillLevel: cache.L1D,
		})
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
