package nextline

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestDegreeAndTargets(t *testing.T) {
	p := New(3)
	reqs := p.OnAccess(cache.AccessEvent{LineAddr: 100, Hit: false})
	if len(reqs) != 3 {
		t.Fatalf("degree 3, got %d", len(reqs))
	}
	for k, r := range reqs {
		if r.LineAddr != 100+uint64(k+1) {
			t.Fatalf("target %d wrong: %d", k, r.LineAddr)
		}
	}
}

func TestHitsSkippedUnlessEnabled(t *testing.T) {
	p := New(1)
	if reqs := p.OnAccess(cache.AccessEvent{LineAddr: 5, Hit: true}); reqs != nil {
		t.Fatal("hits must not trigger by default")
	}
	p.OnHits = true
	if reqs := p.OnAccess(cache.AccessEvent{LineAddr: 5, Hit: true}); len(reqs) != 1 {
		t.Fatal("OnHits did not enable hit triggering")
	}
}
