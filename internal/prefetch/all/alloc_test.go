package all

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/prefetch"
)

// drive feeds a deterministic access/fill stream with a bounded footprint
// (8 pages of 64 lines, 4 IPs) through the prefetcher's train/issue path.
// The cycle counter advances monotonically across calls so timestamp-based
// predictors (Berti's masked timestamps, Pythia's reward windows) see a
// realistic clock. Returns the advanced cycle for chaining.
func drive(p cache.Prefetcher, n int, cycle uint64) uint64 {
	s := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		page := (s >> 33) % 8
		off := (s >> 40) % 64
		line := 0x10000 + page*64 + off
		ip := 0x400000 + ((s>>50)%4)*16
		cycle += 1 + s%7
		p.OnAccess(cache.AccessEvent{
			Cycle:         cycle,
			IP:            ip,
			LineAddr:      line,
			PLineAddr:     line,
			IsStore:       s&15 == 3,
			Hit:           s&1 == 0,
			PrefetchHit:   s&7 == 1,
			PfLatency:     uint16(100 + s%300),
			MSHROccupancy: int(s % 8),
			MSHRCap:       16,
		})
		if s&3 == 0 {
			p.OnFill(cache.FillEvent{
				Cycle:      cycle,
				IP:         ip,
				LineAddr:   line,
				PLineAddr:  line,
				Latency:    100 + s%200,
				ByPrefetch: s&7 == 0,
			})
		}
	}
	return cycle
}

// TestPrefetchersZeroAllocSteadyState asserts that every registered
// prefetcher's train/issue path performs zero allocations per access once
// warm: predictor state is sized at construction and candidate slices are
// reused scratch buffers, mirroring the fixed hardware budgets the models
// declare via StorageBits.
func TestPrefetchersZeroAllocSteadyState(t *testing.T) {
	for _, e := range prefetch.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			p := e.New()
			// Warm: populate tables, grow scratch buffers to their
			// steady-state high-water mark.
			cycle := drive(p, 20_000, 0)
			avg := testing.AllocsPerRun(100, func() {
				cycle = drive(p, 200, cycle)
			})
			if avg != 0 {
				t.Fatalf("%s: %.2f allocs per 200 accesses in steady state, want 0", e.Name, avg)
			}
		})
	}
}

// BenchmarkPrefetchTrain measures the per-access cost of each registered
// prefetcher's train/issue path (make bench-cache).
func BenchmarkPrefetchTrain(b *testing.B) {
	for _, e := range prefetch.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			p := e.New()
			cycle := drive(p, 20_000, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle = drive(p, 1, cycle)
			}
		})
	}
}
