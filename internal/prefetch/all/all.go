// Package all registers every prefetcher design (Berti and the baselines)
// with the prefetch registry. Import it blank from harnesses:
//
//	import _ "github.com/bertisim/berti/internal/prefetch/all"
package all

import (
	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/prefetch/bingo"
	"github.com/bertisim/berti/internal/prefetch/bop"
	"github.com/bertisim/berti/internal/prefetch/ipcp"
	"github.com/bertisim/berti/internal/prefetch/ipstride"
	"github.com/bertisim/berti/internal/prefetch/misb"
	"github.com/bertisim/berti/internal/prefetch/mlop"
	"github.com/bertisim/berti/internal/prefetch/nextline"
	"github.com/bertisim/berti/internal/prefetch/pythia"
	"github.com/bertisim/berti/internal/prefetch/spp"
	"github.com/bertisim/berti/internal/prefetch/streamer"
	"github.com/bertisim/berti/internal/prefetch/vldp"
)

func init() {
	regs := []prefetch.Entry{
		{Name: "ip-stride", Level: prefetch.AtL1D, Comment: "Table II baseline: 24-entry FA per-IP stride",
			New: func() cache.Prefetcher { return ipstride.New(ipstride.DefaultConfig()) }},
		{Name: "next-line", Level: prefetch.AtL1D, Comment: "degree-1 next line",
			New: func() cache.Prefetcher { return nextline.New(1) }},
		{Name: "berti", Level: prefetch.AtL1D, Comment: "the paper's contribution (2.55 KB)",
			New: func() cache.Prefetcher { return core.New(core.DefaultConfig()) }},
		{Name: "berti-dpc3", Level: prefetch.AtL1D, Comment: "per-page ancestor (Ros, DPC-3 2019)",
			New: func() cache.Prefetcher { return core.New(core.DPC3Config()) }},
		{Name: "bop", Level: prefetch.AtL1D, Comment: "best-offset prefetching (DPC-2 winner)",
			New: func() cache.Prefetcher { return bop.New(bop.DefaultConfig()) }},
		{Name: "mlop", Level: prefetch.AtL1D, Comment: "multi-lookahead offset (DPC-3 3rd)",
			New: func() cache.Prefetcher { return mlop.New(mlop.DefaultConfig()) }},
		{Name: "ipcp", Level: prefetch.AtL1D, Comment: "IP classifier bouquet (DPC-3 winner)",
			New: func() cache.Prefetcher { return ipcp.New(ipcp.DefaultConfig()) }},
		{Name: "spp", Level: prefetch.AtL2, Comment: "signature path prefetching",
			New: func() cache.Prefetcher { return spp.New(spp.DefaultConfig()) }},
		{Name: "spp-ppf", Level: prefetch.AtL2, Comment: "SPP with perceptron filter",
			New: func() cache.Prefetcher { return spp.New(spp.PPFConfig()) }},
		{Name: "bingo", Level: prefetch.AtL2, Comment: "region footprint prefetcher",
			New: func() cache.Prefetcher { return bingo.New(bingo.DefaultConfig()) }},
		{Name: "ipcp-l2", Level: prefetch.AtL2, Comment: "IPCP deployed at L2",
			New: func() cache.Prefetcher { return ipcp.New(ipcp.L2Config()) }},
		{Name: "misb", Level: prefetch.AtL2, Comment: "managed irregular stream buffer (temporal)",
			New: func() cache.Prefetcher { return misb.New(misb.DefaultConfig()) }},
		{Name: "vldp", Level: prefetch.AtL2, Comment: "variable length delta prefetching",
			New: func() cache.Prefetcher { return vldp.New(vldp.DefaultConfig()) }},
		{Name: "pythia", Level: prefetch.AtL2, Comment: "RL prefetcher (simplified Pythia)",
			New: func() cache.Prefetcher { return pythia.New(pythia.DefaultConfig()) }},
		{Name: "streamer", Level: prefetch.AtL2, Comment: "Intel-style L2 stream prefetcher",
			New: func() cache.Prefetcher { return streamer.New(streamer.DefaultConfig()) }},
	}
	for _, e := range regs {
		prefetch.Register(e)
	}
}
