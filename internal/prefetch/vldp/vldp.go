// Package vldp implements Variable Length Delta Prefetching (Shevgoor et
// al., MICRO 2015): per-page delta histories feed a cascade of delta
// prediction tables keyed by progressively longer delta sequences; the
// longest-history table that hits makes the prediction.
package vldp

import "github.com/bertisim/berti/internal/cache"

// Config parameterizes VLDP.
type Config struct {
	DHBEntries int // delta history buffer (pages tracked)
	DPTEntries int // entries per delta prediction table
	Degree     int
	FillLevel  cache.Level
}

// DefaultConfig follows the MICRO 2015 design.
func DefaultConfig() Config {
	return Config{DHBEntries: 16, DPTEntries: 64, Degree: 4, FillLevel: cache.L2}
}

// dhbEntry tracks one page's recent deltas.
type dhbEntry struct {
	valid   bool
	page    uint64
	lastOff int
	deltas  [3]int64 // most recent first
	nDeltas int
	lru     uint64
}

// dptEntry is one delta-prediction-table entry.
type dptEntry struct {
	valid bool
	key   uint64
	pred  int64
	conf  uint8 // 2-bit
}

// Prefetcher is the VLDP prefetcher.
type Prefetcher struct {
	cfg     Config
	dhb     []dhbEntry
	dpt     [3][]dptEntry // dpt[k] keyed by the last k+1 deltas
	lru     uint64
	scratch []cache.PrefetchReq
}

// New builds a VLDP prefetcher.
func New(cfg Config) *Prefetcher {
	p := &Prefetcher{cfg: cfg, dhb: make([]dhbEntry, cfg.DHBEntries)}
	for k := range p.dpt {
		p.dpt[k] = make([]dptEntry, cfg.DPTEntries)
	}
	return p
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "vldp" }

// StorageBits implements cache.Prefetcher.
func (p *Prefetcher) StorageBits() int {
	dhbBits := p.cfg.DHBEntries * (20 + 6 + 3*12 + 4)
	dptBits := 3 * p.cfg.DPTEntries * (16 + 12 + 2)
	return dhbBits + dptBits
}

func key(deltas []int64) uint64 {
	var k uint64
	for _, d := range deltas {
		k = k*1000003 + uint64(d&0xFFF)
	}
	return k
}

func (p *Prefetcher) dptLookup(level int, deltas []int64) *dptEntry {
	k := key(deltas)
	e := &p.dpt[level][k%uint64(len(p.dpt[level]))]
	if e.valid && e.key == k {
		return e
	}
	return nil
}

func (p *Prefetcher) dptUpdate(level int, deltas []int64, actual int64) {
	k := key(deltas)
	e := &p.dpt[level][k%uint64(len(p.dpt[level]))]
	if !e.valid || e.key != k {
		*e = dptEntry{valid: true, key: k, pred: actual, conf: 1}
		return
	}
	if e.pred == actual {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.pred = actual
		}
	}
}

// OnAccess implements cache.Prefetcher.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	page := ev.LineAddr >> 6
	off := int(ev.LineAddr & 63)
	var e *dhbEntry
	for i := range p.dhb {
		if p.dhb[i].valid && p.dhb[i].page == page {
			e = &p.dhb[i]
			break
		}
	}
	p.lru++
	if e == nil {
		v := &p.dhb[0]
		for i := range p.dhb {
			if !p.dhb[i].valid {
				v = &p.dhb[i]
				break
			}
			if p.dhb[i].lru < v.lru {
				v = &p.dhb[i]
			}
		}
		*v = dhbEntry{valid: true, page: page, lastOff: off, lru: p.lru}
		return nil
	}
	e.lru = p.lru
	delta := int64(off - e.lastOff)
	e.lastOff = off
	if delta == 0 {
		return nil
	}
	// Train every table whose history is available.
	for k := 0; k < 3 && k < e.nDeltas; k++ {
		p.dptUpdate(k, e.deltas[:k+1], delta)
	}
	// Shift the new delta in.
	e.deltas[2], e.deltas[1], e.deltas[0] = e.deltas[1], e.deltas[0], delta
	if e.nDeltas < 3 {
		e.nDeltas++
	}

	// Predict with the longest-history table that hits; chain for degree.
	// The speculative history is a fixed three-deep window (newest first),
	// shifted in place — no per-access slice allocation.
	p.scratch = p.scratch[:0]
	var hist [3]int64
	nh := e.nDeltas
	copy(hist[:], e.deltas[:e.nDeltas])
	base := int64(ev.LineAddr)
	for n := 0; n < p.cfg.Degree; n++ {
		var pred *dptEntry
		for k := min(3, nh) - 1; k >= 0; k-- {
			if c := p.dptLookup(k, hist[:k+1]); c != nil && c.conf >= 2 {
				pred = c
				break
			}
		}
		if pred == nil {
			break
		}
		base += pred.pred
		if uint64(base)>>6 != page {
			break // stay within the page
		}
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  uint64(base),
			FillLevel: p.cfg.FillLevel,
		})
		// Advance the speculative history.
		hist[2], hist[1], hist[0] = hist[1], hist[0], pred.pred
		if nh < 3 {
			nh++
		}
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
