package vldp

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestPredictsRepeatingDeltas(t *testing.T) {
	p := New(DefaultConfig())
	page := uint64(3) << 6
	offs := []uint64{1, 2, 4, 5, 7, 8, 10, 11, 13, 14, 16, 17, 19, 20, 22}
	var reqs []cache.PrefetchReq
	for _, o := range offs {
		reqs = p.OnAccess(cache.AccessEvent{LineAddr: page + o, Hit: false})
	}
	if len(reqs) == 0 {
		t.Fatal("VLDP learned nothing from the +1/+2 pattern")
	}
	for _, r := range reqs {
		if r.LineAddr>>6 != 3 {
			t.Fatalf("prediction left the page: %d", r.LineAddr)
		}
	}
}

func TestLongestHistoryWins(t *testing.T) {
	p := New(DefaultConfig())
	// Two contexts: after (2,1) comes 3; after (1,1) comes 2 — only a
	// multi-delta history disambiguates.
	page := uint64(9) << 6
	seq := []uint64{1, 3, 4, 7, 8, 10, 11, 14, 15, 17, 18, 21, 22, 24}
	var reqs []cache.PrefetchReq
	for _, o := range seq {
		reqs = p.OnAccess(cache.AccessEvent{LineAddr: page + o, Hit: false})
	}
	if len(reqs) == 0 {
		t.Fatal("no prediction from multi-delta history")
	}
}

func TestIgnoresHits(t *testing.T) {
	p := New(DefaultConfig())
	if reqs := p.OnAccess(cache.AccessEvent{LineAddr: 100, Hit: true}); reqs != nil {
		t.Fatal("plain hits must not train VLDP")
	}
}
