// Package pythia implements a simplified Pythia (Bera et al., MICRO 2021):
// a reinforcement-learning prefetcher that learns which prefetch offset to
// issue for a program state using tabular Q-values updated from prefetch
// outcomes. The paper's Section V cites Pythia as a high-performing L2
// prefetcher whose gains mostly vanish once Berti runs at the L1D; the
// AblPythia experiment reproduces that interaction.
//
// This implementation keeps Pythia's structure — state features (page
// offset + recent delta signature), an action set of candidate offsets, a
// Q-value table ("vault"), an evaluation queue that assigns rewards when
// the outcome of an issued prefetch becomes known, and epsilon-greedy
// exploration with a deterministic schedule — while simplifying the
// original's multi-feature voting to a single hashed state table.
package pythia

import "github.com/bertisim/berti/internal/cache"

// Actions is the candidate offset set (a subset of Pythia's action list).
var Actions = []int64{1, 2, 3, 4, 6, 8, 12, 16, -1, -2, -4, 0}

// Config parameterizes the RL machinery.
type Config struct {
	// StateEntries is the Q-table height (states are hashed into it).
	StateEntries int
	// EQSize is the evaluation-queue depth (outcomes tracked).
	EQSize int
	// Alpha is the learning rate numerator (alpha = Alpha/256).
	Alpha int
	// RewardUseful / RewardUseless / RewardNone shape learning.
	RewardUseful, RewardUseless, RewardNoPrefetch int
	// ExplorePeriod issues an exploratory action every N decisions.
	ExplorePeriod int
	FillLevel     cache.Level
}

// DefaultConfig follows the MICRO 2021 design, scaled down.
func DefaultConfig() Config {
	return Config{
		StateEntries:     4096,
		EQSize:           256,
		Alpha:            64,
		RewardUseful:     20,
		RewardUseless:    -12,
		RewardNoPrefetch: -2,
		ExplorePeriod:    100,
		FillLevel:        cache.L2,
	}
}

// eqEntry tracks one issued prefetch until its outcome is known.
type eqEntry struct {
	valid  bool
	line   uint64
	state  int
	action int
}

// Prefetcher is the simplified Pythia.
type Prefetcher struct {
	cfg Config
	// q[state][action] holds Q-values (fixed-point, x256).
	q     [][]int32
	eq    []eqEntry
	eqPos int

	lastLine  uint64
	lastDelta int64
	decisions uint64
	scratch   []cache.PrefetchReq
}

// New builds a Pythia prefetcher.
func New(cfg Config) *Prefetcher {
	p := &Prefetcher{
		cfg: cfg,
		q:   make([][]int32, cfg.StateEntries),
		eq:  make([]eqEntry, cfg.EQSize),
	}
	for i := range p.q {
		p.q[i] = make([]int32, len(Actions))
	}
	return p
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "pythia" }

// StorageBits implements cache.Prefetcher: Q-table + EQ (the original is
// ~25.5 KB; this scaled version is similar).
func (p *Prefetcher) StorageBits() int {
	return p.cfg.StateEntries*len(Actions)*16 + p.cfg.EQSize*(26+12+4)
}

// state hashes the program state: page offset + last delta.
func (p *Prefetcher) state(line uint64, lastDelta int64) int {
	h := (line & 63) ^ uint64(lastDelta*2654435761)
	h ^= h >> 13
	return int(h % uint64(p.cfg.StateEntries))
}

// bestAction returns the argmax action for a state.
func (p *Prefetcher) bestAction(s int) int {
	best := 0
	for a := 1; a < len(Actions); a++ {
		if p.q[s][a] > p.q[s][best] {
			best = a
		}
	}
	return best
}

// reward applies a reward to the (state, action) of an EQ entry.
func (p *Prefetcher) reward(e *eqEntry, r int) {
	cur := p.q[e.state][e.action]
	// Q += alpha * (r*256 - Q) / 256, fixed point.
	p.q[e.state][e.action] = cur + int32(p.cfg.Alpha)*(int32(r)*256-cur)/256
}

// OnAccess implements cache.Prefetcher: settle EQ outcomes for demanded
// lines, pick an action for the new state, issue, and track it.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	// Settle: a demand for a tracked line means the prefetch was useful.
	for i := range p.eq {
		if p.eq[i].valid && p.eq[i].line == ev.LineAddr {
			p.reward(&p.eq[i], p.cfg.RewardUseful)
			p.eq[i].valid = false
		}
	}

	delta := int64(ev.LineAddr) - int64(p.lastLine)
	if p.lastLine == 0 || delta > 64 || delta < -64 {
		delta = 0
	}
	p.lastLine = ev.LineAddr
	s := p.state(ev.LineAddr, p.lastDelta)
	p.lastDelta = delta

	p.decisions++
	a := p.bestAction(s)
	if p.cfg.ExplorePeriod > 0 && p.decisions%uint64(p.cfg.ExplorePeriod) == 0 {
		// Deterministic exploration schedule (no RNG in the datapath).
		a = int(p.decisions/uint64(p.cfg.ExplorePeriod)) % len(Actions)
	}
	off := Actions[a]
	if off == 0 {
		// "No prefetch" action: small negative reward keeps it from
		// absorbing everything, applied immediately.
		e := eqEntry{state: s, action: a}
		p.reward(&e, p.cfg.RewardNoPrefetch)
		return nil
	}

	target := uint64(int64(ev.LineAddr) + off)
	// Track the decision; an overwritten (never-demanded) entry counts
	// as useless.
	slot := &p.eq[p.eqPos]
	if slot.valid {
		p.reward(slot, p.cfg.RewardUseless)
	}
	*slot = eqEntry{valid: true, line: target, state: s, action: a}
	p.eqPos = (p.eqPos + 1) % len(p.eq)

	p.scratch = p.scratch[:0]
	p.scratch = append(p.scratch, cache.PrefetchReq{LineAddr: target, FillLevel: p.cfg.FillLevel})
	return p.scratch
}

// OnFill implements cache.Prefetcher: an unused prefetched line being
// evicted is a definitive useless outcome.
func (p *Prefetcher) OnFill(ev cache.FillEvent) {
	if !ev.EvictedPrefetched || ev.EvictedAddr == 0 {
		return
	}
	for i := range p.eq {
		if p.eq[i].valid && p.eq[i].line == ev.EvictedAddr {
			p.reward(&p.eq[i], p.cfg.RewardUseless)
			p.eq[i].valid = false
		}
	}
}

// QValue exposes a Q-table cell (tests).
func (p *Prefetcher) QValue(state, action int) int32 { return p.q[state][action] }
