package pythia

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestLearnsUsefulOffsetOnStream(t *testing.T) {
	p := New(DefaultConfig())
	line := uint64(1 << 16)
	issued := map[int64]int{}
	for i := 0; i < 20000; i++ {
		line++
		reqs := p.OnAccess(cache.AccessEvent{LineAddr: line, Hit: false})
		for _, r := range reqs {
			issued[int64(r.LineAddr)-int64(line)]++
		}
	}
	// On a +1 stream, positive small offsets must dominate the issued
	// actions by the end of training.
	pos, neg := 0, 0
	for off, n := range issued {
		if off > 0 {
			pos += n
		} else {
			neg += n
		}
	}
	if pos <= neg*3 {
		t.Fatalf("RL did not converge to forward offsets: +%d vs -%d", pos, neg)
	}
}

func TestUselessOutcomesSuppressAction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExplorePeriod = 0 // pure exploitation after the nudges below
	p := New(cfg)
	// Manually reward action 0 (+1 line) as useless for one state many
	// times; its Q-value must fall below the no-prefetch action's.
	s := p.state(1000, 0)
	e := eqEntry{state: s, action: 0}
	for i := 0; i < 50; i++ {
		p.reward(&e, cfg.RewardUseless)
	}
	if p.QValue(s, 0) >= 0 {
		t.Fatalf("useless rewards did not lower Q: %d", p.QValue(s, 0))
	}
}

func TestNoPrefetchActionStopsIssuing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExplorePeriod = 0
	p := New(cfg)
	// Random traffic: most prefetches become useless via EQ overwrite;
	// eventually the no-prefetch action should win frequently.
	x := uint64(7)
	issued := 0
	total := 20000
	for i := 0; i < total; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		reqs := p.OnAccess(cache.AccessEvent{LineAddr: x % (1 << 26), Hit: false})
		issued += len(reqs)
	}
	if issued > total*9/10 {
		t.Fatalf("Pythia never learned to hold back on random traffic: %d/%d", issued, total)
	}
}

func TestIgnoresPlainHits(t *testing.T) {
	p := New(DefaultConfig())
	if reqs := p.OnAccess(cache.AccessEvent{LineAddr: 42, Hit: true}); reqs != nil {
		t.Fatal("plain hits must not trigger")
	}
}
