// Package misb implements a Managed Irregular Stream Buffer (Wu et al.,
// MICRO 2019), a storage-efficient temporal prefetcher in the ISB family:
// PC-localized address streams are linearized into a structural address
// space so that temporally-consecutive lines get consecutive structural
// addresses; prefetching walks the structural space forward. The off-chip
// metadata of the original is modelled as bounded on-chip mapping caches
// with a Bloom-filter-style presence check.
package misb

import "github.com/bertisim/berti/internal/cache"

// Config parameterizes MISB.
type Config struct {
	// MappingEntries bounds the PS (physical->structural) and SP
	// (structural->physical) metadata caches.
	MappingEntries int
	// TrainerEntries is the per-PC last-address table size.
	TrainerEntries int
	// Degree is the structural-space prefetch depth.
	Degree    int
	FillLevel cache.Level
}

// DefaultConfig follows the paper's 98 KB configuration scaled to our
// simulator (32 KB metadata cache + 17 KB Bloom filter).
func DefaultConfig() Config {
	return Config{MappingEntries: 1 << 16, TrainerEntries: 256, Degree: 3, FillLevel: cache.L2}
}

// trainEntry tracks a PC's previous line address.
type trainEntry struct {
	valid bool
	pcTag uint64
	last  uint64
}

// flatMap is an open-addressed uint64->uint64 map sized once at
// construction: linear probing over a power-of-two table with
// backward-shift deletion (no tombstones). The FIFO eviction in
// insertMapping keeps occupancy at or below half the table, so probes stay
// short, an insert always finds a slot, and — unlike the Go map it
// replaces — the structure can never grow past the declared hardware
// budget. Lookups on the access path touch a flat array instead of
// hashing through runtime map internals.
type flatMap struct {
	keys []uint64
	vals []uint64
	occ  []bool
	mask uint64
	n    int
}

func (m *flatMap) init(capacity int) {
	s := 8
	for s < 2*capacity {
		s <<= 1
	}
	m.keys = make([]uint64, s)
	m.vals = make([]uint64, s)
	m.occ = make([]bool, s)
	m.mask = uint64(s - 1)
	m.n = 0
}

// slot mixes the key (line and structural addresses are strided, not
// uniform) into a table index.
func (m *flatMap) slot(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15
	k ^= k >> 29
	return k & m.mask
}

func (m *flatMap) get(k uint64) (uint64, bool) {
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		if !m.occ[i] {
			return 0, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

func (m *flatMap) put(k, v uint64) {
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		if !m.occ[i] {
			m.keys[i], m.vals[i], m.occ[i] = k, v, true
			m.n++
			return
		}
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
}

func (m *flatMap) del(k uint64) {
	i := m.slot(k)
	for {
		if !m.occ[i] {
			return
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	// Backward-shift deletion: pull displaced entries over the hole so
	// probe chains stay contiguous.
	m.occ[i] = false
	m.n--
	j := i
	for {
		j = (j + 1) & m.mask
		if !m.occ[j] {
			return
		}
		home := m.slot(m.keys[j])
		if (j-home)&m.mask >= (j-i)&m.mask {
			m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
			m.occ[i], m.occ[j] = true, false
			i = j
		}
	}
}

// Prefetcher is the MISB temporal prefetcher.
type Prefetcher struct {
	cfg Config
	// ps maps physical line -> structural address; sp is the inverse.
	// Both are fixed-size open-addressed tables: entries never exceed
	// MappingEntries, matching the declared StorageBits budget.
	ps flatMap
	sp flatMap
	// evictRing implements FIFO bounding of the metadata caches.
	evictRing []uint64
	evictPos  int
	nextSA    uint64
	trainer   []trainEntry
	scratch   []cache.PrefetchReq
}

// streamGap separates structural streams so unrelated streams never blend.
const streamGap = 1 << 16

// New builds a MISB prefetcher.
func New(cfg Config) *Prefetcher {
	p := &Prefetcher{
		cfg:       cfg,
		evictRing: make([]uint64, cfg.MappingEntries),
		trainer:   make([]trainEntry, cfg.TrainerEntries),
		nextSA:    streamGap,
		scratch:   make([]cache.PrefetchReq, 0, cfg.Degree),
	}
	p.ps.init(cfg.MappingEntries)
	p.sp.init(cfg.MappingEntries)
	return p
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "misb" }

// StorageBits implements cache.Prefetcher: the paper's 98 KB (metadata
// cache + Bloom filter + trainer).
func (p *Prefetcher) StorageBits() int {
	return p.cfg.MappingEntries*(26+26) + 17*1024*8 + p.cfg.TrainerEntries*(16+26)
}

// insertMapping adds line<->sa with FIFO bounding: at capacity, the oldest
// ring entry's mapping (if still live) is evicted from both directions
// before the insert, so neither table ever exceeds MappingEntries.
func (p *Prefetcher) insertMapping(line, sa uint64) {
	if p.ps.n >= p.cfg.MappingEntries {
		old := p.evictRing[p.evictPos]
		if osa, ok := p.ps.get(old); ok {
			p.ps.del(old)
			p.sp.del(osa)
		}
	}
	p.evictRing[p.evictPos] = line
	p.evictPos = (p.evictPos + 1) % len(p.evictRing)
	p.ps.put(line, sa)
	p.sp.put(sa, line)
}

// OnAccess implements cache.Prefetcher: train the structural mapping from
// consecutive same-PC accesses and prefetch forward in structural space.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	h := ev.IP ^ ev.IP>>7 ^ ev.IP>>15
	t := &p.trainer[int(h%uint64(len(p.trainer)))]
	pcTag := h / uint64(len(p.trainer))
	if t.valid && t.pcTag == pcTag && t.last != ev.LineAddr {
		prev := t.last
		cur := ev.LineAddr
		prevSA, prevOK := p.ps.get(prev)
		if !prevOK {
			prevSA = p.nextSA
			p.nextSA += streamGap
			p.insertMapping(prev, prevSA)
		}
		if _, ok := p.ps.get(cur); !ok {
			// Link cur directly after prev in structural space unless
			// that slot is already taken. Mappings are first-come-
			// first-serve: an established mapping is never relinked,
			// so recurring streams stay stable across replays.
			if _, taken := p.sp.get(prevSA + 1); !taken {
				p.insertMapping(cur, prevSA+1)
			}
		}
	}
	*t = trainEntry{valid: true, pcTag: pcTag, last: ev.LineAddr}

	// Predict: walk forward from this line's structural address.
	sa, ok := p.ps.get(ev.LineAddr)
	if !ok {
		return nil
	}
	p.scratch = p.scratch[:0]
	for k := uint64(1); k <= uint64(p.cfg.Degree); k++ {
		line, ok := p.sp.get(sa + k)
		if !ok {
			break
		}
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  line,
			FillLevel: p.cfg.FillLevel,
		})
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
