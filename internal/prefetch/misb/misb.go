// Package misb implements a Managed Irregular Stream Buffer (Wu et al.,
// MICRO 2019), a storage-efficient temporal prefetcher in the ISB family:
// PC-localized address streams are linearized into a structural address
// space so that temporally-consecutive lines get consecutive structural
// addresses; prefetching walks the structural space forward. The off-chip
// metadata of the original is modelled as bounded on-chip mapping caches
// with a Bloom-filter-style presence check.
package misb

import "github.com/bertisim/berti/internal/cache"

// Config parameterizes MISB.
type Config struct {
	// MappingEntries bounds the PS (physical->structural) and SP
	// (structural->physical) metadata caches.
	MappingEntries int
	// TrainerEntries is the per-PC last-address table size.
	TrainerEntries int
	// Degree is the structural-space prefetch depth.
	Degree    int
	FillLevel cache.Level
}

// DefaultConfig follows the paper's 98 KB configuration scaled to our
// simulator (32 KB metadata cache + 17 KB Bloom filter).
func DefaultConfig() Config {
	return Config{MappingEntries: 1 << 16, TrainerEntries: 256, Degree: 3, FillLevel: cache.L2}
}

// trainEntry tracks a PC's previous line address.
type trainEntry struct {
	valid bool
	pcTag uint64
	last  uint64
}

// Prefetcher is the MISB temporal prefetcher.
type Prefetcher struct {
	cfg Config
	// ps maps physical line -> structural address; sp is the inverse.
	ps map[uint64]uint64
	sp map[uint64]uint64
	// evictRing implements FIFO bounding of the metadata caches.
	evictRing []uint64
	evictPos  int
	nextSA    uint64
	trainer   []trainEntry
	scratch   []cache.PrefetchReq
}

// streamGap separates structural streams so unrelated streams never blend.
const streamGap = 1 << 16

// New builds a MISB prefetcher.
func New(cfg Config) *Prefetcher {
	return &Prefetcher{
		cfg:       cfg,
		ps:        make(map[uint64]uint64, cfg.MappingEntries),
		sp:        make(map[uint64]uint64, cfg.MappingEntries),
		evictRing: make([]uint64, cfg.MappingEntries),
		trainer:   make([]trainEntry, cfg.TrainerEntries),
		nextSA:    streamGap,
	}
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "misb" }

// StorageBits implements cache.Prefetcher: the paper's 98 KB (metadata
// cache + Bloom filter + trainer).
func (p *Prefetcher) StorageBits() int {
	return p.cfg.MappingEntries*(26+26) + 17*1024*8 + p.cfg.TrainerEntries*(16+26)
}

// map insert with FIFO bounding.
func (p *Prefetcher) insertMapping(line, sa uint64) {
	if len(p.ps) >= p.cfg.MappingEntries {
		old := p.evictRing[p.evictPos]
		if osa, ok := p.ps[old]; ok {
			delete(p.ps, old)
			delete(p.sp, osa)
		}
	}
	p.evictRing[p.evictPos] = line
	p.evictPos = (p.evictPos + 1) % len(p.evictRing)
	p.ps[line] = sa
	p.sp[sa] = line
}

// OnAccess implements cache.Prefetcher: train the structural mapping from
// consecutive same-PC accesses and prefetch forward in structural space.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	h := ev.IP ^ ev.IP>>7 ^ ev.IP>>15
	t := &p.trainer[int(h%uint64(len(p.trainer)))]
	pcTag := h / uint64(len(p.trainer))
	if t.valid && t.pcTag == pcTag && t.last != ev.LineAddr {
		prev := t.last
		cur := ev.LineAddr
		prevSA, prevOK := p.ps[prev]
		if !prevOK {
			prevSA = p.nextSA
			p.nextSA += streamGap
			p.insertMapping(prev, prevSA)
		}
		if _, ok := p.ps[cur]; !ok {
			// Link cur directly after prev in structural space unless
			// that slot is already taken. Mappings are first-come-
			// first-serve: an established mapping is never relinked,
			// so recurring streams stay stable across replays.
			if _, taken := p.sp[prevSA+1]; !taken {
				p.insertMapping(cur, prevSA+1)
			}
		}
	}
	*t = trainEntry{valid: true, pcTag: pcTag, last: ev.LineAddr}

	// Predict: walk forward from this line's structural address.
	sa, ok := p.ps[ev.LineAddr]
	if !ok {
		return nil
	}
	p.scratch = p.scratch[:0]
	for k := uint64(1); k <= uint64(p.cfg.Degree); k++ {
		line, ok := p.sp[sa+k]
		if !ok {
			break
		}
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  line,
			FillLevel: p.cfg.FillLevel,
		})
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
