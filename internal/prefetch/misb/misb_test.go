package misb

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func replay(p *Prefetcher, pc uint64, seq []uint64) []cache.PrefetchReq {
	var last []cache.PrefetchReq
	for _, l := range seq {
		last = p.OnAccess(cache.AccessEvent{IP: pc, LineAddr: l, Hit: false})
	}
	return last
}

func TestReplayPrefetchesSuccessors(t *testing.T) {
	p := New(DefaultConfig())
	seq := []uint64{100, 2000, 57, 888, 1234, 999}
	replay(p, 0x400, seq)
	got := p.OnAccess(cache.AccessEvent{IP: 0x400, LineAddr: seq[0], Hit: false})
	if len(got) == 0 {
		t.Fatal("no prefetches on replay")
	}
	for k := 0; k < len(got) && k+1 < len(seq); k++ {
		if got[k].LineAddr != seq[k+1] {
			t.Fatalf("structural walk wrong at %d: got %d want %d", k, got[k].LineAddr, seq[k+1])
		}
	}
}

func TestMappingsAreStableAcrossReplays(t *testing.T) {
	p := New(DefaultConfig())
	seq := []uint64{10, 20, 30, 40}
	replay(p, 0x7, seq)
	sa1, _ := p.ps.get(20)
	replay(p, 0x7, seq) // wrap-around transition (40 -> 10) must not relink
	if sa2, _ := p.ps.get(20); sa2 != sa1 {
		t.Fatal("established mapping was relinked on replay")
	}
}

func TestSeparateStreamsDoNotBlend(t *testing.T) {
	p := New(DefaultConfig())
	a := []uint64{1000, 1001, 1002}
	b := []uint64{9000, 9001, 9002}
	replay(p, 0x100, a)
	replay(p, 0x200, b)
	got := p.OnAccess(cache.AccessEvent{IP: 0x100, LineAddr: a[0], Hit: false})
	for _, r := range got {
		for _, bl := range b {
			if r.LineAddr == bl {
				t.Fatalf("stream A prefetched stream B's line %d", bl)
			}
		}
	}
}

func TestMetadataBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MappingEntries = 64
	p := New(cfg)
	for i := uint64(0); i < 1000; i++ {
		p.OnAccess(cache.AccessEvent{IP: 0x9, LineAddr: 5_000_000 + i*97, Hit: false})
	}
	if p.ps.n > cfg.MappingEntries || p.sp.n > cfg.MappingEntries {
		t.Fatalf("metadata exceeded bound: ps=%d sp=%d", p.ps.n, p.sp.n)
	}
}
