package spp

// perceptron is the Perceptron Prefetch Filter (PPF): a set of feature-
// indexed weight tables whose sum decides whether an SPP candidate is
// prefetched into L2, demoted to the LLC, or rejected. Issued and rejected
// candidates are remembered in small tables so later demand behaviour can
// train the weights (useful -> strengthen, useless/rejected-but-needed ->
// correct).
type perceptron struct {
	cfg Config

	// Weight tables (sizes follow Table III: 4096, 2048, 1024, 128).
	wAddrSig []int8 // hash(target line ^ signature)
	wLine    []int8 // target line low bits
	wIPDelta []int8 // hash(trigger IP ^ depth)
	wConf    []int8 // confidence bucket

	// prefTable remembers issued prefetches awaiting an outcome.
	prefTable []ppfRecord
	// rejectTable remembers rejected candidates.
	rejectTable []ppfRecord
}

// ppfRecord stores the features of one filtered decision.
type ppfRecord struct {
	valid bool
	line  uint64
	feats ppfFeatures
}

// ppfFeatures indexes into each weight table.
type ppfFeatures struct {
	addrSig int
	line    int
	ipDelta int
	conf    int
}

func newPerceptron(cfg Config) *perceptron {
	return &perceptron{
		cfg:         cfg,
		wAddrSig:    make([]int8, 4096),
		wLine:       make([]int8, 2048),
		wIPDelta:    make([]int8, 1024),
		wConf:       make([]int8, 128),
		prefTable:   make([]ppfRecord, 1024),
		rejectTable: make([]ppfRecord, 1024),
	}
}

func (p *perceptron) storageBits() int {
	weights := (len(p.wAddrSig) + len(p.wLine) + len(p.wIPDelta) + len(p.wConf)) * 5
	tables := (len(p.prefTable) + len(p.rejectTable)) * (24 + 12)
	return weights + tables
}

// features extracts the weight-table indices for one candidate.
func (p *perceptron) features(ip, target uint64, sig uint16, conf, depth int) ppfFeatures {
	return ppfFeatures{
		addrSig: int((target ^ uint64(sig)) % uint64(len(p.wAddrSig))),
		line:    int(target % uint64(len(p.wLine))),
		ipDelta: int((ip ^ uint64(depth)<<7 ^ ip>>13) % uint64(len(p.wIPDelta))),
		conf:    clampInt(conf*len(p.wConf)/101, 0, len(p.wConf)-1),
	}
}

// predict sums the weights for a candidate.
func (p *perceptron) predict(ip, target uint64, sig uint16, conf, depth int) (int, ppfFeatures) {
	f := p.features(ip, target, sig, conf, depth)
	sum := int(p.wAddrSig[f.addrSig]) + int(p.wLine[f.line]) +
		int(p.wIPDelta[f.ipDelta]) + int(p.wConf[f.conf])
	return sum, f
}

func (p *perceptron) recordIssue(line uint64, f ppfFeatures) {
	p.prefTable[line%uint64(len(p.prefTable))] = ppfRecord{valid: true, line: line, feats: f}
}

func (p *perceptron) recordReject(line uint64, f ppfFeatures) {
	p.rejectTable[line%uint64(len(p.rejectTable))] = ppfRecord{valid: true, line: line, feats: f}
}

// onDemand trains on a demand access: an issued prefetch that gets demanded
// was useful (train up); a rejected candidate that gets demanded was a
// filtering mistake (train up too).
func (p *perceptron) onDemand(line uint64) {
	if r := &p.prefTable[line%uint64(len(p.prefTable))]; r.valid && r.line == line {
		p.train(r.feats, +1)
		r.valid = false
	}
	if r := &p.rejectTable[line%uint64(len(p.rejectTable))]; r.valid && r.line == line {
		p.train(r.feats, +1)
		r.valid = false
	}
}

// onUselessEviction trains down when a prefetched line dies unused.
func (p *perceptron) onUselessEviction(line uint64) {
	if r := &p.prefTable[line%uint64(len(p.prefTable))]; r.valid && r.line == line {
		p.train(r.feats, -1)
		r.valid = false
	}
}

// train nudges every feature weight by dir with 5-bit saturation.
func (p *perceptron) train(f ppfFeatures, dir int8) {
	bump := func(w *int8) {
		v := int(*w) + int(dir)
		*w = int8(clampInt(v, -16, 15))
	}
	bump(&p.wAddrSig[f.addrSig])
	bump(&p.wLine[f.line])
	bump(&p.wIPDelta[f.ipDelta])
	bump(&p.wConf[f.conf])
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
