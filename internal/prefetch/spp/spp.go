// Package spp implements Signature Path Prefetching (Kim et al., MICRO
// 2016) with the optional Perceptron Prefetch Filter (Bhatia et al., ISCA
// 2019). SPP learns per-page delta signatures and walks the signature path
// with compounding confidence; PPF replaces the hard confidence throttle
// with a trained perceptron that decides prefetch level or rejection.
package spp

import "github.com/bertisim/berti/internal/cache"

// Config parameterizes SPP(-PPF) per Table III.
type Config struct {
	STEntries int // 256-entry signature table
	PTEntries int // 512-entry pattern table
	PTWays    int // 4 delta slots per signature
	MaxDepth  int // lookahead depth bound
	// PrefetchThresholdPct stops the signature walk (25).
	PrefetchThresholdPct int
	// FillThresholdPct splits L2 vs LLC fills (90) when PPF is off.
	FillThresholdPct int
	// UsePPF enables the perceptron filter.
	UsePPF bool
	// PPFThreshold / PPFLowThreshold split prefetch-to-L2 / prefetch-
	// to-LLC / reject decisions.
	PPFThreshold    int
	PPFLowThreshold int
}

// DefaultConfig returns plain SPP.
func DefaultConfig() Config {
	return Config{
		STEntries:            256,
		PTEntries:            512,
		PTWays:               4,
		MaxDepth:             8,
		PrefetchThresholdPct: 25,
		FillThresholdPct:     90,
	}
}

// PPFConfig returns SPP-PPF (the paper's multi-level L2 configuration).
func PPFConfig() Config {
	c := DefaultConfig()
	c.UsePPF = true
	c.PrefetchThresholdPct = 8 // PPF explores deeper, the filter prunes
	c.PPFThreshold = 0
	c.PPFLowThreshold = -24
	return c
}

// stEntry tracks one page's last offset and signature.
type stEntry struct {
	valid   bool
	pageTag uint64
	lastOff int
	sig     uint16
	lru     uint64
}

// ptDelta is one pattern-table delta slot.
type ptDelta struct {
	delta  int64
	cDelta uint8
}

// ptEntry is one pattern-table row (indexed by signature).
type ptEntry struct {
	cSig   uint8
	deltas []ptDelta
}

// Prefetcher is SPP with optional PPF.
type Prefetcher struct {
	cfg Config
	st  []stEntry
	pt  []ptEntry
	lru uint64

	ppf     *perceptron
	scratch []cache.PrefetchReq
}

// New builds SPP (or SPP-PPF when cfg.UsePPF).
func New(cfg Config) *Prefetcher {
	p := &Prefetcher{
		cfg: cfg,
		st:  make([]stEntry, cfg.STEntries),
		pt:  make([]ptEntry, cfg.PTEntries),
	}
	for i := range p.pt {
		p.pt[i].deltas = make([]ptDelta, cfg.PTWays)
	}
	if cfg.UsePPF {
		p.ppf = newPerceptron(cfg)
	}
	return p
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string {
	if p.cfg.UsePPF {
		return "spp-ppf"
	}
	return "spp"
}

// StorageBits implements cache.Prefetcher.
func (p *Prefetcher) StorageBits() int {
	stBits := p.cfg.STEntries * (16 + 6 + 12)
	ptBits := p.cfg.PTEntries * (4 + p.cfg.PTWays*(7+4))
	bits := stBits + ptBits
	if p.ppf != nil {
		bits += p.ppf.storageBits()
	}
	return bits
}

func (p *Prefetcher) stFor(page uint64) *stEntry {
	idx := int(page % uint64(len(p.st)))
	e := &p.st[idx]
	tag := page / uint64(len(p.st))
	if !e.valid || e.pageTag != tag {
		*e = stEntry{valid: true, pageTag: tag, lastOff: -1}
	}
	p.lru++
	e.lru = p.lru
	return e
}

// updatePT folds an observed (signature, delta) pair into the pattern table.
func (p *Prefetcher) updatePT(sig uint16, delta int64) {
	e := &p.pt[int(sig)%len(p.pt)]
	if e.cSig < 15 {
		e.cSig++
	} else {
		// Global aging: halve all counters when the signature counter
		// saturates so confidences stay fractional.
		e.cSig = 8
		for i := range e.deltas {
			e.deltas[i].cDelta /= 2
		}
	}
	low := 0
	for i := range e.deltas {
		if e.deltas[i].delta == delta {
			if e.deltas[i].cDelta < 15 {
				e.deltas[i].cDelta++
			}
			return
		}
		if e.deltas[i].cDelta < e.deltas[low].cDelta {
			low = i
		}
	}
	e.deltas[low] = ptDelta{delta: delta, cDelta: 1}
}

// sigUpdate folds a delta into the 12-bit signature.
func sigUpdate(sig uint16, delta int64) uint16 {
	return ((sig << 3) ^ uint16(delta&0x3F)) & 0xFFF
}

// OnAccess implements cache.Prefetcher: train, then walk the signature
// path issuing prefetches with compounding confidence.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		// SPP trains on L2 accesses that would miss the no-prefetch
		// baseline; plain hits only update the PPF reject path.
		if p.ppf != nil {
			p.ppf.onDemand(ev.LineAddr)
		}
		return nil
	}
	page := ev.LineAddr >> 6
	off := int(ev.LineAddr & 63)
	st := p.stFor(page)
	if st.lastOff >= 0 {
		delta := int64(off - st.lastOff)
		if delta != 0 {
			p.updatePT(st.sig, delta)
			st.sig = sigUpdate(st.sig, delta)
		}
	}
	st.lastOff = off

	if p.ppf != nil {
		p.ppf.onDemand(ev.LineAddr)
	}

	// Lookahead walk.
	p.scratch = p.scratch[:0]
	sig := st.sig
	conf := 100
	base := int64(ev.LineAddr)
	for depth := 0; depth < p.cfg.MaxDepth; depth++ {
		e := &p.pt[int(sig)%len(p.pt)]
		if e.cSig == 0 {
			break
		}
		best := -1
		for i := range e.deltas {
			if e.deltas[i].cDelta == 0 {
				continue
			}
			if best < 0 || e.deltas[i].cDelta > e.deltas[best].cDelta {
				best = i
			}
		}
		if best < 0 {
			break
		}
		d := e.deltas[best]
		conf = conf * int(d.cDelta) / int(e.cSig)
		if conf < p.cfg.PrefetchThresholdPct {
			break
		}
		base += d.delta
		target := uint64(base)
		if target>>6 == page { // stay within the page (no GHR)
			level := cache.LLC
			if p.ppf != nil {
				sum, feats := p.ppf.predict(ev.IP, target, sig, conf, depth)
				switch {
				case sum >= p.cfg.PPFThreshold:
					level = cache.L2
				case sum >= p.cfg.PPFLowThreshold:
					level = cache.LLC
				default:
					p.ppf.recordReject(target, feats)
					level = 0
					goto next
				}
				p.ppf.recordIssue(target, feats)
			} else if conf >= p.cfg.FillThresholdPct {
				level = cache.L2
			}
			p.scratch = append(p.scratch, cache.PrefetchReq{
				LineAddr:  target,
				FillLevel: level,
			})
		}
	next:
		sig = sigUpdate(sig, d.delta)
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher: PPF trains down when an unused
// prefetched line is evicted.
func (p *Prefetcher) OnFill(ev cache.FillEvent) {
	if p.ppf != nil && ev.EvictedPrefetched && ev.EvictedAddr != 0 {
		p.ppf.onUselessEviction(ev.EvictedAddr)
	}
}
