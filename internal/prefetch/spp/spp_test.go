package spp

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func missAt(p *Prefetcher, line uint64) []cache.PrefetchReq {
	return p.OnAccess(cache.AccessEvent{LineAddr: line, Hit: false})
}

func TestSignatureWalkOnStride(t *testing.T) {
	p := New(DefaultConfig())
	var reqs []cache.PrefetchReq
	base := uint64(1 << 12)
	for i := uint64(0); i < 40; i++ {
		reqs = missAt(p, base+i*2)
	}
	if len(reqs) == 0 {
		t.Fatal("SPP learned nothing from a constant-stride page walk")
	}
	// Targets follow the +2 path.
	last := base + 39*2
	for k, r := range reqs {
		if r.LineAddr != last+2*uint64(k+1) {
			t.Fatalf("walk target %d: got %d", k, r.LineAddr)
		}
	}
}

func TestConfidenceDecaysOverDepth(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	base := uint64(1 << 14)
	for i := uint64(0); i < 60; i++ {
		missAt(p, base+i)
	}
	reqs := missAt(p, base+60)
	if len(reqs) == 0 || len(reqs) > cfg.MaxDepth {
		t.Fatalf("depth out of bounds: %d", len(reqs))
	}
}

func TestStaysWithinPage(t *testing.T) {
	p := New(DefaultConfig())
	// Walk at the end of a page: predictions crossing the page must be
	// suppressed (no GHR in this implementation).
	page := uint64(77) << 6
	var reqs []cache.PrefetchReq
	for i := uint64(56); i < 63; i++ {
		reqs = missAt(p, page+i)
	}
	for _, r := range reqs {
		if r.LineAddr>>6 != 77 {
			t.Fatalf("prediction crossed the page: %d", r.LineAddr)
		}
	}
}

func TestPPFRejectsAndLearns(t *testing.T) {
	p := New(PPFConfig())
	if p.Name() != "spp-ppf" {
		t.Fatal("wrong name")
	}
	base := uint64(1 << 16)
	for i := uint64(0); i < 60; i++ {
		missAt(p, base+i*3)
	}
	// Simulate useless evictions repeatedly: the filter should learn to
	// reject and the L2-level share should shrink.
	countL2 := func(reqs []cache.PrefetchReq) int {
		n := 0
		for _, r := range reqs {
			if r.FillLevel == cache.L2 {
				n++
			}
		}
		return n
	}
	before := countL2(missAt(p, base+200))
	for round := 0; round < 400; round++ {
		reqs := missAt(p, base+300+uint64(round)*3)
		for _, r := range reqs {
			p.OnFill(cache.FillEvent{EvictedPrefetched: true, EvictedAddr: r.LineAddr})
		}
	}
	after := countL2(missAt(p, base+3000))
	if after > before {
		t.Fatalf("PPF did not learn from useless evictions: before=%d after=%d", before, after)
	}
}

func TestPPFStorageLargerThanSPP(t *testing.T) {
	plain := New(DefaultConfig())
	ppf := New(PPFConfig())
	if ppf.StorageBits() <= plain.StorageBits() {
		t.Fatal("PPF adds perceptron state")
	}
}
