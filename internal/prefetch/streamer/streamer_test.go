package streamer

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestDetectsAscendingStream(t *testing.T) {
	p := New(DefaultConfig())
	var reqs []cache.PrefetchReq
	base := uint64(42 << 6)
	for i := uint64(0); i < 8; i++ {
		reqs = p.OnAccess(cache.AccessEvent{LineAddr: base + i, Hit: false})
	}
	if len(reqs) == 0 {
		t.Fatal("stream not detected")
	}
	for k, r := range reqs {
		if r.LineAddr != base+7+uint64(k+1) {
			t.Fatalf("run-ahead target %d wrong: %d", k, r.LineAddr)
		}
	}
}

func TestDetectsDescendingStream(t *testing.T) {
	p := New(DefaultConfig())
	var reqs []cache.PrefetchReq
	base := uint64(42<<6 + 60)
	for i := uint64(0); i < 8; i++ {
		reqs = p.OnAccess(cache.AccessEvent{LineAddr: base - i, Hit: false})
	}
	if len(reqs) == 0 || reqs[0].LineAddr != base-8 {
		t.Fatalf("descending stream not covered: %v", reqs)
	}
}

func TestStopsAtPageBoundary(t *testing.T) {
	p := New(DefaultConfig())
	var reqs []cache.PrefetchReq
	base := uint64(42 << 6)
	for i := uint64(58); i < 64; i++ {
		reqs = p.OnAccess(cache.AccessEvent{LineAddr: base + i, Hit: false})
	}
	for _, r := range reqs {
		if r.LineAddr>>6 != 42 {
			t.Fatalf("stream crossed the page: %d", r.LineAddr)
		}
	}
}

func TestDistanceRamps(t *testing.T) {
	p := New(DefaultConfig())
	base := uint64(7 << 6)
	var first, last int
	for i := uint64(0); i < 20; i++ {
		reqs := p.OnAccess(cache.AccessEvent{LineAddr: base + i, Hit: false})
		if len(reqs) > 0 && first == 0 {
			first = len(reqs)
		}
		if len(reqs) > 0 {
			last = len(reqs)
		}
	}
	if last <= first {
		t.Fatalf("distance should ramp: first=%d last=%d", first, last)
	}
}

func TestNoStreamOnRandom(t *testing.T) {
	p := New(DefaultConfig())
	x := uint64(5)
	issued := 0
	for i := 0; i < 2000; i++ {
		x = x*2862933555777941757 + 3037000493
		issued += len(p.OnAccess(cache.AccessEvent{LineAddr: x % (1 << 24), Hit: false}))
	}
	if issued > 400 {
		t.Fatalf("random traffic should rarely confirm streams: %d", issued)
	}
}
