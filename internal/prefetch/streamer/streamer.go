// Package streamer implements an Intel-style L2 stream prefetcher: it
// detects ascending or descending access streams within 4 KB regions and
// runs ahead of them with an adaptive distance. Commercial processors pair
// a streamer at L2 with an IP-stride unit at L1D (the paper's Section I
// notes this deployment), making it a natural extra baseline.
package streamer

import "github.com/bertisim/berti/internal/cache"

// Config parameterizes the streamer.
type Config struct {
	// Entries is the number of concurrently tracked streams.
	Entries int
	// MaxDistance bounds the run-ahead distance in lines.
	MaxDistance int
	// TrainThreshold is the number of same-direction accesses needed to
	// confirm a stream.
	TrainThreshold int
	FillLevel      cache.Level
}

// DefaultConfig matches a typical 16-stream L2 streamer.
func DefaultConfig() Config {
	return Config{Entries: 16, MaxDistance: 8, TrainThreshold: 2, FillLevel: cache.L2}
}

// stream tracks one region's direction and confidence.
type stream struct {
	valid     bool
	page      uint64
	lastOff   int
	upVotes   int
	downVotes int
	distance  int
	lru       uint64
}

// Prefetcher is the streamer.
type Prefetcher struct {
	cfg     Config
	streams []stream
	lru     uint64
	scratch []cache.PrefetchReq
}

// New builds a streamer.
func New(cfg Config) *Prefetcher {
	return &Prefetcher{cfg: cfg, streams: make([]stream, cfg.Entries)}
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "streamer" }

// StorageBits implements cache.Prefetcher.
func (p *Prefetcher) StorageBits() int { return p.cfg.Entries * (36 + 6 + 4 + 4 + 4 + 5) }

// OnAccess implements cache.Prefetcher.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	page := ev.LineAddr >> 6
	off := int(ev.LineAddr & 63)
	p.lru++

	var st *stream
	for i := range p.streams {
		if p.streams[i].valid && p.streams[i].page == page {
			st = &p.streams[i]
			break
		}
	}
	if st == nil {
		st = &p.streams[0]
		for i := range p.streams {
			if !p.streams[i].valid {
				st = &p.streams[i]
				break
			}
			if p.streams[i].lru < st.lru {
				st = &p.streams[i]
			}
		}
		*st = stream{valid: true, page: page, lastOff: off, distance: 2}
		st.lru = p.lru
		return nil
	}
	st.lru = p.lru
	switch {
	case off > st.lastOff:
		st.upVotes++
	case off < st.lastOff:
		st.downVotes++
	}
	st.lastOff = off

	dir := 0
	if st.upVotes >= st.downVotes+p.cfg.TrainThreshold {
		dir = 1
	} else if st.downVotes >= st.upVotes+p.cfg.TrainThreshold {
		dir = -1
	}
	if dir == 0 {
		return nil
	}
	// Confirmed stream: run ahead, ramping the distance up.
	if st.distance < p.cfg.MaxDistance {
		st.distance++
	}
	p.scratch = p.scratch[:0]
	for k := 1; k <= st.distance; k++ {
		target := int64(ev.LineAddr) + int64(dir*k)
		if target < 0 || uint64(target)>>6 != page {
			break // streams stop at the 4 KB boundary (physical space)
		}
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  uint64(target),
			FillLevel: p.cfg.FillLevel,
		})
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
