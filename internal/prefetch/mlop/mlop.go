// Package mlop implements Multi-Lookahead Offset Prefetching (Shakerinava
// et al., DPC-3 third place): a BOP extension that maintains an access map
// per memory zone and scores every candidate offset at multiple lookahead
// levels, selecting one best global offset per lookahead each round.
package mlop

import "github.com/bertisim/berti/internal/cache"

// Config parameterizes MLOP (Table III: 128-entry AMT, 500-update rounds,
// degree 16).
type Config struct {
	// AMTEntries is the access-map-table size (zones tracked).
	AMTEntries int
	// MaxOffset bounds candidate offsets to [-MaxOffset, +MaxOffset].
	MaxOffset int
	// Lookaheads is the number of lookahead levels (= max degree).
	Lookaheads int
	// RoundUpdates is the scoring-round length (500).
	RoundUpdates int
	// MinScorePct is the minimum score (as a percentage of the round
	// length) for an offset to be selected at a lookahead level.
	MinScorePct int
	FillLevel   cache.Level
}

// DefaultConfig follows the DPC-3 submission scaled to Table III.
func DefaultConfig() Config {
	return Config{
		AMTEntries:   128,
		MaxOffset:    16,
		Lookaheads:   16,
		RoundUpdates: 500,
		MinScorePct:  20,
		FillLevel:    cache.L1D,
	}
}

// zone is one access-map entry covering a 4 KB page (64 lines).
type zone struct {
	valid bool
	page  uint64
	// seq[i] is the global access sequence number when line i of the
	// zone was last demanded (0 = never).
	seq [64]uint64
	lru uint64
}

// Prefetcher is the MLOP prefetcher.
type Prefetcher struct {
	cfg Config
	amt []zone
	lru uint64
	seq uint64 // global demand-access sequence number
	// scores[offIdx][lookahead-1]
	scores  [][]int
	updates int
	// best[lookahead-1] is the selected offset for that level (0 = none).
	best    []int64
	scratch []cache.PrefetchReq
}

// New builds an MLOP prefetcher.
func New(cfg Config) *Prefetcher {
	p := &Prefetcher{
		cfg:  cfg,
		amt:  make([]zone, cfg.AMTEntries),
		best: make([]int64, cfg.Lookaheads),
	}
	p.scores = make([][]int, 2*cfg.MaxOffset+1)
	for i := range p.scores {
		p.scores[i] = make([]int, cfg.Lookaheads)
	}
	return p
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "mlop" }

// StorageBits implements cache.Prefetcher: AMT maps (64 x 2b state each,
// approximated) + score matrix + selected offsets.
func (p *Prefetcher) StorageBits() int {
	amtBits := p.cfg.AMTEntries * (20 + 64*2)
	scoreBits := len(p.scores) * p.cfg.Lookaheads * 10
	return amtBits + scoreBits + p.cfg.Lookaheads*7
}

func (p *Prefetcher) findZone(page uint64) *zone {
	for i := range p.amt {
		if p.amt[i].valid && p.amt[i].page == page {
			return &p.amt[i]
		}
	}
	return nil
}

func (p *Prefetcher) allocZone(page uint64) *zone {
	v := &p.amt[0]
	for i := range p.amt {
		if !p.amt[i].valid {
			v = &p.amt[i]
			break
		}
		if p.amt[i].lru < v.lru {
			v = &p.amt[i]
		}
	}
	*v = zone{valid: true, page: page}
	return v
}

// OnAccess implements cache.Prefetcher: update the access map, score all
// offsets at all lookaheads, and prefetch with the per-lookahead best
// offsets.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	p.seq++
	page := ev.LineAddr >> 6
	off := int(ev.LineAddr & 63)
	z := p.findZone(page)
	if z == nil {
		z = p.allocZone(page)
	}
	p.lru++
	z.lru = p.lru

	// Score: for each candidate offset d, the access at line-d must have
	// happened, and happened at least `lookahead` accesses ago for the
	// prefetch to have been issued early enough.
	for d := -p.cfg.MaxOffset; d <= p.cfg.MaxOffset; d++ {
		if d == 0 {
			continue
		}
		src := off - d
		if src < 0 || src >= 64 {
			continue
		}
		s := z.seq[src]
		if s == 0 {
			continue
		}
		age := p.seq - s
		for l := 1; l <= p.cfg.Lookaheads; l++ {
			if age >= uint64(l) {
				p.scores[d+p.cfg.MaxOffset][l-1]++
			}
		}
	}
	z.seq[off] = p.seq

	p.updates++
	if p.updates >= p.cfg.RoundUpdates {
		p.endRound()
	}

	// Predict: one prefetch per lookahead level with a selected offset.
	p.scratch = p.scratch[:0]
	for l := 0; l < p.cfg.Lookaheads; l++ {
		d := p.best[l]
		if d == 0 {
			continue
		}
		dup := false
		for k := 0; k < l; k++ {
			if p.best[k] == d {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  uint64(int64(ev.LineAddr) + d),
			FillLevel: p.cfg.FillLevel,
		})
	}
	return p.scratch
}

// endRound picks the best offset per lookahead level and resets scores.
func (p *Prefetcher) endRound() {
	minScore := p.cfg.RoundUpdates * p.cfg.MinScorePct / 100
	for l := 0; l < p.cfg.Lookaheads; l++ {
		bestOff, bestScore := int64(0), minScore
		for i := range p.scores {
			d := int64(i - p.cfg.MaxOffset)
			if d == 0 {
				continue
			}
			if p.scores[i][l] > bestScore {
				bestOff, bestScore = d, p.scores[i][l]
			}
		}
		p.best[l] = bestOff
	}
	for i := range p.scores {
		for l := range p.scores[i] {
			p.scores[i][l] = 0
		}
	}
	p.updates = 0
}

// BestOffsets exposes the selected per-lookahead offsets (tests).
func (p *Prefetcher) BestOffsets() []int64 {
	out := make([]int64, len(p.best))
	copy(out, p.best)
	return out
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
