package mlop

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestLearnsGlobalOffsetOnDenseSweep(t *testing.T) {
	p := New(DefaultConfig())
	// Global sequential sweep (many IPs interleaved does not matter:
	// MLOP is IP-agnostic).
	line := uint64(4096)
	var last []cache.PrefetchReq
	for i := 0; i < 3000; i++ {
		line++
		last = p.OnAccess(cache.AccessEvent{LineAddr: line, Hit: false})
	}
	if len(last) == 0 {
		t.Fatal("no offsets selected on a dense sweep")
	}
	for _, r := range last {
		if int64(r.LineAddr)-int64(line) <= 0 {
			t.Fatalf("sweep is ascending; got non-positive offset target %d (line %d)", r.LineAddr, line)
		}
	}
}

func TestMultipleLookaheadsGiveMultipleOffsets(t *testing.T) {
	p := New(DefaultConfig())
	line := uint64(1 << 20)
	for i := 0; i < 5000; i++ {
		line++
		p.OnAccess(cache.AccessEvent{LineAddr: line, Hit: false})
	}
	offsets := map[int64]bool{}
	for _, d := range p.BestOffsets() {
		if d != 0 {
			offsets[d] = true
		}
	}
	if len(offsets) < 2 {
		t.Fatalf("expected multiple distinct per-lookahead offsets, got %v", p.BestOffsets())
	}
}

func TestNoSelectionOnRandomTraffic(t *testing.T) {
	p := New(DefaultConfig())
	x := uint64(99)
	for i := 0; i < 3000; i++ {
		x = x*2862933555777941757 + 3037000493
		p.OnAccess(cache.AccessEvent{LineAddr: x % (1 << 28), Hit: false})
	}
	for _, d := range p.BestOffsets() {
		if d != 0 {
			t.Fatalf("random traffic selected offset %d", d)
		}
	}
}

func TestZoneThrashingLimitsLearning(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AMTEntries = 4
	p := New(cfg)
	// 64 concurrent far-apart streams with 4 zones tracked: maps thrash.
	cursors := make([]uint64, 64)
	for i := range cursors {
		cursors[i] = uint64(i) << 32
	}
	for i := 0; i < 2000; i++ {
		c := i % len(cursors)
		cursors[c]++
		p.OnAccess(cache.AccessEvent{LineAddr: cursors[c], Hit: false})
	}
	selected := 0
	for _, d := range p.BestOffsets() {
		if d != 0 {
			selected++
		}
	}
	if selected > 4 {
		t.Fatalf("thrashing AMT should suppress most selections, got %d", selected)
	}
}
