package prefetch_test

import (
	"testing"

	"github.com/bertisim/berti/internal/prefetch"
	_ "github.com/bertisim/berti/internal/prefetch/all"
)

func TestRegistryPopulated(t *testing.T) {
	want := []string{"berti", "ip-stride", "mlop", "ipcp", "bop", "next-line",
		"spp", "spp-ppf", "bingo", "ipcp-l2", "misb", "vldp"}
	for _, name := range want {
		e, ok := prefetch.ByName(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		pf := e.New()
		if pf.Name() == "" {
			t.Fatalf("%q has empty Name()", name)
		}
		if pf2 := e.New(); pf2 == pf {
			t.Fatalf("%q factory must build fresh instances", name)
		}
	}
}

func TestAllSorted(t *testing.T) {
	all := prefetch.All()
	if len(all) < 10 {
		t.Fatalf("registry too small: %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Level > all[i].Level {
			t.Fatal("not sorted by level")
		}
	}
}

func TestPageHelpers(t *testing.T) {
	if prefetch.PageOf(130) != 2 {
		t.Fatal("PageOf wrong")
	}
	if prefetch.OffsetOf(130) != 2 {
		t.Fatal("OffsetOf wrong")
	}
	if !prefetch.SamePage(128, 191) || prefetch.SamePage(191, 192) {
		t.Fatal("SamePage wrong")
	}
}
