// Package oracle implements an ideal L1D prefetcher: it reads the trace's
// future and prefetches the next lines the program will touch. It is not a
// realizable design — the paper uses an ideal L1D (Section IV-G) to show
// that CloudSuite has little data-prefetching headroom, and this oracle
// serves the same role: an upper bound on what any L1D prefetcher could do.
package oracle

import (
	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/trace"
)

// Prefetcher prefetches the next Lookahead distinct future lines.
type Prefetcher struct {
	// lines is the trace's line-address sequence (virtual).
	lines []uint64
	// cursor tracks the current position in the line sequence.
	cursor int
	// Lookahead is how many distinct future lines to keep in flight.
	Lookahead int
	scratch   []cache.PrefetchReq
}

// New builds an oracle over the trace that will drive the core.
func New(tr *trace.Slice, lookahead int) *Prefetcher {
	p := &Prefetcher{Lookahead: lookahead}
	p.lines = make([]uint64, len(tr.Records))
	for i := range tr.Records {
		p.lines[i] = tr.Records[i].Addr >> cache.LineShift
	}
	return p
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "oracle" }

// StorageBits implements cache.Prefetcher. An oracle has no hardware
// budget; it reports 0 and must never appear in storage comparisons.
func (p *Prefetcher) StorageBits() int { return 0 }

// OnAccess implements cache.Prefetcher: resynchronize the cursor to the
// observed access (accesses arrive merged and slightly out of order, so the
// match scans a small window), then prefetch the next distinct lines.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	// Resync: find the access's line at or after the cursor (bounded
	// scan keeps the oracle O(1) amortized even when merging skews the
	// event order).
	const syncWindow = 512
	for i := p.cursor; i < len(p.lines) && i < p.cursor+syncWindow; i++ {
		if p.lines[i] == ev.LineAddr {
			p.cursor = i + 1
			break
		}
	}
	// Prefetch the next Lookahead distinct lines. Like Berti, demote to
	// L2 fills when the L1D MSHRs are busy so the oracle never throttles
	// the demand path it is trying to accelerate.
	level := cache.L1D
	if ev.MSHRCap > 0 && ev.MSHROccupancy*100 >= 70*ev.MSHRCap {
		level = cache.L2
	}
	p.scratch = p.scratch[:0]
	seen := ev.LineAddr
	for i := p.cursor; i < len(p.lines) && len(p.scratch) < p.Lookahead; i++ {
		l := p.lines[i]
		if l == seen {
			continue
		}
		dup := false
		for _, r := range p.scratch {
			if r.LineAddr == l {
				dup = true
				break
			}
		}
		if !dup {
			p.scratch = append(p.scratch, cache.PrefetchReq{LineAddr: l, FillLevel: level})
		}
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}

// Reset rewinds the cursor (the harness loops traces).
func (p *Prefetcher) Reset() { p.cursor = 0 }
