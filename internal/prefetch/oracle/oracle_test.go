package oracle

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/trace"
)

func TestPrefetchesFutureLines(t *testing.T) {
	tr := &trace.Slice{}
	lines := []uint64{10, 20, 30, 40, 50}
	for _, l := range lines {
		tr.Append(trace.Record{Addr: l << cache.LineShift, Kind: trace.Load})
	}
	p := New(tr, 3)
	got := p.OnAccess(cache.AccessEvent{LineAddr: 10})
	if len(got) != 3 {
		t.Fatalf("lookahead 3, got %d", len(got))
	}
	for k, want := range []uint64{20, 30, 40} {
		if got[k].LineAddr != want {
			t.Fatalf("future line %d: got %d want %d", k, got[k].LineAddr, want)
		}
	}
}

func TestCursorAdvances(t *testing.T) {
	tr := &trace.Slice{}
	for i := uint64(0); i < 100; i++ {
		tr.Append(trace.Record{Addr: i << cache.LineShift, Kind: trace.Load})
	}
	p := New(tr, 2)
	p.OnAccess(cache.AccessEvent{LineAddr: 0})
	got := p.OnAccess(cache.AccessEvent{LineAddr: 5})
	if got[0].LineAddr != 6 {
		t.Fatalf("cursor did not resync: %v", got)
	}
}

func TestDistinctLinesOnly(t *testing.T) {
	tr := &trace.Slice{}
	for _, l := range []uint64{1, 2, 2, 2, 3, 3, 4} {
		tr.Append(trace.Record{Addr: l << cache.LineShift, Kind: trace.Load})
	}
	p := New(tr, 3)
	got := p.OnAccess(cache.AccessEvent{LineAddr: 1})
	want := []uint64{2, 3, 4}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for k := range want {
		if got[k].LineAddr != want[k] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
