// Package ipstride implements the classic per-IP constant-stride prefetcher
// used as the paper's baseline: a 24-entry fully-associative table in the
// style of Intel's L1D stride prefetcher (Table II).
package ipstride

import "github.com/bertisim/berti/internal/cache"

type entry struct {
	valid    bool
	ipTag    uint64
	lastLine uint64
	stride   int64
	conf     uint8 // 2-bit confidence
	lru      uint64
}

// Config parameterizes the stride table.
type Config struct {
	Entries int
	Degree  int
	// ConfThreshold is the confidence needed to issue prefetches.
	ConfThreshold uint8
}

// DefaultConfig is the Table II baseline: 24 entries, degree 2.
func DefaultConfig() Config {
	return Config{Entries: 24, Degree: 2, ConfThreshold: 2}
}

// Prefetcher is the IP-stride prefetcher.
type Prefetcher struct {
	cfg     Config
	table   []entry
	lru     uint64
	scratch []cache.PrefetchReq
}

// New builds an IP-stride prefetcher.
func New(cfg Config) *Prefetcher {
	return &Prefetcher{cfg: cfg, table: make([]entry, cfg.Entries)}
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "ip-stride" }

// StorageBits implements cache.Prefetcher: tag(16)+line(24)+stride(13)+
// conf(2)+lru(5) per entry.
func (p *Prefetcher) StorageBits() int { return p.cfg.Entries * (16 + 24 + 13 + 2 + 5) }

// OnAccess implements cache.Prefetcher: classic stride training with a
// 2-bit confidence counter.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	e := p.lookup(ev.IP)
	p.lru++
	if e == nil {
		e = p.victim()
		*e = entry{valid: true, ipTag: ev.IP, lastLine: ev.LineAddr, lru: p.lru}
		return nil
	}
	e.lru = p.lru
	delta := int64(ev.LineAddr) - int64(e.lastLine)
	if delta == 0 {
		return nil
	}
	if delta == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		if e.conf == 0 {
			e.stride = delta
		}
	}
	e.lastLine = ev.LineAddr
	if e.conf < p.cfg.ConfThreshold || e.stride == 0 {
		return nil
	}
	p.scratch = p.scratch[:0]
	for k := 1; k <= p.cfg.Degree; k++ {
		target := uint64(int64(ev.LineAddr) + int64(k)*e.stride)
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  target,
			FillLevel: cache.L1D,
		})
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher (no fill-time training).
func (p *Prefetcher) OnFill(cache.FillEvent) {}

func (p *Prefetcher) lookup(ip uint64) *entry {
	for i := range p.table {
		if p.table[i].valid && p.table[i].ipTag == ip {
			return &p.table[i]
		}
	}
	return nil
}

func (p *Prefetcher) victim() *entry {
	v := &p.table[0]
	for i := range p.table {
		if !p.table[i].valid {
			return &p.table[i]
		}
		if p.table[i].lru < v.lru {
			v = &p.table[i]
		}
	}
	return v
}
