package ipstride

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func access(p *Prefetcher, ip, line uint64) []cache.PrefetchReq {
	return p.OnAccess(cache.AccessEvent{IP: ip, LineAddr: line, Hit: false})
}

func TestDetectsConstantStride(t *testing.T) {
	p := New(DefaultConfig())
	var reqs []cache.PrefetchReq
	for i := uint64(0); i < 6; i++ {
		reqs = access(p, 0x400, 100+3*i)
	}
	if len(reqs) != 2 {
		t.Fatalf("expected degree-2 prefetches, got %d", len(reqs))
	}
	if reqs[0].LineAddr != 100+15+3 || reqs[1].LineAddr != 100+15+6 {
		t.Fatalf("wrong targets: %v", reqs)
	}
}

func TestNoPrefetchOnAlternatingStride(t *testing.T) {
	p := New(DefaultConfig())
	line := uint64(100)
	var reqs []cache.PrefetchReq
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			line += 1
		} else {
			line += 2
		}
		reqs = access(p, 0x400, line)
	}
	// The paper's lbm example: +1/+2 alternation never builds confidence.
	if len(reqs) != 0 {
		t.Fatalf("alternating strides must not prefetch, got %v", reqs)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(DefaultConfig())
	var reqs []cache.PrefetchReq
	for i := uint64(0); i < 6; i++ {
		reqs = access(p, 0x400, 1000-5*i)
	}
	if len(reqs) == 0 || reqs[0].LineAddr != 1000-25-5 {
		t.Fatalf("negative stride not covered: %v", reqs)
	}
}

func TestTableThrashWithManyIPs(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	// More streaming IPs than table entries: confidence can never build
	// (the paper's CactuBSSN failure mode for IP-stride).
	issued := 0
	for round := uint64(0); round < 20; round++ {
		for ip := 0; ip < cfg.Entries*4; ip++ {
			reqs := access(p, uint64(0x400+ip*21), round*1000+uint64(ip)*50+round)
			issued += len(reqs)
		}
	}
	if issued != 0 {
		t.Fatalf("thrashing table should not gain confidence, issued %d", issued)
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(DefaultConfig())
	if p.StorageBits() == 0 || p.StorageBits() > 8*1024*8 {
		t.Fatalf("implausible storage: %d bits", p.StorageBits())
	}
}
