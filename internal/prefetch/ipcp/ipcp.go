// Package ipcp implements Instruction Pointer Classifier-based Prefetching
// (Pakalapati & Panda, ISCA 2020), the DPC-3 winner: a bouquet of small
// prefetchers selected per IP class — global stream (GS), constant stride
// (CS), complex stride (CPLX) — with a next-line (NL) fallback.
package ipcp

import "github.com/bertisim/berti/internal/cache"

// Config parameterizes IPCP (Table III: 128-entry IP table).
type Config struct {
	IPEntries   int
	CSPTEntries int // complex-stride prediction table
	RSTEntries  int // region stream table (2 KB regions)
	CSDegree    int
	CPLXDegree  int
	GSDegree    int
	FillLevel   cache.Level
	// NLOnMiss enables the next-line fallback for unclassified misses.
	NLOnMiss bool
}

// DefaultConfig follows the ISCA 2020 design scaled to Table III.
func DefaultConfig() Config {
	return Config{
		IPEntries:   128,
		CSPTEntries: 128,
		RSTEntries:  8,
		CSDegree:    4,
		CPLXDegree:  3,
		GSDegree:    6,
		FillLevel:   cache.L1D,
		NLOnMiss:    true,
	}
}

// L2Config is the multi-level variant (IPCP at L2): lower degrees, fills L2.
func L2Config() Config {
	c := DefaultConfig()
	c.CSDegree = 2
	c.CPLXDegree = 2
	c.GSDegree = 4
	c.FillLevel = cache.L2
	c.NLOnMiss = false
	return c
}

// ipEntry is one IP-table entry.
type ipEntry struct {
	valid    bool
	tag      uint64
	lastLine uint64
	stride   int64
	csConf   uint8 // 2-bit constant-stride confidence
	sig      uint16
	streamed bool // classified GS in the current region epoch
	dirUp    bool
	lru      uint64
}

// csptEntry is one complex-stride prediction-table entry.
type csptEntry struct {
	stride int64
	conf   uint8 // 2-bit
}

// regionEntry tracks density and direction of a 2 KB region (32 lines).
type regionEntry struct {
	valid   bool
	region  uint64
	bitmap  uint32
	touched int
	posDir  int
	negDir  int
	lastOff int
	dense   bool
	lru     uint64
}

// Prefetcher is the IPCP bouquet.
type Prefetcher struct {
	cfg     Config
	ips     []ipEntry
	cspt    []csptEntry
	rst     []regionEntry
	lru     uint64
	scratch []cache.PrefetchReq
}

// New builds an IPCP prefetcher.
func New(cfg Config) *Prefetcher {
	return &Prefetcher{
		cfg:  cfg,
		ips:  make([]ipEntry, cfg.IPEntries),
		cspt: make([]csptEntry, cfg.CSPTEntries),
		rst:  make([]regionEntry, cfg.RSTEntries),
	}
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "ipcp" }

// StorageBits implements cache.Prefetcher.
func (p *Prefetcher) StorageBits() int {
	ipBits := p.cfg.IPEntries * (9 + 24 + 7 + 2 + 7 + 2 + 7)
	csptBits := p.cfg.CSPTEntries * (7 + 2)
	rstBits := p.cfg.RSTEntries * (20 + 32 + 6 + 6 + 2)
	return ipBits + csptBits + rstBits
}

func (p *Prefetcher) ipFor(ip uint64) *ipEntry {
	h := ip ^ ip>>7 ^ ip>>15
	idx := int(h % uint64(len(p.ips)))
	e := &p.ips[idx]
	tag := (h / uint64(len(p.ips))) & 0x1FF
	if !e.valid || e.tag != tag {
		*e = ipEntry{valid: true, tag: tag}
	}
	p.lru++
	e.lru = p.lru
	return e
}

// regionOf returns the 2 KB region number and the line offset within it.
func regionOf(line uint64) (uint64, int) { return line >> 5, int(line & 31) }

// trackRegion updates the region stream table and returns the entry.
func (p *Prefetcher) trackRegion(line uint64) *regionEntry {
	region, off := regionOf(line)
	var e *regionEntry
	for i := range p.rst {
		if p.rst[i].valid && p.rst[i].region == region {
			e = &p.rst[i]
			break
		}
	}
	if e == nil {
		e = &p.rst[0]
		for i := range p.rst {
			if !p.rst[i].valid {
				e = &p.rst[i]
				break
			}
			if p.rst[i].lru < e.lru {
				e = &p.rst[i]
			}
		}
		*e = regionEntry{valid: true, region: region, lastOff: off}
	}
	p.lru++
	e.lru = p.lru
	bit := uint32(1) << off
	if e.bitmap&bit == 0 {
		e.bitmap |= bit
		e.touched++
	}
	if off > e.lastOff {
		e.posDir++
	} else if off < e.lastOff {
		e.negDir++
	}
	e.lastOff = off
	// Dense region: 75% of lines touched => stream phase.
	if e.touched >= 24 {
		e.dense = true
	}
	return e
}

// OnAccess implements cache.Prefetcher.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	e := p.ipFor(ev.IP)
	region := p.trackRegion(ev.LineAddr)
	p.scratch = p.scratch[:0]

	var stride int64
	if e.lastLine != 0 {
		stride = int64(ev.LineAddr) - int64(e.lastLine)
	}
	first := e.lastLine == 0
	e.lastLine = ev.LineAddr

	if !first && stride != 0 {
		// CS training.
		if stride == e.stride {
			if e.csConf < 3 {
				e.csConf++
			}
		} else {
			if e.csConf > 0 {
				e.csConf--
			}
			if e.csConf == 0 {
				e.stride = stride
			}
		}
		// CPLX training: the previous signature should predict this
		// stride.
		c := &p.cspt[int(e.sig)%len(p.cspt)]
		if c.stride == stride {
			if c.conf < 3 {
				c.conf++
			}
		} else {
			if c.conf > 0 {
				c.conf--
			} else {
				c.stride = stride
			}
		}
		e.sig = updateSig(e.sig, stride)
	}

	// Classification priority: GS > CS > CPLX > NL.
	switch {
	case region.dense:
		// Global stream: spray the next lines in the dominant
		// direction. High coverage on streams, but inaccurate on
		// irregular dense phases (the GAP failure mode in §IV-C).
		dir := int64(1)
		if region.negDir > region.posDir {
			dir = -1
		}
		e.streamed = true
		for k := 1; k <= p.cfg.GSDegree; k++ {
			p.add(uint64(int64(ev.LineAddr) + dir*int64(k)))
		}
	case e.csConf >= 2 && e.stride != 0:
		for k := 1; k <= p.cfg.CSDegree; k++ {
			p.add(uint64(int64(ev.LineAddr) + int64(k)*e.stride))
		}
	default:
		// CPLX: chain predictions through the signature table while
		// confidence holds.
		sig := e.sig
		base := int64(ev.LineAddr)
		issued := false
		for k := 0; k < p.cfg.CPLXDegree; k++ {
			c := p.cspt[int(sig)%len(p.cspt)]
			if c.conf < 2 || c.stride == 0 {
				break
			}
			base += c.stride
			p.add(uint64(base))
			issued = true
			sig = updateSig(sig, c.stride)
		}
		if !issued && p.cfg.NLOnMiss && !ev.Hit {
			p.add(ev.LineAddr + 1)
		}
	}
	return p.scratch
}

func (p *Prefetcher) add(target uint64) {
	p.scratch = append(p.scratch, cache.PrefetchReq{
		LineAddr:  target,
		FillLevel: p.cfg.FillLevel,
	})
}

// updateSig folds a stride into the 7-bit CPLX signature.
func updateSig(sig uint16, stride int64) uint16 {
	return ((sig << 1) ^ uint16(stride&0x3F)) & 0x7F
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
