package ipcp

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestCSClassCoversConstantStride(t *testing.T) {
	p := New(DefaultConfig())
	var reqs []cache.PrefetchReq
	// Spread lines across regions so GS density never triggers.
	for i := uint64(0); i < 8; i++ {
		reqs = p.OnAccess(cache.AccessEvent{IP: 0x400, LineAddr: 1000 + 7*i, Hit: false})
	}
	if len(reqs) != DefaultConfig().CSDegree {
		t.Fatalf("CS degree expected %d, got %d", DefaultConfig().CSDegree, len(reqs))
	}
	base := uint64(1000 + 7*7)
	for k, r := range reqs {
		if r.LineAddr != base+uint64(k+1)*7 {
			t.Fatalf("CS target %d wrong: %d", k, r.LineAddr)
		}
	}
}

func TestCPLXClassCoversRepeatingDeltaPattern(t *testing.T) {
	p := New(DefaultConfig())
	// The paper's lbm example: +1/+2 alternation; CS never gains
	// confidence, CPLX signature chain should.
	line := uint64(1 << 20)
	deltas := []int64{1, 2}
	var reqs []cache.PrefetchReq
	for i := 0; i < 400; i++ {
		line = uint64(int64(line) + deltas[i%2])
		reqs = p.OnAccess(cache.AccessEvent{IP: 0x404, LineAddr: line, Hit: false})
	}
	if len(reqs) == 0 {
		t.Fatal("CPLX failed to chain a stable delta pattern")
	}
}

func TestGSClassSpraysOnDenseRegion(t *testing.T) {
	p := New(DefaultConfig())
	// Touch 24+ lines of one 2 KB region from many IPs: density flips
	// the region to a global stream and GS sprays next lines.
	var reqs []cache.PrefetchReq
	for i := uint64(0); i < 30; i++ {
		reqs = p.OnAccess(cache.AccessEvent{IP: 0x400 + i*21, LineAddr: 64*32 + i, Hit: false})
	}
	if len(reqs) != DefaultConfig().GSDegree {
		t.Fatalf("GS degree expected %d, got %d", DefaultConfig().GSDegree, len(reqs))
	}
	for k, r := range reqs {
		if r.LineAddr != 64*32+29+uint64(k+1) {
			t.Fatalf("GS should spray next lines, got %v", reqs)
		}
	}
}

func TestNLFallbackOnUnclassifiedMiss(t *testing.T) {
	p := New(DefaultConfig())
	reqs := p.OnAccess(cache.AccessEvent{IP: 0x999, LineAddr: 777777, Hit: false})
	if len(reqs) != 1 || reqs[0].LineAddr != 777778 {
		t.Fatalf("expected next-line fallback, got %v", reqs)
	}
}

func TestL2ConfigFillsL2(t *testing.T) {
	p := New(L2Config())
	var reqs []cache.PrefetchReq
	for i := uint64(0); i < 8; i++ {
		reqs = p.OnAccess(cache.AccessEvent{IP: 0x400, LineAddr: 5000 + 9*i, Hit: false})
	}
	if len(reqs) == 0 {
		t.Fatal("no prefetches")
	}
	for _, r := range reqs {
		if r.FillLevel != cache.L2 {
			t.Fatalf("L2 variant must fill L2, got %v", r.FillLevel)
		}
	}
}
