package prefetch

import (
	"fmt"
	"sort"
	"sync"

	"github.com/bertisim/berti/internal/cache"
)

// Factory builds a fresh prefetcher instance (one per core per run).
type Factory func() cache.Prefetcher

// Level says where a registered prefetcher is designed to sit.
type Level int

// Deployment levels.
const (
	AtL1D Level = iota
	AtL2
)

// Entry describes a registered prefetcher design.
type Entry struct {
	Name    string
	Level   Level
	New     Factory
	Comment string
}

var (
	regMu    sync.Mutex
	registry = map[string]Entry{}
)

// Register adds a prefetcher design to the registry. Subpackages register
// themselves in init functions; import them blank to populate:
//
//	import _ "github.com/bertisim/berti/internal/prefetch/all"
func Register(e Entry) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate %q", e.Name))
	}
	registry[e.Name] = e
}

// ByName returns a registered design.
func ByName(name string) (Entry, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[name]
	return e, ok
}

// All returns registered designs sorted by level then name.
func All() []Entry {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].Name < out[j].Name
	})
	return out
}
