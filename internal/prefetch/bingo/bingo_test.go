package bingo

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestFootprintReplay(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x400abc
	// Visit region 10 with a distinctive footprint.
	region := uint64(10)
	footprint := []uint64{0, 3, 5, 9, 17}
	for _, off := range footprint {
		p.OnAccess(cache.AccessEvent{IP: pc, LineAddr: region*RegionLines + off, Hit: false})
	}
	// Force the AT entry out by touching many other regions twice.
	for r := uint64(100); r < 100+uint64(DefaultConfig().ATEntries)+4; r++ {
		p.OnAccess(cache.AccessEvent{IP: pc + 1, LineAddr: r * RegionLines, Hit: false})
		p.OnAccess(cache.AccessEvent{IP: pc + 1, LineAddr: r*RegionLines + 1, Hit: false})
	}
	// Trigger a fresh region with the same PC+offset event: the recorded
	// footprint should replay (anchored at the new region base).
	newRegion := uint64(5000)
	reqs := p.OnAccess(cache.AccessEvent{IP: pc, LineAddr: newRegion * RegionLines, Hit: false})
	if len(reqs) == 0 {
		t.Fatal("no footprint replay")
	}
	want := map[uint64]bool{}
	for _, off := range footprint[1:] { // trigger offset itself excluded
		want[newRegion*RegionLines+off] = true
	}
	for _, r := range reqs {
		if !want[r.LineAddr] {
			t.Fatalf("unexpected prefetch %d (region-relative %d)", r.LineAddr, r.LineAddr%RegionLines)
		}
		delete(want, r.LineAddr)
	}
	if len(want) != 0 {
		t.Fatalf("missing footprint lines: %v", want)
	}
}

func TestNoReplayWithoutHistory(t *testing.T) {
	p := New(DefaultConfig())
	reqs := p.OnAccess(cache.AccessEvent{IP: 1, LineAddr: 999 * RegionLines, Hit: false})
	if len(reqs) != 0 {
		t.Fatalf("cold PHT must not prefetch, got %v", reqs)
	}
}

func TestFillLevelIsL2(t *testing.T) {
	if DefaultConfig().FillLevel != cache.L2 {
		t.Fatal("Bingo is an L2 prefetcher in the paper's evaluation")
	}
}
