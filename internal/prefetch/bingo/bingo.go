// Package bingo implements the Bingo spatial prefetcher (Bakhshalipour et
// al., HPCA 2019): it associates the footprint of a 2 KB region with both a
// long event (PC+Address) and a short event (PC+Offset) in a single pattern
// history table, looking up the most specific event that hits.
package bingo

import "github.com/bertisim/berti/internal/cache"

// RegionLines is the number of 64-byte lines in a 2 KB region.
const RegionLines = 32

// Config parameterizes Bingo (Table III: 2 KB regions, 64/128/4K-entry
// FT/AT/PHT).
type Config struct {
	FTEntries  int
	ATEntries  int
	PHTEntries int
	PHTWays    int
	FillLevel  cache.Level
}

// DefaultConfig follows Table III.
func DefaultConfig() Config {
	return Config{FTEntries: 64, ATEntries: 128, PHTEntries: 4096, PHTWays: 16, FillLevel: cache.L2}
}

// ftEntry is a filter-table entry: a region seen exactly once.
type ftEntry struct {
	valid  bool
	region uint64
	pc     uint64
	offset int
	lru    uint64
}

// atEntry is an accumulation-table entry: an active region's footprint.
type atEntry struct {
	valid  bool
	region uint64
	pc     uint64
	offset int
	bitmap uint32
	lru    uint64
}

// phtEntry is one pattern-history-table way.
type phtEntry struct {
	valid   bool
	longTag uint64 // hash of PC+Address (trigger line)
	bitmap  uint32
	lru     uint64
}

// Prefetcher is the Bingo prefetcher.
type Prefetcher struct {
	cfg     Config
	ft      []ftEntry
	at      []atEntry
	pht     []phtEntry // PHTEntries/PHTWays sets x PHTWays
	lru     uint64
	scratch []cache.PrefetchReq
}

// New builds a Bingo prefetcher.
func New(cfg Config) *Prefetcher {
	return &Prefetcher{
		cfg: cfg,
		ft:  make([]ftEntry, cfg.FTEntries),
		at:  make([]atEntry, cfg.ATEntries),
		pht: make([]phtEntry, cfg.PHTEntries),
	}
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "bingo" }

// StorageBits implements cache.Prefetcher: Bingo is the heavyweight
// baseline (~46 KB per the paper's Fig. 7 placement).
func (p *Prefetcher) StorageBits() int {
	ftBits := p.cfg.FTEntries * (30 + 16 + 5)
	atBits := p.cfg.ATEntries * (30 + 16 + 5 + RegionLines)
	phtBits := p.cfg.PHTEntries * (30 + RegionLines + 4)
	return ftBits + atBits + phtBits
}

// shortEvent hashes PC+Offset; longEvent hashes PC+Address.
func shortEvent(pc uint64, offset int) uint64 {
	return (pc << 5) ^ uint64(offset)
}

func longEvent(pc, line uint64) uint64 {
	return pc ^ (line << 7) ^ line>>11
}

// phtSet returns the set slice for a short event.
func (p *Prefetcher) phtSet(ev uint64) []phtEntry {
	sets := p.cfg.PHTEntries / p.cfg.PHTWays
	s := int(ev % uint64(sets))
	return p.pht[s*p.cfg.PHTWays : (s+1)*p.cfg.PHTWays]
}

// OnAccess implements cache.Prefetcher.
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	region := ev.LineAddr / RegionLines
	offset := int(ev.LineAddr % RegionLines)
	p.lru++

	// Already accumulating?
	if a := p.findAT(region); a != nil {
		a.bitmap |= 1 << offset
		a.lru = p.lru
		return nil
	}
	// Second access to a filtered region: promote FT -> AT.
	if f := p.findFT(region); f != nil {
		a := p.victimAT()
		if a.valid {
			p.commit(a) // evicted region's footprint trains the PHT
		}
		*a = atEntry{
			valid:  true,
			region: region,
			pc:     f.pc,
			offset: f.offset,
			bitmap: uint32(1)<<f.offset | uint32(1)<<offset,
			lru:    p.lru,
		}
		f.valid = false
		return nil
	}
	// Trigger access: allocate FT and predict from the PHT.
	f := p.victimFT()
	*f = ftEntry{valid: true, region: region, pc: ev.IP, offset: offset, lru: p.lru}
	return p.predict(ev.IP, ev.LineAddr, region, offset)
}

func (p *Prefetcher) findFT(region uint64) *ftEntry {
	for i := range p.ft {
		if p.ft[i].valid && p.ft[i].region == region {
			return &p.ft[i]
		}
	}
	return nil
}

func (p *Prefetcher) victimFT() *ftEntry {
	v := &p.ft[0]
	for i := range p.ft {
		if !p.ft[i].valid {
			return &p.ft[i]
		}
		if p.ft[i].lru < v.lru {
			v = &p.ft[i]
		}
	}
	return v
}

func (p *Prefetcher) findAT(region uint64) *atEntry {
	for i := range p.at {
		if p.at[i].valid && p.at[i].region == region {
			return &p.at[i]
		}
	}
	return nil
}

func (p *Prefetcher) victimAT() *atEntry {
	v := &p.at[0]
	for i := range p.at {
		if !p.at[i].valid {
			return &p.at[i]
		}
		if p.at[i].lru < v.lru {
			v = &p.at[i]
		}
	}
	return v
}

// commit stores a finished region's footprint in the PHT under its trigger
// events.
func (p *Prefetcher) commit(a *atEntry) {
	se := shortEvent(a.pc, a.offset)
	le := longEvent(a.pc, a.region*RegionLines+uint64(a.offset))
	set := p.phtSet(se)
	victim := &set[0]
	for i := range set {
		if set[i].valid && set[i].longTag == le {
			victim = &set[i]
			break
		}
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	p.lru++
	*victim = phtEntry{valid: true, longTag: le, bitmap: a.bitmap, lru: p.lru}
}

// predict looks up PC+Address first, then falls back to PC+Offset, and
// prefetches the stored footprint anchored at the region base.
func (p *Prefetcher) predict(pc, line, region uint64, offset int) []cache.PrefetchReq {
	se := shortEvent(pc, offset)
	le := longEvent(pc, line)
	set := p.phtSet(se)
	var match *phtEntry
	// Long event (most specific) first.
	for i := range set {
		if set[i].valid && set[i].longTag == le {
			match = &set[i]
			break
		}
	}
	if match == nil {
		// Short event: any way in the set (union of footprints would
		// also be reasonable; most-recent is what Bingo reports works
		// best).
		for i := range set {
			if set[i].valid && (match == nil || set[i].lru > match.lru) {
				match = &set[i]
			}
		}
	}
	if match == nil {
		return nil
	}
	p.lru++
	match.lru = p.lru
	p.scratch = p.scratch[:0]
	base := region * RegionLines
	for b := 0; b < RegionLines; b++ {
		if match.bitmap&(1<<b) == 0 || b == offset {
			continue
		}
		p.scratch = append(p.scratch, cache.PrefetchReq{
			LineAddr:  base + uint64(b),
			FillLevel: p.cfg.FillLevel,
		})
	}
	return p.scratch
}

// OnFill implements cache.Prefetcher.
func (p *Prefetcher) OnFill(cache.FillEvent) {}
