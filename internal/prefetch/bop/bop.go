// Package bop implements Best-Offset Prefetching (Michaud, HPCA 2016), the
// DPC-2 winner: a degree-one prefetcher that learns the single global
// offset maximizing timely coverage, using a recent-requests (RR) table to
// test whether X - offset was recently demanded when X arrives.
package bop

import "github.com/bertisim/berti/internal/cache"

// offsetList is Michaud's 52-offset candidate list: integers of the form
// 2^i * 3^j * 5^k up to 256 (positive only, as in the original design).
var offsetList = buildOffsets()

func buildOffsets() []int64 {
	var out []int64
	for n := int64(1); n <= 256; n++ {
		m := n
		for _, f := range []int64{2, 3, 5} {
			for m%f == 0 {
				m /= f
			}
		}
		if m == 1 {
			out = append(out, n)
		}
	}
	return out
}

// Config parameterizes BOP.
type Config struct {
	// RRSize is the recent-requests table size (direct mapped).
	RRSize int
	// ScoreMax ends a learning round when a score saturates (31).
	ScoreMax int
	// RoundMax ends a learning round after this many updates (100).
	RoundMax int
	// BadScore disables prefetching when the best score is below it (1).
	BadScore int
	// FillLevel is where prefetches land (L2 in the original; L1D when
	// deployed as an L1D prefetcher).
	FillLevel cache.Level
}

// DefaultConfig follows the HPCA 2016 parameters.
func DefaultConfig() Config {
	return Config{RRSize: 64, ScoreMax: 31, RoundMax: 100, BadScore: 1, FillLevel: cache.L1D}
}

// Prefetcher is the BOP prefetcher.
type Prefetcher struct {
	cfg Config
	rr  []uint64 // RR table: line addresses (direct-mapped, 0 = empty)

	scores    []int
	testIdx   int // next offset index to test
	roundLen  int
	bestOff   int64
	bestScore int
	active    bool
	scratch   []cache.PrefetchReq
}

// New builds a BOP prefetcher.
func New(cfg Config) *Prefetcher {
	return &Prefetcher{
		cfg:     cfg,
		rr:      make([]uint64, cfg.RRSize),
		scores:  make([]int, len(offsetList)),
		bestOff: 1,
		active:  true,
		scratch: make([]cache.PrefetchReq, 0, 1),
	}
}

// Name implements cache.Prefetcher.
func (p *Prefetcher) Name() string { return "bop" }

// StorageBits implements cache.Prefetcher: RR tags (12b each) + scores
// (5b x 52) + control.
func (p *Prefetcher) StorageBits() int {
	return p.cfg.RRSize*12 + len(offsetList)*5 + 16
}

func (p *Prefetcher) rrIndex(line uint64) int {
	h := line ^ line>>8 ^ line>>16
	return int(h % uint64(len(p.rr)))
}

func (p *Prefetcher) rrInsert(line uint64) { p.rr[p.rrIndex(line)] = line }

func (p *Prefetcher) rrHit(line uint64) bool { return p.rr[p.rrIndex(line)] == line }

// BestOffset exposes the learned global offset (Fig. 3 harness).
func (p *Prefetcher) BestOffset() int64 { return p.bestOff }

// OnAccess implements cache.Prefetcher: one offset is tested per demand
// access (misses and prefetched hits, per the original proposal).
func (p *Prefetcher) OnAccess(ev cache.AccessEvent) []cache.PrefetchReq {
	if ev.Hit && !ev.PrefetchHit {
		return nil
	}
	// Learning: test one candidate offset against the RR table.
	off := offsetList[p.testIdx]
	if base := uint64(int64(ev.LineAddr) - off); int64(ev.LineAddr)-off > 0 && p.rrHit(base) {
		p.scores[p.testIdx]++
		if p.scores[p.testIdx] >= p.cfg.ScoreMax {
			p.endRound()
		}
	}
	p.testIdx++
	if p.testIdx >= len(offsetList) {
		p.testIdx = 0
		p.roundLen++
		if p.roundLen >= p.cfg.RoundMax {
			p.endRound()
		}
	}
	if !p.active {
		return nil
	}
	p.scratch = p.scratch[:0]
	p.scratch = append(p.scratch, cache.PrefetchReq{
		LineAddr:  ev.LineAddr + uint64(p.bestOff),
		FillLevel: p.cfg.FillLevel,
	})
	return p.scratch
}

// endRound selects the new best offset and resets scores.
func (p *Prefetcher) endRound() {
	best, bestScore := int64(1), -1
	for i, s := range p.scores {
		if s > bestScore {
			best, bestScore = offsetList[i], s
		}
		p.scores[i] = 0
	}
	p.bestOff, p.bestScore = best, bestScore
	p.active = bestScore > p.cfg.BadScore
	p.testIdx = 0
	p.roundLen = 0
}

// OnFill implements cache.Prefetcher: for timeliness, the RR table records
// X - D when line X fills, so offsets are only credited when the fetch
// would have completed in time.
func (p *Prefetcher) OnFill(ev cache.FillEvent) {
	base := int64(ev.LineAddr) - p.bestOff
	if base > 0 {
		p.rrInsert(uint64(base))
	}
}
