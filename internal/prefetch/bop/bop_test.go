package bop

import (
	"testing"

	"github.com/bertisim/berti/internal/cache"
)

func TestOffsetListShape(t *testing.T) {
	if len(offsetList) != 52 {
		t.Fatalf("Michaud's list has 52 offsets, got %d", len(offsetList))
	}
	for _, o := range offsetList {
		m := o
		for _, f := range []int64{2, 3, 5} {
			for m%f == 0 {
				m /= f
			}
		}
		if m != 1 {
			t.Fatalf("offset %d is not 2^i*3^j*5^k", o)
		}
	}
}

func TestLearnsStreamOffset(t *testing.T) {
	p := New(DefaultConfig())
	// Miss stream with stride 1 and fills completing in order: every
	// offset test for +1.. should score via the RR table.
	line := uint64(1000)
	for i := 0; i < 4000; i++ {
		line++
		p.OnAccess(cache.AccessEvent{LineAddr: line, Hit: false})
		p.OnFill(cache.FillEvent{LineAddr: line, Latency: 100})
	}
	if p.BestOffset() <= 0 {
		t.Fatalf("no positive best offset learned: %d", p.BestOffset())
	}
	reqs := p.OnAccess(cache.AccessEvent{LineAddr: line + 1, Hit: false})
	if len(reqs) != 1 {
		t.Fatalf("BOP is degree one, got %d", len(reqs))
	}
	if reqs[0].LineAddr != line+1+uint64(p.BestOffset()) {
		t.Fatalf("target %d not current+bestOffset", reqs[0].LineAddr)
	}
}

func TestDisablesOnRandomTraffic(t *testing.T) {
	p := New(DefaultConfig())
	x := uint64(12345)
	for i := 0; i < 30000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		line := x % (1 << 30)
		p.OnAccess(cache.AccessEvent{LineAddr: line, Hit: false})
		if i%3 == 0 {
			p.OnFill(cache.FillEvent{LineAddr: line, Latency: 100})
		}
	}
	if p.active {
		t.Fatal("BOP should disable prefetching on random traffic (score below BadScore)")
	}
}

func TestIgnoresPlainHits(t *testing.T) {
	p := New(DefaultConfig())
	if reqs := p.OnAccess(cache.AccessEvent{LineAddr: 5, Hit: true}); reqs != nil {
		t.Fatal("plain hits must not trigger BOP")
	}
}
