// Package prefetch hosts the baseline hardware prefetchers the paper
// compares against (one subpackage per design) and small shared helpers.
//
// Every prefetcher implements cache.Prefetcher and is constructed by a
// factory so per-core instances stay independent in multi-core runs.
package prefetch

// PageLineShift converts a line address to its 4 KB page number
// (12 - 6 = 6 line bits per page).
const PageLineShift = 6

// LinesPerPage is the number of 64-byte lines in a 4 KB page.
const LinesPerPage = 1 << PageLineShift

// PageOf returns the 4 KB page number of a line address.
func PageOf(lineAddr uint64) uint64 { return lineAddr >> PageLineShift }

// OffsetOf returns the line offset within its 4 KB page.
func OffsetOf(lineAddr uint64) int { return int(lineAddr & (LinesPerPage - 1)) }

// SamePage reports whether two line addresses share a 4 KB page.
func SamePage(a, b uint64) bool { return PageOf(a) == PageOf(b) }
