// Package energy computes the dynamic energy of the memory hierarchy the
// way the paper does (Section IV-A): per-access energies for each cache
// level and DRAM (CACTI-P-class values at 22 nm and a Micron-calculator-
// class DRAM access energy) multiplied by the simulator's access counts.
//
// Absolute joules are not the point — the paper's Figures 1(b) and 15 plot
// energy normalized to a no-prefetching run, and that ratio is driven by
// the per-level access counts, which our simulator measures directly.
package energy

import "github.com/bertisim/berti/internal/sim"

// Model holds per-access dynamic energies in picojoules.
type Model struct {
	// Tag-only probe and full access energies per level.
	L1DAccess float64
	L1DTag    float64
	L2Access  float64
	L2Tag     float64
	LLCAccess float64
	LLCTag    float64
	// DRAMAccess is the energy of one 64-byte line transfer including
	// activation amortization and I/O.
	DRAMAccess float64
}

// Default22nm returns CACTI-P-class values for the Table II geometries at
// 22 nm (48 KB L1D, 512 KB L2, 2 MB LLC slice) and a DDR-class DRAM access
// energy. Values in pJ per access.
func Default22nm() Model {
	return Model{
		L1DAccess: 22, L1DTag: 4,
		L2Access: 80, L2Tag: 9,
		LLCAccess: 260, LLCTag: 20,
		DRAMAccess: 15000,
	}
}

// Breakdown is the per-level dynamic energy of one run, in picojoules.
type Breakdown struct {
	L1D, L2, LLC, DRAM float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.L1D + b.L2 + b.LLC + b.DRAM }

// Compute folds a simulation result into a dynamic-energy breakdown.
// Every access type the simulator counts is charged: demand lookups,
// prefetch tag probes, fills (writes into the array), writebacks, and
// DRAM reads/writes.
func Compute(m Model, r *sim.Result) Breakdown {
	var b Breakdown
	for i := range r.Cores {
		l1 := &r.Cores[i].L1D
		b.L1D += float64(l1.DemandAccesses)*m.L1DAccess +
			float64(l1.PrefTagProbe)*m.L1DTag +
			float64(l1.TotalFills)*m.L1DAccess +
			float64(l1.WritebacksOut)*m.L1DAccess
		l2 := &r.Cores[i].L2
		b.L2 += float64(l2.DemandAccesses)*m.L2Access +
			float64(l2.PrefTagProbe)*m.L2Tag +
			float64(l2.TotalFills+l2.PrefFills)*m.L2Access +
			float64(l2.WritebacksIn+l2.WritebacksOut)*m.L2Access
	}
	llc := &r.LLC
	b.LLC = float64(llc.DemandAccesses)*m.LLCAccess +
		float64(llc.PrefTagProbe)*m.LLCTag +
		float64(llc.TotalFills+llc.PrefFills)*m.LLCAccess +
		float64(llc.WritebacksIn+llc.WritebacksOut)*m.LLCAccess
	b.DRAM = float64(r.DRAM.Reads+r.DRAM.Writes) * m.DRAMAccess
	return b
}
