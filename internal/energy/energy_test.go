package energy

import (
	"testing"

	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/stats"
)

func resultWith(l1Acc, dramReads uint64) *sim.Result {
	r := &sim.Result{}
	r.Cores = append(r.Cores, sim.CoreResult{
		L1D: stats.CacheStats{DemandAccesses: l1Acc},
	})
	r.DRAM = stats.DRAMStats{Reads: dramReads}
	return r
}

func TestEnergyScalesWithAccesses(t *testing.T) {
	m := Default22nm()
	small := Compute(m, resultWith(1000, 10))
	big := Compute(m, resultWith(2000, 20))
	if big.Total() <= small.Total() {
		t.Fatal("energy must grow with access counts")
	}
	if big.L1D != 2*small.L1D {
		t.Fatalf("L1D energy not linear: %f vs %f", big.L1D, small.L1D)
	}
}

func TestDRAMDominatesPerAccess(t *testing.T) {
	m := Default22nm()
	if m.DRAMAccess < 10*m.LLCAccess {
		t.Fatal("a DRAM access must cost far more than an LLC access")
	}
	if m.L1DAccess >= m.L2Access || m.L2Access >= m.LLCAccess {
		t.Fatal("per-access energy must grow with capacity")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{L1D: 1, L2: 2, LLC: 3, DRAM: 4}
	if b.Total() != 10 {
		t.Fatalf("total = %f", b.Total())
	}
}
