package vm

import (
	"testing"
	"testing/quick"
)

func TestPageTableStable(t *testing.T) {
	pt := NewPageTable(1)
	f1 := pt.Translate(100)
	f2 := pt.Translate(100)
	if f1 != f2 {
		t.Fatal("translation not stable across calls")
	}
}

func TestPageTableDistinct(t *testing.T) {
	pt := NewPageTable(1)
	seen := map[uint64]uint64{}
	for vpn := uint64(0); vpn < 10000; vpn++ {
		f := pt.Translate(vpn)
		if prev, dup := seen[f]; dup {
			t.Fatalf("frame %d assigned to both vpn %d and %d", f, prev, vpn)
		}
		seen[f] = vpn
	}
	if pt.Pages() != 10000 {
		t.Fatalf("pages = %d", pt.Pages())
	}
}

func TestPageTableSeedsDiffer(t *testing.T) {
	a := NewPageTable(1)
	b := NewPageTable(2)
	same := 0
	for vpn := uint64(0); vpn < 100; vpn++ {
		if a.Translate(vpn) == b.Translate(vpn) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical frame layouts")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := MustNewTLB(16, 4)
	if _, ok := tlb.Lookup(5); ok {
		t.Fatal("hit on empty TLB")
	}
	tlb.Insert(5, 500)
	if pfn, ok := tlb.Lookup(5); !ok || pfn != 500 {
		t.Fatalf("lookup after insert: %d %v", pfn, ok)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := MustNewTLB(4, 4) // single set
	for vpn := uint64(0); vpn < 4; vpn++ {
		tlb.Insert(vpn*4, vpn) // same set (4 sets... with 4 ways 1 set)
	}
	// All four fit (one set of 4 ways with entries=4,ways=4 -> 1 set).
	tlb.Lookup(0) // touch 0 so it is MRU
	tlb.Insert(100, 99)
	if _, ok := tlb.Lookup(0); !ok {
		t.Fatal("MRU entry was evicted")
	}
}

func TestMMUDemandAlwaysTranslates(t *testing.T) {
	m := MustNewMMU(DefaultMMUConfig(), 1)
	p1, lat1 := m.TranslateDemand(0x1234_5678, 0)
	if lat1 == 0 {
		t.Fatal("first demand translation should cost a walk")
	}
	p2, lat2 := m.TranslateDemand(0x1234_5678, 0)
	if p1 != p2 {
		t.Fatal("translation changed")
	}
	if lat2 >= lat1 {
		t.Fatalf("second translation should be faster: %d vs %d", lat2, lat1)
	}
	if p1&0xFFF != 0x678 {
		t.Fatalf("page offset not preserved: %x", p1)
	}
}

func TestMMUPrefetchDropsOnSTLBMiss(t *testing.T) {
	m := MustNewMMU(DefaultMMUConfig(), 1)
	if _, _, ok := m.TranslatePrefetch(0x9999_0000); ok {
		t.Fatal("prefetch to untouched page should drop (STLB miss)")
	}
	if m.Stats.PrefDropTLB != 1 {
		t.Fatalf("PrefDropTLB = %d", m.Stats.PrefDropTLB)
	}
	// After a demand touch, the STLB holds the translation.
	m.TranslateDemand(0x9999_0000, 0)
	if _, _, ok := m.TranslatePrefetch(0x9999_0040); !ok {
		t.Fatal("prefetch within a demanded page should translate")
	}
}

// Property: physical addresses preserve the page offset and are unique per
// page.
func TestTranslationOffsetProperty(t *testing.T) {
	m := MustNewMMU(DefaultMMUConfig(), 7)
	f := func(vaddr uint64) bool {
		p, _ := m.TranslateDemand(vaddr, 0)
		return p&(PageSize-1) == vaddr&(PageSize-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMMUConfigValidate(t *testing.T) {
	if err := DefaultMMUConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*MMUConfig)
		field  string
	}{
		{"dtlb ways", func(c *MMUConfig) { c.DTLBWays = 0 }, "DTLBWays"},
		{"dtlb entries", func(c *MMUConfig) { c.DTLBEntries = 0 }, "DTLBEntries"},
		{"dtlb divisibility", func(c *MMUConfig) { c.DTLBEntries = 63 }, "DTLBEntries"},
		{"stlb ways", func(c *MMUConfig) { c.STLBWays = -1 }, "STLBWays"},
		{"stlb divisibility", func(c *MMUConfig) { c.STLBEntries = 2047 }, "STLBEntries"},
	} {
		cfg := DefaultMMUConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		ce, ok := err.(*ConfigError)
		if !ok || ce.Field != tc.field {
			t.Fatalf("%s: got %v, want *ConfigError on %s", tc.name, err, tc.field)
		}
		if _, err := NewMMU(cfg, 1); err == nil {
			t.Fatalf("%s: NewMMU must reject what Validate rejects", tc.name)
		}
	}
	if _, err := NewTLB(63, 4); err == nil {
		t.Fatal("NewTLB must reject non-divisible geometry")
	}
}
