// Package vm models virtual memory: a first-touch page table, the L1 dTLB,
// and the unified second-level TLB (STLB) with page-walk latency.
//
// The simulator trains the L1D prefetcher on virtual addresses (a key Berti
// property that enables cross-page prefetching) and translates prefetch
// requests through the STLB only, dropping them on an STLB miss, exactly as
// the paper describes.
package vm

import (
	"fmt"

	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/stats"
)

// ConfigError reports an invalid MMU/TLB configuration.
type ConfigError struct {
	// Field names the offending parameter ("DTLBEntries", ...).
	Field string
	// Reason describes the constraint that failed.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("vm: invalid %s: %s", e.Field, e.Reason)
}

// PageShift is log2 of the OS page size (4 KB pages).
const PageShift = 12

// PageSize is the OS page size in bytes.
const PageSize = 1 << PageShift

// PageTable maps virtual pages to physical frames, allocating frames on
// first touch. Frame numbers are assigned by a deterministic multiplicative
// hash so that physically-indexed cache levels observe page-grain
// scrambling of the virtual layout, like a real OS allocator.
type PageTable struct {
	frames    map[uint64]uint64
	nextFrame uint64
	// seed differentiates address spaces of different cores in a mix.
	seed uint64
}

// NewPageTable returns an empty page table. seed differentiates address
// spaces (use the core ID for multi-core mixes).
func NewPageTable(seed uint64) *PageTable {
	return &PageTable{
		frames: make(map[uint64]uint64),
		seed:   seed,
	}
}

// Translate returns the physical frame number for virtual page vpn,
// allocating one if this is the first touch.
func (pt *PageTable) Translate(vpn uint64) uint64 {
	if f, ok := pt.frames[vpn]; ok {
		return f
	}
	// Mix the allocation counter so consecutive virtual pages land on
	// non-consecutive frames (breaks accidental physical streaming).
	n := pt.nextFrame
	pt.nextFrame++
	f := (n*2654435761 + pt.seed*40503) & 0xFFFFFFF // 28-bit frame space
	pt.frames[vpn] = f
	return f
}

// Pages returns the number of distinct pages touched.
func (pt *PageTable) Pages() int { return len(pt.frames) }

// tlbEntry is one TLB entry.
type tlbEntry struct {
	vpn   uint64
	pfn   uint64
	valid bool
	lru   uint64
}

// TLB is a set-associative translation buffer with LRU replacement.
type TLB struct {
	sets     int
	ways     int
	entries  []tlbEntry
	lruClock uint64
}

// NewTLB returns a TLB with the given geometry: entries must be positive
// and divisible by ways.
func NewTLB(entries, ways int) (*TLB, error) {
	if ways <= 0 {
		return nil, &ConfigError{Field: "ways", Reason: fmt.Sprintf("must be >= 1, got %d", ways)}
	}
	if entries <= 0 {
		return nil, &ConfigError{Field: "entries", Reason: fmt.Sprintf("must be >= 1, got %d", entries)}
	}
	if entries%ways != 0 {
		return nil, &ConfigError{Field: "entries",
			Reason: fmt.Sprintf("%d entries not divisible by %d ways", entries, ways)}
	}
	return &TLB{
		sets:    entries / ways,
		ways:    ways,
		entries: make([]tlbEntry, entries),
	}, nil
}

// MustNewTLB builds a TLB from a geometry known to be valid (tests,
// compiled-in defaults). It panics on an invalid geometry; user-supplied
// configurations must go through NewTLB.
func MustNewTLB(entries, ways int) *TLB {
	t, err := NewTLB(entries, ways)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *TLB) set(vpn uint64) []tlbEntry {
	s := int(vpn) & (t.sets - 1)
	if t.sets&(t.sets-1) != 0 {
		s = int(vpn % uint64(t.sets))
	}
	return t.entries[s*t.ways : (s+1)*t.ways]
}

// Lookup returns the cached translation for vpn.
func (t *TLB) Lookup(vpn uint64) (pfn uint64, ok bool) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			t.lruClock++
			set[i].lru = t.lruClock
			return set[i].pfn, true
		}
	}
	return 0, false
}

// Insert installs a translation, evicting the LRU way.
func (t *TLB) Insert(vpn, pfn uint64) {
	set := t.set(vpn)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	t.lruClock++
	set[victim] = tlbEntry{vpn: vpn, pfn: pfn, valid: true, lru: t.lruClock}
}

// MMUConfig sets the translation-path latencies (cycles).
type MMUConfig struct {
	DTLBEntries int
	DTLBWays    int
	DTLBLatency uint64
	STLBEntries int
	STLBWays    int
	STLBLatency uint64
	// WalkLatency approximates a page walk that mostly hits the paging
	// structure caches (PSCL2..PSCL5 searched in parallel, Table II).
	WalkLatency uint64
}

// DefaultMMUConfig mirrors Table II: 64-entry 4-way dTLB (1 cycle),
// 2048-entry 16-way STLB (8 cycles).
func DefaultMMUConfig() MMUConfig {
	return MMUConfig{
		DTLBEntries: 64, DTLBWays: 4, DTLBLatency: 1,
		STLBEntries: 2048, STLBWays: 16, STLBLatency: 8,
		WalkLatency: 60,
	}
}

// Validate checks the configuration's internal consistency. It returns a
// *ConfigError describing the first violated constraint, or nil.
func (c MMUConfig) Validate() error {
	checkGeom := func(prefix string, entries, ways int) error {
		if ways <= 0 {
			return &ConfigError{Field: prefix + "Ways", Reason: fmt.Sprintf("must be >= 1, got %d", ways)}
		}
		if entries <= 0 {
			return &ConfigError{Field: prefix + "Entries", Reason: fmt.Sprintf("must be >= 1, got %d", entries)}
		}
		if entries%ways != 0 {
			return &ConfigError{Field: prefix + "Entries",
				Reason: fmt.Sprintf("%d entries not divisible by %d ways", entries, ways)}
		}
		return nil
	}
	if err := checkGeom("DTLB", c.DTLBEntries, c.DTLBWays); err != nil {
		return err
	}
	return checkGeom("STLB", c.STLBEntries, c.STLBWays)
}

// MMU combines the page table and the TLB hierarchy for one core.
type MMU struct {
	cfg   MMUConfig
	pt    *PageTable
	dtlb  *TLB
	stlb  *TLB
	Stats stats.TLBStats
	// tr is the structured event tracer (nil = tracing disabled).
	tr *obs.Tracer
}

// SetTracer attaches a structured event tracer (nil disables tracing).
func (m *MMU) SetTracer(t *obs.Tracer) { m.tr = t }

// NewMMU builds the translation path for one core, validating cfg first.
func NewMMU(cfg MMUConfig, seed uint64) (*MMU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MMU{
		cfg:  cfg,
		pt:   NewPageTable(seed),
		dtlb: MustNewTLB(cfg.DTLBEntries, cfg.DTLBWays),
		stlb: MustNewTLB(cfg.STLBEntries, cfg.STLBWays),
	}, nil
}

// MustNewMMU builds an MMU from a configuration known to be valid (tests,
// compiled-in defaults). It panics on an invalid cfg.
func MustNewMMU(cfg MMUConfig, seed uint64) *MMU {
	m, err := NewMMU(cfg, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// TranslateDemand translates a demand access's virtual address and returns
// the physical address plus the translation latency in cycles. Demand
// translations always succeed (walking the page table on STLB miss).
// cycle timestamps the traced page-walk event (pass 0 when untraced).
func (m *MMU) TranslateDemand(vaddr uint64, cycle uint64) (paddr uint64, latency uint64) {
	vpn := vaddr >> PageShift
	off := vaddr & (PageSize - 1)
	m.Stats.DTLBAccesses++
	if pfn, ok := m.dtlb.Lookup(vpn); ok {
		return pfn<<PageShift | off, m.cfg.DTLBLatency
	}
	m.Stats.DTLBMisses++
	m.Stats.STLBAccesses++
	if pfn, ok := m.stlb.Lookup(vpn); ok {
		m.dtlb.Insert(vpn, pfn)
		return pfn<<PageShift | off, m.cfg.DTLBLatency + m.cfg.STLBLatency
	}
	m.Stats.STLBMisses++
	m.Stats.PageWalks++
	if m.tr != nil {
		m.tr.Emit(obs.Event{
			Cycle: cycle, Kind: obs.EvTLBWalk, Source: obs.SrcMMU, Addr: vpn,
		})
	}
	pfn := m.pt.Translate(vpn)
	m.stlb.Insert(vpn, pfn)
	m.dtlb.Insert(vpn, pfn)
	return pfn<<PageShift | off, m.cfg.DTLBLatency + m.cfg.STLBLatency + m.cfg.WalkLatency
}

// TranslatePrefetch translates a prefetch target through the STLB only.
// If the translation misses the STLB the prefetch must be dropped (ok is
// false); prefetches never trigger page walks.
func (m *MMU) TranslatePrefetch(vaddr uint64) (paddr uint64, latency uint64, ok bool) {
	vpn := vaddr >> PageShift
	off := vaddr & (PageSize - 1)
	m.Stats.STLBAccesses++
	if pfn, found := m.stlb.Lookup(vpn); found {
		return pfn<<PageShift | off, m.cfg.STLBLatency, true
	}
	m.Stats.STLBMisses++
	m.Stats.PrefDropTLB++
	return 0, 0, false
}

// PageTable exposes the underlying page table (used by tests).
func (m *MMU) PageTable() *PageTable { return m.pt }

// checkTLB reports duplicate VPNs within a set (tlb-dup) and entries whose
// translation disagrees with the page table (tlb-map).
func (m *MMU) checkTLB(t *TLB, name string, cycle uint64, report func(check.Violation)) {
	for s := 0; s < t.sets; s++ {
		set := t.entries[s*t.ways : (s+1)*t.ways]
		for i := range set {
			if !set[i].valid {
				continue
			}
			if pfn, ok := m.pt.frames[set[i].vpn]; ok && pfn != set[i].pfn {
				report(check.Violation{Rule: check.RuleTLBMap, Component: name, Cycle: cycle,
					Detail: fmt.Sprintf("vpn %#x cached as pfn %#x, page table says %#x",
						set[i].vpn, set[i].pfn, pfn)})
			}
			for j := i + 1; j < len(set); j++ {
				if set[j].valid && set[j].vpn == set[i].vpn {
					report(check.Violation{Rule: check.RuleTLBDup, Component: name, Cycle: cycle,
						Detail: fmt.Sprintf("vpn %#x present in ways %d and %d of set %d",
							set[i].vpn, i, j, s)})
				}
			}
		}
	}
}

// CheckInvariants verifies dTLB and STLB consistency: no duplicate entries
// within a set, and every cached translation agreeing with the page table.
// It never mutates state.
func (m *MMU) CheckInvariants(name string, cycle uint64, report func(check.Violation)) {
	m.checkTLB(m.dtlb, name+".dtlb", cycle, report)
	m.checkTLB(m.stlb, name+".stlb", cycle, report)
}
