// Package vm models virtual memory: a first-touch page table, the L1 dTLB,
// and the unified second-level TLB (STLB) with page-walk latency.
//
// The simulator trains the L1D prefetcher on virtual addresses (a key Berti
// property that enables cross-page prefetching) and translates prefetch
// requests through the STLB only, dropping them on an STLB miss, exactly as
// the paper describes.
package vm

import (
	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/stats"
)

// PageShift is log2 of the OS page size (4 KB pages).
const PageShift = 12

// PageSize is the OS page size in bytes.
const PageSize = 1 << PageShift

// PageTable maps virtual pages to physical frames, allocating frames on
// first touch. Frame numbers are assigned by a deterministic multiplicative
// hash so that physically-indexed cache levels observe page-grain
// scrambling of the virtual layout, like a real OS allocator.
type PageTable struct {
	frames    map[uint64]uint64
	nextFrame uint64
	// seed differentiates address spaces of different cores in a mix.
	seed uint64
}

// NewPageTable returns an empty page table. seed differentiates address
// spaces (use the core ID for multi-core mixes).
func NewPageTable(seed uint64) *PageTable {
	return &PageTable{
		frames: make(map[uint64]uint64),
		seed:   seed,
	}
}

// Translate returns the physical frame number for virtual page vpn,
// allocating one if this is the first touch.
func (pt *PageTable) Translate(vpn uint64) uint64 {
	if f, ok := pt.frames[vpn]; ok {
		return f
	}
	// Mix the allocation counter so consecutive virtual pages land on
	// non-consecutive frames (breaks accidental physical streaming).
	n := pt.nextFrame
	pt.nextFrame++
	f := (n*2654435761 + pt.seed*40503) & 0xFFFFFFF // 28-bit frame space
	pt.frames[vpn] = f
	return f
}

// Pages returns the number of distinct pages touched.
func (pt *PageTable) Pages() int { return len(pt.frames) }

// tlbEntry is one TLB entry.
type tlbEntry struct {
	vpn   uint64
	pfn   uint64
	valid bool
	lru   uint64
}

// TLB is a set-associative translation buffer with LRU replacement.
type TLB struct {
	sets     int
	ways     int
	entries  []tlbEntry
	lruClock uint64
}

// NewTLB returns a TLB with the given geometry. entries must be divisible
// by ways.
func NewTLB(entries, ways int) *TLB {
	if entries%ways != 0 {
		panic("vm: TLB entries not divisible by ways")
	}
	return &TLB{
		sets:    entries / ways,
		ways:    ways,
		entries: make([]tlbEntry, entries),
	}
}

func (t *TLB) set(vpn uint64) []tlbEntry {
	s := int(vpn) & (t.sets - 1)
	if t.sets&(t.sets-1) != 0 {
		s = int(vpn % uint64(t.sets))
	}
	return t.entries[s*t.ways : (s+1)*t.ways]
}

// Lookup returns the cached translation for vpn.
func (t *TLB) Lookup(vpn uint64) (pfn uint64, ok bool) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			t.lruClock++
			set[i].lru = t.lruClock
			return set[i].pfn, true
		}
	}
	return 0, false
}

// Insert installs a translation, evicting the LRU way.
func (t *TLB) Insert(vpn, pfn uint64) {
	set := t.set(vpn)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	t.lruClock++
	set[victim] = tlbEntry{vpn: vpn, pfn: pfn, valid: true, lru: t.lruClock}
}

// MMUConfig sets the translation-path latencies (cycles).
type MMUConfig struct {
	DTLBEntries int
	DTLBWays    int
	DTLBLatency uint64
	STLBEntries int
	STLBWays    int
	STLBLatency uint64
	// WalkLatency approximates a page walk that mostly hits the paging
	// structure caches (PSCL2..PSCL5 searched in parallel, Table II).
	WalkLatency uint64
}

// DefaultMMUConfig mirrors Table II: 64-entry 4-way dTLB (1 cycle),
// 2048-entry 16-way STLB (8 cycles).
func DefaultMMUConfig() MMUConfig {
	return MMUConfig{
		DTLBEntries: 64, DTLBWays: 4, DTLBLatency: 1,
		STLBEntries: 2048, STLBWays: 16, STLBLatency: 8,
		WalkLatency: 60,
	}
}

// MMU combines the page table and the TLB hierarchy for one core.
type MMU struct {
	cfg   MMUConfig
	pt    *PageTable
	dtlb  *TLB
	stlb  *TLB
	Stats stats.TLBStats
	// tr is the structured event tracer (nil = tracing disabled).
	tr *obs.Tracer
}

// SetTracer attaches a structured event tracer (nil disables tracing).
func (m *MMU) SetTracer(t *obs.Tracer) { m.tr = t }

// NewMMU builds the translation path for one core.
func NewMMU(cfg MMUConfig, seed uint64) *MMU {
	return &MMU{
		cfg:  cfg,
		pt:   NewPageTable(seed),
		dtlb: NewTLB(cfg.DTLBEntries, cfg.DTLBWays),
		stlb: NewTLB(cfg.STLBEntries, cfg.STLBWays),
	}
}

// TranslateDemand translates a demand access's virtual address and returns
// the physical address plus the translation latency in cycles. Demand
// translations always succeed (walking the page table on STLB miss).
// cycle timestamps the traced page-walk event (pass 0 when untraced).
func (m *MMU) TranslateDemand(vaddr uint64, cycle uint64) (paddr uint64, latency uint64) {
	vpn := vaddr >> PageShift
	off := vaddr & (PageSize - 1)
	m.Stats.DTLBAccesses++
	if pfn, ok := m.dtlb.Lookup(vpn); ok {
		return pfn<<PageShift | off, m.cfg.DTLBLatency
	}
	m.Stats.DTLBMisses++
	m.Stats.STLBAccesses++
	if pfn, ok := m.stlb.Lookup(vpn); ok {
		m.dtlb.Insert(vpn, pfn)
		return pfn<<PageShift | off, m.cfg.DTLBLatency + m.cfg.STLBLatency
	}
	m.Stats.STLBMisses++
	m.Stats.PageWalks++
	if m.tr != nil {
		m.tr.Emit(obs.Event{
			Cycle: cycle, Kind: obs.EvTLBWalk, Source: obs.SrcMMU, Addr: vpn,
		})
	}
	pfn := m.pt.Translate(vpn)
	m.stlb.Insert(vpn, pfn)
	m.dtlb.Insert(vpn, pfn)
	return pfn<<PageShift | off, m.cfg.DTLBLatency + m.cfg.STLBLatency + m.cfg.WalkLatency
}

// TranslatePrefetch translates a prefetch target through the STLB only.
// If the translation misses the STLB the prefetch must be dropped (ok is
// false); prefetches never trigger page walks.
func (m *MMU) TranslatePrefetch(vaddr uint64) (paddr uint64, latency uint64, ok bool) {
	vpn := vaddr >> PageShift
	off := vaddr & (PageSize - 1)
	m.Stats.STLBAccesses++
	if pfn, found := m.stlb.Lookup(vpn); found {
		return pfn<<PageShift | off, m.cfg.STLBLatency, true
	}
	m.Stats.STLBMisses++
	m.Stats.PrefDropTLB++
	return 0, 0, false
}

// PageTable exposes the underlying page table (used by tests).
func (m *MMU) PageTable() *PageTable { return m.pt }
