// Package dram models a DRAM channel with banks, 4 KB row buffers, an open
// page policy, and FR-FCFS scheduling with read priority and a write-drain
// watermark, following Table II of the paper.
//
// The model produces variable access latency from three sources the paper
// calls out: row-buffer state (hit / closed / conflict), bank conflicts,
// and read/write queue contention — the variability Berti's latency
// measurement is designed to track.
package dram

import (
	"github.com/bertisim/berti/internal/ringbuf"
	"github.com/bertisim/berti/internal/stats"
)

// Config describes one DRAM channel feeding the LLC.
type Config struct {
	// Banks per channel.
	Banks int
	// RowBytes is the row-buffer size per bank (4 KB per Table II).
	RowBytes uint64
	// TRP, TRCD, TCAS in core cycles (12.5 ns at 4 GHz = 50 cycles each).
	TRP, TRCD, TCAS uint64
	// BurstCycles is the core-cycle occupancy of the data bus for one
	// 64-byte line (depends on MTPS: DDR5-6400 → 5, DDR4-3200 → 10,
	// DDR3-1600 → 20 at a 4 GHz core).
	BurstCycles uint64
	// ExtraLatency is the fixed controller/PHY/IO round-trip overhead
	// added to every access (core cycles).
	ExtraLatency uint64
	// RQSize and WQSize are the read/write queue capacities.
	RQSize, WQSize int
	// WriteWatermarkNum/Den: drain writes when WQ occupancy exceeds
	// Num/Den of capacity (7/8 per Table II).
	WriteWatermarkNum, WriteWatermarkDen int
}

// MTPS presets; one channel per four cores, 4 GHz core clock.

// ConfigDDR5_6400 is the paper's default channel.
func ConfigDDR5_6400() Config { return configWithBurst(5) }

// ConfigDDR4_3200 is the constrained-bandwidth midpoint of Section IV-F.
func ConfigDDR4_3200() Config { return configWithBurst(10) }

// ConfigDDR3_1600 is the most constrained channel of Section IV-F.
func ConfigDDR3_1600() Config { return configWithBurst(20) }

func configWithBurst(burst uint64) Config {
	return Config{
		Banks:             16,
		RowBytes:          4096,
		TRP:               50,
		TRCD:              50,
		TCAS:              50,
		ExtraLatency:      60,
		BurstCycles:       burst,
		RQSize:            64,
		WQSize:            64,
		WriteWatermarkNum: 7,
		WriteWatermarkDen: 8,
	}
}

// DoneSink receives read completions without a per-request closure; the
// requester demultiplexes by token. Structurally identical to
// cache.DoneSink so the layer above can hand its sink straight through.
type DoneSink interface {
	ReqDone(token, cycle uint64)
}

// Request is one line-sized DRAM transaction. Queues store Request by
// value; the struct a caller passes to Enqueue* is copied in.
type Request struct {
	LineAddr uint64 // physical line address (byte addr >> 6)
	Write    bool
	// IsPrefetch demotes the request below all demand reads in the
	// scheduler (real controllers prioritize demand traffic).
	IsPrefetch bool
	// OnComplete is invoked with the cycle at which the data transfer
	// finishes (nil for writes, which are posted).
	OnComplete func(doneCycle uint64)
	// Sink/Token are the allocation-free completion path used when
	// OnComplete is nil: the transfer finishing calls
	// Sink.ReqDone(Token, doneCycle).
	Sink         DoneSink
	Token        uint64
	enqueueCycle uint64
}

type bank struct {
	openRow  uint64
	rowValid bool
	ready    uint64 // cycle at which the bank can accept a new command
}

// transfer is a scheduled column access waiting for the data bus.
type transfer struct {
	lineAddr uint64
	eligible uint64 // cycle the bank has the data ready
	write    bool
	prefetch bool
	onDone   func(uint64)
	sink     DoneSink
	token    uint64
}

// Channel is one DRAM channel. Commands and data transfers are decoupled:
// banks activate and read in parallel, and only the burst occupies the
// shared data bus, so a row miss on one bank never stalls transfers from
// other banks. Queues are fixed-capacity value rings: the steady-state
// enqueue/issue/complete path allocates nothing.
type Channel struct {
	cfg       Config
	banks     []bank
	rq        ringbuf.Ring[Request]
	wq        ringbuf.Ring[Request]
	transfers ringbuf.Ring[transfer]
	busFree   uint64
	draining  bool
	Stats     stats.DRAMStats
}

// NewChannel builds a channel from cfg.
func NewChannel(cfg Config) *Channel {
	c := &Channel{
		cfg:   cfg,
		banks: make([]bank, cfg.Banks),
	}
	c.rq.Init(cfg.RQSize)
	c.wq.Init(cfg.WQSize)
	// Every queued request can be in flight as a transfer at once.
	c.transfers.Init(cfg.RQSize + cfg.WQSize)
	return c
}

// lineAddr is a 64-byte line address; map to bank and row.
func (c *Channel) decode(lineAddr uint64) (bankIdx int, row uint64) {
	linesPerRow := c.cfg.RowBytes / 64
	bankIdx = int((lineAddr / linesPerRow) % uint64(c.cfg.Banks))
	row = lineAddr / linesPerRow / uint64(c.cfg.Banks)
	return bankIdx, row
}

// complete fires a read's completion callback (closure or sink).
func complete(onDone func(uint64), sink DoneSink, token, cycle uint64) {
	if onDone != nil {
		onDone(cycle)
	} else if sink != nil {
		sink.ReqDone(token, cycle)
	}
}

// EnqueueRead attempts to add a read; returns false when the RQ is full.
// r is copied; the pointer is not retained.
func (c *Channel) EnqueueRead(r *Request, cycle uint64) bool {
	// Forward from the write queue: a read that matches a queued write
	// is serviced immediately from the WQ data.
	for i, n := 0, c.wq.Len(); i < n; i++ {
		if c.wq.At(i).LineAddr == r.LineAddr {
			complete(r.OnComplete, r.Sink, r.Token, cycle+1)
			return true
		}
	}
	if c.rq.Len() >= c.cfg.RQSize {
		c.Stats.RQFullStalls++
		return false
	}
	nr := *r
	nr.enqueueCycle = cycle
	dbgRecord(r.LineAddr, 1, cycle)
	c.rq.Push(nr)
	return true
}

// EnqueueWrite attempts to add a write; returns false when the WQ is full.
func (c *Channel) EnqueueWrite(r *Request, cycle uint64) bool {
	if c.wq.Len() >= c.cfg.WQSize {
		c.Stats.WQFullStalls++
		return false
	}
	nr := *r
	nr.enqueueCycle = cycle
	c.wq.Push(nr)
	return true
}

// RQOccupancy returns the current read-queue length.
func (c *Channel) RQOccupancy() int { return c.rq.Len() }

// Tick advances the channel one cycle: schedule the data bus, then issue
// bank commands.
func (c *Channel) Tick(cycle uint64) {
	c.serveBus(cycle)

	// Write-drain hysteresis: start draining above the watermark, stop
	// once the WQ is nearly empty or reads are waiting.
	if c.wq.Len()*c.cfg.WriteWatermarkDen >= c.cfg.WQSize*c.cfg.WriteWatermarkNum {
		c.draining = true
	}
	if c.wq.Len() == 0 || (c.draining && c.wq.Len() < c.cfg.WQSize/4) {
		c.draining = false
	}

	// Up to two bank commands per cycle (command bus is faster than one
	// data burst per command anyway).
	for n := 0; n < 2; n++ {
		serveWrites := c.draining || c.rq.Len() == 0
		if serveWrites && c.wq.Len() > 0 {
			c.issue(&c.wq, cycle, true)
			continue
		}
		if c.rq.Len() > 0 {
			c.issue(&c.rq, cycle, false)
		}
	}
}

// serveBus starts the oldest-eligible data burst when the bus is free.
// Demand reads get the bus first, then prefetch reads, then writes.
func (c *Channel) serveBus(cycle uint64) {
	for c.busFree <= cycle {
		best := -1
		bestClass := -1
		for i, n := 0, c.transfers.Len(); i < n; i++ {
			t := c.transfers.At(i)
			if t.eligible > cycle {
				continue
			}
			class := 0 // write
			if !t.write {
				class = 1 // prefetch read
				if !t.prefetch {
					class = 2 // demand read
				}
			}
			if class > bestClass ||
				(class == bestClass && t.eligible < c.transfers.At(best).eligible) {
				best, bestClass = i, class
			}
		}
		if best == -1 {
			return
		}
		t := *c.transfers.At(best)
		c.transfers.RemoveAt(best)
		start := cycle
		if c.busFree > start {
			start = c.busFree
		}
		done := start + c.cfg.BurstCycles
		c.busFree = done
		c.Stats.BusyCycles += c.cfg.BurstCycles
		dbgRecord(t.lineAddr, 3, done)
		complete(t.onDone, t.sink, t.token, done)
	}
}

// issue picks the FR-FCFS best request from q and schedules it.
func (c *Channel) issue(q *ringbuf.Ring[Request], cycle uint64, write bool) {
	// FR-FCFS: row hits first (open-page throughput), demand reads break
	// ties within a class so prefetch bursts do not inflate demand
	// latency, oldest first otherwise.
	best := -1
	bestScore := -1
	for i, n := 0, q.Len(); i < n; i++ {
		r := q.At(i)
		b, row := c.decode(r.LineAddr)
		bk := &c.banks[b]
		if bk.ready > cycle {
			continue
		}
		hit := bk.rowValid && bk.openRow == row
		score := 0
		if hit {
			score += 2
		}
		if !r.IsPrefetch {
			score++
		}
		if score > bestScore {
			best, bestScore = i, score
			if score == 3 {
				break // oldest demand row hit wins
			}
		}
	}
	if best == -1 {
		return
	}
	r := *q.At(best)
	q.RemoveAt(best)

	b, row := c.decode(r.LineAddr)
	bk := &c.banks[b]
	// lat is when this access's data is ready; bankBusy is how long the
	// bank is blocked for the NEXT command. Row hits pipeline at column-
	// command cadence (~ one burst), only activations serialize the bank.
	var lat, bankBusy uint64
	switch {
	case bk.rowValid && bk.openRow == row:
		lat = c.cfg.TCAS
		bankBusy = c.cfg.BurstCycles
		c.Stats.RowHits++
	case !bk.rowValid:
		lat = c.cfg.TRCD + c.cfg.TCAS
		bankBusy = c.cfg.TRCD + c.cfg.BurstCycles
		c.Stats.RowMisses++
	default:
		lat = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
		bankBusy = c.cfg.TRP + c.cfg.TRCD + c.cfg.BurstCycles
		c.Stats.RowConflicts++
	}
	bk.openRow, bk.rowValid = row, true

	ready := cycle + lat + c.cfg.ExtraLatency
	bk.ready = cycle + bankBusy
	if write {
		c.Stats.Writes++
		// Posted write: occupies a future bus slot but needs no callback.
		c.transfers.Push(transfer{eligible: ready, write: true})
		return
	}
	c.Stats.Reads++
	dbgRecord(r.LineAddr, 2, cycle)
	c.transfers.Push(transfer{
		lineAddr: r.LineAddr,
		eligible: ready,
		prefetch: r.IsPrefetch,
		onDone:   r.OnComplete,
		sink:     r.Sink,
		token:    r.Token,
	})
}

// DebugTimeline records per-line DRAM event times when enabled (tests).
var DebugTimeline map[uint64][]uint64

func dbgRecord(line uint64, tag, cycle uint64) {
	if DebugTimeline != nil {
		DebugTimeline[line] = append(DebugTimeline[line], tag, cycle)
	}
}

// Promote upgrades queued prefetch reads for the line to demand priority.
func (c *Channel) Promote(lineAddr uint64) {
	for i, n := 0, c.rq.Len(); i < n; i++ {
		if r := c.rq.At(i); r.LineAddr == lineAddr {
			r.IsPrefetch = false
		}
	}
	for i, n := 0, c.transfers.Len(); i < n; i++ {
		if t := c.transfers.At(i); t.lineAddr == lineAddr {
			t.prefetch = false
		}
	}
}

// Pending reports whether any request is queued (used to drain simulations).
func (c *Channel) Pending() bool { return c.rq.Len() > 0 || c.wq.Len() > 0 }

// never is the quiescent horizon (sim.Never).
const never = ^uint64(0)

// NextEventCycle reports the earliest future cycle at which the channel can
// change state on its own: a transfer winning the data bus, or a queued
// request whose bank becomes ready for a command. An idle channel is fully
// quiescent — the write-drain flag is recomputed from queue occupancy at the
// start of every Tick, so its stale value is unobservable across a skip.
func (c *Channel) NextEventCycle(now uint64) uint64 {
	if c.rq.Len() == 0 && c.wq.Len() == 0 && c.transfers.Len() == 0 {
		return never
	}
	h := never
	for i, n := 0, c.transfers.Len(); i < n; i++ {
		e := c.transfers.At(i).eligible
		if e < c.busFree {
			e = c.busFree
		}
		if e <= now {
			return now
		}
		if e < h {
			h = e
		}
	}
	// Mirror Tick's hysteresis update to get the drain flag's value at the
	// next executed tick: it depends only on queue occupancy (stable across
	// a skip) and is idempotent after one application.
	draining := c.draining
	if c.wq.Len()*c.cfg.WriteWatermarkDen >= c.cfg.WQSize*c.cfg.WriteWatermarkNum {
		draining = true
	}
	if c.wq.Len() == 0 || (draining && c.wq.Len() < c.cfg.WQSize/4) {
		draining = false
	}
	// While draining (with writes queued), reads are not issued; otherwise
	// writes are only issued when no reads wait. A flip of either condition
	// requires a queue-occupancy change, which is itself an event.
	if !draining {
		for i, n := 0, c.rq.Len(); i < n; i++ {
			b, _ := c.decode(c.rq.At(i).LineAddr)
			if e := c.banks[b].ready; e <= now {
				return now
			} else if e < h {
				h = e
			}
		}
	}
	if draining || c.rq.Len() == 0 {
		for i, n := 0, c.wq.Len(); i < n; i++ {
			b, _ := c.decode(c.wq.At(i).LineAddr)
			if e := c.banks[b].ready; e <= now {
				return now
			} else if e < h {
				h = e
			}
		}
	}
	return h
}
