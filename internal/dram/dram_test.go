package dram

import (
	"testing"
)

// collect runs the channel until the request completes, returning the
// completion cycle.
func collect(t *testing.T, c *Channel, start uint64, line uint64, pf bool) uint64 {
	t.Helper()
	var done uint64
	ok := c.EnqueueRead(&Request{
		LineAddr:   line,
		IsPrefetch: pf,
		OnComplete: func(cyc uint64) { done = cyc },
	}, start)
	if !ok {
		t.Fatal("enqueue refused")
	}
	for cyc := start; done == 0 && cyc < start+100000; cyc++ {
		c.Tick(cyc)
	}
	if done == 0 {
		t.Fatal("request never completed")
	}
	return done
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := ConfigDDR5_6400()
	c := NewChannel(cfg)
	linesPerRow := cfg.RowBytes / 64

	first := collect(t, c, 0, 0, false) // opens row 0 of bank 0
	hitDone := collect(t, c, first+1, 1, false)
	hitLat := hitDone - (first + 1)
	// Conflict: same bank (stride banks*linesPerRow lines), different row.
	conflictLine := uint64(cfg.Banks) * linesPerRow
	confDone := collect(t, c, hitDone+1, conflictLine, false)
	confLat := confDone - (hitDone + 1)
	if hitLat >= confLat {
		t.Fatalf("row hit (%d) should be faster than conflict (%d)", hitLat, confLat)
	}
	if c.Stats.RowHits == 0 || c.Stats.RowConflicts == 0 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestReadLatencyIncludesOverhead(t *testing.T) {
	cfg := ConfigDDR5_6400()
	c := NewChannel(cfg)
	done := collect(t, c, 0, 0, false)
	min := cfg.TRCD + cfg.TCAS + cfg.ExtraLatency
	if done < min {
		t.Fatalf("cold read done at %d, expected >= %d", done, min)
	}
}

func TestRQFullRefuses(t *testing.T) {
	cfg := ConfigDDR5_6400()
	cfg.RQSize = 2
	c := NewChannel(cfg)
	ok1 := c.EnqueueRead(&Request{LineAddr: 1}, 0)
	ok2 := c.EnqueueRead(&Request{LineAddr: 2}, 0)
	ok3 := c.EnqueueRead(&Request{LineAddr: 3}, 0)
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("expected third enqueue refused: %v %v %v", ok1, ok2, ok3)
	}
	if c.Stats.RQFullStalls != 1 {
		t.Fatalf("RQFullStalls = %d", c.Stats.RQFullStalls)
	}
}

func TestWriteForwarding(t *testing.T) {
	c := NewChannel(ConfigDDR5_6400())
	if !c.EnqueueWrite(&Request{LineAddr: 42, Write: true}, 0) {
		t.Fatal("write refused")
	}
	var done uint64
	c.EnqueueRead(&Request{LineAddr: 42, OnComplete: func(cyc uint64) { done = cyc }}, 5)
	if done != 6 {
		t.Fatalf("read matching queued write should forward immediately, done=%d", done)
	}
}

func TestWritesArePosted(t *testing.T) {
	c := NewChannel(ConfigDDR5_6400())
	for i := uint64(0); i < 10; i++ {
		if !c.EnqueueWrite(&Request{LineAddr: i * 1000, Write: true}, 0) {
			t.Fatal("write refused")
		}
	}
	for cyc := uint64(0); cyc < 50000 && c.Pending(); cyc++ {
		c.Tick(cyc)
	}
	if c.Pending() {
		t.Fatal("writes never drained")
	}
	if c.Stats.Writes != 10 {
		t.Fatalf("writes = %d", c.Stats.Writes)
	}
}

func TestDemandPriorityOverPrefetch(t *testing.T) {
	cfg := ConfigDDR5_6400()
	c := NewChannel(cfg)
	linesPerRow := cfg.RowBytes / 64
	// Enqueue a burst of prefetches to bank 0 and one demand behind them
	// to a different row of bank 0: the demand must not finish last.
	var pfDone, demDone uint64
	for i := uint64(0); i < 8; i++ {
		last := i == 7
		c.EnqueueRead(&Request{
			LineAddr:   i,
			IsPrefetch: true,
			OnComplete: func(cyc uint64) {
				if last {
					pfDone = cyc
				}
			},
		}, 0)
	}
	c.EnqueueRead(&Request{
		LineAddr:   uint64(cfg.Banks) * linesPerRow * 7,
		OnComplete: func(cyc uint64) { demDone = cyc },
	}, 0)
	for cyc := uint64(0); cyc < 100000 && (pfDone == 0 || demDone == 0); cyc++ {
		c.Tick(cyc)
	}
	if pfDone == 0 || demDone == 0 {
		t.Fatal("requests did not finish")
	}
	if demDone > pfDone {
		t.Fatalf("demand (%d) finished after the whole prefetch burst (%d)", demDone, pfDone)
	}
}

func TestPromoteUpgradesQueuedPrefetch(t *testing.T) {
	c := NewChannel(ConfigDDR5_6400())
	c.EnqueueRead(&Request{LineAddr: 7, IsPrefetch: true}, 0)
	c.Promote(7)
	if c.rq.At(0).IsPrefetch {
		t.Fatal("queued prefetch not promoted")
	}
}

func TestBandwidthConfigsDiffer(t *testing.T) {
	fast := ConfigDDR5_6400()
	slow := ConfigDDR3_1600()
	if slow.BurstCycles <= fast.BurstCycles {
		t.Fatal("DDR3-1600 must occupy the bus longer per line")
	}
}

func TestDecodeBanksCoverAll(t *testing.T) {
	cfg := ConfigDDR5_6400()
	c := NewChannel(cfg)
	seen := map[int]bool{}
	linesPerRow := cfg.RowBytes / 64
	for i := uint64(0); i < uint64(cfg.Banks)*linesPerRow; i += linesPerRow {
		b, _ := c.decode(i)
		seen[b] = true
	}
	if len(seen) != cfg.Banks {
		t.Fatalf("decode covered %d of %d banks", len(seen), cfg.Banks)
	}
}
