// Command benchengine measures raw engine throughput under both schedulers
// and writes the comparison to BENCH_engine.json.
//
// Usage:
//
//	benchengine                     # quick matrix -> BENCH_engine.json
//	benchengine -o /tmp/bench.json -reps 5
//	BERTI_SCALE=default benchengine
//
// The matrix crosses a memory-bound and a compute-bound workload with
// prefetching off and on (Berti at L1D), under the exhaustive ticked
// scheduler and the event-horizon scheduler. Each cell reports kinstr/s
// (simulated instructions, warmup included, per wall second; best of -reps)
// and the horizon cells additionally report speedup over the matching
// ticked cell. Every paired run is also byte-compared: a stats divergence
// between schedulers fails the whole command, so the benchmark doubles as a
// coarse differential check at benchmark scale.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

type cell struct {
	Workload   string  `json:"workload"`
	Class      string  `json:"class"` // membound | computebound
	Prefetcher string  `json:"prefetcher"`
	Scheduler  string  `json:"scheduler"`
	KInstrPerS float64 `json:"kinstr_per_s"`
	Cycles     uint64  `json:"cycles"`
	IPC        float64 `json:"ipc"`
	Speedup    float64 `json:"speedup_vs_ticked,omitempty"`
}

type report struct {
	Scale       string    `json:"scale"`
	MemRecords  int       `json:"mem_records"`
	WarmupInstr uint64    `json:"warmup_instr"`
	SimInstr    uint64    `json:"sim_instr"`
	Reps        int       `json:"reps"`
	GeneratedAt time.Time `json:"generated_at"`
	Cells       []cell    `json:"cells"`
}

// trajectorySchemaVersion governs the BENCH_engine.json container shape.
const trajectorySchemaVersion = 1

// trajectory is the on-disk container: every benchengine run appends its
// timestamped report, so throughput history accumulates instead of each run
// clobbering the last. Legacy single-report files (the pre-trajectory
// format) are migrated into the first entry on the next run.
type trajectory struct {
	SchemaVersion int      `json:"schema_version"`
	Entries       []report `json:"entries"`
}

// loadTrajectory reads an existing output file in either format. A missing
// file starts an empty trajectory; an unrecognized one is an error rather
// than silent clobbering.
func loadTrajectory(path string) (*trajectory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &trajectory{SchemaVersion: trajectorySchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	// Probe the container shape by key: "entries" = trajectory (possibly
	// empty), "cells" = a legacy single report.
	var probe struct {
		Entries *[]report `json:"entries"`
		Cells   *[]cell   `json:"cells"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w (move the file aside to start a fresh trajectory)", path, err)
	}
	switch {
	case probe.Entries != nil:
		var tr trajectory
		if err := json.Unmarshal(data, &tr); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		tr.SchemaVersion = trajectorySchemaVersion
		return &tr, nil
	case probe.Cells != nil:
		var legacy report
		if err := json.Unmarshal(data, &legacy); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &trajectory{SchemaVersion: trajectorySchemaVersion, Entries: []report{legacy}}, nil
	default:
		return nil, fmt.Errorf("%s: neither a benchengine trajectory nor a legacy report (move the file aside)", path)
	}
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per cell (best is kept)")
	flag.Parse()

	scale := harness.ScaleQuick
	if os.Getenv("BERTI_SCALE") != "" {
		scale = harness.ScaleFromEnv()
	}
	rep := report{
		Scale:       scale.Name,
		MemRecords:  scale.MemRecords,
		WarmupInstr: scale.WarmupInstr,
		SimInstr:    scale.SimInstr,
		Reps:        *reps,
		GeneratedAt: time.Now().UTC(),
	}

	workloads := []struct{ name, class string }{
		{"mcf_like_1554", "membound"},
		{"deepsjeng_like", "computebound"},
	}
	for _, w := range workloads {
		for _, pf := range []string{"", "berti"} {
			var tickedCell *cell
			var tickedJSON []byte
			for _, sched := range []sim.Scheduler{sim.SchedTicked, sim.SchedHorizon} {
				c, resJSON, err := measure(scale, w.name, w.class, pf, sched, *reps)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchengine:", err)
					os.Exit(1)
				}
				if sched == sim.SchedTicked {
					tickedCell, tickedJSON = &c, resJSON
				} else {
					if !bytes.Equal(resJSON, tickedJSON) {
						fmt.Fprintf(os.Stderr, "benchengine: schedulers diverged on %s pf=%q\n", w.name, pf)
						os.Exit(1)
					}
					c.Speedup = c.KInstrPerS / tickedCell.KInstrPerS
				}
				rep.Cells = append(rep.Cells, c)
				fmt.Printf("%-16s %-12s pf=%-6s %-8s %8.1f kinstr/s\n",
					w.name, w.class, orNone(pf), sched, c.KInstrPerS)
			}
		}
	}

	traj, err := loadTrajectory(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	traj.Entries = append(traj.Entries, rep)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traj); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (run %d of the trajectory)\n", *out, len(traj.Entries))
}

// measure runs one matrix cell reps times and keeps the fastest wall time
// (the least-perturbed sample). Stats are identical across reps — runs are
// deterministic — so any rep's Result stands for the cell.
func measure(scale harness.Scale, workload, class, pf string, sched sim.Scheduler, reps int) (cell, []byte, error) {
	h := harness.New(scale)
	h.Scheduler = sched
	spec := harness.RunSpec{Workload: workload, L1DPf: pf}
	if _, err := h.Trace(workload, 0); err != nil {
		return cell{}, nil, err
	}
	best := time.Duration(1<<63 - 1)
	var res *sim.Result
	var instr uint64
	for r := 0; r < reps; r++ {
		start := time.Now()
		out, err := h.RunWith(spec, harness.RunOptions{})
		elapsed := time.Since(start)
		if err != nil {
			return cell{}, nil, fmt.Errorf("%s pf=%q %s: %w", workload, pf, sched, err)
		}
		if elapsed < best {
			best = elapsed
			res = out
			instr = scale.WarmupInstr
			for i := range out.Cores {
				instr += out.Cores[i].Core.Instructions
			}
		}
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		return cell{}, nil, err
	}
	return cell{
		Workload:   workload,
		Class:      class,
		Prefetcher: orNone(pf),
		Scheduler:  sched.String(),
		KInstrPerS: float64(instr) / 1e3 / best.Seconds(),
		Cycles:     res.Cycles,
		IPC:        res.IPC(),
	}, resJSON, nil
}

func orNone(pf string) string {
	if pf == "" {
		return "none"
	}
	return pf
}
