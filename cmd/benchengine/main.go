// Command benchengine measures raw engine throughput under both schedulers
// and writes the comparison to BENCH_engine.json.
//
// Usage:
//
//	benchengine                     # quick matrix -> BENCH_engine.json
//	benchengine -o /tmp/bench.json -reps 5
//	BERTI_SCALE=default benchengine
//
// The matrix crosses a memory-bound and a compute-bound workload with
// prefetching off and on (Berti at L1D), under the exhaustive ticked
// scheduler and the event-horizon scheduler. Each cell reports kinstr/s
// (simulated instructions, warmup included, per wall second; best of -reps)
// and the horizon cells additionally report speedup over the matching
// ticked cell. Every paired run is also byte-compared: a stats divergence
// between schedulers fails the whole command, so the benchmark doubles as a
// coarse differential check at benchmark scale.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

type cell struct {
	Workload   string  `json:"workload"`
	Class      string  `json:"class"` // membound | computebound
	Prefetcher string  `json:"prefetcher"`
	Scheduler  string  `json:"scheduler"`
	KInstrPerS float64 `json:"kinstr_per_s"`
	Cycles     uint64  `json:"cycles"`
	IPC        float64 `json:"ipc"`
	Speedup    float64 `json:"speedup_vs_ticked,omitempty"`
}

type report struct {
	Scale       string    `json:"scale"`
	MemRecords  int       `json:"mem_records"`
	WarmupInstr uint64    `json:"warmup_instr"`
	SimInstr    uint64    `json:"sim_instr"`
	Reps        int       `json:"reps"`
	GeneratedAt time.Time `json:"generated_at"`
	// CalibScore is the host-speed calibration (iterations/s of a fixed
	// arithmetic + random-memory-walk loop) measured alongside the cells.
	// kinstr/s is machine- and load-dependent; the gate scales the
	// baseline by the calibration ratio so a slower CI runner or a noisy
	// neighbour does not read as a simulator regression.
	CalibScore float64 `json:"calib_score,omitempty"`
	Cells      []cell  `json:"cells"`
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// calibScore measures single-thread host throughput with a workload shaped
// like the simulator's inner loop — hash arithmetic plus dependent loads
// over a 4 MB working set — and returns the best iterations/s of five short
// reps. The loop is independent of the simulator packages, so a code
// regression in the engine moves the cells but not the calibration, while a
// slower host or background load moves both.
func calibScore() float64 {
	buf := make([]uint64, 1<<19) // 4 MB, LLC-sized: sensitive to memory contention
	for i := range buf {
		buf[i] = uint64(i)
	}
	const inner = 1 << 22
	best := 0.0
	s := uint64(0x9e3779b97f4a7c15)
	for r := 0; r < 5; r++ {
		start := time.Now()
		acc := uint64(0)
		for i := 0; i < inner; i++ {
			s += 0x9e3779b97f4a7c15
			z := s
			z ^= z >> 30
			z *= 0xbf58476d1ce4e5b9
			z ^= z >> 27
			acc += buf[z&uint64(len(buf)-1)]
		}
		calibSink += acc
		if sc := inner / time.Since(start).Seconds(); sc > best {
			best = sc
		}
	}
	return best
}

// trajectorySchemaVersion governs the BENCH_engine.json container shape.
const trajectorySchemaVersion = 1

// trajectory is the on-disk container: every benchengine run appends its
// timestamped report, so throughput history accumulates instead of each run
// clobbering the last. Legacy single-report files (the pre-trajectory
// format) are migrated into the first entry on the next run.
type trajectory struct {
	SchemaVersion int      `json:"schema_version"`
	Entries       []report `json:"entries"`
}

// loadTrajectory reads an existing output file in either format. A missing
// file starts an empty trajectory; an unrecognized one is an error rather
// than silent clobbering.
func loadTrajectory(path string) (*trajectory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &trajectory{SchemaVersion: trajectorySchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	// Probe the container shape by key: "entries" = trajectory (possibly
	// empty), "cells" = a legacy single report.
	var probe struct {
		Entries *[]report `json:"entries"`
		Cells   *[]cell   `json:"cells"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w (move the file aside to start a fresh trajectory)", path, err)
	}
	switch {
	case probe.Entries != nil:
		var tr trajectory
		if err := json.Unmarshal(data, &tr); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		tr.SchemaVersion = trajectorySchemaVersion
		return &tr, nil
	case probe.Cells != nil:
		var legacy report
		if err := json.Unmarshal(data, &legacy); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &trajectory{SchemaVersion: trajectorySchemaVersion, Entries: []report{legacy}}, nil
	default:
		return nil, fmt.Errorf("%s: neither a benchengine trajectory nor a legacy report (move the file aside)", path)
	}
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per cell (best is kept)")
	gate := flag.Bool("gate", false,
		"compare against the last committed trajectory entry instead of appending: "+
			"exit 1 if any cell regresses by more than -gate-tol")
	gateTol := flag.Float64("gate-tol", 0.10,
		"allowed fractional kinstr/s regression per cell in -gate mode")
	flag.Parse()

	scale := harness.ScaleQuick
	if os.Getenv("BERTI_SCALE") != "" {
		scale = harness.ScaleFromEnv()
	}
	rep := report{
		Scale:       scale.Name,
		MemRecords:  scale.MemRecords,
		WarmupInstr: scale.WarmupInstr,
		SimInstr:    scale.SimInstr,
		Reps:        *reps,
		GeneratedAt: time.Now().UTC(),
		CalibScore:  calibScore(),
	}

	workloads := []struct{ name, class string }{
		{"mcf_like_1554", "membound"},
		{"deepsjeng_like", "computebound"},
	}
	for _, w := range workloads {
		for _, pf := range []string{"", "berti"} {
			var tickedCell *cell
			var tickedJSON []byte
			for _, sched := range []sim.Scheduler{sim.SchedTicked, sim.SchedHorizon} {
				c, resJSON, err := measure(scale, w.name, w.class, pf, sched, *reps)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchengine:", err)
					os.Exit(1)
				}
				if sched == sim.SchedTicked {
					tickedCell, tickedJSON = &c, resJSON
				} else {
					if !bytes.Equal(resJSON, tickedJSON) {
						fmt.Fprintf(os.Stderr, "benchengine: schedulers diverged on %s pf=%q\n", w.name, pf)
						os.Exit(1)
					}
					c.Speedup = c.KInstrPerS / tickedCell.KInstrPerS
				}
				rep.Cells = append(rep.Cells, c)
				fmt.Printf("%-16s %-12s pf=%-6s %-8s %8.1f kinstr/s\n",
					w.name, w.class, orNone(pf), sched, c.KInstrPerS)
			}
		}
	}

	traj, err := loadTrajectory(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	if *gate {
		if err := checkGate(traj, rep, *gateTol); err != nil {
			fmt.Fprintln(os.Stderr, "benchengine:", err)
			os.Exit(1)
		}
		fmt.Printf("gate: no cell regressed more than %.0f%% vs the committed trajectory\n", *gateTol*100)
		return
	}
	traj.Entries = append(traj.Entries, rep)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traj); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (run %d of the trajectory)\n", *out, len(traj.Entries))
}

// checkGate compares the fresh report against the newest committed
// trajectory entry, cell by cell keyed on (workload, prefetcher, scheduler).
// When both reports carry a calibration score the baseline is first scaled
// by the host-speed ratio, so the comparison measures the simulator, not
// the machine or its background load. A cell slower than the (scaled)
// baseline by more than tol (fractional) is a regression; cells new in
// this run (no baseline) or present only in the baseline are ignored, so
// matrix growth does not break the gate. Scale mismatches are an error:
// kinstr/s at quick scale cannot be compared to another scale's numbers.
func checkGate(traj *trajectory, fresh report, tol float64) error {
	if len(traj.Entries) == 0 {
		return fmt.Errorf("gate: no committed trajectory entry to compare against")
	}
	base := traj.Entries[len(traj.Entries)-1]
	if base.Scale != fresh.Scale {
		return fmt.Errorf("gate: baseline scale %q != current scale %q", base.Scale, fresh.Scale)
	}
	hostRatio := 1.0
	if base.CalibScore > 0 && fresh.CalibScore > 0 {
		hostRatio = fresh.CalibScore / base.CalibScore
		// Clamp: a calibration gap beyond 4x either way means the hosts
		// are not comparable at all; fall back to the raw numbers rather
		// than amplifying a bogus ratio.
		if hostRatio < 0.25 || hostRatio > 4 {
			hostRatio = 1.0
		}
		fmt.Printf("gate: host calibration ratio %.3f (baseline %.2e, now %.2e)\n",
			hostRatio, base.CalibScore, fresh.CalibScore)
	}
	key := func(c cell) string { return c.Workload + "|" + c.Prefetcher + "|" + c.Scheduler }
	baseline := make(map[string]float64, len(base.Cells))
	for _, c := range base.Cells {
		baseline[key(c)] = c.KInstrPerS * hostRatio
	}
	var failed []string
	for _, c := range fresh.Cells {
		want, ok := baseline[key(c)]
		if !ok || want <= 0 {
			continue
		}
		if c.KInstrPerS < want*(1-tol) {
			failed = append(failed, fmt.Sprintf(
				"%s pf=%s %s: %.1f kinstr/s, %.1f%% below baseline %.1f (tolerance %.0f%%)",
				c.Workload, c.Prefetcher, c.Scheduler,
				c.KInstrPerS, (1-c.KInstrPerS/want)*100, want, tol*100))
		}
	}
	if len(failed) > 0 {
		msg := "gate: throughput regression"
		for _, f := range failed {
			msg += "\n  " + f
		}
		return errors.New(msg)
	}
	return nil
}

// measure runs one matrix cell reps times and keeps the fastest wall time
// (the least-perturbed sample). Stats are identical across reps — runs are
// deterministic — so any rep's Result stands for the cell.
func measure(scale harness.Scale, workload, class, pf string, sched sim.Scheduler, reps int) (cell, []byte, error) {
	h := harness.New(scale)
	h.Scheduler = sched
	spec := harness.RunSpec{Workload: workload, L1DPf: pf}
	if _, err := h.Trace(workload, 0); err != nil {
		return cell{}, nil, err
	}
	best := time.Duration(1<<63 - 1)
	var res *sim.Result
	var instr uint64
	for r := 0; r < reps; r++ {
		start := time.Now()
		out, err := h.RunWith(spec, harness.RunOptions{})
		elapsed := time.Since(start)
		if err != nil {
			return cell{}, nil, fmt.Errorf("%s pf=%q %s: %w", workload, pf, sched, err)
		}
		if elapsed < best {
			best = elapsed
			res = out
			instr = scale.WarmupInstr
			for i := range out.Cores {
				instr += out.Cores[i].Core.Instructions
			}
		}
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		return cell{}, nil, err
	}
	return cell{
		Workload:   workload,
		Class:      class,
		Prefetcher: orNone(pf),
		Scheduler:  sched.String(),
		KInstrPerS: float64(instr) / 1e3 / best.Seconds(),
		Cycles:     res.Cycles,
		IPC:        res.IPC(),
	}, resJSON, nil
}

func orNone(pf string) string {
	if pf == "" {
		return "none"
	}
	return pf
}
