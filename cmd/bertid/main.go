// Command bertid is the campaign daemon: simulation sweeps as a
// long-running service.
//
// Usage:
//
//	bertid -addr 127.0.0.1:9090 -data ./bertid-data
//	BERTI_SCALE=quick bertid -data /var/lib/bertid
//
// Clients submit experiment spec sets over HTTP/JSON
// (POST /api/v1/campaigns) or single runs (POST /api/v1/runs — the
// endpoint cmd/experiments -server uses); the daemon validates them with
// the harness's typed config errors, dedupes every spec against the
// content-addressed result store, and fans fresh work across a sharded
// queue bounded by the harness worker pool. Every completion is journaled
// per campaign (append-only, CRC-protected) the moment it finishes, so a
// killed daemon — SIGKILL included — resumes every in-flight campaign on
// restart and finishes with a report byte-identical to an uninterrupted
// run. Live metrics (/metrics, /debug/vars) share the API listener.
//
// With -lease-only the daemon becomes a pure coordinator: specs are
// handed out in leased batches over POST /api/v1/leases to bertiworker
// processes, which heartbeat and push results back; a lease whose worker
// dies or partitions expires after -lease-ttl and its specs are
// reassigned, with duplicate late results deduped — the final report is
// byte-identical to a solo local run.
//
// The first SIGINT/SIGTERM drains gracefully: new submissions get 503,
// in-flight simulations stop cooperatively at the engine's next poll
// stride, journals are already flushed per append, and the process exits
// 0. A second signal exits immediately.
//
// Exit codes: 0 clean shutdown; 1 runtime failure; 2 usage error; 130
// forced exit by a second signal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/server"
	"github.com/bertisim/berti/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "HTTP listen address for the API and metrics")
	dataDir := flag.String("data", "bertid-data", "state root: per-campaign journals + manifests and the content-addressed result store")
	shards := flag.Int("shards", 0, "work-queue shards (0 = default)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
	flag.IntVar(workers, "j", 0, "alias for -workers")
	corpusDir := flag.String("corpus-dir", "", "cache generated traces here (v2 containers) and stream them from disk")
	checkFlag := flag.Bool("check", false, "run the invariant checker on every simulation")
	schedFlag := flag.String("sched", "horizon", "engine scheduler: horizon (event-horizon skipping) or ticked (exhaustive per-cycle reference)")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock budget (0 = 10m default, negative disables)")
	provFlag := flag.Bool("provenance", false, "track per-prefetch lifecycle provenance on every run")
	provCap := flag.Int("provenance-cap", 0, "per-run provenance record-pool capacity (0 = default 65536)")
	leaseOnly := flag.Bool("lease-only", false, "coordinator mode: hand specs to bertiworker processes via the lease endpoints instead of running them locally")
	leaseTTL := flag.Duration("lease-ttl", server.DefaultLeaseTTL, "lease lifetime without a heartbeat before specs are reassigned")
	leaseHB := flag.Duration("lease-heartbeat", 0, "heartbeat cadence suggested to workers and the expiry scan period (0 = lease-ttl/4)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "HTTP header read deadline (slowloris guard; 0 disables)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "HTTP full-request read deadline (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle deadline (0 disables)")
	flag.Parse()
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("bertid: ")

	h := harness.New(harness.ScaleFromEnv())
	if *workers > 0 {
		h.Workers = *workers
	}
	h.CorpusDir = *corpusDir
	h.EnableChecks = *checkFlag
	h.RunTimeout = *runTimeout
	h.EnableProvenance = *provFlag
	h.ProvenanceCap = *provCap
	sched, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bertid:", err)
		os.Exit(2)
	}
	h.Scheduler = sched

	// Bind before recovering: if another daemon already owns the address
	// (and very likely the data dir), fail fast instead of scanning
	// journals and re-enqueueing work a live process is mid-way through.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bertid:", err)
		os.Exit(1)
	}
	s, err := server.New(server.Options{
		Harness:           h,
		DataDir:           *dataDir,
		Shards:            *shards,
		LeaseOnly:         *leaseOnly,
		LeaseTTL:          *leaseTTL,
		HeartbeatInterval: *leaseHB,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bertid:", err)
		os.Exit(1)
	}
	// The roll-up chains onto the server's OnResult hook (installed by
	// server.New), so attribution accumulates without stealing journaling.
	if h.EnableProvenance {
		rollup := harness.NewProvenanceRollup()
		rollup.Attach(h)
		s.Live().SetAttribution(func() any { return rollup.Report() })
	}
	// WriteTimeout stays 0 on purpose: the SSE progress streams are
	// long-lived responses. The read and idle deadlines are what close a
	// slowloris connection.
	httpServer := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	mode := "local execution"
	if *leaseOnly {
		mode = "lease-only coordinator"
	}
	log.Printf("listening on http://%s (scale=%s, data=%s, %s)", ln.Addr(), h.Scale.Name, *dataDir, mode)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining — rejecting new work, letting in-flight runs stop (send again to exit immediately)", sig)
		go func() {
			<-sigc
			log.Print("second signal: exiting immediately")
			os.Exit(130)
		}()
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		log.Print("drained; journals are consistent, campaigns resume on restart")
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "bertid:", err)
			os.Exit(1)
		}
	}
}
