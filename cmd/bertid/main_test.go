package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/server"
)

// TestKillResumeByteIdentical is the daemon's crash-safety acceptance
// test, run against the real binary over real HTTP: a campaign whose
// daemon is SIGKILLed mid-flight — no drain, no flush, the hard case —
// must resume on restart and finish with a report byte-identical to the
// same sweep run uninterrupted on a pristine daemon.
func TestKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the bertid binary three times")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bertid")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building bertid binary: %v\n%s", err, out)
	}
	env := append(os.Environ(), "BERTI_SCALE=quick")
	specs := []harness.RunSpec{
		{Workload: "mcf_like_1554", L1DPf: "berti"},
		{Workload: "mcf_like_1554", L1DPf: "ip-stride"},
		{Workload: "roms_like", L1DPf: "berti"},
		{Workload: "roms_like", L1DPf: "next-line"},
		{Workload: "lbm_like", L1DPf: "berti"},
		{Workload: "lbm_like", L1DPf: "ip-stride"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	// Reference: the sweep on a pristine daemon, start to finish.
	refCl, stopRef := bootDaemon(t, ctx, bin, env, filepath.Join(dir, "ref-data"), nil)
	refAck, err := refCl.Submit(ctx, "kill-test", specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refCl.WaitCampaign(ctx, refAck.ID); err != nil {
		t.Fatal(err)
	}
	want, err := refCl.Report(ctx, refAck.ID)
	if err != nil {
		t.Fatal(err)
	}
	stopRef(os.Interrupt)

	// Life 1: single worker so the campaign takes a while; SIGKILL the
	// moment the first completion hits the journal.
	data := filepath.Join(dir, "data")
	cl, stop1 := bootDaemon(t, ctx, bin, env, data, func(cmd *exec.Cmd) {
		cmd.Args = append(cmd.Args, "-workers", "1")
	})
	ack, err := cl.Submit(ctx, "kill-test", specs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != refAck.ID {
		t.Fatalf("same sweep, different campaign IDs: %q vs %q", ack.ID, refAck.ID)
	}
	journal := filepath.Join(data, "campaigns", ack.ID+".journal")
	for {
		// Header is line 1, so two newlines mean one journaled completion.
		if raw, err := os.ReadFile(journal); err == nil && bytes.Count(raw, []byte{'\n'}) >= 2 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("no run was journaled before the deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop1(syscall.SIGKILL)

	// Life 2: a fresh daemon over the same data dir resumes and finishes.
	cl2, stop2 := bootDaemon(t, ctx, bin, env, data, nil)
	defer stop2(os.Interrupt)
	st, err := cl2.WaitCampaign(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone || st.Completed != len(specs) {
		t.Fatalf("resumed campaign finished as %+v, want done %d/%d", st, len(specs), len(specs))
	}
	got, err := cl2.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted report (%d vs %d bytes)", len(got), len(want))
	}
}

// bootDaemon starts the bertid binary on a free port over dataDir, waits
// for /healthz, and returns a client plus a stop function that signals the
// process and reaps it.
func bootDaemon(t *testing.T, ctx context.Context, bin string, env []string, dataDir string, tweak func(*exec.Cmd)) (*server.Client, func(os.Signal)) {
	t.Helper()
	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir)
	cmd.Env = env
	if tweak != nil {
		tweak(cmd)
	}
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if ctx.Err() != nil {
			cmd.Process.Kill()
			t.Fatalf("daemon never became healthy\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	stopped := false
	stop := func(sig os.Signal) {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(sig)
		cmd.Wait()
	}
	t.Cleanup(func() { stop(syscall.SIGKILL) })
	return server.NewClient(base), stop
}

// freeAddr reserves a loopback port for the daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestHealthAndValidationOverHTTP boots the daemon once and exercises the
// cheap API surface end to end: health, spec validation (typed field
// errors over the wire), and the metrics mount sharing the API listener.
func TestHealthAndValidationOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the bertid binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bertid")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building bertid binary: %v\n%s", err, out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	env := append(os.Environ(), "BERTI_SCALE=quick")
	cl, stop := bootDaemon(t, ctx, bin, env, filepath.Join(dir, "data"), nil)
	defer stop(os.Interrupt)

	_, err := cl.Submit(ctx, "bad", []harness.RunSpec{{Workload: "mcf_like_1554", L1DPf: "nope"}})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("invalid prefetcher over HTTP: got %v", err)
	}

	for _, path := range []string{"/metrics", "/debug/vars"} {
		base := cl.Base()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, decode err %v", path, resp.StatusCode, err)
		}
	}
}
