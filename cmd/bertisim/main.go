// Command bertisim runs one workload through the simulator with a chosen
// prefetcher configuration and prints the full statistics report.
//
// Usage:
//
//	bertisim -workload mcf_like_1554 -l1d berti
//	bertisim -workload bfs-kron -l1d ipcp -l2 spp-ppf -records 500000
//	bertisim -workload mcf_like_1554 -l1d berti -warmup 500000 -simulate 2000000
//	bertisim -trace big.btr2 -skip 10000000 -l1d berti
//	bertisim -workload mcf_like_1554 -l1d berti -interval 100000 \
//	    -timeseries-out ts.csv -trace-out trace.json
//	bertisim -list
//
// Windows: -warmup and -simulate override the scale's ChampSim-style
// warmup/measurement instruction windows. -skip N fast-forwards a -trace
// run N instructions before the windows begin; v2 containers (tracegen's
// default output) seek through the chunk index without decompressing the
// skipped region, v1 flat streams are scanned linearly.
//
// Observability: -interval N samples all counters every N retired
// instructions into a per-interval time series (written to
// -timeseries-out as CSV or JSON by extension, and embedded in the -json
// report); -trace-out records structured events (demand misses, prefetch
// issue/fill/use/evict, MSHR stalls, TLB walks) into a bounded ring buffer
// and writes Chrome trace_event JSON loadable in chrome://tracing or
// Perfetto; -pprof serves net/http/pprof for profiling the simulator
// itself. Simulation throughput (kinstr/s) is reported on stderr.
//
// Robustness: -check runs the invariant checker (MSHR leaks, queue bounds,
// duplicate tags, ROB/TLB consistency) alongside the simulation;
// -fault-plan kind[:key=value,...] injects deterministic faults (see
// internal/fault) to exercise the checker and the error paths.
//
// Exit codes: 0 success; 1 runtime failure (I/O, stall, corrupt trace);
// 2 usage error (unknown workload/prefetcher, bad flags, bad fault plan);
// 3 invariant violations detected; 130 interrupted by SIGINT/SIGTERM (the
// first signal cancels the run cooperatively, a second exits immediately).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/check"
	"github.com/bertisim/berti/internal/energy"
	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/obs"
	"github.com/bertisim/berti/internal/obs/live"
	"github.com/bertisim/berti/internal/obs/provenance"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/tracestore"
	"github.com/bertisim/berti/internal/workloads"
)

// Exit codes (see package comment).
const (
	exitOK          = 0
	exitRunFailed   = 1
	exitUsage       = 2
	exitViolations  = 3
	exitInterrupted = 130
)

func main() {
	workload := flag.String("workload", "mcf_like_1554", "workload name")
	traceFile := flag.String("trace", "", "run a trace file (from tracegen) instead of a generated workload")
	l1d := flag.String("l1d", "berti", "L1D prefetcher (empty = none)")
	l2 := flag.String("l2", "", "L2 prefetcher (empty = none)")
	dramCfg := flag.String("dram", "", "DRAM config: ddr5-6400 (default), ddr4-3200, ddr3-1600")
	records := flag.Int("records", 0, "memory records to generate (0 = scale default)")
	warmup := flag.Int64("warmup", -1, "warmup instructions before measurement (-1 = scale default)")
	simulate := flag.Int64("simulate", -1, "measured instructions after warmup (-1 = scale default)")
	skip := flag.Uint64("skip", 0, "instructions to fast-forward a -trace run before the windows start")
	list := flag.Bool("list", false, "list workloads and prefetchers, then exit")
	jsonOut := flag.Bool("json", false, "emit the report as JSON (machine-readable)")
	interval := flag.Uint64("interval", 0, "sample counters every N retired instructions (0 = sampling off)")
	tsOut := flag.String("timeseries-out", "", "write the sampled time series to this file (.json = JSON, else CSV)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of structured events to this file")
	traceBuf := flag.Int("trace-buf", 1<<16, "event-trace ring-buffer capacity (oldest events overwritten)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	provOut := flag.String("provenance-out", "", "write the per-prefetch provenance attribution report to this file (.json = JSON, else CSV); implies -provenance")
	provFlag := flag.Bool("provenance", false, "track per-prefetch lifecycle provenance (attribution embedded in the -json report)")
	provCap := flag.Int("provenance-cap", 0, "provenance record-pool capacity (0 = default 65536); overflowing prefetches go untracked and are counted")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics (JSON snapshot + expvar) on this address, e.g. localhost:8090")
	checkFlag := flag.Bool("check", false, "run the invariant checker alongside the simulation")
	faultSpec := flag.String("fault-plan", "", "inject deterministic faults: kind[:key=value,...] (kinds: corrupt-record, truncate, drop-fill, delay-fill, dup-line, pq-orphan)")
	schedFlag := flag.String("sched", "horizon", "engine scheduler: horizon (event-horizon skipping) or ticked (exhaustive per-cycle reference)")
	flag.Parse()
	sched, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bertisim:", err)
		os.Exit(exitUsage)
	}

	var faultPlan *fault.Plan
	if *faultSpec != "" {
		var err error
		faultPlan, err = fault.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bertisim:", err)
			os.Exit(exitUsage)
		}
	}
	// A fault plan without -check would inject damage nothing looks for;
	// checking is what makes the injection observable.
	runChecked := *checkFlag || faultPlan != nil

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			memInt := ""
			if w.MemIntensive {
				memInt = " [MemInt]"
			}
			fmt.Printf("  %-24s %s%s\n", w.Name, w.Suite, memInt)
		}
		fmt.Println("prefetchers:")
		for _, e := range prefetch.All() {
			level := "L1D"
			if e.Level == prefetch.AtL2 {
				level = "L2 "
			}
			fmt.Printf("  %-12s %s  %s\n", e.Name, level, e.Comment)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}

	// A live metrics endpoint needs sampler rows to serve; sampling and
	// writing a time series each imply a sane default interval.
	if (*tsOut != "" || *metricsAddr != "") && *interval == 0 {
		*interval = 100_000
	}
	if *traceOut != "" && *traceBuf <= 0 {
		fmt.Fprintln(os.Stderr, "bertisim: -trace-buf must be > 0")
		os.Exit(2)
	}
	// Fail on unwritable output paths now, not after a long simulation.
	ensureWritable(*tsOut)
	ensureWritable(*traceOut)
	ensureWritable(*provOut)
	var observer *obs.Observer
	if *interval > 0 || *traceOut != "" {
		observer = &obs.Observer{}
		if *interval > 0 {
			observer.Sampler = obs.NewSampler(*interval)
		}
		if *traceOut != "" {
			observer.Tracer = obs.NewTracer(*traceBuf)
		}
	}

	var tracker *provenance.Tracker
	if *provFlag || *provOut != "" {
		tracker = provenance.NewTracker(*provCap)
	}
	var metrics *live.Server
	if *metricsAddr != "" {
		var err error
		metrics, err = live.New(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bertisim:", err)
			os.Exit(exitUsage)
		}
		defer metrics.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", metrics.Addr())
		if observer != nil && observer.Sampler != nil {
			observer.Sampler.OnRow = metrics.RecordRow
		}
	}

	scale := harness.ScaleFromEnv()
	if *records > 0 {
		scale.MemRecords = *records
	}
	if *warmup >= 0 {
		scale.WarmupInstr = uint64(*warmup)
	}
	if *simulate == 0 {
		fmt.Fprintln(os.Stderr, "bertisim: -simulate must be > 0")
		os.Exit(exitUsage)
	}
	if *simulate > 0 {
		scale.SimInstr = uint64(*simulate)
	}
	if *skip > 0 && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "bertisim: -skip only applies with -trace (generated workloads start at instruction 0)")
		os.Exit(exitUsage)
	}
	// Graceful shutdown: the first SIGINT/SIGTERM cancels the run at the
	// engine's next poll stride; a second signal exits immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nbertisim: %v: cancelling run (send again to exit immediately)\n", s)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "bertisim: second signal: exiting immediately")
		os.Exit(exitInterrupted)
	}()

	h := harness.New(scale)
	h.Scheduler = sched
	h.SetContext(ctx)

	var checker *check.Checker
	if runChecked {
		checker = check.New()
	}

	var res, base *sim.Result
	var runErr, baseErr error
	var elapsed time.Duration
	if *traceFile != "" {
		// runMachine wires one reader through the engine with this run's
		// observability hooks; both the v1 and v2 paths share it.
		runMachine := func(rd trace.Reader, l1, l2 string, o *obs.Observer, ck *check.Checker, fp *fault.Plan, pv *provenance.Tracker) (*sim.Result, error) {
			cfg := sim.DefaultConfig()
			cfg.WarmupInstructions = scale.WarmupInstr
			cfg.SimInstructions = scale.SimInstr
			var l1f, l2f sim.PrefetcherFactory
			if l1 != "" {
				e, ok := prefetch.ByName(l1)
				if !ok {
					fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", l1)
					os.Exit(exitUsage)
				}
				l1f = func() cache.Prefetcher { return e.New() }
			}
			if l2 != "" {
				e, ok := prefetch.ByName(l2)
				if !ok {
					fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", l2)
					os.Exit(exitUsage)
				}
				l2f = func() cache.Prefetcher { return e.New() }
			}
			m, err := sim.New(cfg, []trace.Reader{rd}, l1f, l2f)
			if err != nil {
				return nil, err
			}
			m.SetScheduler(sched)
			m.SetContext(ctx)
			m.SetObserver(o)
			if ck != nil {
				m.SetChecker(ck, 0, 0)
			}
			if pv != nil {
				m.SetProvenance(pv)
			}
			if fp != nil && !fp.TraceFault() {
				m.SetFaultPlan(fp)
			}
			return m.Run()
		}
		var run func(l1, l2 string, o *obs.Observer, ck *check.Checker, fp *fault.Plan, pv *provenance.Tracker) (*sim.Result, error)
		if sniffV2(*traceFile) {
			if faultPlan != nil && faultPlan.TraceFault() {
				fmt.Fprintln(os.Stderr, "bertisim: trace-level fault plans need a v1 trace (v2 chunks are CRC-checked; use tracegen -format v1)")
				os.Exit(exitUsage)
			}
			tf, err := tracestore.Open(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bertisim:", err)
				os.Exit(exitRunFailed)
			}
			defer tf.Close()
			if *skip > 0 && *skip >= tf.Meta().Instructions {
				fmt.Fprintf(os.Stderr, "bertisim: -skip %d is beyond the trace's %d instructions\n",
					*skip, tf.Meta().Instructions)
				os.Exit(exitUsage)
			}
			run = func(l1, l2 string, o *obs.Observer, ck *check.Checker, fp *fault.Plan, pv *provenance.Tracker) (*sim.Result, error) {
				// Fresh window reader per run: the main and baseline runs each
				// stream the file independently.
				rd, err := tf.NewWindowReader(*skip, tracestore.ReaderOptions{Loop: true})
				if err != nil {
					return nil, err
				}
				defer rd.Close()
				return runMachine(rd, l1, l2, o, ck, fp, pv)
			}
		} else {
			data, err := os.ReadFile(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(exitRunFailed)
			}
			if faultPlan != nil && faultPlan.TraceFault() {
				data = faultPlan.MutateTrace(data, trace.MagicLen)
			}
			tr, err := trace.Decode(bytes.NewReader(data))
			if err != nil {
				fmt.Fprintln(os.Stderr, "decoding trace:", err)
				os.Exit(exitRunFailed)
			}
			if *skip > 0 {
				if *skip >= tr.Instructions() {
					fmt.Fprintf(os.Stderr, "bertisim: -skip %d is beyond the trace's %d instructions\n",
						*skip, tr.Instructions())
					os.Exit(exitUsage)
				}
				// No chunk index in a v1 stream: scan to the same boundary
				// FastForward lands on for v2.
				tr.Records = tr.Records[skipIndex(tr, *skip):]
			}
			run = func(l1, l2 string, o *obs.Observer, ck *check.Checker, fp *fault.Plan, pv *provenance.Tracker) (*sim.Result, error) {
				return runMachine(trace.NewLoopReader(tr), l1, l2, o, ck, fp, pv)
			}
		}
		start := time.Now()
		res, runErr = run(*l1d, *l2, observer, checker, faultPlan, tracker)
		elapsed = time.Since(start)
		if runErr == nil {
			base, baseErr = run("ip-stride", "", nil, nil, nil, nil)
		}
		*workload = *traceFile
	} else {
		if _, ok := workloads.ByName(*workload); !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *workload)
			os.Exit(exitUsage)
		}
		spec := harness.RunSpec{Workload: *workload, L1DPf: *l1d, L2Pf: *l2, DRAMCfg: *dramCfg}
		start := time.Now()
		if observer != nil || checker != nil || faultPlan != nil || tracker != nil {
			res, runErr = h.RunWith(spec, harness.RunOptions{
				Observer: observer, Checker: checker, Fault: faultPlan, Provenance: tracker,
			})
		} else {
			res, runErr = h.Run(spec)
		}
		elapsed = time.Since(start)
		if runErr == nil {
			base, baseErr = h.Run(harness.RunSpec{Workload: *workload, L1DPf: "ip-stride", DRAMCfg: *dramCfg})
		}
	}
	if runErr != nil {
		if metrics != nil {
			metrics.RunFailed()
		}
		exitForError(runErr, checker)
	}
	if metrics != nil {
		metrics.RunCompleted()
		if p := res.Provenance; p != nil {
			metrics.SetAttribution(func() any { return p })
		}
	}
	if baseErr != nil {
		if sim.IsCancel(baseErr) {
			fmt.Fprintln(os.Stderr, "bertisim: run interrupted during the baseline; no report was produced")
			os.Exit(exitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "bertisim: baseline run failed:", baseErr)
		os.Exit(exitRunFailed)
	}
	if checker != nil {
		// A checked run that produced violations returns them as runErr above,
		// so reaching here means every invariant held.
		fmt.Fprintln(os.Stderr, "check: all invariants held")
	}

	if elapsed > 0 {
		kinstr := float64(res.Config.SimInstructions+res.Config.WarmupInstructions) / 1000
		fmt.Fprintf(os.Stderr, "sim throughput: %.0f kinstr/s (%.2fs wall, %d measured cycles)\n",
			kinstr/elapsed.Seconds(), elapsed.Seconds(), res.Cycles)
	}
	writeObservability(observer, res, *tsOut, *traceOut)
	writeProvenance(res.Provenance, *provOut)

	instr := res.Config.SimInstructions
	c := &res.Cores[0]
	if *jsonOut {
		emitJSON(*workload, *l1d, *l2, res, base)
		return
	}
	fmt.Printf("workload: %s  l1d=%q l2=%q\n", *workload, *l1d, *l2)
	fmt.Printf("IPC            %.4f  (IP-stride baseline %.4f, speedup %.3fx)\n",
		res.IPC(), base.IPC(), harness.SpeedupOver(res, base))
	fmt.Printf("L1D  accesses=%d hits=%d misses=%d MPKI=%.1f avgFillLat=%.0f cyc\n",
		c.L1D.DemandAccesses, c.L1D.DemandHits, c.L1D.DemandMisses,
		c.L1D.MPKI(instr), c.L1D.AvgFillLatency())
	fmt.Printf("     prefetch: issued=%d fills=%d useful=%d late=%d useless=%d dropped=%d\n",
		c.L1D.PrefIssued, c.L1D.PrefFills, c.L1D.PrefUseful, c.L1D.PrefLate,
		c.L1D.PrefUseless, c.L1D.PrefDropped)
	fmt.Printf("     accuracy=%.3f timelyFraction=%.3f\n", c.L1D.Accuracy(), c.L1D.TimelyFraction())
	fmt.Printf("L2   accesses=%d misses=%d MPKI=%.1f pfFills=%d pfUseful=%d\n",
		c.L2.DemandAccesses, c.L2.DemandMisses, c.L2.MPKI(instr), c.L2.PrefFills, c.L2.PrefUseful)
	fmt.Printf("LLC  accesses=%d misses=%d MPKI=%.1f\n",
		res.LLC.DemandAccesses, res.LLC.DemandMisses, res.LLC.MPKI(instr))
	fmt.Printf("DRAM reads=%d writes=%d rowHit=%d rowMiss=%d rowConf=%d busBusy=%.2f\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHits, res.DRAM.RowMisses,
		res.DRAM.RowConflicts, float64(res.DRAM.BusyCycles)/float64(res.Cycles))
	tr := res.Traffic()
	l2t, llct, drt := tr.Total()
	fmt.Printf("traffic lines: L1D<->L2=%d L2<->LLC=%d LLC<->DRAM=%d\n", l2t, llct, drt)
	e := energy.Compute(energy.Default22nm(), res)
	fmt.Printf("dynamic energy (uJ): L1D=%.1f L2=%.1f LLC=%.1f DRAM=%.1f total=%.1f\n",
		e.L1D/1e6, e.L2/1e6, e.LLC/1e6, e.DRAM/1e6, e.Total()/1e6)
	fmt.Printf("TLB  dTLBmiss=%d STLBmiss=%d walks=%d pfDropTLB=%d\n",
		c.TLB.DTLBMisses, c.TLB.STLBMisses, c.TLB.PageWalks, c.TLB.PrefDropTLB)
	if ts := res.TimeSeries; ts != nil && len(ts.Rows) > 0 {
		last := &ts.Rows[len(ts.Rows)-1]
		fmt.Printf("timeseries: %d intervals of %d instr (last: ipc=%.3f acc=%.3f)\n",
			len(ts.Rows), ts.IntervalInstr, last.IPC, last.PfAccuracy)
	}
	printProvenance(res.Provenance)
}

// printProvenance renders the human-readable attribution summary: per-level
// outcome totals with mean slack, then the heaviest trigger PCs and deltas
// with Berti's claimed confidence next to the measured timely rate.
func printProvenance(p *provenance.Report) {
	if p == nil {
		return
	}
	fmt.Printf("provenance: pool=%d overflow=%d live_at_end=%d\n",
		p.Capacity, p.Overflow, p.LiveAtEnd)
	for i := range p.Levels {
		l := &p.Levels[i]
		fmt.Printf("  %-4s issued=%d spawned=%d fills=%d timely=%d late=%d useless=%d dropped=%d avgSlack=%.0f avgFillLat=%.0f\n",
			l.Level, l.Issued, l.Spawned, l.Fills, l.Timely, l.Late, l.Useless,
			l.Dropped, l.Slack.Mean(), l.FillLatency.Mean())
	}
	printRows := func(kind string, rows []provenance.Row) {
		if len(rows) == 0 {
			return
		}
		fmt.Printf("  top %s (issued / claimed conf -> timely rate, avg slack):\n", kind)
		for i := range rows {
			r := &rows[i]
			fmt.Printf("    %-18s issued=%-8d conf=%3.0f%% -> timely=%.2f slack=%.0f\n",
				r.Key, r.Issued, r.AvgConf, r.TimelyRate, r.AvgSlack)
		}
	}
	printRows("trigger PCs", p.TopPCs(5))
	printRows("deltas", p.TopDeltas(5))
}

// writeProvenance persists the attribution report (.json = JSON document,
// anything else = attribution CSV).
func writeProvenance(p *provenance.Report, path string) {
	if path == "" {
		return
	}
	if p == nil {
		fmt.Fprintln(os.Stderr, "provenance: no report produced")
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provenance:", err)
		os.Exit(1)
	}
	if strings.HasSuffix(path, ".json") {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(p)
	} else {
		err = p.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "provenance:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "provenance: wrote attribution (%d PCs, %d deltas) to %s\n",
		len(p.PCs), len(p.Deltas), path)
}

// sniffV2 reports whether path starts with the v2 container magic. Errors
// fall through to the v1 decoder, which reports them properly.
func sniffV2(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, tracestore.HeadMagicLen)
	n, _ := io.ReadFull(f, buf)
	return tracestore.IsV2Header(buf[:n])
}

// skipIndex returns the index of the first record whose retirement pushes
// the cumulative instruction count past target — the same boundary
// tracestore.(*File).FastForward seeks to, computed by linear scan.
func skipIndex(tr *trace.Slice, target uint64) int {
	var cum uint64
	for i := range tr.Records {
		cost := uint64(tr.Records[i].NonMemBefore) + 1
		if cum+cost > target {
			return i
		}
		cum += cost
	}
	return len(tr.Records)
}

// exitForError reports a failed run and exits with the code matching the
// error class: invariant violations get their own code (and a listing of the
// recorded violations) so scripts can distinguish "the simulator broke" from
// "the simulator caught breakage".
func exitForError(err error, checker *check.Checker) {
	if sim.IsCancel(err) {
		fmt.Fprintln(os.Stderr, "bertisim: run interrupted before completion; no report was produced")
		os.Exit(exitInterrupted)
	}
	var ve *check.ViolationError
	if errors.As(err, &ve) {
		fmt.Fprintf(os.Stderr, "bertisim: %d invariant violation(s) detected\n", ve.Total)
		for _, v := range ve.Violations {
			fmt.Fprintln(os.Stderr, "  ", v.String())
		}
		if ve.Total > len(ve.Violations) {
			fmt.Fprintf(os.Stderr, "   ... and %d more (raise check.Checker.MaxRecorded to keep them)\n",
				ve.Total-len(ve.Violations))
		}
		os.Exit(exitViolations)
	}
	fmt.Fprintln(os.Stderr, "bertisim: run failed:", err)
	if checker != nil && checker.Total() > 0 {
		fmt.Fprintf(os.Stderr, "bertisim: %d invariant violation(s) were also recorded before the failure\n",
			checker.Total())
	}
	os.Exit(exitRunFailed)
}

// ensureWritable verifies an output path can be created, exiting early with
// a clean error instead of failing after the simulation has run.
func ensureWritable(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bertisim:", err)
		os.Exit(1)
	}
	f.Close()
}

// writeObservability persists the sampled time series and the event trace.
func writeObservability(o *obs.Observer, res *sim.Result, tsOut, traceOut string) {
	if tsOut != "" && res.TimeSeries != nil {
		f, err := os.Create(tsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeseries:", err)
			os.Exit(1)
		}
		if strings.HasSuffix(tsOut, ".json") {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			err = enc.Encode(res.TimeSeries)
		} else {
			err = res.TimeSeries.WriteCSV(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeseries:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "timeseries: wrote %d intervals to %s\n",
			len(res.TimeSeries.Rows), tsOut)
	}
	if o == nil || o.Tracer == nil || traceOut == "" {
		return
	}
	f, err := os.Create(traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	err = o.Tracer.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s (%d emitted, %d dropped by ring)\n",
		len(o.Tracer.Events()), traceOut, o.Tracer.Total(), o.Tracer.Dropped())
}

// jsonReport is the machine-readable output of one run. SchemaVersion
// (obs.SchemaVersion) governs both this shape and the embedded time series.
type jsonReport struct {
	SchemaVersion int             `json:"schema_version"`
	Workload      string          `json:"workload"`
	L1DPf         string          `json:"l1d_prefetcher"`
	L2Pf          string          `json:"l2_prefetcher"`
	IPC           float64         `json:"ipc"`
	Baseline      float64         `json:"baseline_ipc"`
	Speedup       float64         `json:"speedup"`
	L1DMPKI       float64         `json:"l1d_mpki"`
	L2MPKI        float64         `json:"l2_mpki"`
	LLCMPKI       float64         `json:"llc_mpki"`
	Accuracy      float64         `json:"l1d_prefetch_accuracy"`
	Timely        float64         `json:"timely_fraction"`
	DRAMRead      uint64          `json:"dram_reads"`
	DRAMWrit      uint64          `json:"dram_writes"`
	EnergyPJ      float64         `json:"dynamic_energy_pj"`
	TimeSeries    *obs.TimeSeries `json:"time_series,omitempty"`
	Provenance    *jsonProvenance `json:"provenance,omitempty"`
}

// jsonTopN bounds the attribution rows embedded in the -json report (the
// full tables go to -provenance-out).
const jsonTopN = 10

// jsonProvenance is the -json report's condensed attribution view:
// per-level outcome stats plus the top-N trigger PCs and deltas.
type jsonProvenance struct {
	SchemaVersion int                     `json:"schema_version"`
	Capacity      int                     `json:"capacity"`
	Overflow      uint64                  `json:"overflow"`
	LiveAtEnd     uint64                  `json:"live_at_end"`
	Levels        []provenance.LevelStats `json:"levels"`
	TopPCs        []provenance.Row        `json:"top_pcs"`
	TopDeltas     []provenance.Row        `json:"top_deltas"`
	Calibration   []provenance.CalBand    `json:"calibration"`
}

// emitJSON prints the machine-readable report.
func emitJSON(workload, l1d, l2 string, res, base *sim.Result) {
	instr := res.Config.SimInstructions
	c := &res.Cores[0]
	rep := jsonReport{
		SchemaVersion: obs.SchemaVersion,
		Workload:      workload,
		L1DPf:         l1d,
		L2Pf:          l2,
		IPC:           res.IPC(),
		Baseline:      base.IPC(),
		Speedup:       harness.SpeedupOver(res, base),
		L1DMPKI:       c.L1D.MPKI(instr),
		L2MPKI:        c.L2.MPKI(instr),
		LLCMPKI:       res.LLC.MPKI(instr),
		Accuracy:      c.L1D.Accuracy(),
		Timely:        c.L1D.TimelyFraction(),
		DRAMRead:      res.DRAM.Reads,
		DRAMWrit:      res.DRAM.Writes,
		EnergyPJ:      energy.Compute(energy.Default22nm(), res).Total(),
		TimeSeries:    res.TimeSeries,
	}
	if p := res.Provenance; p != nil {
		rep.Provenance = &jsonProvenance{
			SchemaVersion: p.SchemaVersion,
			Capacity:      p.Capacity,
			Overflow:      p.Overflow,
			LiveAtEnd:     p.LiveAtEnd,
			Levels:        p.Levels,
			TopPCs:        p.TopPCs(jsonTopN),
			TopDeltas:     p.TopDeltas(jsonTopN),
			Calibration:   p.Calibration,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
