// Command bertisim runs one workload through the simulator with a chosen
// prefetcher configuration and prints the full statistics report.
//
// Usage:
//
//	bertisim -workload mcf_like_1554 -l1d berti
//	bertisim -workload bfs-kron -l1d ipcp -l2 spp-ppf -records 500000
//	bertisim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/energy"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
)

func main() {
	workload := flag.String("workload", "mcf_like_1554", "workload name")
	traceFile := flag.String("trace", "", "run a trace file (from tracegen) instead of a generated workload")
	l1d := flag.String("l1d", "berti", "L1D prefetcher (empty = none)")
	l2 := flag.String("l2", "", "L2 prefetcher (empty = none)")
	dramCfg := flag.String("dram", "", "DRAM config: ddr5-6400 (default), ddr4-3200, ddr3-1600")
	records := flag.Int("records", 0, "memory records to generate (0 = scale default)")
	list := flag.Bool("list", false, "list workloads and prefetchers, then exit")
	jsonOut := flag.Bool("json", false, "emit the report as JSON (machine-readable)")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			memInt := ""
			if w.MemIntensive {
				memInt = " [MemInt]"
			}
			fmt.Printf("  %-24s %s%s\n", w.Name, w.Suite, memInt)
		}
		fmt.Println("prefetchers:")
		for _, e := range prefetch.All() {
			level := "L1D"
			if e.Level == prefetch.AtL2 {
				level = "L2 "
			}
			fmt.Printf("  %-12s %s  %s\n", e.Name, level, e.Comment)
		}
		return
	}

	scale := harness.ScaleFromEnv()
	if *records > 0 {
		scale.MemRecords = *records
	}
	h := harness.New(scale)

	var res, base *sim.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "decoding trace:", err)
			os.Exit(1)
		}
		run := func(l1, l2 string) *sim.Result {
			cfg := sim.DefaultConfig()
			cfg.WarmupInstructions = scale.WarmupInstr
			cfg.SimInstructions = scale.SimInstr
			var l1f, l2f sim.PrefetcherFactory
			if l1 != "" {
				e, ok := prefetch.ByName(l1)
				if !ok {
					fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", l1)
					os.Exit(2)
				}
				l1f = func() cache.Prefetcher { return e.New() }
			}
			if l2 != "" {
				e, ok := prefetch.ByName(l2)
				if !ok {
					fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", l2)
					os.Exit(2)
				}
				l2f = func() cache.Prefetcher { return e.New() }
			}
			m := sim.New(cfg, []trace.Reader{trace.NewLoopReader(tr)}, l1f, l2f)
			return m.Run()
		}
		res = run(*l1d, *l2)
		base = run("ip-stride", "")
		*workload = *traceFile
	} else {
		if _, ok := workloads.ByName(*workload); !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *workload)
			os.Exit(2)
		}
		res = h.Run(harness.RunSpec{Workload: *workload, L1DPf: *l1d, L2Pf: *l2, DRAMCfg: *dramCfg})
		base = h.Run(harness.RunSpec{Workload: *workload, L1DPf: "ip-stride", DRAMCfg: *dramCfg})
	}

	instr := res.Config.SimInstructions
	c := &res.Cores[0]
	if *jsonOut {
		emitJSON(*workload, *l1d, *l2, res, base)
		return
	}
	fmt.Printf("workload: %s  l1d=%q l2=%q\n", *workload, *l1d, *l2)
	fmt.Printf("IPC            %.4f  (IP-stride baseline %.4f, speedup %.3fx)\n",
		res.IPC(), base.IPC(), harness.SpeedupOver(res, base))
	fmt.Printf("L1D  accesses=%d hits=%d misses=%d MPKI=%.1f avgFillLat=%.0f cyc\n",
		c.L1D.DemandAccesses, c.L1D.DemandHits, c.L1D.DemandMisses,
		c.L1D.MPKI(instr), c.L1D.AvgFillLatency())
	fmt.Printf("     prefetch: issued=%d fills=%d useful=%d late=%d useless=%d dropped=%d\n",
		c.L1D.PrefIssued, c.L1D.PrefFills, c.L1D.PrefUseful, c.L1D.PrefLate,
		c.L1D.PrefUseless, c.L1D.PrefDropped)
	fmt.Printf("     accuracy=%.3f timelyFraction=%.3f\n", c.L1D.Accuracy(), c.L1D.TimelyFraction())
	fmt.Printf("L2   accesses=%d misses=%d MPKI=%.1f pfFills=%d pfUseful=%d\n",
		c.L2.DemandAccesses, c.L2.DemandMisses, c.L2.MPKI(instr), c.L2.PrefFills, c.L2.PrefUseful)
	fmt.Printf("LLC  accesses=%d misses=%d MPKI=%.1f\n",
		res.LLC.DemandAccesses, res.LLC.DemandMisses, res.LLC.MPKI(instr))
	fmt.Printf("DRAM reads=%d writes=%d rowHit=%d rowMiss=%d rowConf=%d busBusy=%.2f\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHits, res.DRAM.RowMisses,
		res.DRAM.RowConflicts, float64(res.DRAM.BusyCycles)/float64(res.Cycles))
	tr := res.Traffic()
	l2t, llct, drt := tr.Total()
	fmt.Printf("traffic lines: L1D<->L2=%d L2<->LLC=%d LLC<->DRAM=%d\n", l2t, llct, drt)
	e := energy.Compute(energy.Default22nm(), res)
	fmt.Printf("dynamic energy (uJ): L1D=%.1f L2=%.1f LLC=%.1f DRAM=%.1f total=%.1f\n",
		e.L1D/1e6, e.L2/1e6, e.LLC/1e6, e.DRAM/1e6, e.Total()/1e6)
	fmt.Printf("TLB  dTLBmiss=%d STLBmiss=%d walks=%d pfDropTLB=%d\n",
		c.TLB.DTLBMisses, c.TLB.STLBMisses, c.TLB.PageWalks, c.TLB.PrefDropTLB)
}

// jsonReport is the machine-readable output of one run.
type jsonReport struct {
	Workload string  `json:"workload"`
	L1DPf    string  `json:"l1d_prefetcher"`
	L2Pf     string  `json:"l2_prefetcher"`
	IPC      float64 `json:"ipc"`
	Baseline float64 `json:"baseline_ipc"`
	Speedup  float64 `json:"speedup"`
	L1DMPKI  float64 `json:"l1d_mpki"`
	L2MPKI   float64 `json:"l2_mpki"`
	LLCMPKI  float64 `json:"llc_mpki"`
	Accuracy float64 `json:"l1d_prefetch_accuracy"`
	Timely   float64 `json:"timely_fraction"`
	DRAMRead uint64  `json:"dram_reads"`
	DRAMWrit uint64  `json:"dram_writes"`
	EnergyPJ float64 `json:"dynamic_energy_pj"`
}

// emitJSON prints the machine-readable report.
func emitJSON(workload, l1d, l2 string, res, base *sim.Result) {
	instr := res.Config.SimInstructions
	c := &res.Cores[0]
	rep := jsonReport{
		Workload: workload,
		L1DPf:    l1d,
		L2Pf:     l2,
		IPC:      res.IPC(),
		Baseline: base.IPC(),
		Speedup:  harness.SpeedupOver(res, base),
		L1DMPKI:  c.L1D.MPKI(instr),
		L2MPKI:   c.L2.MPKI(instr),
		LLCMPKI:  res.LLC.MPKI(instr),
		Accuracy: c.L1D.Accuracy(),
		Timely:   c.L1D.TimelyFraction(),
		DRAMRead: res.DRAM.Reads,
		DRAMWrit: res.DRAM.Writes,
		EnergyPJ: energy.Compute(energy.Default22nm(), res).Total(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
