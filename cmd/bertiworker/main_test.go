package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/obs/live"
	"github.com/bertisim/berti/internal/server"
)

// TestWorkerFleetChaosByteIdentical is the distributed acceptance test
// over real processes and real HTTP: a campaign on a lease-only
// coordinator, served by three bertiworker binaries — the first SIGKILLed
// mid-batch while partitioned from the coordinator, one of the survivors
// running behind the seeded network-fault injector — must finish with a
// report byte-identical to the same sweep on a plain local-execution
// daemon, with lease expiry, reassignment, and duplicate dedup observed
// in the fleet metrics.
func TestWorkerFleetChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the bertid and bertiworker binaries")
	}
	dir := t.TempDir()
	coordBin := filepath.Join(dir, "bertid")
	if out, err := exec.Command("go", "build", "-o", coordBin, "../bertid").CombinedOutput(); err != nil {
		t.Fatalf("building bertid binary: %v\n%s", err, out)
	}
	workerBin := filepath.Join(dir, "bertiworker")
	if out, err := exec.Command("go", "build", "-o", workerBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building bertiworker binary: %v\n%s", err, out)
	}
	env := append(os.Environ(), "BERTI_SCALE=quick")
	specs := []harness.RunSpec{
		{Workload: "mcf_like_1554", L1DPf: "ip-stride"},
		{Workload: "mcf_like_1554", L1DPf: "next-line"},
		{Workload: "roms_like", L1DPf: "ip-stride"},
		{Workload: "roms_like", L1DPf: "next-line"},
		{Workload: "lbm_like", L1DPf: "ip-stride"},
		{Workload: "lbm_like", L1DPf: "next-line"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	// Reference: the sweep on a pristine local-execution daemon.
	refCl, stopRef := bootCoordinator(t, ctx, coordBin, env, filepath.Join(dir, "ref-data"), nil)
	refAck, err := refCl.Submit(ctx, "fleet-chaos", specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refCl.WaitCampaign(ctx, refAck.ID); err != nil {
		t.Fatal(err)
	}
	want, err := refCl.Report(ctx, refAck.ID)
	if err != nil {
		t.Fatal(err)
	}
	stopRef(os.Interrupt)

	// Chaos coordinator: lease-only, fast TTL so expiry happens in-test.
	cl, _ := bootCoordinator(t, ctx, coordBin, env, filepath.Join(dir, "data"), func(cmd *exec.Cmd) {
		cmd.Args = append(cmd.Args, "-lease-only", "-lease-ttl", "3s", "-lease-heartbeat", "500ms")
	})
	ack, err := cl.Submit(ctx, "fleet-chaos", specs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != refAck.ID {
		t.Fatalf("same sweep, different campaign IDs: %q vs %q", ack.ID, refAck.ID)
	}

	// Victim: leases the entire batch, then the injected partition severs
	// every request after that acquire — heartbeats and result pushes
	// included. SIGKILL it the moment the coordinator records the grant:
	// no drain, no final push, the hard case.
	victim := startWorker(t, workerBin, env, cl.Base(), "victim",
		"-max-specs", "6", "-poll", "50ms", "-net-fault", "sever-after=1,sever-for=1000000")
	for {
		if fleetSnapshot(t, cl.Base()).LeasesGranted >= 1 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("victim never acquired a lease")
		}
		time.Sleep(50 * time.Millisecond)
	}
	victim.Process.Kill()
	victim.Wait()

	// Two healthy workers finish the job once the victim's lease expires;
	// one runs behind the seeded fault injector.
	startWorker(t, workerBin, env, cl.Base(), "healthy-0",
		"-max-specs", "2", "-poll", "100ms", "-net-fault", "drop=0.1,delay=0.3,delayms=5,dup=0.2,seed=7")
	startWorker(t, workerBin, env, cl.Base(), "healthy-1",
		"-max-specs", "2", "-poll", "100ms")

	st, err := cl.WaitCampaign(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone || st.Completed != len(specs) || st.Failed != 0 {
		t.Fatalf("chaos campaign finished as %+v, want done %d/%d", st, len(specs), len(specs))
	}
	got, err := cl.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet report differs from local-execution report (%d vs %d bytes)", len(got), len(want))
	}

	// Late duplicate: replay a finished entry against the victim's
	// long-dead lease (the first lease the coordinator ever granted). It
	// must be accepted-and-deduped and leave the report untouched.
	var rep server.Report
	if err := json.Unmarshal(got, &rep); err != nil {
		t.Fatal(err)
	}
	rr, err := cl.PushResults(ctx, "l000001", "victim",
		[]campaign.Entry{{Key: rep.Runs[0].Key, Result: rep.Runs[0].Result}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != 0 || rr.Duplicates != 1 {
		t.Fatalf("late replay: %+v, want 1 duplicate", rr)
	}
	again, err := cl.Report(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("late duplicate changed the report")
	}

	// The failure story must be visible in the coordinator's metrics.
	fl := fleetSnapshot(t, cl.Base())
	if fl.LeasesExpired < 1 || fl.SpecsReassigned < 1 {
		t.Fatalf("fleet metrics: %+v, want the victim's lease expired and reassigned", fl)
	}
	if fl.DuplicateResults < 1 {
		t.Fatalf("fleet metrics: %+v, want deduped duplicates", fl)
	}
	if fl.RemoteResults < uint64(len(specs)) {
		t.Fatalf("fleet metrics: %+v, want every spec landed remotely", fl)
	}
	if fl.WorkersSeen < 3 {
		t.Fatalf("fleet metrics: %+v, want all three workers registered", fl)
	}
}

// bootCoordinator starts the bertid binary on a free port over dataDir,
// waits for /healthz, and returns a client plus a stop function that
// signals the process and reaps it.
func bootCoordinator(t *testing.T, ctx context.Context, bin string, env []string, dataDir string, tweak func(*exec.Cmd)) (*server.Client, func(os.Signal)) {
	t.Helper()
	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir)
	cmd.Env = env
	if tweak != nil {
		tweak(cmd)
	}
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if ctx.Err() != nil {
			cmd.Process.Kill()
			t.Fatalf("coordinator never became healthy\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	stopped := false
	stop := func(sig os.Signal) {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(sig)
		cmd.Wait()
	}
	t.Cleanup(func() {
		stop(syscall.SIGKILL)
		if t.Failed() {
			t.Logf("coordinator %s output:\n%s", dataDir, out.String())
		}
	})
	return server.NewClient(base), stop
}

// startWorker launches one bertiworker binary against the coordinator.
// The process is SIGKILLed at cleanup (tests that want a graceful or
// mid-test stop signal it themselves first).
func startWorker(t *testing.T, bin string, env []string, serverURL, id string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-server", serverURL, "-id", id}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Env = env
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("worker %s output:\n%s", id, out.String())
		}
	})
	return cmd
}

// fleetSnapshot fetches the coordinator's /metrics fleet section.
func fleetSnapshot(t *testing.T, base string) live.FleetSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap live.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Fleet
}

// freeAddr reserves a loopback port for the coordinator to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
