// Command bertiworker is the fleet execution node: it pulls leased
// batches of run specs from a bertid coordinator (-server), executes them
// on the local harness pool, streams each result back as it lands, and
// heartbeats so the coordinator knows it is alive.
//
// Usage:
//
//	bertiworker -server http://127.0.0.1:9090
//	BERTI_SCALE=quick bertiworker -server http://coordinator:9090 -j 8
//
// Robustness is the point: transient HTTP and connection errors retry
// with deterministic exponential backoff; a lease lost to a network
// partition abandons the batch (the coordinator reassigned it) but still
// pushes whatever finished, which the coordinator dedupes; a worker
// SIGKILLed mid-batch simply stops heartbeating and its lease expires.
// -net-fault injects seeded network faults (drop/delay/duplicate/sever)
// into the worker's own HTTP client for chaos testing.
//
// The first SIGINT/SIGTERM stops in-flight runs cooperatively, pushes
// every completed result, and exits 0 (abandoned specs are reassigned
// when the lease expires); a second signal exits 130 immediately.
//
// Exit codes: 0 clean shutdown; 1 runtime failure; 2 usage error; 130
// forced exit by a second signal.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/bertisim/berti/internal/fault"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/server"
	"github.com/bertisim/berti/internal/sim"
)

func main() {
	serverURL := flag.String("server", "", "bertid coordinator base URL (required), e.g. http://127.0.0.1:9090")
	id := flag.String("id", "", "stable worker identity (default hostname-pid)")
	maxSpecs := flag.Int("max-specs", 0, "specs requested per lease (0 = coordinator default)")
	poll := flag.Duration("poll", 0, "idle wait between lease attempts when no work is pending (0 = 500ms)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
	flag.IntVar(workers, "j", 0, "alias for -workers")
	corpusDir := flag.String("corpus-dir", "", "cache generated traces here (v2 containers) and stream them from disk")
	checkFlag := flag.Bool("check", false, "run the invariant checker on every simulation")
	schedFlag := flag.String("sched", "horizon", "engine scheduler: horizon (event-horizon skipping) or ticked (exhaustive per-cycle reference)")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock budget (0 = 10m default, negative disables)")
	netFault := flag.String("net-fault", "", "seeded network-fault plan for this worker's HTTP client, e.g. drop=0.1,delay=0.2,delayms=25,dup=0.1,seed=7")
	flag.Parse()
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("bertiworker: ")

	if *serverURL == "" {
		fmt.Fprintln(os.Stderr, "bertiworker: -server is required")
		os.Exit(2)
	}
	wid := *id
	if wid == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		wid = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	h := harness.New(harness.ScaleFromEnv())
	if *workers > 0 {
		h.Workers = *workers
	}
	h.CorpusDir = *corpusDir
	h.EnableChecks = *checkFlag
	h.RunTimeout = *runTimeout
	sched, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bertiworker:", err)
		os.Exit(2)
	}
	h.Scheduler = sched

	cl := server.NewClient(*serverURL)
	if *netFault != "" {
		plan, err := fault.ParseNet(*netFault)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bertiworker:", err)
			os.Exit(2)
		}
		cl.SetTransport(plan.Transport(nil))
		log.Printf("injecting network faults: %s", plan)
	}

	w := &server.Worker{
		ID:           wid,
		Client:       cl,
		Harness:      h,
		MaxSpecs:     *maxSpecs,
		PollInterval: *poll,
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("%v: stopping in-flight runs, pushing completed results, then exiting (send again to exit immediately)", sig)
		cancel()
		<-sigc
		log.Print("second signal: exiting immediately")
		os.Exit(130)
	}()

	log.Printf("worker %s pulling from %s (scale=%s)", wid, *serverURL, h.Scale.Name)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "bertiworker:", err)
		os.Exit(1)
	}
	log.Print("clean shutdown")
}
