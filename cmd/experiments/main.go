// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run Fig8L1DSpeedup[,Fig9PerTrace,...]
//	experiments -all
//	experiments -all -j 8 -corpus-dir ~/.cache/berti-traces
//	experiments -all -journal campaign.journal -json-out results.json
//	experiments -all -journal campaign.journal -resume
//	experiments -all -server http://127.0.0.1:9090
//	BERTI_SCALE=quick experiments -all
//
// -server switches to thin-client mode: every simulation executes on a
// bertid daemon (deduped there against every other client) while the
// journal, reports, metrics, and exit codes stay local. -max-failures
// bounds the failures logged verbatim per experiment; the overflow is
// reported as suppressed but still counts toward the exit code and the
// failed-run metric.
//
// -corpus-dir enables the content-addressed trace corpus: generated
// workload traces are persisted there as v2 containers and simulations
// stream them from disk with bounded memory instead of regenerating and
// holding every trace in RAM. -j (alias -workers) bounds concurrent
// simulations. -run-timeout bounds each individual run's wall clock (a
// runaway simulation surfaces as a DeadlineError naming its spec instead
// of wedging the campaign).
//
// Crash safety: -journal records every completed run (append-only,
// CRC-protected, atomically written) the moment it finishes; -resume loads
// the journal and skips finished work, so a campaign interrupted at hour N
// re-executes only what is missing. The first SIGINT/SIGTERM cancels the
// campaign cooperatively — in-flight runs drain, the journal is flushed,
// and a partial report is printed with a resume hint; a second signal
// exits immediately. -json-out writes a deterministic machine-readable
// report of every completed run (sorted by run key), byte-identical
// between an uninterrupted campaign and an interrupted-then-resumed one.
//
// Exit codes: 0 success; 1 one or more runs failed (reports may be
// partial); 2 usage error; 130 interrupted by signal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/bertisim/berti/internal/campaign"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/obs/live"
	"github.com/bertisim/berti/internal/server"
	"github.com/bertisim/berti/internal/sim"
)

// ReportSchemaVersion governs the -json-out shape.
const ReportSchemaVersion = 1

// campaignReport is the -json-out payload: every completed run, keyed and
// sorted by the harness memo key so the bytes are deterministic.
type campaignReport struct {
	SchemaVersion int              `json:"schema_version"`
	Scale         harness.Scale    `json:"scale"`
	Partial       bool             `json:"partial,omitempty"`
	Runs          []campaign.Entry `json:"runs"`
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	runIDs := flag.String("run", "", "comma-separated experiment IDs to run")
	all := flag.Bool("all", false, "run every experiment")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
	flag.IntVar(workers, "j", 0, "alias for -workers")
	corpusDir := flag.String("corpus-dir", "", "cache generated traces here (v2 containers) and stream them from disk")
	checkFlag := flag.Bool("check", false, "run the invariant checker on every simulation")
	schedFlag := flag.String("sched", "horizon", "engine scheduler: horizon (event-horizon skipping) or ticked (exhaustive per-cycle reference)")
	journalPath := flag.String("journal", "", "journal completed runs to this file (crash-safe campaign log)")
	resume := flag.Bool("resume", false, "load the -journal and skip already-completed runs")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock budget (0 = 10m default, negative disables)")
	jsonOut := flag.String("json-out", "", "write a deterministic JSON report of every completed run to this file")
	provFlag := flag.Bool("provenance", false, "track per-prefetch lifecycle provenance on every run")
	provOut := flag.String("provenance-out", "", "write the cross-workload attribution roll-up to this file (.json = JSON, else CSV); implies -provenance")
	provCap := flag.Int("provenance-cap", 0, "per-run provenance record-pool capacity (0 = default 65536)")
	metricsAddr := flag.String("metrics-addr", "", "serve live campaign metrics (run counters, merged attribution, expvar) on this address")
	serverURL := flag.String("server", "", "thin-client mode: run every simulation on the bertid daemon at this URL; journaling, reports, and metrics stay local")
	maxFailures := flag.Int("max-failures", 0, "failures recorded verbatim per experiment (0 = default 64, negative = unbounded); overflow is suppressed from the log but still counts toward metrics and the exit code")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-24s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var selected []harness.Experiment
	switch {
	case *all:
		selected = harness.Experiments()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -journal")
		os.Exit(2)
	}

	h := harness.New(harness.ScaleFromEnv())
	if *workers > 0 {
		h.Workers = *workers
	}
	h.CorpusDir = *corpusDir
	h.EnableChecks = *checkFlag
	h.RunTimeout = *runTimeout
	h.EnableProvenance = *provFlag || *provOut != ""
	h.ProvenanceCap = *provCap
	h.MaxFailures = *maxFailures
	sched, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	h.Scheduler = sched
	// Thin-client mode: the daemon executes (and dedupes) every run; the
	// local harness keeps its memo cache, journal, metrics, and reports, so
	// everything downstream is oblivious to where the cycles were spent.
	// Execution knobs (-check, -sched, -corpus-dir, provenance) belong to
	// the daemon in this mode.
	if *serverURL != "" {
		h.Remote = server.NewClient(*serverURL).Run
		fmt.Fprintf(os.Stderr, "experiments: running on daemon %s\n", *serverURL)
	}

	// The crash-safe campaign log: every completed run is journaled as it
	// finishes; -resume seeds the memo cache so finished work is skipped.
	var journal *campaign.Journal
	if *journalPath != "" {
		if *resume {
			journal, err = campaign.OpenOrCreate(*journalPath, h.Scale)
		} else {
			journal, err = campaign.Create(*journalPath, h.Scale)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		journal.Attach(h)
		if *resume {
			if d := journal.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "experiments: journal had %d damaged tail record(s); truncated, those runs re-execute\n", d)
			}
			if n := journal.Seed(h); n > 0 {
				fmt.Fprintf(os.Stderr, "experiments: resume: %d completed run(s) loaded from %s\n", n, *journalPath)
			}
		}
	}

	// The attribution roll-up chains onto the journal's OnResult hook
	// (journaling keeps firing), merging every run's provenance report.
	var rollup *harness.ProvenanceRollup
	if h.EnableProvenance {
		rollup = harness.NewProvenanceRollup()
		rollup.Attach(h)
	}
	var metrics *live.Server
	if *metricsAddr != "" {
		metrics, err = live.New(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		defer metrics.Close()
		fmt.Fprintf(os.Stderr, "experiments: metrics: http://%s/metrics\n", metrics.Addr())
		prev := h.OnResult
		h.OnResult = func(key string, spec harness.RunSpec, r *sim.Result) {
			if prev != nil {
				prev(key, spec, r)
			}
			metrics.RunCompleted()
		}
		if rollup != nil {
			metrics.SetAttribution(func() any { return rollup.Report() })
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the campaign
	// context — in-flight simulations stop at the engine's next poll
	// stride, the worker pool drains, and the journal keeps everything
	// that finished. A second signal exits immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nexperiments: %v: cancelling campaign; in-flight runs are draining (send again to exit immediately)\n", s)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "experiments: second signal: exiting immediately")
		os.Exit(130)
	}()
	h.SetContext(ctx)

	fmt.Printf("scale=%s (%d mem records, %d warmup, %d measured instructions)\n\n",
		h.Scale.Name, h.Scale.MemRecords, h.Scale.WarmupInstr, h.Scale.SimInstr)
	failed := 0
	interrupted := false
	for _, e := range selected {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		fmt.Printf("--- %s (%s) ---\n", e.ID, e.Paper)
		e.Run(h, os.Stdout)
		fmt.Printf("[%s took %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		// Experiments render from the surviving runs; report what was lost
		// so a partially-failed artifact is never mistaken for a clean one.
		// Failures are scoped per experiment (noteFailures resets them).
		failed += noteFailures(h, e.ID, metrics)
		if ctx.Err() != nil {
			interrupted = true
			break
		}
	}

	if journal != nil {
		if err := journal.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: journal writes failed (campaign is NOT resumable): %v\n", err)
			failed++
		}
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, h, interrupted); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing -json-out:", err)
			os.Exit(1)
		}
	}
	if rollup != nil && *provOut != "" {
		// Written even when interrupted: a partial campaign's attribution is
		// still attribution for the runs that finished.
		if err := writeRollup(*provOut, rollup); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing -provenance-out:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		fmt.Println("*** PARTIAL REPORT: campaign interrupted before completion ***")
		if journal != nil {
			fmt.Printf("*** %d completed run(s) are journaled; resume with: experiments -journal %s -resume ***\n",
				journal.Len(), *journalPath)
		} else {
			fmt.Println("*** no journal was active; rerun with -journal FILE to make campaigns resumable ***")
		}
		os.Exit(130)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d run(s) failed; reports above may be partial\n", failed)
		os.Exit(1)
	}
}

// noteFailures folds one experiment's failure report into the campaign
// exit code and the live metrics, then resets the per-experiment scope.
// Failures are capped by the harness (-max-failures); the overflow is
// suppressed only from the verbatim log — every suppressed failure still
// counts toward the returned total and the failed-run metric, so a
// campaign whose failure set blew past the cap can never masquerade as
// clean in either the exit code or /metrics.
func noteFailures(h *harness.Harness, expID string, metrics *live.Server) int {
	failed := 0
	for _, f := range h.Failures() {
		failed++
		var dle *sim.DeadlineError
		if errors.As(f, &dle) {
			fmt.Fprintf(os.Stderr, "experiments: %s: run-timeout %v exceeded by spec %s (cycle %d; raise -run-timeout or lower BERTI_SCALE)\n",
				expID, dle.Limit, f.Spec.Key(), dle.Snapshot.Cycle)
			continue
		}
		fmt.Fprintf(os.Stderr, "experiments: %s: run failed: %v\n", expID, f)
	}
	if n := h.SuppressedFailures(); n > 0 {
		failed += n
		cap := h.MaxFailures
		if cap == 0 {
			cap = harness.DefaultMaxFailures
		}
		fmt.Fprintf(os.Stderr, "experiments: %s: ... and %d more failure(s) suppressed (cap %d)\n", expID, n, cap)
	}
	if metrics != nil {
		for i := 0; i < failed; i++ {
			metrics.RunFailed()
		}
	}
	h.ResetFailures()
	return failed
}

// writeReport emits the deterministic campaign report: every memoized
// completed run sorted by key. An interrupted campaign is marked partial;
// a completed one (resumed or not) produces byte-identical output for the
// same scale and run set.
func writeReport(path string, h *harness.Harness, partial bool) error {
	results := h.Results()
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rep := campaignReport{
		SchemaVersion: ReportSchemaVersion,
		Scale:         h.Scale,
		Partial:       partial,
		Runs:          make([]campaign.Entry, 0, len(keys)),
	}
	for _, k := range keys {
		rep.Runs = append(rep.Runs, campaign.Entry{Key: k, Result: results[k]})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	err = enc.Encode(rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeRollup persists the cross-workload attribution roll-up (.json = the
// full roll-up document, anything else = the merged attribution CSV).
func writeRollup(path string, rollup *harness.ProvenanceRollup) error {
	rep := rollup.Report()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = rep.WriteJSON(f)
	} else {
		err = rep.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "experiments: wrote attribution roll-up (%d run(s), %d workload(s)) to %s\n",
			rep.Runs, len(rep.Workloads), path)
	}
	return err
}
