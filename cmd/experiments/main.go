// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run Fig8L1DSpeedup[,Fig9PerTrace,...]
//	experiments -all
//	experiments -all -j 8 -corpus-dir ~/.cache/berti-traces
//	BERTI_SCALE=quick experiments -all
//
// -corpus-dir enables the content-addressed trace corpus: generated
// workload traces are persisted there as v2 containers and simulations
// stream them from disk with bounded memory instead of regenerating and
// holding every trace in RAM. -j (alias -workers) bounds concurrent
// simulations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	runIDs := flag.String("run", "", "comma-separated experiment IDs to run")
	all := flag.Bool("all", false, "run every experiment")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
	flag.IntVar(workers, "j", 0, "alias for -workers")
	corpusDir := flag.String("corpus-dir", "", "cache generated traces here (v2 containers) and stream them from disk")
	checkFlag := flag.Bool("check", false, "run the invariant checker on every simulation")
	schedFlag := flag.String("sched", "horizon", "engine scheduler: horizon (event-horizon skipping) or ticked (exhaustive per-cycle reference)")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-24s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var selected []harness.Experiment
	switch {
	case *all:
		selected = harness.Experiments()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	h := harness.New(harness.ScaleFromEnv())
	if *workers > 0 {
		h.Workers = *workers
	}
	h.CorpusDir = *corpusDir
	h.EnableChecks = *checkFlag
	sched, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	h.Scheduler = sched
	fmt.Printf("scale=%s (%d mem records, %d warmup, %d measured instructions)\n\n",
		h.Scale.Name, h.Scale.MemRecords, h.Scale.WarmupInstr, h.Scale.SimInstr)
	failed := 0
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("--- %s (%s) ---\n", e.ID, e.Paper)
		before := len(h.Failures())
		e.Run(h, os.Stdout)
		fmt.Printf("[%s took %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		// Experiments render from the surviving runs; report what was lost
		// so a partially-failed artifact is never mistaken for a clean one.
		for _, f := range h.Failures()[before:] {
			failed++
			fmt.Fprintf(os.Stderr, "experiments: %s: run failed: %v\n", e.ID, f)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d run(s) failed; reports above may be partial\n", failed)
		os.Exit(1)
	}
}
