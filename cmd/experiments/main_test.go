package main

import (
	"bytes"
	"errors"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestKillAndResume is the end-to-end crash-safety acceptance test: a
// campaign interrupted by SIGINT and resumed from its journal must produce
// a final JSON report byte-identical to an uninterrupted campaign — even
// after the journal's tail is torn, which must cost only the torn record.
//
// AblCalibration is used because it is the cheapest registered experiment
// with enough harness runs (~50 at quick scale) that a signal fired after
// the first journaled run always interrupts real in-flight work.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the experiments binary three times")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building experiments binary: %v\n%s", err, out)
	}
	env := append(os.Environ(), "BERTI_SCALE=quick")
	const expID = "AblCalibration"

	// Reference: the same campaign run start to finish, no journal.
	refJSON := filepath.Join(dir, "reference.json")
	cmd := exec.Command(bin, "-run", expID, "-json-out", refJSON)
	cmd.Env = env
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("uninterrupted campaign failed: %v\n%s", err, out)
	}

	// Interrupted: journal on, SIGINT once at least one run is journaled.
	gotJSON := filepath.Join(dir, "resumed.json")
	journal := filepath.Join(dir, "campaign.journal")
	interrupted := exec.Command(bin, "-run", expID, "-journal", journal, "-json-out", gotJSON)
	interrupted.Env = env
	var conOut bytes.Buffer
	interrupted.Stdout, interrupted.Stderr = &conOut, &conOut
	if err := interrupted.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		// Header is line 1, so two newlines mean one journaled run.
		if data, err := os.ReadFile(journal); err == nil && bytes.Count(data, []byte{'\n'}) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			interrupted.Process.Kill()
			t.Fatalf("no run was journaled within the deadline\n%s", conOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := interrupted.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := interrupted.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("interrupted campaign must exit 130, got %v\n%s", err, conOut.String())
	}
	if !bytes.Contains(conOut.Bytes(), []byte("PARTIAL REPORT")) {
		t.Fatalf("interrupted campaign must mark its report partial\n%s", conOut.String())
	}
	if !bytes.Contains(conOut.Bytes(), []byte("-resume")) {
		t.Fatalf("interrupted campaign must print a resume hint\n%s", conOut.String())
	}
	if partial, err := os.ReadFile(gotJSON); err != nil || !bytes.Contains(partial, []byte(`"partial": true`)) {
		t.Fatalf("interrupted -json-out must carry the partial flag (err=%v)", err)
	}

	// Tear the journal tail (a crash mid-append): resume must truncate the
	// damaged record and re-run it, not fail.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 40 {
		t.Fatalf("journal implausibly small: %d bytes", len(data))
	}
	if err := os.WriteFile(journal, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := exec.Command(bin, "-run", expID, "-journal", journal, "-resume", "-json-out", gotJSON)
	resumed.Env = env
	resOut, err := resumed.CombinedOutput()
	if err != nil {
		t.Fatalf("resumed campaign failed: %v\n%s", err, resOut)
	}
	if !bytes.Contains(resOut, []byte("damaged tail")) {
		t.Fatalf("resume must report the truncated record\n%s", resOut)
	}

	want, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed report differs from the uninterrupted one (%d vs %d bytes)", len(want), len(got))
	}
}

// TestSuppressedFailuresStillFail: when a campaign's failure set blows
// past -max-failures, the overflow is suppressed from the log but must
// still fail the exit code — a fully-broken campaign can never look any
// cleaner than a partially-broken one.
func TestSuppressedFailuresStillFail(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the experiments binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building experiments binary: %v\n%s", err, out)
	}
	// A 1ns run timeout fails every run; -max-failures 1 records one
	// verbatim and suppresses the rest.
	cmd := exec.Command(bin, "-run", "AblCalibration", "-run-timeout", "1ns", "-max-failures", "1")
	cmd.Env = append(os.Environ(), "BERTI_SCALE=quick")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("all-suppressed failures must exit 1, got %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("suppressed (cap 1)")) {
		t.Fatalf("suppressed overflow must be reported with its cap\n%s", out)
	}
}

// TestServerThinClient: -server delegates every simulation to a bertid
// daemon while reports stay local — so the thin client's -json-out must be
// byte-identical to a purely local run of the same experiment.
func TestServerThinClient(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two binaries and runs a daemon")
	}
	dir := t.TempDir()
	expBin := filepath.Join(dir, "experiments")
	daemonBin := filepath.Join(dir, "bertid")
	if out, err := exec.Command("go", "build", "-o", expBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building experiments binary: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", daemonBin, "../bertid").CombinedOutput(); err != nil {
		t.Fatalf("building bertid binary: %v\n%s", err, out)
	}
	env := append(os.Environ(), "BERTI_SCALE=quick")
	const expID = "AblCalibration"

	localJSON := filepath.Join(dir, "local.json")
	local := exec.Command(expBin, "-run", expID, "-json-out", localJSON)
	local.Env = env
	if out, err := local.CombinedOutput(); err != nil {
		t.Fatalf("local campaign failed: %v\n%s", err, out)
	}

	// Boot the daemon on a reserved loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	daemon := exec.Command(daemonBin, "-addr", addr, "-data", filepath.Join(dir, "data"))
	daemon.Env = env
	var dout bytes.Buffer
	daemon.Stdout, daemon.Stderr = &dout, &dout
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy\n%s", dout.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	remoteJSON := filepath.Join(dir, "remote.json")
	thin := exec.Command(expBin, "-run", expID, "-server", "http://"+addr, "-json-out", remoteJSON)
	thin.Env = env
	out, err := thin.CombinedOutput()
	if err != nil {
		t.Fatalf("thin-client campaign failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "running on daemon") {
		t.Fatalf("thin client must announce the daemon it targets\n%s", out)
	}

	want, err := os.ReadFile(localJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(remoteJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("thin-client report differs from the local one (%d vs %d bytes)", len(want), len(got))
	}
}
